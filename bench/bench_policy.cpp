// Experiment E12 (extension) — the cost of §3.1's third option in full:
// running the ENTIRE validation algorithm as a Datalog policy
// (Hammurabi model) vs the procedural verifier, on identical corpus
// chains. Also prints the verdict-agreement table that backs the
// differential tests, and the delta-vs-snapshot feed bandwidth ratio (§4).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "corpus/corpus.hpp"
#include "policy/policy.hpp"
#include "rsf/client.hpp"

namespace {

using namespace anchor;

struct Fixture {
  corpus::Corpus corpus;
  rootstore::RootStore store;
  chain::CertificatePool pool;
  std::vector<std::size_t> leaf_indices;
  std::int64_t now;

  Fixture()
      : corpus([] {
          corpus::CorpusConfig config;
          config.num_roots = 30;
          config.num_intermediates = 90;
          config.roots_with_path_len = 2;
          config.intermediates_with_path_len = 80;
          config.intermediates_with_name_constraints = 4;
          config.roots_with_constrained_chain = 2;
          config.leaves_per_intermediate_mean = 8.0;
          return corpus::Corpus::generate(config);
        }()),
        store(corpus.make_root_store()),
        pool(corpus.intermediate_pool()),
        now(corpus.config().validation_time()) {
    for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
      const auto& record = corpus.leaves()[i];
      if (record.smime) continue;
      if (!record.cert->valid_at(now)) continue;
      leaf_indices.push_back(i);
      if (leaf_indices.size() >= 100) break;
    }
  }

  chain::VerifyOptions options_for(std::size_t leaf_index) const {
    chain::VerifyOptions options;
    options.time = now;
    options.hostname = corpus.leaves()[leaf_index].domain;
    return options;
  }
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

void BM_ProceduralVerifier(benchmark::State& state) {
  const Fixture& f = fixture();
  chain::ChainVerifier verifier(f.store, f.corpus.signatures());
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_ProceduralVerifier);

void BM_DatalogPolicyVerifier(benchmark::State& state) {
  const Fixture& f = fixture();
  policy::PolicyVerifier verifier(f.store, f.corpus.signatures());
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_DatalogPolicyVerifier);

void print_agreement_table() {
  const Fixture& f = fixture();
  chain::ChainVerifier procedural(f.store, f.corpus.signatures());
  policy::PolicyVerifier logical(f.store, f.corpus.signatures());

  std::size_t agree = 0;
  std::size_t total = 0;
  std::size_t accepts = 0;
  for (std::size_t leaf : f.leaf_indices) {
    bool proc = procedural
                    .verify(f.corpus.leaves()[leaf].cert, f.pool,
                            f.options_for(leaf))
                    .ok;
    bool log = logical
                   .verify(f.corpus.leaves()[leaf].cert, f.pool,
                           f.options_for(leaf))
                   .ok;
    agree += proc == log;
    accepts += proc;
    ++total;
  }
  std::printf("\n=== E12: procedural vs full-Datalog validation (§3.1 opt 3) "
              "===\n");
  std::printf("verdict agreement : %zu/%zu on tree-shaped corpus chains "
              "(%zu accepted)\n",
              agree, total, accepts);
  std::printf("shape check       : %s (exact agreement; divergence exists "
              "only under cross-signing, see tests/policy_test.cpp)\n",
              agree == total ? "HOLDS" : "VIOLATED");
}

void print_bandwidth_table() {
  // §4 extension: delta vs full-snapshot transport cost for routine
  // single-root updates on an NSS-sized store.
  SimSig registry;
  rsf::Feed feed("bench", registry);
  corpus::CorpusConfig config;
  config.num_roots = 140;
  config.num_intermediates = 10;
  config.intermediates_with_path_len = 8;
  config.intermediates_with_name_constraints = 2;
  config.roots_with_constrained_chain = 1;
  config.leaves_per_intermediate_mean = 1.0;
  corpus::Corpus corpus = corpus::Corpus::generate(config);
  rootstore::RootStore primary = corpus.make_root_store();
  feed.publish(primary, 0, "baseline");

  rsf::RsfClient full(feed, 3600, rsf::MergePolicy::kPrimaryWins,
                      rsf::Transport::kFullSnapshot);
  rsf::RsfClient delta(feed, 3600, rsf::MergePolicy::kPrimaryWins,
                       rsf::Transport::kDelta);
  full.poll_now(1);
  delta.poll_now(1);
  std::uint64_t full_base = full.stats().bytes_fetched;
  std::uint64_t delta_base = delta.stats().bytes_fetched;

  for (int i = 0; i < 12; ++i) {
    primary.distrust(
        corpus.roots()[static_cast<std::size_t>(i)].cert->fingerprint_hex(),
        "routine removal");
    feed.publish(primary, 100 + i, "update");
    full.poll_now(1000 + i);
    delta.poll_now(1000 + i);
  }
  std::uint64_t full_bytes = full.stats().bytes_fetched - full_base;
  std::uint64_t delta_bytes = delta.stats().bytes_fetched - delta_base;
  std::printf("\n--- RSF transport bandwidth, 12 one-root updates on a "
              "140-root store (§4) ---\n");
  std::printf("full snapshots : %llu bytes\n",
              static_cast<unsigned long long>(full_bytes));
  std::printf("deltas         : %llu bytes  (%.1fx smaller; replica verified "
              "against the signed payload hash)\n",
              static_cast<unsigned long long>(delta_bytes),
              static_cast<double>(full_bytes) /
                  static_cast<double>(delta_bytes ? delta_bytes : 1));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_agreement_table();
  print_bandwidth_table();
  return 0;
}
