// Experiment E10 — RSF merging (§4): conflict detection when a derivative
// augments its primary, scored on the incident the paper cites ("Amazon
// Linux re-added 16 root certificates after they had been explicitly
// removed by NSS"), plus merge/serialization throughput at realistic store
// sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "rsf/client.hpp"
#include "rsf/merge.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"

namespace {

using namespace anchor;

x509::CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return x509::CertificateBuilder()
      .serial(1)
      .subject(x509::DistinguishedName::make(name, "Org"))
      .issuer(x509::DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

struct MergeFixture {
  rootstore::RootStore primary;
  rootstore::RootStore derivative;

  // NSS-scale primary (140 roots), 16 re-added removals, a handful of
  // local additions.
  MergeFixture() {
    for (int i = 0; i < 140; ++i) {
      (void)primary.add_trusted(make_root("Primary Root " + std::to_string(i)));
    }
    for (int i = 0; i < 16; ++i) {
      x509::CertPtr removed = make_root("Removed Root " + std::to_string(i));
      primary.distrust(removed->fingerprint_hex(), "removed by primary");
      (void)derivative.add_trusted(removed);  // Amazon-Linux-style re-add
    }
    for (int i = 0; i < 5; ++i) {
      (void)derivative.add_trusted(make_root("Local Root " + std::to_string(i)));
    }
  }
};

const MergeFixture& merge_fixture() {
  static const MergeFixture instance;
  return instance;
}

void BM_Merge_PrimaryWins(benchmark::State& state) {
  const MergeFixture& f = merge_fixture();
  for (auto _ : state) {
    auto result = rsf::merge(f.primary, f.derivative,
                             rsf::MergePolicy::kPrimaryWins);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Merge_PrimaryWins);

// CT-scale constraint load: both stores carry the same root population and
// many GCCs per root, with half the derivative's names overlapping the
// primary's. This is the case the per-root name-set dedup in merge() is
// for — the old nested scan was O(primary × derivative) string compares
// per root and dominated merge time at these counts.
struct ManyGccsFixture {
  rootstore::RootStore primary;
  rootstore::RootStore derivative;

  explicit ManyGccsFixture(int gccs_per_root) {
    constexpr int kRoots = 40;
    const std::string source =
        "valid(Chain, Usage) :- chain(Chain), usage_allowed(Chain, Usage).\n"
        "usage_allowed(Chain, \"TLS\") :- chain(Chain).";
    for (int i = 0; i < kRoots; ++i) {
      x509::CertPtr root = make_root("Gcc Root " + std::to_string(i));
      (void)primary.add_trusted(root);
      (void)derivative.add_trusted(root);
      const std::string hash = root->fingerprint_hex();
      for (int g = 0; g < gccs_per_root; ++g) {
        auto gcc = core::Gcc::create("constraint-" + std::to_string(g), hash,
                                     source, "bench");
        primary.attach_gcc(gcc.value());
        // Half overlap: even names collide with the primary's (dedup path),
        // odd names are derivative-local (attach path).
        auto local = core::Gcc::create(
            g % 2 == 0 ? "constraint-" + std::to_string(g)
                       : "local-" + std::to_string(g),
            hash, source, "bench");
        derivative.attach_gcc(std::move(local).take());
      }
    }
  }
};

void BM_Merge_ManyGccs(benchmark::State& state) {
  const ManyGccsFixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = rsf::merge(fixture.primary, fixture.derivative,
                             rsf::MergePolicy::kPrimaryWins);
    benchmark::DoNotOptimize(result);
  }
  state.counters["gccs_per_root"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Merge_ManyGccs)->Arg(4)->Arg(32)->Arg(128);

void BM_StoreSerialize(benchmark::State& state) {
  const MergeFixture& f = merge_fixture();
  for (auto _ : state) {
    std::string text = f.primary.serialize();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_StoreSerialize);

void BM_StoreDeserialize(benchmark::State& state) {
  const MergeFixture& f = merge_fixture();
  std::string text = f.primary.serialize();
  for (auto _ : state) {
    auto store = rootstore::RootStore::deserialize(text);
    benchmark::DoNotOptimize(store);
  }
}
BENCHMARK(BM_StoreDeserialize);

void BM_FeedPublishAndVerify(benchmark::State& state) {
  const MergeFixture& f = merge_fixture();
  for (auto _ : state) {
    SimSig registry;
    rsf::Feed feed("nss", registry);
    feed.publish(f.primary, 1000, "bench");
    auto run = feed.fetch_since(0);
    auto status =
        rsf::Feed::verify_run(run, "", BytesView(feed.key_id()), registry);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_FeedPublishAndVerify);

void print_e10_table() {
  const MergeFixture& f = merge_fixture();
  auto result =
      rsf::merge(f.primary, f.derivative, rsf::MergePolicy::kPrimaryWins);

  std::size_t re_add_conflicts = 0;
  for (const auto& conflict : result.conflicts) {
    if (conflict.kind == rsf::ConflictKind::kDistrustedReAdded) {
      ++re_add_conflicts;
    }
  }
  std::printf("\n=== E10: RSF merge conflict detection (paper §4) ===\n");
  std::printf("%-44s %8s %8s\n", "metric", "paper", "measured");
  std::printf("%-44s %8d %8zu   %s\n",
              "distrusted roots re-added by derivative", 16, re_add_conflicts,
              re_add_conflicts == 16 ? "MATCH" : "DIFFER");
  std::printf("merged store: %zu trusted, %zu distrusted "
              "(primary-wins keeps removals in force)\n",
              result.merged.trusted_count(), result.merged.distrusted_count());

  auto derivative_wins =
      rsf::merge(f.primary, f.derivative, rsf::MergePolicy::kDerivativeWins);
  std::printf("derivative-wins (today's de facto outcome): %zu trusted — the\n"
              "16 removed roots silently return, which is what the merge is\n"
              "designed to surface.\n",
              derivative_wins.merged.trusted_count());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_e10_table();
  return 0;
}
