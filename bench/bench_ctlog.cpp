// Experiment E13 (extension) — cost of the Certificate Transparency
// machinery that §5.2's measurement methodology presumes ("operators can
// more easily examine scopes of issuance because all certificates must be
// publicly logged") and that §4 suggests for feed security ("the potential
// use of immutable logs").
//
// Micro-benchmarks log append / proof generation / proof verification, and
// prints the proof-size table: audit paths grow with log2(n), which is what
// makes continuous monitoring of a CT-scale log tractable.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "corpus/corpus.hpp"
#include "ctlog/log.hpp"

namespace {

using namespace anchor;

struct Fixture {
  SimSig registry;
  ctlog::CtLog log{"bench-log", registry};
  corpus::Corpus corpus;

  Fixture()
      : corpus([] {
          corpus::CorpusConfig config;
          config.num_roots = 20;
          config.num_intermediates = 60;
          config.roots_with_path_len = 1;
          config.intermediates_with_path_len = 50;
          config.intermediates_with_name_constraints = 3;
          config.roots_with_constrained_chain = 2;
          config.leaves_per_intermediate_mean = 30.0;
          return corpus::Corpus::generate(config);
        }()) {
    for (const auto& record : corpus.leaves()) {
      log.submit(record.cert, 0);
    }
  }
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void BM_LogSubmit(benchmark::State& state) {
  const auto& corpus = fixture().corpus;
  SimSig registry;
  ctlog::CtLog log("submit-bench", registry);
  std::size_t i = 0;
  for (auto _ : state) {
    log.submit(corpus.leaves()[i % corpus.leaves().size()].cert,
               static_cast<std::int64_t>(i));
    ++i;
  }
}
BENCHMARK(BM_LogSubmit);

void BM_InclusionProofGenerate(benchmark::State& state) {
  Fixture& f = fixture();
  const std::uint64_t size = f.log.size();
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto proof = f.log.inclusion_proof(i % size, size);
    benchmark::DoNotOptimize(proof);
    ++i;
  }
}
BENCHMARK(BM_InclusionProofGenerate);

void BM_InclusionProofVerify(benchmark::State& state) {
  Fixture& f = fixture();
  const std::uint64_t size = f.log.size();
  auto head = f.log.sth();
  auto proof = f.log.inclusion_proof(size / 2, size);
  auto leaf = f.log.entry_leaf_hash(size / 2);
  for (auto _ : state) {
    bool ok = ctlog::verify_inclusion(leaf, size / 2, size, proof,
                                      head.root_hash);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_InclusionProofVerify);

void BM_ConsistencyProofVerify(benchmark::State& state) {
  Fixture& f = fixture();
  const std::uint64_t size = f.log.size();
  auto proof = f.log.consistency_proof(size / 3, size);
  auto old_head = f.log.sth_at(size / 3);
  auto new_head = f.log.sth_at(size);
  for (auto _ : state) {
    bool ok = ctlog::verify_consistency(size / 3, size, old_head.root_hash,
                                        new_head.root_hash, proof);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ConsistencyProofVerify);

void BM_MonitorFullScan(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    ctlog::LogMonitor monitor(f.log, f.registry);
    auto consumed = monitor.poll();
    benchmark::DoNotOptimize(consumed);
  }
  state.counters["entries"] = static_cast<double>(f.log.size());
}
BENCHMARK(BM_MonitorFullScan);

void print_proof_size_table() {
  SimSig registry;
  ctlog::CtLog log("size-table", registry);
  const auto& corpus = fixture().corpus;
  std::printf("\n=== E13: CT audit-path size vs log size ===\n");
  std::printf("%12s %16s %20s\n", "log size", "path hashes",
              "proof bytes (32/hash)");
  std::uint64_t next_checkpoint = 64;
  for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
    log.submit(corpus.leaves()[i % corpus.leaves().size()].cert, 0);
    if (log.size() == next_checkpoint) {
      auto proof = log.inclusion_proof(log.size() / 2, log.size());
      std::printf("%12llu %16zu %20zu\n",
                  static_cast<unsigned long long>(log.size()), proof.size(),
                  proof.size() * 32);
      next_checkpoint *= 4;
    }
  }
  std::printf("(logarithmic growth: monitoring stays cheap at CT scale — the\n"
              " premise of the paper's §5.2 measurement methodology)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_proof_size_table();
  return 0;
}
