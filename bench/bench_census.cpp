// Experiment E5 — the constraint census of §5.1, recomputed from the
// synthetic corpus and printed against the paper's reported numbers:
//
//   "We found that out of 140 root certificates, zero used name constraints
//    and only five used path-length constraints. Out of 776 intermediate CA
//    certificates, 701 used path-length constraints but only 31 used name
//    constraints. Only six (out of 140) roots were included in at least one
//    chain where an intermediate included a name constraint."
//
// The census is computed from the generated certificates' extensions, not
// from generator configuration, so this doubles as an end-to-end check of
// the calibration pipeline.
#include <cstdio>

#include "corpus/census.hpp"
#include "corpus/corpus.hpp"

int main() {
  anchor::corpus::CorpusConfig config;
  config.leaves_per_intermediate_mean = 4.0;  // leaves don't affect the census
  anchor::corpus::Corpus corpus = anchor::corpus::Corpus::generate(config);
  anchor::corpus::CensusReport report = anchor::corpus::run_census(corpus);

  std::printf("=== E5: CA constraint census (paper §5.1) ===\n");
  std::printf("%-52s %8s %8s\n", "metric", "paper", "measured");
  auto row = [](const char* metric, std::size_t paper, std::size_t measured) {
    std::printf("%-52s %8zu %8zu   %s\n", metric, paper, measured,
                paper == measured ? "MATCH" : "DIFFER");
  };
  row("root certificates", 140, report.roots_total);
  row("roots with name constraints", 0, report.roots_with_name_constraints);
  row("roots with path-length constraints", 5, report.roots_with_path_len);
  row("intermediate CA certificates", 776, report.intermediates_total);
  row("intermediates with path-length constraints", 701,
      report.intermediates_with_path_len);
  row("intermediates with name constraints", 31,
      report.intermediates_with_name_constraints);
  row("roots in >=1 chain w/ name-constrained intermediate", 6,
      report.roots_with_constrained_chain);

  bool all_match = report.roots_total == 140 &&
                   report.roots_with_name_constraints == 0 &&
                   report.roots_with_path_len == 5 &&
                   report.intermediates_total == 776 &&
                   report.intermediates_with_path_len == 701 &&
                   report.intermediates_with_name_constraints == 31 &&
                   report.roots_with_constrained_chain == 6;
  std::printf("\noverall: %s\n", all_match ? "ALL ROWS MATCH" : "MISMATCH");
  return all_match ? 0 : 1;
}
