// Experiment E15 — multi-primary disparity census. Three primaries
// (mozilla-like, chrome-like, apple-like) are modeled as distinct
// RootStores over the shared corpus; the chrome-like store is built
// end-to-end from a generated Chrome Root Store textproto through
// chromeproto::parse_store + compile_store, so its constraints arrive as
// real GCCs. Every corpus chain is verified under all three and every
// pairwise verdict flip is classified:
//
//   root-level       — the stores disagree about the root's trust bit;
//                      today's binary root stores can express this;
//   constraint-level — both stores trust the root and the flip lives in
//                      GCCs or systematic metadata (date-usage cutoffs,
//                      SCT/DNS/version constraints), which a binary
//                      trusted/untrusted bit cannot express (§4).
//
// The pairwise rsf::merge results show that GCC-carrying merges preserve
// exactly those constraint-level disparities (merged GCC counts,
// gcc-divergent roots) while a binary merge would flatten them.
// Appended below: the cross-sign resurrection census — the same corpus
// chains plus adversarial cross-sign DAGs verified under the tree-walk
// baseline (graph_distrust = false) and the graph search, counting leaves
// a distrusted-but-cross-signed CA would silently resurrect.
#include <cstdio>
#include <string>

#include "chain/verifier.hpp"
#include "corpus/census.hpp"
#include "corpus/corpus.hpp"
#include "corpus/crosssign.hpp"
#include "incidents/incidents.hpp"

namespace {

// Verifies every leaf of a cross-sign universe twice — graph semantics on
// and off — and tallies the verdict pairs.
struct ResurrectionCensus {
  std::size_t leaves = 0;
  std::size_t both_accept = 0;
  std::size_t both_reject = 0;
  std::size_t resurrected = 0;     // tree accepts, graph rejects (the bane)
  std::size_t graph_only = 0;      // graph accepts, tree rejects (must be 0)
};

void census_leaf(const anchor::chain::ChainVerifier& verifier,
                 const anchor::x509::CertPtr& leaf,
                 const anchor::chain::CertificatePool& pool,
                 anchor::chain::VerifyOptions options,
                 ResurrectionCensus& census) {
  options.graph_distrust = false;
  bool tree = verifier.verify(leaf, pool, options).ok;
  options.graph_distrust = true;
  bool graph = verifier.verify(leaf, pool, options).ok;
  ++census.leaves;
  if (tree && graph) ++census.both_accept;
  if (!tree && !graph) ++census.both_reject;
  if (tree && !graph) ++census.resurrected;
  if (!tree && graph) ++census.graph_only;
}

ResurrectionCensus run_resurrection_census() {
  ResurrectionCensus census;

  // Adversarial DAGs: several seeds, each guaranteeing at least one live
  // cross-sign into a distrusted root.
  for (std::uint64_t seed : {3, 9, 17, 29, 41}) {
    anchor::corpus::CrossSignConfig config;
    config.seed = seed;
    config.num_roots = 4 + static_cast<int>(seed % 3);
    config.distrusted_roots = 1 + static_cast<int>(seed % 2);
    config.num_cas = 6;
    config.extra_cross_signs = 5;
    config.num_leaves = 12;
    anchor::corpus::CrossSignDag dag =
        anchor::corpus::make_cross_sign_dag(config);
    anchor::chain::ChainVerifier verifier(dag.store, dag.signatures);
    for (std::size_t i = 0; i < dag.leaves.size(); ++i) {
      anchor::chain::VerifyOptions options;
      options.time = config.validation_time();
      options.hostname = dag.leaf_domains[i];
      options.max_paths = 4096;
      census_leaf(verifier, dag.leaves[i], dag.pool, options, census);
    }
  }

  // The executable incident: the 2021-style resurrection scenario.
  anchor::incidents::Incident incident = anchor::incidents::make_cross_sign();
  anchor::chain::ChainVerifier verifier(incident.store, incident.signatures);
  for (const auto& test_case : incident.cases) {
    census_leaf(verifier, test_case.leaf, incident.pool, test_case.options,
                census);
  }
  return census;
}

}  // namespace

int main() {
  anchor::corpus::CorpusConfig config;
  anchor::corpus::Corpus corpus = anchor::corpus::Corpus::generate(config);
  anchor::corpus::PrimaryStores primaries =
      anchor::corpus::make_primary_stores(corpus);
  anchor::corpus::DisparityReport report =
      anchor::corpus::run_disparity_census(corpus, primaries);

  std::printf("=== E15: multi-primary disparity census (paper §4) ===\n");
  std::printf("chains verified: %zu\n\n", report.chains);

  std::printf("%-14s %10s %10s %10s %8s\n", "primary", "trusted", "gccs",
              "accepted", "rate");
  for (std::size_t s = 0; s < anchor::corpus::kPrimaryCount; ++s) {
    const auto& store = primaries.stores[s];
    std::printf("%-14s %10zu %10zu %10zu %7.1f%%\n",
                anchor::corpus::kPrimaryNames[s], store.trusted_count(),
                store.gccs().total(), report.accepted[s],
                100.0 * static_cast<double>(report.accepted[s]) /
                    static_cast<double>(report.chains));
  }
  std::printf("\nchrome-like ingestion: %zu anchors parsed, %zu blocks, "
              "%zu gccs, %zu clauses, %zu anchors resolved, %zu unresolved\n",
              primaries.chrome_compile.stats.anchors,
              primaries.chrome_compile.stats.blocks,
              primaries.chrome_compile.stats.gccs,
              primaries.chrome_compile.stats.clauses,
              primaries.chrome_compile.anchors_with_cert,
              primaries.chrome_compile.anchors_without_cert);

  std::printf("\n%-28s %7s %11s %12s %9s %10s %8s %8s\n", "pair", "flips",
              "root-level", "constr-level", "gcc-div", "conflicts", "trusted",
              "gccs");
  for (const anchor::corpus::DisparityPair& pair : report.pairs) {
    std::string label = std::string(anchor::corpus::kPrimaryNames[pair.a]) +
                        " vs " + anchor::corpus::kPrimaryNames[pair.b];
    std::printf("%-28s %7zu %11zu %12zu %9zu %10zu %8zu %8zu\n", label.c_str(),
                pair.flips, pair.root_level, pair.constraint_level,
                pair.gcc_divergent_roots, pair.merge_conflicts,
                pair.merged_trusted, pair.merged_gccs);
  }

  std::printf("\nconstraint-level flips across all pairs: %zu\n",
              report.constraint_only_flips);
  std::printf("these are the disparities a binary trust bit cannot express; "
              "GCC merging preserves them.\n");

  // Sanity gates: the census must actually produce disparities of both
  // classes, or the experiment is vacuous.
  bool ok = report.chains > 0 && report.constraint_only_flips > 0;
  std::size_t root_level_total = 0;
  for (const auto& pair : report.pairs) root_level_total += pair.root_level;
  ok = ok && root_level_total > 0;
  std::printf("\noverall: %s\n", ok ? "DISPARITIES OBSERVED (both classes)"
                                    : "VACUOUS CENSUS");

  ResurrectionCensus census = run_resurrection_census();
  std::printf("\n=== cross-sign resurrection census (graph vs tree walk) "
              "===\n");
  std::printf("leaves verified twice: %zu\n", census.leaves);
  std::printf("%-44s %8zu\n", "accepted by both semantics", census.both_accept);
  std::printf("%-44s %8zu\n", "rejected by both semantics", census.both_reject);
  std::printf("%-44s %8zu\n",
              "resurrected (tree accepts, graph rejects)", census.resurrected);
  std::printf("%-44s %8zu\n",
              "graph-only accepts (must be zero)", census.graph_only);

  // Gates: the graph is a strict tightening (never accepts what the tree
  // walk rejects), and the corpus exercises the bane shape at least once.
  bool graph_ok = census.graph_only == 0 && census.resurrected > 0 &&
                  census.both_accept > 0;
  std::printf("\ngraph-vs-tree shape: %s\n",
              graph_ok ? "HOLDS (strict tightening, bane paths caught)"
                       : "VIOLATED");
  return (ok && graph_ok) ? 0 : 1;
}
