// Experiment E15 — multi-primary disparity census. Three primaries
// (mozilla-like, chrome-like, apple-like) are modeled as distinct
// RootStores over the shared corpus; the chrome-like store is built
// end-to-end from a generated Chrome Root Store textproto through
// chromeproto::parse_store + compile_store, so its constraints arrive as
// real GCCs. Every corpus chain is verified under all three and every
// pairwise verdict flip is classified:
//
//   root-level       — the stores disagree about the root's trust bit;
//                      today's binary root stores can express this;
//   constraint-level — both stores trust the root and the flip lives in
//                      GCCs or systematic metadata (date-usage cutoffs,
//                      SCT/DNS/version constraints), which a binary
//                      trusted/untrusted bit cannot express (§4).
//
// The pairwise rsf::merge results show that GCC-carrying merges preserve
// exactly those constraint-level disparities (merged GCC counts,
// gcc-divergent roots) while a binary merge would flatten them.
#include <cstdio>
#include <string>

#include "corpus/census.hpp"
#include "corpus/corpus.hpp"

int main() {
  anchor::corpus::CorpusConfig config;
  anchor::corpus::Corpus corpus = anchor::corpus::Corpus::generate(config);
  anchor::corpus::PrimaryStores primaries =
      anchor::corpus::make_primary_stores(corpus);
  anchor::corpus::DisparityReport report =
      anchor::corpus::run_disparity_census(corpus, primaries);

  std::printf("=== E15: multi-primary disparity census (paper §4) ===\n");
  std::printf("chains verified: %zu\n\n", report.chains);

  std::printf("%-14s %10s %10s %10s %8s\n", "primary", "trusted", "gccs",
              "accepted", "rate");
  for (std::size_t s = 0; s < anchor::corpus::kPrimaryCount; ++s) {
    const auto& store = primaries.stores[s];
    std::printf("%-14s %10zu %10zu %10zu %7.1f%%\n",
                anchor::corpus::kPrimaryNames[s], store.trusted_count(),
                store.gccs().total(), report.accepted[s],
                100.0 * static_cast<double>(report.accepted[s]) /
                    static_cast<double>(report.chains));
  }
  std::printf("\nchrome-like ingestion: %zu anchors parsed, %zu blocks, "
              "%zu gccs, %zu clauses, %zu anchors resolved, %zu unresolved\n",
              primaries.chrome_compile.stats.anchors,
              primaries.chrome_compile.stats.blocks,
              primaries.chrome_compile.stats.gccs,
              primaries.chrome_compile.stats.clauses,
              primaries.chrome_compile.anchors_with_cert,
              primaries.chrome_compile.anchors_without_cert);

  std::printf("\n%-28s %7s %11s %12s %9s %10s %8s %8s\n", "pair", "flips",
              "root-level", "constr-level", "gcc-div", "conflicts", "trusted",
              "gccs");
  for (const anchor::corpus::DisparityPair& pair : report.pairs) {
    std::string label = std::string(anchor::corpus::kPrimaryNames[pair.a]) +
                        " vs " + anchor::corpus::kPrimaryNames[pair.b];
    std::printf("%-28s %7zu %11zu %12zu %9zu %10zu %8zu %8zu\n", label.c_str(),
                pair.flips, pair.root_level, pair.constraint_level,
                pair.gcc_divergent_roots, pair.merge_conflicts,
                pair.merged_trusted, pair.merged_gccs);
  }

  std::printf("\nconstraint-level flips across all pairs: %zu\n",
              report.constraint_only_flips);
  std::printf("these are the disparities a binary trust bit cannot express; "
              "GCC merging preserves them.\n");

  // Sanity gates: the census must actually produce disparities of both
  // classes, or the experiment is vacuous.
  bool ok = report.chains > 0 && report.constraint_only_flips > 0;
  std::size_t root_level_total = 0;
  for (const auto& pair : report.pairs) root_level_total += pair.root_level;
  ok = ok && root_level_total > 0;
  std::printf("\noverall: %s\n", ok ? "DISPARITIES OBSERVED (both classes)"
                                    : "VACUOUS CENSUS");
  return ok ? 0 : 1;
}
