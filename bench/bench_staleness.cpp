// Experiment E7 — derivative root-store staleness and post-distrust
// vulnerability windows (§§1, 4; Ma et al. as cited by the paper).
//
// Shapes to reproduce:
//   * manual-mirror derivatives are MONTHS behind ("Android is always
//     several months behind"), several substantial versions on average
//     ("Amazon Linux exhibits an average staleness of more than four
//     substantial versions");
//   * an RSF polling client (the paper proposes hourly) collapses both
//     staleness and the vulnerability window to about its poll interval.
//
// Also runs the poll-interval sweep ablation (DESIGN.md §7) and the fault
// sweeps: staleness vs feed loss rate and vs corruption rate, with the
// client's backoff + quarantine machinery absorbing the injected faults.
#include <cstdio>

#include "rsf/simulator.hpp"
#include "util/metrics.hpp"

namespace {

void print_report(const anchor::rsf::SimReport& report) {
  std::printf("%-16s %12s %12s %14s %16s %16s\n", "derivative",
              "staleness", "max stale", "versions", "mean vuln win",
              "max vuln win");
  std::printf("%-16s %12s %12s %14s %16s %16s\n", "", "(days avg)", "(days)",
              "behind avg", "(hours)", "(hours)");
  for (const auto& d : report.derivatives) {
    std::printf("%-16s %12.1f %12.1f %14.2f %16.1f %16.1f\n", d.name.c_str(),
                d.avg_staleness_days, d.max_staleness_days,
                d.avg_versions_behind,
                d.mean_vulnerability_window >= 0
                    ? d.mean_vulnerability_window / 3600.0
                    : -1.0,
                d.max_vulnerability_window >= 0
                    ? d.max_vulnerability_window / 3600.0
                    : -1.0);
  }
}

// One hourly RSF derivative per fault rate; `make_profile` maps the rate
// onto whichever fault kinds the sweep exercises.
void run_fault_sweep(const anchor::rsf::SimConfig& base, const char* title,
                     anchor::rsf::FaultProfile (*make_profile)(double)) {
  using namespace anchor::rsf;
  std::printf("\n--- fault sweep: %s ---\n", title);
  SimConfig sweep = base;
  sweep.derivatives.clear();
  const double rates[] = {0.0, 0.1, 0.3, 0.5, 0.7};
  for (double rate : rates) {
    SimDerivativeSpec spec;
    char name[32];
    std::snprintf(name, sizeof(name), "fault-%02d%%",
                  static_cast<int>(rate * 100));
    spec.name = name;
    spec.uses_rsf = true;
    spec.rsf_poll_interval = 3600;
    spec.faults = make_profile(rate);
    sweep.derivatives.push_back(spec);
  }
  SimReport report = run_staleness_simulation(sweep);
  print_report(report);
  std::printf("%-16s %12s %16s %16s\n", "derivative", "retries",
              "transport errs", "verify failures");
  for (const auto& d : report.derivatives) {
    std::printf("%-16s %12llu %16llu %16llu\n", d.name.c_str(),
                static_cast<unsigned long long>(d.retries),
                static_cast<unsigned long long>(d.transport_errors),
                static_cast<unsigned long long>(d.verify_failures));
  }
}

}  // namespace

int main() {
  using namespace anchor::rsf;

  std::printf("=== E7: derivative staleness & vulnerability windows ===\n");
  SimConfig config = SimConfig::with_default_derivatives();
  const anchor::metrics::Snapshot before =
      anchor::metrics::Registry::global().snapshot();
  SimReport report = run_staleness_simulation(config);
  const anchor::metrics::Snapshot delta = anchor::metrics::snapshot_delta(
      before, anchor::metrics::Registry::global().snapshot());
  std::printf("simulated: %llu primary releases over %lld days, %zu distrust "
              "incidents\n\n",
              static_cast<unsigned long long>(report.releases),
              static_cast<long long>(config.duration / 86400),
              report.incidents.size());
  print_report(report);

  // The same run, as the operator-visible counters: each RSF derivative's
  // anchor_rsf_* series (labeled {feed=<name>}) and the simulator's own
  // counters, straight from the process-wide registry rather than from
  // SimReport's private accounting.
  std::printf("\n--- registry delta for the E7 run "
              "(same series anchorctl metrics serves) ---\n");
  for (const auto& [key, value] : delta) {
    if (key.find("_bucket{") != std::string::npos) continue;
    std::printf("%-64s %.6g\n", key.c_str(), value);
  }

  std::printf("\npaper-cited shapes:\n");
  const auto& hourly = report.derivatives[0];
  const auto& distro = report.derivatives[2];
  const auto& mobile = report.derivatives[3];
  const auto& server = report.derivatives[4];
  std::printf("  manual mirrors months behind        : %s "
              "(distro %.0f d, mobile %.0f d mean window)\n",
              distro.mean_vulnerability_window > 30LL * 86400 &&
                      mobile.mean_vulnerability_window > 30LL * 86400
                  ? "HOLDS"
                  : "VIOLATED",
              distro.mean_vulnerability_window / 86400.0,
              mobile.mean_vulnerability_window / 86400.0);
  std::printf("  Amazon-like mirror >4 versions stale: %s (%.2f avg)\n",
              server.avg_versions_behind > 4.0 ? "HOLDS" : "VIOLATED",
              server.avg_versions_behind);
  std::printf("  hourly RSF window ~ poll interval   : %s (max %.1f h)\n",
              hourly.max_vulnerability_window <= 2 * 3600 ? "HOLDS" : "VIOLATED",
              hourly.max_vulnerability_window / 3600.0);

  // Ablation: poll-interval sweep.
  std::printf("\n--- ablation: RSF poll interval sweep ---\n");
  SimConfig sweep = config;
  sweep.derivatives.clear();
  const long long intervals[] = {3600, 6 * 3600, 86400, 7 * 86400, 30 * 86400};
  for (long long interval : intervals) {
    SimDerivativeSpec spec;
    spec.name = "poll-" + std::to_string(interval / 3600) + "h";
    spec.uses_rsf = true;
    spec.rsf_poll_interval = interval;
    sweep.derivatives.push_back(spec);
  }
  SimReport sweep_report = run_staleness_simulation(sweep);
  print_report(sweep_report);
  std::printf("\n(vulnerability window tracks the poll interval — the knob a\n"
              " derivative turns to trade update traffic for exposure)\n");

  // Fault sweeps: an unreliable feed degrades freshness, never safety —
  // the client retries with backoff and keeps serving the last verified
  // store. Staleness should grow smoothly with the fault rate and stay
  // far below manual-mirror lag even at heavy loss.
  run_fault_sweep(config, "staleness vs feed loss rate (unreachable polls)",
                  &FaultProfile::loss);
  run_fault_sweep(config,
                  "staleness vs corruption rate (payload/signature tamper)",
                  &FaultProfile::corruption);

  // E17 — fleet-scale authenticated feed distribution. One publisher,
  // 10^4..10^6 hourly pollers: publisher egress for a no-change poll
  // (signed tree head only, O(1) bytes) vs the post-emergency-distrust
  // wave (one consistency proof + one delta range per client), and the
  // time for 99% of the fleet to *adopt* — fetch plus the client-side
  // proof-verification step, not fetch alone.
  std::printf("\n=== E17: fleet-scale authenticated feed distribution ===\n");
  std::printf("%-9s %-6s %14s %16s %16s %12s %10s %10s %10s\n", "clients",
              "xport", "no-change B", "egress/day MB", "emergency MB",
              "B/poll", "p50 adopt", "p99 adopt", "max adopt");
  const unsigned fleet_sizes[] = {10000, 100000, 1000000};
  for (unsigned clients : fleet_sizes) {
    for (bool use_delta : {true, false}) {
      FleetConfig fleet;
      fleet.num_clients = clients;
      fleet.use_delta = use_delta;
      FleetReport fr = run_fleet_simulation(fleet);
      std::printf("%-9u %-6s %14zu %16.2f %16.2f %12zu %9llds %9llds"
                  " %9llds\n",
                  fr.clients, use_delta ? "delta" : "full",
                  fr.no_change_poll_bytes,
                  static_cast<double>(fr.bytes_no_change) / (1024.0 * 1024.0),
                  static_cast<double>(fr.bytes_emergency) / (1024.0 * 1024.0),
                  fr.emergency_poll_bytes,
                  static_cast<long long>(fr.adoption_p50),
                  static_cast<long long>(fr.adoption_p99),
                  static_cast<long long>(fr.adoption_max));
    }
  }
  std::printf("\n(no-change polls cost the tree head alone regardless of\n"
              " store size; the emergency wave ships one proof + one delta\n"
              " range per client, and 99%% of the fleet has verified and\n"
              " adopted the distrust within about one poll interval)\n");
  return 0;
}
