// Experiment E14 — anchord serving throughput: the framed-wire daemon
// measured end to end (encode → frame → session loop → dispatch →
// VerifyService → frame → decode), swept over concurrent connections ×
// pipeline depth.
//
//   * connections — client threads, each with its own Conduit and its own
//     serve() thread on the shared server (the daemon deployment shape:
//     one process, many user agents);
//   * depth — requests a client keeps in flight before claiming the
//     oldest response (depth 1 is strict request/response RPC; deeper
//     pipelines amortise the wire round trip over the worker pool).
//
// Counters come from the same Registry operators would scrape
// (snapshot_delta over the run), not bench-private accounting; the
// headline is items/s at each (connections, depth) point plus wire
// bytes/request. BM_Anchord_Socketpair repeats one sweep point over a
// real AF_UNIX socketpair to price the kernel boundary against the
// in-memory conduit.
#include <benchmark/benchmark.h>

#include <deque>
#include <thread>
#include <vector>

#include "anchord/client.hpp"
#include "anchord/server.hpp"
#include "corpus/corpus.hpp"

namespace {

using namespace anchor;

constexpr std::size_t kRequestsPerConnection = 256;

struct Fixture {
  corpus::Corpus corpus;
  rootstore::RootStore store;
  std::int64_t now;
  // Pre-encoded verify requests (leaf + its issuer intermediate), so the
  // measured loop prices the daemon, not request assembly.
  std::vector<anchord::Request> requests;

  Fixture()
      : corpus([] {
          corpus::CorpusConfig config;
          config.num_roots = 10;
          config.num_intermediates = 30;
          // Scale the census-calibrated feature counts down with the
          // corpus (the defaults assume 776 intermediates; asking for more
          // constrained picks than certificates exist never terminates).
          config.roots_with_path_len = 2;
          config.intermediates_with_path_len = 20;
          config.intermediates_with_name_constraints = 2;
          config.roots_with_constrained_chain = 1;
          config.leaves_per_intermediate_mean = 8.0;
          return corpus::Corpus::generate(config);
        }()),
        store(corpus.make_root_store()),
        now(corpus.config().validation_time()) {
    // Scratch service for workload selection: keep only chains the daemon
    // will accept, so every measured response is a full successful verify
    // (a handful of corpus leaves are legitimately constraint-rejected).
    metrics::Registry scratch_registry;
    chain::VerifyService scratch(store, corpus.signatures(), {},
                                 scratch_registry);
    anchord::VerbDispatcher::Backends backends;
    backends.service = &scratch;
    backends.store = &store;
    anchord::VerbDispatcher dispatcher(backends);
    for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
      const auto& record = corpus.leaves()[i];
      if (record.smime || !record.cert->valid_at(now)) continue;
      const auto& intermediate = corpus.intermediates()[static_cast<std::size_t>(
          record.issuer_intermediate)];
      anchord::Request request;
      request.verb = anchord::Verb::kVerify;
      request.usage = "TLS";
      request.time = now;
      request.hostname = record.domain;
      request.leaf_der = record.cert->der();
      request.intermediates_der = {intermediate.cert->der()};
      if (!dispatcher.dispatch(request).ok) continue;
      requests.push_back(std::move(request));
      if (requests.size() >= 64) break;
    }
  }
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

// One client connection's workload: keep `depth` requests in flight until
// kRequestsPerConnection responses have been claimed. Returns responses
// that did not come back ok (overloads would land here).
std::size_t run_connection(anchord::Conduit& conduit, std::size_t depth,
                           std::size_t offset) {
  const Fixture& f = fixture();
  anchord::AnchordClient client(conduit, /*timeout_ms=*/30000);
  std::deque<std::uint64_t> window;
  std::size_t sent = 0;
  std::size_t failures = 0;
  for (std::size_t done = 0; done < kRequestsPerConnection; ++done) {
    while (sent < kRequestsPerConnection && window.size() < depth) {
      anchord::Request request =
          f.requests[(offset + sent) % f.requests.size()];
      auto id = client.send(std::move(request));
      if (!id.ok()) return kRequestsPerConnection;  // connection died
      window.push_back(id.value());
      ++sent;
    }
    auto response = client.receive(window.front());
    window.pop_front();
    if (!response.ok() || !response.value().ok) ++failures;
  }
  return failures;
}

void report_registry_deltas(benchmark::State& state,
                            const metrics::Snapshot& before,
                            const metrics::Snapshot& after,
                            double total_requests) {
  const metrics::Snapshot delta = metrics::snapshot_delta(before, after);
  auto sample = [&](const std::string& key) {
    auto it = delta.find(key);
    return it == delta.end() ? 0.0 : it->second;
  };
  state.counters["wire_bytes_per_req"] =
      (sample("anchor_anchord_bytes_read_total") +
       sample("anchor_anchord_bytes_written_total")) /
      total_requests;
  state.counters["overloads"] = sample("anchor_anchord_overloads_total");
  state.counters["served_verify"] =
      sample("anchor_anchord_requests_total{verb=\"verify\"}");
}

void run_throughput(benchmark::State& state, bool socketpair,
                    std::size_t workers = 8) {
  Fixture& f = fixture();
  const auto connections = static_cast<std::size_t>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));

  metrics::Registry registry;
  chain::ServiceConfig service_config;
  service_config.threads = workers;
  chain::VerifyService service(f.store, f.corpus.signatures(), service_config,
                               registry);
  anchord::VerbDispatcher::Backends backends;
  backends.service = &service;
  backends.store = &f.store;
  backends.registry = &registry;
  anchord::AnchordConfig config;
  config.workers = workers;
  config.max_in_flight = 512;  // headroom: this sweep prices throughput,
                               // not the overload path (counted anyway)
  anchord::AnchordServer server(backends, config, registry);

  const metrics::Snapshot before = registry.snapshot();
  double total_requests = 0;
  for (auto _ : state) {
    std::vector<anchord::ConduitPair> pairs;
    std::vector<std::thread> serve_threads;
    pairs.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      if (socketpair) {
        auto pair = anchord::make_socketpair_conduit();
        if (!pair.ok()) {
          state.SkipWithError(pair.error().c_str());
          return;
        }
        pairs.push_back(std::move(pair).take());
      } else {
        pairs.push_back(anchord::make_memory_conduit());
      }
      serve_threads.emplace_back(
          [&server, &pairs, c] { server.serve(*pairs[c].second); });
    }
    std::vector<std::thread> clients;
    std::vector<std::size_t> failures(connections, 0);
    for (std::size_t c = 0; c < connections; ++c) {
      clients.emplace_back([&pairs, &failures, depth, c] {
        failures[c] = run_connection(*pairs[c].first, depth, c * 31);
      });
    }
    for (auto& t : clients) t.join();
    for (std::size_t c = 0; c < connections; ++c) pairs[c].first->close();
    for (auto& t : serve_threads) t.join();
    for (std::size_t c = 0; c < connections; ++c) {
      if (failures[c] != 0) {
        state.SkipWithError("connection saw failed responses");
        return;
      }
    }
    total_requests +=
        static_cast<double>(connections * kRequestsPerConnection);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
  report_registry_deltas(state, before, registry.snapshot(), total_requests);
}

void BM_Anchord_Throughput(benchmark::State& state) {
  run_throughput(state, /*socketpair=*/false);
}
BENCHMARK(BM_Anchord_Throughput)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 8, 32}})
    ->ArgNames({"conns", "depth"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Anchord_Socketpair(benchmark::State& state) {
  run_throughput(state, /*socketpair=*/true);
}
BENCHMARK(BM_Anchord_Socketpair)
    ->ArgsProduct({{1, 4}, {8}})
    ->ArgNames({"conns", "depth"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Worker-count sweep at a fixed offered load (4 connections × depth 8):
// prices how daemon throughput scales with the shared VerifyService pool.
// On a single-vCPU host the sweep measures scheduling overhead rather
// than parallel speedup; the point is the trend line on real hardware.
void BM_Anchord_WorkerSweep(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(2));
  run_throughput(state, /*socketpair=*/false, workers);
}
BENCHMARK(BM_Anchord_WorkerSweep)
    ->ArgsProduct({{4}, {8}, {1, 2, 4, 8}})
    ->ArgNames({"conns", "depth", "workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Batch verb: one kVerifyBatch frame carrying `batch` leaves that share an
// intermediate pool and one fact-interning arena per dispatch. Items/s
// counts leaf verifications, directly comparable to the single-verb sweep
// at depth ≥ batch (same offered work, one frame instead of N).
void BM_Anchord_Batch(benchmark::State& state) {
  Fixture& f = fixture();
  const auto batch = static_cast<std::size_t>(state.range(0));

  anchord::Request request;
  request.verb = anchord::Verb::kVerifyBatch;
  request.usage = "TLS";
  request.time = f.now;
  std::vector<Bytes> intermediates;
  for (std::size_t i = 0; i < batch; ++i) {
    const anchord::Request& single = f.requests[i % f.requests.size()];
    anchord::BatchEntry entry;
    entry.hostname = single.hostname;
    entry.leaf_der = single.leaf_der;
    request.batch.push_back(std::move(entry));
    for (const Bytes& der : single.intermediates_der) {
      bool seen = false;
      for (const Bytes& have : intermediates) seen = seen || have == der;
      if (!seen) intermediates.push_back(der);
    }
  }
  request.intermediates_der = std::move(intermediates);

  metrics::Registry registry;
  chain::VerifyService service(f.store, f.corpus.signatures(), {}, registry);
  anchord::VerbDispatcher::Backends backends;
  backends.service = &service;
  backends.store = &f.store;
  backends.registry = &registry;
  anchord::AnchordServer server(backends, {}, registry);

  auto pair = anchord::make_memory_conduit();
  std::thread serve_thread([&server, &pair] { server.serve(*pair.second); });
  anchord::AnchordClient client(*pair.first, /*timeout_ms=*/30000);

  const metrics::Snapshot before = registry.snapshot();
  double total_leaves = 0;
  for (auto _ : state) {
    auto response = client.call(request);
    if (!response.ok() || !response.value().ok ||
        response.value().batch.size() != batch) {
      state.SkipWithError("batch response not ok");
      break;
    }
    total_leaves += static_cast<double>(batch);
  }
  pair.first->close();
  serve_thread.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(total_leaves));

  const metrics::Snapshot delta =
      metrics::snapshot_delta(before, registry.snapshot());
  auto sample = [&](const std::string& key) {
    auto it = delta.find(key);
    return it == delta.end() ? 0.0 : it->second;
  };
  state.counters["wire_bytes_per_leaf"] =
      (sample("anchor_anchord_bytes_read_total") +
       sample("anchor_anchord_bytes_written_total")) /
      (total_leaves > 0 ? total_leaves : 1.0);
  state.counters["served_batch"] =
      sample("anchor_anchord_requests_total{verb=\"verify-batch\"}");
}
BENCHMARK(BM_Anchord_Batch)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->ArgNames({"batch"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
