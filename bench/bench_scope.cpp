// Experiment E6 — TLD scope-of-issuance concentration (§5.2 / CAge).
//
// Paper: "CAge was built on the observation that most CAs only issue
// certificates for a small set of top-level domains: 90% of CAs sign
// certificates for <= 10 different TLDs."
//
// Prints the per-CA distinct-TLD CDF measured over the corpus issuance and
// checks the P90 <= 10 shape.
#include <cstdio>

#include "corpus/corpus.hpp"
#include "preemptive/scope.hpp"

int main() {
  anchor::corpus::CorpusConfig config;
  config.leaves_per_intermediate_mean = 40.0;  // enough issuance to expose scope
  anchor::corpus::Corpus corpus = anchor::corpus::Corpus::generate(config);
  auto scopes = anchor::preemptive::analyze_intermediates(corpus);

  std::printf("=== E6: per-CA distinct-TLD issuance (paper §5.2 / CAge) ===\n");
  std::printf("issuing CAs analyzed : %zu (of %zu intermediates)\n",
              [&] {
                std::size_t n = 0;
                for (const auto& scope : scopes) {
                  if (!scope.empty()) ++n;
                }
                return n;
              }(),
              scopes.size());
  std::printf("leaf certificates    : %zu\n\n", corpus.leaves().size());

  auto cdf = anchor::preemptive::tld_count_cdf(scopes, 30);
  std::printf("%-14s %10s\n", "TLDs (<= k)", "CDF");
  for (std::size_t k : {1, 2, 3, 5, 8, 10, 15, 20, 30}) {
    std::printf("%-14zu %9.1f%%\n", k, cdf[k] * 100.0);
  }

  std::size_t p90 = anchor::preemptive::tld_quantile(scopes, 0.90);
  std::printf("\nP90 distinct TLDs    : %zu   (paper/CAge: 90%% of CAs <= 10)\n",
              p90);
  std::printf("shape check          : %s\n",
              p90 <= 10 ? "HOLDS (P90 <= 10)" : "VIOLATED");

  // Bimodal candidates (§5.2's split suggestion).
  std::size_t bimodal = 0;
  for (const auto& scope : scopes) {
    if (anchor::preemptive::detect_bimodal(scope)) ++bimodal;
  }
  std::printf("bimodal-scope CAs    : %zu (candidates for certificate splits)\n",
              bimodal);
  return p90 <= 10 ? 0 : 1;
}
