// Experiments E3 + E11 — pre-emptive constraints (§5.2, Listing 3).
//
// (a) micro-benchmarks: scope analysis over the corpus, GCC synthesis, and
//     evaluation of the paper's Listing 3;
// (b) the E11 enforcement table: synthesized per-root GCCs must accept all
//     in-scope (historically observed) issuance and reject out-of-scope
//     issuance across four escape dimensions (novel TLD, novel EKU, novel
//     key usage, inflated lifetime), with the CAge baseline alongside —
//     shape: CAge catches only the name dimension, GCCs catch all four.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/executor.hpp"
#include "corpus/corpus.hpp"
#include "incidents/listings.hpp"
#include "preemptive/synthesis.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace {

using namespace anchor;

const corpus::Corpus& bench_corpus() {
  static const corpus::Corpus corpus = [] {
    corpus::CorpusConfig config;
    config.num_roots = 40;
    config.num_intermediates = 120;
    config.roots_with_path_len = 2;
    config.intermediates_with_path_len = 100;
    config.intermediates_with_name_constraints = 6;
    config.roots_with_constrained_chain = 3;
    config.leaves_per_intermediate_mean = 20.0;
    return corpus::Corpus::generate(config);
  }();
  return corpus;
}

void BM_AnalyzeScopes(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  for (auto _ : state) {
    auto scopes = preemptive::analyze_roots(corpus);
    benchmark::DoNotOptimize(scopes);
  }
  state.counters["leaves"] = static_cast<double>(corpus.leaves().size());
}
BENCHMARK(BM_AnalyzeScopes);

void BM_SynthesizeGcc(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  auto scopes = preemptive::analyze_roots(corpus);
  std::size_t busiest = 0;
  for (std::size_t r = 0; r < scopes.size(); ++r) {
    if (scopes[r].certificates_observed >
        scopes[busiest].certificates_observed) {
      busiest = r;
    }
  }
  for (auto _ : state) {
    auto gcc = preemptive::synthesize("bench", *corpus.roots()[busiest].cert,
                                      scopes[busiest]);
    benchmark::DoNotOptimize(gcc);
  }
}
BENCHMARK(BM_SynthesizeGcc);

void BM_EvaluateSynthesizedGcc(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  auto scopes = preemptive::analyze_roots(corpus);
  std::size_t busiest = 0;
  for (std::size_t r = 0; r < scopes.size(); ++r) {
    if (scopes[r].certificates_observed >
        scopes[busiest].certificates_observed) {
      busiest = r;
    }
  }
  core::Gcc gcc = preemptive::synthesize("bench", *corpus.roots()[busiest].cert,
                                         scopes[busiest])
                      .take();
  // Any chain under that root.
  std::size_t leaf_index = 0;
  for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
    const auto& intermediate =
        corpus.intermediates()[static_cast<std::size_t>(
            corpus.leaves()[i].issuer_intermediate)];
    if (static_cast<std::size_t>(intermediate.parent_root) == busiest) {
      leaf_index = i;
      break;
    }
  }
  core::Chain chain = corpus.chain_for_leaf(leaf_index);
  core::GccExecutor executor;
  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "TLS", gcc);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EvaluateSynthesizedGcc);

void BM_EvaluateListing3(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  core::Gcc gcc = core::Gcc::for_certificate("listing3",
                                             *corpus.roots()[0].cert,
                                             incidents::listing3_preemptive())
                      .take();
  core::Chain chain = corpus.chain_for_leaf(0);
  core::GccExecutor executor;
  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "TLS", gcc);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EvaluateListing3);

// ---------------------------------------------------------------------------

void print_e11_table() {
  const auto& corpus = bench_corpus();
  auto scopes = preemptive::analyze_roots(corpus);
  core::GccExecutor executor;

  std::size_t in_scope_total = 0;
  std::size_t in_scope_accepted = 0;
  std::size_t escapes_caught_gcc[4] = {0, 0, 0, 0};
  std::size_t escapes_caught_cage[4] = {0, 0, 0, 0};
  std::size_t escape_attempts = 0;

  corpus::Corpus mutable_corpus = corpus;  // for misissue()

  for (std::size_t r = 0; r < corpus.roots().size(); ++r) {
    if (scopes[r].empty()) continue;
    core::Gcc gcc =
        preemptive::synthesize("auto", *corpus.roots()[r].cert, scopes[r])
            .take();
    preemptive::CageFilter cage(scopes[r]);

    // In-scope: every historically issued leaf must still validate.
    for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
      const auto& record = corpus.leaves()[i];
      const auto& intermediate =
          corpus.intermediates()[static_cast<std::size_t>(
              record.issuer_intermediate)];
      if (static_cast<std::size_t>(intermediate.parent_root) != r) continue;
      if (in_scope_total >= 400) break;
      ++in_scope_total;
      core::Chain chain = corpus.chain_for_leaf(i);
      if (executor.evaluate_one(chain, record.smime ? "S/MIME" : "TLS", gcc)) {
        ++in_scope_accepted;
      }
    }

    // Escapes: a compromised CA issues outside its scope. One per
    // dimension per root (first subordinate used as the signing mule).
    int first_int = -1;
    for (std::size_t i = 0; i < corpus.intermediates().size(); ++i) {
      if (static_cast<std::size_t>(corpus.intermediates()[i].parent_root) == r) {
        first_int = static_cast<int>(i);
        break;
      }
    }
    if (first_int < 0 || escape_attempts >= 40 || scopes[r].tlds.empty()) {
      continue;
    }
    const auto& issuer = corpus.intermediates()[static_cast<std::size_t>(first_int)];
    std::int64_t now = corpus.config().validation_time();
    const std::string in_scope_tld = *scopes[r].tlds.begin();

    auto evaluate_escape = [&](int dimension, const x509::CertPtr& leaf) {
      core::Chain chain{leaf, issuer.cert,
                        corpus.roots()[r].cert};
      if (!executor.evaluate_one(chain, "TLS", gcc)) {
        ++escapes_caught_gcc[dimension];
      }
      if (!cage.allows(*leaf)) ++escapes_caught_cage[dimension];
    };

    // Dimension 0: novel TLD (guaranteed outside any corpus scope).
    evaluate_escape(
        0, mutable_corpus.misissue(static_cast<std::size_t>(first_int),
                                   "target.novel-escape-tld", now, 90));
    // Dimension 1: novel EKU (code signing never appears in the corpus).
    {
      SimKeyPair key = SimSig::keygen("escape-eku");
      auto leaf = x509::CertificateBuilder()
                      .serial(900000 + r)
                      .subject(x509::DistinguishedName::make("sw." + in_scope_tld))
                      .issuer(issuer.cert->subject())
                      .validity(now, now + 30 * 86400)
                      .public_key(key.key_id)
                      .dns_names({"sw." + in_scope_tld})
                      .extended_key_usage({x509::oids::kp_code_signing()})
                      .sign(issuer.key)
                      .take();
      evaluate_escape(1, leaf);
    }
    // Dimension 2: novel key usage (cRLSign on a leaf).
    {
      SimKeyPair key = SimSig::keygen("escape-ku");
      x509::KeyUsage ku;
      ku.set(x509::KeyUsageBit::kCrlSign);
      auto leaf = x509::CertificateBuilder()
                      .serial(910000 + r)
                      .subject(x509::DistinguishedName::make(
                          "crl." + in_scope_tld))
                      .issuer(issuer.cert->subject())
                      .validity(now, now + 30 * 86400)
                      .public_key(key.key_id)
                      .key_usage(ku)
                      .dns_names({"crl." + in_scope_tld})
                      .extended_key_usage({x509::oids::kp_server_auth()})
                      .sign(issuer.key)
                      .take();
      evaluate_escape(2, leaf);
    }
    // Dimension 3: inflated lifetime (10x the observed max).
    {
      SimKeyPair key = SimSig::keygen("escape-lifetime");
      auto leaf = x509::CertificateBuilder()
                      .serial(920000 + r)
                      .subject(x509::DistinguishedName::make(
                          "long." + in_scope_tld))
                      .issuer(issuer.cert->subject())
                      .validity(now, now + scopes[r].max_lifetime_seconds * 10)
                      .public_key(key.key_id)
                      .dns_names({"long." + in_scope_tld})
                      .extended_key_usage({x509::oids::kp_server_auth()})
                      .sign(issuer.key)
                      .take();
      evaluate_escape(3, leaf);
    }
    ++escape_attempts;
  }

  std::printf("\n=== E11: pre-emptive GCC enforcement (paper §5.2) ===\n");
  std::printf("in-scope acceptance : %zu/%zu (target: all — no collateral "
              "damage)\n",
              in_scope_accepted, in_scope_total);
  std::printf("\n%-26s %14s %14s\n", "escape dimension", "GCC caught",
              "CAge caught");
  const char* names[4] = {"novel TLD", "novel EKU", "novel key usage",
                          "inflated lifetime"};
  for (int d = 0; d < 4; ++d) {
    std::printf("%-26s %10zu/%-3zu %10zu/%-3zu\n", names[d],
                escapes_caught_gcc[d], escape_attempts,
                escapes_caught_cage[d], escape_attempts);
  }
  bool shape = in_scope_accepted == in_scope_total &&
               escapes_caught_gcc[0] == escape_attempts &&
               escapes_caught_gcc[1] == escape_attempts &&
               escapes_caught_gcc[2] == escape_attempts &&
               escapes_caught_gcc[3] == escape_attempts &&
               escapes_caught_cage[0] == escape_attempts &&
               escapes_caught_cage[1] == 0 && escapes_caught_cage[3] == 0;
  std::printf("\nshape check: %s (GCCs constrain every field; CAge, names "
              "only — the paper's stated advantage)\n",
              shape ? "HOLDS" : "VIOLATED");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_e11_table();
  return 0;
}
