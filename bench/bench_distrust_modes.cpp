// Experiment E8 — binary vs partial distrust (§2.3, the Debian/Symantec
// story): "In 2018, Debian imprecisely mimicked Mozilla's partial distrust
// of Symantec roots by simply removing them from their store, resulting in
// collateral service disruption that forced them to completely restore the
// roots."
//
// Builds a Symantec-shaped population of chains (pre-cutoff legacy leaves,
// post-cutoff leaves, post-cutoff leaves under exempt intermediates, and
// fraudulent post-cutoff leaves) and scores three derivative strategies
// against the primary's GCC policy:
//
//   remove   — drop the root entirely (Debian 2018)
//   retain   — keep the root, no GCC support (frozen derivative)
//   gcc      — RSF-delivered GCC (the paper's proposal)
//
// Shape to reproduce: removal breaks all still-valid service; retention
// accepts everything the primary rejects; the GCC matches the primary
// exactly.
#include <cstdio>

#include "chain/verifier.hpp"
#include "incidents/incidents.hpp"
#include "incidents/listings.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace {

using namespace anchor;

struct Workload {
  struct Item {
    x509::CertPtr leaf;
    chain::VerifyOptions options;
    bool primary_accepts;
  };
  std::vector<Item> items;
  incidents::Incident incident;
};

Workload build_workload(std::size_t population) {
  Workload workload;
  workload.incident = incidents::make_symantec();

  // Regenerate issuing material so we can mint many leaves.
  SimKeyPair normal_key = SimSig::keygen("Symantec Class 3 Secure Server CA");
  SimKeyPair apple_key = SimSig::keygen("Apple IST CA 2");
  workload.incident.signatures.register_key(normal_key);
  workload.incident.signatures.register_key(apple_key);

  const auto& pool = workload.incident.pool;
  x509::CertPtr normal_int =
      pool.by_subject(x509::DistinguishedName::make(
          "Symantec Class 3 Secure Server CA", "Symantec Corporation"))[0];
  x509::CertPtr apple_int = pool.by_subject(x509::DistinguishedName::make(
      "Apple IST CA 2", "Symantec Corporation"))[0];

  Rng rng(2018);
  std::int64_t cutoff = 1464753600;  // the listing's June 1 2016
  std::int64_t now = unix_date(2018, 6, 15);

  for (std::size_t i = 0; i < population; ++i) {
    std::string domain = "site" + std::to_string(i) + ".example.com";
    double bucket = rng.uniform01();
    bool pre_cutoff = bucket < 0.55;         // legacy majority
    bool exempt = !pre_cutoff && bucket < 0.70;
    // Pre-cutoff leaves must still be inside their validity window at the
    // 2018 validation instant, or "primary accepts" would be mislabeled.
    std::int64_t not_before =
        pre_cutoff ? cutoff - rng.uniform_range(30, 720) * 86400
                   : cutoff + rng.uniform_range(30, 700) * 86400;
    std::int64_t lifetime = 4 * 365 * 86400;

    SimKeyPair key = SimSig::keygen("wl-leaf-" + std::to_string(i));
    const SimKeyPair& issuer_key = exempt ? apple_key : normal_key;
    const x509::CertPtr& issuer = exempt ? apple_int : normal_int;
    auto leaf = x509::CertificateBuilder()
                    .serial(1000 + i)
                    .subject(x509::DistinguishedName::make(domain))
                    .issuer(issuer->subject())
                    .validity(not_before, not_before + lifetime)
                    .public_key(key.key_id)
                    .dns_names({domain})
                    .extended_key_usage({x509::oids::kp_server_auth()})
                    .sign(issuer_key)
                    .take();

    Workload::Item item;
    item.leaf = leaf;
    item.options.time = now;
    item.options.hostname = domain;
    item.primary_accepts = pre_cutoff || exempt;
    workload.items.push_back(std::move(item));
  }
  return workload;
}

struct Score {
  std::size_t false_rejects = 0;  // primary accepts, derivative rejects
  std::size_t false_accepts = 0;  // primary rejects, derivative accepts
  std::size_t total = 0;
};

Score score(const chain::ChainVerifier& verifier, const Workload& workload,
            bool run_gccs) {
  Score s;
  for (const auto& item : workload.items) {
    chain::VerifyOptions options = item.options;
    options.run_gccs = run_gccs;
    bool verdict =
        verifier.verify(item.leaf, workload.incident.pool, options).ok;
    if (item.primary_accepts && !verdict) ++s.false_rejects;
    if (!item.primary_accepts && verdict) ++s.false_accepts;
    ++s.total;
  }
  return s;
}

}  // namespace

int main() {
  constexpr std::size_t kPopulation = 400;
  Workload workload = build_workload(kPopulation);

  std::size_t primary_accepts = 0;
  for (const auto& item : workload.items) {
    if (item.primary_accepts) ++primary_accepts;
  }

  std::printf("=== E8: binary vs partial distrust (paper §2.3) ===\n");
  std::printf("population: %zu chains to a Symantec root "
              "(%zu accepted by the primary policy, %zu rejected)\n\n",
              kPopulation, primary_accepts, kPopulation - primary_accepts);

  // Strategy 1: remove the root (Debian 2018).
  rootstore::RootStore removed;
  chain::ChainVerifier remove_verifier(removed, workload.incident.signatures);
  Score remove_score = score(remove_verifier, workload, true);

  // Strategy 2: retain the root, no GCC support.
  chain::ChainVerifier retain_verifier(workload.incident.store,
                                       workload.incident.signatures);
  Score retain_score = score(retain_verifier, workload, /*run_gccs=*/false);

  // Strategy 3: RSF-delivered GCC (the paper's proposal).
  Score gcc_score = score(retain_verifier, workload, /*run_gccs=*/true);

  std::printf("%-28s %15s %15s\n", "derivative strategy", "false rejects",
              "false accepts");
  auto row = [&](const char* name, const Score& s) {
    std::printf("%-28s %9zu/%-5zu %9zu/%-5zu\n", name, s.false_rejects,
                primary_accepts, s.false_accepts,
                kPopulation - primary_accepts);
  };
  row("remove root (Debian 2018)", remove_score);
  row("retain root, no GCCs", retain_score);
  row("GCC via RSF (proposal)", gcc_score);

  bool shape = remove_score.false_rejects == primary_accepts &&
               retain_score.false_accepts == kPopulation - primary_accepts &&
               gcc_score.false_rejects == 0 && gcc_score.false_accepts == 0;
  std::printf("\nshape check: %s\n", shape ? "HOLDS" : "VIOLATED");
  std::printf("  removal breaks every still-valid chain (denial of service),\n"
              "  retention accepts every distrusted chain (exposure),\n"
              "  the GCC derivative matches the primary exactly.\n");
  return shape ? 0 : 1;
}
