// Experiment E8 — binary vs partial distrust (§2.3, the Debian/Symantec
// story): "In 2018, Debian imprecisely mimicked Mozilla's partial distrust
// of Symantec roots by simply removing them from their store, resulting in
// collateral service disruption that forced them to completely restore the
// roots."
//
// Builds a Symantec-shaped population of chains (pre-cutoff legacy leaves,
// post-cutoff leaves, post-cutoff leaves under exempt intermediates, and
// fraudulent post-cutoff leaves) and scores three derivative strategies
// against the primary's GCC policy:
//
//   remove   — drop the root entirely (Debian 2018)
//   retain   — keep the root, no GCC support (frozen derivative)
//   gcc      — RSF-delivered GCC (the paper's proposal)
//
// Shape to reproduce: removal breaks all still-valid service; retention
// accepts everything the primary rejects; the GCC matches the primary
// exactly.
// Experiment E18 (appended below) — compressed revocation over the RSF:
// CRLite-style filter cascade vs the OneCRL-equivalent push list vs the
// revocation-GCC subsumption construction, on the same revoked population:
// serialized sizes, per-chain verification cost, three-way verdict
// agreement, and the fleet-wide wave cost of shipping one revocation
// update through the RSF delta transport (E17's propagation model).
#include <chrono>
#include <cstdio>
#include <memory>

#include "chain/verifier.hpp"
#include "incidents/incidents.hpp"
#include "incidents/listings.hpp"
#include "revocation/crlite.hpp"
#include "revocation/revocation.hpp"
#include "rsf/delta.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace {

using namespace anchor;

struct Workload {
  struct Item {
    x509::CertPtr leaf;
    chain::VerifyOptions options;
    bool primary_accepts;
  };
  std::vector<Item> items;
  incidents::Incident incident;
};

Workload build_workload(std::size_t population) {
  Workload workload;
  workload.incident = incidents::make_symantec();

  // Regenerate issuing material so we can mint many leaves.
  SimKeyPair normal_key = SimSig::keygen("Symantec Class 3 Secure Server CA");
  SimKeyPair apple_key = SimSig::keygen("Apple IST CA 2");
  workload.incident.signatures.register_key(normal_key);
  workload.incident.signatures.register_key(apple_key);

  const auto& pool = workload.incident.pool;
  x509::CertPtr normal_int =
      pool.by_subject(x509::DistinguishedName::make(
          "Symantec Class 3 Secure Server CA", "Symantec Corporation"))[0];
  x509::CertPtr apple_int = pool.by_subject(x509::DistinguishedName::make(
      "Apple IST CA 2", "Symantec Corporation"))[0];

  Rng rng(2018);
  std::int64_t cutoff = 1464753600;  // the listing's June 1 2016
  std::int64_t now = unix_date(2018, 6, 15);

  for (std::size_t i = 0; i < population; ++i) {
    std::string domain = "site" + std::to_string(i) + ".example.com";
    double bucket = rng.uniform01();
    bool pre_cutoff = bucket < 0.55;         // legacy majority
    bool exempt = !pre_cutoff && bucket < 0.70;
    // Pre-cutoff leaves must still be inside their validity window at the
    // 2018 validation instant, or "primary accepts" would be mislabeled.
    std::int64_t not_before =
        pre_cutoff ? cutoff - rng.uniform_range(30, 720) * 86400
                   : cutoff + rng.uniform_range(30, 700) * 86400;
    std::int64_t lifetime = 4 * 365 * 86400;

    SimKeyPair key = SimSig::keygen("wl-leaf-" + std::to_string(i));
    const SimKeyPair& issuer_key = exempt ? apple_key : normal_key;
    const x509::CertPtr& issuer = exempt ? apple_int : normal_int;
    auto leaf = x509::CertificateBuilder()
                    .serial(1000 + i)
                    .subject(x509::DistinguishedName::make(domain))
                    .issuer(issuer->subject())
                    .validity(not_before, not_before + lifetime)
                    .public_key(key.key_id)
                    .dns_names({domain})
                    .extended_key_usage({x509::oids::kp_server_auth()})
                    .sign(issuer_key)
                    .take();

    Workload::Item item;
    item.leaf = leaf;
    item.options.time = now;
    item.options.hostname = domain;
    item.primary_accepts = pre_cutoff || exempt;
    workload.items.push_back(std::move(item));
  }
  return workload;
}

struct Score {
  std::size_t false_rejects = 0;  // primary accepts, derivative rejects
  std::size_t false_accepts = 0;  // primary rejects, derivative accepts
  std::size_t total = 0;
};

Score score(const chain::ChainVerifier& verifier, const Workload& workload,
            bool run_gccs) {
  Score s;
  for (const auto& item : workload.items) {
    chain::VerifyOptions options = item.options;
    options.run_gccs = run_gccs;
    bool verdict =
        verifier.verify(item.leaf, workload.incident.pool, options).ok;
    if (item.primary_accepts && !verdict) ++s.false_rejects;
    if (!item.primary_accepts && verdict) ++s.false_accepts;
    ++s.total;
  }
  return s;
}

// ---------------------------------------------------------------------------
// E18: compressed revocation vs push list vs GCC subsumption.

struct E18Leaf {
  x509::CertPtr leaf;
  std::string host;
  bool revoked;
};

int run_e18() {
  constexpr std::size_t kIntermediates = 8;
  constexpr std::size_t kRevokedPer = 25;
  constexpr std::size_t kValidPer = 225;

  SimSig sigs;
  std::uint64_t serial = 1;

  SimKeyPair root_key = SimSig::keygen("E18 Revocation Root");
  x509::CertPtr root =
      x509::CertificateBuilder()
          .serial(serial++)
          .subject(x509::DistinguishedName::make("E18 Revocation Root",
                                                 "E18 Trust"))
          .issuer(x509::DistinguishedName::make("E18 Revocation Root",
                                                "E18 Trust"))
          .validity(unix_date(2005, 1, 1), unix_date(2035, 1, 1))
          .public_key(root_key.key_id)
          .ca(std::nullopt)
          .sign(root_key)
          .take();
  sigs.register_key(root_key);

  rootstore::RootStore store;
  (void)store.add_trusted(root);
  chain::CertificatePool pool;

  revocation::CompressedRevocationSet::Builder crlite_builder;
  auto onecrl = std::make_shared<revocation::OneCrl>();
  std::vector<std::string> revoked_hashes;
  std::vector<E18Leaf> population;

  std::int64_t not_before = unix_date(2023, 1, 1);
  for (std::size_t i = 0; i < kIntermediates; ++i) {
    std::string name = "E18 Issuing CA " + std::to_string(i);
    SimKeyPair ca_key = SimSig::keygen(name);
    x509::CertPtr ca_cert =
        x509::CertificateBuilder()
            .serial(serial++)
            .subject(x509::DistinguishedName::make(name, "E18 Trust"))
            .issuer(root->subject())
            .validity(unix_date(2008, 1, 1), unix_date(2033, 1, 1))
            .public_key(ca_key.key_id)
            .ca(0)
            .sign(root_key)
            .take();
    sigs.register_key(ca_key);
    pool.add(ca_cert);
    crlite_builder.enroll(*ca_cert);

    for (std::size_t j = 0; j < kRevokedPer + kValidPer; ++j) {
      bool revoked = j < kRevokedPer;
      std::string host = "e18-" + std::to_string(i) + "-" +
                         std::to_string(j) + ".example.com";
      SimKeyPair key = SimSig::keygen("leaf-" + host);
      x509::KeyUsage ku;
      ku.set(x509::KeyUsageBit::kDigitalSignature);
      x509::CertPtr leaf =
          x509::CertificateBuilder()
              .serial(serial++)
              .subject(x509::DistinguishedName::make(host))
              .issuer(ca_cert->subject())
              .validity(not_before, not_before + 398 * 86400)
              .public_key(key.key_id)
              .key_usage(ku)
              .dns_names({host})
              .extended_key_usage({x509::oids::kp_server_auth()})
              .sign(ca_key)
              .take();
      if (revoked) {
        crlite_builder.add_revoked(*ca_cert, *leaf);
        onecrl->block(*leaf);
        revoked_hashes.push_back(leaf->fingerprint_hex());
      } else {
        crlite_builder.add_valid(*ca_cert, *leaf);
      }
      population.push_back({std::move(leaf), std::move(host), revoked});
    }
  }

  auto built = crlite_builder.build();
  if (!built.ok()) {
    std::printf("E18: CRLite build failed: %s\n", built.error().c_str());
    return 1;
  }
  auto crlite = std::make_shared<revocation::CompressedRevocationSet>(
      std::move(built.value()));

  auto gcc = revocation::revocation_gcc(
      "e18-revocations", *root, revoked_hashes,
      "E18: OneCRL-equivalent revocation expressed as a GCC");
  if (!gcc.ok()) {
    std::printf("E18: revocation_gcc failed: %s\n", gcc.error().c_str());
    return 1;
  }
  rootstore::RootStore gcc_store;
  (void)gcc_store.add_trusted(root);
  gcc_store.attach_gcc(gcc.value());

  std::printf("\n=== E18: compressed revocation vs push list vs GCC ===\n");
  std::printf("population: %zu issuing CAs x %zu leaves (%zu revoked, "
              "%zu known-valid)\n\n",
              kIntermediates, kRevokedPer + kValidPer,
              kIntermediates * kRevokedPer, kIntermediates * kValidPer);

  std::printf("%-34s %12s\n", "mechanism", "bytes");
  std::printf("%-34s %12zu  (%zu cascade levels, filter payload %zu B)\n",
              "CRLite cascade (serialized)", crlite->size_bytes(),
              crlite->level_count(), crlite->filter_bytes());
  std::printf("%-34s %12zu  (%zu entries)\n",
              "OneCRL-equivalent list", onecrl->serialize().size(),
              onecrl->size());
  std::printf("%-34s %12zu  (datalog source)\n",
              "revocation GCC (subsumption)", gcc.value().source().size());

  // Per-chain verification cost, each mechanism registered as the sole
  // revocation source (the GCC variant pays at the root instead).
  chain::VerifyOptions base;
  base.time = unix_date(2023, 9, 1);

  auto timed = [&](const chain::ChainVerifier& verifier, bool run_gccs,
                   std::vector<bool>& verdicts) {
    verdicts.clear();
    verdicts.reserve(population.size());
    auto start = std::chrono::steady_clock::now();
    for (const E18Leaf& item : population) {
      chain::VerifyOptions options = base;
      options.hostname = item.host;
      options.run_gccs = run_gccs;
      verdicts.push_back(verifier.verify(item.leaf, pool, options).ok);
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                   .count()) /
           static_cast<double>(population.size());
  };

  chain::ChainVerifier crlite_verifier(store, sigs);
  crlite_verifier.add_revocation_source(crlite);
  chain::ChainVerifier onecrl_verifier(store, sigs);
  onecrl_verifier.add_revocation_source(onecrl);
  chain::ChainVerifier gcc_verifier(gcc_store, sigs);

  std::vector<bool> crlite_verdicts, onecrl_verdicts, gcc_verdicts;
  double crlite_ns = timed(crlite_verifier, false, crlite_verdicts);
  double onecrl_ns = timed(onecrl_verifier, false, onecrl_verdicts);
  double gcc_ns = timed(gcc_verifier, true, gcc_verdicts);

  std::printf("\n%-34s %14s\n", "mechanism", "verify ns/chain");
  std::printf("%-34s %14.0f\n", "CRLite cascade lookup", crlite_ns);
  std::printf("%-34s %14.0f\n", "OneCRL-equivalent list lookup", onecrl_ns);
  std::printf("%-34s %14.0f\n", "revocation GCC at the root", gcc_ns);

  // Three-way agreement, and each mechanism against ground truth.
  bool agree = true;
  for (std::size_t i = 0; i < population.size(); ++i) {
    bool expect = !population[i].revoked;
    if (crlite_verdicts[i] != expect || onecrl_verdicts[i] != expect ||
        gcc_verdicts[i] != expect) {
      agree = false;
      break;
    }
  }
  std::printf("\nthree-way verdict agreement (vs ground truth): %s\n",
              agree ? "HOLDS" : "VIOLATED");

  // Fleet wave cost: the bytes one revocation update puts on the wire per
  // client. CRLite and the GCC ride the RSF delta transport (E17's model);
  // the OneCRL-equivalent list is its own out-of-band push payload.
  rsf::StoreDelta filter_delta;
  filter_delta.set_filter = crlite;
  rsf::StoreDelta gcc_delta;
  gcc_delta.attach_gccs.push_back(gcc.value());
  std::size_t filter_wire = filter_delta.serialize().size();
  std::size_t gcc_wire = gcc_delta.serialize().size();
  std::size_t list_wire = onecrl->serialize().size();

  std::printf("\nwave propagation (one revocation update, bytes/client on "
              "the wire):\n");
  std::printf("%-34s %12s %14s %14s %14s\n", "mechanism", "bytes/client",
              "fleet 10^4", "fleet 10^5", "fleet 10^6");
  auto wave_row = [](const char* name, std::size_t per_client) {
    std::printf("%-34s %12zu %13.1fMB %13.1fMB %13.1fMB\n", name, per_client,
                per_client * 1e4 / 1e6, per_client * 1e5 / 1e6,
                per_client * 1e6 / 1e6);
  };
  wave_row("CRLite filter via RSF delta", filter_wire);
  wave_row("revocation GCC via RSF delta", gcc_wire);
  wave_row("OneCRL-equivalent push list", list_wire);

  return agree ? 0 : 1;
}

}  // namespace

int main() {
  constexpr std::size_t kPopulation = 400;
  Workload workload = build_workload(kPopulation);

  std::size_t primary_accepts = 0;
  for (const auto& item : workload.items) {
    if (item.primary_accepts) ++primary_accepts;
  }

  std::printf("=== E8: binary vs partial distrust (paper §2.3) ===\n");
  std::printf("population: %zu chains to a Symantec root "
              "(%zu accepted by the primary policy, %zu rejected)\n\n",
              kPopulation, primary_accepts, kPopulation - primary_accepts);

  // Strategy 1: remove the root (Debian 2018).
  rootstore::RootStore removed;
  chain::ChainVerifier remove_verifier(removed, workload.incident.signatures);
  Score remove_score = score(remove_verifier, workload, true);

  // Strategy 2: retain the root, no GCC support.
  chain::ChainVerifier retain_verifier(workload.incident.store,
                                       workload.incident.signatures);
  Score retain_score = score(retain_verifier, workload, /*run_gccs=*/false);

  // Strategy 3: RSF-delivered GCC (the paper's proposal).
  Score gcc_score = score(retain_verifier, workload, /*run_gccs=*/true);

  std::printf("%-28s %15s %15s\n", "derivative strategy", "false rejects",
              "false accepts");
  auto row = [&](const char* name, const Score& s) {
    std::printf("%-28s %9zu/%-5zu %9zu/%-5zu\n", name, s.false_rejects,
                primary_accepts, s.false_accepts,
                kPopulation - primary_accepts);
  };
  row("remove root (Debian 2018)", remove_score);
  row("retain root, no GCCs", retain_score);
  row("GCC via RSF (proposal)", gcc_score);

  bool shape = remove_score.false_rejects == primary_accepts &&
               retain_score.false_accepts == kPopulation - primary_accepts &&
               gcc_score.false_rejects == 0 && gcc_score.false_accepts == 0;
  std::printf("\nshape check: %s\n", shape ? "HOLDS" : "VIOLATED");
  std::printf("  removal breaks every still-valid chain (denial of service),\n"
              "  retention accepts every distrusted chain (exposure),\n"
              "  the GCC derivative matches the primary exactly.\n");

  int e18 = run_e18();
  return (shape && e18 == 0) ? 0 : 1;
}
