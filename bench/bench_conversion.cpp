// Experiment E4 — certificate -> Datalog conversion cost (§3.1).
//
// Paper: "We performed a preliminary performance analysis in which we
// measured the time taken to convert ~100K certificates to their respective
// sets of Datalog statements and found that the mean (unoptimized)
// conversion time was ~2.4ms."
//
// This binary (a) micro-benchmarks the per-certificate and per-chain
// encoders via google-benchmark, and (b) reproduces the E4 headline: a
// 100K-certificate sweep reporting the mean per-certificate conversion
// time. Absolute numbers will differ from the authors' (different machine,
// different representation); the shape to hold is LOW-MILLISECONDS-OR-LESS
// per certificate, linear in chain size.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/facts.hpp"
#include "corpus/corpus.hpp"

namespace {

using anchor::core::Chain;
using anchor::core::encode_certificate;
using anchor::core::encode_chain;
using anchor::core::FactSet;
using anchor::corpus::Corpus;
using anchor::corpus::CorpusConfig;

const Corpus& bench_corpus() {
  static const Corpus corpus = [] {
    CorpusConfig config;
    config.leaves_per_intermediate_mean = 12.0;
    return Corpus::generate(config);
  }();
  return corpus;
}

void BM_EncodeCertificate(benchmark::State& state) {
  const Corpus& corpus = bench_corpus();
  std::size_t i = 0;
  std::size_t facts_total = 0;
  for (auto _ : state) {
    FactSet facts;
    encode_certificate(*corpus.leaves()[i % corpus.leaves().size()].cert,
                       facts);
    facts_total += facts.size();
    benchmark::DoNotOptimize(facts);
    ++i;
  }
  state.counters["facts/cert"] =
      benchmark::Counter(static_cast<double>(facts_total) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_EncodeCertificate);

void BM_EncodeChain(benchmark::State& state) {
  const Corpus& corpus = bench_corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    FactSet facts;
    Chain chain = corpus.chain_for_leaf(i % corpus.leaves().size());
    encode_chain(chain, "bench-chain", facts);
    benchmark::DoNotOptimize(facts);
    ++i;
  }
}
BENCHMARK(BM_EncodeChain);

void BM_EncodeAndLoadIntoEngine(benchmark::State& state) {
  const Corpus& corpus = bench_corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    FactSet facts;
    Chain chain = corpus.chain_for_leaf(i % corpus.leaves().size());
    encode_chain(chain, "bench-chain", facts);
    anchor::datalog::Engine engine;
    facts.load_into(engine);
    benchmark::DoNotOptimize(engine);
    ++i;
  }
}
BENCHMARK(BM_EncodeAndLoadIntoEngine);

// The paper's headline number, reproduced as a bulk sweep.
void run_e4_headline() {
  constexpr std::size_t kTarget = 100000;
  const Corpus& corpus = bench_corpus();
  const std::size_t population = corpus.leaves().size();

  auto start = std::chrono::steady_clock::now();
  std::size_t facts_total = 0;
  for (std::size_t i = 0; i < kTarget; ++i) {
    FactSet facts;
    encode_certificate(*corpus.leaves()[i % population].cert, facts);
    facts_total += facts.size();
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  double mean_us = static_cast<double>(elapsed) / kTarget;
  std::printf("\n=== E4: certificate -> Datalog conversion (paper §3.1) ===\n");
  std::printf("certificates converted : %zu\n", kTarget);
  std::printf("mean facts/certificate : %.1f\n",
              static_cast<double>(facts_total) / kTarget);
  std::printf("mean conversion time   : %.4f ms   (paper: ~2.4 ms unoptimized)\n",
              mean_us / 1000.0);
  std::printf("total sweep time       : %.2f s\n",
              static_cast<double>(elapsed) / 1e6);
  std::printf("shape check            : %s (low-ms-or-less per certificate)\n",
              mean_us / 1000.0 < 2.4 * 4 ? "HOLDS" : "VIOLATED");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_e4_headline();
  return 0;
}
