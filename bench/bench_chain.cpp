// Experiment E9 — GCC execution placement (§3.1's three deployment
// options) measured on the chain-validation hot path:
//
//   user-agent   — GCCs execute in-process inside the verifier (default);
//   platform     — a trustd-style daemon: certificates cross a DER
//                  serialize/parse boundary plus a simulated IPC round trip
//                  (latency swept);
//   redesign     — the daemon performs complete validation (Hammurabi
//                  model): one IPC round trip for everything.
//
// Baseline: plain validation with no GCCs, to isolate the GCC tax.
#include <benchmark/benchmark.h>

#include "chain/daemon.hpp"
#include "corpus/corpus.hpp"
#include "incidents/listings.hpp"

namespace {

using namespace anchor;

struct Fixture {
  corpus::Corpus corpus;
  rootstore::RootStore store_plain;
  rootstore::RootStore store_gcc;
  chain::CertificatePool pool;
  std::vector<std::size_t> leaf_indices;
  std::int64_t now;

  Fixture()
      : corpus([] {
          corpus::CorpusConfig config;
          config.num_roots = 40;
          config.num_intermediates = 120;
          config.roots_with_path_len = 2;
          config.intermediates_with_path_len = 100;
          config.intermediates_with_name_constraints = 6;
          config.roots_with_constrained_chain = 3;
          config.leaves_per_intermediate_mean = 10.0;
          return corpus::Corpus::generate(config);
        }()),
        store_plain(corpus.make_root_store()),
        store_gcc(corpus.make_root_store()),
        pool(corpus.intermediate_pool()),
        now(corpus.config().validation_time()) {
    // Attach a Listing-1-style GCC to every root: the worst-case "every
    // root constrained" deployment.
    for (const auto& root : corpus.roots()) {
      store_gcc.gccs().attach(
          core::Gcc::for_certificate("date-usage", *root.cert,
                                     incidents::listing1_trustcor())
              .take());
    }
    // Pick TLS leaves that are valid at `now` and predate the Listing 1
    // cutoff (so the GCC accepts them and the full path executes).
    for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
      const auto& record = corpus.leaves()[i];
      if (record.smime) continue;
      if (!record.cert->valid_at(now)) continue;
      if (record.cert->not_before() >= 1669784400) continue;
      leaf_indices.push_back(i);
      if (leaf_indices.size() >= 200) break;
    }
  }

  chain::VerifyOptions options_for(std::size_t leaf_index) const {
    chain::VerifyOptions options;
    options.time = now;
    options.hostname = corpus.leaves()[leaf_index].domain;
    return options;
  }
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

void BM_Validate_NoGcc(benchmark::State& state) {
  const Fixture& f = fixture();
  chain::ChainVerifier verifier(f.store_plain, f.corpus.signatures());
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_Validate_NoGcc);

void BM_Validate_UserAgentGcc(benchmark::State& state) {
  const Fixture& f = fixture();
  chain::ChainVerifier verifier(f.store_gcc, f.corpus.signatures());
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_Validate_UserAgentGcc);

// Platform daemon: the verifier delegates GCC execution across a simulated
// IPC boundary. Latency per leg swept: 0 (colocated), 50us (UNIX socket),
// 500us (loaded system).
void BM_Validate_PlatformDaemon(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto latency_ns = static_cast<std::uint64_t>(state.range(0));
  chain::TrustDaemon daemon(f.store_gcc, f.corpus.signatures(), latency_ns);
  chain::ChainVerifier verifier(f.store_gcc, f.corpus.signatures());
  verifier.set_gcc_hook([&daemon](const core::Chain& chain,
                                  std::string_view usage,
                                  std::span<const core::Gcc>,
                                  core::GccVerdict&) {
    std::vector<Bytes> der;
    der.reserve(chain.size());
    for (const auto& cert : chain) der.push_back(cert->der());
    return daemon.evaluate_gccs(der, usage);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_Validate_PlatformDaemon)
    ->Arg(0)
    ->Arg(50000)
    ->Arg(500000)
    ->ArgNames({"ipc_ns"});

// Complete redesign: full validation inside the daemon.
void BM_Validate_DaemonRedesign(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto latency_ns = static_cast<std::uint64_t>(state.range(0));
  chain::TrustDaemon daemon(f.store_gcc, f.corpus.signatures(), latency_ns);
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    const auto& record = f.corpus.leaves()[leaf];
    const auto& intermediate =
        f.corpus.intermediates()[static_cast<std::size_t>(
            record.issuer_intermediate)];
    std::vector<Bytes> intermediates{intermediate.cert->der()};
    auto result = daemon.validate(record.cert->der(), intermediates,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_Validate_DaemonRedesign)->Arg(0)->Arg(50000)->ArgNames({"ipc_ns"});

}  // namespace

BENCHMARK_MAIN();
