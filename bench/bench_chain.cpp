// Experiment E9 — GCC execution placement (§3.1's three deployment
// options) measured on the chain-validation hot path:
//
//   user-agent   — GCCs execute in-process inside the verifier (default);
//   platform     — a trustd-style daemon: certificates cross a DER
//                  serialize/parse boundary plus a simulated IPC round trip
//                  (latency swept);
//   redesign     — the daemon performs complete validation (Hammurabi
//                  model): one IPC round trip for everything.
//
// Baseline: plain validation with no GCCs, to isolate the GCC tax.
//
// The service-mode runs measure the shared VerifyService (the paper's
// machine-wide daemon made concurrent): N caller threads against one
// service whose epoch-keyed verdict cache and DER parse cache are warm.
// Acceptance target: >= 3x the single-threaded BM_Validate_UserAgentGcc
// throughput at 8 threads.
// Experiment E16 — warm start from an mmap snapshot (ColdStart / SteadyAllocs
// benchmarks below): time from "store on disk" to first verdict, text-parse
// vs snapshot-mmap, plus steady-state allocation-per-verify for heap store
// vs StoreView. Cold-start runs print the operator-visible registry gauges
// (anchor_store_*) the started store would expose, so the numbers in
// EXPERIMENTS.md are the counters an operator would scrape.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>

#include "anchord/daemon.hpp"
#include "chain/service.hpp"
#include "corpus/corpus.hpp"
#include "incidents/listings.hpp"
#include "rootstore/snapshot/view.hpp"
#include "rootstore/snapshot/writer.hpp"

// Allocation probe for the SteadyAllocs benchmarks: every operator new in
// the process bumps one relaxed counter. Deltas are read around
// single-threaded measurement loops, so cross-benchmark noise is nil.
std::atomic<std::uint64_t> g_alloc_calls{0};

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace anchor;

struct Fixture {
  corpus::Corpus corpus;
  rootstore::RootStore store_plain;
  rootstore::RootStore store_gcc;
  chain::CertificatePool pool;
  std::vector<std::size_t> leaf_indices;
  std::int64_t now;

  Fixture()
      : corpus([] {
          corpus::CorpusConfig config;
          config.num_roots = 40;
          config.num_intermediates = 120;
          config.roots_with_path_len = 2;
          config.intermediates_with_path_len = 100;
          config.intermediates_with_name_constraints = 6;
          config.roots_with_constrained_chain = 3;
          config.leaves_per_intermediate_mean = 10.0;
          return corpus::Corpus::generate(config);
        }()),
        store_plain(corpus.make_root_store()),
        store_gcc(corpus.make_root_store()),
        pool(corpus.intermediate_pool()),
        now(corpus.config().validation_time()) {
    // Attach a Listing-1-style GCC to every root: the worst-case "every
    // root constrained" deployment.
    for (const auto& root : corpus.roots()) {
      store_gcc.attach_gcc(
          core::Gcc::for_certificate("date-usage", *root.cert,
                                     incidents::listing1_trustcor())
              .take());
    }
    // Pick TLS leaves that are valid at `now` and predate the Listing 1
    // cutoff (so the GCC accepts them and the full path executes).
    for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
      const auto& record = corpus.leaves()[i];
      if (record.smime) continue;
      if (!record.cert->valid_at(now)) continue;
      if (record.cert->not_before() >= 1669784400) continue;
      leaf_indices.push_back(i);
      if (leaf_indices.size() >= 200) break;
    }
  }

  chain::VerifyOptions options_for(std::size_t leaf_index) const {
    chain::VerifyOptions options;
    options.time = now;
    options.hostname = corpus.leaves()[leaf_index].domain;
    return options;
  }
};

// Non-const: the service benchmarks hand store_gcc to VerifyService, whose
// constructor takes a mutable reference (mutations flow through mutate()).
// No benchmark actually mutates the stores.
Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void BM_Validate_NoGcc(benchmark::State& state) {
  const Fixture& f = fixture();
  chain::ChainVerifier verifier(f.store_plain, f.corpus.signatures());
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_Validate_NoGcc);

void BM_Validate_UserAgentGcc(benchmark::State& state) {
  const Fixture& f = fixture();
  chain::ChainVerifier verifier(f.store_gcc, f.corpus.signatures());
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_Validate_UserAgentGcc);

// Platform daemon: the verifier delegates GCC execution across a simulated
// IPC boundary. Latency per leg swept: 0 (colocated), 50us (UNIX socket),
// 500us (loaded system).
void BM_Validate_PlatformDaemon(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto latency_ns = static_cast<std::uint64_t>(state.range(0));
  anchord::TrustDaemon daemon(anchord::TrustDaemonConfig{
      .store = &f.store_gcc,
      .scheme = &f.corpus.signatures(),
      .latency_ns = latency_ns});
  chain::ChainVerifier verifier(f.store_gcc, f.corpus.signatures());
  verifier.set_gcc_hook([&daemon](const core::Chain& chain,
                                  std::string_view usage,
                                  std::span<const core::Gcc>,
                                  const core::FactSet*,
                                  core::GccVerdict&) {
    std::vector<Bytes> der;
    der.reserve(chain.size());
    for (const auto& cert : chain) der.push_back(cert->der());
    return daemon.evaluate_gccs(der, usage);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_Validate_PlatformDaemon)
    ->Arg(0)
    ->Arg(50000)
    ->Arg(500000)
    ->ArgNames({"ipc_ns"});

// One service shared by every service-mode benchmark: the point is a
// machine-wide daemon whose caches stay warm across callers. Leaked on
// purpose (benchmark process lifetime).
chain::VerifyService& shared_service() {
  static chain::VerifyService* service = [] {
    Fixture& f = fixture();
    chain::ServiceConfig config;
    config.threads = 8;
    auto* s = new chain::VerifyService(f.store_gcc, f.corpus.signatures(),
                                       config);
    // Warm the verdict + parse caches: one pass over the whole workload.
    for (std::size_t leaf : f.leaf_indices) {
      (void)s->verify(f.corpus.leaves()[leaf].cert, f.pool,
                      f.options_for(leaf));
    }
    return s;
  }();
  return *service;
}

// Concurrency sweep: N benchmark threads call the shared service
// synchronously on the warm-cache workload. Throughput (items/s, real
// time) at Threads(8) vs BM_Validate_UserAgentGcc is the E9 service-mode
// headline.
void BM_Validate_ServiceWarm(benchmark::State& state) {
  Fixture& f = fixture();
  chain::VerifyService& service = shared_service();
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = service.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                 f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    i += static_cast<std::size_t>(state.threads());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const chain::ServiceStats stats = service.stats();
    const double lookups =
        static_cast<double>(stats.verdict_hits + stats.verdict_misses);
    state.counters["verdict_hit_rate"] =
        lookups > 0 ? static_cast<double>(stats.verdict_hits) / lookups : 0.0;
    state.counters["epoch"] = static_cast<double>(stats.epoch);
  }
}
BENCHMARK(BM_Validate_ServiceWarm)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Batch front end: one caller hands the whole workload to the service,
// which fans it across its own worker pool.
void BM_Validate_ServiceBatch(benchmark::State& state) {
  Fixture& f = fixture();
  chain::VerifyService& service = shared_service();
  std::vector<x509::CertPtr> batch;
  batch.reserve(f.leaf_indices.size());
  for (std::size_t leaf : f.leaf_indices) {
    batch.push_back(f.corpus.leaves()[leaf].cert);
  }
  chain::VerifyOptions options;
  options.time = f.now;
  for (auto _ : state) {
    auto results = service.verify_batch(batch, f.pool, options);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_Validate_ServiceBatch)->UseRealTime();

// Concurrency x IPC latency: the platform daemon routes GCC execution
// through the shared service while N user agents validate in parallel.
void BM_Validate_PlatformDaemonService(benchmark::State& state) {
  Fixture& f = fixture();
  const auto latency_ns = static_cast<std::uint64_t>(state.range(0));
  // One shared daemon per latency point, never deleted (threads from a
  // previous measurement may still hold the pointer briefly).
  static std::map<std::uint64_t, anchord::TrustDaemon*> daemons;
  static std::mutex daemon_mu;
  anchord::TrustDaemon* daemon;
  {
    std::lock_guard<std::mutex> lock(daemon_mu);
    anchord::TrustDaemon*& slot = daemons[latency_ns];
    if (slot == nullptr) {
      slot = new anchord::TrustDaemon(anchord::TrustDaemonConfig{
          .store = &f.store_gcc,
          .scheme = &f.corpus.signatures(),
          .latency_ns = latency_ns,
          .service = &shared_service()});
    }
    daemon = slot;
  }
  chain::ChainVerifier verifier(f.store_gcc, f.corpus.signatures());
  verifier.set_gcc_hook([daemon](const core::Chain& chain,
                                 std::string_view usage,
                                 std::span<const core::Gcc>,
                                 const core::FactSet*,
                                 core::GccVerdict&) {
    std::vector<Bytes> der;
    der.reserve(chain.size());
    for (const auto& cert : chain) der.push_back(cert->der());
    return daemon->evaluate_gccs(der, usage);
  });
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    i += static_cast<std::size_t>(state.threads());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Validate_PlatformDaemonService)
    ->ArgsProduct({{0, 50000}})
    ->ArgNames({"ipc_ns"})
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

// Complete redesign: full validation inside the daemon.
void BM_Validate_DaemonRedesign(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto latency_ns = static_cast<std::uint64_t>(state.range(0));
  anchord::TrustDaemon daemon(anchord::TrustDaemonConfig{
      .store = &f.store_gcc,
      .scheme = &f.corpus.signatures(),
      .latency_ns = latency_ns});
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    const auto& record = f.corpus.leaves()[leaf];
    const auto& intermediate =
        f.corpus.intermediates()[static_cast<std::size_t>(
            record.issuer_intermediate)];
    std::vector<Bytes> intermediates{intermediate.cert->der()};
    auto result = daemon.validate(record.cert->der(), intermediates,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_Validate_DaemonRedesign)->Arg(0)->Arg(50000)->ArgNames({"ipc_ns"});

// ---------------------------------------------------------------------------
// E16 — warm start from an mmap snapshot.

struct ColdStartAssets {
  std::string text;       // RSF-grammar text form (what a mirror stores)
  std::string snap_path;  // mmap snapshot written from the same store
};

ColdStartAssets& cold_start_assets() {
  static ColdStartAssets assets = [] {
    Fixture& f = fixture();
    ColdStartAssets a;
    a.text = f.store_gcc.serialize();
    const char* tmp = std::getenv("TMPDIR");
    a.snap_path = std::string(tmp != nullptr ? tmp : "/tmp") +
                  "/anchor-bench-e16.snap";
    auto status =
        rootstore::snapshot::write_snapshot_file(f.store_gcc, a.snap_path);
    if (!status.ok()) {
      fprintf(stderr, "E16: snapshot write failed: %s\n",
              status.error().c_str());
      std::abort();
    }
    return a;
  }();
  return assets;
}

// The registry delta a cold start produces: the anchor_store_* gauges the
// freshly started store would expose to the first scrape.
void report_cold_start_registry(benchmark::State& state,
                                const rootstore::StoreReader& store) {
  metrics::Registry registry;
  rootstore::export_store_metrics(store, registry);
  state.counters["trusted_roots"] = static_cast<double>(
      registry.gauge("anchor_store_trusted_roots").value());
  state.counters["gccs"] =
      static_cast<double>(registry.gauge("anchor_store_gccs").value());
  state.counters["store_epoch"] =
      static_cast<double>(registry.gauge("anchor_store_epoch").value());
}

// Baseline cold start: parse the text serialization — which re-parses and
// re-compiles every GCC's Datalog source — then serve one verdict.
void BM_ColdStart_TextParse(benchmark::State& state) {
  const Fixture& f = fixture();
  const ColdStartAssets& assets = cold_start_assets();
  const std::size_t leaf = f.leaf_indices[0];
  for (auto _ : state) {
    auto store = rootstore::RootStore::deserialize(assets.text);
    if (!store) std::abort();
    chain::ChainVerifier verifier(store.value(), f.corpus.signatures());
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
  }
  report_cold_start_registry(state, f.store_gcc);
}
BENCHMARK(BM_ColdStart_TextParse);

// Snapshot cold start: mmap the snapshot — compiled GCC programs
// deserialize without touching the Datalog front end, certificates load
// from DER — then serve the same verdict through the StoreView.
void BM_ColdStart_SnapshotMmap(benchmark::State& state) {
  const Fixture& f = fixture();
  const ColdStartAssets& assets = cold_start_assets();
  const std::size_t leaf = f.leaf_indices[0];
  for (auto _ : state) {
    auto opened = rootstore::snapshot::StoreView::open(assets.snap_path);
    if (!opened.ok()) std::abort();
    chain::ChainVerifier verifier(*opened.view, f.corpus.signatures());
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
  }
  auto opened = rootstore::snapshot::StoreView::open(assets.snap_path);
  if (opened.ok()) report_cold_start_registry(state, *opened.view);
}
BENCHMARK(BM_ColdStart_SnapshotMmap);

// Steady state: allocations per verify through the heap store vs through
// the mmap StoreView. The snapshot claim is that the *start* gets cheap
// without the *serving* path paying for it — allocs_per_verify must match.
void BM_SteadyAllocs_HeapStore(benchmark::State& state) {
  const Fixture& f = fixture();
  chain::ChainVerifier verifier(f.store_gcc, f.corpus.signatures());
  std::size_t i = 0;
  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
  const auto delta =
      g_alloc_calls.load(std::memory_order_relaxed) - before;
  state.counters["allocs_per_verify"] =
      static_cast<double>(delta) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_SteadyAllocs_HeapStore);

void BM_SteadyAllocs_SnapshotView(benchmark::State& state) {
  const Fixture& f = fixture();
  const ColdStartAssets& assets = cold_start_assets();
  auto opened = rootstore::snapshot::StoreView::open(assets.snap_path);
  if (!opened.ok()) std::abort();
  chain::ChainVerifier verifier(*opened.view, f.corpus.signatures());
  std::size_t i = 0;
  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  for (auto _ : state) {
    std::size_t leaf = f.leaf_indices[i % f.leaf_indices.size()];
    auto result = verifier.verify(f.corpus.leaves()[leaf].cert, f.pool,
                                  f.options_for(leaf));
    benchmark::DoNotOptimize(result);
    ++i;
  }
  const auto delta =
      g_alloc_calls.load(std::memory_order_relaxed) - before;
  state.counters["allocs_per_verify"] =
      static_cast<double>(delta) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_SteadyAllocs_SnapshotView);

}  // namespace

BENCHMARK_MAIN();
