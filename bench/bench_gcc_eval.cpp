// Experiments E1 + E2 — GCC evaluation cost for the paper's Listings 1 and
// 2, with the semi-naive vs naive evaluation ablation (DESIGN.md §7).
//
// The paper reports no evaluation-latency number (only the conversion
// cost), so the shape to establish is: executing a realistic GCC against a
// 3-certificate chain costs the same order as the fact conversion itself —
// i.e. GCCs are cheap enough to run inside the TLS handshake path.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/executor.hpp"
#include "incidents/incidents.hpp"
#include "incidents/listings.hpp"
#include "util/metrics.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace {

using namespace anchor;
using core::Chain;
using core::Gcc;
using core::GccExecutor;

struct BenchPki {
  SimKeyPair root_key = SimSig::keygen("Bench Root");
  SimKeyPair int_key = SimSig::keygen("Bench Int");
  x509::CertPtr root, intermediate;
  Gcc listing1;
  Gcc listing2;

  BenchPki()
      : root(x509::CertificateBuilder()
                 .serial(1)
                 .subject(x509::DistinguishedName::make("Bench Root", "T"))
                 .issuer(x509::DistinguishedName::make("Bench Root", "T"))
                 .validity(0, unix_date(2040, 1, 1))
                 .public_key(root_key.key_id)
                 .ca(std::nullopt)
                 .sign(root_key)
                 .take()),
        intermediate(x509::CertificateBuilder()
                         .serial(2)
                         .subject(x509::DistinguishedName::make("Bench Int", "T"))
                         .issuer(root->subject())
                         .validity(0, unix_date(2039, 1, 1))
                         .public_key(int_key.key_id)
                         .ca(0)
                         .sign(root_key)
                         .take()),
        listing1(Gcc::for_certificate("listing1", *root,
                                      incidents::listing1_trustcor())
                     .take()),
        listing2(Gcc::for_certificate(
                     "listing2", *root,
                     incidents::listing2_symantec(
                         {intermediate->fingerprint_hex()}))
                     .take()) {}

  x509::CertPtr leaf(std::int64_t not_before, bool ev) const {
    SimKeyPair key = SimSig::keygen("bench-leaf");
    auto builder = x509::CertificateBuilder()
                       .serial(3)
                       .subject(x509::DistinguishedName::make("bench.example.com"))
                       .issuer(intermediate->subject())
                       .validity(not_before, not_before + 90 * 86400)
                       .public_key(key.key_id)
                       .dns_names({"bench.example.com"})
                       .extended_key_usage({x509::oids::kp_server_auth()});
    if (ev) builder.ev();
    return builder.sign(int_key).take();
  }

  Chain chain(std::int64_t not_before = 1600000000, bool ev = false) const {
    return Chain{leaf(not_before, ev), intermediate, root};
  }
};

const BenchPki& pki() {
  static const BenchPki instance;
  return instance;
}

void BM_Listing1_Tls(benchmark::State& state) {
  GccExecutor executor;
  Chain chain = pki().chain();
  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "TLS", pki().listing1);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Listing1_Tls);

void BM_Listing1_Smime(benchmark::State& state) {
  GccExecutor executor;
  Chain chain = pki().chain();
  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "S/MIME", pki().listing1);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Listing1_Smime);

void BM_Listing2_PreCutoffLeaf(benchmark::State& state) {
  GccExecutor executor;
  Chain chain = pki().chain(1400000000);  // before June 2016
  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "TLS", pki().listing2);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Listing2_PreCutoffLeaf);

void BM_Listing2_ExemptIntermediate(benchmark::State& state) {
  GccExecutor executor;
  Chain chain = pki().chain(1500000000);  // post-cutoff: exemption path fires
  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "TLS", pki().listing2);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Listing2_ExemptIntermediate);

// Ablation: semi-naive vs naive bottom-up evaluation on the same GCC.
void BM_Ablation_SemiNaive(benchmark::State& state) {
  GccExecutor executor(datalog::Strategy::kSemiNaive);
  Chain chain = pki().chain();
  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "TLS", pki().listing2);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ablation_SemiNaive);

void BM_Ablation_Naive(benchmark::State& state) {
  GccExecutor executor(datalog::Strategy::kNaive);
  Chain chain = pki().chain();
  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "TLS", pki().listing2);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ablation_Naive);

// A recursion-heavy GCC (transitive signs closure over a deep chain) where
// the strategies genuinely diverge.
void BM_Ablation_RecursiveGcc(benchmark::State& state) {
  const bool semi = state.range(0) == 0;
  GccExecutor executor(semi ? datalog::Strategy::kSemiNaive
                            : datalog::Strategy::kNaive);
  Gcc recursive =
      Gcc::for_certificate(
          "recursive", *pki().root,
          "descends(X, Y) :- signs(X, Y).\n"
          "descends(X, Z) :- descends(X, Y), signs(Y, Z).\n"
          "valid(Chain, _) :- root(Chain, R), leaf(Chain, L), descends(R, L).")
          .take();

  // Build a deep chain: leaf <- I1 <- ... <- I6 <- root.
  SimKeyPair parent_key = pki().root_key;
  x509::DistinguishedName parent_dn = pki().root->subject();
  Chain chain;
  std::vector<x509::CertPtr> links;
  for (int i = 0; i < 6; ++i) {
    SimKeyPair key = SimSig::keygen("deep" + std::to_string(i));
    auto cert = x509::CertificateBuilder()
                    .serial(static_cast<std::uint64_t>(10 + i))
                    .subject(x509::DistinguishedName::make(
                        "Deep CA " + std::to_string(i), "T"))
                    .issuer(parent_dn)
                    .validity(0, unix_date(2039, 1, 1))
                    .public_key(key.key_id)
                    .ca(std::nullopt)
                    .sign(parent_key)
                    .take();
    links.push_back(cert);
    parent_key = key;
    parent_dn = cert->subject();
  }
  SimKeyPair leaf_key = SimSig::keygen("deep-leaf");
  auto leaf = x509::CertificateBuilder()
                  .serial(99)
                  .subject(x509::DistinguishedName::make("deep.example.com"))
                  .issuer(parent_dn)
                  .validity(0, unix_date(2039, 1, 1))
                  .public_key(leaf_key.key_id)
                  .dns_names({"deep.example.com"})
                  .sign(parent_key)
                  .take();
  // Leaf-first order: links[5] signed the leaf, links[0] was signed by root.
  chain.push_back(leaf);
  for (auto it = links.rbegin(); it != links.rend(); ++it) chain.push_back(*it);
  chain.push_back(pki().root);

  for (auto _ : state) {
    bool ok = executor.evaluate_one(chain, "TLS", recursive);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ablation_RecursiveGcc)->Arg(0)->Arg(1)->ArgNames({"naive"});

// In-tree baseline for the compiled pipeline: the pre-split evaluation
// path, which built a fresh Engine per evaluation (program copy,
// re-stratification, greedy re-ordering) and joined on string-compared
// Values. Kept as a benchmark so the compiled/interpreted ratio is
// measurable on any machine, not just in EXPERIMENTS.md history.
bool interpreted_evaluate_one(const Chain& chain, std::string_view usage,
                              const Gcc& gcc,
                              datalog::Strategy strategy) {
  datalog::Engine engine(strategy);
  engine.add_program(gcc.program());

  core::FactSet facts;
  const std::string chain_id = core::chain_id_of(chain);
  core::encode_chain(chain, chain_id, facts);
  facts.load_into(engine);

  datalog::Atom goal;
  goal.predicate = "valid";
  goal.args.push_back(datalog::Term::constant_of(datalog::Value(chain_id)));
  goal.args.push_back(
      datalog::Term::constant_of(datalog::Value(std::string(usage))));
  auto result = engine.query(goal);
  return result.ok() && !engine.stats().truncated && result.value().holds();
}

void BM_Interpreted_Listing1_Tls(benchmark::State& state) {
  Chain chain = pki().chain();
  for (auto _ : state) {
    bool ok = interpreted_evaluate_one(chain, "TLS", pki().listing1,
                                       datalog::Strategy::kSemiNaive);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Interpreted_Listing1_Tls);

void BM_Interpreted_Listing2_ExemptIntermediate(benchmark::State& state) {
  Chain chain = pki().chain(1500000000);
  for (auto _ : state) {
    bool ok = interpreted_evaluate_one(chain, "TLS", pki().listing2,
                                       datalog::Strategy::kSemiNaive);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Interpreted_Listing2_ExemptIntermediate);

// Several GCCs attached to the same root: GccExecutor::evaluate encodes
// the chain once and runs each precompiled program against it, so the
// per-GCC marginal cost is the evaluation alone.
void BM_ManyGccsPerRoot(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<Gcc> gccs;
  for (std::size_t i = 0; i < count; ++i) {
    gccs.push_back((i % 2 == 0 ? pki().listing1 : pki().listing2));
  }
  GccExecutor executor;
  Chain chain = pki().chain();
  for (auto _ : state) {
    core::GccVerdict verdict = executor.evaluate(chain, "S/MIME", gccs);
    benchmark::DoNotOptimize(verdict.allowed);
  }
  state.counters["gccs"] = static_cast<double>(count);
}
BENCHMARK(BM_ManyGccsPerRoot)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

// Every evaluation above also ran through the process-wide metrics
// registry (GccExecutor's anchor_gcc_* / anchor_datalog_* series). The
// run's registry delta is printed alongside the benchmark numbers so
// EXPERIMENTS figures come from the same counters `anchorctl metrics` and
// the daemon's metrics verb expose — not bench-private accounting.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const anchor::metrics::Snapshot before =
      anchor::metrics::Registry::global().snapshot();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const anchor::metrics::Snapshot delta = anchor::metrics::snapshot_delta(
      before, anchor::metrics::Registry::global().snapshot());
  std::printf("\n=== registry delta over this run "
              "(same series anchorctl metrics serves) ===\n");
  for (const auto& [key, value] : delta) {
    if (key.find("_bucket{") != std::string::npos) continue;  // keep it short
    std::printf("%-48s %.6g\n", key.c_str(), value);
  }
  return 0;
}
