#include "rootstore/store.hpp"

#include <gtest/gtest.h>

#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::rootstore {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

const std::string kValidGcc =
    "valid(Chain, \"TLS\") :- leaf(Chain, L), notBefore(L, NB), NB < 100.";

TEST(RootStore, TrustStates) {
  RootStore store;
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  ASSERT_TRUE(store.add_trusted(a).ok());
  store.distrust(b->fingerprint_hex(), "incident");

  EXPECT_EQ(store.state_of(a->fingerprint_hex()), TrustState::kTrusted);
  EXPECT_EQ(store.state_of(b->fingerprint_hex()), TrustState::kDistrusted);
  EXPECT_EQ(store.state_of(std::string(64, '0')), TrustState::kUnknown);
  EXPECT_EQ(store.trusted_count(), 1u);
  EXPECT_EQ(store.distrusted_count(), 1u);
}

TEST(RootStore, DistrustMovesOutOfTrustedSet) {
  RootStore store;
  CertPtr a = make_root("A");
  ASSERT_TRUE(store.add_trusted(a).ok());
  store.distrust(a->fingerprint_hex(), "compromised");
  EXPECT_EQ(store.state_of(a->fingerprint_hex()), TrustState::kDistrusted);
  EXPECT_EQ(store.trusted_count(), 0u);
  EXPECT_EQ(store.find(a->fingerprint_hex()), nullptr);
}

TEST(RootStore, NegativeInclusionBlocksReTrust) {
  RootStore store;
  CertPtr a = make_root("A");
  store.distrust(a->fingerprint_hex(), "removed by primary");
  Status s = store.add_trusted(a);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.error().find("distrusted"), std::string::npos);
  EXPECT_EQ(store.state_of(a->fingerprint_hex()), TrustState::kDistrusted);
}

TEST(RootStore, UncheckedAddModelsNonCompliantDerivative) {
  RootStore store;
  CertPtr a = make_root("A");
  store.distrust(a->fingerprint_hex(), "removed");
  store.add_trusted_unchecked(a);
  // Both sets now mention the root — the dangerous state merge flags.
  EXPECT_EQ(store.trusted_count(), 1u);
  EXPECT_EQ(store.distrusted_count(), 1u);
}

TEST(RootStore, ForgetReturnsToUnknown) {
  RootStore store;
  CertPtr a = make_root("A");
  ASSERT_TRUE(store.add_trusted(a).ok());
  EXPECT_TRUE(store.forget(a->fingerprint_hex()));
  EXPECT_EQ(store.state_of(a->fingerprint_hex()), TrustState::kUnknown);
  EXPECT_FALSE(store.forget(a->fingerprint_hex()));
  // After forgetting, re-trust is allowed again.
  EXPECT_TRUE(store.add_trusted(a).ok());
}

TEST(RootStore, MetadataStoredAndUpdated) {
  RootStore store;
  CertPtr a = make_root("A");
  RootMetadata metadata;
  metadata.ev_allowed = true;
  metadata.tls_distrust_after = 12345;
  ASSERT_TRUE(store.add_trusted(a, metadata).ok());
  const RootEntry* entry = store.find(a->fingerprint_hex());
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->metadata.ev_allowed);
  EXPECT_EQ(entry->metadata.tls_distrust_after, 12345);

  metadata.ev_allowed = false;
  ASSERT_TRUE(store.add_trusted(a, metadata).ok());  // update in place
  EXPECT_FALSE(store.find(a->fingerprint_hex())->metadata.ev_allowed);
  EXPECT_EQ(store.trusted_count(), 1u);
}

TEST(RootStore, TrustedPreservesInsertionOrder) {
  RootStore store;
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  CertPtr c = make_root("C");
  ASSERT_TRUE(store.add_trusted(a).ok());
  ASSERT_TRUE(store.add_trusted(b).ok());
  ASSERT_TRUE(store.add_trusted(c).ok());
  auto trusted = store.trusted();
  ASSERT_EQ(trusted.size(), 3u);
  EXPECT_EQ(trusted[0]->cert->subject().common_name(), "A");
  EXPECT_EQ(trusted[2]->cert->subject().common_name(), "C");
}

TEST(RootStore, SerializeDeserializeRoundTrip) {
  RootStore store;
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  RootMetadata metadata;
  metadata.ev_allowed = true;
  metadata.tls_distrust_after = 1669784400;
  metadata.smime_distrust_after = 1669784401;
  metadata.justification = "TrustCor-style constraints\nwith a newline";
  ASSERT_TRUE(store.add_trusted(a, metadata).ok());
  ASSERT_TRUE(store.add_trusted(b).ok());
  store.distrust(std::string(64, 'e'), "WoSign-style removal");
  store.attach_gcc(
      core::Gcc::create("constraint-1", a->fingerprint_hex(), kValidGcc,
                        "justified")
          .take());

  std::string text = store.serialize();
  auto parsed = RootStore::deserialize(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const RootStore& copy = parsed.value();

  EXPECT_EQ(copy.trusted_count(), 2u);
  EXPECT_EQ(copy.distrusted_count(), 1u);
  const RootEntry* entry = copy.find(a->fingerprint_hex());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->metadata, metadata);
  EXPECT_EQ(copy.gccs().total(), 1u);
  const auto& gccs = copy.gccs().for_root(a->fingerprint_hex());
  ASSERT_EQ(gccs.size(), 1u);
  EXPECT_EQ(gccs[0].name(), "constraint-1");
  EXPECT_EQ(gccs[0].source(), kValidGcc);
  EXPECT_EQ(copy.distrusted().begin()->second, "WoSign-style removal");
}

TEST(RootStore, SerializationIsDeterministic) {
  auto build = [] {
    RootStore store;
    (void)store.add_trusted(make_root("A"));
    (void)store.add_trusted(make_root("B"));
    store.distrust(std::string(64, 'd'), "x");
    return store;
  };
  EXPECT_EQ(build().serialize(), build().serialize());
  EXPECT_EQ(build().content_hash_hex(), build().content_hash_hex());
}

TEST(RootStore, ContentHashChangesWithContent) {
  RootStore store;
  (void)store.add_trusted(make_root("A"));
  std::string before = store.content_hash_hex();
  store.distrust(std::string(64, 'f'), "y");
  EXPECT_NE(store.content_hash_hex(), before);
}

TEST(RootStore, DeserializeRejectsMissingHeader) {
  EXPECT_FALSE(RootStore::deserialize("not a store").ok());
  EXPECT_FALSE(RootStore::deserialize("").ok());
}

TEST(RootStore, DeserializeRejectsHashMismatch) {
  RootStore store;
  CertPtr a = make_root("A");
  ASSERT_TRUE(store.add_trusted(a).ok());
  std::string text = store.serialize();
  // Corrupt the recorded hash.
  std::size_t pos = text.find(a->fingerprint_hex());
  ASSERT_NE(pos, std::string::npos);
  text[pos] = text[pos] == '0' ? '1' : '0';
  EXPECT_FALSE(RootStore::deserialize(text).ok());
}

TEST(RootStore, DeserializeRejectsUnknownSection) {
  EXPECT_FALSE(
      RootStore::deserialize("anchor-root-store/v1\nbogus keyword\n").ok());
}

TEST(RootStore, DeserializeRejectsBadGccSource) {
  RootStore store;
  CertPtr a = make_root("A");
  ASSERT_TRUE(store.add_trusted(a).ok());
  store.attach_gcc(
      core::Gcc::create("g", a->fingerprint_hex(), kValidGcc).take());
  std::string text = store.serialize();
  // Swap the base64 source for garbage that decodes but does not parse.
  std::size_t pos = text.find("source-b64 ");
  ASSERT_NE(pos, std::string::npos);
  std::string corrupted = text.substr(0, pos) + "source-b64 bm90IGRhdGFsb2c=\n";
  EXPECT_FALSE(RootStore::deserialize(corrupted).ok());
}

TEST(RootStore, EmptyStoreRoundTrips) {
  RootStore store;
  auto parsed = RootStore::deserialize(store.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().trusted_count(), 0u);
  EXPECT_EQ(parsed.value().distrusted_count(), 0u);
}

// The epoch counter backs chain::VerifyService's verdict-cache coherence:
// every mutation that can change a verification outcome must advance it,
// and no-op calls must not have to (staleness is judged by inequality, so
// spurious bumps are safe but missed bumps are not).
TEST(RootStore, EpochAdvancesOnEveryMutation) {
  RootStore store;
  EXPECT_EQ(store.epoch(), 0u);
  CertPtr a = make_root("A");
  const std::string hash = a->fingerprint_hex();

  ASSERT_TRUE(store.add_trusted(a).ok());
  std::uint64_t last = store.epoch();
  EXPECT_GT(last, 0u);

  store.distrust(hash, "incident");
  EXPECT_GT(store.epoch(), last);
  last = store.epoch();

  EXPECT_TRUE(store.forget(hash));
  EXPECT_GT(store.epoch(), last);
  last = store.epoch();

  EXPECT_FALSE(store.forget(std::string(64, 'f')));  // no-op: may hold still
  EXPECT_GE(store.epoch(), last);
  last = store.epoch();

  store.add_trusted_unchecked(a);
  EXPECT_GT(store.epoch(), last);
  last = store.epoch();

  store.attach_gcc(core::Gcc::create("g", hash, kValidGcc).take());
  EXPECT_GT(store.epoch(), last);
  last = store.epoch();

  EXPECT_TRUE(store.detach_gcc(hash, "g"));
  EXPECT_GT(store.epoch(), last);
  last = store.epoch();

  EXPECT_FALSE(store.detach_gcc(hash, "g"));  // no-op
  EXPECT_GE(store.epoch(), last);
}

TEST(RootStore, ByteIdenticalMutationsKeepEpoch) {
  // The verdict cache (chain::VerifyService) keys on epoch(): a mutation
  // that changes nothing observable must not bump it, or redundant delta
  // replay flushes every cached verdict for free.
  RootStore store;
  CertPtr a = make_root("A");
  RootMetadata metadata;
  metadata.ev_allowed = true;
  ASSERT_TRUE(store.add_trusted(a, metadata).ok());
  store.distrust(std::string(64, 'd'), "incident");
  const std::uint64_t settled = store.epoch();

  // Same cert, same metadata: no-ops on both entry points.
  ASSERT_TRUE(store.add_trusted(a, metadata).ok());
  EXPECT_EQ(store.epoch(), settled);
  store.add_trusted_unchecked(a, metadata);
  EXPECT_EQ(store.epoch(), settled);
  // Same hash, same justification: no-op distrust.
  store.distrust(std::string(64, 'd'), "incident");
  EXPECT_EQ(store.epoch(), settled);

  // Observable changes still advance it.
  RootMetadata stricter = metadata;
  stricter.tls_distrust_after = 1000;
  store.add_trusted_unchecked(a, stricter);
  EXPECT_GT(store.epoch(), settled);
  const std::uint64_t after_metadata = store.epoch();
  store.distrust(std::string(64, 'd'), "new justification");
  EXPECT_GT(store.epoch(), after_metadata);
}

TEST(RootStore, DistrustOfTrustedRootAlwaysAdvancesEpoch) {
  // Even when the distrust set already carries the hash with the same
  // justification, removing the root from the *trusted* set is an
  // observable change and must invalidate caches.
  RootStore store;
  CertPtr a = make_root("A");
  const std::string hash = a->fingerprint_hex();
  store.distrust(hash, "incident");
  store.add_trusted_unchecked(a);
  const std::uint64_t trusted_epoch = store.epoch();
  // The distrust entry already exists with this exact justification, but the
  // root is also trusted — the no-op shortcut must not fire while a trusted
  // entry is being removed.
  store.distrust(hash, "incident");
  EXPECT_EQ(store.state_of(hash), TrustState::kDistrusted);
  EXPECT_GT(store.epoch(), trusted_epoch);
}

TEST(RootStore, ByteIdenticalGccReattachLeavesEpochUnchanged) {
  // Regression: GCC attach used to bump a separate GccStore version
  // counter unconditionally, so re-attaching the exact constraint already
  // present (routine in RSF delta replay) flushed every cached verdict.
  RootStore store;
  CertPtr a = make_root("A");
  ASSERT_TRUE(store.add_trusted(a).ok());
  const std::string hash = a->fingerprint_hex();
  core::Gcc gcc = core::Gcc::create("g", hash, kValidGcc, "why").take();
  store.attach_gcc(gcc);
  const std::uint64_t settled = store.epoch();

  store.attach_gcc(gcc);  // byte-identical re-attach: a no-op
  EXPECT_EQ(store.epoch(), settled);
  EXPECT_EQ(store.gcc_count(), 1u);

  // Same name, different source: an observable replacement.
  store.attach_gcc(
      core::Gcc::create("g", hash, kValidGcc, "revised").take());
  EXPECT_GT(store.epoch(), settled);
  const std::uint64_t replaced = store.epoch();
  // Detaching something that is not attached is a no-op too.
  EXPECT_FALSE(store.detach_gcc(hash, "absent"));
  EXPECT_EQ(store.epoch(), replaced);
  EXPECT_TRUE(store.detach_gcc(hash, "g"));
  EXPECT_GT(store.epoch(), replaced);
}

TEST(RootStore, EpochNeverRepeatsAcrossMixedMutations) {
  // Regression for the epoch-aliasing bug: the epoch was once the *sum* of
  // a store counter and a GCC-layer counter, so interleaved root and GCC
  // mutations could revisit an earlier value and a verdict cached under
  // the first occurrence would be served after the second — against
  // different trust content. One strictly monotonic counter may never
  // repeat under any interleaving.
  RootStore store;
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  ASSERT_TRUE(store.add_trusted(a).ok());
  const std::string hash = a->fingerprint_hex();
  std::uint64_t last = store.epoch();
  auto expect_advanced = [&](const char* what) {
    EXPECT_GT(store.epoch(), last) << "epoch repeated after " << what;
    last = store.epoch();
  };
  for (int round = 0; round < 5; ++round) {
    store.attach_gcc(
        core::Gcc::create("g" + std::to_string(round), hash, kValidGcc)
            .take());
    expect_advanced("attach");
    ASSERT_TRUE(store.add_trusted(b).ok());
    expect_advanced("add_trusted");
    EXPECT_TRUE(store.detach_gcc(hash, "g" + std::to_string(round)));
    expect_advanced("detach");
    store.forget(b->fingerprint_hex());
    expect_advanced("forget");
  }
}

TEST(RootStore, AdvanceEpochPastForcesProgress) {
  RootStore store;
  const std::uint64_t start = store.epoch();
  store.advance_epoch_past(start + 41);
  EXPECT_GT(store.epoch(), start + 41);
  // Already past: no change required, and never a move backwards.
  const std::uint64_t current = store.epoch();
  store.advance_epoch_past(5);
  EXPECT_GE(store.epoch(), current);
}

}  // namespace
}  // namespace anchor::rootstore
