// End-to-end scenarios spanning the whole stack: corpus generation, GCC
// authoring, RSF distribution, client sync, and chain validation with the
// GCC hook. The centerpiece replays the paper's motivating story (§2.3):
// Mozilla ships partial Symantec distrust; Debian's bare-collection mirror
// must choose between breakage and exposure; an RSF+GCC derivative matches
// the primary exactly.
#include <gtest/gtest.h>

#include "chain/verifier.hpp"
#include "corpus/corpus.hpp"
#include "incidents/incidents.hpp"
#include "incidents/listings.hpp"
#include "rsf/client.hpp"
#include "util/time.hpp"

namespace anchor {
namespace {

TEST(Integration, SymantecStoryEndToEnd) {
  incidents::Incident symantec = incidents::make_symantec();

  // The primary publishes its store (root + Listing 2 GCC) over an RSF.
  SimSig registry;
  rsf::Feed feed("mozilla", registry);
  feed.publish(symantec.store, unix_date(2018, 5, 1), "Symantec distrust");

  // Derivative 1: RSF client — receives certificates AND the GCC.
  rsf::RsfClient modern(feed, 3600);
  modern.poll_now(unix_date(2018, 5, 2));
  ASSERT_EQ(modern.store().gccs().total(), 1u);

  // Derivative 2: bare-collection manual mirror — certificates only.
  rsf::ManualMirrorClient legacy(feed, /*strip_gccs=*/true);
  legacy.manual_sync(unix_date(2018, 5, 2));
  ASSERT_EQ(legacy.store().gccs().total(), 0u);

  chain::ChainVerifier primary_verifier(symantec.store, symantec.signatures);
  chain::ChainVerifier modern_verifier(modern.store(), symantec.signatures);
  chain::ChainVerifier legacy_verifier(legacy.store(), symantec.signatures);

  std::size_t divergences_modern = 0;
  std::size_t divergences_legacy = 0;
  for (const auto& test_case : symantec.cases) {
    bool primary = primary_verifier
                       .verify(test_case.leaf, symantec.pool, test_case.options)
                       .ok;
    bool modern_verdict =
        modern_verifier.verify(test_case.leaf, symantec.pool, test_case.options)
            .ok;
    bool legacy_verdict =
        legacy_verifier.verify(test_case.leaf, symantec.pool, test_case.options)
            .ok;
    EXPECT_EQ(primary, test_case.expect_valid) << test_case.label;
    if (modern_verdict != primary) ++divergences_modern;
    if (legacy_verdict != primary) ++divergences_legacy;
  }
  // The RSF+GCC derivative mirrors the primary exactly; the bare mirror
  // diverges (it accepts the post-cutoff chain the primary rejects).
  EXPECT_EQ(divergences_modern, 0u);
  EXPECT_GT(divergences_legacy, 0u);
}

TEST(Integration, DebianDilemmaQuantified) {
  // §2.3: removing the root breaks service (false rejections); keeping it
  // accepts fraud (false acceptances); a GCC does neither.
  incidents::Incident symantec = incidents::make_symantec();

  std::size_t should_accept = 0;
  std::size_t should_reject = 0;
  for (const auto& test_case : symantec.cases) {
    (test_case.expect_valid ? should_accept : should_reject)++;
  }
  ASSERT_GT(should_accept, 0u);
  ASSERT_GT(should_reject, 0u);

  // Option 1: full removal.
  rootstore::RootStore removal_store;  // empty: root removed
  chain::ChainVerifier removal(removal_store, symantec.signatures);
  std::size_t removal_false_rejects = 0;
  for (const auto& test_case : symantec.cases) {
    if (!test_case.expect_valid) continue;
    if (!removal.verify(test_case.leaf, symantec.pool, test_case.options).ok) {
      ++removal_false_rejects;
    }
  }
  EXPECT_EQ(removal_false_rejects, should_accept);  // total breakage

  // Option 2: full retention without GCCs.
  chain::ChainVerifier retention(symantec.store, symantec.signatures);
  std::size_t retention_false_accepts = 0;
  for (const auto& test_case : symantec.cases) {
    if (test_case.expect_valid) continue;
    chain::VerifyOptions no_gcc = test_case.options;
    no_gcc.run_gccs = false;
    if (retention.verify(test_case.leaf, symantec.pool, no_gcc).ok) {
      ++retention_false_accepts;
    }
  }
  EXPECT_GT(retention_false_accepts, 0u);

  // Option 3: GCC — zero divergence in both directions.
  std::size_t gcc_errors = 0;
  for (const auto& test_case : symantec.cases) {
    bool verdict =
        retention.verify(test_case.leaf, symantec.pool, test_case.options).ok;
    if (verdict != test_case.expect_valid) ++gcc_errors;
  }
  EXPECT_EQ(gcc_errors, 0u);
}

TEST(Integration, EmergencyDistrustViaFeedStopsMitm) {
  // A corpus CA is compromised; the primary distrusts it through the feed;
  // a polling derivative stops accepting the fraudulent chain within its
  // poll interval.
  corpus::CorpusConfig config;
  config.num_roots = 10;
  config.num_intermediates = 20;
  config.roots_with_path_len = 1;
  config.intermediates_with_path_len = 15;
  config.intermediates_with_name_constraints = 2;
  config.roots_with_constrained_chain = 1;
  config.leaves_per_intermediate_mean = 3.0;
  corpus::Corpus corpus = corpus::Corpus::generate(config);
  std::int64_t now = corpus.config().validation_time();

  rootstore::RootStore primary = corpus.make_root_store();
  SimSig registry;
  rsf::Feed feed("nss", registry);
  feed.publish(primary, now - 7200, "baseline");

  rsf::RsfClient derivative(feed, 3600);
  derivative.poll_now(now - 7000);

  x509::CertPtr fraud = corpus.misissue(0, "login.victim.example", now - 86400);
  chain::CertificatePool pool = corpus.intermediate_pool();
  chain::VerifyOptions options;
  options.time = now;
  options.hostname = "login.victim.example";

  chain::ChainVerifier before(derivative.store(), corpus.signatures());
  EXPECT_TRUE(before.verify(fraud, pool, options).ok);  // MITM works today

  // Incident response: distrust the compromised intermediate's root.
  const auto& intermediate = corpus.intermediates()[0];
  const std::string root_hash =
      corpus.roots()[static_cast<std::size_t>(intermediate.parent_root)]
          .cert->fingerprint_hex();
  primary.distrust(root_hash, "key compromise");
  feed.publish(primary, now, "emergency");
  derivative.poll_now(now + 3600);

  chain::ChainVerifier after(derivative.store(), corpus.signatures());
  chain::VerifyResult result = after.verify(fraud, pool, options);
  // Either no path remains or all candidate paths are rejected.
  EXPECT_FALSE(result.ok);
}

TEST(Integration, PartialDistrustViaGccAvoidsCollateralDamage) {
  // Same incident, but the response is a GCC pinning the root to the
  // victim-free subset (pre-2016-style cutoff): legit old leaves survive,
  // the fraud (freshly issued) dies.
  corpus::CorpusConfig config;
  config.num_roots = 6;
  config.num_intermediates = 10;
  config.roots_with_path_len = 0;
  config.intermediates_with_path_len = 8;
  config.intermediates_with_name_constraints = 1;
  config.roots_with_constrained_chain = 1;
  config.leaves_per_intermediate_mean = 6.0;
  corpus::Corpus corpus = corpus::Corpus::generate(config);
  std::int64_t now = corpus.config().validation_time();

  const auto& intermediate = corpus.intermediates()[0];
  std::size_t root_index = static_cast<std::size_t>(intermediate.parent_root);
  const x509::Certificate& root = *corpus.roots()[root_index].cert;

  rootstore::RootStore store = corpus.make_root_store();
  std::string cutoff_gcc =
      "cutoff(" + std::to_string(now - 7 * 86400) + ").\n" +
      "valid(Chain, _) :- leaf(Chain, L), notBefore(L, NB), cutoff(T), NB < T.";
  store.attach_gcc(
      core::Gcc::for_certificate("incident-cutoff", root, cutoff_gcc).take());

  chain::ChainVerifier verifier(store, corpus.signatures());
  chain::CertificatePool pool = corpus.intermediate_pool();

  // Fraud issued yesterday: blocked by the cutoff.
  x509::CertPtr fraud = corpus.misissue(0, "mitm.victim.example", now - 86400);
  chain::VerifyOptions options;
  options.time = now;
  options.hostname = "mitm.victim.example";
  EXPECT_FALSE(verifier.verify(fraud, pool, options).ok);

  // Old legitimate leaves under the same root keep validating.
  std::size_t old_ok = 0;
  for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
    const auto& record = corpus.leaves()[i];
    const auto& issuer = corpus.intermediates()[static_cast<std::size_t>(
        record.issuer_intermediate)];
    if (static_cast<std::size_t>(issuer.parent_root) != root_index) continue;
    if (record.smime) continue;
    if (record.cert->not_before() >= now - 7 * 86400) continue;
    // The cutoff GCC keys on notBefore, not the validation instant, so
    // validate each old leaf inside its own validity window.
    chain::VerifyOptions leaf_options;
    leaf_options.time =
        (record.cert->not_before() + record.cert->not_after()) / 2;
    leaf_options.hostname = record.domain;
    if (verifier.verify(record.cert, pool, leaf_options).ok) ++old_ok;
  }
  EXPECT_GT(old_ok, 0u);
}

TEST(Integration, StoreSurvivesFeedRoundTripWithGccsIntact) {
  incidents::Incident turktrust = incidents::make_turktrust();
  SimSig registry;
  rsf::Feed feed("mozilla", registry);
  feed.publish(turktrust.store, 1000, "turktrust response");
  rsf::RsfClient client(feed, 3600);
  client.poll_now(2000);

  chain::ChainVerifier original(turktrust.store, turktrust.signatures);
  chain::ChainVerifier roundtripped(client.store(), turktrust.signatures);
  for (const auto& test_case : turktrust.cases) {
    EXPECT_EQ(
        original.verify(test_case.leaf, turktrust.pool, test_case.options).ok,
        roundtripped.verify(test_case.leaf, turktrust.pool, test_case.options)
            .ok)
        << test_case.label;
  }
}

}  // namespace
}  // namespace anchor
