#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace anchor {
namespace {

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyInput) {
  EXPECT_EQ(Sha256::hash_hex(Bytes{}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash_hex(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hash_hex(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Bytes input(1000000, 'a');
  EXPECT_EQ(Sha256::hash_hex(input),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/64-byte inputs exercise the padding edge cases.
  EXPECT_EQ(Sha256::hash_hex(Bytes(55, 'x')),
            Sha256::hash_hex(Bytes(55, 'x')));
  Bytes b56(56, 0x41);
  Bytes b64(64, 0x41);
  EXPECT_NE(Sha256::hash_hex(b56), Sha256::hash_hex(b64));
}

// Property: streaming updates produce the same digest as one-shot hashing,
// for every split point of the input.
TEST(Sha256, StreamingEqualsOneShotAllSplits) {
  Rng rng(1234);
  Bytes data = rng.random_bytes(300);
  Sha256::Digest expected = Sha256::hash(data);
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.update(BytesView(data.data(), split));
    h.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), expected) << "split=" << split;
  }
}

TEST(Sha256, ManySmallUpdates) {
  Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::uint8_t byte : data) h.update(BytesView(&byte, 1));
  EXPECT_EQ(h.finish(), Sha256::hash(data));
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  Rng rng(99);
  Bytes a = rng.random_bytes(32);
  Bytes b = a;
  b[0] ^= 1;
  EXPECT_NE(Sha256::hash(a), Sha256::hash(b));
}

}  // namespace
}  // namespace anchor
