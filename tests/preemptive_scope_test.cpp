#include "preemptive/scope.hpp"

#include <gtest/gtest.h>

namespace anchor::preemptive {
namespace {

const corpus::Corpus& shared_corpus() {
  static const corpus::Corpus corpus = [] {
    corpus::CorpusConfig config;
    config.leaves_per_intermediate_mean = 6.0;
    return corpus::Corpus::generate(config);
  }();
  return corpus;
}

TEST(Scope, IntermediateScopesCoverIssuance) {
  const auto& corpus = shared_corpus();
  auto scopes = analyze_intermediates(corpus);
  ASSERT_EQ(scopes.size(), corpus.intermediates().size());
  std::size_t total_observed = 0;
  for (const auto& scope : scopes) total_observed += scope.certificates_observed;
  EXPECT_EQ(total_observed, corpus.leaves().size());
}

TEST(Scope, ScopeFieldsArePopulated) {
  const auto& corpus = shared_corpus();
  auto scopes = analyze_intermediates(corpus);
  // Find a busy intermediate.
  const ScopeOfIssuance* busy = nullptr;
  for (const auto& scope : scopes) {
    if (scope.certificates_observed >= 5) {
      busy = &scope;
      break;
    }
  }
  ASSERT_NE(busy, nullptr);
  EXPECT_FALSE(busy->tlds.empty());
  EXPECT_TRUE(busy->key_usages.contains("digitalSignature"));
  EXPECT_GT(busy->max_lifetime_seconds, 0);
  EXPECT_FALSE(busy->tld_counts.empty());
}

TEST(Scope, RootScopesAggregateSubordinates) {
  const auto& corpus = shared_corpus();
  auto int_scopes = analyze_intermediates(corpus);
  auto root_scopes = analyze_roots(corpus);
  ASSERT_EQ(root_scopes.size(), corpus.roots().size());
  // A root's observation count equals the sum over its intermediates.
  std::vector<std::size_t> expected(corpus.roots().size(), 0);
  for (std::size_t i = 0; i < corpus.intermediates().size(); ++i) {
    expected[static_cast<std::size_t>(corpus.intermediates()[i].parent_root)] +=
        int_scopes[i].certificates_observed;
  }
  for (std::size_t r = 0; r < root_scopes.size(); ++r) {
    EXPECT_EQ(root_scopes[r].certificates_observed, expected[r]);
  }
}

TEST(Scope, CdfIsMonotoneAndEndsAtOne) {
  const auto& corpus = shared_corpus();
  auto scopes = analyze_intermediates(corpus);
  auto cdf = tld_count_cdf(scopes, 40);
  for (std::size_t k = 1; k < cdf.size(); ++k) {
    EXPECT_GE(cdf[k], cdf[k - 1]);
  }
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(Scope, NinetyPercentOfCasIssueForAtMostTenTlds) {
  // The CAge observation the paper cites (§5.2), on the calibrated corpus.
  const auto& corpus = shared_corpus();
  auto scopes = analyze_intermediates(corpus);
  std::size_t p90 = tld_quantile(scopes, 0.90);
  EXPECT_LE(p90, 10u);
  EXPECT_GE(p90, 1u);
  auto cdf = tld_count_cdf(scopes, 40);
  EXPECT_GE(cdf[10], 0.85);  // ~90%, allow sampling noise
}

TEST(Scope, QuantileEdgeCases) {
  std::vector<ScopeOfIssuance> empty;
  EXPECT_EQ(tld_quantile(empty, 0.9), 0u);
  ScopeOfIssuance one;
  one.certificates_observed = 1;
  one.tlds = {"com", "net"};
  EXPECT_EQ(tld_quantile({one}, 0.9), 2u);
}

TEST(Bimodal, DetectsClearlySeparatedClusters) {
  ScopeOfIssuance scope;
  scope.certificates_observed = 1000;
  // Heavy cluster: commercial TLDs; light cluster: government TLDs.
  scope.tld_counts = {{"com", 500}, {"net", 420}, {"org", 380},
                      {"gov", 4},   {"mil", 3},   {"edu", 2}};
  auto split = detect_bimodal(scope);
  ASSERT_TRUE(split.has_value());
  EXPECT_TRUE(split->heavy.contains("com"));
  EXPECT_TRUE(split->heavy.contains("net"));
  EXPECT_TRUE(split->light.contains("gov"));
  EXPECT_TRUE(split->light.contains("mil"));
  EXPECT_GE(split->separation, 2.0);
}

TEST(Bimodal, RejectsUniformIssuance) {
  ScopeOfIssuance scope;
  scope.certificates_observed = 400;
  scope.tld_counts = {{"com", 100}, {"net", 95}, {"org", 105}, {"io", 100}};
  EXPECT_FALSE(detect_bimodal(scope).has_value());
}

TEST(Bimodal, RejectsTooFewTlds) {
  ScopeOfIssuance scope;
  scope.certificates_observed = 100;
  scope.tld_counts = {{"com", 90}, {"gov", 2}};
  EXPECT_FALSE(detect_bimodal(scope).has_value());
}

TEST(Bimodal, MinClusterSizeIsRespected) {
  ScopeOfIssuance scope;
  scope.certificates_observed = 500;
  scope.tld_counts = {{"com", 400}, {"net", 380}, {"org", 390},
                      {"io", 410},  {"gov", 2}};
  // Only one light TLD: below min_cluster=2.
  EXPECT_FALSE(detect_bimodal(scope, 2.0, 2).has_value());
  EXPECT_TRUE(detect_bimodal(scope, 2.0, 1).has_value());
}

}  // namespace
}  // namespace anchor::preemptive
