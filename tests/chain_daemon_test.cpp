#include "chain/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "chain/service.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::chain {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

struct DaemonPki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("Daemon Root");
  SimKeyPair int_key = SimSig::keygen("Daemon Int");
  CertPtr root, intermediate;
  rootstore::RootStore store;
  static constexpr std::int64_t kNow = 1700000000;

  DaemonPki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Daemon Root", "T"))
               .issuer(DistinguishedName::make("Daemon Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("Daemon Int", "T"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2039, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .sign(root_key)
                       .take();
    sigs.register_key(root_key);
    sigs.register_key(int_key);
    (void)store.add_trusted(root);
  }

  CertPtr leaf(const std::string& domain, bool ev = false) {
    SimKeyPair key = SimSig::keygen("dleaf" + domain);
    CertificateBuilder builder;
    builder.serial(3)
        .subject(DistinguishedName::make(domain))
        .issuer(intermediate->subject())
        .validity(kNow - 86400, kNow + 90 * 86400)
        .public_key(key.key_id)
        .dns_names({domain})
        .extended_key_usage({x509::oids::kp_server_auth()});
    if (ev) builder.ev();
    return builder.sign(int_key).take();
  }
};

TEST(TrustDaemon, EvaluateGccsOverDerBoundary) {
  DaemonPki pki;
  pki.store.gccs().attach(
      core::Gcc::for_certificate(
          "no-ev", *pki.root,
          "valid(Chain, _) :- leaf(Chain, L), \\+ev(L).")
          .take());
  TrustDaemon daemon(pki.store, pki.sigs);

  CertPtr plain = pki.leaf("ok.example.com");
  std::vector<Bytes> chain_der{plain->der(), pki.intermediate->der(),
                               pki.root->der()};
  EXPECT_TRUE(daemon.evaluate_gccs(chain_der, "TLS"));

  CertPtr ev = pki.leaf("ev.example.com", true);
  std::vector<Bytes> ev_chain{ev->der(), pki.intermediate->der(),
                              pki.root->der()};
  EXPECT_FALSE(daemon.evaluate_gccs(ev_chain, "TLS"));
  EXPECT_EQ(daemon.calls(), 2u);
}

TEST(TrustDaemon, MalformedDerIsRejected) {
  DaemonPki pki;
  TrustDaemon daemon(pki.store, pki.sigs);
  std::vector<Bytes> garbage{Bytes{0x01, 0x02, 0x03}};
  EXPECT_FALSE(daemon.evaluate_gccs(garbage, "TLS"));
  EXPECT_FALSE(daemon.evaluate_gccs({}, "TLS"));
}

TEST(TrustDaemon, UnconstrainedRootAllows) {
  DaemonPki pki;
  TrustDaemon daemon(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("free.example.com");
  std::vector<Bytes> chain_der{leaf->der(), pki.intermediate->der(),
                               pki.root->der()};
  EXPECT_TRUE(daemon.evaluate_gccs(chain_der, "TLS"));
}

TEST(TrustDaemon, FullValidationInsideDaemon) {
  DaemonPki pki;
  TrustDaemon daemon(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("full.example.com");
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  options.hostname = "full.example.com";
  std::vector<Bytes> intermediates{pki.intermediate->der()};
  VerifyResult result = daemon.validate(leaf->der(), intermediates, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.chain.size(), 3u);
}

TEST(TrustDaemon, FullValidationRejectsMalformedLeaf) {
  DaemonPki pki;
  TrustDaemon daemon(pki.store, pki.sigs);
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  VerifyResult result = daemon.validate(Bytes{0xff}, {}, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("daemon"), std::string::npos);
}

TEST(TrustDaemon, LatencySimulationAccumulates) {
  DaemonPki pki;
  TrustDaemon fast(pki.store, pki.sigs, 0);
  TrustDaemon slow(pki.store, pki.sigs, 2000000);  // 2 ms per leg
  CertPtr leaf = pki.leaf("timed.example.com");
  std::vector<Bytes> chain_der{leaf->der(), pki.intermediate->der(),
                               pki.root->der()};
  auto time_call = [&](TrustDaemon& daemon) {
    auto start = std::chrono::steady_clock::now();
    daemon.evaluate_gccs(chain_der, "TLS");
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  auto fast_us = time_call(fast);
  auto slow_us = time_call(slow);
  EXPECT_GT(slow_us, fast_us + 3000);  // two 2ms legs minus noise
}

// Option-3 validate() with nonzero IPC latency, routed through the shared
// VerifyService: the two simulated kernel round trips must still be paid
// on top of the (possibly cached) service work.
TEST(TrustDaemon, ValidateWithLatencyThroughService) {
  DaemonPki pki;
  VerifyService service(pki.store, pki.sigs);
  TrustDaemon fast(pki.store, pki.sigs, 0, &service);
  TrustDaemon slow(pki.store, pki.sigs, 2000000, &service);  // 2 ms per leg

  CertPtr leaf = pki.leaf("svc.example.com");
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  options.hostname = "svc.example.com";
  std::vector<Bytes> intermediates{pki.intermediate->der()};

  auto timed_validate = [&](TrustDaemon& daemon, VerifyResult& out) {
    auto start = std::chrono::steady_clock::now();
    out = daemon.validate(leaf->der(), intermediates, options);
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  VerifyResult fast_result, slow_result;
  auto fast_us = timed_validate(fast, fast_result);
  auto slow_us = timed_validate(slow, slow_result);
  ASSERT_TRUE(fast_result.ok) << fast_result.error;
  ASSERT_TRUE(slow_result.ok) << slow_result.error;
  EXPECT_EQ(slow_result.chain.size(), 3u);
  EXPECT_GT(slow_us, fast_us + 3000);  // two 2ms legs minus noise
  EXPECT_EQ(fast.calls(), 1u);
  EXPECT_EQ(slow.calls(), 1u);
}

// The metrics verb: a trustctl-style scrape over the same IPC surface. It
// must refresh the store gauges and return the registry's text exposition.
TEST(TrustDaemon, MetricsVerbEmitsExposition) {
  DaemonPki pki;
  pki.store.distrust(std::string(64, 'a'), "incident");
  TrustDaemon daemon(pki.store, pki.sigs);

  metrics::Registry registry;  // isolated so counts are exact
  const std::string text = daemon.metrics(registry);
  EXPECT_NE(text.find("# TYPE anchor_store_trusted_roots gauge"),
            std::string::npos);
  EXPECT_NE(text.find("anchor_store_trusted_roots 1"), std::string::npos);
  EXPECT_NE(text.find("anchor_store_distrusted_roots 1"), std::string::npos);
  EXPECT_NE(text.find("anchor_store_epoch"), std::string::npos);
  EXPECT_EQ(daemon.calls(), 1u);  // the scrape itself crosses the boundary

  // Store changes show up on the next scrape.
  pki.store.distrust(std::string(64, 'b'), "second incident");
  const std::string updated = daemon.metrics(registry);
  EXPECT_NE(updated.find("anchor_store_distrusted_roots 2"),
            std::string::npos);
}

// Concurrent clients of one service-backed daemon: every caller gets the
// right Boolean / chain and no call is lost (calls_ is atomic).
TEST(TrustDaemon, ConcurrentCallersThroughService) {
  DaemonPki pki;
  pki.store.gccs().attach(
      core::Gcc::for_certificate(
          "no-ev", *pki.root,
          "valid(Chain, _) :- leaf(Chain, L), \\+ev(L).")
          .take());
  VerifyService service(pki.store, pki.sigs);
  TrustDaemon daemon(pki.store, pki.sigs, 10000, &service);  // 10 us per leg

  CertPtr plain = pki.leaf("plain.example.com");
  CertPtr ev = pki.leaf("ev.example.com", true);
  std::vector<Bytes> plain_chain{plain->der(), pki.intermediate->der(),
                                 pki.root->der()};
  std::vector<Bytes> ev_chain{ev->der(), pki.intermediate->der(),
                              pki.root->der()};
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  options.hostname = "plain.example.com";
  std::vector<Bytes> intermediates{pki.intermediate->der()};

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Option 2 both ways, plus option 3, from every thread.
        if (!daemon.evaluate_gccs(plain_chain, "TLS")) ++failures;
        if (daemon.evaluate_gccs(ev_chain, "TLS")) ++failures;
        VerifyResult result =
            daemon.validate(plain->der(), intermediates, options);
        if (!result.ok || result.chain.size() != 3) ++failures;
        (void)t;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(daemon.calls(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread * 3);
  // The shared service memoized the repeated work.
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.verdict_hits, 0u);
  EXPECT_GT(stats.cert_hits, 0u);
}

}  // namespace
}  // namespace anchor::chain
