// Concurrency suite for chain::VerifyService (ctest -L concurrency; run
// under -DANCHOR_SANITIZE=thread).
//
// The core property: a verdict returned by the concurrent, caching service
// must be *indistinguishable* from a cold single-threaded ChainVerifier
// run against the store at the epoch the call observed. Worker threads
// hammer verify() on a mixed corpus while a mutator applies RSF-style
// deltas (distrust, forget/re-trust, GCC attach/detach) through mutate();
// afterwards every recorded call is replayed cold and compared.
#include "chain/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "core/facts.hpp"
#include "rootstore/snapshot/view.hpp"
#include "rootstore/snapshot/writer.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::chain {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

constexpr std::int64_t kNow = 1700000000;

// Three roots, two intermediates each, four leaves per intermediate plus a
// couple of deliberately-broken leaves, so verifications exercise success,
// GCC rejection, distrust, and plain path failure concurrently.
struct ServicePki {
  SimSig sigs;
  std::vector<SimKeyPair> root_keys;
  std::vector<CertPtr> roots;
  std::vector<SimKeyPair> int_keys;
  std::vector<CertPtr> intermediates;
  std::vector<CertPtr> leaves;
  std::vector<std::string> domains;
  CertificatePool pool;
  rootstore::RootStore store;

  ServicePki() {
    int serial = 1;
    for (int r = 0; r < 3; ++r) {
      std::string name = "Svc Root " + std::to_string(r);
      SimKeyPair key = SimSig::keygen(name);
      CertPtr root = CertificateBuilder()
                         .serial(serial++)
                         .subject(DistinguishedName::make(name, "T"))
                         .issuer(DistinguishedName::make(name, "T"))
                         .validity(0, unix_date(2040, 1, 1))
                         .public_key(key.key_id)
                         .ca(std::nullopt)
                         .sign(key)
                         .take();
      sigs.register_key(key);
      root_keys.push_back(key);
      roots.push_back(root);
      (void)store.add_trusted(root);
      for (int i = 0; i < 2; ++i) {
        std::string int_name = "Svc Int " + std::to_string(r) + "." +
                               std::to_string(i);
        SimKeyPair ikey = SimSig::keygen(int_name);
        CertPtr intermediate =
            CertificateBuilder()
                .serial(serial++)
                .subject(DistinguishedName::make(int_name, "T"))
                .issuer(root->subject())
                .validity(0, unix_date(2039, 1, 1))
                .public_key(ikey.key_id)
                .ca(0)
                .sign(key)
                .take();
        sigs.register_key(ikey);
        int_keys.push_back(ikey);
        intermediates.push_back(intermediate);
        pool.add(intermediate);
        for (int l = 0; l < 4; ++l) {
          std::string domain = "l" + std::to_string(serial) + ".example.com";
          leaves.push_back(make_leaf(serial++, intermediate, ikey, domain,
                                     kNow - 86400, kNow + 90 * 86400));
          domains.push_back(domain);
        }
      }
    }
    // Broken corpus entries: an expired leaf and one whose issuer has no
    // candidate in the pool.
    leaves.push_back(make_leaf(serial++, intermediates[0], int_keys[0],
                               "expired.example.com", 1000, 2000));
    domains.push_back("expired.example.com");
    SimKeyPair orphan_key = SimSig::keygen("Svc Orphan");
    CertPtr orphan_issuer =
        CertificateBuilder()
            .serial(serial++)
            .subject(DistinguishedName::make("Svc Orphan", "T"))
            .issuer(DistinguishedName::make("Svc Orphan", "T"))
            .validity(0, unix_date(2039, 1, 1))
            .public_key(orphan_key.key_id)
            .ca(0)
            .sign(orphan_key)
            .take();
    sigs.register_key(orphan_key);
    leaves.push_back(make_leaf(serial++, orphan_issuer, orphan_key,
                               "orphan.example.com", kNow - 86400,
                               kNow + 86400));
    domains.push_back("orphan.example.com");
  }

  CertPtr make_leaf(int serial, const CertPtr& issuer,
                    const SimKeyPair& issuer_key, const std::string& domain,
                    std::int64_t not_before, std::int64_t not_after) {
    SimKeyPair key = SimSig::keygen("svc-leaf-" + std::to_string(serial));
    return CertificateBuilder()
        .serial(serial)
        .subject(DistinguishedName::make(domain))
        .issuer(issuer->subject())
        .validity(not_before, not_after)
        .public_key(key.key_id)
        .dns_names({domain})
        .extended_key_usage({x509::oids::kp_server_auth()})
        .sign(issuer_key)
        .take();
  }

  VerifyOptions options_for(std::size_t leaf_index) const {
    VerifyOptions options;
    options.time = kNow;
    options.hostname = domains[leaf_index];
    return options;
  }
};

// Rejects every chain (the required `valid` rule can never fire for the
// non-EV leaves this corpus issues).
constexpr const char* kRejectGcc =
    "valid(Chain, _) :- leaf(Chain, L), ev(L).";
// Accepts every chain.
constexpr const char* kAcceptGcc = "valid(Chain, _) :- leaf(Chain, L).";

struct RecordedCall {
  std::size_t leaf;
  std::uint64_t epoch;
  bool ok;
  std::string error;
  std::vector<std::string> chain_hashes;
};

std::vector<std::string> chain_hashes(const VerifyResult& result) {
  std::vector<std::string> hashes;
  for (const auto& cert : result.chain) {
    hashes.push_back(cert->fingerprint_hex());
  }
  return hashes;
}

TEST(VerifyService, StressConcurrentVerifyWithMutations) {
  ServicePki pki;
  ServiceConfig config;
  config.threads = 4;
  config.verdict_capacity = 512;
  config.cert_capacity = 256;
  VerifyService service(pki.store, pki.sigs, config);

  // Every store content the service can publish, keyed by epoch. The
  // mutator copies the live store right after each mutate() returns —
  // safe because it is the only thread touching the store (workers only
  // ever see immutable snapshots), and necessary because mutate() may
  // force the epoch past what the callback observed (a detach that
  // matched nothing still publishes a fresh epoch).
  std::map<std::uint64_t, rootstore::RootStore> history;
  history.emplace(service.epoch(), pki.store);

  constexpr int kWorkers = 6;
  constexpr int kItersPerWorker = 250;
  constexpr int kMutations = 36;

  std::vector<std::vector<RecordedCall>> per_worker(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(0x5eedULL + static_cast<std::uint64_t>(w));
      auto& recorded = per_worker[static_cast<std::size_t>(w)];
      recorded.reserve(kItersPerWorker);
      for (int iter = 0; iter < kItersPerWorker; ++iter) {
        std::size_t leaf = rng.uniform(pki.leaves.size());
        std::uint64_t epoch = 0;
        VerifyResult result = service.verify(
            pki.leaves[leaf], pki.pool, pki.options_for(leaf), &epoch);
        recorded.push_back(RecordedCall{leaf, epoch, result.ok, result.error,
                                        chain_hashes(result)});
      }
    });
  }

  std::thread mutator([&] {
    for (int m = 0; m < kMutations; ++m) {
      // Pairing (m/2) keeps each do/undo op pair on the same root, so
      // attaches really get detached and distrusts really get reversed.
      const std::size_t r =
          (static_cast<std::size_t>(m) / 2) % pki.roots.size();
      const std::string hash = pki.roots[r]->fingerprint_hex();
      service.mutate([&](rootstore::RootStore& store) {
        switch (m % 6) {
          case 0:
            store.attach_gcc(
                core::Gcc::for_certificate("stress-reject", *pki.roots[r],
                                           kRejectGcc)
                    .take());
            break;
          case 1:
            store.detach_gcc(hash, "stress-reject");
            break;
          case 2:
            store.distrust(hash, "stress");
            break;
          case 3:
            store.forget(hash);
            ASSERT_TRUE(store.add_trusted(pki.roots[r]).ok());
            break;
          case 4:
            store.attach_gcc(
                core::Gcc::for_certificate("stress-accept", *pki.roots[r],
                                           kAcceptGcc)
                    .take());
            break;
          default:
            store.detach_gcc(hash, "stress-accept");
            break;
        }
      });
      history.emplace(service.epoch(), pki.store);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& worker : workers) worker.join();
  mutator.join();

  // Replay every call cold at the epoch it observed.
  std::size_t checked = 0;
  for (const auto& recorded : per_worker) {
    for (const RecordedCall& call : recorded) {
      auto it = history.find(call.epoch);
      ASSERT_NE(it, history.end())
          << "service reported an epoch the mutator never published: "
          << call.epoch;
      ChainVerifier cold(it->second, pki.sigs);
      VerifyResult expected = cold.verify(pki.leaves[call.leaf], pki.pool,
                                          pki.options_for(call.leaf));
      EXPECT_EQ(call.ok, expected.ok)
          << "leaf " << call.leaf << " at epoch " << call.epoch;
      EXPECT_EQ(call.error, expected.error)
          << "leaf " << call.leaf << " at epoch " << call.epoch;
      EXPECT_EQ(call.chain_hashes, chain_hashes(expected))
          << "leaf " << call.leaf << " at epoch " << call.epoch;
      ++checked;
    }
  }
  EXPECT_EQ(checked,
            static_cast<std::size_t>(kWorkers) * kItersPerWorker);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.epoch_flushes, static_cast<std::uint64_t>(kMutations));
  EXPECT_GE(stats.calls, checked);
}

TEST(VerifyService, BatchMatchesSequentialVerification) {
  ServicePki pki;
  VerifyService service(pki.store, pki.sigs);

  // One options struct serves the whole batch, so use one hostname and
  // leave the rest to SAN matching via an empty hostname.
  VerifyOptions options;
  options.time = kNow;
  std::vector<CertPtr> batch = pki.leaves;
  std::vector<VerifyResult> results =
      service.verify_batch(batch, pki.pool, options);
  ASSERT_EQ(results.size(), batch.size());

  ChainVerifier cold(pki.store, pki.sigs);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    VerifyResult expected = cold.verify(batch[i], pki.pool, options);
    EXPECT_EQ(results[i].ok, expected.ok) << "leaf " << i;
    EXPECT_EQ(results[i].error, expected.error) << "leaf " << i;
    EXPECT_EQ(chain_hashes(results[i]), chain_hashes(expected)) << "leaf " << i;
  }
}

TEST(VerifyService, WarmCacheHitsAndEpochFlush) {
  ServicePki pki;
  // Attach an accepting GCC so the verdict cache is actually exercised.
  for (const CertPtr& root : pki.roots) {
    pki.store.attach_gcc(
        core::Gcc::for_certificate("warm", *root, kAcceptGcc).take());
  }
  VerifyService service(pki.store, pki.sigs);

  VerifyResult first =
      service.verify(pki.leaves[0], pki.pool, pki.options_for(0));
  ASSERT_TRUE(first.ok) << first.error;
  ServiceStats after_first = service.stats();
  EXPECT_EQ(after_first.verdict_hits, 0u);
  EXPECT_GE(after_first.verdict_misses, 1u);

  VerifyResult second =
      service.verify(pki.leaves[0], pki.pool, pki.options_for(0));
  ASSERT_TRUE(second.ok) << second.error;
  ServiceStats after_second = service.stats();
  EXPECT_GE(after_second.verdict_hits, 1u);
  EXPECT_EQ(after_second.verdict_misses, after_first.verdict_misses);

  // A mutation flushes: the same chain re-evaluates under the new epoch.
  service.mutate([&](rootstore::RootStore& store) {
    store.attach_gcc(
        core::Gcc::for_certificate("warm2", *pki.roots[1], kAcceptGcc).take());
  });
  ServiceStats after_mutate = service.stats();
  EXPECT_EQ(after_mutate.epoch_flushes, 1u);
  EXPECT_GE(after_mutate.stale_purged, 1u);

  VerifyResult third =
      service.verify(pki.leaves[0], pki.pool, pki.options_for(0));
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_GT(service.stats().verdict_misses, after_second.verdict_misses);
}

TEST(VerifyService, DerEntryPointsShareParseCache) {
  ServicePki pki;
  VerifyService service(pki.store, pki.sigs);

  std::vector<Bytes> chain_der{pki.leaves[0]->der(),
                               pki.intermediates[0]->der(),
                               pki.roots[0]->der()};
  EXPECT_TRUE(service.evaluate_gccs(chain_der, "TLS"));
  ServiceStats cold = service.stats();
  EXPECT_EQ(cold.cert_hits, 0u);
  EXPECT_EQ(cold.cert_misses, 3u);

  EXPECT_TRUE(service.evaluate_gccs(chain_der, "TLS"));
  ServiceStats warm = service.stats();
  EXPECT_EQ(warm.cert_hits, 3u);
  EXPECT_EQ(warm.cert_misses, 3u);

  // validate() reuses the same parsed-certificate cache.
  std::vector<Bytes> intermediates{pki.intermediates[0]->der()};
  VerifyResult result = service.validate(pki.leaves[0]->der(), intermediates,
                                         pki.options_for(0));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GE(service.stats().cert_hits, 5u);
}

// Regression: the verdict-cache hit path used to drop the evaluator's
// EvalStats on the floor (only miss and context paths accumulated them),
// so a warm call was observably different from the cold call it replayed.
// Hit-path accounting must equal miss-path accounting, field by field.
TEST(VerifyService, CachedVerdictReplaysEvalStatsOnHit) {
  ServicePki pki;
  for (const CertPtr& root : pki.roots) {
    pki.store.attach_gcc(
        core::Gcc::for_certificate("stats", *root, kAcceptGcc).take());
  }
  VerifyService service(pki.store, pki.sigs);

  VerifyResult miss = service.verify(pki.leaves[0], pki.pool,
                                     pki.options_for(0));
  ASSERT_TRUE(miss.ok) << miss.error;
  // The regression is only meaningful if the evaluator actually did work.
  ASSERT_GT(miss.gcc_verdict.stats.derived_tuples, 0u);

  VerifyResult hit = service.verify(pki.leaves[0], pki.pool,
                                    pki.options_for(0));
  ASSERT_TRUE(hit.ok) << hit.error;
  ASSERT_GE(service.stats().verdict_hits, 1u);

  const datalog::EvalStats& a = miss.gcc_verdict.stats;
  const datalog::EvalStats& b = hit.gcc_verdict.stats;
  EXPECT_EQ(b.iterations, a.iterations);
  EXPECT_EQ(b.rule_applications, a.rule_applications);
  EXPECT_EQ(b.derived_tuples, a.derived_tuples);
  EXPECT_EQ(b.type_errors, a.type_errors);
  EXPECT_EQ(b.unbound_head_terms, a.unbound_head_terms);
  EXPECT_EQ(b.truncated, a.truncated);
  EXPECT_EQ(b.errored, a.errored);
  EXPECT_EQ(hit.gcc_verdict.gccs_evaluated, miss.gcc_verdict.gccs_evaluated);
  EXPECT_EQ(hit.gcc_verdict.facts_encoded, miss.gcc_verdict.facts_encoded);
}

// Regression (run under -DANCHOR_SANITIZE=address): submit() used to
// capture a raw CertificatePool*, so a caller that destroyed the pool
// before the future resolved handed the worker a dangling pointer. The
// task now shares ownership.
TEST(VerifyService, SubmitSharesPoolOwnershipWithWorker) {
  ServicePki pki;
  ServiceConfig config;
  config.threads = 1;  // serialize: the second task cannot start early
  VerifyService service(pki.store, pki.sigs, config);

  auto pool_a = std::make_shared<const CertificatePool>(pki.pool);
  auto future_a = service.submit(pki.leaves[0], pool_a, pki.options_for(0));
  // Queue a second verification behind the first on the single worker,
  // then drop the caller's only reference to its pool before the worker
  // can possibly have reached it.
  auto pool_b = std::make_shared<const CertificatePool>(pki.pool);
  auto future_b = service.submit(pki.leaves[1], pool_b, pki.options_for(1));
  pool_b.reset();

  VerifyResult a = future_a.get();
  VerifyResult b = future_b.get();
  EXPECT_TRUE(a.ok) << a.error;
  EXPECT_TRUE(b.ok) << b.error;
}

// validate_batch (anchord's kVerifyBatch backend) must agree entry-by-entry
// with validate(), with a malformed leaf failing only its own slot.
TEST(VerifyService, ValidateBatchMatchesValidatePerEntry) {
  ServicePki pki;
  VerifyService service(pki.store, pki.sigs);

  std::vector<Bytes> intermediates;
  for (const CertPtr& intermediate : pki.intermediates) {
    intermediates.push_back(intermediate->der());
  }
  std::vector<Bytes> leaf_ders;
  std::vector<std::string> hostnames;
  for (std::size_t i = 0; i < pki.leaves.size(); ++i) {
    leaf_ders.push_back(pki.leaves[i]->der());
    hostnames.push_back(pki.domains[i]);
  }
  leaf_ders.push_back(Bytes{0xde, 0xad});  // malformed, fails alone
  hostnames.push_back("broken.example.com");

  VerifyOptions options;
  options.time = kNow;
  std::vector<VerifyResult> batch =
      service.validate_batch(leaf_ders, hostnames, intermediates, options);
  ASSERT_EQ(batch.size(), leaf_ders.size());

  for (std::size_t i = 0; i + 1 < leaf_ders.size(); ++i) {
    VerifyOptions entry_options = options;
    entry_options.hostname = hostnames[i];
    VerifyResult expected =
        service.validate(leaf_ders[i], intermediates, entry_options);
    EXPECT_EQ(batch[i].ok, expected.ok) << "entry " << i;
    EXPECT_EQ(batch[i].error, expected.error) << "entry " << i;
    EXPECT_EQ(chain_hashes(batch[i]), chain_hashes(expected)) << "entry " << i;
  }
  EXPECT_FALSE(batch.back().ok);
  EXPECT_EQ(batch.back().kind, ErrorKind::kMalformedRequest);
}

// Regression: context-carrying verifies (VerifyOptions::gcc_context) were
// silently exempt from the verdict cache — correct, since context facts
// are not part of the cache key, but invisible to operators tuning cache
// capacity from hit/miss ratios. They must be counted as bypasses, and
// they must neither read nor populate the cache.
TEST(VerifyService, ContextVerifiesBypassCacheAndAreCounted) {
  ServicePki pki;
  for (const CertPtr& root : pki.roots) {
    pki.store.attach_gcc(
        core::Gcc::for_certificate("ctx", *root, kAcceptGcc).take());
  }
  metrics::Registry registry;
  VerifyService service(pki.store, pki.sigs, {}, registry);

  core::FactSet facts;
  VerifyOptions with_context = pki.options_for(0);
  with_context.gcc_context = &facts;

  ASSERT_TRUE(service.verify(pki.leaves[0], pki.pool, with_context).ok);
  ASSERT_TRUE(service.verify(pki.leaves[0], pki.pool, with_context).ok);
  ServiceStats after_context = service.stats();
  EXPECT_EQ(after_context.verdict_bypass, 2u);
  EXPECT_EQ(after_context.verdict_hits, 0u);
  EXPECT_EQ(after_context.verdict_misses, 0u);
  // The counter is operator-visible under the registry name the anchorctl
  // metrics verb exposes.
  EXPECT_EQ(registry.counter("anchor_verify_cache_bypass_total").value(), 2u);

  // The context calls populated nothing: the first context-free verify of
  // the same chain is a miss, not a hit.
  ASSERT_TRUE(service.verify(pki.leaves[0], pki.pool, pki.options_for(0)).ok);
  ServiceStats after_plain = service.stats();
  EXPECT_EQ(after_plain.verdict_hits, 0u);
  EXPECT_GE(after_plain.verdict_misses, 1u);

  // And a later context call must not read the now-warm cache either.
  ASSERT_TRUE(service.verify(pki.leaves[0], pki.pool, with_context).ok);
  ServiceStats final_stats = service.stats();
  EXPECT_EQ(final_stats.verdict_bypass, 3u);
  EXPECT_EQ(final_stats.verdict_hits, 0u);
}

// TSan property for the advance_epoch_past audit: under interleaved
// mutate() and adopt_view() — including adoption of *stale* snapshots
// whose own epoch is far behind the service's — every publication lands a
// strictly larger epoch, and no concurrent reader ever observes the epoch
// move backwards. A repeated epoch would let a verdict cached under its
// first occurrence be served against different trust content.
TEST(VerifyService, InterleavedAdoptAndMutateKeepEpochStrictlyIncreasing) {
  ServicePki pki;
  ServiceConfig config;
  config.threads = 2;
  metrics::Registry registry;
  VerifyService service(pki.store, pki.sigs, config, registry);

  // Snapshot the store *before* any service-side mutation: every adopted
  // view is deliberately stale, so the max(view-epoch, prior+1) rule is
  // what keeps the published epoch moving.
  const rootstore::RootStore frozen = pki.store;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> regressions{0};
  std::vector<std::thread> readers;
  for (int w = 0; w < 3; ++w) {
    readers.emplace_back([&, w] {
      std::uint64_t seen = 0;
      std::size_t leaf = static_cast<std::size_t>(w);
      while (!done.load(std::memory_order_relaxed)) {
        const std::uint64_t epoch = service.epoch();
        if (epoch < seen) regressions.fetch_add(1, std::memory_order_relaxed);
        seen = epoch;
        leaf = (leaf + 1) % pki.leaves.size();
        (void)service.verify(pki.leaves[leaf], pki.pool,
                             pki.options_for(leaf));
      }
    });
  }

  std::uint64_t published = service.epoch();
  for (int round = 0; round < 24; ++round) {
    if (round % 2 == 0) {
      std::string hash(62, 'e');
      hash += static_cast<char>('0' + round / 10);
      hash += static_cast<char>('0' + round % 10);
      service.mutate([&](rootstore::RootStore& live) {
        live.distrust(hash, "round");
      });
    } else {
      auto opened = rootstore::snapshot::StoreView::from_bytes(
          rootstore::snapshot::write_snapshot(frozen));
      ASSERT_TRUE(opened.ok()) << opened.error.to_string();
      service.adopt_view(opened.view);
    }
    const std::uint64_t now = service.epoch();
    EXPECT_GT(now, published) << "round " << round;
    published = now;
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(regressions.load(), 0u);
}

}  // namespace
}  // namespace anchor::chain
