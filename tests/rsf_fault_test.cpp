// Fault-tolerant RSF sync (tests for the FeedTransport/FaultyTransport
// layer and the client's retry/quarantine/health machinery).
//
// The two properties every test here circles around:
//   SAFETY   — no injected fault can ever make the client adopt a store
//              that is not a signature- and hash-chain-verified primary
//              snapshot (merged with the local store);
//   LIVENESS — once faults clear, the client converges to the primary's
//              head within bounded retries.
#include "rsf/transport.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rsf/client.hpp"
#include "rsf/clock.hpp"
#include "util/sha256.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::rsf {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

rootstore::RootStore store_with(int count) {
  rootstore::RootStore store;
  for (int i = 0; i < count; ++i) {
    (void)store.add_trusted(make_root("Fault Root " + std::to_string(i)));
  }
  return store;
}

// A transport whose faults are scripted, not random — for regression tests
// that need a specific failure at a specific sequence.
class ScriptedTransport : public FeedTransport {
 public:
  explicit ScriptedTransport(const Feed& feed) : direct_(feed) {}

  const std::string& name() const override { return direct_.name(); }
  const Bytes& key_id() const override { return direct_.key_id(); }
  Result<std::uint64_t> head_sequence() override {
    return direct_.head_sequence();
  }
  Result<std::vector<Snapshot>> fetch_since(std::uint64_t after) override {
    if (unreachable) return err("scripted: unreachable");
    return direct_.fetch_since(after);
  }
  Result<std::string> fetch_delta(std::uint64_t sequence) override {
    if (sequence == corrupt_delta_at) return std::string("garbage delta");
    return direct_.fetch_delta(sequence);
  }

  bool unreachable = false;
  std::uint64_t corrupt_delta_at = 0;  // 0 = no corruption

 private:
  DirectTransport direct_;
};

TEST(FaultyTransport, ZeroProfileIsTransparent) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(3), 100, "r1");
  DirectTransport direct(feed);
  FaultyTransport faulty(direct, FaultProfile{}, /*seed=*/7);
  auto run = faulty.fetch_since(0);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().size(), 1u);
  EXPECT_EQ(faulty.injected_total(), 0u);
  Status s = Feed::verify_run(run.value(), "", BytesView(faulty.key_id()),
                              registry);
  EXPECT_TRUE(s.ok());
}

TEST(FaultyTransport, InjectionIsDeterministicUnderSeed) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore store = store_with(4);
  for (int i = 0; i < 6; ++i) feed.publish(store, 100 + i, "r");

  auto observe = [&](std::uint64_t seed) {
    DirectTransport direct(feed);
    FaultyTransport faulty(direct, FaultProfile::chaos(0.5), seed);
    std::vector<std::string> hashes;
    for (int i = 0; i < 16; ++i) {
      auto run = faulty.fetch_since(2);
      if (!run) {
        hashes.push_back("<unreachable>");
        continue;
      }
      std::string digest;
      for (const Snapshot& snap : run.value()) {
        digest += std::to_string(snap.sequence) + ":" +
                  Sha256::hash_hex(BytesView(to_bytes(snap.payload))) + ";";
        digest += to_hex(BytesView(snap.signature)).substr(0, 8) + "|";
      }
      hashes.push_back(digest);
    }
    return hashes;
  };
  EXPECT_EQ(observe(42), observe(42));
  EXPECT_NE(observe(42), observe(43));
}

TEST(FaultyTransport, CorruptionIsDetectedByVerifyRun) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(3), 100, "r1");
  feed.publish(store_with(4), 200, "r2");
  DirectTransport direct(feed);
  FaultyTransport faulty(direct, FaultProfile::corruption(1.0), /*seed=*/3);
  auto run = faulty.fetch_since(0);
  ASSERT_TRUE(run.ok());
  Feed::RunFault fault = Feed::RunFault::kNone;
  Status s = Feed::verify_run(run.value(), "", BytesView(faulty.key_id()),
                              registry, &fault);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(fault, Feed::RunFault::kNone);
  // The underlying feed is untouched: a clean fetch still verifies.
  auto clean = direct.fetch_since(0);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(Feed::verify_run(clean.value(), "", BytesView(direct.key_id()),
                               registry)
                  .ok());
}

// --- client behaviour under faults -----------------------------------------

TEST(RsfFault, UnreachableFeedBacksOffExponentially) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(2), 0, "r1");

  DirectTransport direct(feed);
  FaultyTransport faulty(direct, FaultProfile::loss(1.0), /*seed=*/1);
  RetryPolicy retry;
  retry.base_backoff = 60;
  retry.max_backoff = 3600;
  retry.jitter = 0.0;           // exact schedule for the assertion
  retry.stale_after = 12 * 3600;
  RsfClient client(faulty, 3600, MergePolicy::kPrimaryWins,
                   Transport::kFullSnapshot, retry);

  // Drive one simulated day at minute granularity. With backoff 60, 120,
  // 240, ... capped at 3600, the client issues O(log) polls early and then
  // one per hour — far fewer than the 1440 a fixed-minute retry would.
  SimClock clock(0);
  while (clock.now() < 86400) {
    client.run_until(clock.now());
    clock.advance(60);
  }
  EXPECT_GT(client.stats().polls, 5u);
  EXPECT_LT(client.stats().polls, 40u);
  EXPECT_EQ(client.stats().retries, client.stats().polls);
  EXPECT_EQ(client.stats().transport_error(TransportErrorKind::kUnreachable),
            client.stats().polls);
  EXPECT_EQ(client.last_applied_sequence(), 0u);
  EXPECT_EQ(client.health(), ClientHealth::kStale);  // > 12h with no contact
  EXPECT_GE(client.stats().seconds_stale, 86400 - 2 * 3600);

  // Feed recovers: the next poll adopts the head and health snaps back.
  faulty.set_profile(FaultProfile{});
  clock.advance(3600);
  client.run_until(clock.now());
  EXPECT_EQ(client.last_applied_sequence(), 1u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
  EXPECT_EQ(client.stats().seconds_stale, 0);
}

TEST(RsfFault, PoisonedHeadIsQuarantinedNotRefetchedForever) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(2), 0, "r1");
  RetryPolicy retry;
  retry.quarantine_threshold = 3;
  retry.quarantine_duration = 48 * 3600;  // outlasts the observed day
  retry.stale_after = 7 * 86400;          // keep health on the degraded axis
  RsfClient client(feed, 3600, MergePolicy::kPrimaryWins,
                   Transport::kFullSnapshot, retry);
  EXPECT_EQ(client.poll_now(0), 1u);

  // Snapshot 2 is poisoned in the feed itself — every fetch of it fails
  // verification, no matter how many times the client retries.
  feed.publish(store_with(3), 100, "r2");
  feed.mutable_at(2)->payload += "tamper";

  SimClock clock(3600);
  for (int hour = 0; hour < 24; ++hour) {
    client.run_until(clock.now());
    clock.advance(3600);
  }
  // Exactly `threshold` verification attempts, then quarantine skips.
  EXPECT_EQ(client.stats().verify_failures, 3u);
  EXPECT_GT(client.stats().quarantine_skips, 0u);
  EXPECT_EQ(client.stats().quarantine_size, 1u);
  EXPECT_EQ(client.health(), ClientHealth::kDegraded);
  // Still serving the last good store.
  EXPECT_EQ(client.last_applied_sequence(), 1u);
  EXPECT_EQ(client.store().trusted_count(), 2u);

  // The publisher ships a clean successor; the client must advance to it
  // even though the poisoned sequence is still quarantined. (The repaired
  // run re-fetches snapshot 2, whose tampered payload now fails again —
  // so repair the feed entry, as a publisher re-issuing the snapshot.)
  feed.mutable_at(2)->payload = feed.mutable_at(2)->payload.substr(
      0, feed.mutable_at(2)->payload.size() - 6);
  feed.publish(store_with(4), 200, "r3");
  client.poll_now(clock.now());
  EXPECT_EQ(client.last_applied_sequence(), 3u);
  EXPECT_EQ(client.store().trusted_count(), 4u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
}

TEST(RsfFault, QuarantineIsBounded) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(1), 0, "r1");
  RetryPolicy retry;
  retry.quarantine_threshold = 1;   // quarantine on first failure
  retry.quarantine_capacity = 4;
  retry.quarantine_duration = 1000L * 86400;  // effectively forever
  RsfClient client(feed, 3600, MergePolicy::kPrimaryWins,
                   Transport::kFullSnapshot, retry);
  EXPECT_EQ(client.poll_now(0), 1u);

  // A stream of poisoned heads: each gets quarantined, the table must not
  // grow past its capacity.
  SimClock clock(3600);
  for (int i = 0; i < 10; ++i) {
    feed.publish(store_with(2 + i), clock.now(), "r");
    feed.mutable_at(feed.head_sequence())->payload += "tamper";
    client.poll_now(clock.now());       // fails, quarantines
    client.poll_now(clock.now() + 60);  // skips
    clock.advance(3600);
  }
  EXPECT_LE(client.stats().quarantine_size, 4u);
  EXPECT_GT(client.stats().quarantine_skips, 0u);
  EXPECT_EQ(client.last_applied_sequence(), 1u);
}

TEST(RsfFault, RollbackReplayIsNeverAdopted) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(1), 0, "r1");
  feed.publish(store_with(2), 100, "r2");
  feed.publish(store_with(3), 200, "r3");

  DirectTransport direct(feed);
  FaultyTransport faulty(direct, FaultProfile{}, /*seed=*/9);
  RsfClient client(faulty, 3600);
  EXPECT_EQ(client.poll_now(300), 3u);
  const std::uint64_t adopted = client.last_applied_sequence();

  // From here on, every fetch is a stale replay of an older feed state.
  FaultProfile rollback;
  rollback.rollback = 1.0;
  faulty.set_profile(rollback);
  feed.publish(store_with(4), 400, "r4");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(client.poll_now(500 + i * 3600), 0u);
  }
  EXPECT_GE(client.stats().transport_error(TransportErrorKind::kRollback), 5u);
  EXPECT_EQ(client.last_applied_sequence(), adopted);
  EXPECT_EQ(client.store().trusted_count(), 3u);

  faulty.set_profile(FaultProfile{});
  EXPECT_EQ(client.poll_now(50000), 1u);
  EXPECT_EQ(client.last_applied_sequence(), 4u);
}

// The acceptance test: a 30% all-kinds fault rate while the primary keeps
// releasing; the client must (a) never expose anything but a verified
// primary snapshot merged with its local store, (b) keep
// last_applied_sequence monotonic, and (c) converge to the primary head
// within bounded retries once faults stop.
TEST(RsfFault, ConvergesAfterChaosAndNeverServesUnverifiedState) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore primary = store_with(4);

  CertPtr imported = make_root("Locally Imported Root");
  rootstore::RootStore local;
  (void)local.add_trusted(imported);

  DirectTransport direct(feed);
  FaultyTransport faulty(direct, FaultProfile::chaos(0.3), /*seed=*/2024);
  RetryPolicy retry;
  retry.base_backoff = 300;
  retry.quarantine_duration = 4 * 3600;
  RsfClient client(faulty, 3600, MergePolicy::kPrimaryWins,
                   Transport::kFullSnapshot, retry);
  client.set_local_store(local);

  // Every store the client may legitimately expose: a published primary
  // snapshot merged with the local store (plus the pre-first-poll empty
  // store).
  std::set<std::string> legitimate;
  legitimate.insert(rootstore::RootStore{}.serialize());
  auto publish = [&](std::int64_t at, const std::string& note) {
    feed.publish(primary, at, note);
    legitimate.insert(
        merge(primary, local, MergePolicy::kPrimaryWins).merged.serialize());
  };

  publish(0, "baseline");
  SimClock clock(0);
  std::uint64_t last_seq = 0;
  int releases = 1;
  const std::int64_t chaos_end = 40 * 86400;
  while (clock.now() < chaos_end) {
    // A routine release roughly every 3 days; mutate the store so every
    // snapshot is distinguishable.
    if (clock.now() > 0 && clock.now() % (3 * 86400) == 0) {
      (void)primary.add_trusted(
          make_root("Release Root " + std::to_string(releases)));
      publish(clock.now(), "routine");
      ++releases;
    }
    client.run_until(clock.now());
    // SAFETY: the exposed store is always a verified published state.
    EXPECT_TRUE(legitimate.count(client.store().serialize()) == 1)
        << "client exposed a store that was never published at t="
        << clock.now();
    // Monotonic adoption.
    EXPECT_GE(client.last_applied_sequence(), last_seq);
    last_seq = client.last_applied_sequence();
    clock.advance(1800);
  }
  // The chaos phase must actually have exercised the failure paths.
  EXPECT_GT(faulty.injected_total(), 0u);
  EXPECT_GT(client.stats().retries, 0u);
  EXPECT_GT(client.stats().transport_errors_total(), 0u);

  // LIVENESS: faults stop; the client converges to the primary's head
  // within a bounded number of polls (quarantines expire inside the
  // window, backoff is capped at an hour).
  faulty.set_profile(FaultProfile{});
  const std::uint64_t polls_at_recovery = client.stats().polls;
  bool converged = false;
  for (int i = 0; i < 48 && !converged; ++i) {
    clock.advance(3600);
    client.run_until(clock.now());
    converged = client.last_applied_sequence() == feed.head_sequence();
  }
  EXPECT_TRUE(converged) << "client did not converge within 48h of recovery";
  EXPECT_LE(client.stats().polls - polls_at_recovery, 48u);
  EXPECT_EQ(client.store().serialize(),
            merge(primary, local, MergePolicy::kPrimaryWins)
                .merged.serialize());
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
}

// Delta transport under chaos: same safety property, and every fallback is
// accounted for without inflating deltas_applied.
TEST(RsfFault, DeltaTransportUnderChaosStaysConsistent) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore primary = store_with(6);

  DirectTransport direct(feed);
  FaultyTransport faulty(direct, FaultProfile::chaos(0.25), /*seed=*/77);
  RsfClient client(faulty, 3600, MergePolicy::kPrimaryWins, Transport::kDelta);

  std::set<std::string> legitimate;
  legitimate.insert(rootstore::RootStore{}.serialize());
  feed.publish(primary, 0, "baseline");
  legitimate.insert(primary.serialize());

  SimClock clock(0);
  for (int step = 1; step <= 200; ++step) {
    if (step % 10 == 0) {
      primary.distrust(
          primary.trusted()[0]->cert->fingerprint_hex(), "incident");
      (void)primary.add_trusted(make_root("Delta Root " +
                                          std::to_string(step)));
      feed.publish(primary, clock.now(), "update");
      legitimate.insert(primary.serialize());
    }
    client.run_until(clock.now());
    ASSERT_TRUE(legitimate.count(client.store().serialize()) == 1)
        << "delta client exposed an unpublished state at step " << step;
    clock.advance(1800);
  }
  faulty.set_profile(FaultProfile{});
  for (int i = 0; i < 24; ++i) {
    clock.advance(3600);
    client.run_until(clock.now());
  }
  EXPECT_EQ(client.last_applied_sequence(), feed.head_sequence());
  EXPECT_EQ(client.store().serialize(), primary.serialize());
}

// --- satellite regression: delta accounting --------------------------------

TEST(RsfFault, AbandonedDeltaReplayDoesNotInflateDeltasApplied) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore primary = store_with(3);
  feed.publish(primary, 0, "r1");

  ScriptedTransport transport(feed);
  RsfClient client(transport, 3600, MergePolicy::kPrimaryWins,
                   Transport::kDelta);
  EXPECT_EQ(client.poll_now(100), 1u);
  EXPECT_EQ(client.stats().deltas_applied, 1u);  // bootstrap delta
  const std::uint64_t bytes_after_bootstrap = client.stats().bytes_fetched;

  // Two more releases; the delta for the *second* one is corrupted, so the
  // replay applies delta 2 and then aborts on delta 3 — the whole replica
  // is discarded and the run falls back to the full snapshot.
  (void)primary.add_trusted(make_root("Delta Reg Root A"));
  feed.publish(primary, 200, "r2");
  (void)primary.add_trusted(make_root("Delta Reg Root B"));
  feed.publish(primary, 300, "r3");
  transport.corrupt_delta_at = 3;

  EXPECT_EQ(client.poll_now(400), 2u);
  EXPECT_EQ(client.stats().delta_fallbacks, 1u);
  // Only deltas that ended up in the adopted replica count — the replayed
  // delta 2 was discarded with the rest of the abandoned replica.
  EXPECT_EQ(client.stats().deltas_applied, 1u);
  // The discarded delta bytes are accounted: fetched (they crossed the
  // wire) and discarded (they bought nothing); the fallback snapshot bytes
  // are fetched only.
  EXPECT_GT(client.stats().bytes_discarded, 0u);
  EXPECT_EQ(client.stats().bytes_fetched,
            bytes_after_bootstrap + client.stats().bytes_discarded +
                feed.at(3)->payload.size());
  // And the client still adopted the verified head via the snapshot.
  EXPECT_EQ(client.last_applied_sequence(), 3u);
  EXPECT_EQ(client.store().trusted_count(), 5u);

  // Once the transport heals, the next delta replay works and counts.
  transport.corrupt_delta_at = 0;
  (void)primary.add_trusted(make_root("Delta Reg Root C"));
  feed.publish(primary, 500, "r4");
  EXPECT_EQ(client.poll_now(600), 1u);
  EXPECT_EQ(client.stats().deltas_applied, 2u);
  EXPECT_EQ(client.stats().delta_fallbacks, 1u);
}

}  // namespace
}  // namespace anchor::rsf
