#include "datalog/parser.hpp"

#include <gtest/gtest.h>

namespace anchor::datalog {
namespace {

TEST(Parser, FactWithConstants) {
  auto program = parse_program("nov30th2022(1669784400).").take();
  ASSERT_EQ(program.clauses.size(), 1u);
  const Clause& clause = program.clauses[0];
  EXPECT_TRUE(clause.is_fact());
  EXPECT_EQ(clause.head.predicate, "nov30th2022");
  ASSERT_EQ(clause.head.args.size(), 1u);
  EXPECT_EQ(clause.head.args[0].constant, Value(std::int64_t{1669784400}));
}

TEST(Parser, RuleWithBody) {
  auto program = parse_program(
      "valid(Chain, \"TLS\") :- leaf(Chain, Cert), notBefore(Cert, NB), NB < 5.")
      .take();
  ASSERT_EQ(program.clauses.size(), 1u);
  const Clause& clause = program.clauses[0];
  EXPECT_FALSE(clause.is_fact());
  EXPECT_EQ(clause.body.size(), 3u);
  EXPECT_EQ(clause.body[0].kind, Literal::Kind::kAtom);
  EXPECT_EQ(clause.body[2].kind, Literal::Kind::kComparison);
  EXPECT_EQ(clause.body[2].cmp, CmpOp::kLt);
}

TEST(Parser, NegatedAtom) {
  auto program = parse_program("p(X) :- q(X), \\+r(X).").take();
  EXPECT_EQ(program.clauses[0].body[1].kind, Literal::Kind::kNegatedAtom);
  EXPECT_EQ(program.clauses[0].body[1].atom.predicate, "r");
}

TEST(Parser, UppercasePredicateBeforeParen) {
  // The paper's Listing 1 writes EV(Cert).
  auto program = parse_program("p(X) :- q(X), \\+EV(X).").take();
  EXPECT_EQ(program.clauses[0].body[1].atom.predicate, "EV");
}

TEST(Parser, ArithmeticAssignment) {
  auto program =
      parse_program("p(L) :- a(L, NA), b(L, NB), Lifetime = NA - NB, Lifetime <= 100.")
          .take();
  const Literal& assign = program.clauses[0].body[2];
  EXPECT_EQ(assign.kind, Literal::Kind::kComparison);
  EXPECT_EQ(assign.cmp, CmpOp::kEq);
  EXPECT_EQ(assign.left.lhs.name, "Lifetime");
  EXPECT_EQ(assign.right.op, ArithOp::kSub);
}

TEST(Parser, WildcardsBecomeFreshVariables) {
  auto program = parse_program("p(X) :- q(X, _), r(_, X).").take();
  const Term& w1 = program.clauses[0].body[0].atom.args[1];
  const Term& w2 = program.clauses[0].body[1].atom.args[0];
  EXPECT_TRUE(w1.is_var());
  EXPECT_TRUE(w2.is_var());
  EXPECT_NE(w1.name, w2.name);
}

TEST(Parser, NegativeIntegerConstant) {
  auto program = parse_program("offset(-42).").take();
  EXPECT_EQ(program.clauses[0].head.args[0].constant, Value(std::int64_t{-42}));
}

TEST(Parser, ZeroArityAtom) {
  auto program = parse_program("flag() :- cond().").take();
  EXPECT_EQ(program.clauses[0].head.arity(), 0u);
}

TEST(Parser, AtomConstantsVsVariables) {
  auto program = parse_program("p(abc, Xyz, \"str\", 7).").take();
  const auto& args = program.clauses[0].head.args;
  EXPECT_TRUE(args[0].is_const());
  EXPECT_EQ(args[0].constant, Value("abc"));
  EXPECT_TRUE(args[1].is_var());
  EXPECT_EQ(args[2].constant, Value("str"));
  EXPECT_EQ(args[3].constant, Value(std::int64_t{7}));
}

TEST(Parser, MultipleClauses) {
  auto program = parse_program("a(1).\na(2).\nb(X) :- a(X).").take();
  EXPECT_EQ(program.clauses.size(), 3u);
}

TEST(Parser, RoundTripThroughToString) {
  const char* source =
      "valid(Chain, \"TLS\") :- leaf(Chain, Cert), \\+EV(Cert), NB < T.";
  auto program = parse_program(source).take();
  // Reparse the rendering; ASTs must match.
  auto reparsed = parse_program(program.to_string()).take();
  EXPECT_EQ(program.clauses, reparsed.clauses);
}

TEST(Parser, QueryParsing) {
  auto query = parse_query("valid(\"chain-1\", \"TLS\")?").take();
  EXPECT_EQ(query.predicate, "valid");
  EXPECT_EQ(query.args[0].constant, Value("chain-1"));
  auto open_query = parse_query("reach(a, X)").take();
  EXPECT_TRUE(open_query.args[1].is_var());
}

TEST(Parser, RejectsMalformedClauses) {
  EXPECT_FALSE(parse_program("p(X)").ok());               // missing dot
  EXPECT_FALSE(parse_program("p(X) :- .").ok());          // empty body
  EXPECT_FALSE(parse_program("p(X :- q(X).").ok());       // bad paren
  EXPECT_FALSE(parse_program(":- q(X).").ok());           // headless
  EXPECT_FALSE(parse_program("p(X) :- q(X) r(X).").ok()); // missing comma
  EXPECT_FALSE(parse_program("p(X) :- X.").ok());         // bare variable literal
  EXPECT_FALSE(parse_program("123(X).").ok());            // numeric predicate
}

TEST(Parser, RejectsMalformedQueries) {
  EXPECT_FALSE(parse_query("p(X)? extra").ok());
  EXPECT_FALSE(parse_query("").ok());
}

TEST(Parser, ListingTwoShapeParses) {
  auto program = parse_program(R"(
june1st2016(1464753600).
exempt("abc123").
valid(Chain, _) :-
  leaf(Chain, Cert),
  notBefore(Cert, NB),
  june1st2016(T),
  NB < T.
valid(Chain, _) :-
  root(Chain, Root),
  signs(Root, Int),
  hash(Int, H),
  exempt(H).
)");
  ASSERT_TRUE(program.ok()) << program.error();
  EXPECT_EQ(program.value().clauses.size(), 4u);
}

}  // namespace
}  // namespace anchor::datalog
