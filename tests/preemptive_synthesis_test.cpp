#include "preemptive/synthesis.hpp"

#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "incidents/listings.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::preemptive {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

// Mini-PKI for pre-emptive constraint enforcement.
struct SynthPki {
  SimKeyPair root_key = SimSig::keygen("Preemptive Root");
  SimKeyPair int_key = SimSig::keygen("Preemptive Int");
  CertPtr root, intermediate;

  SynthPki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Preemptive Root", "T"))
               .issuer(DistinguishedName::make("Preemptive Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("Preemptive Int", "T"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2039, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .sign(root_key)
                       .take();
  }

  CertPtr leaf(const std::string& domain, int lifetime_days,
               const std::vector<asn1::Oid>& ekus,
               const std::vector<std::string>& ku_names = {"digitalSignature"}) {
    static int serial = 100;
    SimKeyPair key = SimSig::keygen("sleaf" + std::to_string(serial));
    x509::KeyUsage ku;
    for (const auto& name : ku_names) {
      auto bit = x509::KeyUsage::bit_by_name(name);
      if (bit) ku.set(*bit);
    }
    return CertificateBuilder()
        .serial(static_cast<std::uint64_t>(serial++))
        .subject(DistinguishedName::make(domain))
        .issuer(intermediate->subject())
        .validity(1000000, 1000000 + std::int64_t{lifetime_days} * 86400)
        .public_key(key.key_id)
        .key_usage(ku)
        .extended_key_usage(ekus)
        .dns_names({domain})
        .sign(int_key)
        .take();
  }

  core::Chain chain(const CertPtr& leaf_cert) const {
    return core::Chain{leaf_cert, intermediate, root};
  }
};

ScopeOfIssuance example_scope() {
  ScopeOfIssuance scope;
  scope.certificates_observed = 500;
  scope.tlds = {"com", "net"};
  scope.key_usages = {"digitalSignature", "keyEncipherment"};
  scope.extended_key_usages = {"id-kp-serverAuth", "id-kp-clientAuth"};
  scope.max_lifetime_seconds = 90 * 86400;
  return scope;
}

TEST(Synthesis, RenderedProgramIsValidGccSource) {
  SynthPki pki;
  auto gcc = synthesize("scope-1", *pki.root, example_scope());
  ASSERT_TRUE(gcc.ok()) << gcc.error();
  EXPECT_EQ(gcc.value().root_hash_hex(), pki.root->fingerprint_hex());
  EXPECT_NE(gcc.value().source().find("allowedTLD(\"com\")"), std::string::npos);
}

TEST(Synthesis, EmptyScopeIsRejected) {
  SynthPki pki;
  EXPECT_FALSE(synthesize("scope-1", *pki.root, ScopeOfIssuance{}).ok());
}

TEST(Synthesis, InScopeLeafAccepted) {
  SynthPki pki;
  core::Gcc gcc = synthesize("scope", *pki.root, example_scope()).take();
  core::GccExecutor executor;
  CertPtr ok_leaf = pki.leaf("shop.example.com", 60,
                             {x509::oids::kp_server_auth()});
  EXPECT_TRUE(executor.evaluate_one(pki.chain(ok_leaf), "TLS", gcc));
}

TEST(Synthesis, OutOfScopeTldRejected) {
  SynthPki pki;
  core::Gcc gcc = synthesize("scope", *pki.root, example_scope()).take();
  core::GccExecutor executor;
  CertPtr bad = pki.leaf("ministry.example.gov", 60,
                         {x509::oids::kp_server_auth()});
  EXPECT_FALSE(executor.evaluate_one(pki.chain(bad), "TLS", gcc));
}

TEST(Synthesis, NovelEkuRejected) {
  SynthPki pki;
  core::Gcc gcc = synthesize("scope", *pki.root, example_scope()).take();
  core::GccExecutor executor;
  CertPtr bad = pki.leaf("shop.example.com", 60,
                         {x509::oids::kp_code_signing()});
  EXPECT_FALSE(executor.evaluate_one(pki.chain(bad), "TLS", gcc));
}

TEST(Synthesis, NovelKeyUsageRejected) {
  SynthPki pki;
  core::Gcc gcc = synthesize("scope", *pki.root, example_scope()).take();
  core::GccExecutor executor;
  CertPtr bad = pki.leaf("shop.example.com", 60, {x509::oids::kp_server_auth()},
                         {"digitalSignature", "cRLSign"});
  EXPECT_FALSE(executor.evaluate_one(pki.chain(bad), "TLS", gcc));
}

TEST(Synthesis, ExcessiveLifetimeRejected) {
  SynthPki pki;
  core::Gcc gcc = synthesize("scope", *pki.root, example_scope()).take();
  core::GccExecutor executor;
  // Observed max 90d, slack 1.10 -> 99d limit. 120d must fail.
  CertPtr bad = pki.leaf("shop.example.com", 120,
                         {x509::oids::kp_server_auth()});
  EXPECT_FALSE(executor.evaluate_one(pki.chain(bad), "TLS", gcc));
  // 95d sits inside the slack.
  CertPtr ok = pki.leaf("shop2.example.com", 95,
                        {x509::oids::kp_server_auth()});
  EXPECT_TRUE(executor.evaluate_one(pki.chain(ok), "TLS", gcc));
}

TEST(Synthesis, OptionsDisableDimensions) {
  SynthPki pki;
  SynthesisOptions tld_only;
  tld_only.constrain_key_usage = false;
  tld_only.constrain_eku = false;
  tld_only.constrain_lifetime = false;
  core::Gcc gcc =
      synthesize("tld-only", *pki.root, example_scope(), tld_only).take();
  core::GccExecutor executor;
  // Long lifetime + exotic EKU no longer matter; TLD still does.
  CertPtr odd = pki.leaf("shop.example.com", 500,
                         {x509::oids::kp_code_signing()});
  EXPECT_TRUE(executor.evaluate_one(pki.chain(odd), "TLS", gcc));
  CertPtr bad_tld = pki.leaf("shop.example.xyz", 30,
                             {x509::oids::kp_server_auth()});
  EXPECT_FALSE(executor.evaluate_one(pki.chain(bad_tld), "TLS", gcc));
}

TEST(Cage, FiltersOnTldOnly) {
  CageFilter filter(example_scope());
  SynthPki pki;
  EXPECT_TRUE(filter.allows(*pki.leaf("a.example.com", 60,
                                      {x509::oids::kp_server_auth()})));
  EXPECT_TRUE(filter.allows(*pki.leaf("b.example.net", 60,
                                      {x509::oids::kp_server_auth()})));
  EXPECT_FALSE(filter.allows(*pki.leaf("c.example.org", 60,
                                       {x509::oids::kp_server_auth()})));
  // CAge is blind to non-name dimensions: long lifetime still passes.
  EXPECT_TRUE(filter.allows(*pki.leaf("d.example.com", 3650,
                                      {x509::oids::kp_code_signing()})));
}

TEST(Listing3, CorrectedListingEnforcesAllThreeConjuncts) {
  SynthPki pki;
  core::Gcc gcc = core::Gcc::for_certificate(
                      "listing3", *pki.root, incidents::listing3_preemptive())
                      .take();
  core::GccExecutor executor;
  // One month = 2630000s ~ 30.4 days; a 30-day serverAuth leaf passes.
  CertPtr good = pki.leaf("ok.example.com", 30, {x509::oids::kp_server_auth()});
  EXPECT_TRUE(executor.evaluate_one(pki.chain(good), "TLS", gcc));
  // 60-day lifetime fails.
  CertPtr long_lived = pki.leaf("long.example.com", 60,
                                {x509::oids::kp_server_auth()});
  EXPECT_FALSE(executor.evaluate_one(pki.chain(long_lived), "TLS", gcc));
  // Missing serverAuth fails.
  CertPtr wrong_eku = pki.leaf("eku.example.com", 30,
                               {x509::oids::kp_email_protection()});
  EXPECT_FALSE(executor.evaluate_one(pki.chain(wrong_eku), "TLS", gcc));
  // Missing digitalSignature fails.
  CertPtr wrong_ku = pki.leaf("ku.example.com", 30,
                              {x509::oids::kp_server_auth()}, {"keyAgreement"});
  EXPECT_FALSE(executor.evaluate_one(pki.chain(wrong_ku), "TLS", gcc));
  // Listing 3 is TLS-only: nothing validates for S/MIME.
  EXPECT_FALSE(executor.evaluate_one(pki.chain(good), "S/MIME", gcc));
}

TEST(Synthesis, SynthesizedFromRealScopeAcceptsOwnIssuance) {
  // Round trip: analyze a corpus CA, synthesize its constraint, and verify
  // every certificate it actually issued still validates (zero false
  // rejections on in-scope traffic — the E11 property).
  corpus::CorpusConfig config;
  config.num_roots = 10;
  config.num_intermediates = 25;
  config.roots_with_path_len = 1;
  config.intermediates_with_path_len = 20;
  config.intermediates_with_name_constraints = 2;
  config.roots_with_constrained_chain = 1;
  config.leaves_per_intermediate_mean = 8.0;
  corpus::Corpus corpus = corpus::Corpus::generate(config);
  auto scopes = analyze_roots(corpus);
  core::GccExecutor executor;

  std::size_t checked = 0;
  for (std::size_t r = 0; r < corpus.roots().size(); ++r) {
    if (scopes[r].empty()) continue;
    core::Gcc gcc = synthesize("auto", *corpus.roots()[r].cert, scopes[r]).take();
    for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
      const auto& record = corpus.leaves()[i];
      const auto& intermediate =
          corpus.intermediates()[static_cast<std::size_t>(
              record.issuer_intermediate)];
      if (static_cast<std::size_t>(intermediate.parent_root) != r) continue;
      core::Chain chain = corpus.chain_for_leaf(i);
      const char* usage = record.smime ? "S/MIME" : "TLS";
      EXPECT_TRUE(executor.evaluate_one(chain, usage, gcc))
          << "false rejection for " << record.domain;
      if (++checked > 60) return;
    }
  }
  EXPECT_GT(checked, 10u);
}

}  // namespace
}  // namespace anchor::preemptive
