#include "revocation/revocation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chain/verifier.hpp"
#include "core/executor.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::revocation {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

struct RevPki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("Rev Root");
  SimKeyPair int_key = SimSig::keygen("Rev Int");
  SimKeyPair bad_int_key = SimSig::keygen("Rev Bad Int");
  CertPtr root, intermediate, bad_intermediate;
  rootstore::RootStore store;
  static constexpr std::int64_t kNow = 1700000000;

  RevPki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Rev Root", "T"))
               .issuer(DistinguishedName::make("Rev Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    auto make_int = [&](const std::string& name, const SimKeyPair& key) {
      return CertificateBuilder()
          .serial(name == "Rev Int" ? 2 : 3)
          .subject(DistinguishedName::make(name, "T"))
          .issuer(root->subject())
          .validity(0, unix_date(2039, 1, 1))
          .public_key(key.key_id)
          .ca(0)
          .sign(root_key)
          .take();
    };
    intermediate = make_int("Rev Int", int_key);
    bad_intermediate = make_int("Rev Bad Int", bad_int_key);
    sigs.register_key(root_key);
    sigs.register_key(int_key);
    sigs.register_key(bad_int_key);
    (void)store.add_trusted(root);
  }

  CertPtr leaf(const std::string& domain, const SimKeyPair& issuer_key,
               const CertPtr& issuer, std::uint64_t serial = 100) {
    SimKeyPair key = SimSig::keygen("rleaf" + domain);
    return CertificateBuilder()
        .serial(serial)
        .subject(DistinguishedName::make(domain))
        .issuer(issuer->subject())
        .validity(kNow - 86400, kNow + 90 * 86400)
        .public_key(key.key_id)
        .dns_names({domain})
        .extended_key_usage({x509::oids::kp_server_auth()})
        .sign(issuer_key)
        .take();
  }

  chain::VerifyOptions tls(const std::string& host) const {
    chain::VerifyOptions options;
    options.time = kNow;
    options.hostname = host;
    return options;
  }
};

TEST(CrlSetTest, BlocksByIssuerAndSerial) {
  RevPki pki;
  CertPtr victim = pki.leaf("a.example.com", pki.int_key, pki.intermediate, 77);
  CertPtr sibling = pki.leaf("b.example.com", pki.int_key, pki.intermediate, 78);
  CrlSet crlset;
  crlset.block_by_issuer_serial(*pki.intermediate, *victim);
  EXPECT_TRUE(crlset.is_revoked(*victim, BytesView(pki.intermediate->public_key())));
  EXPECT_FALSE(crlset.is_revoked(*sibling, BytesView(pki.intermediate->public_key())));
  // Same serial under another issuer is NOT revoked.
  EXPECT_FALSE(crlset.is_revoked(*victim, BytesView(pki.bad_intermediate->public_key())));
}

TEST(CrlSetTest, BlocksBySpki) {
  RevPki pki;
  CertPtr victim = pki.leaf("a.example.com", pki.int_key, pki.intermediate);
  CrlSet crlset;
  crlset.block_spki(*victim);
  EXPECT_TRUE(crlset.is_revoked(*victim, BytesView(pki.intermediate->public_key())));
  EXPECT_TRUE(crlset.is_revoked(*victim, BytesView(pki.bad_intermediate->public_key())));
}

TEST(CrlSetTest, SerializeRoundTrip) {
  RevPki pki;
  CertPtr victim = pki.leaf("a.example.com", pki.int_key, pki.intermediate, 55);
  CrlSet crlset;
  crlset.block_by_issuer_serial(*pki.intermediate, *victim);
  crlset.block_spki(*pki.bad_intermediate);
  auto parsed = CrlSet::deserialize(crlset.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_TRUE(parsed.value().is_revoked(*victim,
                                        BytesView(pki.intermediate->public_key())));
  EXPECT_EQ(parsed.value().serialize(), crlset.serialize());
}

TEST(CrlSetTest, DeserializeRejectsMalformed) {
  EXPECT_FALSE(CrlSet::deserialize("nope").ok());
  EXPECT_FALSE(CrlSet::deserialize("anchor-crlset/v1\nis missingpipe\n").ok());
  EXPECT_FALSE(CrlSet::deserialize("anchor-crlset/v1\nbogus x\n").ok());
  EXPECT_TRUE(CrlSet::deserialize("anchor-crlset/v1\n").ok());
}

TEST(OneCrlTest, BlocksByIssuerNameAndSerial) {
  RevPki pki;
  OneCrl onecrl;
  onecrl.block(*pki.bad_intermediate);
  EXPECT_TRUE(onecrl.is_revoked(*pki.bad_intermediate));
  EXPECT_FALSE(onecrl.is_revoked(*pki.intermediate));
}

TEST(OneCrlTest, SerializeRoundTrip) {
  RevPki pki;
  OneCrl onecrl;
  onecrl.block(*pki.bad_intermediate);
  auto parsed = OneCrl::deserialize(onecrl.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().is_revoked(*pki.bad_intermediate));
  EXPECT_FALSE(OneCrl::deserialize("garbage").ok());
}

TEST(VerifierRevocation, CrlSetBlocksLeafDuringValidation) {
  RevPki pki;
  CertPtr victim = pki.leaf("mitm.example.com", pki.int_key, pki.intermediate, 91);
  chain::CertificatePool pool;
  pool.add(pki.intermediate);

  auto crlset = std::make_shared<CrlSet>();
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  verifier.add_revocation_source(crlset);
  EXPECT_TRUE(verifier.verify(victim, pool, pki.tls("mitm.example.com")).ok);

  crlset->block_by_issuer_serial(*pki.intermediate, *victim);
  chain::VerifyResult result =
      verifier.verify(victim, pool, pki.tls("mitm.example.com"));
  EXPECT_FALSE(result.ok);
}

TEST(VerifierRevocation, OneCrlBlocksIntermediateMidChain) {
  // The MCS/CNNIC response: revoke the intermediate, keep the root.
  RevPki pki;
  CertPtr good = pki.leaf("good.example.com", pki.int_key, pki.intermediate);
  CertPtr mitm = pki.leaf("google.com", pki.bad_int_key, pki.bad_intermediate);
  chain::CertificatePool pool;
  pool.add(pki.intermediate);
  pool.add(pki.bad_intermediate);

  auto onecrl = std::make_shared<OneCrl>();
  onecrl->block(*pki.bad_intermediate);
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  verifier.add_revocation_source(onecrl);
  EXPECT_TRUE(verifier.verify(good, pool, pki.tls("good.example.com")).ok);
  EXPECT_FALSE(verifier.verify(mitm, pool, pki.tls("google.com")).ok);
}

TEST(Subsumption, RevocationGccEquivalentToOneCrl) {
  // The paper's claim: GCCs subsume revocation. Build both mechanisms for
  // the same revoked intermediate; every chain must get the same verdict.
  RevPki pki;
  CertPtr good = pki.leaf("good.example.com", pki.int_key, pki.intermediate);
  CertPtr mitm = pki.leaf("google.com", pki.bad_int_key, pki.bad_intermediate);
  chain::CertificatePool pool;
  pool.add(pki.intermediate);
  pool.add(pki.bad_intermediate);

  // Mechanism A: OneCRL.
  auto onecrl = std::make_shared<OneCrl>();
  onecrl->block(*pki.bad_intermediate);
  chain::ChainVerifier onecrl_verifier(pki.store, pki.sigs);
  onecrl_verifier.add_revocation_source(onecrl);

  // Mechanism B: the compiled GCC.
  rootstore::RootStore gcc_store;
  (void)gcc_store.add_trusted(pki.root);
  auto gcc = revocation_gcc("revocation", *pki.root,
                            {pki.bad_intermediate->fingerprint_hex()});
  ASSERT_TRUE(gcc.ok()) << gcc.error();
  gcc_store.attach_gcc(std::move(gcc).take());
  chain::ChainVerifier gcc_verifier(gcc_store, pki.sigs);

  for (const auto& [leaf, host] :
       std::vector<std::pair<CertPtr, std::string>>{
           {good, "good.example.com"}, {mitm, "google.com"}}) {
    EXPECT_EQ(onecrl_verifier.verify(leaf, pool, pki.tls(host)).ok,
              gcc_verifier.verify(leaf, pool, pki.tls(host)).ok)
        << host;
  }
  EXPECT_TRUE(gcc_verifier.verify(good, pool, pki.tls("good.example.com")).ok);
  EXPECT_FALSE(gcc_verifier.verify(mitm, pool, pki.tls("google.com")).ok);
}

TEST(Subsumption, EmptyRevocationGccAllowsEverything) {
  RevPki pki;
  auto gcc = revocation_gcc("empty", *pki.root, {});
  ASSERT_TRUE(gcc.ok()) << gcc.error();
  core::GccExecutor executor;
  CertPtr leaf = pki.leaf("any.example.com", pki.int_key, pki.intermediate);
  core::Chain chain{leaf, pki.intermediate, pki.root};
  EXPECT_TRUE(executor.evaluate_one(chain, "TLS", gcc.value()));
}

}  // namespace
}  // namespace anchor::revocation
