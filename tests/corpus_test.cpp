#include "corpus/corpus.hpp"

#include <gtest/gtest.h>

#include "chain/verifier.hpp"
#include "corpus/census.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace anchor::corpus {
namespace {

// One shared corpus: generation is the expensive part, assertions are not.
const Corpus& shared_corpus() {
  static const Corpus corpus = [] {
    CorpusConfig config;
    config.leaves_per_intermediate_mean = 4.0;  // keep tests quick
    return Corpus::generate(config);
  }();
  return corpus;
}

TEST(Corpus, PopulationCountsMatchConfig) {
  const Corpus& corpus = shared_corpus();
  EXPECT_EQ(corpus.roots().size(), 140u);
  EXPECT_EQ(corpus.intermediates().size(), 776u);
  EXPECT_GT(corpus.leaves().size(), 1000u);
}

TEST(Corpus, CensusReproducesPaperNumbers) {
  // The §5.1 measurement, recomputed from the generated certificates.
  CensusReport report = run_census(shared_corpus());
  EXPECT_EQ(report.roots_total, 140u);
  EXPECT_EQ(report.roots_with_name_constraints, 0u);
  EXPECT_EQ(report.roots_with_path_len, 5u);
  EXPECT_EQ(report.intermediates_total, 776u);
  EXPECT_EQ(report.intermediates_with_path_len, 701u);
  EXPECT_EQ(report.intermediates_with_name_constraints, 31u);
  EXPECT_EQ(report.roots_with_constrained_chain, 6u);
}

TEST(Corpus, EveryIntermediateHasAValidParent) {
  const Corpus& corpus = shared_corpus();
  for (const CaProfile& intermediate : corpus.intermediates()) {
    ASSERT_GE(intermediate.parent_root, 0);
    ASSERT_LT(intermediate.parent_root,
              static_cast<int>(corpus.roots().size()));
    const CaProfile& parent =
        corpus.roots()[static_cast<std::size_t>(intermediate.parent_root)];
    EXPECT_EQ(intermediate.cert->issuer(), parent.cert->subject());
  }
}

TEST(Corpus, LeafChainsVerifyEndToEnd) {
  const Corpus& corpus = shared_corpus();
  rootstore::RootStore store = corpus.make_root_store();
  chain::CertificatePool pool = corpus.intermediate_pool();
  chain::ChainVerifier verifier(store, corpus.signatures());

  std::size_t checked = 0;
  for (std::size_t i = 0; i < corpus.leaves().size() && checked < 40; i += 97) {
    const LeafRecord& record = corpus.leaves()[i];
    if (record.smime) continue;
    chain::VerifyOptions options;
    options.time = (record.cert->not_before() + record.cert->not_after()) / 2;
    options.hostname = record.domain;
    chain::VerifyResult result =
        verifier.verify(record.cert, pool, options);
    EXPECT_TRUE(result.ok) << record.domain << ": " << result.error;
    ++checked;
  }
  EXPECT_GT(checked, 20u);
}

TEST(Corpus, ChainForLeafIsConsistent) {
  const Corpus& corpus = shared_corpus();
  core::Chain chain = corpus.chain_for_leaf(0);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->issuer(), chain[1]->subject());
  EXPECT_EQ(chain[1]->issuer(), chain[2]->subject());
  EXPECT_TRUE(chain[2]->is_self_issued());
}

TEST(Corpus, GenerationIsDeterministic) {
  CorpusConfig config;
  config.num_roots = 10;
  config.num_intermediates = 20;
  config.roots_with_path_len = 2;
  config.intermediates_with_path_len = 15;
  config.intermediates_with_name_constraints = 3;
  config.roots_with_constrained_chain = 2;
  Corpus a = Corpus::generate(config);
  Corpus b = Corpus::generate(config);
  ASSERT_EQ(a.leaves().size(), b.leaves().size());
  for (std::size_t i = 0; i < a.leaves().size(); i += 13) {
    EXPECT_EQ(a.leaves()[i].cert->fingerprint(),
              b.leaves()[i].cert->fingerprint());
  }
  // A different seed changes issuance (leaf domains come from the RNG);
  // root certificates themselves are name-derived and may coincide.
  config.seed = 99;
  Corpus c = Corpus::generate(config);
  bool all_same = a.leaves().size() == c.leaves().size();
  if (all_same) {
    for (std::size_t i = 0; i < a.leaves().size(); ++i) {
      if (a.leaves()[i].domain != c.leaves()[i].domain) {
        all_same = false;
        break;
      }
    }
  }
  EXPECT_FALSE(all_same);
}

TEST(Corpus, LeafDomainsStayWithinIssuerScope) {
  const Corpus& corpus = shared_corpus();
  for (std::size_t i = 0; i < corpus.leaves().size(); i += 31) {
    const LeafRecord& record = corpus.leaves()[i];
    const CaProfile& issuer = corpus.intermediates()[static_cast<std::size_t>(
        record.issuer_intermediate)];
    std::string tld = tld_of(record.domain);
    EXPECT_NE(std::find(issuer.tld_scope.begin(), issuer.tld_scope.end(), tld),
              issuer.tld_scope.end())
        << record.domain << " outside scope of its issuer";
  }
}

TEST(Corpus, SmimeAndEvFractionsAreRoughlyCalibrated) {
  const Corpus& corpus = shared_corpus();
  std::size_t smime = 0;
  std::size_t ev = 0;
  for (const LeafRecord& record : corpus.leaves()) {
    if (record.smime) ++smime;
    if (record.cert->is_ev()) ++ev;
  }
  double n = static_cast<double>(corpus.leaves().size());
  EXPECT_NEAR(smime / n, corpus.config().smime_fraction, 0.04);
  EXPECT_NEAR(ev / n, corpus.config().ev_fraction, 0.04);
}

TEST(Corpus, MisissuedLeafVerifiesButIsFraudulent) {
  Corpus corpus = shared_corpus();  // copy: misissue mutates serial state
  rootstore::RootStore store = corpus.make_root_store();
  chain::CertificatePool pool = corpus.intermediate_pool();
  chain::ChainVerifier verifier(store, corpus.signatures());

  std::int64_t now = corpus.config().validation_time();
  x509::CertPtr fraud = corpus.misissue(0, "login.bank.example", now - 86400);
  chain::VerifyOptions options;
  options.time = now;
  options.hostname = "login.bank.example";
  // Without constraints the fraudulent chain validates — the paper's threat.
  chain::VerifyResult result = verifier.verify(fraud, pool, options);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Corpus, TldUniverseIsStableAndSized) {
  auto u60 = Corpus::tld_universe(60);
  EXPECT_EQ(u60.size(), 60u);
  EXPECT_EQ(u60[0], "com");
  auto u80 = Corpus::tld_universe(80);
  EXPECT_EQ(u80.size(), 80u);
  EXPECT_EQ(u80[70], "tld70");
}

TEST(Corpus, RootStoreTrustsAllRoots) {
  const Corpus& corpus = shared_corpus();
  rootstore::RootStore store = corpus.make_root_store();
  EXPECT_EQ(store.trusted_count(), corpus.roots().size());
  for (const CaProfile& root : corpus.roots()) {
    EXPECT_EQ(store.state_of(root.cert->fingerprint_hex()),
              rootstore::TrustState::kTrusted);
  }
}

}  // namespace
}  // namespace anchor::corpus
