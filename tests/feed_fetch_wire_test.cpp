// The feed-fetch verb end to end: an RsfClient polling a remote publisher
// THROUGH anchord — WireFeedTransport carries FeedFetchQuery/FeedFetch over
// the framed wire protocol, and the client's Merkle verification runs
// unchanged on the decoded response. The daemon in the middle holds no
// trust: the poller derives the publisher's signing key from the feed name
// out of band and verifies every tree head, proof, and snapshot itself.
#include "anchord/feed_transport.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "anchord/client.hpp"
#include "anchord/server.hpp"
#include "ctlog/merkle.hpp"
#include "rsf/client.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::anchord {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

constexpr std::int64_t kNow = 1700000000;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

rootstore::RootStore store_with(int count) {
  rootstore::RootStore store;
  for (int i = 0; i < count; ++i) {
    (void)store.add_trusted(make_root("Feed Root " + std::to_string(i)));
  }
  return store;
}

// An anchord server whose feed-fetch verb serves `feed`, over an in-memory
// conduit with the serve loop on its own thread.
struct FeedHarness {
  SimSig feed_sigs;
  rsf::Feed feed{"nss", feed_sigs};
  rootstore::RootStore empty_store;
  SimSig sigs;
  metrics::Registry registry;
  chain::VerifyService service{empty_store, sigs, {}, registry};
  VerbDispatcher::Backends backends;
  std::unique_ptr<AnchordServer> server;
  ConduitPair conduits = make_memory_conduit();
  std::thread serve_thread;

  explicit FeedHarness(bool attach_feed = true) {
    backends.service = &service;
    backends.store = &empty_store;
    backends.registry = &registry;
    if (attach_feed) backends.feed_source = &feed;
    server = std::make_unique<AnchordServer>(backends, AnchordConfig{},
                                             registry);
    serve_thread = std::thread([this] { server->serve(*conduits.second); });
  }

  ~FeedHarness() {
    conduits.first->close();
    serve_thread.join();
  }

  Conduit& client_end() { return *conduits.first; }
};

TEST(FeedFetchWire, RsfClientAdoptsOverTheWire) {
  FeedHarness h;
  h.feed.publish(store_with(3), kNow, "r1");
  h.feed.publish(store_with(4), kNow + 10, "r2");

  AnchordClient client(h.client_end());
  WireFeedTransport wire(client, "nss");
  EXPECT_TRUE(wire.supports_feed_fetch());

  rsf::RsfClient poller(wire, 3600);
  EXPECT_EQ(poller.poll_now(kNow + 20), 2u);
  EXPECT_EQ(poller.last_applied_sequence(), 2u);
  EXPECT_EQ(poller.store().trusted_count(), 4u);
  EXPECT_EQ(poller.pinned_tree_root(), h.feed.tree_head().root_hash);
  EXPECT_EQ(poller.health(), rsf::ClientHealth::kHealthy);

  // No-change poll across the wire still settles on the tree head alone.
  EXPECT_EQ(poller.poll_now(kNow + 3620), 0u);
  EXPECT_EQ(poller.stats().verified_no_change, 1u);

  // A new publication reaches the poller on the next poll, proof-verified.
  h.feed.publish(store_with(5), kNow + 4000, "r3");
  EXPECT_EQ(poller.poll_now(kNow + 7220), 1u);
  EXPECT_EQ(poller.last_applied_sequence(), 3u);
  EXPECT_EQ(poller.stats().proof_failures, 0u);
}

TEST(FeedFetchWire, DeltaTransportShipsInlineDeltasOverTheWire) {
  FeedHarness h;
  h.feed.publish(store_with(3), kNow, "r1");
  h.feed.publish(store_with(4), kNow + 10, "r2");
  h.feed.publish(store_with(5), kNow + 20, "r3");

  AnchordClient client(h.client_end());
  WireFeedTransport wire(client, "nss");
  rsf::RsfClient poller(wire, 3600, rsf::MergePolicy::kPrimaryWins,
                        rsf::Transport::kDelta);
  EXPECT_EQ(poller.poll_now(kNow + 30), 3u);
  EXPECT_EQ(poller.last_applied_sequence(), 3u);
  EXPECT_EQ(poller.store().trusted_count(), 5u);
  // The deltas rode inside the feed-fetch response; none were fetched
  // through the (unsupported) per-sequence legacy call.
  EXPECT_EQ(poller.stats().deltas_applied, 3u);
  EXPECT_EQ(poller.stats().delta_fallbacks, 0u);
}

TEST(FeedFetchWire, HeadProbeAndLegacyCallsOnTheWireTransport) {
  FeedHarness h;
  h.feed.publish(store_with(2), kNow, "r1");

  AnchordClient client(h.client_end());
  WireFeedTransport wire(client, "nss");
  auto head = wire.head_sequence();
  ASSERT_TRUE(head.ok()) << head.error();
  EXPECT_EQ(head.value(), 1u);
  // The key id is derived from the publisher name out of band — it must
  // match what the feed itself advertises.
  EXPECT_EQ(wire.key_id(), h.feed.key_id());

  // The wire transport serves ONLY the authenticated path; the legacy
  // calls err loudly instead of silently bypassing proof verification.
  EXPECT_FALSE(wire.fetch_since(0).ok());
  EXPECT_FALSE(wire.fetch_delta(1).ok());
}

TEST(FeedFetchWire, NoFeedAttachedIsUnavailableNotACrash) {
  FeedHarness h(/*attach_feed=*/false);
  AnchordClient client(h.client_end());
  WireFeedTransport wire(client, "nss");

  auto fetched = wire.feed_fetch(rsf::FeedFetchQuery{});
  ASSERT_FALSE(fetched.ok());
  EXPECT_NE(fetched.error().find("no feed attached"), std::string::npos);

  // A polling client classifies it as unreachable and stays on its last
  // good (empty) store.
  rsf::RsfClient poller(wire, 3600);
  EXPECT_EQ(poller.poll_now(kNow), 0u);
  EXPECT_EQ(poller.stats().transport_error(
                rsf::TransportErrorKind::kUnreachable),
            1u);
  EXPECT_EQ(poller.health(), rsf::ClientHealth::kDegraded);
}

TEST(FeedFetchWire, PaginatedWalkVerifiesEveryHop) {
  FeedHarness h;
  for (int i = 1; i <= 5; ++i) {
    h.feed.publish(store_with(i), kNow + i, "r" + std::to_string(i));
  }

  AnchordClient client(h.client_end());
  WireFeedTransport wire(client, "nss");

  // Walk the history two snapshots at a time, carrying the (size, root)
  // pin across hops exactly as a poller would.
  std::uint64_t pinned = 0;
  ctlog::Hash pinned_root = ctlog::empty_tree_hash();
  int hops = 0;
  while (pinned < 5 && hops < 5) {
    rsf::FeedFetchQuery query;
    query.from_size = pinned;
    query.max_snapshots = 2;
    auto page = wire.feed_fetch(query);
    ASSERT_TRUE(page.ok()) << page.error();
    const rsf::FeedFetch& ff = page.value();
    EXPECT_EQ(ff.sth.tree_size, std::min<std::uint64_t>(pinned + 2, 5));
    ASSERT_FALSE(ff.snapshots.empty());
    // Tree-head signature, consistency from the pin, head-leaf inclusion.
    EXPECT_TRUE(h.feed_sigs.verify(BytesView(wire.key_id()),
                                   BytesView(ff.sth.transcript()),
                                   BytesView(ff.sth.signature)));
    if (pinned == 0) {
      EXPECT_TRUE(ff.consistency.empty());
    } else {
      EXPECT_TRUE(ctlog::verify_consistency(pinned, ff.sth.tree_size,
                                            pinned_root, ff.sth.root_hash,
                                            ff.consistency));
    }
    EXPECT_TRUE(ctlog::verify_inclusion(
        ctlog::leaf_hash(BytesView(ff.snapshots.back().transcript())),
        ff.sth.tree_size - 1, ff.sth.tree_size, ff.inclusion,
        ff.sth.root_hash));
    pinned = ff.sth.tree_size;
    pinned_root = ff.sth.root_hash;
    ++hops;
  }
  EXPECT_EQ(pinned, 5u);
  EXPECT_EQ(hops, 3);  // 2 + 2 + 1
}

// Publisher and poller race on one daemon: Feed is internally synchronized
// and every adoption is proof-verified, so the poller must converge on the
// final head with zero proof failures. (This is the feed-label TSan test.)
TEST(FeedFetchWire, ConcurrentPublishAndPollConverges) {
  constexpr int kPublishes = 20;
  FeedHarness h;
  h.feed.publish(store_with(2), kNow, "seed");

  std::thread publisher([&h] {
    for (int i = 1; i <= kPublishes; ++i) {
      h.feed.publish(store_with(1 + (i % 3)), kNow + i, "pub");
    }
  });

  AnchordClient client(h.client_end());
  WireFeedTransport wire(client, "nss");
  rsf::RsfClient poller(wire, 1);
  std::int64_t t = kNow + 100;
  for (int i = 0; i < 200 && poller.last_applied_sequence() < kPublishes + 1;
       ++i) {
    poller.poll_now(t);
    t += 2;
  }
  publisher.join();
  // The publisher is done; at most one more poll reaches the final head.
  poller.poll_now(t);
  EXPECT_EQ(poller.last_applied_sequence(),
            static_cast<std::uint64_t>(kPublishes) + 1);
  EXPECT_EQ(poller.pinned_tree_root(), h.feed.tree_head().root_hash);
  EXPECT_EQ(poller.stats().proof_failures, 0u);
  EXPECT_EQ(poller.stats().verify_failures, 0u);
}

}  // namespace
}  // namespace anchor::anchord
