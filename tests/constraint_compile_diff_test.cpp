// Differential oracle suite for the Chrome Root Store constraint compiler
// (rootstore/constraint_compile.*): per constraint kind, a hand-coded C++
// oracle implementing the documented semantics is compared verdict-for-
// verdict against the compiled GCC, over >= 1000 seeded randomized chains
// per kind, including the boundary cases (the exact sct_not_after_sec
// instant, version-range endpoints, empty permit lists, absent context).
// The oracle deliberately re-implements the lowering table from the header
// comment — not the generated Datalog — so a bug in the lowering and a bug
// in the oracle would have to agree to slip through.
#include "rootstore/constraint_compile.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/facts.hpp"
#include "rootstore/chromeproto.hpp"
#include "util/rng.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::rootstore {
namespace {

using chromeproto::ConstraintBlock;
using chromeproto::TrustAnchor;
using chromeproto::Version;
using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

// ---------------------------------------------------------------------------
// Randomized PKI material.

constexpr const char* kSanPool[] = {
    "example.com",         "foo.example.com",  "bar.example.com",
    "api.foo.example.com", "example.org",      "www.example.org",
    "test.net",            "deep.sub.test.net"};

constexpr const char* kPermitPool[] = {
    "example.com", "foo.example.com", "example.org",
    "test.net",    "sub.test.net",    "nomatch.invalid"};

constexpr const char* kEvOidPool[] = {
    "2.23.140.1.1",             // the corpus EV marker itself
    "1.3.6.1.4.1.6334.1.100.1", // CA-specific EV arcs
    "2.16.840.1.114412.2.1"};

std::string random_hash(Rng& rng) {
  static const char* hex = "0123456789abcdef";
  std::string out(64, '0');
  for (char& c : out) c = hex[rng.uniform(16)];
  return out;
}

Version random_version(Rng& rng) {
  Version v;
  v.written = 1 + static_cast<int>(rng.uniform(4));
  for (int i = 0; i < v.written; ++i) {
    // Mostly small components, occasionally the 15-bit endpoint.
    v.parts[static_cast<std::size_t>(i)] =
        rng.chance(0.1) ? 32767 : static_cast<std::uint16_t>(rng.uniform(200));
  }
  return v;
}

CertPtr make_root(Rng& rng) {
  SimKeyPair key = SimSig::keygen("diff-root-" + std::to_string(rng.next_u64()));
  const std::int64_t nb = rng.uniform_range(0, 2'000'000'000);
  const std::int64_t na = nb + rng.uniform_range(1, 1'000'000'000);
  CertificateBuilder builder;
  builder.serial(1)
      .subject(DistinguishedName::make("Diff Root", "Diff Org"))
      .issuer(DistinguishedName::make("Diff Root", "Diff Org"))
      .validity(nb, na)
      .public_key(key.key_id)
      .ca(rng.chance(0.5) ? std::optional<int>(static_cast<int>(rng.uniform(3)))
                          : std::nullopt);
  x509::NameConstraints nc;
  const std::size_t permits = rng.uniform(3);
  for (std::size_t i = 0; i < permits; ++i) {
    nc.permitted_dns.push_back(kPermitPool[rng.uniform(std::size(kPermitPool))]);
  }
  const std::size_t excludes = rng.uniform(2);
  for (std::size_t i = 0; i < excludes; ++i) {
    nc.excluded_dns.push_back(kPermitPool[rng.uniform(std::size(kPermitPool))]);
  }
  if (!nc.empty()) builder.name_constraints(nc);
  return builder.sign(key).take();
}

CertPtr make_intermediate(Rng& rng, const DistinguishedName& issuer, int index) {
  SimKeyPair key =
      SimSig::keygen("diff-int-" + std::to_string(rng.next_u64()));
  return CertificateBuilder()
      .serial(static_cast<std::uint64_t>(10 + index))
      .subject(DistinguishedName::make("Diff Int " + std::to_string(index)))
      .issuer(issuer)
      .validity(0, 4'000'000'000)
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

CertPtr make_leaf(Rng& rng, const DistinguishedName& issuer) {
  SimKeyPair key = SimSig::keygen("diff-leaf-" + std::to_string(rng.next_u64()));
  CertificateBuilder builder;
  builder.serial(100)
      .subject(DistinguishedName::make("leaf.example.com"))
      .issuer(issuer)
      .validity(0, 4'000'000'000)
      .public_key(key.key_id);
  std::vector<std::string> sans;
  const std::size_t count = rng.uniform(4);  // 0..3; zero SANs is a boundary
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = kSanPool[rng.uniform(std::size(kSanPool))];
    if (rng.chance(0.15)) name = "*." + name;
    sans.push_back(std::move(name));
  }
  if (!sans.empty()) builder.dns_names(sans);
  if (rng.chance(0.3)) {
    builder.policies(
        {asn1::Oid::from_string(kEvOidPool[rng.uniform(std::size(kEvOidPool))])});
  }
  if (rng.chance(0.5)) builder.ev();
  return builder.sign(key).take();
}

// Chain of length 2..4, leaf-first. Signatures are irrelevant here — GCC
// evaluation sees only the encoded facts.
core::Chain make_chain(Rng& rng) {
  CertPtr root = make_root(rng);
  const std::size_t length = 2 + rng.uniform(3);
  core::Chain chain;
  chain.push_back(make_leaf(rng, root->subject()));
  for (std::size_t i = 0; i + 2 < length; ++i) {
    chain.push_back(make_intermediate(rng, root->subject(), static_cast<int>(i)));
  }
  chain.push_back(std::move(root));
  return chain;
}

// ---------------------------------------------------------------------------
// The oracle: the lowering table from constraint_compile.hpp, in plain C++.

std::vector<std::string> suffixes_of(std::string_view name) {
  std::string_view rest = name;
  if (rest.size() >= 2 && rest.substr(0, 2) == "*.") rest = rest.substr(2);
  std::vector<std::string> out;
  out.emplace_back(rest);
  while (true) {
    const std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos) break;
    rest = rest.substr(dot + 1);
    out.emplace_back(rest);
  }
  return out;
}

bool any_suffix_in(std::string_view name, const std::vector<std::string>& set) {
  for (const std::string& suffix : suffixes_of(name)) {
    for (const std::string& candidate : set) {
      if (suffix == candidate) return true;
    }
  }
  return false;
}

std::vector<std::string> leaf_sans(const x509::Certificate& leaf) {
  // SAN facts only — no CN fallback; mirrors encode_certificate.
  if (!leaf.subject_alt_name()) return {};
  return leaf.subject_alt_name()->dns_names;
}

bool oracle_block(const ConstraintBlock& block, const core::Chain& chain,
                  const ChainContext& ctx) {
  const x509::Certificate& leaf = *chain.front();
  const x509::Certificate& root = *chain.back();

  if (block.sct_not_after_sec) {  // some SCT at or before the instant
    bool any = false;
    for (std::int64_t t : ctx.sct_timestamps) {
      if (t <= *block.sct_not_after_sec) any = true;
    }
    if (!any) return false;
  }
  if (block.sct_all_after_sec) {  // non-empty, and none at or before
    if (ctx.sct_timestamps.empty()) return false;
    for (std::int64_t t : ctx.sct_timestamps) {
      if (t <= *block.sct_all_after_sec) return false;
    }
  }
  if (!block.permitted_dns_names.empty()) {
    for (const std::string& san : leaf_sans(leaf)) {
      if (!any_suffix_in(san, block.permitted_dns_names)) return false;
    }
  }
  if (block.min_version || block.max_version_exclusive) {
    if (!ctx.client_version) return false;  // absent context fails closed
    const std::int64_t packed = ctx.client_version->packed();
    if (block.min_version && packed < block.min_version->packed()) return false;
    if (block.max_version_exclusive &&
        packed >= block.max_version_exclusive->packed()) {
      return false;
    }
  }
  if (block.enforce_anchor_expiry) {
    if (!ctx.validation_time) return false;
    if (*ctx.validation_time < root.not_before() ||
        *ctx.validation_time > root.not_after()) {
      return false;
    }
  }
  if (block.enforce_anchor_constraints) {
    const auto& nc = root.name_constraints();
    if (nc && !nc->permitted_dns.empty()) {
      for (const std::string& san : leaf_sans(leaf)) {
        if (!any_suffix_in(san, nc->permitted_dns)) return false;
      }
    }
    if (nc) {
      for (const std::string& san : leaf_sans(leaf)) {
        for (const std::string& excluded : nc->excluded_dns) {
          for (const std::string& suffix : suffixes_of(san)) {
            if (suffix == excluded) return false;
          }
        }
      }
    }
    if (root.path_len() &&
        static_cast<std::int64_t>(chain.size()) > *root.path_len() + 2) {
      return false;
    }
  }
  return true;
}

bool oracle_anchor(const TrustAnchor& anchor, const core::Chain& chain,
                   const ChainContext& ctx) {
  for (const ConstraintBlock& block : anchor.constraints) {
    if (oracle_block(block, chain, ctx)) return true;  // OR across blocks
  }
  return false;
}

bool oracle_ev(const TrustAnchor& anchor, const core::Chain& chain) {
  const x509::Certificate& leaf = *chain.front();
  if (!leaf.is_ev()) return true;
  if (!leaf.certificate_policies()) return false;
  for (const auto& policy : leaf.certificate_policies()->policies) {
    for (const std::string& oid : anchor.ev_policy_oids) {
      if (policy.to_string() == oid) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Harness: compile an anchor, run its constraints GCC against the chain
// with context facts, compare with the oracle.

bool run_gcc(core::GccExecutor& executor, const core::Gcc& gcc,
             const core::Chain& chain, const ChainContext& ctx) {
  const core::FactSet context = ctx.to_facts(core::chain_id_of(chain));
  return executor.evaluate_one(chain, core::kUsageTls, gcc, nullptr, &context);
}

core::Gcc compile_block(Rng& rng, const ConstraintBlock& block) {
  TrustAnchor anchor;
  anchor.sha256_hex = random_hash(rng);
  anchor.constraints.push_back(block);
  auto gccs = compile_anchor(anchor);
  EXPECT_TRUE(gccs.ok()) << gccs.error();
  EXPECT_EQ(gccs.value().size(), 1u);
  return std::move(gccs.value()[0]);
}

// One program, `chains_per_program` random (chain, context) pairs; the
// caller's `shape` fills in the constraint under test and may bias the
// context toward its boundaries. 40 programs x 25 chains = 1000 verdict
// pairs per kind.
constexpr int kPrograms = 40;
constexpr int kChainsPerProgram = 25;

using ShapeFn = void (*)(Rng&, ConstraintBlock&, ChainContext&);

void run_kind_diff(std::uint64_t seed, ShapeFn shape) {
  Rng rng(seed);
  core::GccExecutor executor;
  int checked = 0;
  for (int p = 0; p < kPrograms; ++p) {
    ConstraintBlock block;
    ChainContext proto_ctx;  // shape() may pin context values per program
    shape(rng, block, proto_ctx);
    const core::Gcc gcc = compile_block(rng, block);
    for (int c = 0; c < kChainsPerProgram; ++c) {
      core::Chain chain = make_chain(rng);
      ChainContext ctx = proto_ctx;
      // Re-roll the context parts the shape left unpinned.
      shape(rng, block, ctx);
      const bool expected = oracle_block(block, chain, ctx);
      const bool actual = run_gcc(executor, gcc, chain, ctx);
      ASSERT_EQ(actual, expected)
          << "seed=" << seed << " program=" << p << " chain=" << c
          << " scts=" << ctx.sct_timestamps.size() << " version="
          << (ctx.client_version ? ctx.client_version->to_string() : "none");
      ++checked;
    }
  }
  EXPECT_GE(checked, 1000);
}

// Context randomizers. The boundary bias is the point: a uniform draw over
// int64 would never land on the exact constraint instant.
std::int64_t near(Rng& rng, std::int64_t pivot) {
  switch (rng.uniform(4)) {
    case 0: return pivot;                           // the exact instant
    case 1: return pivot + 1;
    case 2: return pivot - 1;
    default: return rng.uniform_range(0, 4'000'000'000LL);
  }
}

void random_scts(Rng& rng, std::int64_t pivot, ChainContext& ctx) {
  ctx.sct_timestamps.clear();
  const std::size_t count = rng.uniform(4);  // 0..3; zero is a boundary
  for (std::size_t i = 0; i < count; ++i) {
    ctx.sct_timestamps.push_back(near(rng, pivot));
  }
}

// ---------------------------------------------------------------------------
// Per-kind differential tests.

TEST(ConstraintDiff, SctNotAfter) {
  run_kind_diff(0x5c71, [](Rng& rng, ConstraintBlock& block, ChainContext& ctx) {
    if (!block.sct_not_after_sec) {
      block.sct_not_after_sec = rng.uniform_range(1, 4'000'000'000LL);
    }
    random_scts(rng, *block.sct_not_after_sec, ctx);
  });
}

TEST(ConstraintDiff, SctAllAfter) {
  run_kind_diff(0x5c72, [](Rng& rng, ConstraintBlock& block, ChainContext& ctx) {
    if (!block.sct_all_after_sec) {
      block.sct_all_after_sec = rng.uniform_range(1, 4'000'000'000LL);
    }
    random_scts(rng, *block.sct_all_after_sec, ctx);
  });
}

TEST(ConstraintDiff, PermittedDnsNames) {
  run_kind_diff(0xd45, [](Rng& rng, ConstraintBlock& block, ChainContext&) {
    if (!block.permitted_dns_names.empty()) return;  // context has no role
    const std::size_t count = 1 + rng.uniform(3);
    for (std::size_t i = 0; i < count; ++i) {
      block.permitted_dns_names.push_back(
          kPermitPool[rng.uniform(std::size(kPermitPool))]);
    }
  });
}

TEST(ConstraintDiff, MinVersion) {
  run_kind_diff(0x312e, [](Rng& rng, ConstraintBlock& block, ChainContext& ctx) {
    if (!block.min_version) block.min_version = random_version(rng);
    ctx.client_version.reset();
    if (rng.chance(0.85)) {
      // Bias onto the endpoint: the exact constraint version must pass
      // min_version (inclusive) — a classic off-by-one site.
      ctx.client_version =
          rng.chance(0.35) ? *block.min_version : random_version(rng);
    }
  });
}

TEST(ConstraintDiff, MaxVersionExclusive) {
  run_kind_diff(0x3a78, [](Rng& rng, ConstraintBlock& block, ChainContext& ctx) {
    if (!block.max_version_exclusive) {
      block.max_version_exclusive = random_version(rng);
    }
    ctx.client_version.reset();
    if (rng.chance(0.85)) {
      // The exact constraint version must FAIL max_version_exclusive.
      ctx.client_version = rng.chance(0.35) ? *block.max_version_exclusive
                                            : random_version(rng);
    }
  });
}

TEST(ConstraintDiff, AnchorExpiry) {
  run_kind_diff(0xe791, [](Rng& rng, ConstraintBlock& block, ChainContext& ctx) {
    block.enforce_anchor_expiry = true;
    ctx.validation_time.reset();
    if (rng.chance(0.85)) {
      // make_chain() draws root windows from [0, 3e9]; sampling the same
      // range lands inside, at, and outside the window. Window endpoints
      // themselves are exercised by the deterministic test below.
      ctx.validation_time = rng.uniform_range(0, 3'000'000'000LL);
    }
  });
}

TEST(ConstraintDiff, AnchorConstraints) {
  run_kind_diff(0xac0, [](Rng&, ConstraintBlock& block, ChainContext&) {
    block.enforce_anchor_constraints = true;
  });
}

TEST(ConstraintDiff, EvPolicy) {
  Rng rng(0xe9);
  core::GccExecutor executor;
  int checked = 0;
  for (int p = 0; p < kPrograms; ++p) {
    TrustAnchor anchor;
    anchor.sha256_hex = random_hash(rng);
    const std::size_t count = 1 + rng.uniform(3);
    for (std::size_t i = 0; i < count; ++i) {
      anchor.ev_policy_oids.push_back(
          kEvOidPool[rng.uniform(std::size(kEvOidPool))]);
    }
    auto gccs = compile_anchor(anchor);
    ASSERT_TRUE(gccs.ok()) << gccs.error();
    ASSERT_EQ(gccs.value().size(), 1u);  // no constraints blocks: EV only
    for (int c = 0; c < kChainsPerProgram; ++c) {
      core::Chain chain = make_chain(rng);
      const bool expected = oracle_ev(anchor, chain);
      const bool actual =
          run_gcc(executor, gccs.value()[0], chain, ChainContext{});
      ASSERT_EQ(actual, expected)
          << "program=" << p << " chain=" << c
          << " leaf_ev=" << chain.front()->is_ev();
      ++checked;
    }
  }
  EXPECT_GE(checked, 1000);
}

// Multi-kind blocks AND'd within a block, OR'd across blocks — the
// combination the per-kind loops cannot reach.
TEST(ConstraintDiff, RandomAnchorsOrOfAndBlocks) {
  Rng rng(0xab5);
  core::GccExecutor executor;
  int checked = 0;
  for (int p = 0; p < 100; ++p) {
    TrustAnchor anchor;
    anchor.sha256_hex = random_hash(rng);
    const std::size_t blocks = 1 + rng.uniform(3);
    for (std::size_t b = 0; b < blocks; ++b) {
      ConstraintBlock block;
      if (rng.chance(0.4)) {
        block.sct_not_after_sec = rng.uniform_range(1, 4'000'000'000LL);
      }
      if (rng.chance(0.3)) {
        block.sct_all_after_sec = rng.uniform_range(1, 4'000'000'000LL);
      }
      if (rng.chance(0.4)) {
        block.permitted_dns_names.push_back(
            kPermitPool[rng.uniform(std::size(kPermitPool))]);
      }
      if (rng.chance(0.3)) block.min_version = random_version(rng);
      if (rng.chance(0.3)) block.max_version_exclusive = random_version(rng);
      if (rng.chance(0.3)) block.enforce_anchor_expiry = true;
      if (rng.chance(0.3)) block.enforce_anchor_constraints = true;
      if (block.empty()) block.enforce_anchor_expiry = true;
      anchor.constraints.push_back(std::move(block));
    }
    auto gccs = compile_anchor(anchor);
    ASSERT_TRUE(gccs.ok()) << gccs.error();
    ASSERT_GE(gccs.value().size(), 1u);
    for (int c = 0; c < 10; ++c) {
      core::Chain chain = make_chain(rng);
      ChainContext ctx;
      random_scts(rng, rng.uniform_range(0, 4'000'000'000LL), ctx);
      if (rng.chance(0.8)) ctx.client_version = random_version(rng);
      if (rng.chance(0.8)) {
        ctx.validation_time = rng.uniform_range(0, 3'000'000'000LL);
      }
      const bool expected = oracle_anchor(anchor, chain, ctx);
      const bool actual = run_gcc(executor, gccs.value()[0], chain, ctx);
      ASSERT_EQ(actual, expected) << "program=" << p << " chain=" << c;
      ++checked;
    }
  }
  EXPECT_GE(checked, 1000);
}

// ---------------------------------------------------------------------------
// Deterministic boundary vectors (the ISSUE-named cases, pinned exactly).

struct BoundaryFixture {
  Rng rng{0xb0c1};
  core::GccExecutor executor;
  core::Chain chain = make_chain(rng);
};

TEST(ConstraintDiffBoundary, ExactSctInstant) {
  BoundaryFixture f;
  ConstraintBlock block;
  block.sct_not_after_sec = 1'700'000'000;
  const core::Gcc gcc = compile_block(f.rng, block);

  ChainContext at;
  at.sct_timestamps = {1'700'000'000};  // T == S is inclusive: pass
  EXPECT_TRUE(run_gcc(f.executor, gcc, f.chain, at));

  ChainContext after;
  after.sct_timestamps = {1'700'000'001};  // one past: fail
  EXPECT_FALSE(run_gcc(f.executor, gcc, f.chain, after));

  ChainContext none;  // no SCTs at all: fail closed
  EXPECT_FALSE(run_gcc(f.executor, gcc, f.chain, none));

  // sct_all_after flips all three: T == S counts as "too old".
  ConstraintBlock all;
  all.sct_all_after_sec = 1'700'000'000;
  const core::Gcc all_gcc = compile_block(f.rng, all);
  EXPECT_FALSE(run_gcc(f.executor, all_gcc, f.chain, at));
  EXPECT_TRUE(run_gcc(f.executor, all_gcc, f.chain, after));
  EXPECT_FALSE(run_gcc(f.executor, all_gcc, f.chain, none));
}

TEST(ConstraintDiffBoundary, VersionRangeEndpoints) {
  BoundaryFixture f;
  ConstraintBlock block;
  block.min_version = Version::parse("125.0.6368.2");
  block.max_version_exclusive = Version::parse("126");
  const core::Gcc gcc = compile_block(f.rng, block);

  auto with_version = [](const char* text) {
    ChainContext ctx;
    ctx.client_version = Version::parse(text);
    return ctx;
  };
  // min endpoint is inclusive; max endpoint is exclusive.
  EXPECT_TRUE(run_gcc(f.executor, gcc, f.chain, with_version("125.0.6368.2")));
  EXPECT_FALSE(run_gcc(f.executor, gcc, f.chain, with_version("125.0.6368.1")));
  EXPECT_TRUE(run_gcc(f.executor, gcc, f.chain, with_version("125.32767.0.0")));
  EXPECT_FALSE(run_gcc(f.executor, gcc, f.chain, with_version("126")));
  EXPECT_FALSE(run_gcc(f.executor, gcc, f.chain, with_version("126.0.0.1")));
  EXPECT_FALSE(run_gcc(f.executor, gcc, f.chain, ChainContext{}));  // absent
}

TEST(ConstraintDiffBoundary, EmptyPermitListIsNoConstraint) {
  // A block whose permitted_dns_names list is empty simply has no DNS
  // conjunct (the parser can't produce this shape, but the compiler API
  // can): verdict must reduce to the remaining fields.
  BoundaryFixture f;
  ConstraintBlock block;
  block.permitted_dns_names.clear();
  block.sct_not_after_sec = 1'700'000'000;
  const core::Gcc gcc = compile_block(f.rng, block);
  ChainContext ctx;
  ctx.sct_timestamps = {1'000};
  EXPECT_TRUE(run_gcc(f.executor, gcc, f.chain, ctx));
}

TEST(ConstraintDiffBoundary, SanlessLeafVacuouslyPassesDnsPermits) {
  BoundaryFixture f;
  SimKeyPair key = SimSig::keygen("sanless");
  CertPtr root = make_root(f.rng);
  CertPtr leaf = CertificateBuilder()
                     .serial(7)
                     .subject(DistinguishedName::make("no-san.example"))
                     .issuer(root->subject())
                     .validity(0, 4'000'000'000)
                     .public_key(key.key_id)
                     .sign(key)
                     .take();
  core::Chain chain{leaf, root};
  ConstraintBlock block;
  block.permitted_dns_names = {"permitted.example"};
  const core::Gcc gcc = compile_block(f.rng, block);
  // No san facts -> the universal quantification is vacuous -> pass; the
  // oracle agrees by construction (loop over zero SANs).
  EXPECT_TRUE(run_gcc(f.executor, gcc, chain, ChainContext{}));
  EXPECT_TRUE(oracle_block(block, chain, ChainContext{}));
}

TEST(ConstraintDiffBoundary, AnchorExpiryWindowEndpoints) {
  Rng rng(0xe1);
  core::GccExecutor executor;
  CertPtr root = make_root(rng);
  core::Chain chain{make_leaf(rng, root->subject()), root};
  ConstraintBlock block;
  block.enforce_anchor_expiry = true;
  const core::Gcc gcc = compile_block(rng, block);
  auto at = [&](std::int64_t t) {
    ChainContext ctx;
    ctx.validation_time = t;
    return run_gcc(executor, gcc, chain, ctx);
  };
  EXPECT_TRUE(at(root->not_before()));       // inclusive lower bound
  EXPECT_TRUE(at(root->not_after()));        // inclusive upper bound
  EXPECT_FALSE(at(root->not_before() - 1));
  EXPECT_FALSE(at(root->not_after() + 1));
  EXPECT_FALSE(run_gcc(executor, gcc, chain, ChainContext{}));  // absent
}

}  // namespace
}  // namespace anchor::rootstore
