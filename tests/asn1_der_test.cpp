#include "asn1/der.hpp"

#include <gtest/gtest.h>

#include "util/time.hpp"

namespace anchor::asn1 {
namespace {

TEST(DerWriter, BooleanEncoding) {
  Writer w;
  w.boolean(true);
  w.boolean(false);
  EXPECT_EQ(w.data(), (Bytes{0x01, 0x01, 0xff, 0x01, 0x01, 0x00}));
}

TEST(DerWriter, IntegerMinimalEncoding) {
  auto encode = [](std::int64_t v) {
    Writer w;
    w.integer(v);
    return w.take();
  };
  EXPECT_EQ(encode(0), (Bytes{0x02, 0x01, 0x00}));
  EXPECT_EQ(encode(127), (Bytes{0x02, 0x01, 0x7f}));
  EXPECT_EQ(encode(128), (Bytes{0x02, 0x02, 0x00, 0x80}));
  EXPECT_EQ(encode(256), (Bytes{0x02, 0x02, 0x01, 0x00}));
  EXPECT_EQ(encode(-1), (Bytes{0x02, 0x01, 0xff}));
  EXPECT_EQ(encode(-128), (Bytes{0x02, 0x01, 0x80}));
  EXPECT_EQ(encode(-129), (Bytes{0x02, 0x02, 0xff, 0x7f}));
}

TEST(DerRoundTrip, Integers) {
  const std::int64_t samples[] = {0, 1, -1, 127, 128, -128, -129, 255, 256,
                                  65535, -65536, 1464753600, INT64_MAX,
                                  INT64_MIN};
  for (std::int64_t v : samples) {
    Writer w;
    w.integer(v);
    Reader r(BytesView(w.data()));
    std::int64_t out = 0;
    ASSERT_TRUE(r.read_integer(out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.done());
  }
}

TEST(DerRoundTrip, IntegerBytes) {
  Bytes magnitude{0x00, 0x9a, 0xbc, 0xde};  // leading zero trimmed
  Writer w;
  w.integer_bytes(magnitude);
  Reader r(BytesView(w.data()));
  Bytes out;
  ASSERT_TRUE(r.read_integer_bytes(out).ok());
  EXPECT_EQ(out, (Bytes{0x9a, 0xbc, 0xde}));
}

TEST(DerRoundTrip, Strings) {
  Writer w;
  w.utf8_string("héllo");
  w.printable_string("Example CA");
  w.ia5_string("www.example.com");
  Reader r(BytesView(w.data()));
  std::string a;
  std::string b;
  std::string c;
  ASSERT_TRUE(r.read_string(a).ok());
  ASSERT_TRUE(r.read_string(b).ok());
  ASSERT_TRUE(r.read_string(c).ok());
  EXPECT_EQ(a, "héllo");
  EXPECT_EQ(b, "Example CA");
  EXPECT_EQ(c, "www.example.com");
}

TEST(DerRoundTrip, OctetAndBitStrings) {
  Bytes payload{1, 2, 3, 4, 5};
  Writer w;
  w.octet_string(payload);
  w.bit_string(payload);
  Reader r(BytesView(w.data()));
  Bytes octets;
  Bytes bits;
  ASSERT_TRUE(r.read_octet_string(octets).ok());
  ASSERT_TRUE(r.read_bit_string(bits).ok());
  EXPECT_EQ(octets, payload);
  EXPECT_EQ(bits, payload);
}

TEST(DerRoundTrip, NullAndOid) {
  Writer w;
  w.null();
  w.oid(Oid::from_string("2.5.29.19"));
  Reader r(BytesView(w.data()));
  ASSERT_TRUE(r.read_null().ok());
  Oid oid;
  ASSERT_TRUE(r.read_oid(oid).ok());
  EXPECT_EQ(oid.to_string(), "2.5.29.19");
}

TEST(DerTime, UtcTimeForPre2050) {
  std::int64_t t = unix_date(2022, 11, 30);
  Writer w;
  w.time(t);
  EXPECT_EQ(w.data()[0], static_cast<std::uint8_t>(Tag::kUtcTime));
  Reader r(BytesView(w.data()));
  std::int64_t out = 0;
  ASSERT_TRUE(r.read_time(out).ok());
  EXPECT_EQ(out, t);
}

TEST(DerTime, GeneralizedTimeFrom2050) {
  std::int64_t t = unix_date(2055, 6, 15);
  Writer w;
  w.time(t);
  EXPECT_EQ(w.data()[0], static_cast<std::uint8_t>(Tag::kGeneralizedTime));
  Reader r(BytesView(w.data()));
  std::int64_t out = 0;
  ASSERT_TRUE(r.read_time(out).ok());
  EXPECT_EQ(out, t);
}

TEST(DerTime, UtcTimeCenturyWindow) {
  // UTCTime years 50-99 are 19xx, 00-49 are 20xx.
  std::int64_t t1969 = unix_date(1969, 7, 20);
  Writer w;
  w.time(t1969);
  Reader r(BytesView(w.data()));
  std::int64_t out = 0;
  ASSERT_TRUE(r.read_time(out).ok());
  EXPECT_EQ(out, t1969);
}

TEST(DerNesting, SequenceAndContext) {
  Writer w;
  w.sequence([](Writer& seq) {
    seq.integer(7);
    seq.context(0, [](Writer& ctx) { ctx.integer(42); });
    seq.sequence([](Writer& inner) { inner.boolean(true); });
  });
  Reader top(BytesView(w.data()));
  Reader seq{{}};
  ASSERT_TRUE(top.read_sequence(seq).ok());
  std::int64_t v = 0;
  ASSERT_TRUE(seq.read_integer(v).ok());
  EXPECT_EQ(v, 7);
  Reader ctx{{}};
  ASSERT_TRUE(seq.read_context(0, ctx).ok());
  ASSERT_TRUE(ctx.read_integer(v).ok());
  EXPECT_EQ(v, 42);
  Reader inner{{}};
  ASSERT_TRUE(seq.read_sequence(inner).ok());
  bool flag = false;
  ASSERT_TRUE(inner.read_boolean(flag).ok());
  EXPECT_TRUE(flag);
  EXPECT_TRUE(seq.done());
  EXPECT_TRUE(top.done());
}

TEST(DerReader, LongFormLength) {
  // 200-byte octet string requires the 0x81 long form.
  Bytes payload(200, 0x5a);
  Writer w;
  w.octet_string(payload);
  EXPECT_EQ(w.data()[1], 0x81);
  EXPECT_EQ(w.data()[2], 200);
  Reader r(BytesView(w.data()));
  Bytes out;
  ASSERT_TRUE(r.read_octet_string(out).ok());
  EXPECT_EQ(out, payload);

  // 70000-byte payload needs 0x83.
  Bytes big(70000, 0x11);
  Writer w2;
  w2.octet_string(big);
  EXPECT_EQ(w2.data()[1], 0x83);
  Reader r2(BytesView(w2.data()));
  ASSERT_TRUE(r2.read_octet_string(out).ok());
  EXPECT_EQ(out.size(), 70000u);
}

TEST(DerReader, RejectsIndefiniteLength) {
  Bytes bad{0x30, 0x80, 0x00, 0x00};
  Reader r{BytesView(bad)};
  Tlv tlv;
  EXPECT_FALSE(r.read_any(tlv).ok());
}

TEST(DerReader, RejectsNonMinimalLength) {
  // Length 5 encoded as 0x81 0x05 instead of 0x05.
  Bytes bad{0x04, 0x81, 0x05, 1, 2, 3, 4, 5};
  Reader r{BytesView(bad)};
  Bytes out;
  EXPECT_FALSE(r.read_octet_string(out).ok());
}

TEST(DerReader, RejectsTruncatedContents) {
  Bytes bad{0x04, 0x05, 1, 2, 3};  // claims 5 bytes, has 3
  Reader r{BytesView(bad)};
  Bytes out;
  EXPECT_FALSE(r.read_octet_string(out).ok());
}

TEST(DerReader, RejectsTruncatedHeader) {
  Bytes bad{0x04};
  Reader r{BytesView(bad)};
  Tlv tlv;
  EXPECT_FALSE(r.read_any(tlv).ok());
}

TEST(DerReader, RejectsNonCanonicalBoolean) {
  Bytes bad{0x01, 0x01, 0x2a};  // true must be 0xff
  Reader r{BytesView(bad)};
  bool out = false;
  EXPECT_FALSE(r.read_boolean(out).ok());
}

TEST(DerReader, RejectsWrongTagWithoutConsuming) {
  Writer w;
  w.integer(5);
  Reader r(BytesView(w.data()));
  Bytes out;
  EXPECT_FALSE(r.read_octet_string(out).ok());
  // The cursor did not advance: the integer is still readable.
  std::int64_t v = 0;
  ASSERT_TRUE(r.read_integer(v).ok());
  EXPECT_EQ(v, 5);
}

TEST(DerReader, ReadOptionalSkipsAbsentField) {
  Writer w;
  w.integer(9);
  Reader r(BytesView(w.data()));
  Tlv tlv;
  EXPECT_FALSE(r.read_optional(context_tag(0), tlv));
  std::int64_t v = 0;
  ASSERT_TRUE(r.read_integer(v).ok());
  EXPECT_EQ(v, 9);
}

TEST(DerReader, FullTlvSpansHeaderAndContents) {
  Writer w;
  w.octet_string(Bytes{1, 2, 3});
  Reader r(BytesView(w.data()));
  Tlv tlv;
  ASSERT_TRUE(r.read_any(tlv).ok());
  EXPECT_EQ(tlv.full.size(), 5u);  // 04 03 01 02 03
  EXPECT_EQ(tlv.contents.size(), 3u);
}

TEST(DerReader, RejectsMalformedTime) {
  Writer helper;
  helper.tlv(static_cast<std::uint8_t>(Tag::kUtcTime),
             BytesView(to_bytes("2211300500")));  // missing seconds + Z
  Reader r(BytesView(helper.data()));
  std::int64_t out = 0;
  EXPECT_FALSE(r.read_time(out).ok());

  Writer helper2;
  helper2.tlv(static_cast<std::uint8_t>(Tag::kUtcTime),
              BytesView(to_bytes("221330050000Z")));  // month 13
  Reader r2(BytesView(helper2.data()));
  EXPECT_FALSE(r2.read_time(out).ok());
}

}  // namespace
}  // namespace anchor::asn1
