#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>

namespace anchor {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::map<std::uint64_t, int> histogram;
  for (int i = 0; i < 10000; ++i) ++histogram[rng.uniform(8)];
  EXPECT_EQ(histogram.size(), 8u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, 900);  // ~1250 expected
    EXPECT_LT(count, 1600);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ZipfIsHeavyHeaded) {
  Rng rng(23);
  std::map<std::size_t, int> histogram;
  for (int i = 0; i < 20000; ++i) ++histogram[rng.zipf(40, 1.8)];
  // Rank 0 dominates, and low ranks dominate the tail collectively.
  EXPECT_GT(histogram[0], histogram[5]);
  int head = 0;
  int total = 0;
  for (const auto& [rank, count] : histogram) {
    total += count;
    if (rank < 10) head += count;
  }
  EXPECT_GT(static_cast<double>(head) / total, 0.85);
}

TEST(Rng, CountWithMeanIsPositiveAndRoughlyCalibrated) {
  Rng rng(29);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    std::size_t count = rng.count_with_mean(12.0);
    EXPECT_GE(count, 1u);
    sum += static_cast<double>(count);
  }
  EXPECT_NEAR(sum / n, 12.0, 1.0);
}

TEST(Rng, RandomBytesLengthAndVariety) {
  Rng rng(31);
  Bytes data = rng.random_bytes(1000);
  ASSERT_EQ(data.size(), 1000u);
  std::map<std::uint8_t, int> histogram;
  for (std::uint8_t b : data) ++histogram[b];
  EXPECT_GT(histogram.size(), 200u);  // near-uniform over 256 values
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork(1);
  Rng parent2(37);
  Rng child2 = parent2.fork(1);
  // Same lineage -> same stream.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // Different label -> different stream.
  Rng parent3(37);
  Rng other = parent3.fork(2);
  int same = 0;
  Rng parent4(37);
  Rng child3 = parent4.fork(1);
  for (int i = 0; i < 50; ++i) {
    if (other.next_u64() == child3.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, JitteredStaysWithinFractionAndVaries) {
  Rng rng(41);
  bool saw_below = false;
  bool saw_above = false;
  for (int i = 0; i < 200; ++i) {
    std::int64_t v = rng.jittered(1000, 0.2);
    EXPECT_GE(v, 800);
    EXPECT_LE(v, 1200);
    if (v < 1000) saw_below = true;
    if (v > 1000) saw_above = true;
  }
  EXPECT_TRUE(saw_below);
  EXPECT_TRUE(saw_above);
}

TEST(Rng, JitteredIsIdentityForZeroFractionOrValue) {
  Rng rng(43);
  EXPECT_EQ(rng.jittered(3600, 0.0), 3600);
  EXPECT_EQ(rng.jittered(0, 0.5), 0);
  EXPECT_EQ(rng.jittered(-60, 0.0), -60);
}

}  // namespace
}  // namespace anchor
