# Runs at ctest time, after gtest discovery has populated
# anchor_anchord_tests_TESTS (see tests/CMakeLists.txt). The GoogleTest
# module flattens list-valued properties, so a two-label LABELS can't be
# passed through gtest_discover_tests itself; this include re-applies the
# full label set to every discovered anchord test.
foreach(anchord_test IN LISTS anchor_anchord_tests_TESTS)
  set_tests_properties("${anchord_test}" PROPERTIES
    LABELS "anchord;concurrency")
endforeach()
