// The Merkle-authenticated feed path (feed.hpp tree heads + the client's
// feed-fetch poll pipeline): signed tree heads per publication, proof
// verification before any adoption, rollback detection by pinned root
// rather than sequence number, and the E17 fleet-simulation fixture.
//
// Two regression tests ride along:
//   * LegacyEqualHeadReplayAfterRollback — an equal-sequence head served
//     right after a rollback attempt must stay a failure (continued
//     replay), never reset backoff or refresh last-contact;
//   * FleetAdoptionIsDatedAtVerifyNotFetch — the simulator's adoption
//     percentiles must move one-for-one with the client-side verify
//     latency, which they cannot do if they are dated at fetch time.
#include <gtest/gtest.h>

#include <algorithm>

#include "ctlog/merkle.hpp"
#include "rsf/client.hpp"
#include "rsf/simulator.hpp"
#include "rsf/transport.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::rsf {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

constexpr std::int64_t kNow = 1700000000;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

rootstore::RootStore store_with(int count, const std::string& prefix = "Root") {
  rootstore::RootStore store;
  for (int i = 0; i < count; ++i) {
    (void)store.add_trusted(make_root(prefix + " " + std::to_string(i)));
  }
  return store;
}

// Rewrites every query's snapshot budget, forcing the feed's pagination
// path: the client must converge over several proof-verified pages.
class PaginatingTransport : public FeedTransport {
 public:
  PaginatingTransport(const Feed& feed, std::uint32_t page)
      : direct_(feed), page_(page) {}

  const std::string& name() const override { return direct_.name(); }
  const Bytes& key_id() const override { return direct_.key_id(); }
  Result<std::uint64_t> head_sequence() override {
    return direct_.head_sequence();
  }
  Result<std::vector<Snapshot>> fetch_since(std::uint64_t after) override {
    return direct_.fetch_since(after);
  }
  Result<std::string> fetch_delta(std::uint64_t sequence) override {
    return direct_.fetch_delta(sequence);
  }
  bool supports_feed_fetch() const override { return true; }
  Result<FeedFetch> feed_fetch(const FeedFetchQuery& query) override {
    FeedFetchQuery clamped = query;
    clamped.max_snapshots = page_;
    return direct_.feed_fetch(clamped);
  }

 private:
  DirectTransport direct_;
  std::uint32_t page_;
};

// Serves one of two feeds, switchable mid-test: the split-view attack, where
// a second publisher holding the same key (same feed name) answers with a
// same-size but different history.
class SwitchableTransport : public FeedTransport {
 public:
  SwitchableTransport(const Feed& a, const Feed& b) : a_(a), b_(b) {}

  void serve_second(bool second) { second_ = second; }

  const std::string& name() const override { return current().name(); }
  const Bytes& key_id() const override { return current().key_id(); }
  Result<std::uint64_t> head_sequence() override {
    return current().head_sequence();
  }
  Result<std::vector<Snapshot>> fetch_since(std::uint64_t after) override {
    return current().fetch_since(after);
  }
  Result<std::string> fetch_delta(std::uint64_t sequence) override {
    return current().fetch_delta(sequence);
  }
  bool supports_feed_fetch() const override { return true; }
  Result<FeedFetch> feed_fetch(const FeedFetchQuery& query) override {
    return current().feed_fetch(query);
  }

 private:
  const Feed& current() const { return second_ ? b_ : a_; }
  const Feed& a_;
  const Feed& b_;
  bool second_ = false;
};

// Legacy-path transport whose advertised head can be pinned below (or at)
// the true head — a lagging cache replaying stale state.
class ForcedHeadTransport : public FeedTransport {
 public:
  explicit ForcedHeadTransport(const Feed& feed) : direct_(feed) {}

  const std::string& name() const override { return direct_.name(); }
  const Bytes& key_id() const override { return direct_.key_id(); }
  Result<std::uint64_t> head_sequence() override {
    if (forced_head != 0) return forced_head;
    return direct_.head_sequence();
  }
  Result<std::vector<Snapshot>> fetch_since(std::uint64_t after) override {
    auto fetched = direct_.fetch_since(after);
    if (!fetched || forced_head == 0) return fetched;
    std::vector<Snapshot> run = std::move(fetched).take();
    run.erase(std::remove_if(run.begin(), run.end(),
                             [&](const Snapshot& snap) {
                               return snap.sequence > forced_head;
                             }),
              run.end());
    return run;
  }
  Result<std::string> fetch_delta(std::uint64_t sequence) override {
    return direct_.fetch_delta(sequence);
  }

  std::uint64_t forced_head = 0;  // 0 = honest

 private:
  DirectTransport direct_;
};

TEST(FeedTreeHead, SignsATreeHeadPerPublication) {
  SimSig registry;
  Feed feed("nss", registry);

  // The empty feed already commits to its (empty) history.
  SignedTreeHead empty_head = feed.tree_head();
  EXPECT_EQ(empty_head.tree_size, 0u);
  EXPECT_EQ(empty_head.root_hash, ctlog::empty_tree_hash());
  EXPECT_TRUE(registry.verify(BytesView(feed.key_id()),
                              BytesView(empty_head.transcript()),
                              BytesView(empty_head.signature)));

  for (int i = 1; i <= 3; ++i) {
    feed.publish(store_with(i), kNow + i, "r" + std::to_string(i));
  }

  // Every historic head is signed over the root an independent verifier
  // recomputes from the snapshot transcripts.
  ctlog::MerkleTree mirror;
  for (const Snapshot& snap : feed.fetch_since(0)) {
    mirror.append(BytesView(snap.transcript()));
  }
  for (std::uint64_t size = 1; size <= 3; ++size) {
    auto sth = feed.tree_head_at(size);
    ASSERT_TRUE(sth.has_value()) << size;
    EXPECT_EQ(sth->tree_size, size);
    EXPECT_EQ(sth->root_hash, mirror.root_at(size));
    EXPECT_TRUE(registry.verify(BytesView(feed.key_id()),
                                BytesView(sth->transcript()),
                                BytesView(sth->signature)));
  }
  EXPECT_EQ(feed.tree_head(), feed.tree_head_at(3));
  EXPECT_FALSE(feed.tree_head_at(4).has_value());
}

TEST(FeedTreeHead, FeedFetchServesHeadAloneAtOrBeyondFrom) {
  SimSig registry;
  Feed feed("nss", registry);
  for (int i = 1; i <= 3; ++i) feed.publish(store_with(i), kNow + i, "r");

  // A caught-up poller gets the tree head and nothing else.
  FeedFetchQuery query;
  query.from_size = 3;
  auto ff = feed.feed_fetch(query);
  ASSERT_TRUE(ff.ok());
  EXPECT_EQ(ff.value().sth.tree_size, 3u);
  EXPECT_TRUE(ff.value().consistency.empty());
  EXPECT_TRUE(ff.value().inclusion.empty());
  EXPECT_TRUE(ff.value().snapshots.empty());

  // A poller claiming MORE history than the feed has still gets the signed
  // head — the poller classifies the rollback itself, from the signature.
  query.from_size = 10;
  ff = feed.feed_fetch(query);
  ASSERT_TRUE(ff.ok());
  EXPECT_EQ(ff.value().sth.tree_size, 3u);
  EXPECT_TRUE(ff.value().snapshots.empty());

  // An explicit head probe (max_snapshots = 0) behind the head.
  query.from_size = 1;
  query.max_snapshots = 0;
  ff = feed.feed_fetch(query);
  ASSERT_TRUE(ff.ok());
  EXPECT_EQ(ff.value().sth.tree_size, 3u);
  EXPECT_TRUE(ff.value().snapshots.empty());

  // A historic to_size beyond the head is unanswerable.
  FeedFetchQuery future;
  future.to_size = 9;
  EXPECT_FALSE(feed.feed_fetch(future).ok());
}

TEST(FeedTreeHead, PaginationServesTheTreeHeadAtTheClampedSize) {
  SimSig registry;
  Feed feed("nss", registry);
  for (int i = 1; i <= 5; ++i) feed.publish(store_with(i), kNow + i, "r");

  // First page: proofs must be computed AT the clamped size, or the
  // poller could never verify them.
  FeedFetchQuery query;
  query.from_size = 0;
  query.max_snapshots = 2;
  auto page = feed.feed_fetch(query);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value().sth.tree_size, 2u);
  ASSERT_EQ(page.value().snapshots.size(), 2u);
  EXPECT_TRUE(page.value().consistency.empty());  // from_size == 0
  EXPECT_TRUE(ctlog::verify_inclusion(
      ctlog::leaf_hash(BytesView(page.value().snapshots.back().transcript())),
      1, 2, page.value().inclusion, page.value().sth.root_hash));

  // Second page: the consistency proof links the first page's head to the
  // new served head.
  query.from_size = 2;
  auto next = feed.feed_fetch(query);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().sth.tree_size, 4u);
  EXPECT_TRUE(ctlog::verify_consistency(
      2, 4, page.value().sth.root_hash, next.value().sth.root_hash,
      next.value().consistency));

  // A byte budget too small for even one snapshot still makes progress by
  // exactly one.
  FeedFetchQuery tiny;
  tiny.from_size = 0;
  tiny.max_bytes = 1;
  auto trickle = feed.feed_fetch(tiny);
  ASSERT_TRUE(trickle.ok());
  EXPECT_EQ(trickle.value().sth.tree_size, 1u);
  EXPECT_EQ(trickle.value().snapshots.size(), 1u);
}

TEST(FeedTreeHead, RestoreRoundTripsEveryHistoricTreeHead) {
  SimSig registry;
  Feed original("debian", registry);
  for (int i = 1; i <= 4; ++i) {
    original.publish(store_with(i), kNow + i, "r" + std::to_string(i));
  }

  SimSig registry2;
  Feed restored("debian", registry2);
  ASSERT_TRUE(restored.restore(original.fetch_since(0)).ok());
  EXPECT_EQ(restored.head_sequence(), 4u);
  for (std::uint64_t size = 1; size <= 4; ++size) {
    // Byte-identical heads, signatures included: the key is deterministic
    // and the transcript covers exactly (size, time, root).
    EXPECT_EQ(restored.tree_head_at(size), original.tree_head_at(size))
        << size;
  }

  // Restore fails closed: non-empty feed, truncated-front run, tampered run.
  EXPECT_FALSE(restored.restore(original.fetch_since(0)).ok());
  Feed partial("debian", registry2);
  EXPECT_FALSE(partial.restore(original.fetch_since(2)).ok());
  std::vector<Snapshot> tampered = original.fetch_since(0);
  tampered[1].payload += "x";
  Feed poisoned("debian", registry2);
  EXPECT_FALSE(poisoned.restore(std::move(tampered)).ok());
  EXPECT_EQ(poisoned.head_sequence(), 0u);
}

TEST(RsfClientMerkle, AdoptsAndPinsTheSignedRoot) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(3), kNow, "r1");
  feed.publish(store_with(4), kNow + 10, "r2");

  DirectTransport direct(feed);
  RsfClient client(direct, 3600);
  EXPECT_EQ(client.poll_now(kNow + 20), 2u);
  EXPECT_EQ(client.last_applied_sequence(), 2u);
  EXPECT_EQ(client.pinned_tree_root(), feed.tree_head().root_hash);
  EXPECT_EQ(client.store().trusted_count(), 4u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
  EXPECT_EQ(client.stats().proof_failures, 0u);

  // New publication: the next poll proves consistency from the pin and
  // advances it.
  feed.publish(store_with(5), kNow + 30, "r3");
  EXPECT_EQ(client.poll_now(kNow + 40), 1u);
  EXPECT_EQ(client.last_applied_sequence(), 3u);
  EXPECT_EQ(client.pinned_tree_root(), feed.tree_head().root_hash);
}

TEST(RsfClientMerkle, NoChangePollCostsTheTreeHeadAlone) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(40), kNow, "big");

  DirectTransport direct(feed);
  RsfClient client(direct, 3600);
  ASSERT_EQ(client.poll_now(kNow + 10), 1u);

  // The acceptance criterion for the authenticated feed: a no-change poll
  // transfers the signed tree head and NOTHING else — O(1) bytes no matter
  // how large the store or how long the history.
  const std::uint64_t before = client.stats().bytes_fetched;
  EXPECT_EQ(client.poll_now(kNow + 3600), 0u);
  EXPECT_EQ(client.stats().bytes_fetched - before,
            feed.tree_head().wire_size());
  EXPECT_EQ(client.stats().verified_no_change, 1u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
}

TEST(RsfClientMerkle, ConvergesOverAPaginatingTransport) {
  SimSig registry;
  Feed feed("nss", registry);
  for (int i = 1; i <= 5; ++i) feed.publish(store_with(i), kNow + i, "r");

  PaginatingTransport paged(feed, /*page=*/1);
  RsfClient client(paged, 3600);
  std::int64_t t = kNow + 100;
  int polls = 0;
  while (client.last_applied_sequence() < 5 && polls < 10) {
    EXPECT_EQ(client.poll_now(t), 1u);  // one proof-verified page per poll
    t += 3600;
    ++polls;
  }
  EXPECT_EQ(polls, 5);
  EXPECT_EQ(client.last_applied_sequence(), 5u);
  EXPECT_EQ(client.pinned_tree_root(), feed.tree_head().root_hash);
  EXPECT_EQ(client.stats().proof_failures, 0u);
  EXPECT_EQ(client.stats().updates_applied, 5u);
}

TEST(RsfClientMerkle, CorruptProofsAreClassifiedAndNeverAdopted) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(2), kNow, "r1");
  feed.publish(store_with(3), kNow + 10, "r2");

  DirectTransport direct(feed);
  FaultProfile profile;
  profile.corrupt_proof = 1.0;
  FaultyTransport faulty(direct, profile, /*seed=*/11);
  RsfClient client(faulty, 3600);

  // Every poll's proof is damaged: the client rejects before adopting
  // anything, counts the distinct kBadProof kind, and — after the
  // quarantine threshold — stops re-fetching the poisoned head.
  std::int64_t t = kNow + 100;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.poll_now(t), 0u);
    t += 3600;
  }
  EXPECT_EQ(client.stats().proof_failures, 3u);
  EXPECT_EQ(client.stats().transport_error(TransportErrorKind::kBadProof), 3u);
  EXPECT_EQ(client.stats().updates_applied, 0u);
  EXPECT_EQ(client.last_applied_sequence(), 0u);
  EXPECT_EQ(client.health(), ClientHealth::kDegraded);

  // Head 2 is quarantined now; even a clean poll skips it.
  faulty.set_profile(FaultProfile{});
  EXPECT_EQ(client.poll_now(t), 0u);
  EXPECT_EQ(client.stats().quarantine_skips, 1u);

  // A newer publication is a fresh head: the client adopts the full run
  // and the superseded quarantine entry is dropped.
  feed.publish(store_with(4), t, "r3");
  t += 3600;
  EXPECT_EQ(client.poll_now(t), 3u);
  EXPECT_EQ(client.last_applied_sequence(), 3u);
  EXPECT_EQ(client.stats().quarantine_size, 0u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
}

TEST(RsfClientMerkle, EqualSizeDifferentRootIsARollback) {
  // Two publishers with the same feed name hold the same (deterministic)
  // key but different histories: a split view. Sequence numbers cannot
  // tell them apart at equal size — the pinned root must.
  SimSig registry;
  Feed honest("twin", registry);
  honest.publish(store_with(2, "Honest"), kNow, "r1");
  honest.publish(store_with(3, "Honest"), kNow + 10, "r2");
  Feed forked("twin", registry);
  forked.publish(store_with(2, "Forked"), kNow, "r1");
  forked.publish(store_with(3, "Forked"), kNow + 10, "r2");
  ASSERT_NE(honest.tree_head().root_hash, forked.tree_head().root_hash);

  SwitchableTransport transport(honest, forked);
  RsfClient client(transport, 3600);
  ASSERT_EQ(client.poll_now(kNow + 20), 2u);
  const ctlog::Hash pinned = client.pinned_tree_root();

  transport.serve_second(true);
  EXPECT_EQ(client.poll_now(kNow + 3620), 0u);
  EXPECT_EQ(client.stats().transport_error(TransportErrorKind::kRollback), 1u);
  EXPECT_EQ(client.last_applied_sequence(), 2u);
  EXPECT_EQ(client.pinned_tree_root(), pinned);
  EXPECT_EQ(client.health(), ClientHealth::kDegraded);

  // Back on the honest view the pinned root matches again: a verified
  // no-change, which clears the suspicion.
  transport.serve_second(false);
  EXPECT_EQ(client.poll_now(kNow + 7220), 0u);
  EXPECT_EQ(client.stats().verified_no_change, 1u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
}

TEST(RsfClientMerkle, RootVerifiedNoChangeClearsRollbackSuspicion) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(2), kNow, "r1");
  feed.publish(store_with(3), kNow + 10, "r2");

  DirectTransport direct(feed);
  FaultProfile profile;
  profile.rollback = 1.0;
  FaultyTransport faulty(direct, profile, /*seed=*/5);
  RsfClient client(faulty, 3600);
  ASSERT_EQ(client.poll_now(kNow + 20), 2u);

  // Every poll is rolled back to a head strictly below the pin.
  EXPECT_EQ(client.poll_now(kNow + 3620), 0u);
  EXPECT_GE(client.stats().transport_error(TransportErrorKind::kRollback), 1u);
  EXPECT_EQ(client.health(), ClientHealth::kDegraded);

  // On the merkle path an equal-size head is only trusted because its
  // root matches the pin — that IS our own verified history, so the
  // contact is healthy again even right after the rollback attempt.
  faulty.set_profile(FaultProfile{});
  EXPECT_EQ(client.poll_now(kNow + 7220), 0u);
  EXPECT_EQ(client.stats().verified_no_change, 1u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
}

// Satellite regression: on the LEGACY path an equal-sequence head right
// after a rollback attempt is exactly what a continued replay looks like.
// Pre-fix, the client treated it as a healthy no-change poll — resetting
// backoff and refreshing last-contact, so a replaying cache could hold a
// client on its own head forever while looking healthy.
TEST(RsfClientLegacy, EqualHeadReplayAfterRollbackStaysAFailure) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with(2), kNow - 200, "r1");
  feed.publish(store_with(3), kNow - 100, "r2");

  ForcedHeadTransport transport(feed);
  RetryPolicy retry;
  retry.jitter = 0;  // deterministic backoff arithmetic
  RsfClient client(transport, 3600, MergePolicy::kPrimaryWins,
                   Transport::kFullSnapshot, retry);
  client.set_poll_path(PollPath::kLegacy);
  ASSERT_EQ(client.poll_now(kNow), 2u);
  ASSERT_EQ(client.last_applied_sequence(), 2u);

  // Rollback attempt: the advertised head drops below the verified pin.
  transport.forced_head = 1;
  const std::int64_t t1 = kNow + 3600;
  EXPECT_EQ(client.poll_now(t1), 0u);
  EXPECT_EQ(client.stats().transport_error(TransportErrorKind::kRollback), 1u);
  EXPECT_EQ(client.next_poll_time(), t1 + 60);  // first backoff step
  EXPECT_EQ(client.health(), ClientHealth::kDegraded);

  // The replay continues at the client's own head. This must NOT count as
  // a healthy poll: backoff keeps growing (60 -> 120) and last-contact is
  // not refreshed (staleness keeps accruing from the adoption).
  transport.forced_head = 2;
  const std::int64_t t2 = t1 + 60;
  EXPECT_EQ(client.poll_now(t2), 0u);
  EXPECT_EQ(client.stats().transport_error(TransportErrorKind::kRollback), 2u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.next_poll_time(), t2 + 120);  // NOT reset to interval
  EXPECT_EQ(client.health(), ClientHealth::kDegraded);
  EXPECT_EQ(client.stats().seconds_stale, t2 - kNow);
  EXPECT_EQ(client.stats().updates_applied, 2u);

  // Only a strictly newer verified run clears the suspicion on this path.
  transport.forced_head = 0;
  feed.publish(store_with(4), t2, "r3");
  const std::int64_t t3 = t2 + 120;
  EXPECT_EQ(client.poll_now(t3), 1u);
  EXPECT_EQ(client.last_applied_sequence(), 3u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
  EXPECT_EQ(client.next_poll_time(), t3 + 3600);  // backoff reset

  // And a LEGITIMATE equal-head poll afterwards is a plain no-change.
  const std::int64_t t4 = t3 + 3600;
  EXPECT_EQ(client.poll_now(t4), 0u);
  EXPECT_EQ(client.stats().transport_error(TransportErrorKind::kRollback), 2u);
  EXPECT_EQ(client.health(), ClientHealth::kHealthy);
}

// Satellite regression: the fleet simulator dates adoption at the fetch
// instant PLUS the client-side verify step. A two-client fixture makes the
// percentile arithmetic exact, and sweeping verify_latency pins that the
// percentiles move with it — dated at fetch time they would be invariant.
TEST(FleetSimulation, TwoClientFixturePinsAdoptionArithmetic) {
  FleetConfig config;
  config.seed = 7;
  config.num_clients = 2;
  config.poll_interval = 3600;
  config.poll_jitter = 0;  // poll phases are the only randomness left
  config.lead_time = 86400;
  config.verify_latency = 2;

  // Replay the simulator's per-client RNG derivation: client i's poll
  // phase is fork(i).uniform(interval). With zero jitter every poll lands
  // on phase + k*interval, so the first poll at or after the incident is
  // at phase + lead_time exactly.
  Rng fleet(config.seed);
  std::int64_t phase0 =
      static_cast<std::int64_t>(fleet.fork(0).uniform(3600));
  std::int64_t phase1 =
      static_cast<std::int64_t>(fleet.fork(1).uniform(3600));
  const std::int64_t slower = std::max(phase0, phase1);

  FleetReport report = run_fleet_simulation(config);
  EXPECT_EQ(report.clients, 2u);
  // 24 no-change polls per client over the one-day lead window.
  EXPECT_EQ(report.polls_no_change, 48u);
  EXPECT_EQ(report.bytes_no_change,
            48u * report.no_change_poll_bytes);
  EXPECT_EQ(report.bytes_emergency, 2u * report.emergency_poll_bytes);
  // Both poll-cost figures come from real feed_fetch responses; the
  // emergency poll carries proofs + a delta range and must dominate.
  EXPECT_GT(report.no_change_poll_bytes, 0u);
  EXPECT_GT(report.emergency_poll_bytes, report.no_change_poll_bytes);

  // Nearest-rank percentiles over two samples resolve to the later one.
  EXPECT_EQ(report.adoption_p50, slower + config.verify_latency);
  EXPECT_EQ(report.adoption_p99, slower + config.verify_latency);
  EXPECT_EQ(report.adoption_max, slower + config.verify_latency);
}

TEST(FleetSimulation, AdoptionIsDatedAtVerifyNotFetch) {
  FleetConfig config;
  config.seed = 7;
  config.num_clients = 2;
  config.poll_jitter = 0;

  config.verify_latency = 0;
  FleetReport fetch_dated = run_fleet_simulation(config);
  config.verify_latency = 30;
  FleetReport verify_dated = run_fleet_simulation(config);

  // Same schedules, same fetches — every adoption statistic must shift by
  // exactly the verify step. Fetch-dated percentiles would not move.
  EXPECT_EQ(verify_dated.adoption_p50, fetch_dated.adoption_p50 + 30);
  EXPECT_EQ(verify_dated.adoption_p99, fetch_dated.adoption_p99 + 30);
  EXPECT_EQ(verify_dated.adoption_max, fetch_dated.adoption_max + 30);
  EXPECT_EQ(verify_dated.bytes_no_change, fetch_dated.bytes_no_change);
}

TEST(FleetSimulation, NoChangePollBytesAreFlatAcrossFleetAndHistory) {
  // O(1) acceptance pin at the simulator level: the per-poll no-change
  // cost is the signed tree head, independent of fleet size.
  FleetConfig small;
  small.num_clients = 100;
  FleetConfig large;
  large.num_clients = 10000;
  FleetReport a = run_fleet_simulation(small);
  FleetReport b = run_fleet_simulation(large);
  EXPECT_EQ(a.no_change_poll_bytes, b.no_change_poll_bytes);
  EXPECT_GT(a.no_change_poll_bytes, 0u);
  // Egress scales linearly with the fleet; the per-poll figure does not.
  EXPECT_GT(b.bytes_no_change, a.bytes_no_change);
}

}  // namespace
}  // namespace anchor::rsf
