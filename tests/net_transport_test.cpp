#include "net/transport.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace anchor::net {
namespace {

TEST(Frame, EncodeDecodeRoundTrip) {
  Message message;
  message.type = MsgType::kCertificate;
  message.payload = to_bytes("hello certificates");
  Bytes frame = encode_frame(message);
  EXPECT_EQ(frame.size(), 5 + message.payload.size());
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  ASSERT_TRUE(decoded.value().complete);
  EXPECT_EQ(decoded.value().message.type, MsgType::kCertificate);
  EXPECT_EQ(decoded.value().message.payload, to_bytes("hello certificates"));
  EXPECT_TRUE(frame.empty());  // consumed
}

TEST(Frame, EmptyPayload) {
  Message message;
  message.type = MsgType::kServerHello;
  Bytes frame = encode_frame(message);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.value().complete);
  EXPECT_TRUE(decoded.value().message.payload.empty());
}

TEST(Frame, PartialFrameWaitsForMoreBytes) {
  Message message;
  message.type = MsgType::kFinished;
  message.payload = Bytes(100, 0x42);
  Bytes full = encode_frame(message);
  Bytes partial(full.begin(), full.begin() + 50);
  auto decoded = decode_frame(partial);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().complete);
  EXPECT_EQ(partial.size(), 50u);  // untouched
  // Complete it.
  partial.insert(partial.end(), full.begin() + 50, full.end());
  decoded = decode_frame(partial);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().complete);
}

TEST(Frame, TwoFramesDecodeInOrder) {
  Message a;
  a.type = MsgType::kClientHello;
  a.payload = to_bytes("one");
  Message b;
  b.type = MsgType::kAlert;
  b.payload = to_bytes("two");
  Bytes buffer = encode_frame(a);
  append(buffer, BytesView(encode_frame(b)));
  auto first = decode_frame(buffer);
  ASSERT_TRUE(first.ok() && first.value().complete);
  EXPECT_EQ(first.value().message.payload, to_bytes("one"));
  auto second = decode_frame(buffer);
  ASSERT_TRUE(second.ok() && second.value().complete);
  EXPECT_EQ(second.value().message.payload, to_bytes("two"));
  EXPECT_TRUE(buffer.empty());
}

TEST(Frame, RejectsUnknownType) {
  Bytes bad{0x77, 0, 0, 0, 0};
  EXPECT_FALSE(decode_frame(bad).ok());
}

TEST(Frame, RejectsOversizedLength) {
  Bytes bad{static_cast<std::uint8_t>(MsgType::kCertificate), 0xff, 0xff,
            0xff, 0xff};
  EXPECT_FALSE(decode_frame(bad).ok());
}

TEST(Frame, MaxFrameBoundaryIsInclusive) {
  // A payload of exactly kMaxFrameBytes is legal and round-trips…
  Message message;
  message.type = MsgType::kRequest;
  message.payload = Bytes(kMaxFrameBytes, 0x5a);
  Bytes frame = encode_frame(message);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  ASSERT_TRUE(decoded.value().complete);
  EXPECT_EQ(decoded.value().message.payload.size(), kMaxFrameBytes);
  EXPECT_TRUE(frame.empty());

  // …while one byte more is rejected, and the rejection consumes nothing:
  // the caller still holds the full header and can resynchronise from it.
  const std::uint32_t over = static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
  Bytes bad{static_cast<std::uint8_t>(MsgType::kRequest),
            static_cast<std::uint8_t>(over >> 24),
            static_cast<std::uint8_t>(over >> 16),
            static_cast<std::uint8_t>(over >> 8),
            static_cast<std::uint8_t>(over)};
  const Bytes before = bad;
  EXPECT_FALSE(decode_frame(bad).ok());
  EXPECT_EQ(bad, before);
}

TEST(Frame, RequestResponseTypesAreValid) {
  for (MsgType type : {MsgType::kRequest, MsgType::kResponse}) {
    Message message;
    message.type = type;
    message.payload = to_bytes("rpc");
    Bytes frame = encode_frame(message);
    auto decoded = decode_frame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    ASSERT_TRUE(decoded.value().complete);
    EXPECT_EQ(decoded.value().message.type, type);
  }
}

TEST(Channel, MessagesFlowBothWays) {
  DuplexChannel channel;
  Message ping;
  ping.type = MsgType::kClientHello;
  ping.payload = to_bytes("ping");
  channel.client().send(ping);
  ASSERT_TRUE(channel.server().has_pending());
  auto received = channel.server().receive();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().payload, to_bytes("ping"));

  Message pong;
  pong.type = MsgType::kServerHello;
  channel.server().send(pong);
  auto back = channel.client().receive();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().type, MsgType::kServerHello);
}

TEST(Channel, ReceiveOnEmptyQueueFails) {
  DuplexChannel channel;
  EXPECT_FALSE(channel.client().receive().ok());
  EXPECT_FALSE(channel.server().receive().ok());
}

TEST(CertificateList, RoundTrip) {
  Rng rng(5);
  std::vector<Bytes> ders{rng.random_bytes(100), rng.random_bytes(1),
                          rng.random_bytes(900)};
  Bytes payload = encode_certificate_list(ders);
  auto decoded = decode_certificate_list(BytesView(payload));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), ders);
}

TEST(CertificateList, RejectsMalformed) {
  EXPECT_FALSE(decode_certificate_list(Bytes{}).ok());          // empty list
  EXPECT_FALSE(decode_certificate_list(Bytes{0, 0}).ok());      // short length
  EXPECT_FALSE(decode_certificate_list(Bytes{0, 0, 0, 5, 1}).ok());  // short body
  EXPECT_FALSE(decode_certificate_list(Bytes{0, 0, 0, 0}).ok());     // zero len
}

}  // namespace
}  // namespace anchor::net
