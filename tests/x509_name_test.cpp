#include "x509/name.hpp"

#include <gtest/gtest.h>

#include "x509/oids.hpp"

namespace anchor::x509 {
namespace {

TEST(Name, MakeOrdersAttributesConventionally) {
  DistinguishedName dn = DistinguishedName::make("Example Root", "Example Org", "US");
  EXPECT_EQ(dn.common_name(), "Example Root");
  EXPECT_EQ(dn.organization(), "Example Org");
  EXPECT_EQ(dn.to_string(), "C=US, O=Example Org, CN=Example Root");
}

TEST(Name, MakeOmitsEmptyFields) {
  DistinguishedName dn = DistinguishedName::make("Only CN");
  EXPECT_EQ(dn.attributes().size(), 1u);
  EXPECT_EQ(dn.to_string(), "CN=Only CN");
}

TEST(Name, EmptyName) {
  DistinguishedName dn;
  EXPECT_TRUE(dn.empty());
  EXPECT_EQ(dn.common_name(), "");
  EXPECT_EQ(dn.to_string(), "");
}

TEST(Name, AddCustomAttribute) {
  DistinguishedName dn;
  dn.add(oids::organizational_unit(), "Engineering");
  EXPECT_EQ(dn.to_string(), "OU=Engineering");
}

TEST(Name, EncodeDecodeRoundTrip) {
  DistinguishedName dn = DistinguishedName::make("Róot ßA", "Örg", "DE");
  asn1::Writer w;
  dn.encode(w);
  asn1::Reader r(BytesView(w.data()));
  DistinguishedName out;
  ASSERT_TRUE(DistinguishedName::decode(r, out).ok());
  EXPECT_EQ(out, dn);
}

TEST(Name, EqualityIsOrderSensitive) {
  DistinguishedName a;
  a.add(oids::common_name(), "X").add(oids::organization(), "Y");
  DistinguishedName b;
  b.add(oids::organization(), "Y").add(oids::common_name(), "X");
  EXPECT_NE(a, b);  // RDN sequences are ordered
  DistinguishedName c;
  c.add(oids::common_name(), "X").add(oids::organization(), "Y");
  EXPECT_EQ(a, c);
}

TEST(Name, DecodeRejectsGarbage) {
  Bytes garbage{0x02, 0x01, 0x05};  // INTEGER, not SEQUENCE
  asn1::Reader r{BytesView(garbage)};
  DistinguishedName out;
  EXPECT_FALSE(DistinguishedName::decode(r, out).ok());
}

}  // namespace
}  // namespace anchor::x509
