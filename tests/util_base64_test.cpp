#include "util/base64.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace anchor {
namespace {

// RFC 4648 §10 test vectors.
TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  Bytes out;
  ASSERT_TRUE(base64_decode("Zm9vYmFy", out));
  EXPECT_EQ(to_string(out), "foobar");
  ASSERT_TRUE(base64_decode("Zg==", out));
  EXPECT_EQ(to_string(out), "f");
  ASSERT_TRUE(base64_decode("", out));
  EXPECT_TRUE(out.empty());
}

TEST(Base64, DecodeRejectsMalformed) {
  Bytes out;
  EXPECT_FALSE(base64_decode("Zg=", out));     // bad length
  EXPECT_FALSE(base64_decode("Z===", out));    // too much padding
  EXPECT_FALSE(base64_decode("Zg==Zg==", out)); // data after padding
  EXPECT_FALSE(base64_decode("!@#$", out));    // non-alphabet
  EXPECT_FALSE(base64_decode("AAA\n", out));   // whitespace is caller's job
}

TEST(Base64, RoundTripSweep) {
  Rng rng(7);
  for (std::size_t len = 0; len < 100; ++len) {
    Bytes data = rng.random_bytes(len);
    Bytes back;
    ASSERT_TRUE(base64_decode(base64_encode(data), back)) << "len=" << len;
    EXPECT_EQ(data, back);
  }
}

TEST(Pem, EncodeDecodeRoundTrip) {
  Rng rng(21);
  Bytes der = rng.random_bytes(200);
  std::string pem = pem_encode("CERTIFICATE", der);
  EXPECT_NE(pem.find("-----BEGIN CERTIFICATE-----"), std::string::npos);
  EXPECT_NE(pem.find("-----END CERTIFICATE-----"), std::string::npos);
  Bytes decoded;
  ASSERT_TRUE(pem_decode(pem, "CERTIFICATE", decoded));
  EXPECT_EQ(decoded, der);
}

TEST(Pem, LinesAreWrappedAt64Columns) {
  Bytes der(100, 0xab);
  std::string pem = pem_encode("X", der);
  for (const char* line = pem.c_str(); *line;) {
    const char* end = strchr(line, '\n');
    ASSERT_NE(end, nullptr);
    EXPECT_LE(end - line, 64 + 16);  // header lines slightly longer
    line = end + 1;
  }
}

TEST(Pem, DecodeSelectsCorrectLabel) {
  Bytes a{1, 2, 3};
  Bytes b{4, 5, 6};
  std::string text = pem_encode("FIRST", a) + pem_encode("SECOND", b);
  Bytes out;
  ASSERT_TRUE(pem_decode(text, "SECOND", out));
  EXPECT_EQ(out, b);
  ASSERT_TRUE(pem_decode(text, "FIRST", out));
  EXPECT_EQ(out, a);
  EXPECT_FALSE(pem_decode(text, "THIRD", out));
}

TEST(Pem, DecodeIteratesConcatenatedBlocks) {
  Bytes a{1, 2, 3};
  Bytes b{9, 8, 7};
  std::string text = pem_encode("CERTIFICATE", a) + pem_encode("CERTIFICATE", b);
  Bytes out;
  std::size_t rest = 0;
  ASSERT_TRUE(pem_decode(text, "CERTIFICATE", out, &rest));
  EXPECT_EQ(out, a);
  ASSERT_TRUE(pem_decode(std::string_view(text).substr(rest), "CERTIFICATE", out));
  EXPECT_EQ(out, b);
}

TEST(Pem, DecodeRejectsTruncatedBlock) {
  Bytes der{1, 2, 3};
  std::string pem = pem_encode("CERTIFICATE", der);
  std::string truncated = pem.substr(0, pem.size() / 2);
  Bytes out;
  EXPECT_FALSE(pem_decode(truncated, "CERTIFICATE", out));
}

}  // namespace
}  // namespace anchor
