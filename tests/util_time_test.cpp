#include "util/time.hpp"

#include <gtest/gtest.h>

namespace anchor {
namespace {

TEST(Time, EpochIsZero) {
  EXPECT_EQ(to_unix(CivilTime{1970, 1, 1, 0, 0, 0}), 0);
}

TEST(Time, KnownTimestamps) {
  // The paper's Listing 1 constant: November 30 2022 05:00 UTC.
  EXPECT_EQ(to_unix(CivilTime{2022, 11, 30, 5, 0, 0}), 1669784400);
  // The paper's Listing 2 constant: June 1 2016 04:00 UTC.
  EXPECT_EQ(to_unix(CivilTime{2016, 6, 1, 4, 0, 0}), 1464753600);
  EXPECT_EQ(unix_date(2000, 1, 1), 946684800);
  EXPECT_EQ(unix_date(2038, 1, 19), 2147472000);
}

TEST(Time, PreEpochDates) {
  EXPECT_EQ(unix_date(1969, 12, 31), -86400);
  CivilTime c = from_unix(-86400);
  EXPECT_EQ(c.year, 1969);
  EXPECT_EQ(c.month, 12);
  EXPECT_EQ(c.day, 31);
}

TEST(Time, RoundTripSweep) {
  // Every 10007 seconds across several decades, conversion round-trips.
  for (std::int64_t t = -500000000; t < 4102444800LL; t += 100000007LL) {
    EXPECT_EQ(to_unix(from_unix(t)), t) << "t=" << t;
  }
}

TEST(Time, LeapYearHandling) {
  EXPECT_EQ(unix_date(2020, 3, 1) - unix_date(2020, 2, 28), 2 * 86400);
  EXPECT_EQ(unix_date(2021, 3, 1) - unix_date(2021, 2, 28), 86400);
  // 2000 was a leap year (divisible by 400), 1900 was not.
  EXPECT_EQ(unix_date(2000, 3, 1) - unix_date(2000, 2, 28), 2 * 86400);
  EXPECT_EQ(unix_date(1900, 3, 1) - unix_date(1900, 2, 28), 86400);
}

TEST(Time, Iso8601Format) {
  EXPECT_EQ(format_iso8601(0), "1970-01-01T00:00:00Z");
  EXPECT_EQ(format_iso8601(1669784400), "2022-11-30T05:00:00Z");
}

TEST(Time, Iso8601Parse) {
  std::int64_t t = 0;
  ASSERT_TRUE(parse_iso8601("2022-11-30T05:00:00Z", t));
  EXPECT_EQ(t, 1669784400);
  ASSERT_TRUE(parse_iso8601("1970-01-01T00:00:00Z", t));
  EXPECT_EQ(t, 0);
}

TEST(Time, Iso8601ParseRejectsMalformed) {
  std::int64_t t = 0;
  EXPECT_FALSE(parse_iso8601("2022-11-30 05:00:00Z", t));  // no 'T'
  EXPECT_FALSE(parse_iso8601("2022-11-30T05:00:00", t));   // no 'Z'
  EXPECT_FALSE(parse_iso8601("2022-13-30T05:00:00Z", t));  // month 13
  EXPECT_FALSE(parse_iso8601("2022-11-32T05:00:00Z", t));  // day 32
  EXPECT_FALSE(parse_iso8601("22-11-30T05:00:00Z", t));    // short year
  EXPECT_FALSE(parse_iso8601("2022-11-30T24:00:00Z", t));  // hour 24
  EXPECT_FALSE(parse_iso8601("", t));
}

TEST(Time, FormatParseRoundTrip) {
  for (std::int64_t t = 0; t < 4000000000LL; t += 86400007LL) {
    std::int64_t back = -1;
    ASSERT_TRUE(parse_iso8601(format_iso8601(t), back));
    EXPECT_EQ(back, t);
  }
}

}  // namespace
}  // namespace anchor
