#include "ctlog/merkle.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace anchor::ctlog {
namespace {

Bytes entry(int i) { return to_bytes("entry-" + std::to_string(i)); }

MerkleTree tree_of(int n) {
  MerkleTree tree;
  for (int i = 0; i < n; ++i) tree.append(BytesView(entry(i)));
  return tree;
}

TEST(Merkle, EmptyTreeHashIsSha256OfNothing) {
  EXPECT_EQ(to_hex(BytesView(empty_tree_hash().data(), 32)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(MerkleTree().root(), empty_tree_hash());
}

TEST(Merkle, Rfc6962DomainSeparation) {
  // Leaf and node prefixes differ, so a leaf can never collide with an
  // interior node over the same bytes.
  Bytes data(64, 0xab);
  Hash as_leaf = leaf_hash(BytesView(data));
  Hash left;
  Hash right;
  std::copy(data.begin(), data.begin() + 32, left.begin());
  std::copy(data.begin() + 32, data.end(), right.begin());
  EXPECT_NE(as_leaf, node_hash(left, right));
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  MerkleTree tree = tree_of(1);
  EXPECT_EQ(tree.root(), leaf_hash(BytesView(entry(0))));
  EXPECT_TRUE(tree.inclusion_proof(0, 1).empty());
  EXPECT_TRUE(verify_inclusion(tree.leaf(0), 0, 1, {}, tree.root()));
}

TEST(Merkle, RootMatchesManualComputationForThreeLeaves) {
  // MTH(D[3]) = H(0x01 || H(0x01 || L0 || L1) || L2)
  MerkleTree tree = tree_of(3);
  Hash l0 = leaf_hash(BytesView(entry(0)));
  Hash l1 = leaf_hash(BytesView(entry(1)));
  Hash l2 = leaf_hash(BytesView(entry(2)));
  EXPECT_EQ(tree.root(), node_hash(node_hash(l0, l1), l2));
}

TEST(Merkle, InclusionProofsVerifyForAllIndicesAndSizes) {
  // Exhaustive sweep: every (index, tree_size) pair up to 70 leaves.
  MerkleTree tree = tree_of(70);
  for (std::uint64_t size = 1; size <= 70; ++size) {
    Hash root = tree.root_at(size);
    for (std::uint64_t index = 0; index < size; ++index) {
      auto path = tree.inclusion_proof(index, size);
      EXPECT_TRUE(verify_inclusion(tree.leaf(index), index, size, path, root))
          << "index=" << index << " size=" << size;
    }
  }
}

TEST(Merkle, InclusionProofRejectsWrongLeaf) {
  MerkleTree tree = tree_of(20);
  Hash root = tree.root();
  auto path = tree.inclusion_proof(7, 20);
  Hash wrong = leaf_hash(BytesView(entry(8)));
  EXPECT_FALSE(verify_inclusion(wrong, 7, 20, path, root));
}

TEST(Merkle, InclusionProofRejectsWrongIndex) {
  MerkleTree tree = tree_of(20);
  Hash root = tree.root();
  auto path = tree.inclusion_proof(7, 20);
  EXPECT_FALSE(verify_inclusion(tree.leaf(7), 8, 20, path, root));
  EXPECT_FALSE(verify_inclusion(tree.leaf(7), 25, 20, path, root));
  // NB: a *shape-compatible* wrong size (e.g. 21 with the size-20 root) can
  // pass the structural check — the RFC 9162 verifier binds (size, root)
  // through the signed STH, not through the path shape. The genuine root
  // for the claimed size never matches:
  EXPECT_FALSE(verify_inclusion(tree.leaf(7), 7, 21,
                                tree_of(21).inclusion_proof(7, 21), root));
}

TEST(Merkle, InclusionProofRejectsTamperedPath) {
  MerkleTree tree = tree_of(33);
  Hash root = tree.root();
  auto path = tree.inclusion_proof(13, 33);
  ASSERT_FALSE(path.empty());
  path[0][0] ^= 0x01;
  EXPECT_FALSE(verify_inclusion(tree.leaf(13), 13, 33, path, root));
}

TEST(Merkle, InclusionProofRejectsTruncatedOrPaddedPath) {
  MerkleTree tree = tree_of(33);
  Hash root = tree.root();
  auto path = tree.inclusion_proof(13, 33);
  auto truncated = path;
  truncated.pop_back();
  EXPECT_FALSE(verify_inclusion(tree.leaf(13), 13, 33, truncated, root));
  auto padded = path;
  padded.push_back(empty_tree_hash());
  EXPECT_FALSE(verify_inclusion(tree.leaf(13), 13, 33, padded, root));
}

TEST(Merkle, ConsistencyProofsVerifyForAllSizePairs) {
  MerkleTree tree = tree_of(70);
  for (std::uint64_t from = 1; from <= 70; ++from) {
    Hash from_root = tree.root_at(from);
    for (std::uint64_t to = from; to <= 70; ++to) {
      Hash to_root = tree.root_at(to);
      auto proof = tree.consistency_proof(from, to);
      EXPECT_TRUE(verify_consistency(from, to, from_root, to_root, proof))
          << "from=" << from << " to=" << to;
    }
  }
}

TEST(Merkle, ConsistencyFromEmptyTree) {
  MerkleTree tree = tree_of(5);
  EXPECT_TRUE(verify_consistency(0, 5, empty_tree_hash(), tree.root(), {}));
  Hash not_empty = tree.root();
  EXPECT_FALSE(verify_consistency(0, 5, not_empty, tree.root(), {}));
}

TEST(Merkle, ConsistencyRejectsRewrittenHistory) {
  // Build two trees sharing a prefix length but different early entries.
  MerkleTree honest = tree_of(40);
  MerkleTree rewritten;
  for (int i = 0; i < 40; ++i) {
    Bytes e = i == 3 ? to_bytes("EVIL") : entry(i);
    rewritten.append(BytesView(e));
  }
  Hash old_root = honest.root_at(10);
  Hash new_root = rewritten.root_at(40);
  auto proof = rewritten.consistency_proof(10, 40);
  EXPECT_FALSE(verify_consistency(10, 40, old_root, new_root, proof));
  // The honest continuation verifies.
  EXPECT_TRUE(verify_consistency(10, 40, old_root, honest.root_at(40),
                                 honest.consistency_proof(10, 40)));
}

TEST(Merkle, ConsistencyRejectsTamperedProof) {
  MerkleTree tree = tree_of(23);
  auto proof = tree.consistency_proof(9, 23);
  ASSERT_FALSE(proof.empty());
  proof[0][5] ^= 0xff;
  EXPECT_FALSE(
      verify_consistency(9, 23, tree.root_at(9), tree.root_at(23), proof));
}

TEST(Merkle, SameSizeConsistencyNeedsEqualRootsAndEmptyProof) {
  MerkleTree tree = tree_of(8);
  EXPECT_TRUE(verify_consistency(8, 8, tree.root(), tree.root(), {}));
  EXPECT_FALSE(verify_consistency(8, 8, tree.root(), empty_tree_hash(), {}));
  EXPECT_FALSE(
      verify_consistency(8, 8, tree.root(), tree.root(), {empty_tree_hash()}));
}

TEST(Merkle, RootsChangeWithEveryAppend) {
  MerkleTree tree;
  Hash previous = tree.root();
  for (int i = 0; i < 20; ++i) {
    tree.append(BytesView(entry(i)));
    Hash current = tree.root();
    EXPECT_NE(current, previous);
    previous = current;
  }
}

TEST(Merkle, RandomizedCrossTreeRejection) {
  // Proofs from one tree must not verify against roots of a different one.
  Rng rng(4242);
  MerkleTree a;
  MerkleTree b;
  for (int i = 0; i < 50; ++i) {
    a.append(BytesView(rng.random_bytes(20)));
    b.append(BytesView(rng.random_bytes(20)));
  }
  for (std::uint64_t index : {0ull, 7ull, 31ull, 49ull}) {
    auto path = a.inclusion_proof(index, 50);
    EXPECT_FALSE(verify_inclusion(a.leaf(index), index, 50, path, b.root()));
  }
}

}  // namespace
}  // namespace anchor::ctlog
