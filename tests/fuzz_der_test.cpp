// Mutation-fuzz sweeps over the DER parsing stack: random byte flips,
// truncations and extensions of valid certificate encodings must never
// crash, hang, or accept trailing garbage — they either fail cleanly or
// produce a well-formed certificate with a different fingerprint. Run
// under ASan/UBSan (build-asan/) these double as memory-safety tests.
#include <gtest/gtest.h>

#include "rootstore/store.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "rsf/delta.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor {
namespace {

x509::CertPtr rich_cert() {
  SimKeyPair key = SimSig::keygen("Fuzz CA");
  x509::KeyUsage ku;
  ku.set(x509::KeyUsageBit::kDigitalSignature);
  x509::NameConstraints nc;
  nc.permitted_dns = {"example.com"};
  nc.excluded_dns = {"bad.example.com"};
  return x509::CertificateBuilder()
      .serial(0xdeadbeef)
      .subject(x509::DistinguishedName::make("fuzz.example.com", "Fuzz Org", "US"))
      .issuer(x509::DistinguishedName::make("Fuzz CA", "Fuzz Org"))
      .validity(unix_date(2023, 1, 1), unix_date(2024, 1, 1))
      .public_key(key.key_id)
      .key_usage(ku)
      .extended_key_usage({x509::oids::kp_server_auth()})
      .dns_names({"fuzz.example.com", "*.fuzz.example.com"})
      .name_constraints(nc)
      .ev()
      .subject_key_id(Bytes{1, 2, 3, 4})
      .sign(key)
      .take();
}

class DerMutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DerMutation, ByteFlipsNeverCrashAndNeverPreserveIdentity) {
  x509::CertPtr original = rich_cert();
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    Bytes mutated = original->der();
    int flips = 1 + static_cast<int>(rng.uniform(4));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = rng.uniform(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    auto reparsed = x509::Certificate::parse(BytesView(mutated));
    if (reparsed.ok()) {
      // Accepted mutants must at least be detected as different objects.
      EXPECT_NE(reparsed.value()->fingerprint(), original->fingerprint());
    }
  }
}

TEST_P(DerMutation, TruncationsAlwaysRejected) {
  x509::CertPtr original = rich_cert();
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t keep = rng.uniform(original->der().size());  // < full size
    Bytes truncated(original->der().begin(),
                    original->der().begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(x509::Certificate::parse(BytesView(truncated)).ok())
        << "keep=" << keep;
  }
}

TEST_P(DerMutation, AppendedGarbageAlwaysRejected) {
  x509::CertPtr original = rich_cert();
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    Bytes padded = original->der();
    Bytes junk = rng.random_bytes(1 + rng.uniform(16));
    append(padded, BytesView(junk));
    EXPECT_FALSE(x509::Certificate::parse(BytesView(padded)).ok());
  }
}

TEST_P(DerMutation, RandomBytesNeverParse) {
  Rng rng(GetParam() ^ 0x5eed);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes noise = rng.random_bytes(1 + rng.uniform(300));
    auto parsed = x509::Certificate::parse(BytesView(noise));
    // Random noise forming a valid v3 certificate is astronomically
    // unlikely; mostly we assert no crash. Tolerate the impossible.
    if (parsed.ok()) {
      EXPECT_EQ(parsed.value()->der(), noise);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerMutation,
                         ::testing::Values(101, 202, 303, 404, 505));

class TextFormatMutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TextFormatMutation, StoreDeserializeSurvivesMutations) {
  // Serialized stores with random line edits must fail cleanly or parse.
  SimKeyPair key = SimSig::keygen("Store Fuzz Root");
  rootstore::RootStore store;
  (void)store.add_trusted(rich_cert());
  store.distrust(std::string(64, 'a'), "why");
  store.attach_gcc(
      core::Gcc::create("g", std::string(64, 'b'),
                        "valid(C, \"TLS\") :- leaf(C, L).")
          .take());
  std::string serialized = store.serialize();

  Rng rng(GetParam());
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = serialized;
    int edits = 1 + static_cast<int>(rng.uniform(3));
    for (int e = 0; e < edits; ++e) {
      std::size_t pos = rng.uniform(mutated.size());
      switch (rng.uniform(3)) {
        case 0: mutated[pos] = static_cast<char>('!' + rng.uniform(90)); break;
        case 1: mutated.erase(pos, 1 + rng.uniform(8)); break;
        default: mutated.insert(pos, "x"); break;
      }
    }
    auto parsed = rootstore::RootStore::deserialize(mutated);
    (void)parsed;  // either verdict is fine; no crash, no hang
  }
}

TEST_P(TextFormatMutation, DeltaDeserializeSurvivesMutations) {
  rsf::StoreDelta delta;
  delta.distrust.emplace_back(std::string(64, 'c'), "incident");
  delta.forget.push_back(std::string(64, 'd'));
  delta.attach_gccs.push_back(
      core::Gcc::create("g", std::string(64, 'e'),
                        "valid(C, \"TLS\") :- leaf(C, L).")
          .take());
  std::string serialized = delta.serialize();

  Rng rng(GetParam() ^ 0xde17a);
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = serialized;
    std::size_t pos = rng.uniform(mutated.size());
    mutated[pos] = static_cast<char>('!' + rng.uniform(90));
    auto parsed = rsf::StoreDelta::deserialize(mutated);
    (void)parsed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextFormatMutation, ::testing::Values(7, 77));

class DatalogSourceMutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatalogSourceMutation, ParserSurvivesMutations) {
  const std::string source = R"(
june1st2016(1464753600).
exempt("aabbcc").
valid(Chain, _) :- leaf(Chain, Cert), notBefore(Cert, NB), june1st2016(T), NB < T.
valid(Chain, _) :- root(Chain, Root), signs(Root, Int), hash(Int, H), exempt(H).
bad(Chain) :- certAt(Chain, _, C), hash(C, H), revoked(H), \+EV(C).
)";
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = source;
    int edits = 1 + static_cast<int>(rng.uniform(4));
    for (int e = 0; e < edits; ++e) {
      std::size_t pos = rng.uniform(mutated.size());
      switch (rng.uniform(3)) {
        case 0: mutated[pos] = static_cast<char>(' ' + rng.uniform(95)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, static_cast<char>(' ' + rng.uniform(95))); break;
      }
    }
    auto program = datalog::parse_program(mutated);
    if (program.ok()) {
      // Whatever parsed must also survive validation and evaluation.
      auto evaluator = datalog::Evaluator::create(program.value());
      if (evaluator.ok()) {
        datalog::Database db;
        evaluator.value().run(db);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogSourceMutation,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace anchor
