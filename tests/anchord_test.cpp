// The anchord serving layer end to end: wire codec round trips, the
// concurrent session loop (pipelining, correlation-id matching, torn and
// malformed frames, overload and timeout fail-closed semantics), and the
// acceptance property that a verdict served over the wire is byte-identical
// to one computed on the direct VerifyService path.
#include "anchord/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "anchord/client.hpp"
#include "rsf/client.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::anchord {
namespace {

using chain::ErrorKind;
using chain::VerifyService;
using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

struct WirePki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("Wire Root");
  SimKeyPair int_key = SimSig::keygen("Wire Int");
  CertPtr root, intermediate;
  rootstore::RootStore store;
  static constexpr std::int64_t kNow = 1700000000;

  WirePki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Wire Root", "T"))
               .issuer(DistinguishedName::make("Wire Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("Wire Int", "T"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2039, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .sign(root_key)
                       .take();
    sigs.register_key(root_key);
    sigs.register_key(int_key);
    (void)store.add_trusted(root);
  }

  CertPtr leaf(const std::string& domain, bool ev = false) {
    SimKeyPair key = SimSig::keygen("wleaf" + domain);
    CertificateBuilder builder;
    builder.serial(3)
        .subject(DistinguishedName::make(domain))
        .issuer(intermediate->subject())
        .validity(kNow - 86400, kNow + 90 * 86400)
        .public_key(key.key_id)
        .dns_names({domain})
        .extended_key_usage({x509::oids::kp_server_auth()});
    if (ev) builder.ev();
    return builder.sign(int_key).take();
  }

  Request verify_request(const CertPtr& leaf_cert,
                         const std::string& hostname) const {
    Request request;
    request.verb = Verb::kVerify;
    request.usage = "TLS";
    request.time = kNow;
    request.hostname = hostname;
    request.leaf_der = leaf_cert->der();
    request.intermediates_der = {intermediate->der()};
    return request;
  }
};

// One server over one in-memory connection, with the serve loop on its own
// thread; close() on the client end shuts everything down.
struct Harness {
  WirePki pki;
  metrics::Registry registry;
  VerifyService service;
  VerbDispatcher::Backends backends;
  AnchordConfig config;
  std::unique_ptr<AnchordServer> server;
  ConduitPair conduits = make_memory_conduit();
  std::thread serve_thread;

  explicit Harness(AnchordConfig cfg = {})
      : service(pki.store, pki.sigs, {}, registry), config(std::move(cfg)) {
    backends.service = &service;
    backends.store = &pki.store;
    backends.registry = &registry;
    server = std::make_unique<AnchordServer>(backends, config, registry);
    serve_thread = std::thread([this] { server->serve(*conduits.second); });
  }

  ~Harness() {
    conduits.first->close();
    serve_thread.join();
  }

  Conduit& client_end() { return *conduits.first; }
};

// --- wire codec -----------------------------------------------------------

TEST(AnchordWire, RequestRoundTripsThroughCodec) {
  Request request;
  request.correlation_id = 0x1122334455667788ULL;
  request.verb = Verb::kVerify;
  request.usage = "TLS";
  request.time = -12345;  // negative times must survive the i64 encoding
  request.max_depth = 5;
  request.require_ev = true;
  request.check_signatures = false;
  request.run_gccs = true;
  request.hostname = "a.example.com";
  request.leaf_der = Bytes{0x30, 0x01, 0x02};
  request.intermediates_der = {Bytes{0x30, 0x00}, Bytes{}, Bytes{0xff}};

  net::Message message = encode_request(request);
  EXPECT_EQ(message.type, net::MsgType::kRequest);
  auto decoded = decode_request(message);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), request);
}

TEST(AnchordWire, ResponseRoundTripsThroughCodec) {
  Response response;
  response.correlation_id = 7;
  response.verb = Verb::kEvaluateGccs;
  response.kind = ErrorKind::kGccDenied;
  response.ok = false;
  response.stats = {3, 9, 2, 140, 5};
  response.detail = "gcc:no-ev";
  response.chain_der = {Bytes{0x30}, Bytes{0x31, 0x32}};

  net::Message message = encode_response(response);
  EXPECT_EQ(message.type, net::MsgType::kResponse);
  auto decoded = decode_response(message);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), response);
}

TEST(AnchordWire, BatchRequestAndResponseRoundTripThroughCodec) {
  Request request;
  request.correlation_id = 11;
  request.verb = Verb::kVerifyBatch;
  request.usage = "TLS";
  request.time = 1700000000;
  request.intermediates_der = {Bytes{0x30, 0x00}};
  request.batch = {{"a.example.com", Bytes{0x30, 0x01}},
                   {"", Bytes{}},
                   {"b.example.com", Bytes{0xff}}};
  auto decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), request);

  Response response;
  response.correlation_id = 11;
  response.verb = Verb::kVerifyBatch;
  response.ok = false;
  response.kind = ErrorKind::kHostnameMismatch;
  response.stats = {6, 4, 2, 80, 3};
  response.batch = {{ErrorKind::kOk, true, 3, 2, 1, 40, ""},
                    {ErrorKind::kHostnameMismatch, false, 0, 2, 1, 40,
                     "hostname mismatch"}};
  auto round = decode_response(encode_response(response));
  ASSERT_TRUE(round.ok()) << round.error();
  EXPECT_EQ(round.value(), response);

  // The batch section exists only for the batch verb: bytes appended to a
  // non-batch response stay trailing garbage, exactly as before the verb
  // existed.
  net::Message plain = encode_response(Response{});
  plain.payload.push_back(0x00);
  EXPECT_FALSE(decode_response(plain).ok());

  // Truncated batch section and out-of-taxonomy per-entry kind byte are
  // both strict errors.
  net::Message truncated = encode_response(response);
  truncated.payload.pop_back();
  EXPECT_FALSE(decode_response(truncated).ok());
}

TEST(AnchordWire, StrictDecodingRejectsDamage) {
  Request request;
  request.verb = Verb::kMetrics;
  net::Message good = encode_request(request);

  net::Message trailing = good;
  trailing.payload.push_back(0x00);
  EXPECT_FALSE(decode_request(trailing).ok());

  net::Message truncated = good;
  truncated.payload.pop_back();
  EXPECT_FALSE(decode_request(truncated).ok());

  net::Message bad_verb = good;
  bad_verb.payload[8] = 99;  // verb byte follows the 8-byte correlation id
  EXPECT_FALSE(decode_request(bad_verb).ok());

  net::Message wrong_type = good;
  wrong_type.type = net::MsgType::kCertificate;
  EXPECT_FALSE(decode_request(wrong_type).ok());

  // Responses: an error-kind byte outside the taxonomy is rejected.
  Response response;
  net::Message encoded = encode_response(response);
  encoded.payload[9] = 200;  // kind byte follows cid + verb
  EXPECT_FALSE(decode_response(encoded).ok());
}

TEST(AnchordWire, PeekCorrelationId) {
  Request request;
  request.correlation_id = 424242;
  net::Message message = encode_request(request);
  EXPECT_EQ(peek_correlation_id(BytesView(message.payload)), 424242u);
  EXPECT_EQ(peek_correlation_id(BytesView(Bytes{0x01, 0x02})), 0u);
}

// --- verbs over the wire --------------------------------------------------

TEST(AnchordServer, AllFourVerbsRoundTrip) {
  Harness h;
  AnchordClient client(h.client_end());

  // Verify: an accepted chain comes back ok with the path as DER.
  CertPtr good = h.pki.leaf("ok.example.com");
  auto verify = client.call(h.pki.verify_request(good, "ok.example.com"));
  ASSERT_TRUE(verify.ok()) << verify.error();
  EXPECT_TRUE(verify.value().ok);
  EXPECT_EQ(verify.value().kind, ErrorKind::kOk);
  EXPECT_EQ(verify.value().stats.chain_len, 3u);
  EXPECT_EQ(verify.value().chain_der.size(), 3u);
  EXPECT_EQ(verify.value().chain_der[0], good->der());

  // EvaluateGccs against a store with no GCCs: allowed.
  Request gccs;
  gccs.verb = Verb::kEvaluateGccs;
  gccs.usage = "TLS";
  gccs.leaf_der = good->der();
  gccs.intermediates_der = {h.pki.intermediate->der(), h.pki.root->der()};
  auto eval = client.call(gccs);
  ASSERT_TRUE(eval.ok()) << eval.error();
  EXPECT_TRUE(eval.value().ok);
  EXPECT_EQ(eval.value().stats.chain_len, 3u);

  // Metrics: the exposition crosses as the detail string and includes the
  // server's own request counters.
  Request metrics_req;
  metrics_req.verb = Verb::kMetrics;
  auto metrics = client.call(metrics_req);
  ASSERT_TRUE(metrics.ok()) << metrics.error();
  EXPECT_TRUE(metrics.value().ok);
  EXPECT_NE(metrics.value().detail.find("anchor_store_trusted_roots 1"),
            std::string::npos);
  EXPECT_NE(metrics.value().detail.find("anchor_anchord_requests_total"),
            std::string::npos);

  // FeedStatus without a feed: explicit kUnavailable, not a dropped verb.
  Request feed_req;
  feed_req.verb = Verb::kFeedStatus;
  auto feed = client.call(feed_req);
  ASSERT_TRUE(feed.ok()) << feed.error();
  EXPECT_FALSE(feed.value().ok);
  EXPECT_EQ(feed.value().kind, ErrorKind::kUnavailable);
}

TEST(AnchordServer, FeedStatusWithAttachedClient) {
  SimSig feed_registry;
  rsf::Feed feed("nss", feed_registry);
  Harness h;
  feed.publish(h.pki.store, 100, "r1");
  rsf::RsfClient rsf_client(feed, 3600);
  rsf_client.bind_metrics(h.registry, "nss");
  EXPECT_EQ(rsf_client.poll_now(200), 1u);

  // A second server sharing the harness service, with the feed attached.
  VerbDispatcher::Backends backends = h.backends;
  backends.feed = &rsf_client;
  AnchordServer server(backends, {}, h.registry);
  ConduitPair pair = make_memory_conduit();
  std::thread serve([&] { server.serve(*pair.second); });
  {
    AnchordClient client(*pair.first);
    Request request;
    request.verb = Verb::kFeedStatus;
    auto status = client.call(request);
    ASSERT_TRUE(status.ok()) << status.error();
    EXPECT_TRUE(status.value().ok);
    EXPECT_NE(status.value().detail.find("health=healthy"),
              std::string::npos);
    EXPECT_NE(status.value().detail.find("sequence=1"), std::string::npos);
  }
  pair.first->close();
  serve.join();
}

TEST(AnchordServer, VerifyFailureKindsCrossTheWire) {
  Harness h;
  AnchordClient client(h.client_end());

  // Hostname mismatch.
  CertPtr good = h.pki.leaf("real.example.com");
  auto mismatch =
      client.call(h.pki.verify_request(good, "other.example.com"));
  ASSERT_TRUE(mismatch.ok()) << mismatch.error();
  EXPECT_FALSE(mismatch.value().ok);
  EXPECT_EQ(mismatch.value().kind, ErrorKind::kHostnameMismatch);

  // Malformed leaf DER is classified, not stringly-typed.
  Request malformed = h.pki.verify_request(good, "real.example.com");
  malformed.leaf_der = Bytes{0xde, 0xad};
  auto bad = client.call(malformed);
  ASSERT_TRUE(bad.ok()) << bad.error();
  EXPECT_EQ(bad.value().kind, ErrorKind::kMalformedRequest);

  // Unknown usage token.
  Request weird = h.pki.verify_request(good, "real.example.com");
  weird.usage = "CODE-SIGNING";
  auto unknown = client.call(weird);
  ASSERT_TRUE(unknown.ok()) << unknown.error();
  EXPECT_EQ(unknown.value().kind, ErrorKind::kMalformedRequest);
}

// Acceptance: the wire path and the direct VerifyService path produce
// byte-identical responses for the same request.
TEST(AnchordServer, WireVerdictMatchesDirectPathByteForByte) {
  Harness h;
  VerbDispatcher direct(h.backends);
  AnchordClient client(h.client_end());

  const std::vector<std::pair<std::string, bool>> cases = {
      {"match.example.com", true},    // accepted chain
      {"mismatch.example.com", false} // hostname rejection
  };
  for (const auto& [domain, accept] : cases) {
    CertPtr leaf = h.pki.leaf(domain);
    Request request = h.pki.verify_request(
        leaf, accept ? domain : "elsewhere.example.com");
    auto wire = client.call(request);
    ASSERT_TRUE(wire.ok()) << wire.error();
    EXPECT_EQ(wire.value().ok, accept);

    Request mirror = request;
    mirror.correlation_id = wire.value().correlation_id;
    Response direct_response = direct.dispatch(mirror);
    EXPECT_EQ(encode_response(wire.value()).payload,
              encode_response(direct_response).payload)
        << "wire and direct responses diverge for " << domain;
  }
}

// --- the batch verb -------------------------------------------------------

// One kVerifyBatch frame carrying N chains: per-entry verdicts come back
// index-aligned, a bad entry fails alone, and the whole response is
// byte-identical to what direct dispatch produces for the same request.
TEST(AnchordServer, BatchVerbVerdictsMatchDirectDispatchByteForByte) {
  Harness h;
  VerbDispatcher direct(h.backends);
  AnchordClient client(h.client_end());

  CertPtr a = h.pki.leaf("a.example.com");
  CertPtr b = h.pki.leaf("b.example.com");
  CertPtr c = h.pki.leaf("c.example.com");
  Request request;
  request.verb = Verb::kVerifyBatch;
  request.usage = "TLS";
  request.time = WirePki::kNow;
  request.intermediates_der = {h.pki.intermediate->der()};
  request.batch = {{"a.example.com", a->der()},
                   {"wrong.example.com", b->der()},  // hostname mismatch
                   {"c.example.com", c->der()},
                   {"d.example.com", Bytes{0xde, 0xad}}};  // malformed leaf

  auto wire = client.call(request);
  ASSERT_TRUE(wire.ok()) << wire.error();
  const Response& response = wire.value();
  ASSERT_EQ(response.batch.size(), 4u);
  EXPECT_TRUE(response.batch[0].ok);
  EXPECT_EQ(response.batch[0].chain_len, 3u);
  EXPECT_FALSE(response.batch[1].ok);
  EXPECT_EQ(response.batch[1].kind, ErrorKind::kHostnameMismatch);
  EXPECT_TRUE(response.batch[2].ok);
  EXPECT_FALSE(response.batch[3].ok);
  EXPECT_EQ(response.batch[3].kind, ErrorKind::kMalformedRequest);
  // Top level: not all entries passed; kind mirrors the first failure;
  // counters sum over entries.
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.kind, ErrorKind::kHostnameMismatch);
  EXPECT_EQ(response.stats.chain_len, 6u);  // 3 + 0 + 3 + 0
  EXPECT_EQ(h.registry
                .counter("anchor_anchord_requests_total",
                         {{"verb", "verify-batch"}})
                .value(),
            1u);

  Request mirror = request;
  mirror.correlation_id = response.correlation_id;
  Response direct_response = direct.dispatch(mirror);
  EXPECT_EQ(encode_response(response).payload,
            encode_response(direct_response).payload)
      << "wire and direct batch responses diverge";
}

TEST(AnchordServer, EmptyBatchIsMalformed) {
  Harness h;
  AnchordClient client(h.client_end());
  Request request;
  request.verb = Verb::kVerifyBatch;
  request.usage = "TLS";
  auto response = client.call(request);
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().kind, ErrorKind::kMalformedRequest);
}

// Batch and single-chain verbs pipelined on one session: responses match
// by correlation id regardless of claim order.
TEST(AnchordServer, BatchAndSingleVerbsInterleaveOnOneSession) {
  Harness h;
  AnchordClient client(h.client_end());

  CertPtr solo = h.pki.leaf("solo.example.com");
  CertPtr one = h.pki.leaf("one.example.com");
  CertPtr two = h.pki.leaf("two.example.com");
  auto id1 = client.send(h.pki.verify_request(solo, "solo.example.com"));
  ASSERT_TRUE(id1.ok());

  Request batch;
  batch.verb = Verb::kVerifyBatch;
  batch.usage = "TLS";
  batch.time = WirePki::kNow;
  batch.intermediates_der = {h.pki.intermediate->der()};
  batch.batch = {{"one.example.com", one->der()},
                 {"two.example.com", two->der()}};
  auto id2 = client.send(batch);
  ASSERT_TRUE(id2.ok());

  auto id3 = client.send(h.pki.verify_request(solo, "wrong.example.com"));
  ASSERT_TRUE(id3.ok());

  auto r3 = client.receive(id3.value());
  ASSERT_TRUE(r3.ok()) << r3.error();
  EXPECT_EQ(r3.value().kind, ErrorKind::kHostnameMismatch);
  auto r2 = client.receive(id2.value());
  ASSERT_TRUE(r2.ok()) << r2.error();
  EXPECT_TRUE(r2.value().ok);
  ASSERT_EQ(r2.value().batch.size(), 2u);
  EXPECT_TRUE(r2.value().batch[0].ok);
  EXPECT_TRUE(r2.value().batch[1].ok);
  auto r1 = client.receive(id1.value());
  ASSERT_TRUE(r1.ok()) << r1.error();
  EXPECT_TRUE(r1.value().ok);
}

// --- the feed-fetch verb --------------------------------------------------

TEST(AnchordWire, FeedFetchRequestAndResponseRoundTripThroughCodec) {
  Request request;
  request.correlation_id = 21;
  request.verb = Verb::kFeedFetch;
  request.feed_query.from_size = 7;
  request.feed_query.to_size = 12;
  request.feed_query.max_snapshots = 3;
  request.feed_query.max_bytes = 65536;
  request.feed_query.want_deltas = true;
  auto decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), request);

  Response response;
  response.correlation_id = 21;
  response.verb = Verb::kFeedFetch;
  response.ok = true;
  response.feed.sth.tree_size = 12;
  response.feed.sth.root_hash.fill(0x5c);
  response.feed.sth.published_at = -7;  // i64 field must carry sign
  response.feed.sth.signature = Bytes{0x01, 0x02, 0x03};
  response.feed.consistency.resize(2);
  response.feed.consistency[0].fill(0xaa);
  response.feed.consistency[1].fill(0xbb);
  response.feed.inclusion.resize(1);
  response.feed.inclusion[0].fill(0xcc);
  rsf::Snapshot snap;
  snap.sequence = 12;
  snap.published_at = 1700000000;
  snap.annotation = "emergency distrust";
  snap.payload = "payload-bytes";
  snap.payload_hash = "abcd";
  snap.prev_hash = "ef01";
  snap.signature = Bytes{0x09};
  response.feed.snapshots = {snap, rsf::Snapshot{}};
  response.feed.deltas = {"delta-one", ""};
  auto round = decode_response(encode_response(response));
  ASSERT_TRUE(round.ok()) << round.error();
  EXPECT_EQ(round.value(), response);

  // Strictness: an undefined query flag bit must reject, not be ignored —
  // the byte is the LAST field of a kFeedFetch request.
  net::Message bad_flags = encode_request(request);
  bad_flags.payload.back() = 0x02;
  EXPECT_FALSE(decode_request(bad_flags).ok());

  // Truncated feed section and trailing bytes after it are both errors.
  net::Message truncated = encode_response(response);
  truncated.payload.pop_back();
  EXPECT_FALSE(decode_response(truncated).ok());
  net::Message trailing = encode_response(response);
  trailing.payload.push_back(0x00);
  EXPECT_FALSE(decode_response(trailing).ok());

  // The feed section exists only for the feed-fetch verb: a non-empty
  // feed on another verb must not perturb that verb's byte layout.
  Response other;
  other.verb = Verb::kMetrics;
  other.feed = response.feed;
  Response plain;
  plain.verb = Verb::kMetrics;
  EXPECT_EQ(encode_response(other).payload, encode_response(plain).payload);
}

// Second server sharing a Harness's service, with a publisher Feed wired
// to the feed-fetch verb.
struct FeedServerScope {
  VerbDispatcher::Backends backends;
  ConduitPair pair = make_memory_conduit();
  AnchordServer server;
  std::thread serve;

  static VerbDispatcher::Backends with_feed(const Harness& h,
                                            const rsf::Feed& feed) {
    VerbDispatcher::Backends b = h.backends;
    b.feed_source = &feed;
    return b;
  }

  FeedServerScope(Harness& h, const rsf::Feed& feed)
      : backends(with_feed(h, feed)),
        server(backends, {}, h.registry),
        serve([this] { server.serve(*pair.second); }) {}

  ~FeedServerScope() {
    pair.first->close();
    serve.join();
  }

  Conduit& client_end() { return *pair.first; }
};

// Acceptance: a feed-fetch served over the wire is byte-identical to
// direct dispatch — tree head, proofs, snapshots, deltas and all.
TEST(AnchordServer, FeedFetchVerdictsMatchDirectDispatchByteForByte) {
  SimSig feed_sigs;
  rsf::Feed feed("nss", feed_sigs);
  Harness h;
  feed.publish(h.pki.store, 100, "r1");
  feed.publish(h.pki.store, 200, "r2");

  FeedServerScope scope(h, feed);
  AnchordClient client(scope.client_end());
  VerbDispatcher direct(scope.backends);

  Request request;
  request.verb = Verb::kFeedFetch;
  request.feed_query.from_size = 0;
  request.feed_query.want_deltas = true;
  auto wire = client.call(request);
  ASSERT_TRUE(wire.ok()) << wire.error();
  EXPECT_TRUE(wire.value().ok);
  EXPECT_EQ(wire.value().feed.sth.tree_size, 2u);
  EXPECT_EQ(wire.value().feed.snapshots.size(), 2u);
  EXPECT_EQ(wire.value().feed.deltas.size(), 2u);
  EXPECT_EQ(wire.value().stats.chain_len, 2u);

  Request mirror = request;
  mirror.correlation_id = wire.value().correlation_id;
  Response direct_response = direct.dispatch(mirror);
  EXPECT_EQ(encode_response(wire.value()).payload,
            encode_response(direct_response).payload)
      << "wire and direct feed-fetch responses diverge";

  // The at-head probe (tree head alone) must also match byte for byte.
  Request probe;
  probe.verb = Verb::kFeedFetch;
  probe.feed_query.from_size = 2;
  auto wire_probe = client.call(probe);
  ASSERT_TRUE(wire_probe.ok()) << wire_probe.error();
  EXPECT_TRUE(wire_probe.value().feed.snapshots.empty());
  Request probe_mirror = probe;
  probe_mirror.correlation_id = wire_probe.value().correlation_id;
  EXPECT_EQ(encode_response(wire_probe.value()).payload,
            encode_response(direct.dispatch(probe_mirror)).payload);

  // Counted under its own verb label.
  EXPECT_EQ(h.registry
                .counter("anchor_anchord_requests_total",
                         {{"verb", "feed-fetch"}})
                .value(),
            2u);
}

TEST(AnchordServer, FeedFetchWithoutFeedIsUnavailable) {
  Harness h;
  AnchordClient client(h.client_end());
  Request request;
  request.verb = Verb::kFeedFetch;
  auto response = client.call(request);
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().kind, ErrorKind::kUnavailable);
}

TEST(AnchordServer, FeedFetchTornFramesByteByByte) {
  SimSig feed_sigs;
  rsf::Feed feed("nss", feed_sigs);
  Harness h;
  feed.publish(h.pki.store, 100, "r1");

  FeedServerScope scope(h, feed);
  AnchordClient client(scope.client_end());
  Request request;
  request.verb = Verb::kFeedFetch;
  request.correlation_id = 9;
  const Bytes frame = net::encode_frame(encode_request(request));
  for (std::uint8_t byte : frame) {
    ASSERT_TRUE(scope.client_end().write(BytesView(&byte, 1)));
  }
  auto response = client.receive(9);
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_TRUE(response.value().ok);
  EXPECT_EQ(response.value().feed.sth.tree_size, 1u);
  EXPECT_EQ(response.value().feed.snapshots.size(), 1u);
}

// A single snapshot that cannot fit one wire frame must fail closed with
// an explicit kOverloaded — never emit an undecodable frame — and leave
// the session serving.
TEST(AnchordServer, OversizedFeedFetchFailsClosed) {
  SimSig feed_sigs;
  rsf::Feed feed("nss", feed_sigs);
  Harness h;
  // The annotation rides the snapshot onto the wire; 2 MiB of it exceeds
  // the 1 MiB frame cap no matter how small the store payload is.
  feed.publish(h.pki.store, 100, std::string(2 * net::kMaxFrameBytes, 'a'));

  FeedServerScope scope(h, feed);
  AnchordClient client(scope.client_end());
  Request request;
  request.verb = Verb::kFeedFetch;
  request.feed_query.from_size = 0;
  auto response = client.call(request);
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().kind, ErrorKind::kOverloaded);
  EXPECT_NE(response.value().detail.find("frame budget"), std::string::npos);

  // The session survived: an at-head probe (tree head alone) still serves.
  Request probe;
  probe.verb = Verb::kFeedFetch;
  probe.feed_query.from_size = 1;
  auto alive = client.call(probe);
  ASSERT_TRUE(alive.ok()) << alive.error();
  EXPECT_TRUE(alive.value().ok);
  EXPECT_EQ(alive.value().feed.sth.tree_size, 1u);
}

// --- session robustness ---------------------------------------------------

TEST(AnchordServer, TornFramesByteByByte) {
  Harness h;
  AnchordClient client(h.client_end());

  CertPtr leaf = h.pki.leaf("torn.example.com");
  Request request = h.pki.verify_request(leaf, "torn.example.com");
  request.correlation_id = 1;
  const Bytes frame = net::encode_frame(encode_request(request));
  for (std::uint8_t byte : frame) {
    ASSERT_TRUE(h.client_end().write(BytesView(&byte, 1)));
  }
  auto response = client.receive(1);
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_TRUE(response.value().ok);
  EXPECT_EQ(response.value().stats.chain_len, 3u);
}

TEST(AnchordServer, ResponsesInterleaveByCorrelationId) {
  AnchordConfig config;
  config.workers = 2;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> handlers_started{0};
  config.handler_gate = [&] {
    if (handlers_started.fetch_add(1) == 0) {
      // Hold the FIRST handler until the second one has answered, forcing
      // responses onto the wire out of submission order.
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
  };
  Harness h(config);
  AnchordClient client(h.client_end());

  CertPtr first = h.pki.leaf("first.example.com");
  CertPtr second = h.pki.leaf("second.example.com");
  auto id1 = client.send(h.pki.verify_request(first, "first.example.com"));
  ASSERT_TRUE(id1.ok());
  // Ensure request 1's handler is the one the gate holds.
  while (handlers_started.load() == 0) std::this_thread::yield();
  auto id2 = client.send(h.pki.verify_request(second, "second.example.com"));
  ASSERT_TRUE(id2.ok());

  auto response2 = client.receive(id2.value());  // arrives while 1 is held
  ASSERT_TRUE(response2.ok()) << response2.error();
  EXPECT_TRUE(response2.value().ok);
  EXPECT_EQ(response2.value().correlation_id, id2.value());

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  auto response1 = client.receive(id1.value());
  ASSERT_TRUE(response1.ok()) << response1.error();
  EXPECT_TRUE(response1.value().ok);
  EXPECT_EQ(response1.value().correlation_id, id1.value());
}

TEST(AnchordServer, UnknownAndMalformedFramesAlertWithoutKillingSession) {
  Harness h;
  AnchordClient client(h.client_end());

  // Unknown frame type, credible length: alert + skip, session lives.
  Bytes unknown{99, 0x00, 0x00, 0x00, 0x02, 0xaa, 0xbb};
  ASSERT_TRUE(h.client_end().write(BytesView(unknown)));

  // A garbage kRequest payload: answered kMalformedRequest by peeked id.
  net::Message garbage;
  garbage.type = net::MsgType::kRequest;
  garbage.payload = Bytes{0, 0, 0, 0, 0, 0, 0, 42, 0xff};
  ASSERT_TRUE(h.client_end().write(BytesView(net::encode_frame(garbage))));
  auto malformed = client.receive(42);
  ASSERT_TRUE(malformed.ok()) << malformed.error();
  EXPECT_EQ(malformed.value().kind, ErrorKind::kMalformedRequest);

  // The session survived both: a real request still round-trips.
  CertPtr leaf = h.pki.leaf("alive.example.com");
  auto response = client.call(h.pki.verify_request(leaf, "alive.example.com"));
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_TRUE(response.value().ok);

  EXPECT_GE(client.alerts(), 1u);
  EXPECT_EQ(h.registry.counter("anchor_anchord_alerts_total").value(), 1u);
  EXPECT_EQ(h.registry.counter("anchor_anchord_malformed_total").value(), 1u);
}

// Regression for the drain-buffer skip bug: a frame header declaring a
// length over the codec cap used to set skip_remaining = 5 + length from
// the untrusted header, silently swallowing up to ~4 GiB of valid frames
// that followed. The declared length is garbage by definition (the codec
// caps real frames at kMaxFrameBytes), so the session must alert and tear
// down instead of trusting it as a skip count.
TEST(AnchordServer, GarbageDeclaredLengthTearsSessionDown) {
  Harness h;
  AnchordClient client(h.client_end());

  // A healthy request first: the teardown below must be attributable to
  // the garbage header, not to a session that never worked.
  CertPtr leaf = h.pki.leaf("pre.example.com");
  auto first = client.call(h.pki.verify_request(leaf, "pre.example.com"));
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_TRUE(first.value().ok);

  // Header declares ~4 GiB; then a perfectly valid request follows. The
  // old skip logic would treat the valid frame's bytes as "payload" of the
  // garbage frame and discard them for hours of traffic.
  Bytes header{static_cast<std::uint8_t>(net::MsgType::kRequest),
               0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(h.client_end().write(BytesView(header)));
  Bytes valid = net::encode_frame(
      encode_request(h.pki.verify_request(leaf, "pre.example.com")));
  (void)h.client_end().write(BytesView(valid));  // may race the close

  // Teardown is observable: the alert arrives, then end-of-stream (the
  // pre-fix server kept the session open, so the read below would report
  // an idle 0, never -1).
  Bytes drained;
  int n;
  while ((n = h.client_end().read_some(drained, 4096, 500)) > 0) {
  }
  EXPECT_EQ(n, -1) << "session was not torn down";
  auto alert = net::decode_frame(drained);
  ASSERT_TRUE(alert.ok()) << alert.error();
  ASSERT_TRUE(alert.value().complete);
  EXPECT_EQ(alert.value().message.type, net::MsgType::kAlert);

  // Nothing after the garbage header was executed.
  EXPECT_EQ(h.registry
                .counter("anchor_anchord_requests_total", {{"verb", "verify"}})
                .value(),
            1u);
  EXPECT_EQ(h.registry.counter("anchor_anchord_alerts_total").value(), 1u);
}

TEST(AnchordServer, OverloadFailsClosedWithExplicitResponse) {
  AnchordConfig config;
  config.workers = 2;
  config.max_in_flight = 1;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> handlers_started{0};
  config.handler_gate = [&] {
    handlers_started.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  Harness h(config);
  AnchordClient client(h.client_end());

  CertPtr leaf = h.pki.leaf("load.example.com");
  auto id1 = client.send(h.pki.verify_request(leaf, "load.example.com"));
  ASSERT_TRUE(id1.ok());
  while (handlers_started.load() == 0) std::this_thread::yield();

  // The bound is taken: the next request is rejected synchronously.
  auto id2 = client.send(h.pki.verify_request(leaf, "load.example.com"));
  ASSERT_TRUE(id2.ok());
  auto rejected = client.receive(id2.value());
  ASSERT_TRUE(rejected.ok()) << rejected.error();
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_EQ(rejected.value().kind, ErrorKind::kOverloaded);
  EXPECT_EQ(h.registry.counter("anchor_anchord_overloads_total").value(), 1u);

  // The admitted request still completes once released — overload sheds
  // new load, it never cancels accepted work.
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  auto accepted = client.receive(id1.value());
  ASSERT_TRUE(accepted.ok()) << accepted.error();
  EXPECT_TRUE(accepted.value().ok);
}

TEST(AnchordServer, ExpiredDeadlineAnswersTimeoutWithoutVerifying) {
  AnchordConfig config;
  config.request_timeout_ms = 20;
  config.handler_gate = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  };
  Harness h(config);
  AnchordClient client(h.client_end());

  CertPtr leaf = h.pki.leaf("late.example.com");
  auto response = client.call(h.pki.verify_request(leaf, "late.example.com"));
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().kind, ErrorKind::kTimeout);
  EXPECT_EQ(h.registry.counter("anchor_anchord_timeouts_total").value(), 1u);
  // The verifier never ran: no verify call was recorded by the service.
  EXPECT_EQ(h.service.stats().calls, 0u);
}

// The in-flight gauge must be exact, not last-writer-approximate: with N
// handlers held in flight it reads exactly N, and it returns to exactly 0
// at quiescence. The pre-fix set(load()) publication could interleave a
// stale re-read over a newer value and leave the gauge stuck non-zero
// forever (TSan runs this via the concurrency label).
TEST(AnchordServer, InFlightGaugeIsExactUnderConcurrentCompletions) {
  constexpr int kHeld = 4;
  AnchordConfig config;
  config.workers = kHeld;
  config.max_in_flight = 2 * kHeld;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> handlers_started{0};
  config.handler_gate = [&] {
    handlers_started.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  Harness h(config);
  AnchordClient client(h.client_end());
  metrics::Gauge& gauge = h.registry.gauge("anchor_anchord_in_flight");

  CertPtr leaf = h.pki.leaf("gauge.example.com");
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kHeld; ++i) {
    auto id = client.send(h.pki.verify_request(leaf, "gauge.example.com"));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  while (handlers_started.load() < kHeld) std::this_thread::yield();
  EXPECT_EQ(gauge.value(), kHeld);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (std::uint64_t id : ids) {
    auto response = client.receive(id);
    ASSERT_TRUE(response.ok()) << response.error();
    EXPECT_TRUE(response.value().ok);
  }
  // Completions race each other; the gauge must still settle on exactly 0.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (gauge.value() != 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(gauge.value(), 0);
}

// --- transports and concurrency -------------------------------------------

TEST(AnchordServer, RoundTripOverSocketpair) {
  Harness h;  // serve thread on the memory pair is idle; we add a real one
  auto pair = make_socketpair_conduit();
  ASSERT_TRUE(pair.ok()) << pair.error();
  ConduitPair fds = std::move(pair).take();
  std::thread serve([&] { h.server->serve(*fds.second); });
  {
    AnchordClient client(*fds.first);
    CertPtr leaf = h.pki.leaf("unix.example.com");
    auto response =
        client.call(h.pki.verify_request(leaf, "unix.example.com"));
    ASSERT_TRUE(response.ok()) << response.error();
    EXPECT_TRUE(response.value().ok);
    EXPECT_EQ(response.value().stats.chain_len, 3u);
  }
  fds.first->close();
  serve.join();
}

// A frame trickled one byte per write over a real socket: every byte can
// land as its own readiness wakeup and the reactor must reassemble the
// frame across them.
TEST(AnchordServer, TornFramesAcrossWakeupsOverSocketpair) {
  Harness h;
  auto pair = make_socketpair_conduit();
  ASSERT_TRUE(pair.ok()) << pair.error();
  ConduitPair fds = std::move(pair).take();
  std::thread serve([&] { h.server->serve(*fds.second); });
  {
    AnchordClient client(*fds.first);
    CertPtr leaf = h.pki.leaf("shred.example.com");
    Request request = h.pki.verify_request(leaf, "shred.example.com");
    request.correlation_id = 9;
    const Bytes frame = net::encode_frame(encode_request(request));
    for (std::uint8_t byte : frame) {
      ASSERT_TRUE(fds.first->write(BytesView(&byte, 1)));
    }
    auto response = client.receive(9);
    ASSERT_TRUE(response.ok()) << response.error();
    EXPECT_TRUE(response.value().ok);
    EXPECT_EQ(response.value().stats.chain_len, 3u);
  }
  fds.first->close();
  serve.join();
}

// A peer that pipelines hundreds of requests without reading a single
// response: the kernel socket buffer fills, write_some flow-controls, and
// every parked response must flush through writability events — without a
// worker or the reactor ever blocking on the slow reader.
TEST(AnchordServer, SlowReaderBackpressureFlushesOnWritability) {
  AnchordConfig config;
  config.workers = 2;
  config.max_in_flight = 512;
  Harness h(config);
  auto pair = make_socketpair_conduit();
  ASSERT_TRUE(pair.ok()) << pair.error();
  ConduitPair fds = std::move(pair).take();
  std::thread serve([&] { h.server->serve(*fds.second); });
  {
    AnchordClient client(*fds.first, /*timeout_ms=*/30000);
    CertPtr leaf = h.pki.leaf("firehose.example.com");
    const Request request =
        h.pki.verify_request(leaf, "firehose.example.com");
    constexpr int kPipelined = 256;
    std::vector<std::uint64_t> ids;
    ids.reserve(kPipelined);
    for (int i = 0; i < kPipelined; ++i) {
      auto id = client.send(request);
      ASSERT_TRUE(id.ok()) << id.error();
      ids.push_back(id.value());
    }
    // Only now start reading; claim newest-first so the client buffers the
    // backlog too.
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      auto response = client.receive(*it);
      ASSERT_TRUE(response.ok()) << response.error();
      EXPECT_TRUE(response.value().ok);
      EXPECT_EQ(response.value().correlation_id, *it);
    }
  }
  fds.first->close();
  serve.join();
  EXPECT_EQ(h.registry
                .counter("anchor_anchord_requests_total", {{"verb", "verify"}})
                .value(),
            256u);
}

// Many connections, each pipelining a mix of accepting and rejecting
// requests: every response must match its request's expected verdict (the
// TSan target for this suite).
TEST(AnchordServer, ConcurrentConnectionsWithPipelining) {
  AnchordConfig config;
  config.workers = 4;
  Harness h(config);

  constexpr int kConnections = 4;
  constexpr int kRequestsPerConnection = 12;
  CertPtr good = h.pki.leaf("good.example.com");
  CertPtr other = h.pki.leaf("bad.example.com");

  std::vector<std::thread> serve_threads;
  std::vector<ConduitPair> pairs;
  pairs.reserve(kConnections);
  for (int c = 0; c < kConnections; ++c) {
    pairs.push_back(make_memory_conduit());
    serve_threads.emplace_back(
        [&, c] { h.server->serve(*pairs[static_cast<std::size_t>(c)].second); });
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      AnchordClient client(*pairs[static_cast<std::size_t>(c)].first);
      std::vector<std::pair<std::uint64_t, bool>> expect;
      for (int i = 0; i < kRequestsPerConnection; ++i) {
        const bool accept = i % 2 == 0;
        Request request =
            h.pki.verify_request(accept ? good : other, "good.example.com");
        auto id = client.send(std::move(request));
        if (!id.ok()) {
          ++mismatches;
          continue;
        }
        expect.emplace_back(id.value(), accept);
      }
      // Claim in reverse submission order to exercise out-of-order match.
      for (auto it = expect.rbegin(); it != expect.rend(); ++it) {
        auto response = client.receive(it->first);
        if (!response.ok() || response.value().ok != it->second ||
            response.value().correlation_id != it->first) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kConnections; ++c) {
    pairs[static_cast<std::size_t>(c)].first->close();
  }
  for (auto& t : serve_threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(
      h.registry.counter("anchor_anchord_requests_total", {{"verb", "verify"}})
          .value(),
      static_cast<std::uint64_t>(kConnections) * kRequestsPerConnection);
}

}  // namespace
}  // namespace anchor::anchord
