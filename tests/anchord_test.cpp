// The anchord serving layer end to end: wire codec round trips, the
// concurrent session loop (pipelining, correlation-id matching, torn and
// malformed frames, overload and timeout fail-closed semantics), and the
// acceptance property that a verdict served over the wire is byte-identical
// to one computed on the direct VerifyService path.
#include "anchord/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "anchord/client.hpp"
#include "rsf/client.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::anchord {
namespace {

using chain::ErrorKind;
using chain::VerifyService;
using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

struct WirePki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("Wire Root");
  SimKeyPair int_key = SimSig::keygen("Wire Int");
  CertPtr root, intermediate;
  rootstore::RootStore store;
  static constexpr std::int64_t kNow = 1700000000;

  WirePki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Wire Root", "T"))
               .issuer(DistinguishedName::make("Wire Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("Wire Int", "T"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2039, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .sign(root_key)
                       .take();
    sigs.register_key(root_key);
    sigs.register_key(int_key);
    (void)store.add_trusted(root);
  }

  CertPtr leaf(const std::string& domain, bool ev = false) {
    SimKeyPair key = SimSig::keygen("wleaf" + domain);
    CertificateBuilder builder;
    builder.serial(3)
        .subject(DistinguishedName::make(domain))
        .issuer(intermediate->subject())
        .validity(kNow - 86400, kNow + 90 * 86400)
        .public_key(key.key_id)
        .dns_names({domain})
        .extended_key_usage({x509::oids::kp_server_auth()});
    if (ev) builder.ev();
    return builder.sign(int_key).take();
  }

  Request verify_request(const CertPtr& leaf_cert,
                         const std::string& hostname) const {
    Request request;
    request.verb = Verb::kVerify;
    request.usage = "TLS";
    request.time = kNow;
    request.hostname = hostname;
    request.leaf_der = leaf_cert->der();
    request.intermediates_der = {intermediate->der()};
    return request;
  }
};

// One server over one in-memory connection, with the serve loop on its own
// thread; close() on the client end shuts everything down.
struct Harness {
  WirePki pki;
  metrics::Registry registry;
  VerifyService service;
  VerbDispatcher::Backends backends;
  AnchordConfig config;
  std::unique_ptr<AnchordServer> server;
  ConduitPair conduits = make_memory_conduit();
  std::thread serve_thread;

  explicit Harness(AnchordConfig cfg = {})
      : service(pki.store, pki.sigs, {}, registry), config(std::move(cfg)) {
    backends.service = &service;
    backends.store = &pki.store;
    backends.registry = &registry;
    server = std::make_unique<AnchordServer>(backends, config, registry);
    serve_thread = std::thread([this] { server->serve(*conduits.second); });
  }

  ~Harness() {
    conduits.first->close();
    serve_thread.join();
  }

  Conduit& client_end() { return *conduits.first; }
};

// --- wire codec -----------------------------------------------------------

TEST(AnchordWire, RequestRoundTripsThroughCodec) {
  Request request;
  request.correlation_id = 0x1122334455667788ULL;
  request.verb = Verb::kVerify;
  request.usage = "TLS";
  request.time = -12345;  // negative times must survive the i64 encoding
  request.max_depth = 5;
  request.require_ev = true;
  request.check_signatures = false;
  request.run_gccs = true;
  request.hostname = "a.example.com";
  request.leaf_der = Bytes{0x30, 0x01, 0x02};
  request.intermediates_der = {Bytes{0x30, 0x00}, Bytes{}, Bytes{0xff}};

  net::Message message = encode_request(request);
  EXPECT_EQ(message.type, net::MsgType::kRequest);
  auto decoded = decode_request(message);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), request);
}

TEST(AnchordWire, ResponseRoundTripsThroughCodec) {
  Response response;
  response.correlation_id = 7;
  response.verb = Verb::kEvaluateGccs;
  response.kind = ErrorKind::kGccDenied;
  response.ok = false;
  response.stats = {3, 9, 2, 140, 5};
  response.detail = "gcc:no-ev";
  response.chain_der = {Bytes{0x30}, Bytes{0x31, 0x32}};

  net::Message message = encode_response(response);
  EXPECT_EQ(message.type, net::MsgType::kResponse);
  auto decoded = decode_response(message);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), response);
}

TEST(AnchordWire, StrictDecodingRejectsDamage) {
  Request request;
  request.verb = Verb::kMetrics;
  net::Message good = encode_request(request);

  net::Message trailing = good;
  trailing.payload.push_back(0x00);
  EXPECT_FALSE(decode_request(trailing).ok());

  net::Message truncated = good;
  truncated.payload.pop_back();
  EXPECT_FALSE(decode_request(truncated).ok());

  net::Message bad_verb = good;
  bad_verb.payload[8] = 99;  // verb byte follows the 8-byte correlation id
  EXPECT_FALSE(decode_request(bad_verb).ok());

  net::Message wrong_type = good;
  wrong_type.type = net::MsgType::kCertificate;
  EXPECT_FALSE(decode_request(wrong_type).ok());

  // Responses: an error-kind byte outside the taxonomy is rejected.
  Response response;
  net::Message encoded = encode_response(response);
  encoded.payload[9] = 200;  // kind byte follows cid + verb
  EXPECT_FALSE(decode_response(encoded).ok());
}

TEST(AnchordWire, PeekCorrelationId) {
  Request request;
  request.correlation_id = 424242;
  net::Message message = encode_request(request);
  EXPECT_EQ(peek_correlation_id(BytesView(message.payload)), 424242u);
  EXPECT_EQ(peek_correlation_id(BytesView(Bytes{0x01, 0x02})), 0u);
}

// --- verbs over the wire --------------------------------------------------

TEST(AnchordServer, AllFourVerbsRoundTrip) {
  Harness h;
  AnchordClient client(h.client_end());

  // Verify: an accepted chain comes back ok with the path as DER.
  CertPtr good = h.pki.leaf("ok.example.com");
  auto verify = client.call(h.pki.verify_request(good, "ok.example.com"));
  ASSERT_TRUE(verify.ok()) << verify.error();
  EXPECT_TRUE(verify.value().ok);
  EXPECT_EQ(verify.value().kind, ErrorKind::kOk);
  EXPECT_EQ(verify.value().stats.chain_len, 3u);
  EXPECT_EQ(verify.value().chain_der.size(), 3u);
  EXPECT_EQ(verify.value().chain_der[0], good->der());

  // EvaluateGccs against a store with no GCCs: allowed.
  Request gccs;
  gccs.verb = Verb::kEvaluateGccs;
  gccs.usage = "TLS";
  gccs.leaf_der = good->der();
  gccs.intermediates_der = {h.pki.intermediate->der(), h.pki.root->der()};
  auto eval = client.call(gccs);
  ASSERT_TRUE(eval.ok()) << eval.error();
  EXPECT_TRUE(eval.value().ok);
  EXPECT_EQ(eval.value().stats.chain_len, 3u);

  // Metrics: the exposition crosses as the detail string and includes the
  // server's own request counters.
  Request metrics_req;
  metrics_req.verb = Verb::kMetrics;
  auto metrics = client.call(metrics_req);
  ASSERT_TRUE(metrics.ok()) << metrics.error();
  EXPECT_TRUE(metrics.value().ok);
  EXPECT_NE(metrics.value().detail.find("anchor_store_trusted_roots 1"),
            std::string::npos);
  EXPECT_NE(metrics.value().detail.find("anchor_anchord_requests_total"),
            std::string::npos);

  // FeedStatus without a feed: explicit kUnavailable, not a dropped verb.
  Request feed_req;
  feed_req.verb = Verb::kFeedStatus;
  auto feed = client.call(feed_req);
  ASSERT_TRUE(feed.ok()) << feed.error();
  EXPECT_FALSE(feed.value().ok);
  EXPECT_EQ(feed.value().kind, ErrorKind::kUnavailable);
}

TEST(AnchordServer, FeedStatusWithAttachedClient) {
  SimSig feed_registry;
  rsf::Feed feed("nss", feed_registry);
  Harness h;
  feed.publish(h.pki.store, 100, "r1");
  rsf::RsfClient rsf_client(feed, 3600);
  rsf_client.bind_metrics(h.registry, "nss");
  EXPECT_EQ(rsf_client.poll_now(200), 1u);

  // A second server sharing the harness service, with the feed attached.
  VerbDispatcher::Backends backends = h.backends;
  backends.feed = &rsf_client;
  AnchordServer server(backends, {}, h.registry);
  ConduitPair pair = make_memory_conduit();
  std::thread serve([&] { server.serve(*pair.second); });
  {
    AnchordClient client(*pair.first);
    Request request;
    request.verb = Verb::kFeedStatus;
    auto status = client.call(request);
    ASSERT_TRUE(status.ok()) << status.error();
    EXPECT_TRUE(status.value().ok);
    EXPECT_NE(status.value().detail.find("health=healthy"),
              std::string::npos);
    EXPECT_NE(status.value().detail.find("sequence=1"), std::string::npos);
  }
  pair.first->close();
  serve.join();
}

TEST(AnchordServer, VerifyFailureKindsCrossTheWire) {
  Harness h;
  AnchordClient client(h.client_end());

  // Hostname mismatch.
  CertPtr good = h.pki.leaf("real.example.com");
  auto mismatch =
      client.call(h.pki.verify_request(good, "other.example.com"));
  ASSERT_TRUE(mismatch.ok()) << mismatch.error();
  EXPECT_FALSE(mismatch.value().ok);
  EXPECT_EQ(mismatch.value().kind, ErrorKind::kHostnameMismatch);

  // Malformed leaf DER is classified, not stringly-typed.
  Request malformed = h.pki.verify_request(good, "real.example.com");
  malformed.leaf_der = Bytes{0xde, 0xad};
  auto bad = client.call(malformed);
  ASSERT_TRUE(bad.ok()) << bad.error();
  EXPECT_EQ(bad.value().kind, ErrorKind::kMalformedRequest);

  // Unknown usage token.
  Request weird = h.pki.verify_request(good, "real.example.com");
  weird.usage = "CODE-SIGNING";
  auto unknown = client.call(weird);
  ASSERT_TRUE(unknown.ok()) << unknown.error();
  EXPECT_EQ(unknown.value().kind, ErrorKind::kMalformedRequest);
}

// Acceptance: the wire path and the direct VerifyService path produce
// byte-identical responses for the same request.
TEST(AnchordServer, WireVerdictMatchesDirectPathByteForByte) {
  Harness h;
  VerbDispatcher direct(h.backends);
  AnchordClient client(h.client_end());

  const std::vector<std::pair<std::string, bool>> cases = {
      {"match.example.com", true},    // accepted chain
      {"mismatch.example.com", false} // hostname rejection
  };
  for (const auto& [domain, accept] : cases) {
    CertPtr leaf = h.pki.leaf(domain);
    Request request = h.pki.verify_request(
        leaf, accept ? domain : "elsewhere.example.com");
    auto wire = client.call(request);
    ASSERT_TRUE(wire.ok()) << wire.error();
    EXPECT_EQ(wire.value().ok, accept);

    Request mirror = request;
    mirror.correlation_id = wire.value().correlation_id;
    Response direct_response = direct.dispatch(mirror);
    EXPECT_EQ(encode_response(wire.value()).payload,
              encode_response(direct_response).payload)
        << "wire and direct responses diverge for " << domain;
  }
}

// --- session robustness ---------------------------------------------------

TEST(AnchordServer, TornFramesByteByByte) {
  Harness h;
  AnchordClient client(h.client_end());

  CertPtr leaf = h.pki.leaf("torn.example.com");
  Request request = h.pki.verify_request(leaf, "torn.example.com");
  request.correlation_id = 1;
  const Bytes frame = net::encode_frame(encode_request(request));
  for (std::uint8_t byte : frame) {
    ASSERT_TRUE(h.client_end().write(BytesView(&byte, 1)));
  }
  auto response = client.receive(1);
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_TRUE(response.value().ok);
  EXPECT_EQ(response.value().stats.chain_len, 3u);
}

TEST(AnchordServer, ResponsesInterleaveByCorrelationId) {
  AnchordConfig config;
  config.workers = 2;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> handlers_started{0};
  config.handler_gate = [&] {
    if (handlers_started.fetch_add(1) == 0) {
      // Hold the FIRST handler until the second one has answered, forcing
      // responses onto the wire out of submission order.
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
  };
  Harness h(config);
  AnchordClient client(h.client_end());

  CertPtr first = h.pki.leaf("first.example.com");
  CertPtr second = h.pki.leaf("second.example.com");
  auto id1 = client.send(h.pki.verify_request(first, "first.example.com"));
  ASSERT_TRUE(id1.ok());
  // Ensure request 1's handler is the one the gate holds.
  while (handlers_started.load() == 0) std::this_thread::yield();
  auto id2 = client.send(h.pki.verify_request(second, "second.example.com"));
  ASSERT_TRUE(id2.ok());

  auto response2 = client.receive(id2.value());  // arrives while 1 is held
  ASSERT_TRUE(response2.ok()) << response2.error();
  EXPECT_TRUE(response2.value().ok);
  EXPECT_EQ(response2.value().correlation_id, id2.value());

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  auto response1 = client.receive(id1.value());
  ASSERT_TRUE(response1.ok()) << response1.error();
  EXPECT_TRUE(response1.value().ok);
  EXPECT_EQ(response1.value().correlation_id, id1.value());
}

TEST(AnchordServer, OversizedAndUnknownFramesAlertWithoutKillingSession) {
  Harness h;
  AnchordClient client(h.client_end());

  // Unknown frame type, well-formed length: alert + skip.
  Bytes unknown{99, 0x00, 0x00, 0x00, 0x02, 0xaa, 0xbb};
  ASSERT_TRUE(h.client_end().write(BytesView(unknown)));

  // Oversized frame: header declares kMaxFrameBytes + 1; the server alerts
  // and discards exactly that many payload bytes as they stream in.
  const std::uint32_t big = static_cast<std::uint32_t>(net::kMaxFrameBytes) + 1;
  Bytes oversized{static_cast<std::uint8_t>(net::MsgType::kRequest),
                  static_cast<std::uint8_t>(big >> 24),
                  static_cast<std::uint8_t>(big >> 16),
                  static_cast<std::uint8_t>(big >> 8),
                  static_cast<std::uint8_t>(big)};
  oversized.resize(5 + big, 0x5a);
  ASSERT_TRUE(h.client_end().write(BytesView(oversized)));

  // A garbage kRequest payload: answered kMalformedRequest by peeked id.
  net::Message garbage;
  garbage.type = net::MsgType::kRequest;
  garbage.payload = Bytes{0, 0, 0, 0, 0, 0, 0, 42, 0xff};
  ASSERT_TRUE(h.client_end().write(BytesView(net::encode_frame(garbage))));
  auto malformed = client.receive(42);
  ASSERT_TRUE(malformed.ok()) << malformed.error();
  EXPECT_EQ(malformed.value().kind, ErrorKind::kMalformedRequest);

  // The session survived all three: a real request still round-trips.
  CertPtr leaf = h.pki.leaf("alive.example.com");
  auto response = client.call(h.pki.verify_request(leaf, "alive.example.com"));
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_TRUE(response.value().ok);

  EXPECT_GE(client.alerts(), 2u);
  EXPECT_EQ(h.registry.counter("anchor_anchord_alerts_total").value(), 2u);
  EXPECT_EQ(h.registry.counter("anchor_anchord_malformed_total").value(), 1u);
}

TEST(AnchordServer, OverloadFailsClosedWithExplicitResponse) {
  AnchordConfig config;
  config.workers = 2;
  config.max_in_flight = 1;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> handlers_started{0};
  config.handler_gate = [&] {
    handlers_started.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  Harness h(config);
  AnchordClient client(h.client_end());

  CertPtr leaf = h.pki.leaf("load.example.com");
  auto id1 = client.send(h.pki.verify_request(leaf, "load.example.com"));
  ASSERT_TRUE(id1.ok());
  while (handlers_started.load() == 0) std::this_thread::yield();

  // The bound is taken: the next request is rejected synchronously.
  auto id2 = client.send(h.pki.verify_request(leaf, "load.example.com"));
  ASSERT_TRUE(id2.ok());
  auto rejected = client.receive(id2.value());
  ASSERT_TRUE(rejected.ok()) << rejected.error();
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_EQ(rejected.value().kind, ErrorKind::kOverloaded);
  EXPECT_EQ(h.registry.counter("anchor_anchord_overloads_total").value(), 1u);

  // The admitted request still completes once released — overload sheds
  // new load, it never cancels accepted work.
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  auto accepted = client.receive(id1.value());
  ASSERT_TRUE(accepted.ok()) << accepted.error();
  EXPECT_TRUE(accepted.value().ok);
}

TEST(AnchordServer, ExpiredDeadlineAnswersTimeoutWithoutVerifying) {
  AnchordConfig config;
  config.request_timeout_ms = 20;
  config.handler_gate = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  };
  Harness h(config);
  AnchordClient client(h.client_end());

  CertPtr leaf = h.pki.leaf("late.example.com");
  auto response = client.call(h.pki.verify_request(leaf, "late.example.com"));
  ASSERT_TRUE(response.ok()) << response.error();
  EXPECT_FALSE(response.value().ok);
  EXPECT_EQ(response.value().kind, ErrorKind::kTimeout);
  EXPECT_EQ(h.registry.counter("anchor_anchord_timeouts_total").value(), 1u);
  // The verifier never ran: no verify call was recorded by the service.
  EXPECT_EQ(h.service.stats().calls, 0u);
}

// --- transports and concurrency -------------------------------------------

TEST(AnchordServer, RoundTripOverSocketpair) {
  Harness h;  // serve thread on the memory pair is idle; we add a real one
  auto pair = make_socketpair_conduit();
  ASSERT_TRUE(pair.ok()) << pair.error();
  ConduitPair fds = std::move(pair).take();
  std::thread serve([&] { h.server->serve(*fds.second); });
  {
    AnchordClient client(*fds.first);
    CertPtr leaf = h.pki.leaf("unix.example.com");
    auto response =
        client.call(h.pki.verify_request(leaf, "unix.example.com"));
    ASSERT_TRUE(response.ok()) << response.error();
    EXPECT_TRUE(response.value().ok);
    EXPECT_EQ(response.value().stats.chain_len, 3u);
  }
  fds.first->close();
  serve.join();
}

// Many connections, each pipelining a mix of accepting and rejecting
// requests: every response must match its request's expected verdict (the
// TSan target for this suite).
TEST(AnchordServer, ConcurrentConnectionsWithPipelining) {
  AnchordConfig config;
  config.workers = 4;
  Harness h(config);

  constexpr int kConnections = 4;
  constexpr int kRequestsPerConnection = 12;
  CertPtr good = h.pki.leaf("good.example.com");
  CertPtr other = h.pki.leaf("bad.example.com");

  std::vector<std::thread> serve_threads;
  std::vector<ConduitPair> pairs;
  pairs.reserve(kConnections);
  for (int c = 0; c < kConnections; ++c) {
    pairs.push_back(make_memory_conduit());
    serve_threads.emplace_back(
        [&, c] { h.server->serve(*pairs[static_cast<std::size_t>(c)].second); });
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      AnchordClient client(*pairs[static_cast<std::size_t>(c)].first);
      std::vector<std::pair<std::uint64_t, bool>> expect;
      for (int i = 0; i < kRequestsPerConnection; ++i) {
        const bool accept = i % 2 == 0;
        Request request =
            h.pki.verify_request(accept ? good : other, "good.example.com");
        auto id = client.send(std::move(request));
        if (!id.ok()) {
          ++mismatches;
          continue;
        }
        expect.emplace_back(id.value(), accept);
      }
      // Claim in reverse submission order to exercise out-of-order match.
      for (auto it = expect.rbegin(); it != expect.rend(); ++it) {
        auto response = client.receive(it->first);
        if (!response.ok() || response.value().ok != it->second ||
            response.value().correlation_id != it->first) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kConnections; ++c) {
    pairs[static_cast<std::size_t>(c)].first->close();
  }
  for (auto& t : serve_threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(
      h.registry.counter("anchor_anchord_requests_total", {{"verb", "verify"}})
          .value(),
      static_cast<std::uint64_t>(kConnections) * kRequestsPerConnection);
}

}  // namespace
}  // namespace anchor::anchord
