#include "rsf/merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chain/pool.hpp"
#include "chain/verifier.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::rsf {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

const std::string kGcc =
    "valid(Chain, \"TLS\") :- leaf(Chain, L), notBefore(L, NB), NB < 100.";

TEST(Merge, CleanUnionOfDisjointStores) {
  rootstore::RootStore primary;
  (void)primary.add_trusted(make_root("P1"));
  (void)primary.add_trusted(make_root("P2"));
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(make_root("LocalCorp Root"));

  MergeResult result = merge(primary, derivative);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.merged.trusted_count(), 3u);
}

TEST(Merge, FlagsDistrustedReAdd) {
  // The Amazon Linux case: derivative re-adds roots NSS removed.
  CertPtr removed = make_root("Removed Root");
  rootstore::RootStore primary;
  primary.distrust(removed->fingerprint_hex(), "compliance incident");
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(removed);

  MergeResult result = merge(primary, derivative, MergePolicy::kPrimaryWins);
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0].kind, ConflictKind::kDistrustedReAdded);
  EXPECT_EQ(result.conflicts[0].root_hash, removed->fingerprint_hex());
  // Primary wins: the root stays distrusted.
  EXPECT_EQ(result.merged.state_of(removed->fingerprint_hex()),
            rootstore::TrustState::kDistrusted);
}

TEST(Merge, DerivativeWinsPolicyReAddsRoot) {
  CertPtr removed = make_root("Removed Root");
  rootstore::RootStore primary;
  primary.distrust(removed->fingerprint_hex(), "incident");
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(removed);

  MergeResult result = merge(primary, derivative, MergePolicy::kDerivativeWins);
  ASSERT_EQ(result.conflicts.size(), 1u);  // still flagged
  EXPECT_EQ(result.merged.state_of(removed->fingerprint_hex()),
            rootstore::TrustState::kTrusted);
}

TEST(Merge, SixteenReAddedRootsProduceSixteenConflicts) {
  // Ma et al.: "Amazon Linux re-added 16 root certificates after they had
  // been explicitly removed by NSS."
  rootstore::RootStore primary;
  rootstore::RootStore derivative;
  for (int i = 0; i < 16; ++i) {
    CertPtr root = make_root("ReAdded " + std::to_string(i));
    primary.distrust(root->fingerprint_hex(), "removed by NSS");
    (void)derivative.add_trusted(root);
  }
  MergeResult result = merge(primary, derivative);
  EXPECT_EQ(result.conflicts.size(), 16u);
  for (const auto& conflict : result.conflicts) {
    EXPECT_EQ(conflict.kind, ConflictKind::kDistrustedReAdded);
  }
}

TEST(Merge, MetadataMismatchFlagged) {
  CertPtr shared = make_root("Shared Root");
  rootstore::RootStore primary;
  rootstore::RootMetadata strict;
  strict.tls_distrust_after = 1000;
  (void)primary.add_trusted(shared, strict);
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(shared, rootstore::RootMetadata{});

  MergeResult result = merge(primary, derivative, MergePolicy::kPrimaryWins);
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0].kind, ConflictKind::kMetadataMismatch);
  // Primary metadata survives.
  EXPECT_EQ(result.merged.find(shared->fingerprint_hex())
                ->metadata.tls_distrust_after,
            1000);
}

TEST(Merge, IdenticalMetadataIsNotAConflict) {
  CertPtr shared = make_root("Shared Root");
  rootstore::RootMetadata metadata;
  metadata.ev_allowed = true;
  rootstore::RootStore primary;
  (void)primary.add_trusted(shared, metadata);
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(shared, metadata);
  EXPECT_TRUE(merge(primary, derivative).clean());
}

TEST(Merge, DerivativeLocalDistrustNarrowsTrust) {
  CertPtr root = make_root("Primary Root");
  rootstore::RootStore primary;
  (void)primary.add_trusted(root);
  rootstore::RootStore derivative;
  derivative.distrust(root->fingerprint_hex(), "local policy");

  MergeResult result = merge(primary, derivative);
  EXPECT_EQ(result.merged.state_of(root->fingerprint_hex()),
            rootstore::TrustState::kDistrusted);
  EXPECT_EQ(result.conflicts.size(), 1u);  // surfaced as divergence
}

TEST(Merge, GccsAreUnioned) {
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  rootstore::RootStore primary;
  (void)primary.add_trusted(a);
  (void)primary.add_trusted(b);
  primary.attach_gcc(
      core::Gcc::create("primary-gcc", a->fingerprint_hex(), kGcc).take());
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(a);
  derivative.attach_gcc(
      core::Gcc::create("local-gcc", b->fingerprint_hex(), kGcc).take());

  MergeResult result = merge(primary, derivative);
  EXPECT_EQ(result.merged.gccs().total(), 2u);
  EXPECT_EQ(result.merged.gccs().for_root(a->fingerprint_hex()).size(), 1u);
  EXPECT_EQ(result.merged.gccs().for_root(b->fingerprint_hex()).size(), 1u);
}

TEST(Merge, PrimaryGccWinsNameCollision) {
  CertPtr a = make_root("A");
  rootstore::RootStore primary;
  (void)primary.add_trusted(a);
  primary.attach_gcc(
      core::Gcc::create("shared-name", a->fingerprint_hex(), kGcc, "primary")
          .take());
  rootstore::RootStore derivative;
  derivative.attach_gcc(
      core::Gcc::create("shared-name", a->fingerprint_hex(), kGcc, "local")
          .take());

  MergeResult result = merge(primary, derivative);
  const auto& gccs = result.merged.gccs().for_root(a->fingerprint_hex());
  ASSERT_EQ(gccs.size(), 1u);
  EXPECT_EQ(gccs[0].justification(), "primary");
}

TEST(Merge, BothDistrustSameRootKeepsPrimaryJustification) {
  // When primary and derivative agree a root is distrusted, the primary's
  // justification is the authoritative provenance (Bugzilla link, incident
  // id) and must survive the merge; it used to be silently overwritten by
  // the derivative's copy.
  CertPtr root = make_root("Twice Removed");
  const std::string hash = root->fingerprint_hex();
  rootstore::RootStore primary;
  primary.distrust(hash, "CVE-2023-0001 (NSS bug 1234567)");
  rootstore::RootStore derivative;
  derivative.distrust(hash, "synced from upstream");

  MergeResult result = merge(primary, derivative);
  EXPECT_TRUE(result.clean());  // agreement, not a conflict
  EXPECT_EQ(result.merged.distrusted().at(hash),
            "CVE-2023-0001 (NSS bug 1234567)");
}

TEST(Merge, DerivativeJustificationFillsUnexplainedPrimaryDistrust) {
  // The one both-distrust case where the derivative adds information: the
  // primary never said why.
  CertPtr root = make_root("Unexplained");
  const std::string hash = root->fingerprint_hex();
  rootstore::RootStore primary;
  primary.distrust(hash);
  rootstore::RootStore derivative;
  derivative.distrust(hash, "local audit finding");

  MergeResult result = merge(primary, derivative);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.merged.distrusted().at(hash), "local audit finding");
}

TEST(Merge, LocalDistrustGetsDedicatedConflictKind) {
  // Derivative distrusting a primary-trusted root used to be reported as
  // kMetadataMismatch, making `anchorctl` merge reports indistinguishable
  // from a benign EV-bit skew. It has its own kind now.
  CertPtr root = make_root("Locally Removed");
  rootstore::RootStore primary;
  (void)primary.add_trusted(root);
  rootstore::RootStore derivative;
  derivative.distrust(root->fingerprint_hex(), "local policy");

  MergeResult result = merge(primary, derivative);
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0].kind, ConflictKind::kLocalDistrust);
  EXPECT_STREQ(to_string(result.conflicts[0].kind), "local-distrust");
  EXPECT_EQ(result.merged.state_of(root->fingerprint_hex()),
            rootstore::TrustState::kDistrusted);
}

TEST(Merge, ConflictKindNamesAreDistinct) {
  EXPECT_STREQ(to_string(ConflictKind::kDistrustedReAdded),
               "distrusted-re-added");
  EXPECT_STREQ(to_string(ConflictKind::kMetadataMismatch),
               "metadata-mismatch");
  EXPECT_STREQ(to_string(ConflictKind::kLocalDistrust), "local-distrust");
}

TEST(Merge, GccUnionDedupesManyOverlappingNames) {
  // Exercises the per-root name-set dedup path (the old nested scan was
  // quadratic; see bench_rsf_merge's many-GCCs case for the perf side).
  CertPtr a = make_root("A");
  const std::string hash = a->fingerprint_hex();
  rootstore::RootStore primary;
  (void)primary.add_trusted(a);
  rootstore::RootStore derivative;
  constexpr int kCount = 64;
  for (int g = 0; g < kCount; ++g) {
    primary.attach_gcc(
        core::Gcc::create("constraint-" + std::to_string(g), hash, kGcc,
                          "primary")
            .take());
    // Even names collide (must dedup, primary copy wins), odd are local.
    const std::string name = g % 2 == 0 ? "constraint-" + std::to_string(g)
                                        : "local-" + std::to_string(g);
    derivative.attach_gcc(core::Gcc::create(name, hash, kGcc, "local").take());
  }

  MergeResult result = merge(primary, derivative);
  const auto& merged = result.merged.gccs().for_root(hash);
  EXPECT_EQ(merged.size(), static_cast<std::size_t>(kCount + kCount / 2));
  for (const core::Gcc& gcc : merged) {
    if (gcc.name().rfind("constraint-", 0) == 0) {
      EXPECT_EQ(gcc.justification(), "primary") << gcc.name();
    } else {
      EXPECT_EQ(gcc.justification(), "local") << gcc.name();
    }
  }
}

TEST(Merge, OutputInvariantUnderInsertionOrder) {
  // Property test for the canonical-serialization contract: two stores with
  // equal content merge to byte-identical serializations no matter the
  // order their entries were inserted in. Delta replay, feed content hashes
  // and merge reports all rely on this.
  constexpr int kRoots = 12;
  std::vector<CertPtr> roots;
  for (int i = 0; i < kRoots; ++i) {
    roots.push_back(make_root("Order Root " + std::to_string(i)));
  }

  // Deterministic permutation schedule (no RNG: rotations + a reversal give
  // distinct orders without extra machinery).
  auto build_pair = [&](int rotation, bool reversed) {
    std::vector<int> order;
    for (int i = 0; i < kRoots; ++i) order.push_back((i + rotation) % kRoots);
    if (reversed) std::reverse(order.begin(), order.end());

    rootstore::RootStore primary;
    rootstore::RootStore derivative;
    for (int index : order) {
      const CertPtr& root = roots[index];
      const std::string hash = root->fingerprint_hex();
      if (index % 3 == 0) {
        primary.distrust(hash, "incident " + std::to_string(index));
      } else {
        rootstore::RootMetadata metadata;
        metadata.ev_allowed = index % 2 == 0;
        (void)primary.add_trusted(root, metadata);
        primary.attach_gcc(
            core::Gcc::create("c-" + std::to_string(index), hash, kGcc).take());
      }
      if (index % 4 == 0) {
        derivative.add_trusted_unchecked(root);  // re-add / overlap mix
      } else if (index % 4 == 1) {
        derivative.distrust(hash, "local " + std::to_string(index));
      } else {
        derivative.attach_gcc(
            core::Gcc::create("d-" + std::to_string(index), hash, kGcc).take());
      }
    }
    return merge(primary, derivative);
  };

  const MergeResult reference = build_pair(0, false);
  const std::string canonical = reference.merged.serialize();
  ASSERT_FALSE(canonical.empty());
  for (int rotation : {1, 3, 7}) {
    for (bool reversed : {false, true}) {
      MergeResult permuted = build_pair(rotation, reversed);
      EXPECT_EQ(permuted.merged.serialize(), canonical)
          << "rotation=" << rotation << " reversed=" << reversed;
      EXPECT_EQ(permuted.conflicts.size(), reference.conflicts.size());
    }
  }
}

TEST(Merge, ThreeStoreFoldOrderIsVerdictInvariant) {
  // Property test over randomized three-primary topologies (the E15 census
  // shape): folding two derivatives into a primary with kPrimaryWins must
  // yield the same *verdict* for every chain regardless of fold order —
  //
  //     merge(merge(A, B), C)  ≡v  merge(merge(A, C), B)
  //
  // Conflict lists and justifications may differ between orders (they
  // record the path taken); trust decisions may not. Derivative metadata
  // and GCCs are deterministic per root, mirroring real derivatives that
  // sync from the same upstream — with *conflicting* derivative metadata
  // the fold is genuinely order-dependent, which is exactly why
  // kPrimaryWins pins the primary's copy whenever the primary carries the
  // root at all.
  constexpr int kRoots = 24;
  const std::string reject_late =
      "valid(Chain, \"TLS\") :- leaf(Chain, L), notBefore(L, NB), NB < 100.";

  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(0x3f01d + seed);

    // Shared PKI: every root signs one leaf; half the leaves are "late"
    // (notBefore 200) so attached GCCs change verdicts, not just shape.
    SimSig registry;
    std::vector<CertPtr> roots;
    std::vector<CertPtr> leaves;
    for (int i = 0; i < kRoots; ++i) {
      const std::string name = "Fold Root " + std::to_string(i);
      SimKeyPair key = SimSig::keygen(name);
      registry.register_key(key);
      roots.push_back(make_root(name));
      const std::int64_t not_before = rng.chance(0.5) ? 0 : 200;
      leaves.push_back(
          CertificateBuilder()
              .serial(100 + static_cast<std::uint64_t>(i))
              .subject(DistinguishedName::make("leaf" + std::to_string(i),
                                               "Org"))
              .issuer(DistinguishedName::make(name, "Org"))
              .validity(not_before, unix_date(2040, 1, 1))
              .public_key(SimSig::keygen("leaf" + std::to_string(i)).key_id)
              .dns_names({"host" + std::to_string(i) + ".test"})
              .sign(key)
              .take());
    }

    // Derivative metadata/GCC as deterministic functions of the root index.
    auto derivative_metadata = [](int i) {
      rootstore::RootMetadata metadata;
      metadata.ev_allowed = i % 2 == 0;
      return metadata;
    };

    rootstore::RootStore a, b, c;
    for (int i = 0; i < kRoots; ++i) {
      const std::string hash = roots[static_cast<std::size_t>(i)]
                                   ->fingerprint_hex();
      // Primary: trusts most roots, distrusts a few, skips a few.
      if (rng.chance(0.15)) {
        a.distrust(hash, "primary incident");
      } else if (!rng.chance(0.15)) {
        rootstore::RootMetadata metadata;
        metadata.ev_allowed = true;
        if (rng.chance(0.25)) metadata.tls_distrust_after = 150;
        (void)a.add_trusted(roots[static_cast<std::size_t>(i)], metadata);
        if (rng.chance(0.3)) {
          a.attach_gcc(
              core::Gcc::create("a-" + std::to_string(i), hash, reject_late)
                  .take());
        }
      }
      // Derivatives: independent carry/distrust decisions, shared metadata.
      for (auto* derivative : {&b, &c}) {
        if (rng.chance(0.2)) {
          derivative->distrust(hash, "derivative policy");
        } else if (rng.chance(0.75)) {
          derivative->add_trusted_unchecked(
              roots[static_cast<std::size_t>(i)], derivative_metadata(i));
          if (rng.chance(0.4)) {
            const char* prefix = derivative == &b ? "b-" : "c-";
            derivative->attach_gcc(
                core::Gcc::create(prefix + std::to_string(i), hash,
                                  reject_late)
                    .take());
          }
        }
      }
    }

    const rootstore::RootStore abc =
        merge(merge(a, b).merged, c).merged;
    const rootstore::RootStore acb =
        merge(merge(a, c).merged, b).merged;

    chain::ChainVerifier verify_abc(abc, registry);
    chain::ChainVerifier verify_acb(acb, registry);
    chain::CertificatePool empty_pool;
    for (int i = 0; i < kRoots; ++i) {
      chain::VerifyOptions options;
      options.time = 250;
      options.hostname = "host" + std::to_string(i) + ".test";
      const bool ok_abc =
          verify_abc
              .verify(leaves[static_cast<std::size_t>(i)], empty_pool, options)
              .ok;
      const bool ok_acb =
          verify_acb
              .verify(leaves[static_cast<std::size_t>(i)], empty_pool, options)
              .ok;
      EXPECT_EQ(ok_abc, ok_acb) << "seed=" << seed << " root=" << i;
    }
  }
}

TEST(Merge, EmptyStoresMergeToEmpty) {
  rootstore::RootStore primary;
  rootstore::RootStore derivative;
  MergeResult result = merge(primary, derivative);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.merged.trusted_count(), 0u);
}

}  // namespace
}  // namespace anchor::rsf
