#include "rsf/merge.hpp"

#include <gtest/gtest.h>

#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::rsf {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

const std::string kGcc =
    "valid(Chain, \"TLS\") :- leaf(Chain, L), notBefore(L, NB), NB < 100.";

TEST(Merge, CleanUnionOfDisjointStores) {
  rootstore::RootStore primary;
  (void)primary.add_trusted(make_root("P1"));
  (void)primary.add_trusted(make_root("P2"));
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(make_root("LocalCorp Root"));

  MergeResult result = merge(primary, derivative);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.merged.trusted_count(), 3u);
}

TEST(Merge, FlagsDistrustedReAdd) {
  // The Amazon Linux case: derivative re-adds roots NSS removed.
  CertPtr removed = make_root("Removed Root");
  rootstore::RootStore primary;
  primary.distrust(removed->fingerprint_hex(), "compliance incident");
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(removed);

  MergeResult result = merge(primary, derivative, MergePolicy::kPrimaryWins);
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0].kind, ConflictKind::kDistrustedReAdded);
  EXPECT_EQ(result.conflicts[0].root_hash, removed->fingerprint_hex());
  // Primary wins: the root stays distrusted.
  EXPECT_EQ(result.merged.state_of(removed->fingerprint_hex()),
            rootstore::TrustState::kDistrusted);
}

TEST(Merge, DerivativeWinsPolicyReAddsRoot) {
  CertPtr removed = make_root("Removed Root");
  rootstore::RootStore primary;
  primary.distrust(removed->fingerprint_hex(), "incident");
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(removed);

  MergeResult result = merge(primary, derivative, MergePolicy::kDerivativeWins);
  ASSERT_EQ(result.conflicts.size(), 1u);  // still flagged
  EXPECT_EQ(result.merged.state_of(removed->fingerprint_hex()),
            rootstore::TrustState::kTrusted);
}

TEST(Merge, SixteenReAddedRootsProduceSixteenConflicts) {
  // Ma et al.: "Amazon Linux re-added 16 root certificates after they had
  // been explicitly removed by NSS."
  rootstore::RootStore primary;
  rootstore::RootStore derivative;
  for (int i = 0; i < 16; ++i) {
    CertPtr root = make_root("ReAdded " + std::to_string(i));
    primary.distrust(root->fingerprint_hex(), "removed by NSS");
    (void)derivative.add_trusted(root);
  }
  MergeResult result = merge(primary, derivative);
  EXPECT_EQ(result.conflicts.size(), 16u);
  for (const auto& conflict : result.conflicts) {
    EXPECT_EQ(conflict.kind, ConflictKind::kDistrustedReAdded);
  }
}

TEST(Merge, MetadataMismatchFlagged) {
  CertPtr shared = make_root("Shared Root");
  rootstore::RootStore primary;
  rootstore::RootMetadata strict;
  strict.tls_distrust_after = 1000;
  (void)primary.add_trusted(shared, strict);
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(shared, rootstore::RootMetadata{});

  MergeResult result = merge(primary, derivative, MergePolicy::kPrimaryWins);
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0].kind, ConflictKind::kMetadataMismatch);
  // Primary metadata survives.
  EXPECT_EQ(result.merged.find(shared->fingerprint_hex())
                ->metadata.tls_distrust_after,
            1000);
}

TEST(Merge, IdenticalMetadataIsNotAConflict) {
  CertPtr shared = make_root("Shared Root");
  rootstore::RootMetadata metadata;
  metadata.ev_allowed = true;
  rootstore::RootStore primary;
  (void)primary.add_trusted(shared, metadata);
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(shared, metadata);
  EXPECT_TRUE(merge(primary, derivative).clean());
}

TEST(Merge, DerivativeLocalDistrustNarrowsTrust) {
  CertPtr root = make_root("Primary Root");
  rootstore::RootStore primary;
  (void)primary.add_trusted(root);
  rootstore::RootStore derivative;
  derivative.distrust(root->fingerprint_hex(), "local policy");

  MergeResult result = merge(primary, derivative);
  EXPECT_EQ(result.merged.state_of(root->fingerprint_hex()),
            rootstore::TrustState::kDistrusted);
  EXPECT_EQ(result.conflicts.size(), 1u);  // surfaced as divergence
}

TEST(Merge, GccsAreUnioned) {
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  rootstore::RootStore primary;
  (void)primary.add_trusted(a);
  (void)primary.add_trusted(b);
  primary.gccs().attach(
      core::Gcc::create("primary-gcc", a->fingerprint_hex(), kGcc).take());
  rootstore::RootStore derivative;
  (void)derivative.add_trusted(a);
  derivative.gccs().attach(
      core::Gcc::create("local-gcc", b->fingerprint_hex(), kGcc).take());

  MergeResult result = merge(primary, derivative);
  EXPECT_EQ(result.merged.gccs().total(), 2u);
  EXPECT_EQ(result.merged.gccs().for_root(a->fingerprint_hex()).size(), 1u);
  EXPECT_EQ(result.merged.gccs().for_root(b->fingerprint_hex()).size(), 1u);
}

TEST(Merge, PrimaryGccWinsNameCollision) {
  CertPtr a = make_root("A");
  rootstore::RootStore primary;
  (void)primary.add_trusted(a);
  primary.gccs().attach(
      core::Gcc::create("shared-name", a->fingerprint_hex(), kGcc, "primary")
          .take());
  rootstore::RootStore derivative;
  derivative.gccs().attach(
      core::Gcc::create("shared-name", a->fingerprint_hex(), kGcc, "local")
          .take());

  MergeResult result = merge(primary, derivative);
  const auto& gccs = result.merged.gccs().for_root(a->fingerprint_hex());
  ASSERT_EQ(gccs.size(), 1u);
  EXPECT_EQ(gccs[0].justification(), "primary");
}

TEST(Merge, EmptyStoresMergeToEmpty) {
  rootstore::RootStore primary;
  rootstore::RootStore derivative;
  MergeResult result = merge(primary, derivative);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.merged.trusted_count(), 0u);
}

}  // namespace
}  // namespace anchor::rsf
