// CompressedRevocationSet (CRLite-style filter cascade) suite: the
// zero-false-positive construction pin over full enrolled serial
// universes, Provider semantics (kUnknown outside coverage), serialization
// round trips, store/snapshot carriage, RSF delta delivery through
// rsf::RsfClient, and a TSan-exercised adoption-while-verifying run that
// models anchord reacting to a feed update carrying a revocation filter.
#include "revocation/crlite.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chain/service.hpp"
#include "chain/verifier.hpp"
#include "rootstore/snapshot/view.hpp"
#include "rootstore/snapshot/writer.hpp"
#include "rootstore/store.hpp"
#include "rsf/client.hpp"
#include "rsf/delta.hpp"
#include "rsf/feed.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::revocation {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
  }
  return out;
}

// Unique 5-byte serial: 4 bytes of counter plus the issuer index, so no
// (issuer, serial) pair can land on both sides of the revoked/valid split.
Bytes serial_for(std::size_t issuer, std::size_t i) {
  return Bytes{static_cast<std::uint8_t>(issuer),
               static_cast<std::uint8_t>(i >> 24),
               static_cast<std::uint8_t>(i >> 16),
               static_cast<std::uint8_t>(i >> 8),
               static_cast<std::uint8_t>(i)};
}

// A mini PKI mirroring revocation_test.cpp's fixture, for the Provider and
// verifier-integration tests.
struct CrlitePki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("Crlite Root");
  SimKeyPair int_key = SimSig::keygen("Crlite Int");
  SimKeyPair other_key = SimSig::keygen("Crlite Other Int");
  CertPtr root, intermediate, other_intermediate;
  rootstore::RootStore store;
  static constexpr std::int64_t kNow = 1700000000;

  CrlitePki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Crlite Root", "T"))
               .issuer(DistinguishedName::make("Crlite Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    auto make_int = [&](const std::string& name, const SimKeyPair& key,
                        std::uint64_t serial) {
      return CertificateBuilder()
          .serial(serial)
          .subject(DistinguishedName::make(name, "T"))
          .issuer(root->subject())
          .validity(0, unix_date(2039, 1, 1))
          .public_key(key.key_id)
          .ca(0)
          .sign(root_key)
          .take();
    };
    intermediate = make_int("Crlite Int", int_key, 2);
    other_intermediate = make_int("Crlite Other Int", other_key, 3);
    sigs.register_key(root_key);
    sigs.register_key(int_key);
    sigs.register_key(other_key);
    (void)store.add_trusted(root);
  }

  CertPtr leaf(const std::string& domain, const SimKeyPair& issuer_key,
               const CertPtr& issuer, std::uint64_t serial) {
    SimKeyPair key = SimSig::keygen("cleaf" + domain);
    return CertificateBuilder()
        .serial(serial)
        .subject(DistinguishedName::make(domain))
        .issuer(issuer->subject())
        .validity(kNow - 86400, kNow + 90 * 86400)
        .public_key(key.key_id)
        .dns_names({domain})
        .extended_key_usage({x509::oids::kp_server_auth()})
        .sign(issuer_key)
        .take();
  }

  chain::VerifyOptions tls(const std::string& host) const {
    chain::VerifyOptions options;
    options.time = kNow;
    options.hostname = host;
    return options;
  }
};

TEST(Crlite, NoFalsePositivesOverEnrolledUniverses) {
  // Three enrolled issuers, each with its full serial universe declared:
  // the cascade must answer every single key correctly — zero false
  // positives and zero false negatives, by construction, not probability.
  Rng rng(0x5eed);
  constexpr std::size_t kIssuers = 3;
  constexpr std::size_t kRevokedPer = 40;
  constexpr std::size_t kValidPer = 160;

  CompressedRevocationSet::Builder builder;
  std::vector<Bytes> spkis;
  for (std::size_t issuer = 0; issuer < kIssuers; ++issuer) {
    spkis.push_back(random_bytes(rng, 32));
    for (std::size_t i = 0; i < kRevokedPer + kValidPer; ++i) {
      if (i < kRevokedPer) {
        builder.add_revoked(BytesView(spkis[issuer]),
                            BytesView(serial_for(issuer, i)));
      } else {
        builder.add_valid(BytesView(spkis[issuer]),
                          BytesView(serial_for(issuer, i)));
      }
    }
  }
  auto built = builder.build();
  ASSERT_TRUE(built.ok()) << built.error();
  const CompressedRevocationSet crs = std::move(built).take();

  EXPECT_EQ(crs.enrolled_count(), kIssuers);
  EXPECT_GE(crs.level_count(), 1u);
  EXPECT_GT(crs.filter_bytes(), 0u);
  EXPECT_LT(crs.filter_bytes(), crs.size_bytes());

  for (std::size_t issuer = 0; issuer < kIssuers; ++issuer) {
    EXPECT_TRUE(crs.is_enrolled(BytesView(spkis[issuer])));
    for (std::size_t i = 0; i < kRevokedPer + kValidPer; ++i) {
      EXPECT_EQ(crs.contains(BytesView(spkis[issuer]),
                             BytesView(serial_for(issuer, i))),
                i < kRevokedPer)
          << "issuer " << issuer << " serial " << i;
    }
  }
}

TEST(Crlite, SerializeRoundTrip) {
  Rng rng(0xabc);
  CompressedRevocationSet::Builder builder;
  Bytes spki = random_bytes(rng, 32);
  for (std::size_t i = 0; i < 50; ++i) {
    if (i % 5 == 0) {
      builder.add_revoked(BytesView(spki), BytesView(serial_for(0, i)));
    } else {
      builder.add_valid(BytesView(spki), BytesView(serial_for(0, i)));
    }
  }
  const CompressedRevocationSet crs = builder.build().take();

  auto parsed = CompressedRevocationSet::deserialize(crs.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value() == crs);
  EXPECT_EQ(parsed.value().serialize(), crs.serialize());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(parsed.value().contains(BytesView(spki),
                                      BytesView(serial_for(0, i))),
              i % 5 == 0);
  }

  EXPECT_FALSE(CompressedRevocationSet::deserialize("garbage").ok());
  EXPECT_FALSE(CompressedRevocationSet::deserialize("anchor-crlset/v1\n").ok());
}

TEST(Crlite, BuilderRejectsContradictoryUniverse) {
  Rng rng(1);
  Bytes spki = random_bytes(rng, 32);
  CompressedRevocationSet::Builder builder;
  builder.add_revoked(BytesView(spki), BytesView(serial_for(0, 7)));
  builder.add_valid(BytesView(spki), BytesView(serial_for(0, 7)));
  EXPECT_FALSE(builder.build().ok());
}

TEST(Crlite, ProviderSemantics) {
  CrlitePki pki;
  CertPtr victim = pki.leaf("bad.example.com", pki.int_key, pki.intermediate, 100);
  CertPtr sibling = pki.leaf("ok.example.com", pki.int_key, pki.intermediate, 101);

  CompressedRevocationSet::Builder builder;
  builder.add_revoked(*pki.intermediate, *victim);
  builder.add_valid(*pki.intermediate, *sibling);
  const CompressedRevocationSet crs = builder.build().take();

  EXPECT_STREQ(crs.name(), "crlite");
  EXPECT_TRUE(crs.is_enrolled(BytesView(pki.intermediate->public_key())));
  EXPECT_FALSE(crs.is_enrolled(BytesView(pki.other_intermediate->public_key())));

  EXPECT_EQ(crs.check(*victim, BytesView(pki.intermediate->public_key())),
            RevocationStatus::kRevoked);
  EXPECT_EQ(crs.check(*sibling, BytesView(pki.intermediate->public_key())),
            RevocationStatus::kGood);
  // Outside coverage: the caller must fall back to other sources.
  EXPECT_EQ(crs.check(*victim, BytesView(pki.other_intermediate->public_key())),
            RevocationStatus::kUnknown);
}

TEST(Crlite, VerifierConsultsRegisteredFilter) {
  CrlitePki pki;
  CertPtr victim = pki.leaf("bad.example.com", pki.int_key, pki.intermediate, 100);
  CertPtr sibling = pki.leaf("ok.example.com", pki.int_key, pki.intermediate, 101);
  chain::CertificatePool pool;
  pool.add(pki.intermediate);

  CompressedRevocationSet::Builder builder;
  builder.add_revoked(*pki.intermediate, *victim);
  builder.add_valid(*pki.intermediate, *sibling);
  auto crs = std::make_shared<CompressedRevocationSet>(builder.build().take());

  chain::ChainVerifier verifier(pki.store, pki.sigs);
  verifier.add_revocation_source(crs);
  chain::VerifyResult bad =
      verifier.verify(victim, pool, pki.tls("bad.example.com"));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.kind, chain::ErrorKind::kRevoked);
  EXPECT_TRUE(verifier.verify(sibling, pool, pki.tls("ok.example.com")).ok);
}

TEST(Crlite, StoreAndSnapshotCarryTheFilter) {
  CrlitePki pki;
  CertPtr victim = pki.leaf("bad.example.com", pki.int_key, pki.intermediate, 100);
  CompressedRevocationSet::Builder builder;
  builder.add_revoked(*pki.intermediate, *victim);
  auto crs = std::make_shared<const CompressedRevocationSet>(
      builder.build().take());

  pki.store.set_revocation_filter(crs);
  ASSERT_NE(pki.store.revocation_filter(), nullptr);

  // Text serialization (the RSF snapshot payload) round-trips the filter.
  auto parsed = rootstore::RootStore::deserialize(pki.store.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_NE(parsed.value().revocation_filter(), nullptr);
  EXPECT_TRUE(*parsed.value().revocation_filter() == *crs);
  EXPECT_EQ(parsed.value().serialize(), pki.store.serialize());

  // The mmap snapshot container carries it too, and a view-backed verifier
  // picks it up without any registration call.
  Bytes image = rootstore::snapshot::write_snapshot(pki.store);
  auto opened = rootstore::snapshot::StoreView::from_bytes(std::move(image));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.view->info().revocation_count, 1u);
  ASSERT_NE(opened.view->revocation_filter(), nullptr);
  EXPECT_TRUE(*opened.view->revocation_filter() == *crs);

  chain::CertificatePool pool;
  pool.add(pki.intermediate);
  chain::ChainVerifier verifier(*opened.view, pki.sigs);
  chain::VerifyResult rejected =
      verifier.verify(victim, pool, pki.tls("bad.example.com"));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.kind, chain::ErrorKind::kRevoked);
}

TEST(CrliteRsf, DeltaCarriesSetAndClearFilter) {
  CrlitePki pki;
  CertPtr victim = pki.leaf("bad.example.com", pki.int_key, pki.intermediate, 100);
  CompressedRevocationSet::Builder builder;
  builder.add_revoked(*pki.intermediate, *victim);
  auto crs = std::make_shared<const CompressedRevocationSet>(
      builder.build().take());

  rootstore::RootStore before = pki.store;
  rootstore::RootStore with_filter = pki.store;
  with_filter.set_revocation_filter(crs);
  rootstore::RootStore cleared = with_filter;
  cleared.set_revocation_filter(nullptr);

  rsf::StoreDelta set_delta = rsf::StoreDelta::diff(before, with_filter);
  ASSERT_NE(set_delta.set_filter, nullptr);
  EXPECT_FALSE(set_delta.clear_filter);
  auto set_round = rsf::StoreDelta::deserialize(set_delta.serialize());
  ASSERT_TRUE(set_round.ok()) << set_round.error();
  rootstore::RootStore replayed = before;
  set_round.value().apply(replayed);
  EXPECT_EQ(replayed.serialize(), with_filter.serialize());

  rsf::StoreDelta clear_delta = rsf::StoreDelta::diff(with_filter, cleared);
  EXPECT_TRUE(clear_delta.clear_filter);
  EXPECT_EQ(clear_delta.set_filter, nullptr);
  clear_delta.apply(replayed);
  EXPECT_EQ(replayed.serialize(), cleared.serialize());
}

TEST(CrliteRsf, ClientAdoptsFilterOverDeltaTransport) {
  CrlitePki pki;
  CertPtr victim = pki.leaf("bad.example.com", pki.int_key, pki.intermediate, 100);
  CompressedRevocationSet::Builder builder;
  builder.add_revoked(*pki.intermediate, *victim);
  auto crs = std::make_shared<const CompressedRevocationSet>(
      builder.build().take());

  SimSig registry;
  rsf::Feed feed("primary", registry);
  std::int64_t now = 1000;
  feed.publish(pki.store, now, "seed store");

  rsf::RsfClient client(feed, 3600, rsf::MergePolicy::kPrimaryWins,
                        rsf::Transport::kDelta);
  client.poll_now(now + 1);
  ASSERT_EQ(client.last_applied_sequence(), 1u);
  EXPECT_EQ(client.store().revocation_filter(), nullptr);

  // The primary ships a revocation update: one delta, no trust changes.
  rootstore::RootStore next = pki.store;
  next.set_revocation_filter(crs);
  feed.publish(next, now + 3600, "enroll crlite filter");
  client.poll_now(now + 3601);
  ASSERT_EQ(client.last_applied_sequence(), 2u);
  ASSERT_NE(client.store().revocation_filter(), nullptr);
  EXPECT_TRUE(*client.store().revocation_filter() == *crs);
  EXPECT_GE(client.stats().deltas_applied, 1u);
  EXPECT_EQ(client.stats().delta_fallbacks, 0u);

  // And withdraws it again.
  rootstore::RootStore withdrawn = next;
  withdrawn.set_revocation_filter(nullptr);
  feed.publish(withdrawn, now + 7200, "clear crlite filter");
  client.poll_now(now + 7201);
  ASSERT_EQ(client.last_applied_sequence(), 3u);
  EXPECT_EQ(client.store().revocation_filter(), nullptr);
}

// The deployment loop under TSan: reader threads verify through a
// VerifyService while the RSF client adopts a feed update that carries a
// revocation filter; the adoption hook publishes the new store as an
// in-memory snapshot view (anchord's reaction). Before the update the
// victim chain verifies; after it, it is revoked.
TEST(CrliteRsf, ConcurrentVerifiesDuringFilterAdoption) {
  CrlitePki pki;
  CertPtr victim = pki.leaf("bad.example.com", pki.int_key, pki.intermediate, 100);
  CertPtr good = pki.leaf("ok.example.com", pki.int_key, pki.intermediate, 101);
  auto pool = std::make_shared<chain::CertificatePool>();
  pool->add(pki.intermediate);

  CompressedRevocationSet::Builder builder;
  builder.add_revoked(*pki.intermediate, *victim);
  builder.add_valid(*pki.intermediate, *good);
  auto crs = std::make_shared<const CompressedRevocationSet>(
      builder.build().take());

  metrics::Registry metrics_registry;
  chain::ServiceConfig config;
  config.threads = 2;
  chain::VerifyService service(pki.store, pki.sigs, config, metrics_registry);
  EXPECT_TRUE(service.verify(victim, *pool, pki.tls("bad.example.com")).ok);

  SimSig feed_registry;
  rsf::Feed feed("primary", feed_registry);
  std::int64_t now = 1000;
  feed.publish(pki.store, now, "seed store");
  rootstore::RootStore next = pki.store;
  next.set_revocation_filter(crs);
  feed.publish(next, now + 3600, "revocation update");

  rsf::RsfClient client(feed, 3600, rsf::MergePolicy::kPrimaryWins,
                        rsf::Transport::kDelta);
  client.set_adoption_hook([&](const rootstore::RootStore& adopted) {
    Bytes image = rootstore::snapshot::write_snapshot(adopted);
    auto opened = rootstore::snapshot::StoreView::from_bytes(std::move(image));
    ASSERT_TRUE(opened.ok());
    service.adopt_view(opened.view);
  });

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> verifies{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t]() {
      const CertPtr& leaf = (t % 2 == 0) ? victim : good;
      const std::string host =
          (t % 2 == 0) ? "bad.example.com" : "ok.example.com";
      while (!stop.load(std::memory_order_relaxed)) {
        chain::VerifyResult result = service.verify(leaf, *pool, pki.tls(host));
        // Whatever snapshot the verify raced with, `good` always passes
        // and `victim` only ever fails as revoked.
        if (host == "ok.example.com") {
          EXPECT_TRUE(result.ok);
        } else if (!result.ok) {
          EXPECT_EQ(result.kind, chain::ErrorKind::kRevoked);
        }
        verifies.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  client.poll_now(now + 1);          // adopt the seed snapshot
  client.poll_now(now + 3601);       // adopt the filter-carrying update
  while (verifies.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();

  ASSERT_EQ(client.last_applied_sequence(), 2u);
  chain::VerifyResult final_verdict =
      service.verify(victim, *pool, pki.tls("bad.example.com"));
  EXPECT_FALSE(final_verdict.ok);
  EXPECT_EQ(final_verdict.kind, chain::ErrorKind::kRevoked);
}

}  // namespace
}  // namespace anchor::revocation
