#include "x509/extensions.hpp"

#include <gtest/gtest.h>

#include "x509/oids.hpp"

namespace anchor::x509 {
namespace {

TEST(BasicConstraintsExt, RoundTripCa) {
  BasicConstraints bc{true, 3};
  auto decoded = BasicConstraints::decode(BytesView(bc.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().is_ca);
  EXPECT_EQ(decoded.value().path_len, 3);
}

TEST(BasicConstraintsExt, RoundTripNonCa) {
  BasicConstraints bc{false, std::nullopt};
  Bytes der = bc.encode();
  EXPECT_EQ(der, (Bytes{0x30, 0x00}));  // DEFAULT FALSE omitted: empty SEQ
  auto decoded = BasicConstraints::decode(BytesView(der));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().is_ca);
  EXPECT_FALSE(decoded.value().path_len.has_value());
}

TEST(BasicConstraintsExt, CaWithoutPathLen) {
  BasicConstraints bc{true, std::nullopt};
  auto decoded = BasicConstraints::decode(BytesView(bc.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().is_ca);
  EXPECT_FALSE(decoded.value().path_len.has_value());
}

TEST(BasicConstraintsExt, RejectsNegativePathLen) {
  Bytes bad{0x30, 0x06, 0x01, 0x01, 0xff, 0x02, 0x01, 0xff};  // pathLen -1
  EXPECT_FALSE(BasicConstraints::decode(BytesView(bad)).ok());
}

TEST(KeyUsageExt, RoundTripAllBits) {
  KeyUsage ku;
  ku.set(KeyUsageBit::kDigitalSignature);
  ku.set(KeyUsageBit::kKeyCertSign);
  ku.set(KeyUsageBit::kCrlSign);
  auto decoded = KeyUsage::decode(BytesView(ku.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().has(KeyUsageBit::kDigitalSignature));
  EXPECT_FALSE(decoded.value().has(KeyUsageBit::kKeyEncipherment));
  EXPECT_TRUE(decoded.value().has(KeyUsageBit::kKeyCertSign));
  EXPECT_TRUE(decoded.value().has(KeyUsageBit::kCrlSign));
}

TEST(KeyUsageExt, EachBitRoundTrips) {
  const KeyUsageBit bits[] = {
      KeyUsageBit::kDigitalSignature, KeyUsageBit::kNonRepudiation,
      KeyUsageBit::kKeyEncipherment,  KeyUsageBit::kDataEncipherment,
      KeyUsageBit::kKeyAgreement,     KeyUsageBit::kKeyCertSign,
      KeyUsageBit::kCrlSign};
  for (KeyUsageBit bit : bits) {
    KeyUsage ku;
    ku.set(bit);
    auto decoded = KeyUsage::decode(BytesView(ku.encode()));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().bits, ku.bits);
    ASSERT_EQ(ku.names().size(), 1u);
    EXPECT_EQ(KeyUsage::bit_by_name(ku.names()[0]), bit);
  }
}

TEST(KeyUsageExt, NamesMatchRfcSpelling) {
  KeyUsage ku;
  ku.set(KeyUsageBit::kDigitalSignature);
  ku.set(KeyUsageBit::kCrlSign);
  EXPECT_EQ(ku.names(), (std::vector<std::string>{"digitalSignature", "cRLSign"}));
  EXPECT_FALSE(KeyUsage::bit_by_name("notAUsage").has_value());
}

TEST(ExtendedKeyUsageExt, RoundTripAndNames) {
  ExtendedKeyUsage eku{{oids::kp_server_auth(), oids::kp_email_protection()}};
  auto decoded = ExtendedKeyUsage::decode(BytesView(eku.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().has(oids::kp_server_auth()));
  EXPECT_TRUE(decoded.value().has(oids::kp_email_protection()));
  EXPECT_FALSE(decoded.value().has(oids::kp_code_signing()));
  EXPECT_EQ(decoded.value().names(),
            (std::vector<std::string>{"id-kp-serverAuth", "id-kp-emailProtection"}));
}

TEST(ExtendedKeyUsageExt, UnknownPurposeRendersAsOid) {
  ExtendedKeyUsage eku{{asn1::Oid::from_string("1.2.3.4.5")}};
  EXPECT_EQ(eku.names(), (std::vector<std::string>{"1.2.3.4.5"}));
}

TEST(SubjectAltNameExt, RoundTrip) {
  SubjectAltName san{{"example.com", "*.example.com", "api.example.org"}};
  auto decoded = SubjectAltName::decode(BytesView(san.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().dns_names, san.dns_names);
}

TEST(SubjectAltNameExt, EmptyList) {
  SubjectAltName san;
  auto decoded = SubjectAltName::decode(BytesView(san.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().dns_names.empty());
}

TEST(NameConstraintsExt, RoundTripBothSubtrees) {
  NameConstraints nc;
  nc.permitted_dns = {"gouv.fr", "fr"};
  nc.excluded_dns = {"example.fr"};
  auto decoded = NameConstraints::decode(BytesView(nc.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().permitted_dns, nc.permitted_dns);
  EXPECT_EQ(decoded.value().excluded_dns, nc.excluded_dns);
}

TEST(NameConstraintsExt, PermittedOnly) {
  NameConstraints nc;
  nc.permitted_dns = {"in"};
  auto decoded = NameConstraints::decode(BytesView(nc.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().permitted_dns, nc.permitted_dns);
  EXPECT_TRUE(decoded.value().excluded_dns.empty());
}

TEST(NameConstraintsExt, AllowsSemantics) {
  NameConstraints nc;
  nc.permitted_dns = {"gov.in", "nic.in"};
  EXPECT_TRUE(nc.allows("portal.gov.in"));
  EXPECT_TRUE(nc.allows("gov.in"));
  EXPECT_TRUE(nc.allows("sub.nic.in"));
  EXPECT_FALSE(nc.allows("google.com"));
  EXPECT_FALSE(nc.allows("fakegov.in"));
}

TEST(NameConstraintsExt, ExcludedOverridesPermitted) {
  NameConstraints nc;
  nc.permitted_dns = {"fr"};
  nc.excluded_dns = {"evil.fr"};
  EXPECT_TRUE(nc.allows("bank.fr"));
  EXPECT_FALSE(nc.allows("sub.evil.fr"));
  EXPECT_FALSE(nc.allows("evil.fr"));
}

TEST(NameConstraintsExt, EmptyPermittedListAllowsAll) {
  NameConstraints nc;
  nc.excluded_dns = {"bad.com"};
  EXPECT_TRUE(nc.allows("anything.org"));
  EXPECT_FALSE(nc.allows("x.bad.com"));
}

TEST(CertificatePoliciesExt, RoundTripAndHas) {
  CertificatePolicies cp{{oids::ev_policy_marker(), oids::any_policy()}};
  auto decoded = CertificatePolicies::decode(BytesView(cp.encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().has(oids::ev_policy_marker()));
  EXPECT_TRUE(decoded.value().has(oids::any_policy()));
  EXPECT_FALSE(decoded.value().has(oids::kp_server_auth()));
}

TEST(KeyIdentifierExts, RoundTrip) {
  SubjectKeyIdentifier ski{Bytes{1, 2, 3, 4}};
  auto ski_decoded = SubjectKeyIdentifier::decode(BytesView(ski.encode()));
  ASSERT_TRUE(ski_decoded.ok());
  EXPECT_EQ(ski_decoded.value().key_id, ski.key_id);

  AuthorityKeyIdentifier aki{Bytes{9, 8, 7}};
  auto aki_decoded = AuthorityKeyIdentifier::decode(BytesView(aki.encode()));
  ASSERT_TRUE(aki_decoded.ok());
  EXPECT_EQ(aki_decoded.value().key_id, aki.key_id);
}

}  // namespace
}  // namespace anchor::x509
