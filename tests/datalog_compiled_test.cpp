// Unit tests for the compiled GCC evaluation pipeline: symbol interning,
// slot-resolved execution, session reuse, fail-closed compile-time checks
// and parity with the interpreted Evaluator on the corner cases the random
// differential sweep is unlikely to hit.
#include "datalog/compiled.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.hpp"

namespace anchor::datalog {
namespace {

std::vector<Tuple> compiled_tuples(const std::string& source,
                                   const std::string& predicate,
                                   std::size_t arity,
                                   Strategy strategy = Strategy::kSemiNaive,
                                   EvalStats* stats_out = nullptr) {
  auto program = parse_program(source).take();
  auto compiled = CompiledProgram::compile(program);
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? "" : compiled.error());
  Session session;
  session.prepare(compiled.value());
  EvalStats stats = compiled.value().run(session, strategy);
  if (stats_out != nullptr) *stats_out = stats;
  Database db;
  compiled.value().decode_model(session, db);
  std::vector<Tuple> tuples;
  if (const Relation* rel = db.find(predicate, arity)) tuples = rel->tuples();
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(Compiled, FactsAndJoins) {
  auto tuples = compiled_tuples(R"(
parent(alice, bob). parent(bob, carol). parent(bob, dave).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
)", "grandparent", 2);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{Value("alice"), Value("carol")},
                                        {Value("alice"), Value("dave")}}));
}

TEST(Compiled, RecursionBothStrategies) {
  const char* source = R"(
edge(1,2). edge(2,3). edge(3,1).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
)";
  EXPECT_EQ(compiled_tuples(source, "reach", 2, Strategy::kSemiNaive).size(),
            9u);
  EXPECT_EQ(compiled_tuples(source, "reach", 2, Strategy::kNaive).size(), 9u);
}

TEST(Compiled, StratifiedNegationAndComparisons) {
  auto tuples = compiled_tuples(R"(
n(1). n(5). n(10). flagged(5).
small(X) :- n(X), X < 6, \+flagged(X).
)", "small", 1);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{Value(std::int64_t{1})}}));
}

TEST(Compiled, ArithmeticAssignmentBothDirections) {
  auto fwd = compiled_tuples("a(3). r(Y) :- a(X), Y = X + 4.", "r", 1);
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0][0], Value(std::int64_t{7}));
  auto rev = compiled_tuples("a(3). r(Y) :- a(X), X * 5 = Y.", "r", 1);
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(rev[0][0], Value(std::int64_t{15}));
}

TEST(Compiled, SameVariableTwiceInAtom) {
  auto tuples = compiled_tuples(R"(
p(1, 1). p(1, 2). p(3, 3).
diag(X) :- p(X, X).
)", "diag", 1);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(Compiled, WildcardInPositiveAtomMatchesAnything) {
  auto tuples = compiled_tuples(R"(
p(1, 2). p(3, 4).
left(X) :- p(X, _).
)", "left", 1);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(Compiled, MixedTypeComparisonSemanticsMatchInterpreter) {
  EXPECT_TRUE(compiled_tuples(
      "a(1). b(\"1\"). r(X) :- a(X), b(Y), X = Y.", "r", 1).empty());
  EXPECT_EQ(compiled_tuples(
      "a(1). b(\"1\"). r(X) :- a(X), b(Y), X != Y.", "r", 1).size(), 1u);
  EvalStats stats;
  EXPECT_TRUE(compiled_tuples(
      "a(1). b(\"1\"). r(X) :- a(X), b(Y), X < Y.", "r", 1,
      Strategy::kSemiNaive, &stats).empty());
  EXPECT_EQ(stats.type_errors, 1u);
}

TEST(Compiled, ArithmeticOnStringCountsTypeError) {
  EvalStats stats;
  auto tuples = compiled_tuples("s(apple). r(Y) :- s(X), Y = X + 1.", "r", 1,
                                Strategy::kSemiNaive, &stats);
  EXPECT_TRUE(tuples.empty());
  EXPECT_EQ(stats.type_errors, 1u);
}

TEST(Compiled, OrderedStringComparisonGoesThroughPool) {
  auto tuples = compiled_tuples(R"(
s(apple). s(banana).
r(X) :- s(X), X < "b".
)", "r", 1);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{Value("apple")}}));
}

TEST(Compiled, BigIntegersAreBoxedCanonically) {
  // |v| >= 2^61 exceeds the inline range; boxing must keep equality exact.
  const std::int64_t big = (std::int64_t{1} << 62) + 12345;
  std::string source = "n(" + std::to_string(big) + "). n(" +
                       std::to_string(big) + "). n(1).\n"
                       "r(X) :- n(X), X > 100.\n";
  auto tuples = compiled_tuples(source, "r", 1);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0], Value(big));
}

TEST(Compiled, QueryHoldsOnGroundTuples) {
  auto program = parse_program(R"(
edge(a, b). edge(b, c).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
)").take();
  auto compiled = CompiledProgram::compile(program).take();
  Session session;
  session.prepare(compiled);
  compiled.run(session);
  const Value ac[2] = {Value("a"), Value("c")};
  EXPECT_TRUE(compiled.query_holds(session, "reach", ac));
  const Value ca[2] = {Value("c"), Value("a")};
  EXPECT_FALSE(compiled.query_holds(session, "reach", ca));
  // A value the program and facts never mention can't be in any tuple.
  const Value zz[2] = {Value("zebra"), Value("c")};
  EXPECT_FALSE(compiled.query_holds(session, "reach", zz));
  EXPECT_FALSE(compiled.query_holds(session, "nosuch", ac));
}

TEST(Compiled, SessionFactsFeedEvaluation) {
  auto program = parse_program("big(X) :- n(X), X > 10.").take();
  auto compiled = CompiledProgram::compile(program).take();
  Session session;
  session.prepare(compiled);
  const Value five[1] = {Value(std::int64_t{5})};
  const Value fifty[1] = {Value(std::int64_t{50})};
  const int n_rel = compiled.relation_index("n", 1);
  ASSERT_GE(n_rel, 0);
  EXPECT_TRUE(session.add_fact(n_rel, five));
  EXPECT_TRUE(session.add_fact(n_rel, fifty));
  EXPECT_FALSE(session.add_fact(n_rel, fifty));  // dedup
  compiled.run(session);
  const Value probe[1] = {Value(std::int64_t{50})};
  EXPECT_TRUE(compiled.query_holds(session, "big", probe));
  const Value probe5[1] = {Value(std::int64_t{5})};
  EXPECT_FALSE(compiled.query_holds(session, "big", probe5));
}

TEST(Compiled, SessionIsReusableAcrossPrograms) {
  Session session;
  auto first = CompiledProgram::compile(
      parse_program("p(1). q(X) :- p(X).").take()).take();
  session.prepare(first);
  first.run(session);
  const Value one[1] = {Value(std::int64_t{1})};
  EXPECT_TRUE(first.query_holds(session, "q", one));

  // Re-preparing against a different program must not leak prior state.
  auto second = CompiledProgram::compile(
      parse_program("r(2). s(X) :- r(X).").take()).take();
  session.prepare(second);
  second.run(session);
  const Value two[1] = {Value(std::int64_t{2})};
  EXPECT_TRUE(second.query_holds(session, "s", two));
  EXPECT_FALSE(second.query_holds(session, "s", one));
  EXPECT_EQ(second.relation_index("p", 1), -1);

  // And back to the first program: still clean.
  session.prepare(first);
  first.run(session);
  EXPECT_TRUE(first.query_holds(session, "q", one));
  EXPECT_FALSE(first.query_holds(session, "q", two));
}

TEST(Compiled, RejectsUnsafeAndUnstratifiablePrograms) {
  auto unsafe = CompiledProgram::compile(
      parse_program("p(X, Y) :- q(X).").take());
  ASSERT_FALSE(unsafe.ok());
  EXPECT_NE(unsafe.error().find("unsafe"), std::string::npos);

  auto unstrat = CompiledProgram::compile(
      parse_program("p(X) :- e(X), \\+q(X). q(X) :- e(X), \\+p(X).").take());
  EXPECT_FALSE(unstrat.ok());
}

TEST(Compiled, RejectsWildcardHeadAtCompileTime) {
  // The interpreter only catches this at emit time (stats.errored); the
  // compiled pipeline refuses to build the program at all.
  Program program;
  Clause fact;
  fact.head.predicate = "e";
  fact.head.args = {Term::constant_of(Value(std::int64_t{1}))};
  program.clauses.push_back(fact);
  Clause rule;
  rule.head.predicate = "r";
  rule.head.args = {Term::var("X"), Term::wildcard()};
  Literal body;
  body.kind = Literal::Kind::kAtom;
  body.atom.predicate = "e";
  body.atom.args = {Term::var("X")};
  rule.body = {body};
  program.clauses.push_back(rule);

  auto compiled = CompiledProgram::compile(program);
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.error().find("head"), std::string::npos);
}

TEST(Compiled, RejectsNonConstantFactArguments) {
  Program program;
  Clause fact;
  fact.head.predicate = "e";
  fact.head.args = {Term::wildcard()};
  program.clauses.push_back(fact);
  auto compiled = CompiledProgram::compile(program);
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.error().find("non-constant"), std::string::npos);
}

TEST(Compiled, WildcardInNegatedAtomPrunesLikeInterpreter) {
  // The interpreter's resolve() fails on wildcards inside negated atoms,
  // silently pruning every binding; the compiled form encodes the same
  // semantics statically.
  Program program = parse_program(R"(
e(1). e(2). p(1, 7).
)").take();
  Clause rule;  // r(X) :- e(X), \+p(X, _).
  rule.head.predicate = "r";
  rule.head.args = {Term::var("X")};
  Literal pos;
  pos.kind = Literal::Kind::kAtom;
  pos.atom.predicate = "e";
  pos.atom.args = {Term::var("X")};
  Literal neg;
  neg.kind = Literal::Kind::kNegatedAtom;
  neg.atom.predicate = "p";
  neg.atom.args = {Term::var("X"), Term::wildcard()};
  rule.body = {pos, neg};
  program.clauses.push_back(rule);

  // Interpreter baseline.
  Database db;
  Evaluator::create(program).take().run(db);
  const Relation* interpreted = db.find("r", 1);
  const std::size_t interpreted_count =
      interpreted == nullptr ? 0 : interpreted->size();

  auto compiled = CompiledProgram::compile(program).take();
  Session session;
  session.prepare(compiled);
  compiled.run(session);
  Database cdb;
  compiled.decode_model(session, cdb);
  const Relation* crel = cdb.find("r", 1);
  const std::size_t compiled_count = crel == nullptr ? 0 : crel->size();
  EXPECT_EQ(compiled_count, interpreted_count);
  EXPECT_EQ(compiled_count, 0u);  // both prune every binding
}

TEST(Compiled, TruncationStopsWithinOneTupleOfTheLimit) {
  std::string source;
  for (int i = 0; i < 50; ++i) {
    source += "a(" + std::to_string(i) + "). b(" + std::to_string(i) + ").\n";
  }
  source += "r(X, Y) :- a(X), b(Y).\n";  // 2,500-tuple cross product
  auto compiled =
      CompiledProgram::compile(parse_program(source).take()).take();
  Session session;
  session.prepare(compiled);
  EvalLimits limits;
  limits.max_derived_tuples = 120;  // 100 facts + 20 derived
  EvalStats stats = compiled.run(session, Strategy::kSemiNaive, limits);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.derived_tuples, limits.max_derived_tuples + 1);
}

TEST(Compiled, StatsMatchInterpreterOnCleanPrograms) {
  const char* source = R"(
edge(1,2). edge(2,3). edge(3,4).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
)";
  Program program = parse_program(source).take();
  Database db;
  EvalStats interpreted = Evaluator::create(program).take().run(db);

  auto compiled = CompiledProgram::compile(program).take();
  Session session;
  session.prepare(compiled);
  EvalStats cstats = compiled.run(session);

  EXPECT_EQ(cstats.iterations, interpreted.iterations);
  EXPECT_EQ(cstats.rule_applications, interpreted.rule_applications);
  EXPECT_EQ(cstats.derived_tuples, interpreted.derived_tuples);
  EXPECT_EQ(session.total_tuples(), db.total_tuples());
  EXPECT_FALSE(cstats.truncated);
  EXPECT_FALSE(cstats.errored);
}

}  // namespace
}  // namespace anchor::datalog
