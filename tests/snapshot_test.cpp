// Snapshot suite (ctest -L snapshot; run under both sanitizer configs —
// -DANCHOR_SANITIZE=address for the mmap-lifetime and fuzz sweeps,
// =thread for the service swap tests).
//
// The pinned contract under test: a StoreView serves byte-identical
// verdicts to the heap RootStore its snapshot was written from, and every
// corrupted, truncated, foreign-endian or wrong-version image is rejected
// fail-closed with a classified error — a daemon warm start never serves
// from a snapshot it cannot prove intact.
#include "rootstore/snapshot/view.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "chain/service.hpp"
#include "chain/verifier.hpp"
#include "rootstore/snapshot/writer.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::rootstore::snapshot {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

constexpr std::int64_t kNow = 1700000000;

constexpr const char* kAcceptGcc = "valid(Chain, _) :- leaf(Chain, L).";
constexpr const char* kRejectGcc = "valid(Chain, _) :- leaf(Chain, L), ev(L).";
constexpr const char* kCutoffGcc =
    "valid(Chain, \"TLS\") :- leaf(Chain, L), notBefore(L, NB), "
    "NB < 1700000000.\n"
    "valid(Chain, \"S/MIME\") :- leaf(Chain, L).";

// Small but representative PKI: metadata variety (cutoffs, EV, empty and
// non-trivial justifications), multiple GCCs on one root (attachment order
// is observable), a distrusted set, and leaves that exercise acceptance,
// GCC rejection, and plain path failure.
struct SnapPki {
  SimSig sigs;
  std::vector<CertPtr> roots;
  std::vector<CertPtr> leaves;
  std::vector<std::string> domains;
  chain::CertificatePool pool;
  RootStore store;

  SnapPki() {
    int serial = 1;
    for (int r = 0; r < 3; ++r) {
      std::string name = "Snap Root " + std::to_string(r);
      SimKeyPair key = SimSig::keygen(name);
      CertPtr root = CertificateBuilder()
                         .serial(serial++)
                         .subject(DistinguishedName::make(name, "T"))
                         .issuer(DistinguishedName::make(name, "T"))
                         .validity(0, unix_date(2040, 1, 1))
                         .public_key(key.key_id)
                         .ca(std::nullopt)
                         .sign(key)
                         .take();
      sigs.register_key(key);
      roots.push_back(root);
      RootMetadata metadata;
      if (r == 0) {
        metadata.ev_allowed = true;
        metadata.tls_distrust_after = kNow + 365 * 86400;
        metadata.justification = "CCADB inclusion 2019";
      } else if (r == 1) {
        metadata.smime_distrust_after = kNow - 86400;
      }
      EXPECT_TRUE(store.add_trusted(root, metadata).ok());
      for (int l = 0; l < 2; ++l) {
        std::string domain = "s" + std::to_string(serial) + ".example.com";
        SimKeyPair leaf_key = SimSig::keygen("snap-leaf-" +
                                             std::to_string(serial));
        leaves.push_back(CertificateBuilder()
                             .serial(serial++)
                             .subject(DistinguishedName::make(domain))
                             .issuer(root->subject())
                             .validity(kNow - 86400, kNow + 90 * 86400)
                             .public_key(leaf_key.key_id)
                             .dns_names({domain})
                             .extended_key_usage(
                                 {x509::oids::kp_server_auth()})
                             .sign(key)
                             .take());
        domains.push_back(domain);
      }
    }
    store.distrust(std::string(64, 'a'), "incident 2021");
    store.distrust(std::string(64, '3'), "");
    // Two GCCs on root 0 (order observable), one on root 1.
    const std::string h0 = roots[0]->fingerprint_hex();
    store.attach_gcc(
        core::Gcc::create("accept-all", h0, kAcceptGcc, "baseline").take());
    store.attach_gcc(
        core::Gcc::create("cutoff", h0, kCutoffGcc, "sunset notBefore")
            .take());
    store.attach_gcc(core::Gcc::create("require-ev",
                                       roots[1]->fingerprint_hex(), kRejectGcc)
                         .take());
  }

  chain::VerifyOptions options_for(std::size_t leaf_index) const {
    chain::VerifyOptions options;
    options.time = kNow;
    options.hostname = domains[leaf_index];
    return options;
  }
};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "anchor-snapshot-" + name + ".snap";
}

TEST(SnapshotFormat, RoundTripReEncodeIsByteEqual) {
  SnapPki pki;
  const Bytes image = write_snapshot(pki.store);
  auto opened = StoreView::from_bytes(image);
  ASSERT_TRUE(opened.ok()) << opened.error.to_string();
  const StoreView& view = *opened.view;

  EXPECT_EQ(view.trusted_count(), pki.store.trusted_count());
  EXPECT_EQ(view.distrusted_count(), pki.store.distrusted_count());
  EXPECT_EQ(view.gcc_count(), pki.store.gcc_count());
  EXPECT_EQ(view.epoch(), pki.store.epoch());
  EXPECT_EQ(view.info().file_size, image.size());
  EXPECT_EQ(view.info().source, "memory");

  // write -> load -> re-encode reproduces the image byte for byte: the
  // format carries everything the store is, in a canonical encoding.
  EXPECT_EQ(view.re_encode(), image);
  // And the materialized heap store is the original store, byte for byte
  // in the text serialization, at the same epoch.
  RootStore rebuilt = view.materialize();
  EXPECT_EQ(rebuilt.serialize(), pki.store.serialize());
  EXPECT_EQ(rebuilt.epoch(), pki.store.epoch());
}

TEST(SnapshotFormat, DeterministicWriter) {
  SnapPki pki;
  EXPECT_EQ(write_snapshot(pki.store), write_snapshot(pki.store));
}

TEST(SnapshotFormat, MmapViewServesSameAnswersAsHeapStore) {
  SnapPki pki;
  const std::string path = temp_path("mmap-answers");
  ASSERT_TRUE(write_snapshot_file(pki.store, path).ok());
  auto opened = StoreView::open(path);
  ASSERT_TRUE(opened.ok()) << opened.error.to_string();
  const StoreView& view = *opened.view;
  EXPECT_EQ(view.info().source, "mmap:" + path);

  // state_of over all three states.
  for (const CertPtr& root : pki.roots) {
    EXPECT_EQ(view.state_of(root->fingerprint_hex()), TrustState::kTrusted);
  }
  EXPECT_EQ(view.state_of(std::string(64, 'a')), TrustState::kDistrusted);
  EXPECT_EQ(view.state_of(std::string(64, 'f')), TrustState::kUnknown);

  // trusted() in the same (insertion) order, with identical DER and
  // metadata; find() agrees with the heap entry.
  auto heap_trusted = pki.store.trusted();
  auto view_trusted = view.trusted();
  ASSERT_EQ(view_trusted.size(), heap_trusted.size());
  for (std::size_t i = 0; i < heap_trusted.size(); ++i) {
    EXPECT_EQ(view_trusted[i]->cert->der(), heap_trusted[i]->cert->der());
    EXPECT_EQ(view_trusted[i]->metadata, heap_trusted[i]->metadata);
    const RootEntry* found =
        view.find(heap_trusted[i]->cert->fingerprint_hex());
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->cert->der(), heap_trusted[i]->cert->der());
  }

  // gccs_for_root in attachment order, with identical name/source.
  for (const CertPtr& root : pki.roots) {
    auto heap_gccs = pki.store.gccs_for_root(root->fingerprint_hex());
    auto view_gccs = view.gccs_for_root(root->fingerprint_hex());
    ASSERT_EQ(view_gccs.size(), heap_gccs.size());
    for (std::size_t i = 0; i < heap_gccs.size(); ++i) {
      EXPECT_EQ(view_gccs[i].name(), heap_gccs[i].name());
      EXPECT_EQ(view_gccs[i].source(), heap_gccs[i].source());
      EXPECT_EQ(view_gccs[i].justification(), heap_gccs[i].justification());
      EXPECT_EQ(view_gccs[i].root_hash_hex(), heap_gccs[i].root_hash_hex());
    }
  }
  std::remove(path.c_str());
}

// The headline guarantee: verdicts computed through a StoreView are
// byte-identical to the heap store's — every observable VerifyResult
// field, over the whole corpus, for both usages and the EV variant.
TEST(SnapshotFormat, DifferentialVerdictsViewVsHeap) {
  SnapPki pki;
  auto opened = StoreView::from_bytes(write_snapshot(pki.store));
  ASSERT_TRUE(opened.ok()) << opened.error.to_string();

  chain::ChainVerifier heap_verifier(pki.store, pki.sigs);
  chain::ChainVerifier view_verifier(*opened.view, pki.sigs);

  auto variants = [&](std::size_t leaf) {
    std::vector<chain::VerifyOptions> out;
    chain::VerifyOptions tls = pki.options_for(leaf);
    out.push_back(tls);
    chain::VerifyOptions ev = tls;
    ev.require_ev = true;
    out.push_back(ev);
    chain::VerifyOptions smime = tls;
    smime.usage = chain::Usage::kSmime;
    smime.hostname.clear();
    out.push_back(smime);
    return out;
  };

  for (std::size_t leaf = 0; leaf < pki.leaves.size(); ++leaf) {
    for (const chain::VerifyOptions& options : variants(leaf)) {
      chain::VerifyResult a =
          heap_verifier.verify(pki.leaves[leaf], pki.pool, options);
      chain::VerifyResult b =
          view_verifier.verify(pki.leaves[leaf], pki.pool, options);
      EXPECT_EQ(a.ok, b.ok) << "leaf " << leaf;
      EXPECT_EQ(a.kind, b.kind) << "leaf " << leaf;
      EXPECT_EQ(a.error, b.error) << "leaf " << leaf;
      EXPECT_EQ(a.rejected_paths, b.rejected_paths) << "leaf " << leaf;
      EXPECT_EQ(a.paths_explored, b.paths_explored) << "leaf " << leaf;
      ASSERT_EQ(a.chain.size(), b.chain.size()) << "leaf " << leaf;
      for (std::size_t i = 0; i < a.chain.size(); ++i) {
        EXPECT_EQ(a.chain[i]->der(), b.chain[i]->der());
      }
      EXPECT_EQ(a.gcc_verdict.allowed, b.gcc_verdict.allowed);
      EXPECT_EQ(a.gcc_verdict.failed_gcc, b.gcc_verdict.failed_gcc);
      EXPECT_EQ(a.gcc_verdict.gccs_evaluated, b.gcc_verdict.gccs_evaluated);
      EXPECT_EQ(a.gcc_verdict.facts_encoded, b.gcc_verdict.facts_encoded);
      EXPECT_EQ(a.gcc_verdict.stats.derived_tuples,
                b.gcc_verdict.stats.derived_tuples);
    }
  }
}

TEST(SnapshotFormat, CompiledProgramSerializationRoundTrips) {
  SnapPki pki;
  for (const std::string& root : pki.store.gccs().roots_sorted()) {
    for (const core::Gcc& gcc : pki.store.gccs().for_root(root)) {
      Bytes wire;
      gcc.compiled()->serialize(wire);
      auto restored = datalog::CompiledProgram::deserialize(BytesView(wire));
      ASSERT_TRUE(restored.ok()) << gcc.name() << ": " << restored.error();
      Bytes again;
      restored.value().serialize(again);
      EXPECT_EQ(again, wire) << gcc.name();
    }
  }
}

// Every strict prefix of a valid image must be rejected with a classified
// error — a partially written or torn snapshot can never be served.
TEST(SnapshotFuzz, EveryTruncationFailsClosed) {
  SnapPki pki;
  const Bytes image = write_snapshot(pki.store);
  ASSERT_GT(image.size(), kHeaderSize);
  for (std::size_t len = 0; len < image.size(); ++len) {
    auto opened =
        StoreView::from_bytes(Bytes(image.begin(), image.begin() + len));
    ASSERT_FALSE(opened.ok()) << "prefix of " << len << " bytes loaded";
    const ErrorClass cls = opened.error.cls;
    EXPECT_TRUE(cls == ErrorClass::kTruncated ||
                cls == ErrorClass::kMalformed)
        << "prefix " << len << " classified as " << to_string(cls);
  }
}

// One flipped bit anywhere in the file — header, offset table, DER,
// compiled program, digest itself — must be caught: the digest covers the
// whole image, so nothing rides on a structural check happening to notice.
TEST(SnapshotFuzz, EverySingleBitFlipIsCaught) {
  SnapPki pki;
  const Bytes image = write_snapshot(pki.store);
  Rng rng(0xb17f11bULL);
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    Bytes mutated = image;
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
    auto opened = StoreView::from_bytes(std::move(mutated));
    EXPECT_FALSE(opened.ok()) << "bit flip at byte " << pos << " loaded";
  }
}

TEST(SnapshotFuzz, ClassifiedRejections) {
  SnapPki pki;
  const Bytes image = write_snapshot(pki.store);

  auto patched = [&](std::size_t offset, auto value, bool seal = true) {
    Bytes mutated = image;
    std::memcpy(mutated.data() + offset, &value, sizeof value);
    if (seal) reseal(mutated);  // rejection must come from the named check,
    return mutated;             // not from the digest noticing the patch
  };

  // Foreign endianness: the byteswapped tag, resealed, is exactly what a
  // big-endian writer would have produced.
  {
    auto opened = StoreView::from_bytes(
        patched(offsetof(Header, endian_tag), std::uint32_t{0x04030201}));
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.error.cls, ErrorClass::kBadEndian);
  }
  // Future format version.
  {
    auto opened = StoreView::from_bytes(
        patched(offsetof(Header, format_version), std::uint16_t{3}));
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.error.cls, ErrorClass::kBadVersion);
  }
  // Not a snapshot at all.
  {
    Bytes mutated = image;
    mutated[0] = 'X';
    reseal(mutated);
    auto opened = StoreView::from_bytes(std::move(mutated));
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.error.cls, ErrorClass::kBadMagic);
  }
  // Absurd record count, digest intact.
  {
    auto opened = StoreView::from_bytes(patched(
        offsetof(Header, trusted_count), std::uint32_t{kMaxRecords + 1}));
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.error.cls, ErrorClass::kLimitExceeded);
  }
  // Header/section count disagreement.
  {
    auto opened = StoreView::from_bytes(
        patched(offsetof(Header, trusted_count), std::uint32_t{4}));
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.error.cls, ErrorClass::kMalformed);
  }
  // Payload corruption without resealing: the digest catches it.
  {
    Bytes mutated = image;
    mutated[kHeaderSize + 16] ^= 0x40;
    auto opened = StoreView::from_bytes(std::move(mutated));
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.error.cls, ErrorClass::kChecksumMismatch);
  }
  // Missing file / unreadable path.
  {
    auto opened = StoreView::open(temp_path("does-not-exist"));
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.error.cls, ErrorClass::kIo);
  }
}

TEST(SnapshotService, AdoptViewServesViewContentAtAdvancedEpoch) {
  SnapPki pki;
  chain::ServiceConfig config;
  config.threads = 2;
  metrics::Registry registry;
  chain::VerifyService service(pki.store, pki.sigs, config, registry);
  const std::uint64_t before = service.epoch();

  // A view written from the same store at the same epoch must still
  // publish a strictly larger epoch: adoption is a wholesale replacement.
  auto opened = StoreView::from_bytes(write_snapshot(pki.store));
  ASSERT_TRUE(opened.ok());
  service.adopt_view(opened.view);
  EXPECT_GT(service.epoch(), before);

  // Verdicts served from the view match the pre-adoption heap verdicts.
  for (std::size_t leaf = 0; leaf < pki.leaves.size(); ++leaf) {
    chain::VerifyResult result =
        service.verify(pki.leaves[leaf], pki.pool, pki.options_for(leaf));
    chain::ChainVerifier cold(pki.store, pki.sigs);
    chain::VerifyResult expected =
        cold.verify(pki.leaves[leaf], pki.pool, pki.options_for(leaf));
    EXPECT_EQ(result.ok, expected.ok) << "leaf " << leaf;
    EXPECT_EQ(result.error, expected.error) << "leaf " << leaf;
  }
}

TEST(SnapshotService, MutateAfterAdoptAppliesToViewContent) {
  SnapPki pki;
  metrics::Registry registry;
  chain::VerifyService service(pki.store, pki.sigs, {}, registry);

  auto opened = StoreView::from_bytes(write_snapshot(pki.store));
  ASSERT_TRUE(opened.ok());
  service.adopt_view(opened.view);
  const std::uint64_t adopted_epoch = service.epoch();

  // Distrust root 0 through mutate(): the mutation must apply on top of
  // the adopted view's content, not whatever the live store last held.
  const std::string h0 = pki.roots[0]->fingerprint_hex();
  service.mutate([&](RootStore& live) {
    EXPECT_EQ(live.state_of(h0), TrustState::kTrusted);  // view content
    EXPECT_EQ(live.gcc_count(), 3u);
    live.distrust(h0, "post-adoption incident");
  });
  EXPECT_GT(service.epoch(), adopted_epoch);

  chain::VerifyResult result =
      service.verify(pki.leaves[0], pki.pool, pki.options_for(0));
  EXPECT_FALSE(result.ok);  // leaf 0 chained to the now-distrusted root 0
}

// ASan target: snapshots swapped out from under in-flight verifications
// must stay mapped until the last reference drains. Workers verify
// continuously while the main thread repeatedly adopts fresh mmap views
// and interleaves heap mutations; any read of an unmapped view is a
// use-after-munmap ASan would report.
TEST(SnapshotService, EpochSwapNeverUnmapsUnderInFlightVerifies) {
  SnapPki pki;
  chain::ServiceConfig config;
  config.threads = 2;
  metrics::Registry registry;
  chain::VerifyService service(pki.store, pki.sigs, config, registry);
  const std::string path = temp_path("swap-lifetime");

  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      std::size_t leaf = static_cast<std::size_t>(w) % pki.leaves.size();
      while (!done.load(std::memory_order_relaxed)) {
        (void)service.verify(pki.leaves[leaf], pki.pool,
                             pki.options_for(leaf));
        leaf = (leaf + 1) % pki.leaves.size();
      }
    });
  }

  RootStore source = pki.store;
  for (int round = 0; round < 12; ++round) {
    // Each round writes a slightly different store, so adopted views are
    // genuinely distinct mappings.
    source.distrust(std::string(62, 'b') +
                        (round < 10 ? "0" : "1") +
                        std::to_string(round % 10),
                    "round " + std::to_string(round));
    ASSERT_TRUE(write_snapshot_file(source, path).ok());
    auto opened = StoreView::open(path);
    ASSERT_TRUE(opened.ok()) << opened.error.to_string();
    service.adopt_view(opened.view);
    // opened.view dropped here: the service snapshot (and any in-flight
    // verification) must be what keeps the mapping alive.
    if (round % 3 == 2) {
      service.mutate([&](RootStore& live) {
        live.distrust(std::string(64, 'c'), "mutate between adoptions");
      });
    }
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace anchor::rootstore::snapshot
