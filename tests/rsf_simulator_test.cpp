#include "rsf/simulator.hpp"

#include <gtest/gtest.h>

namespace anchor::rsf {
namespace {

SimConfig small_config() {
  SimConfig config = SimConfig::with_default_derivatives();
  config.duration = 365 * 86400;  // one simulated year keeps tests fast
  config.release_interval = 60 * 86400;
  config.num_roots = 12;
  config.num_incidents = 3;
  return config;
}

TEST(Simulator, ProducesReleasesAndIncidents) {
  SimReport report = run_staleness_simulation(small_config());
  EXPECT_GT(report.releases, 6u);  // 6 routine + 3 incident
  EXPECT_EQ(report.incidents.size(), 3u);
  EXPECT_EQ(report.derivatives.size(), 5u);
  for (const auto& incident : report.incidents) {
    EXPECT_GT(incident.primary_time, 0);
    EXPECT_EQ(incident.windows.size(), 5u);
  }
}

TEST(Simulator, RsfClientsCloseVulnerabilityWindowFast) {
  SimReport report = run_staleness_simulation(small_config());
  const DerivativeMetrics& hourly = report.derivatives[0];
  ASSERT_EQ(hourly.name, "rsf-hourly");
  ASSERT_GE(hourly.mean_vulnerability_window, 0);
  // An hourly poller (stepped hourly) is never more than ~2h behind.
  EXPECT_LE(hourly.max_vulnerability_window, 2 * 3600);
}

TEST(Simulator, ManualMirrorsAreMonthsBehind) {
  SimReport report = run_staleness_simulation(small_config());
  const DerivativeMetrics& manual = report.derivatives[2];
  ASSERT_EQ(manual.name, "manual-distro");
  // Ma et al. shape: months of lag (> 30 days on average).
  EXPECT_GT(manual.mean_vulnerability_window, 30LL * 86400);
  // And versions-behind stays substantial.
  EXPECT_GT(manual.avg_versions_behind, 1.0);
}

TEST(Simulator, RsfBeatsManualOnEveryMetric) {
  SimReport report = run_staleness_simulation(small_config());
  const DerivativeMetrics& hourly = report.derivatives[0];
  const DerivativeMetrics& manual_distro = report.derivatives[2];
  const DerivativeMetrics& manual_mobile = report.derivatives[3];
  for (const DerivativeMetrics* manual : {&manual_distro, &manual_mobile}) {
    EXPECT_LT(hourly.avg_staleness_days, manual->avg_staleness_days);
    EXPECT_LT(hourly.avg_versions_behind, manual->avg_versions_behind);
    EXPECT_LT(hourly.mean_vulnerability_window,
              manual->mean_vulnerability_window);
  }
}

TEST(Simulator, DailyPollerSitsBetweenHourlyAndManual) {
  SimReport report = run_staleness_simulation(small_config());
  const DerivativeMetrics& hourly = report.derivatives[0];
  const DerivativeMetrics& daily = report.derivatives[1];
  const DerivativeMetrics& manual = report.derivatives[2];
  ASSERT_EQ(daily.name, "rsf-daily");
  EXPECT_LE(hourly.mean_vulnerability_window, daily.mean_vulnerability_window);
  EXPECT_LT(daily.mean_vulnerability_window, manual.mean_vulnerability_window);
  EXPECT_LE(daily.max_vulnerability_window, 2 * 86400);
}

TEST(Simulator, DeterministicUnderSameSeed) {
  SimConfig config = small_config();
  SimReport a = run_staleness_simulation(config);
  SimReport b = run_staleness_simulation(config);
  ASSERT_EQ(a.derivatives.size(), b.derivatives.size());
  for (std::size_t i = 0; i < a.derivatives.size(); ++i) {
    EXPECT_EQ(a.derivatives[i].avg_staleness_days,
              b.derivatives[i].avg_staleness_days);
    EXPECT_EQ(a.derivatives[i].mean_vulnerability_window,
              b.derivatives[i].mean_vulnerability_window);
  }
  for (std::size_t i = 0; i < a.incidents.size(); ++i) {
    EXPECT_EQ(a.incidents[i].windows, b.incidents[i].windows);
  }
}

TEST(Simulator, DifferentSeedsChangeIncidentTiming) {
  SimConfig a = small_config();
  SimConfig b = small_config();
  b.seed = 1234;
  SimReport report_a = run_staleness_simulation(a);
  SimReport report_b = run_staleness_simulation(b);
  bool any_difference = false;
  for (std::size_t i = 0; i < report_a.incidents.size(); ++i) {
    if (report_a.incidents[i].primary_time !=
        report_b.incidents[i].primary_time) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Simulator, PollIntervalSweepIsMonotone) {
  // Vulnerability windows grow (weakly) with the poll interval.
  SimConfig config = small_config();
  config.derivatives.clear();
  for (std::int64_t interval : {3600LL, 6 * 3600LL, 86400LL, 7 * 86400LL}) {
    SimDerivativeSpec spec;
    spec.name = "rsf-" + std::to_string(interval);
    spec.uses_rsf = true;
    spec.rsf_poll_interval = interval;
    config.derivatives.push_back(spec);
  }
  SimReport report = run_staleness_simulation(config);
  for (std::size_t i = 1; i < report.derivatives.size(); ++i) {
    EXPECT_LE(report.derivatives[i - 1].mean_vulnerability_window,
              report.derivatives[i].mean_vulnerability_window)
        << report.derivatives[i - 1].name << " vs "
        << report.derivatives[i].name;
  }
}

}  // namespace
}  // namespace anchor::rsf
