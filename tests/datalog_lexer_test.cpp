#include "datalog/lexer.hpp"

#include <gtest/gtest.h>

namespace anchor::datalog {
namespace {

std::vector<TokenKind> kinds(const std::string& source) {
  auto tokens = lex(source);
  EXPECT_TRUE(tokens.ok()) << (tokens.ok() ? "" : tokens.error());
  std::vector<TokenKind> out;
  for (const Token& t : tokens.value()) out.push_back(t.kind);
  return out;
}

TEST(Lexer, SimpleFact) {
  EXPECT_EQ(kinds("leaf(chain, cert)."),
            (std::vector<TokenKind>{TokenKind::kAtomIdent, TokenKind::kLParen,
                                    TokenKind::kAtomIdent, TokenKind::kComma,
                                    TokenKind::kAtomIdent, TokenKind::kRParen,
                                    TokenKind::kDot, TokenKind::kEof}));
}

TEST(Lexer, VariablesAndWildcards) {
  auto tokens = lex("X _Y _ Abc").take();
  EXPECT_EQ(tokens[0].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[2].kind, TokenKind::kWildcard);
  EXPECT_EQ(tokens[3].kind, TokenKind::kVariable);
}

TEST(Lexer, IntegersAndStrings) {
  auto tokens = lex("1669784400 \"S/MIME\" \"with \\\"quote\\\"\"").take();
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].number, 1669784400);
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "S/MIME");
  EXPECT_EQ(tokens[2].text, "with \"quote\"");
}

TEST(Lexer, OperatorsAndPunctuation) {
  EXPECT_EQ(kinds(":- \\+ < <= > >= = != + - *"),
            (std::vector<TokenKind>{
                TokenKind::kColonDash, TokenKind::kNegation, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe, TokenKind::kEq,
                TokenKind::kNe, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kStar, TokenKind::kEof}));
}

TEST(Lexer, CommentsRunToEndOfLine) {
  auto tokens = lex("a(b). % this is ignored :- \\+ \"x\"\nc(d).").take();
  int atoms = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kAtomIdent) ++atoms;
  }
  EXPECT_EQ(atoms, 4);  // a, b, c, d
}

TEST(Lexer, PaperListingOneLexes) {
  auto tokens = lex(R"(
nov30th2022(1669784400). % Unix timestamp
valid(Chain, "S/MIME") :- % Valid rule for S/MIME usage
  leaf(Chain, Cert), % Get the chain's leaf certificate
  \+EV(Cert),
  NB < T.
)");
  ASSERT_TRUE(tokens.ok()) << tokens.error();
}

TEST(Lexer, TracksLineAndColumn) {
  auto tokens = lex("a(b).\n  c(d).").take();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  // "c" is on line 2, column 3.
  const Token* c_token = nullptr;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kAtomIdent && t.text == "c") c_token = &t;
  }
  ASSERT_NE(c_token, nullptr);
  EXPECT_EQ(c_token->line, 2);
  EXPECT_EQ(c_token->column, 3);
}

TEST(Lexer, RejectsMalformedInput) {
  EXPECT_FALSE(lex("a(b) : c").ok());        // lone ':'
  EXPECT_FALSE(lex("\\x").ok());             // bad escape start
  EXPECT_FALSE(lex("\"unterminated").ok());
  EXPECT_FALSE(lex("\"two\nlines\"").ok());  // newline in string
  EXPECT_FALSE(lex("a ! b").ok());           // lone '!'
  EXPECT_FALSE(lex("#").ok());               // unknown character
}

TEST(Lexer, RejectsIntegerOverflow) {
  EXPECT_FALSE(lex("99999999999999999999999999").ok());
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto tokens = lex("").take();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

}  // namespace
}  // namespace anchor::datalog
