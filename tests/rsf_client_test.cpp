#include "rsf/client.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rsf/transport.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::rsf {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

rootstore::RootStore store_with(const std::vector<std::string>& names) {
  rootstore::RootStore store;
  for (const auto& name : names) (void)store.add_trusted(make_root(name));
  return store;
}

const std::string kGcc =
    "valid(Chain, \"TLS\") :- leaf(Chain, L), notBefore(L, NB), NB < 100.";

TEST(RsfClient, AppliesSnapshotsOnPoll) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 100, "r1");
  RsfClient client(feed, 3600);
  EXPECT_EQ(client.poll_now(200), 1u);
  EXPECT_EQ(client.store().trusted_count(), 1u);
  EXPECT_EQ(client.last_applied_sequence(), 1u);
  EXPECT_EQ(client.last_update_time(), 200);
}

TEST(RsfClient, PollWithNothingNewIsNoOp) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 100, "r1");
  RsfClient client(feed, 3600);
  EXPECT_EQ(client.poll_now(200), 1u);
  EXPECT_EQ(client.poll_now(300), 0u);
  EXPECT_EQ(client.stats().polls, 2u);
  EXPECT_EQ(client.stats().updates_applied, 1u);
}

TEST(RsfClient, RunUntilFollowsPollSchedule) {
  SimSig registry;
  Feed feed("nss", registry);
  RsfClient client(feed, 3600);
  client.run_until(0);  // first poll at t=0, feed empty
  feed.publish(store_with({"A"}), 1000, "r1");
  // Next poll boundary is t=3600.
  client.run_until(3599);
  EXPECT_EQ(client.store().trusted_count(), 0u);
  client.run_until(3600);
  EXPECT_EQ(client.store().trusted_count(), 1u);
  EXPECT_EQ(client.last_update_time(), 3600);
}

TEST(RsfClient, CatchesUpAcrossMultipleSnapshots) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "r1");
  feed.publish(store_with({"A", "B"}), 2, "r2");
  feed.publish(store_with({"A", "B", "C"}), 3, "r3");
  RsfClient client(feed, 3600);
  EXPECT_EQ(client.poll_now(10), 3u);
  EXPECT_EQ(client.store().trusted_count(), 3u);
  EXPECT_EQ(client.last_applied_sequence(), 3u);
}

TEST(RsfClient, FailsClosedOnTamperedFeed) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "r1");
  RsfClient client(feed, 3600);
  EXPECT_EQ(client.poll_now(10), 1u);

  feed.publish(store_with({"A", "B"}), 2, "r2");
  feed.mutable_at(2)->payload += "garbage";
  EXPECT_EQ(client.poll_now(20), 0u);
  EXPECT_EQ(client.stats().verify_failures, 1u);
  // The last good store is retained.
  EXPECT_EQ(client.store().trusted_count(), 1u);
  EXPECT_EQ(client.last_applied_sequence(), 1u);
}

TEST(RsfClient, DistrustPropagatesOnNextPoll) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore primary = store_with({"A", "B"});
  feed.publish(primary, 1, "r1");
  RsfClient client(feed, 3600);
  client.poll_now(10);
  const std::string victim =
      primary.trusted()[0]->cert->fingerprint_hex();
  primary.distrust(victim, "incident");
  feed.publish(primary, 2, "emergency");
  client.poll_now(20);
  EXPECT_EQ(client.store().state_of(victim),
            rootstore::TrustState::kDistrusted);
}

TEST(RsfClient, LocalStoreIsMergedOnEveryUpdate) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "r1");

  CertPtr imported = make_root("Imported Corp Root");
  rootstore::RootStore local;
  (void)local.add_trusted(imported);

  RsfClient client(feed, 3600);
  client.set_local_store(local);
  client.poll_now(10);
  EXPECT_EQ(client.store().trusted_count(), 2u);
  EXPECT_EQ(client.store().state_of(imported->fingerprint_hex()),
            rootstore::TrustState::kTrusted);

  // A second snapshot keeps the local augmentation.
  feed.publish(store_with({"A", "B"}), 2, "r2");
  client.poll_now(20);
  EXPECT_EQ(client.store().trusted_count(), 3u);
}

TEST(RsfClient, LocalReAddOfDistrustedRootCountsConflicts) {
  SimSig registry;
  Feed feed("nss", registry);
  CertPtr bad = make_root("Bad Root");
  rootstore::RootStore primary;
  primary.distrust(bad->fingerprint_hex(), "incident");
  feed.publish(primary, 1, "r1");

  rootstore::RootStore local;
  (void)local.add_trusted(bad);
  RsfClient client(feed, 3600);
  client.set_local_store(local);
  client.poll_now(10);
  EXPECT_EQ(client.stats().merge_conflicts, 1u);
  // Primary wins by default.
  EXPECT_EQ(client.store().state_of(bad->fingerprint_hex()),
            rootstore::TrustState::kDistrusted);
}

TEST(RsfClient, GccsArriveThroughTheFeed) {
  SimSig registry;
  Feed feed("nss", registry);
  CertPtr root = make_root("A");
  rootstore::RootStore primary;
  (void)primary.add_trusted(root);
  primary.attach_gcc(
      core::Gcc::create("c1", root->fingerprint_hex(), kGcc, "why").take());
  feed.publish(primary, 1, "with gcc");

  RsfClient client(feed, 3600);
  client.poll_now(10);
  EXPECT_EQ(client.store().gccs().total(), 1u);
  EXPECT_EQ(client.store().gccs().for_root(root->fingerprint_hex())[0].name(),
            "c1");
}

TEST(ManualMirror, AdoptsHeadSnapshotOnSync) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "r1");
  feed.publish(store_with({"A", "B"}), 2, "r2");
  ManualMirrorClient mirror(feed, /*strip_gccs=*/false);
  EXPECT_EQ(mirror.mirrored_sequence(), 0u);
  mirror.manual_sync(500);
  EXPECT_EQ(mirror.mirrored_sequence(), 2u);
  EXPECT_EQ(mirror.store().trusted_count(), 2u);
  EXPECT_EQ(mirror.last_sync_time(), 500);
}

TEST(ManualMirror, StripGccsModelsBareCollectionDerivative) {
  SimSig registry;
  Feed feed("nss", registry);
  CertPtr root = make_root("A");
  rootstore::RootStore primary;
  rootstore::RootMetadata metadata;
  metadata.tls_distrust_after = 123;
  (void)primary.add_trusted(root, metadata);
  primary.attach_gcc(
      core::Gcc::create("c1", root->fingerprint_hex(), kGcc).take());
  feed.publish(primary, 1, "release");

  ManualMirrorClient stripping(feed, /*strip_gccs=*/true);
  stripping.manual_sync(10);
  EXPECT_EQ(stripping.store().trusted_count(), 1u);
  EXPECT_EQ(stripping.store().gccs().total(), 0u);  // imprecision problem
  EXPECT_FALSE(stripping.store()
                   .find(root->fingerprint_hex())
                   ->metadata.tls_distrust_after.has_value());

  ManualMirrorClient faithful(feed, /*strip_gccs=*/false);
  faithful.manual_sync(10);
  EXPECT_EQ(faithful.store().gccs().total(), 1u);
}

TEST(ManualMirror, SyncWithEmptyFeedIsHarmless) {
  SimSig registry;
  Feed feed("nss", registry);
  ManualMirrorClient mirror(feed, true);
  mirror.manual_sync(5);
  EXPECT_EQ(mirror.mirrored_sequence(), 0u);
  EXPECT_EQ(mirror.last_sync_time(), 5);
}

}  // namespace
}  // namespace anchor::rsf

namespace anchor::rsf {
namespace {

CertPtr make_root2(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

TEST(RsfClientDelta, DeltaTransportTracksFullTransport) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore primary;
  std::vector<CertPtr> roots;
  for (int i = 0; i < 20; ++i) {
    roots.push_back(make_root2("DT Root " + std::to_string(i)));
    (void)primary.add_trusted(roots.back());
  }
  feed.publish(primary, 100, "baseline");

  RsfClient full(feed, 3600, MergePolicy::kPrimaryWins,
                 Transport::kFullSnapshot);
  RsfClient delta(feed, 3600, MergePolicy::kPrimaryWins, Transport::kDelta);
  full.poll_now(200);
  delta.poll_now(200);
  EXPECT_EQ(full.store().serialize(), delta.store().serialize());

  // A sequence of evolutions; the delta client must stay byte-identical.
  primary.distrust(roots[3]->fingerprint_hex(), "incident A");
  feed.publish(primary, 300, "r2");
  primary.attach_gcc(core::Gcc::create("g", roots[5]->fingerprint_hex(),
                                          "valid(C, _) :- leaf(C, L).")
                            .take());
  feed.publish(primary, 400, "r3");
  primary.forget(roots[3]->fingerprint_hex());
  feed.publish(primary, 500, "r4");

  full.poll_now(600);
  delta.poll_now(600);
  EXPECT_EQ(full.store().serialize(), delta.store().serialize());
  EXPECT_EQ(delta.stats().deltas_applied, 4u);  // bootstrap + 3 updates
  EXPECT_EQ(delta.stats().delta_fallbacks, 0u);
  EXPECT_EQ(delta.last_applied_sequence(), full.last_applied_sequence());
}

TEST(RsfClientDelta, DeltaTransportSavesBandwidthOnSmallChanges) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore primary;
  std::vector<CertPtr> roots;
  for (int i = 0; i < 60; ++i) {
    roots.push_back(make_root2("BW Root " + std::to_string(i)));
    (void)primary.add_trusted(roots.back());
  }
  feed.publish(primary, 100, "baseline");

  RsfClient full(feed, 3600, MergePolicy::kPrimaryWins,
                 Transport::kFullSnapshot);
  RsfClient delta(feed, 3600, MergePolicy::kPrimaryWins, Transport::kDelta);
  full.poll_now(200);
  delta.poll_now(200);
  std::uint64_t full_baseline = full.stats().bytes_fetched;
  std::uint64_t delta_baseline = delta.stats().bytes_fetched;
  // Bootstrapping costs the same order either way.
  EXPECT_GT(delta_baseline, 0u);

  // Ten one-root emergency updates.
  for (int i = 0; i < 10; ++i) {
    primary.distrust(roots[static_cast<std::size_t>(i)]->fingerprint_hex(),
                     "incident");
    feed.publish(primary, 300 + i, "emergency");
    full.poll_now(1000 + i);
    delta.poll_now(1000 + i);
  }
  EXPECT_EQ(full.store().serialize(), delta.store().serialize());
  std::uint64_t full_updates = full.stats().bytes_fetched - full_baseline;
  std::uint64_t delta_updates = delta.stats().bytes_fetched - delta_baseline;
  EXPECT_LT(delta_updates * 10, full_updates)
      << "delta transport should be >10x cheaper for one-root changes";
}

TEST(RsfClientDelta, FallsBackToSnapshotWhenReplicaDiverges) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore primary;
  (void)primary.add_trusted(make_root2("FB Root"));
  feed.publish(primary, 100, "r1");

  RsfClient delta(feed, 3600, MergePolicy::kPrimaryWins, Transport::kDelta);
  delta.poll_now(200);
  ASSERT_EQ(delta.stats().delta_fallbacks, 0u);

  // Tamper with the feed's *payload* after signing? That breaks signature
  // verification, tested elsewhere. Here: corrupt delta replay by mutating
  // an intermediate snapshot the delta derivation reads, while keeping the
  // head intact — simplest equivalent: publish two rapid updates and
  // corrupt snapshot 2's payload such that the hash chain stays intact for
  // the client (it only anchors on payload_hash links). We simulate
  // divergence instead by tampering snapshot 2 entirely and expecting
  // fail-closed behaviour from the signature layer.
  (void)primary.add_trusted(make_root2("FB Root 2"));
  feed.publish(primary, 300, "r2");
  feed.mutable_at(2)->payload += "x";
  std::size_t applied = delta.poll_now(400);
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(delta.stats().verify_failures, 1u);
  EXPECT_EQ(delta.store().trusted_count(), 1u);  // last good state retained
}

// Snapshot adoption replaces the exposed store wholesale; the epoch must
// still only move forward, because chain::VerifyService keys its verdict
// cache on it (a backwards epoch could alias a stale cached verdict onto
// post-update store state).
TEST(RsfClient, StoreEpochNeverMovesBackwardAcrossPolls) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A", "B", "C"}), 100, "r1");
  RsfClient client(feed, 3600);
  EXPECT_EQ(client.poll_now(10), 1u);
  const std::uint64_t first = client.store().epoch();

  // The second release carries *fewer* mutations in its own history than
  // the replica has accumulated — exactly the case where naive adoption
  // would rewind the counter.
  feed.publish(store_with({"A"}), 200, "r2");
  EXPECT_EQ(client.poll_now(20), 1u);
  EXPECT_GT(client.store().epoch(), first);
}

TEST(ManualMirror, StoreEpochNeverMovesBackwardAcrossSyncs) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A", "B", "C"}), 1, "r1");
  ManualMirrorClient mirror(feed, /*strip_gccs=*/false);
  mirror.manual_sync(10);
  const std::uint64_t first = mirror.store().epoch();
  feed.publish(store_with({"A"}), 2, "r2");
  mirror.manual_sync(20);
  EXPECT_GT(mirror.store().epoch(), first);
}

// Regression: run_until used to loop once per missed poll interval, so a
// client woken after a long offline gap (a laptop resumed after vacation)
// replayed thousands of back-to-back polls against the feed. Post-fix it
// issues a single catch-up poll and re-anchors the schedule at `now`.
TEST(RsfClient, RunUntilIssuesOneCatchUpPollAfterOfflineGap) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 100, "r1");
  RsfClient client(feed, 3600);
  client.run_until(0);
  EXPECT_EQ(client.stats().polls, 1u);

  // Offline for 100 days (2400 missed hourly intervals).
  feed.publish(store_with({"A", "B"}), 50 * 86400, "r2");
  const std::int64_t wake = 100 * 86400;
  EXPECT_EQ(client.run_until(wake), 1u);
  EXPECT_EQ(client.stats().polls, 2u);  // pre-fix: ~2401
  EXPECT_EQ(client.last_applied_sequence(), 2u);
  // The schedule is re-anchored relative to the wake time, not to the
  // pre-gap grid.
  EXPECT_EQ(client.next_poll_time(), wake + 3600);
  EXPECT_EQ(client.run_until(wake + 3599), 0u);
  EXPECT_EQ(client.stats().polls, 2u);
}

// Regression: a payload that is correctly signed and hash-verified but does
// not deserialize (a publisher-side bug, not transport tamper) used to be
// counted as a verify_failure, poisoning the metric operators alarm on for
// integrity attacks. The two causes are now distinct counters with
// identical fail-closed handling.
TEST(RsfClient, SignedButUnparsablePayloadIsAParseFailureNotAVerifyFailure) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "r1");
  RsfClient client(feed, 3600);
  // The fixture edits a published snapshot in place, which the Merkle poll
  // path rejects as a proof failure before the payload is ever parsed
  // (published history cannot be rewritten). The parse-vs-verify
  // classification under test lives on the shared adoption path; pin the
  // legacy poll so the fixture can reach it.
  client.set_poll_path(PollPath::kLegacy);
  EXPECT_EQ(client.poll_now(10), 1u);

  // The publisher ships garbage, but signs it properly: recompute the
  // payload hash and signature exactly as Feed::publish would.
  feed.publish(store_with({"A", "B"}), 2, "r2");
  Snapshot* snap = feed.mutable_at(2);
  snap->payload = "not a serialized root store";
  snap->payload_hash = Sha256::hash_hex(BytesView(to_bytes(snap->payload)));
  snap->signature = SimSig::sign(SimSig::keygen("rsf-feed-nss"),
                                 BytesView(snap->transcript()));

  EXPECT_EQ(client.poll_now(20), 0u);
  EXPECT_EQ(client.stats().parse_failures, 1u);
  EXPECT_EQ(client.stats().verify_failures, 0u);
  // Fail-closed handling is identical to a verify failure: the last good
  // store is retained and the fetched bytes are accounted as discarded.
  EXPECT_EQ(client.store().trusted_count(), 1u);
  EXPECT_EQ(client.last_applied_sequence(), 1u);
  EXPECT_EQ(client.stats().bytes_discarded, snap->payload.size());
  // And the converse stays true: transport tamper is a verify failure.
  feed.publish(store_with({"A", "B", "C"}), 3, "r3");
  feed.mutable_at(3)->payload += "garbage";
  EXPECT_EQ(client.poll_now(30), 0u);
  EXPECT_EQ(client.stats().verify_failures, 1u);
  EXPECT_EQ(client.stats().parse_failures, 1u);
}

// Property-style check: under arbitrary interleavings of publishes and
// injected transport faults, the exposed store is always some published
// primary snapshot merged with the local store — never a torn, partial, or
// rolled-back state — and the applied sequence is monotone.
TEST(RsfClientProperty, ExposedStoreIsAlwaysAVerifiedPrimaryMergedWithLocal) {
  for (std::uint64_t seed : {11u, 29u, 83u}) {
    SimSig registry;
    Feed feed("nss", registry);
    rootstore::RootStore primary =
        store_with({"P0 s" + std::to_string(seed), "P1", "P2"});

    CertPtr imported = make_root("Imported s" + std::to_string(seed));
    rootstore::RootStore local;
    (void)local.add_trusted(imported);

    DirectTransport direct(feed);
    FaultyTransport faulty(direct, FaultProfile::chaos(0.4), seed);
    RetryPolicy retry;
    retry.jitter_seed = seed;
    RsfClient client(faulty, 3600, MergePolicy::kPrimaryWins,
                     Transport::kFullSnapshot, retry);
    client.set_local_store(local);

    std::set<std::string> legitimate;
    legitimate.insert(rootstore::RootStore{}.serialize());
    auto publish = [&](std::int64_t at) {
      feed.publish(primary, at, "release");
      legitimate.insert(
          merge(primary, local, MergePolicy::kPrimaryWins).merged.serialize());
    };
    publish(0);

    Rng driver(seed * 0x9e3779b97f4a7c15ULL);
    std::uint64_t last_seq = 0;
    std::int64_t now = 0;
    for (int step = 0; step < 300; ++step) {
      now += 1800;
      if (driver.chance(0.08)) {
        if (driver.chance(0.5)) {
          (void)primary.add_trusted(make_root(
              "Prop Root s" + std::to_string(seed) + " " +
              std::to_string(step)));
        } else if (!primary.trusted().empty()) {
          primary.distrust(primary.trusted()[0]->cert->fingerprint_hex(),
                           "prop incident");
        }
        publish(now);
      }
      client.run_until(now);
      ASSERT_EQ(legitimate.count(client.store().serialize()), 1u)
          << "seed " << seed << " step " << step
          << ": exposed store is not a published primary state";
      ASSERT_GE(client.last_applied_sequence(), last_seq)
          << "seed " << seed << " step " << step;
      last_seq = client.last_applied_sequence();
    }
    // The interleaving must actually have exercised both paths.
    EXPECT_GT(client.stats().updates_applied, 0u) << "seed " << seed;
    EXPECT_GT(faulty.injected_total(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace anchor::rsf
