// Chrome Root Store textproto parser: accepted shapes, the classified
// rejection taxonomy, and the resource limits. The companion fuzz file
// (chromeproto_fuzz_test.cpp) covers mutated/truncated inputs; here every
// case is a hand-written vector with an exact expected ErrorClass.
#include "rootstore/chromeproto.hpp"

#include <gtest/gtest.h>

#include <string>

namespace anchor::rootstore::chromeproto {
namespace {

// 64 lowercase hex chars, distinct per call site via the leading digit.
std::string hash_of(char lead) {
  std::string hex(64, 'a');
  hex[0] = lead;
  return hex;
}

std::string anchor_with(const std::string& body) {
  return "trust_anchors {\n  sha256_hex: \"" + hash_of('0') + "\"\n" + body +
         "\n}\n";
}

ParseError error_of(const std::string& text) {
  ParseResult result = parse_store(text);
  EXPECT_FALSE(result.ok()) << text;
  return result.error;
}

TEST(ChromeProto, ParsesTheDeployedShape) {
  const std::string text =
      "version_major: 42\n"
      "trust_anchors {\n"
      "  sha256_hex: \"" + hash_of('0') + "\"\n"
      "  ev_policy_oids: \"2.23.140.1.1\"\n"
      "  ev_policy_oids: \"1.3.6.1.4.1.6334.1.100.1\"\n"
      "  constraints {\n"
      "    sct_not_after_sec: 0x5AF\n"
      "    max_version_exclusive: \"125.0.6368.2\"\n"
      "    permitted_dns_names: \"foo.example.com\"\n"
      "    permitted_dns_names: \"bar.example.com\"\n"
      "  }\n"
      "  constraints: {\n"   // colon form is equally legal textproto
      "    sct_all_after_sec: 9593\n"
      "    min_version: \"128\"\n"
      "    enforce_anchor_expiry: true\n"
      "    enforce_anchor_constraints: true\n"
      "  }\n"
      "  eutl: true\n"
      "}\n"
      "additional_certs {\n"
      "  sha256_hex: \"" + hash_of('1') + "\"\n"
      "  eutl: false\n"
      "}\n"
      "# trailing comment\n";
  ParseResult result = parse_store(text);
  ASSERT_TRUE(result.ok()) << result.error.to_string();
  const StoreFile& store = *result.store;
  EXPECT_EQ(store.version_major, 42);
  ASSERT_EQ(store.trust_anchors.size(), 1u);
  ASSERT_EQ(store.additional_certs.size(), 1u);

  const TrustAnchor& anchor = store.trust_anchors[0];
  EXPECT_EQ(anchor.sha256_hex, hash_of('0'));
  EXPECT_TRUE(anchor.eutl);
  ASSERT_EQ(anchor.ev_policy_oids.size(), 2u);
  EXPECT_EQ(anchor.ev_policy_oids[0], "2.23.140.1.1");
  ASSERT_EQ(anchor.constraints.size(), 2u);

  const ConstraintBlock& first = anchor.constraints[0];
  EXPECT_EQ(first.sct_not_after_sec, 0x5AF);
  ASSERT_TRUE(first.max_version_exclusive.has_value());
  EXPECT_EQ(first.max_version_exclusive->to_string(), "125.0.6368.2");
  EXPECT_EQ(first.permitted_dns_names,
            (std::vector<std::string>{"foo.example.com", "bar.example.com"}));
  EXPECT_FALSE(first.enforce_anchor_expiry);

  const ConstraintBlock& second = anchor.constraints[1];
  EXPECT_EQ(second.sct_all_after_sec, 9593);
  ASSERT_TRUE(second.min_version.has_value());
  EXPECT_EQ(second.min_version->to_string(), "128");
  EXPECT_TRUE(second.enforce_anchor_expiry);
  EXPECT_TRUE(second.enforce_anchor_constraints);

  EXPECT_EQ(store.additional_certs[0].sha256_hex, hash_of('1'));
  EXPECT_FALSE(store.additional_certs[0].eutl);
}

TEST(ChromeProto, EmptyInputIsAnEmptyStore) {
  ParseResult result = parse_store("  # nothing but a comment\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.store->trust_anchors.empty());
  EXPECT_FALSE(result.store->version_major.has_value());
}

TEST(ChromeProto, UnknownFieldsAreFatal) {
  EXPECT_EQ(error_of("surprise: 1\n").cls, ErrorClass::kUnknownField);
  EXPECT_EQ(error_of(anchor_with("  sct_not_after_sec: 5")).cls,
            ErrorClass::kUnknownField);  // constraint field outside a block
  EXPECT_EQ(error_of(anchor_with("  constraints { mystery: true }")).cls,
            ErrorClass::kUnknownField);
  EXPECT_EQ(error_of("additional_certs { sha256_hex: \"" + hash_of('2') +
                     "\" constraints {} }")
                .cls,
            ErrorClass::kUnknownField);
}

TEST(ChromeProto, DuplicateSingularFieldsAreFatal) {
  EXPECT_EQ(error_of("version_major: 1\nversion_major: 2\n").cls,
            ErrorClass::kDuplicateField);
  EXPECT_EQ(error_of(anchor_with("  sha256_hex: \"" + hash_of('3') + "\"")).cls,
            ErrorClass::kDuplicateField);
  EXPECT_EQ(error_of(anchor_with("  eutl: false\n  eutl: true")).cls,
            ErrorClass::kDuplicateField);
  EXPECT_EQ(
      error_of(anchor_with(
                   "  constraints { sct_not_after_sec: 1 sct_not_after_sec: 2 }"))
          .cls,
      ErrorClass::kDuplicateField);
  // `false` then `true` must still count as a duplicate: the second write
  // flips the trust decision, which is exactly what the check is for.
  EXPECT_EQ(error_of(anchor_with("  constraints {\n"
                                 "    enforce_anchor_expiry: false\n"
                                 "    enforce_anchor_expiry: true\n"
                                 "  }"))
                .cls,
            ErrorClass::kDuplicateField);
}

TEST(ChromeProto, HexValidationIsExact) {
  // Wrong length, uppercase, and non-hex characters all classify kBadHex.
  EXPECT_EQ(error_of("trust_anchors { sha256_hex: \"abc\" }").cls,
            ErrorClass::kBadHex);
  std::string upper = hash_of('4');
  upper[10] = 'A';
  EXPECT_EQ(error_of("trust_anchors { sha256_hex: \"" + upper + "\" }").cls,
            ErrorClass::kBadHex);
  std::string wide = hash_of('5') + "00";
  EXPECT_EQ(error_of("trust_anchors { sha256_hex: \"" + wide + "\" }").cls,
            ErrorClass::kBadHex);
  std::string nonhex = hash_of('6');
  nonhex[63] = 'g';
  EXPECT_EQ(error_of("trust_anchors { sha256_hex: \"" + nonhex + "\" }").cls,
            ErrorClass::kBadHex);
}

TEST(ChromeProto, MissingHashIsFatal) {
  EXPECT_EQ(error_of("trust_anchors { eutl: true }").cls,
            ErrorClass::kMissingHash);
  EXPECT_EQ(error_of("additional_certs { eutl: true }").cls,
            ErrorClass::kMissingHash);
}

TEST(ChromeProto, DuplicateAnchorHashIsFatal) {
  const std::string one = "trust_anchors { sha256_hex: \"" + hash_of('7') +
                          "\" }\n";
  EXPECT_EQ(error_of(one + one).cls, ErrorClass::kDuplicateAnchor);
}

TEST(ChromeProto, IntegerRangesFailClosed) {
  // INT64_MAX parses; one more overflows; negatives are schema violations.
  ParseResult max = parse_store(
      anchor_with("  constraints { sct_not_after_sec: 9223372036854775807 }"));
  ASSERT_TRUE(max.ok()) << max.error.to_string();
  EXPECT_EQ(max.store->trust_anchors[0].constraints[0].sct_not_after_sec,
            INT64_MAX);
  EXPECT_EQ(
      error_of(
          anchor_with("  constraints { sct_not_after_sec: 9223372036854775808 }"))
          .cls,
      ErrorClass::kOutOfRange);
  EXPECT_EQ(error_of(anchor_with("  constraints { sct_not_after_sec: -5 }")).cls,
            ErrorClass::kOutOfRange);
  EXPECT_EQ(error_of(anchor_with("  constraints { sct_not_after_sec: 0x }")).cls,
            ErrorClass::kSyntax);
}

TEST(ChromeProto, VersionValidation) {
  EXPECT_EQ(
      error_of(anchor_with("  constraints { min_version: \"1.2.3.4.5\" }")).cls,
      ErrorClass::kBadVersion);
  EXPECT_EQ(error_of(anchor_with("  constraints { min_version: \"1..2\" }")).cls,
            ErrorClass::kBadVersion);
  EXPECT_EQ(
      error_of(anchor_with("  constraints { min_version: \"32768\" }")).cls,
      ErrorClass::kBadVersion);
  EXPECT_EQ(error_of(anchor_with("  constraints { min_version: \"\" }")).cls,
            ErrorClass::kBadVersion);
  ParseResult edge =
      parse_store(anchor_with("  constraints { min_version: \"32767.0.0.1\" }"));
  ASSERT_TRUE(edge.ok());
}

TEST(ChromeProto, VersionPackingIsLexicographic) {
  auto packed = [](std::string_view text) {
    auto version = Version::parse(text);
    EXPECT_TRUE(version.has_value()) << text;
    return version->packed();
  };
  // Missing components zero-extend: "125" == "125.0.0.0".
  EXPECT_EQ(packed("125"), packed("125.0.0.0"));
  EXPECT_LT(packed("124.9999"), packed("125"));
  EXPECT_LT(packed("125.0.6368.2"), packed("125.0.6369.0"));
  EXPECT_LT(packed("125.0.6368.2"), packed("126"));
  EXPECT_LT(packed("9.9.9.9"), packed("10"));
  EXPECT_GT(packed("32767.32767.32767.32767"), packed("32767.32767.32767.32766"));
}

TEST(ChromeProto, DnsNameValidation) {
  for (const char* bad : {"", "UPPER.example.com", "*.example.com",
                          "foo..example.com", ".example.com", "example.com.",
                          "exa mple.com", "exämple.com"}) {
    EXPECT_EQ(error_of(anchor_with(std::string("  constraints { "
                                               "permitted_dns_names: \"") +
                                   bad + "\" }"))
                  .cls,
              ErrorClass::kBadDnsName)
        << "'" << bad << "'";
  }
  ParseResult ok = parse_store(anchor_with(
      "  constraints { permitted_dns_names: \"xn--nxasmq6b.example\" }"));
  ASSERT_TRUE(ok.ok()) << ok.error.to_string();
}

TEST(ChromeProto, OidValidation) {
  for (const char* bad : {"", "2", "2.", ".2.3", "2..3", "2.23.x"}) {
    EXPECT_EQ(
        error_of(anchor_with(std::string("  ev_policy_oids: \"") + bad + "\""))
            .cls,
        ErrorClass::kBadOid)
        << "'" << bad << "'";
  }
}

TEST(ChromeProto, EmptyConstraintsBlockIsFatal) {
  // OR-of-blocks semantics: an empty block would trust unconditionally.
  EXPECT_EQ(error_of(anchor_with("  constraints { }")).cls,
            ErrorClass::kEmptyBlock);
  // enforce flags written `false` contribute nothing, so a block of only
  // those is empty too.
  EXPECT_EQ(
      error_of(anchor_with("  constraints { enforce_anchor_expiry: false }"))
          .cls,
      ErrorClass::kEmptyBlock);
}

TEST(ChromeProto, LimitsAreHardRejections) {
  ParseLimits tight;
  tight.max_anchors = 1;
  std::string two = "trust_anchors { sha256_hex: \"" + hash_of('8') +
                    "\" }\ntrust_anchors { sha256_hex: \"" + hash_of('9') +
                    "\" }\n";
  EXPECT_EQ(parse_store(two, tight).error.cls, ErrorClass::kLimitExceeded);

  tight = ParseLimits{};
  tight.max_bytes = 8;
  EXPECT_EQ(parse_store("version_major: 1\n", tight).error.cls,
            ErrorClass::kLimitExceeded);

  tight = ParseLimits{};
  tight.max_list_entries = 1;
  EXPECT_EQ(parse_store(anchor_with("  constraints {\n"
                                    "    permitted_dns_names: \"a.example\"\n"
                                    "    permitted_dns_names: \"b.example\"\n"
                                    "  }"),
                        tight)
                .error.cls,
            ErrorClass::kLimitExceeded);

  tight = ParseLimits{};
  tight.max_blocks_per_anchor = 1;
  EXPECT_EQ(parse_store(anchor_with("  constraints { sct_not_after_sec: 1 }\n"
                                    "  constraints { sct_not_after_sec: 2 }"),
                        tight)
                .error.cls,
            ErrorClass::kLimitExceeded);
}

TEST(ChromeProto, SyntaxErrorsCarryPosition) {
  ParseError error = error_of("trust_anchors {\n  sha256_hex 5\n}\n");
  EXPECT_EQ(error.cls, ErrorClass::kSyntax);
  EXPECT_EQ(error.line, 2);
  EXPECT_GT(error.column, 1);
  EXPECT_NE(error.to_string().find("syntax at 2:"), std::string::npos);
}

TEST(ChromeProto, StringEscapesAreRestricted) {
  // Only \" and \\ are understood; \n could smuggle bytes past review.
  EXPECT_EQ(error_of("trust_anchors { sha256_hex: \"a\\nb\" }").cls,
            ErrorClass::kSyntax);
  EXPECT_EQ(error_of("trust_anchors { sha256_hex: \"unterminated").cls,
            ErrorClass::kSyntax);
}

}  // namespace
}  // namespace anchor::rootstore::chromeproto
