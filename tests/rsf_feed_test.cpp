#include "rsf/feed.hpp"

#include <gtest/gtest.h>

#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::rsf {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

rootstore::RootStore store_with(const std::vector<std::string>& names) {
  rootstore::RootStore store;
  for (const auto& name : names) (void)store.add_trusted(make_root(name));
  return store;
}

TEST(Feed, PublishAssignsSequenceAndChainsHashes) {
  SimSig registry;
  Feed feed("nss", registry);
  EXPECT_EQ(feed.publish(store_with({"A"}), 100, "first"), 1u);
  EXPECT_EQ(feed.publish(store_with({"A", "B"}), 200, "second"), 2u);
  EXPECT_EQ(feed.head_sequence(), 2u);

  const Snapshot* first = feed.at(1);
  const Snapshot* second = feed.at(2);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->prev_hash, "");
  EXPECT_EQ(second->prev_hash, first->payload_hash);
  EXPECT_EQ(first->published_at, 100);
  EXPECT_EQ(second->annotation, "second");
}

TEST(Feed, AtOutOfRangeReturnsNull) {
  SimSig registry;
  Feed feed("nss", registry);
  EXPECT_EQ(feed.at(0), nullptr);
  EXPECT_EQ(feed.at(1), nullptr);
  feed.publish(store_with({"A"}), 1, "");
  EXPECT_NE(feed.at(1), nullptr);
  EXPECT_EQ(feed.at(2), nullptr);
}

TEST(Feed, FetchSinceReturnsOnlyNewer) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "");
  feed.publish(store_with({"B"}), 2, "");
  feed.publish(store_with({"C"}), 3, "");
  EXPECT_EQ(feed.fetch_since(0).size(), 3u);
  EXPECT_EQ(feed.fetch_since(2).size(), 1u);
  EXPECT_EQ(feed.fetch_since(3).size(), 0u);
  EXPECT_EQ(feed.fetch_since(2)[0].sequence, 3u);
}

TEST(Feed, VerifyRunAcceptsHonestFeed) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "a");
  feed.publish(store_with({"B"}), 2, "b");
  auto run = feed.fetch_since(0);
  EXPECT_TRUE(Feed::verify_run(run, "", BytesView(feed.key_id()), registry).ok());
  // Resuming mid-feed with the right anchor also verifies.
  auto tail = feed.fetch_since(1);
  EXPECT_TRUE(Feed::verify_run(tail, feed.at(1)->payload_hash,
                               BytesView(feed.key_id()), registry)
                  .ok());
}

TEST(Feed, VerifyRunRejectsTamperedPayload) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "a");
  feed.mutable_at(1)->payload += "trusted 0000\n";  // inject a root
  auto run = feed.fetch_since(0);
  Status s = Feed::verify_run(run, "", BytesView(feed.key_id()), registry);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("payload hash"), std::string::npos);
}

TEST(Feed, VerifyRunRejectsRecomputedHashWithoutResigning) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "a");
  Snapshot* snap = feed.mutable_at(1);
  snap->payload += "x";
  snap->payload_hash = Sha256::hash_hex(BytesView(to_bytes(snap->payload)));
  auto run = feed.fetch_since(0);
  Status s = Feed::verify_run(run, "", BytesView(feed.key_id()), registry);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("signature"), std::string::npos);
}

TEST(Feed, VerifyRunRejectsBrokenChain) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "a");
  feed.publish(store_with({"B"}), 2, "b");
  auto run = feed.fetch_since(0);
  run[1].prev_hash = std::string(64, '0');
  EXPECT_FALSE(Feed::verify_run(run, "", BytesView(feed.key_id()), registry).ok());
}

TEST(Feed, VerifyRunRejectsSequenceGap) {
  SimSig registry;
  Feed feed("nss", registry);
  feed.publish(store_with({"A"}), 1, "a");
  feed.publish(store_with({"B"}), 2, "b");
  feed.publish(store_with({"C"}), 3, "c");
  auto run = feed.fetch_since(0);
  run.erase(run.begin() + 1);  // drop snapshot 2
  EXPECT_FALSE(Feed::verify_run(run, "", BytesView(feed.key_id()), registry).ok());
}

TEST(Feed, VerifyRunRejectsWrongKey) {
  SimSig registry;
  Feed feed("nss", registry);
  Feed other("evil", registry);
  feed.publish(store_with({"A"}), 1, "a");
  auto run = feed.fetch_since(0);
  EXPECT_FALSE(
      Feed::verify_run(run, "", BytesView(other.key_id()), registry).ok());
}

TEST(Feed, PayloadDeserializesToEquivalentStore) {
  SimSig registry;
  Feed feed("nss", registry);
  rootstore::RootStore store = store_with({"A", "B"});
  store.distrust(std::string(64, 'c'), "bad root");
  feed.publish(store, 1, "release");
  auto parsed = rootstore::RootStore::deserialize(feed.at(1)->payload);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().trusted_count(), 2u);
  EXPECT_EQ(parsed.value().distrusted_count(), 1u);
  EXPECT_EQ(parsed.value().content_hash_hex(), store.content_hash_hex());
}

}  // namespace
}  // namespace anchor::rsf
