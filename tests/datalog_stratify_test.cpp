#include "datalog/stratify.hpp"

#include <gtest/gtest.h>

#include "datalog/database.hpp"
#include "datalog/parser.hpp"

namespace anchor::datalog {
namespace {

Program parse(const char* source) { return parse_program(source).take(); }

TEST(Stratify, FlatProgramIsSingleStratum) {
  auto strata = stratify(parse("p(X) :- e(X). q(X) :- e(X).")).take();
  EXPECT_EQ(strata.num_strata, 1);
  EXPECT_EQ(strata.stratum(relation_key("p", 1)), 0);
  EXPECT_EQ(strata.stratum(relation_key("q", 1)), 0);
}

TEST(Stratify, NegationForcesHigherStratum) {
  auto strata =
      stratify(parse("bad(X) :- e(X), f(X). good(X) :- e(X), \\+bad(X).")).take();
  EXPECT_EQ(strata.num_strata, 2);
  EXPECT_EQ(strata.stratum(relation_key("bad", 1)), 0);
  EXPECT_EQ(strata.stratum(relation_key("good", 1)), 1);
}

TEST(Stratify, ChainedNegationStacksStrata) {
  auto strata = stratify(parse(R"(
a(X) :- e(X).
b(X) :- e(X), \+a(X).
c(X) :- e(X), \+b(X).
)")).take();
  EXPECT_EQ(strata.num_strata, 3);
  EXPECT_EQ(strata.stratum(relation_key("c", 1)), 2);
}

TEST(Stratify, PositiveRecursionIsFine) {
  auto strata =
      stratify(parse("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).")).take();
  EXPECT_EQ(strata.num_strata, 1);
}

TEST(Stratify, NegationThroughRecursionRejected) {
  auto result = stratify(parse("p(X) :- e(X), \\+q(X). q(X) :- e(X), \\+p(X)."));
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("not stratifiable"), std::string::npos);
}

TEST(Stratify, SelfNegationRejected) {
  EXPECT_FALSE(stratify(parse("p(X) :- e(X), \\+p(X).")).ok());
}

TEST(Stratify, EdbNegationIsStratumZeroSafe) {
  // Negating a pure-EDB predicate adds no stratum pressure beyond 1 level.
  auto strata = stratify(parse("p(X) :- e(X), \\+f(X).")).take();
  EXPECT_EQ(strata.num_strata, 1);
  EXPECT_EQ(strata.stratum(relation_key("p", 1)), 0);
}

TEST(Safety, GroundFactsAccepted) {
  EXPECT_TRUE(check_safety(parse("p(1, \"x\", atom).")).ok());
}

TEST(Safety, VariableFactRejected) {
  EXPECT_FALSE(check_safety(parse("p(X).")).ok());
}

TEST(Safety, HeadVariableMustAppearInPositiveBody) {
  EXPECT_TRUE(check_safety(parse("p(X) :- q(X).")).ok());
  EXPECT_FALSE(check_safety(parse("p(X, Y) :- q(X).")).ok());
}

TEST(Safety, NegatedVariablesMustBeBound) {
  EXPECT_TRUE(check_safety(parse("p(X) :- q(X), \\+r(X).")).ok());
  EXPECT_FALSE(check_safety(parse("p(X) :- q(X), \\+r(Y).")).ok());
}

TEST(Safety, ComparisonVariablesMustBeBound) {
  EXPECT_TRUE(check_safety(parse("p(X) :- q(X), X < 5.")).ok());
  EXPECT_FALSE(check_safety(parse("p(X) :- q(X), Y < 5.")).ok());
}

TEST(Safety, AssignmentBindsThroughExpressions) {
  // Lifetime = NA - NB is safe once NA and NB are bound.
  EXPECT_TRUE(check_safety(parse(
      "p(L) :- a(L, NA), b(L, NB), Lifetime = NA - NB, Lifetime <= 100.")).ok());
  // Chained assignments resolve through fixpoint iteration.
  EXPECT_TRUE(check_safety(parse(
      "p(A) :- q(A), B = A + 1, C = B + 1, C < 10.")).ok());
  // Assignment from an unbound variable is rejected.
  EXPECT_FALSE(check_safety(parse("p(A) :- q(A), B = C + 1, B < 10.")).ok());
}

TEST(Safety, HeadVariableBoundOnlyByAssignmentIsAccepted) {
  EXPECT_TRUE(check_safety(parse("p(B) :- q(A), B = A + 1.")).ok());
}

TEST(Safety, PaperListingThreeVerbatimIsUnsafe) {
  // The paper's Listing 3 as printed references `Leaf` in the valid rule
  // body while binding `Cert` — our safety analysis catches the typo.
  auto program = parse(R"(
oneMonthInSeconds(2630000).
lifetimeValid(Leaf) :- notBefore(Leaf, NB), notAfter(Leaf, NA),
  Lifetime = NA - NB, oneMonthInSeconds(Limit), Lifetime <= Limit.
validUsage(Leaf) :- extendedKeyUsage(Leaf, "id-kp-serverAuth"),
  keyUsage(Leaf, "digitalSignature").
valid(Chain, "TLS") :- leaf(Chain, Cert), lifetimeValid(Leaf), validUsage(Leaf).
)");
  // `Leaf` in lifetimeValid(Leaf)/validUsage(Leaf) is a positive atom
  // variable, so the clause is formally safe — but with Cert unused it
  // quantifies over *any* certificate, which is not what the paper means.
  // The corrected rendition in incidents/listings.cpp binds Cert.
  EXPECT_TRUE(check_safety(program).ok());
  auto strata = stratify(program);
  EXPECT_TRUE(strata.ok());
}

}  // namespace
}  // namespace anchor::datalog
