#include "chain/verifier.hpp"

#include <gtest/gtest.h>

#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::chain {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

// A two-root PKI exercising every verifier code path:
//
//   Root A ── Int A ─┬─ leaves (A side)
//   Root B ── Int B ─┴─ cross-signed: Int B shares Int A's subject+key
//   Root A ── Constrained Int (permitted: example.com)
//   Root A ── PathLen0 Int ── Deep Int (never valid below PathLen0)
struct VerifierPki {
  SimSig sigs;
  std::uint64_t serial = 1;

  SimKeyPair root_a_key = SimSig::keygen("Root A");
  SimKeyPair root_b_key = SimSig::keygen("Root B");
  SimKeyPair int_key = SimSig::keygen("Shared Int");
  SimKeyPair constrained_key = SimSig::keygen("Constrained Int");
  SimKeyPair plen_key = SimSig::keygen("PathLen0 Int");
  SimKeyPair deep_key = SimSig::keygen("Deep Int");

  CertPtr root_a, root_b;
  CertPtr int_a, int_b;       // same subject/key, issued by A and B
  CertPtr constrained_int;
  CertPtr plen0_int, deep_int;

  rootstore::RootStore store;
  CertificatePool pool;

  static constexpr std::int64_t kNow = 1700000000;  // 2023-11-14

  VerifierPki() {
    auto ca = [&](const std::string& cn, const SimKeyPair& key,
                  const SimKeyPair& issuer_key, const DistinguishedName& issuer,
                  std::optional<int> plen,
                  std::optional<x509::NameConstraints> nc = std::nullopt) {
      CertificateBuilder builder;
      builder.serial(serial++)
          .subject(DistinguishedName::make(cn, "Test"))
          .issuer(issuer)
          .validity(kNow - 10 * 86400, kNow + 3650LL * 86400)
          .public_key(key.key_id)
          .ca(plen);
      if (nc) builder.name_constraints(*nc);
      return builder.sign(issuer_key).take();
    };

    root_a = ca("Root A", root_a_key, root_a_key,
                DistinguishedName::make("Root A", "Test"), std::nullopt);
    root_b = ca("Root B", root_b_key, root_b_key,
                DistinguishedName::make("Root B", "Test"), std::nullopt);
    int_a = ca("Shared Int", int_key, root_a_key, root_a->subject(), 0);
    int_b = ca("Shared Int", int_key, root_b_key, root_b->subject(), 0);
    x509::NameConstraints nc;
    nc.permitted_dns = {"example.com"};
    constrained_int = ca("Constrained Int", constrained_key, root_a_key,
                         root_a->subject(), 0, nc);
    plen0_int = ca("PathLen0 Int", plen_key, root_a_key, root_a->subject(), 0);
    deep_int = ca("Deep Int", deep_key, plen_key, plen0_int->subject(), 0);

    for (const auto& key : {root_a_key, root_b_key, int_key, constrained_key,
                            plen_key, deep_key}) {
      sigs.register_key(key);
    }
    rootstore::RootMetadata ev_ok;
    ev_ok.ev_allowed = true;
    (void)store.add_trusted(root_a, ev_ok);
    (void)store.add_trusted(root_b);
    pool.add(int_a);
    pool.add(int_b);
    pool.add(constrained_int);
    pool.add(plen0_int);
    pool.add(deep_int);
  }

  CertPtr leaf(const std::string& domain, const SimKeyPair& issuer_key,
               const DistinguishedName& issuer_dn, bool ev = false,
               std::int64_t not_before = kNow - 86400,
               int lifetime_days = 90, bool smime = false) {
    SimKeyPair key = SimSig::keygen("leaf" + std::to_string(serial));
    CertificateBuilder builder;
    builder.serial(serial++)
        .subject(DistinguishedName::make(domain))
        .issuer(issuer_dn)
        .validity(not_before, not_before + std::int64_t{lifetime_days} * 86400)
        .public_key(key.key_id)
        .dns_names({domain})
        .extended_key_usage({smime ? x509::oids::kp_email_protection()
                                   : x509::oids::kp_server_auth()});
    if (ev) builder.ev();
    return builder.sign(issuer_key).take();
  }

  VerifyOptions tls(const std::string& host) const {
    VerifyOptions options;
    options.time = kNow;
    options.hostname = host;
    return options;
  }
};

TEST(Verifier, AcceptsStraightforwardChain) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("site.example.org"));
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.chain.size(), 3u);
  EXPECT_EQ(result.chain[0]->fingerprint(), leaf->fingerprint());
  // Root A is tried first (store insertion order): chain ends at A.
  EXPECT_EQ(result.chain[2]->subject().common_name(), "Root A");
}

TEST(Verifier, RejectsExpiredLeaf) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("old.example.org", pki.int_key, pki.int_a->subject(),
                          false, VerifierPki::kNow - 400 * 86400, 90);
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("old.example.org"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.kind, ErrorKind::kExpired);
}

TEST(Verifier, RejectsHostnameMismatch) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("other.example.org"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.kind, ErrorKind::kHostnameMismatch);
}

TEST(Verifier, RejectsWrongEkuForUsage) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr smime_leaf = pki.leaf("mail.example.org", pki.int_key,
                                pki.int_a->subject(), false,
                                VerifierPki::kNow - 86400, 90, /*smime=*/true);
  // S/MIME leaf presented for TLS fails; for S/MIME usage it passes.
  VerifyResult tls_result =
      verifier.verify(smime_leaf, pki.pool, pki.tls("mail.example.org"));
  EXPECT_FALSE(tls_result.ok);
  VerifyOptions smime_options;
  smime_options.time = VerifierPki::kNow;
  smime_options.usage = Usage::kSmime;
  VerifyResult smime_result = verifier.verify(smime_leaf, pki.pool, smime_options);
  EXPECT_TRUE(smime_result.ok) << smime_result.error;
}

TEST(Verifier, RejectsForgedSignature) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  // Leaf claims Int as issuer but is signed by an unrelated key.
  SimKeyPair rogue = SimSig::keygen("rogue");
  pki.sigs.register_key(rogue);
  CertPtr forged = pki.leaf("victim.example.org", rogue, pki.int_a->subject());
  VerifyResult result = verifier.verify(forged, pki.pool, pki.tls("victim.example.org"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.kind, ErrorKind::kBadSignature);
}

TEST(Verifier, SignatureCheckCanBeDisabled) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  SimKeyPair rogue = SimSig::keygen("rogue2");
  pki.sigs.register_key(rogue);
  CertPtr forged = pki.leaf("victim.example.org", rogue, pki.int_a->subject());
  VerifyOptions options = pki.tls("victim.example.org");
  options.check_signatures = false;
  EXPECT_TRUE(verifier.verify(forged, pki.pool, options).ok);
}

TEST(Verifier, NoPathToTrustedRoot) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  SimKeyPair orphan_key = SimSig::keygen("Orphan CA");
  pki.sigs.register_key(orphan_key);
  CertPtr leaf = pki.leaf("island.example.org", orphan_key,
                          DistinguishedName::make("Orphan CA", "Nowhere"));
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("island.example.org"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.kind, ErrorKind::kNoPath);
}

TEST(Verifier, NameConstraintViolationRejected) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr inside = pki.leaf("shop.example.com", pki.constrained_key,
                            pki.constrained_int->subject());
  EXPECT_TRUE(verifier.verify(inside, pki.pool, pki.tls("shop.example.com")).ok);
  CertPtr outside = pki.leaf("shop.example.org", pki.constrained_key,
                             pki.constrained_int->subject());
  VerifyResult result =
      verifier.verify(outside, pki.pool, pki.tls("shop.example.org"));
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.rejected_paths.empty());
  EXPECT_EQ(result.rejected_paths[0].kind, ErrorKind::kConstraintViolation);
}

TEST(Verifier, PathLenConstraintRejectsDeepChain) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  // leaf <- deep_int <- plen0_int <- root: plen0_int has pathLen 0 but one
  // intermediate (deep_int) sits below it.
  CertPtr leaf = pki.leaf("deep.example.org", pki.deep_key,
                          pki.deep_int->subject());
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("deep.example.org"));
  EXPECT_FALSE(result.ok);
}

TEST(Verifier, MaxDepthBoundsSearch) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyOptions options = pki.tls("site.example.org");
  options.max_depth = 2;  // leaf + root only; the 3-cert chain cannot form
  EXPECT_FALSE(verifier.verify(leaf, pki.pool, options).ok);
  options.max_depth = 3;
  EXPECT_TRUE(verifier.verify(leaf, pki.pool, options).ok);
}

TEST(Verifier, DateUsageCutoffFromMetadata) {
  VerifierPki pki;
  // Reconfigure root A with a TLS distrust-after cutoff (NSS-style).
  rootstore::RootMetadata metadata;
  metadata.tls_distrust_after = VerifierPki::kNow - 30 * 86400;
  (void)pki.store.add_trusted(pki.root_a, metadata);
  ChainVerifier verifier(pki.store, pki.sigs);

  // Leaf issued after the cutoff: path via A fails, falls through to B.
  CertPtr new_leaf = pki.leaf("site.example.org", pki.int_key,
                              pki.int_a->subject(), false,
                              VerifierPki::kNow - 86400);
  VerifyResult result =
      verifier.verify(new_leaf, pki.pool, pki.tls("site.example.org"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.chain.back()->subject().common_name(), "Root B");
  // The A-path rejection is recorded.
  bool saw_cutoff = false;
  for (const auto& rejected : result.rejected_paths) {
    if (rejected.kind == ErrorKind::kUsageViolation) saw_cutoff = true;
  }
  EXPECT_TRUE(saw_cutoff);

  // Leaf issued before the cutoff still validates via A.
  CertPtr old_leaf = pki.leaf("old.example.org", pki.int_key,
                              pki.int_a->subject(), false,
                              VerifierPki::kNow - 60 * 86400);
  VerifyResult old_result =
      verifier.verify(old_leaf, pki.pool, pki.tls("old.example.org"));
  ASSERT_TRUE(old_result.ok);
  EXPECT_EQ(old_result.chain.back()->subject().common_name(), "Root A");
}

TEST(Verifier, EvRequiresLeafPolicyAndRootBit) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr ev_leaf =
      pki.leaf("ev.example.org", pki.int_key, pki.int_a->subject(), true);
  VerifyOptions options = pki.tls("ev.example.org");
  options.require_ev = true;
  // Root A allows EV: succeeds via A.
  VerifyResult result = verifier.verify(ev_leaf, pki.pool, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.chain.back()->subject().common_name(), "Root A");
  // Non-EV leaf under require_ev fails outright.
  CertPtr plain = pki.leaf("plain.example.org", pki.int_key, pki.int_a->subject());
  options.hostname = "plain.example.org";
  EXPECT_FALSE(verifier.verify(plain, pki.pool, options).ok);
}

TEST(Verifier, GccRejectionTriggersContinuedBuilding) {
  VerifierPki pki;
  // Attach a deny-all GCC to root A; the verifier must fall through to B
  // (the paper's "reject or continue building" loop).
  pki.store.attach_gcc(
      core::Gcc::for_certificate(
          "deny-a", *pki.root_a,
          "valid(Chain, \"TLS\") :- leaf(Chain, L), ev(L).")
          .take());
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("site.example.org"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.chain.back()->subject().common_name(), "Root B");
  bool saw_gcc_rejection = false;
  for (const auto& rejected : result.rejected_paths) {
    if (rejected.kind == ErrorKind::kGccDenied) saw_gcc_rejection = true;
  }
  EXPECT_TRUE(saw_gcc_rejection);
  EXPECT_EQ(result.gcc_verdict.gccs_evaluated, 1u);
}

TEST(Verifier, GccAllowPassesThrough) {
  VerifierPki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate("allow-a", *pki.root_a,
                                 "valid(Chain, _) :- leaf(Chain, L).")
          .take());
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("site.example.org"));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.chain.back()->subject().common_name(), "Root A");
}

TEST(Verifier, GccsCanBeDisabledForAblation) {
  VerifierPki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate(
          "deny-a", *pki.root_a,
          "valid(Chain, \"TLS\") :- leaf(Chain, L), ev(L).")
          .take());
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyOptions options = pki.tls("site.example.org");
  options.run_gccs = false;
  VerifyResult result = verifier.verify(leaf, pki.pool, options);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.chain.back()->subject().common_name(), "Root A");
  EXPECT_EQ(result.gcc_verdict.gccs_evaluated, 0u);
}

TEST(Verifier, CustomGccHookIsInvoked) {
  VerifierPki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate("any", *pki.root_a,
                                 "valid(Chain, _) :- leaf(Chain, L).")
          .take());
  ChainVerifier verifier(pki.store, pki.sigs);
  int hook_calls = 0;
  verifier.set_gcc_hook([&hook_calls](const core::Chain&, std::string_view,
                                      std::span<const core::Gcc>,
                                      const core::FactSet*,
                                      core::GccVerdict&) {
    ++hook_calls;
    return false;  // veto everything
  });
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("site.example.org"));
  // Root A vetoed by hook; root B has no GCCs, so the chain lands there.
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.chain.back()->subject().common_name(), "Root B");
  EXPECT_EQ(hook_calls, 1);
}

TEST(Verifier, DistrustedRootIsNeverUsed) {
  VerifierPki pki;
  pki.store.distrust(pki.root_a->fingerprint_hex(), "incident");
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("site.example.org"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.chain.back()->subject().common_name(), "Root B");
}

TEST(Verifier, PathsExploredIsReported) {
  VerifierPki pki;
  ChainVerifier verifier(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.int_a->subject());
  VerifyResult result = verifier.verify(leaf, pki.pool, pki.tls("site.example.org"));
  ASSERT_TRUE(result.ok);
  EXPECT_GE(result.paths_explored, 1u);
}

}  // namespace
}  // namespace anchor::chain
