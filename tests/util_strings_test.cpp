#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace anchor {
namespace {

TEST(Strings, SplitBasics) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("trailing,", ','), (std::vector<std::string>{"trailing", ""}));
}

TEST(Strings, JoinInvertsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, CaseAndAffixHelpers) {
  EXPECT_EQ(to_lower("EXample.COM"), "example.com");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_EQ(trim("  padded\t\n"), "padded");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, DnsMatchesExact) {
  EXPECT_TRUE(dns_matches("example.com", "example.com"));
  EXPECT_TRUE(dns_matches("EXAMPLE.com", "example.COM"));
  EXPECT_FALSE(dns_matches("example.com", "example.org"));
  EXPECT_FALSE(dns_matches("www.example.com", "example.com"));
}

TEST(Strings, DnsMatchesWildcardSingleLabel) {
  EXPECT_TRUE(dns_matches("www.example.com", "*.example.com"));
  EXPECT_TRUE(dns_matches("api.example.com", "*.example.com"));
  // Wildcard covers exactly one label (RFC 6125).
  EXPECT_FALSE(dns_matches("a.b.example.com", "*.example.com"));
  // Wildcard does not match the bare domain.
  EXPECT_FALSE(dns_matches("example.com", "*.example.com"));
  // Empty label does not match.
  EXPECT_FALSE(dns_matches(".example.com", "*.example.com"));
}

TEST(Strings, DnsWithinConstraint) {
  // Bare-domain constraint permits the domain and subdomains.
  EXPECT_TRUE(dns_within_constraint("example.com", "example.com"));
  EXPECT_TRUE(dns_within_constraint("a.example.com", "example.com"));
  EXPECT_TRUE(dns_within_constraint("a.b.example.com", "example.com"));
  EXPECT_FALSE(dns_within_constraint("badexample.com", "example.com"));
  EXPECT_FALSE(dns_within_constraint("example.org", "example.com"));
  // TLD-style constraint.
  EXPECT_TRUE(dns_within_constraint("ego.gov.tr", "tr"));
  EXPECT_FALSE(dns_within_constraint("ego.gov.trx", "tr"));
}

TEST(Strings, DnsLeadingDotConstraintIsSubdomainsOnly) {
  // The paper notes Firefox and OpenSSL disagree on the leading dot; we
  // implement the OpenSSL reading: ".example.com" excludes the bare domain.
  EXPECT_TRUE(dns_within_constraint("www.example.com", ".example.com"));
  EXPECT_FALSE(dns_within_constraint("example.com", ".example.com"));
}

TEST(Strings, EmptyConstraintPermitsEverything) {
  EXPECT_TRUE(dns_within_constraint("anything.at.all", ""));
}

TEST(Strings, TldOf) {
  EXPECT_EQ(tld_of("www.example.com"), "com");
  EXPECT_EQ(tld_of("example.co.uk"), "uk");
  EXPECT_EQ(tld_of("localhost"), "localhost");
  EXPECT_EQ(tld_of("UPPER.ORG"), "org");
}

}  // namespace
}  // namespace anchor
