// Cache-invalidation property tests for chain::VerifyService (ctest -L
// concurrency; single-threaded but part of the sanitizer suite).
//
// Property under test: the service must never serve a verdict computed
// under a prior store epoch. Randomized sequences of store mutations
// (seeded via util/rng so failures replay) interleave with verifications,
// and after every step the service's answer is compared against a cold
// ChainVerifier over the current store. Also covers chain-fingerprint
// discrimination: two paths sharing root and leaf but differing in the
// intermediate must occupy distinct cache entries.
#include "chain/service.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::chain {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

constexpr std::int64_t kNow = 1700000000;
constexpr const char* kRejectGcc =
    "valid(Chain, _) :- leaf(Chain, L), ev(L).";
constexpr const char* kAcceptGcc = "valid(Chain, _) :- leaf(Chain, L).";

struct CachePki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("Cache Root");
  // One key pair shared by both intermediates: cross-sign style, so a leaf
  // signed with it chains through either intermediate certificate.
  SimKeyPair shared_int_key = SimSig::keygen("Cache Shared Int");
  CertPtr root, int_a, int_b;
  std::vector<CertPtr> leaves;
  std::vector<std::string> domains;
  rootstore::RootStore store;

  CachePki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Cache Root", "T"))
               .issuer(DistinguishedName::make("Cache Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    int_a = make_intermediate(2, unix_date(2039, 1, 1));
    int_b = make_intermediate(3, unix_date(2038, 6, 1));
    EXPECT_NE(int_a->fingerprint_hex(), int_b->fingerprint_hex());
    sigs.register_key(root_key);
    sigs.register_key(shared_int_key);
    (void)store.add_trusted(root);
    for (int i = 0; i < 6; ++i) {
      std::string domain = "c" + std::to_string(i) + ".example.com";
      SimKeyPair key = SimSig::keygen("cache-leaf-" + domain);
      leaves.push_back(CertificateBuilder()
                           .serial(10 + i)
                           .subject(DistinguishedName::make(domain))
                           .issuer(int_a->subject())
                           .validity(kNow - 86400, kNow + 90 * 86400)
                           .public_key(key.key_id)
                           .dns_names({domain})
                           .extended_key_usage({x509::oids::kp_server_auth()})
                           .sign(shared_int_key)
                           .take());
      domains.push_back(domain);
    }
  }

  CertPtr make_intermediate(int serial, std::int64_t not_after) {
    return CertificateBuilder()
        .serial(serial)
        .subject(DistinguishedName::make("Cache Shared Int", "T"))
        .issuer(root->subject())
        .validity(0, not_after)
        .public_key(shared_int_key.key_id)
        .ca(0)
        .sign(root_key)
        .take();
  }

  VerifyOptions options_for(std::size_t leaf_index) const {
    VerifyOptions options;
    options.time = kNow;
    options.hostname = domains[leaf_index];
    return options;
  }
};

void expect_matches_cold(VerifyService& service, const CachePki& pki,
                         const CertificatePool& pool, std::size_t leaf,
                         const rootstore::RootStore& store,
                         const std::string& context) {
  VerifyResult got =
      service.verify(pki.leaves[leaf], pool, pki.options_for(leaf));
  ChainVerifier cold(store, pki.sigs);
  VerifyResult expected =
      cold.verify(pki.leaves[leaf], pool, pki.options_for(leaf));
  EXPECT_EQ(got.ok, expected.ok) << context;
  EXPECT_EQ(got.error, expected.error) << context;
}

TEST(VerifyServiceCache, RandomizedMutationsNeverServeStaleVerdicts) {
  CachePki pki;
  CertificatePool pool;
  pool.add(pki.int_a);
  VerifyService service(pki.store, pki.sigs);

  const std::string root_hash = pki.root->fingerprint_hex();
  Rng rng(0xcac4e5eedULL);
  bool reject_attached = false;
  bool root_trusted = true;

  for (int step = 0; step < 400; ++step) {
    const std::string context =
        "step " + std::to_string(step) + " epoch " +
        std::to_string(service.epoch());
    switch (rng.uniform(6)) {
      case 0:  // attach (or re-attach) the rejecting GCC
        service.mutate([&](rootstore::RootStore& store) {
          store.attach_gcc(
              core::Gcc::for_certificate("flip", *pki.root, kRejectGcc)
                  .take());
        });
        reject_attached = true;
        break;
      case 1:  // detach it
        service.mutate([&](rootstore::RootStore& store) {
          store.detach_gcc(root_hash, "flip");
        });
        reject_attached = false;
        break;
      case 2:  // distrust the root outright
        service.mutate([&](rootstore::RootStore& store) {
          store.distrust(root_hash, "cache test");
        });
        root_trusted = false;
        break;
      case 3:  // resurrect: forget the distrust entry, then re-trust
        service.mutate([&](rootstore::RootStore& store) {
          store.forget(root_hash);
          EXPECT_TRUE(store.add_trusted(pki.root).ok());
        });
        root_trusted = true;
        break;
      default: {  // verify a random leaf and cross-check cold
        std::size_t leaf = rng.uniform(pki.leaves.size());
        expect_matches_cold(service, pki, pool, leaf, pki.store, context);
        // Sanity net independent of the cold verifier: the outcome must
        // track the mutation state we drove.
        VerifyResult again =
            service.verify(pki.leaves[leaf], pool, pki.options_for(leaf));
        EXPECT_EQ(again.ok, root_trusted && !reject_attached) << context;
        break;
      }
    }
  }
  // The loop must actually have exercised the cache.
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.verdict_hits + stats.verdict_misses, 0u);
  EXPECT_GT(stats.epoch_flushes, 0u);
}

// Same root, same leaf, different intermediate: the DER-path fingerprint
// must differ, so the two paths get distinct verdict-cache entries instead
// of aliasing ("collision by construction" would alias if the key hashed
// only leaf and root).
TEST(VerifyServiceCache, FingerprintDistinguishesIntermediates) {
  CachePki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate("accept", *pki.root, kAcceptGcc).take());
  VerifyService service(pki.store, pki.sigs);

  CertificatePool pool_a;
  pool_a.add(pki.int_a);
  CertificatePool pool_b;
  pool_b.add(pki.int_b);

  VerifyResult via_a =
      service.verify(pki.leaves[0], pool_a, pki.options_for(0));
  ASSERT_TRUE(via_a.ok) << via_a.error;
  VerifyResult via_b =
      service.verify(pki.leaves[0], pool_b, pki.options_for(0));
  ASSERT_TRUE(via_b.ok) << via_b.error;

  // Two distinct paths ⇒ two cache misses, zero hits.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.verdict_misses, 2u);
  EXPECT_EQ(stats.verdict_hits, 0u);
  ASSERT_EQ(via_a.chain.size(), 3u);
  ASSERT_EQ(via_b.chain.size(), 3u);
  EXPECT_NE(via_a.chain[1]->fingerprint_hex(),
            via_b.chain[1]->fingerprint_hex());

  // Replaying either path is a hit — the entries really are keyed apart,
  // not evicting each other.
  (void)service.verify(pki.leaves[0], pool_a, pki.options_for(0));
  (void)service.verify(pki.leaves[0], pool_b, pki.options_for(0));
  stats = service.stats();
  EXPECT_EQ(stats.verdict_misses, 2u);
  EXPECT_EQ(stats.verdict_hits, 2u);
}

// A bounded cache under a workload larger than its capacity must evict,
// not grow, and eviction must never change answers.
TEST(VerifyServiceCache, EvictionBoundedAndHarmless) {
  CachePki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate("accept", *pki.root, kAcceptGcc).take());
  ServiceConfig config;
  config.verdict_capacity = 2;  // tiny: every shard holds one entry
  config.shards = 2;
  VerifyService service(pki.store, pki.sigs, config);

  CertificatePool pool;
  pool.add(pki.int_a);
  ChainVerifier cold(pki.store, pki.sigs);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t leaf = 0; leaf < pki.leaves.size(); ++leaf) {
      VerifyResult got =
          service.verify(pki.leaves[leaf], pool, pki.options_for(leaf));
      VerifyResult expected =
          cold.verify(pki.leaves[leaf], pool, pki.options_for(leaf));
      EXPECT_EQ(got.ok, expected.ok) << "leaf " << leaf;
      EXPECT_EQ(got.error, expected.error) << "leaf " << leaf;
    }
  }
  EXPECT_GT(service.stats().evictions, 0u);
}

}  // namespace
}  // namespace anchor::chain
