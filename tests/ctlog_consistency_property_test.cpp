// Property tests for the RFC 6962/9162 proof verifiers, written against
// the edge cases the RSF feed's authenticated poll path leans on: a poller
// pinned at size 0 must only accept the empty proof, equal sizes must only
// accept equal roots with an empty proof, a shrunk tree must never verify,
// and any single-bit damage to a proof must reject. The first test is the
// regression for a guard-ordering bug where from_size == to_size was
// checked before from_size == 0, so verify_consistency(0, 0, X, X, {})
// accepted ARBITRARY equal roots — a forged "empty history" a malicious
// feed could bootstrap a fresh client from.
#include "ctlog/merkle.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace anchor::ctlog {
namespace {

constexpr std::uint64_t kMaxTree = 64;
constexpr std::uint64_t kSeed = 0xfeedc0de;

Bytes entry(std::uint64_t i) {
  return to_bytes("consistency-entry-" + std::to_string(i));
}

// Tree of kMaxTree leaves plus every historic root, built once.
struct TreeFixture {
  MerkleTree tree;
  std::vector<Hash> roots;  // roots[k] = root at size k (roots[0] = empty)

  TreeFixture() {
    roots.push_back(empty_tree_hash());
    for (std::uint64_t i = 0; i < kMaxTree; ++i) {
      tree.append(BytesView(entry(i)));
      roots.push_back(tree.root());
    }
  }
};

const TreeFixture& fixture() {
  static const TreeFixture f;
  return f;
}

TEST(ConsistencyEdges, FromSizeZeroAcceptsOnlyTheEmptyTreeRoot) {
  const auto& f = fixture();
  Hash garbage;
  garbage.fill(0xaa);

  // The regression: equal garbage roots at (0, 0) must NOT verify — the
  // only root of the empty tree is SHA-256 of the empty string.
  EXPECT_FALSE(verify_consistency(0, 0, garbage, garbage, {}));
  EXPECT_TRUE(
      verify_consistency(0, 0, empty_tree_hash(), empty_tree_hash(), {}));

  // Growing from the empty tree: empty proof, and the from-root must still
  // be the canonical empty-tree hash.
  for (std::uint64_t to = 1; to <= kMaxTree; ++to) {
    EXPECT_TRUE(
        verify_consistency(0, to, empty_tree_hash(), f.roots[to], {}))
        << "to=" << to;
    EXPECT_FALSE(verify_consistency(0, to, garbage, f.roots[to], {}))
        << "to=" << to;
  }

  // RFC 6962: the proof FROM the empty tree is the empty proof. A
  // non-empty proof is malformed even when everything else matches.
  EXPECT_FALSE(verify_consistency(
      0, 0, empty_tree_hash(), empty_tree_hash(), {f.roots[3]}));
  EXPECT_FALSE(verify_consistency(0, 5, empty_tree_hash(), f.roots[5],
                                  {f.roots[3]}));
}

TEST(ConsistencyEdges, EqualSizesAcceptOnlyEqualRootsWithEmptyProof) {
  const auto& f = fixture();
  for (std::uint64_t n = 1; n <= kMaxTree; ++n) {
    EXPECT_TRUE(verify_consistency(n, n, f.roots[n], f.roots[n], {}))
        << "n=" << n;
    // Any proof nodes at equal sizes are malformed, even with equal roots.
    EXPECT_FALSE(
        verify_consistency(n, n, f.roots[n], f.roots[n], {f.roots[1]}))
        << "n=" << n;
  }
  // Equal sizes, different roots: a split view, never consistent.
  EXPECT_FALSE(verify_consistency(8, 8, f.roots[8], f.roots[7], {}));
}

TEST(ConsistencyEdges, ShrunkenTreeNeverVerifies) {
  const auto& f = fixture();
  for (std::uint64_t from = 1; from <= kMaxTree; ++from) {
    for (std::uint64_t to : {from - 1, from / 2, std::uint64_t{0}}) {
      if (to >= from) continue;
      EXPECT_FALSE(verify_consistency(from, to, f.roots[from], f.roots[to],
                                      {}))
          << from << " -> " << to;
      // Not even with the legitimate forward proof offered in reverse.
      EXPECT_FALSE(verify_consistency(
          from, to, f.roots[from], f.roots[to],
          f.tree.consistency_proof(std::min(from, to), std::max(from, to))))
          << from << " -> " << to;
    }
  }
}

TEST(ConsistencyProperty, EveryPairUpToSixtyFourVerifies) {
  const auto& f = fixture();
  for (std::uint64_t from = 1; from <= kMaxTree; ++from) {
    for (std::uint64_t to = from; to <= kMaxTree; ++to) {
      std::vector<Hash> proof = f.tree.consistency_proof(from, to);
      EXPECT_TRUE(
          verify_consistency(from, to, f.roots[from], f.roots[to], proof))
          << from << " -> " << to;
    }
  }
}

TEST(ConsistencyProperty, SingleBitFlippedProofsAllReject) {
  const auto& f = fixture();
  Rng rng(kSeed);
  for (std::uint64_t from = 1; from <= kMaxTree; ++from) {
    for (std::uint64_t to = from + 1; to <= kMaxTree; ++to) {
      std::vector<Hash> proof = f.tree.consistency_proof(from, to);
      // One random bit per node: every node position must be load-bearing.
      for (std::size_t node = 0; node < proof.size(); ++node) {
        std::vector<Hash> damaged = proof;
        damaged[node][rng.uniform(sizeof(Hash))] ^=
            static_cast<std::uint8_t>(1u << rng.uniform(8));
        EXPECT_FALSE(verify_consistency(from, to, f.roots[from], f.roots[to],
                                        damaged))
            << from << " -> " << to << " node " << node;
      }
    }
  }
}

TEST(ConsistencyProperty, TruncatedAndPaddedProofsReject) {
  const auto& f = fixture();
  for (std::uint64_t from = 1; from <= kMaxTree; ++from) {
    for (std::uint64_t to = from + 1; to <= kMaxTree; ++to) {
      std::vector<Hash> proof = f.tree.consistency_proof(from, to);
      if (!proof.empty()) {
        std::vector<Hash> truncated(proof.begin(), proof.end() - 1);
        EXPECT_FALSE(verify_consistency(from, to, f.roots[from], f.roots[to],
                                        truncated))
            << from << " -> " << to;
      }
      std::vector<Hash> padded = proof;
      padded.push_back(f.roots[1]);
      EXPECT_FALSE(
          verify_consistency(from, to, f.roots[from], f.roots[to], padded))
          << from << " -> " << to;
    }
  }
}

TEST(ConsistencyProperty, RandomTreesRoundTripAcrossGrowth) {
  // Random-content trees (not the shared fixture): grow in random steps,
  // proving each hop from the previously pinned size — exactly the
  // RsfClient poll pattern.
  Rng rng(kSeed ^ 0x5eed);
  for (int round = 0; round < 20; ++round) {
    MerkleTree tree;
    std::uint64_t pinned = 0;
    Hash pinned_root = empty_tree_hash();
    while (tree.size() < 200) {
      const std::uint64_t grow = 1 + rng.uniform(37);
      for (std::uint64_t i = 0; i < grow; ++i) {
        tree.append(BytesView(rng.random_bytes(1 + rng.uniform(64))));
      }
      std::vector<Hash> proof =
          pinned == 0 ? std::vector<Hash>{}
                      : tree.consistency_proof(pinned, tree.size());
      ASSERT_TRUE(verify_consistency(pinned, tree.size(), pinned_root,
                                     tree.root(), proof));
      pinned = tree.size();
      pinned_root = tree.root();
    }
  }
}

TEST(InclusionProperty, EveryIndexUpToSixtyFourVerifiesAndDamageRejects) {
  const auto& f = fixture();
  Rng rng(kSeed ^ 0x1234);
  for (std::uint64_t size = 1; size <= kMaxTree; ++size) {
    for (std::uint64_t index = 0; index < size; ++index) {
      std::vector<Hash> proof = f.tree.inclusion_proof(index, size);
      const Hash& leaf = f.tree.leaf(index);
      EXPECT_TRUE(verify_inclusion(leaf, index, size, proof, f.roots[size]))
          << index << " in " << size;
      // Out-of-range index.
      EXPECT_FALSE(
          verify_inclusion(leaf, index + size, size, proof, f.roots[size]));
      // A flipped bit in the leaf or any proof node rejects.
      Hash bad_leaf = leaf;
      bad_leaf[rng.uniform(sizeof(Hash))] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
      EXPECT_FALSE(
          verify_inclusion(bad_leaf, index, size, proof, f.roots[size]));
      for (std::size_t node = 0; node < proof.size(); ++node) {
        std::vector<Hash> damaged = proof;
        damaged[node][rng.uniform(sizeof(Hash))] ^=
            static_cast<std::uint8_t>(1u << rng.uniform(8));
        EXPECT_FALSE(
            verify_inclusion(leaf, index, size, damaged, f.roots[size]))
            << index << " in " << size << " node " << node;
      }
    }
  }
}

}  // namespace
}  // namespace anchor::ctlog
