// Mutation-fuzz sweeps over the Chrome Root Store textproto parser,
// patterned after fuzz_der_test.cpp: random edits, truncations, nested
// garbage and oversized payloads must never crash or hang — the parser
// either rejects with a classified error or returns a store that still
// satisfies every schema invariant (fail-closed means a *partially*
// validated store can never escape). Run under ASan/UBSan (build-asan/)
// these double as memory-safety tests for the hand-written lexer.
#include <gtest/gtest.h>

#include <string>

#include "rootstore/chromeproto.hpp"
#include "util/rng.hpp"

namespace anchor::rootstore::chromeproto {
namespace {

std::string hash_of(char lead) {
  std::string hex(64, 'f');
  hex[0] = lead;
  return hex;
}

// A store exercising every field the schema defines.
std::string rich_store_text() {
  return
      "version_major: 7\n"
      "trust_anchors {\n"
      "  sha256_hex: \"" + hash_of('0') + "\"\n"
      "  ev_policy_oids: \"2.23.140.1.1\"\n"
      "  constraints {\n"
      "    sct_not_after_sec: 1735689600\n"
      "    permitted_dns_names: \"foo.example.com\"\n"
      "    max_version_exclusive: \"125.0.6368.2\"\n"
      "  }\n"
      "  constraints {\n"
      "    sct_all_after_sec: 1704067200\n"
      "    min_version: \"128\"\n"
      "    enforce_anchor_expiry: true\n"
      "    enforce_anchor_constraints: true\n"
      "  }\n"
      "  eutl: true\n"
      "}\n"
      "trust_anchors {\n"
      "  sha256_hex: \"" + hash_of('1') + "\"\n"
      "}\n"
      "additional_certs {\n"
      "  sha256_hex: \"" + hash_of('2') + "\"\n"
      "}\n";
}

// Schema invariants a successful parse must uphold no matter what bytes
// went in. Mirrors the validators in chromeproto.cpp on purpose: a parse
// that succeeds but violates one of these has let unvalidated data out.
void expect_well_formed(const StoreFile& store) {
  auto is_hex64 = [](const std::string& hex) {
    if (hex.size() != 64) return false;
    for (char c : hex) {
      if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
    }
    return true;
  };
  for (const TrustAnchor& anchor : store.trust_anchors) {
    EXPECT_TRUE(is_hex64(anchor.sha256_hex)) << anchor.sha256_hex;
    for (const ConstraintBlock& block : anchor.constraints) {
      EXPECT_FALSE(block.empty());
      for (const std::string& name : block.permitted_dns_names) {
        EXPECT_FALSE(name.empty());
        EXPECT_LE(name.size(), 253u);
      }
      if (block.sct_not_after_sec) {
        EXPECT_GE(*block.sct_not_after_sec, 0);
      }
      if (block.sct_all_after_sec) {
        EXPECT_GE(*block.sct_all_after_sec, 0);
      }
    }
    for (const std::string& oid : anchor.ev_policy_oids) {
      EXPECT_NE(oid.find('.'), std::string::npos) << oid;
    }
  }
  for (const AdditionalCert& cert : store.additional_certs) {
    EXPECT_TRUE(is_hex64(cert.sha256_hex));
  }
}

class ChromeProtoMutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChromeProtoMutation, RandomEditsFailClosedOrStayWellFormed) {
  const std::string original = rich_store_text();
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = original;
    int edits = 1 + static_cast<int>(rng.uniform(5));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      std::size_t pos = rng.uniform(mutated.size());
      switch (rng.uniform(4)) {
        case 0:
          mutated[pos] = static_cast<char>(' ' + rng.uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.uniform(6));
          break;
        case 2:
          mutated.insert(pos, 1, static_cast<char>(' ' + rng.uniform(95)));
          break;
        default: {
          // Duplicate a random slice — manufactures duplicate fields,
          // duplicate anchors, and repeated braces.
          std::size_t len = 1 + rng.uniform(24);
          len = std::min(len, mutated.size() - pos);
          mutated.insert(pos, mutated.substr(pos, len));
          break;
        }
      }
    }
    ParseResult result = parse_store(mutated);
    if (result.ok()) expect_well_formed(*result.store);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChromeProtoMutation,
                         ::testing::Values(11, 22, 33, 44));

TEST(ChromeProtoFuzz, EveryTruncationPointIsSafe) {
  // Exhaustive, not sampled: the store text is small enough to cut at
  // every byte. A prefix may legitimately parse (message boundaries), but
  // whatever parses must be well-formed, and a cut inside an anchor must
  // never yield that anchor.
  const std::string original = rich_store_text();
  for (std::size_t keep = 0; keep < original.size(); ++keep) {
    ParseResult result = parse_store(original.substr(0, keep));
    if (result.ok()) expect_well_formed(*result.store);
  }
}

TEST(ChromeProtoFuzz, NestedGarbageIsRejectedWithoutRecursionBlowup) {
  // The grammar has bounded nesting; a brace bomb must be a clean kSyntax
  // (or unknown-field) rejection, never a stack overflow.
  std::string bomb = "trust_anchors ";
  for (int i = 0; i < 20000; ++i) bomb += "{ ";
  EXPECT_FALSE(parse_store(bomb).ok());

  std::string nested = "trust_anchors { constraints { constraints { } } }";
  EXPECT_FALSE(parse_store(nested).ok());
}

TEST(ChromeProtoFuzz, OversizedHexAndStringsAreRejected) {
  Rng rng(0x0eed);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t len = 65 + rng.uniform(4096);
    std::string hex(len, 'a');
    ParseResult result =
        parse_store("trust_anchors { sha256_hex: \"" + hex + "\" }");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error.cls, ErrorClass::kBadHex);
  }
}

TEST(ChromeProtoFuzz, RandomBytesNeverParseIntoAnchors) {
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes noise = rng.random_bytes(1 + rng.uniform(512));
    std::string text(reinterpret_cast<const char*>(noise.data()), noise.size());
    ParseResult result = parse_store(text);
    // Random bytes forming a trust anchor (64 matching hex chars behind
    // the exact field skeleton) is astronomically unlikely; mostly this
    // asserts no crash on arbitrary input including NULs and high bytes.
    if (result.ok()) {
      EXPECT_TRUE(result.store->trust_anchors.empty());
    }
  }
}

TEST(ChromeProtoFuzz, DeepCommentAndWhitespacePaddingIsLinear) {
  // Pathological but legal input: megabytes of comments and blanks must
  // parse (subject only to max_bytes), proving the lexer cannot be wedged
  // by skippable content.
  std::string padded;
  for (int i = 0; i < 20000; ++i) padded += "# filler comment line\n   \t\r\n";
  padded += "version_major: 3\n";
  ParseResult result = parse_store(padded);
  ASSERT_TRUE(result.ok()) << result.error.to_string();
  EXPECT_EQ(result.store->version_major, 3);
}

}  // namespace
}  // namespace anchor::rootstore::chromeproto
