// Randomized differential testing of the Datalog engine: for generated
// EDBs over a family of rule templates (recursion, mutual recursion,
// stratified negation, arithmetic), the semi-naive and naive strategies
// must compute identical models, and evaluation must be insensitive to
// fact insertion order.
#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/compiled.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "util/rng.hpp"

namespace anchor::datalog {
namespace {

std::string random_edb(Rng& rng, int nodes, int edges) {
  std::string source;
  for (int i = 0; i < nodes; ++i) {
    source += "node(" + std::to_string(i) + ").\n";
  }
  for (int i = 0; i < edges; ++i) {
    source += "edge(" + std::to_string(rng.uniform(static_cast<std::uint64_t>(nodes))) +
              "," + std::to_string(rng.uniform(static_cast<std::uint64_t>(nodes))) + ").\n";
  }
  // A random unary "mark" relation for negation templates.
  for (int i = 0; i < nodes; ++i) {
    if (rng.chance(0.3)) source += "mark(" + std::to_string(i) + ").\n";
  }
  return source;
}

const char* kTemplates[] = {
    // Transitive closure.
    R"(reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).)",
    // Same-generation (doubly recursive).
    R"(sg(X,X) :- node(X).
sg(X,Y) :- edge(A,X), sg(A,B), edge(B,Y).)",
    // Stratified negation over a derived relation.
    R"(covered(Y) :- edge(X,Y), mark(X).
lonely(X) :- node(X), \+covered(X).)",
    // Mutual recursion.
    R"(even(X) :- node(X), X = 0.
odd(Y) :- even(X), edge(X,Y).
even(Y) :- odd(X), edge(X,Y).)",
    // Arithmetic: bounded counting walk.
    R"(dist(X,Y,1) :- edge(X,Y).
dist(X,Z,D) :- dist(X,Y,D1), edge(Y,Z), D1 < 6, D = D1 + 1.)",
    // Negation above recursion.
    R"(reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
unreach(X,Y) :- node(X), node(Y), \+reach(X,Y).)",
};

std::vector<std::pair<std::string, std::vector<Tuple>>> full_model(
    const std::string& source, Strategy strategy) {
  auto program = parse_program(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error());
  auto evaluator = Evaluator::create(program.value(), strategy);
  EXPECT_TRUE(evaluator.ok()) << (evaluator.ok() ? "" : evaluator.error());
  Database db;
  evaluator.value().run(db);
  std::vector<std::pair<std::string, std::vector<Tuple>>> model;
  for (const auto& [key, relation] : db.relations()) {
    std::vector<Tuple> tuples = relation.tuples();
    std::sort(tuples.begin(), tuples.end());
    model.emplace_back(key, std::move(tuples));
  }
  std::sort(model.begin(), model.end());
  return model;
}

// The same model computed through the compiled pipeline (interning + slot
// resolution), decoded back into a legacy Database for comparison.
std::vector<std::pair<std::string, std::vector<Tuple>>> compiled_model(
    const std::string& source, Strategy strategy, Session& session) {
  auto program = parse_program(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error());
  auto compiled = CompiledProgram::compile(program.value());
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? "" : compiled.error());
  session.prepare(compiled.value());
  compiled.value().run(session, strategy);
  Database db;
  compiled.value().decode_model(session, db);
  std::vector<std::pair<std::string, std::vector<Tuple>>> model;
  for (const auto& [key, relation] : db.relations()) {
    std::vector<Tuple> tuples = relation.tuples();
    std::sort(tuples.begin(), tuples.end());
    model.emplace_back(key, std::move(tuples));
  }
  std::sort(model.begin(), model.end());
  return model;
}

struct RandomCase {
  std::uint64_t seed;
  int template_index;
};

class RandomDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(RandomDifferential, StrategiesAgreeOnRandomEdb) {
  auto [seed, template_index] = GetParam();
  Rng rng(seed);
  std::string source =
      random_edb(rng, 8 + static_cast<int>(rng.uniform(8)),
                 10 + static_cast<int>(rng.uniform(30))) +
      kTemplates[template_index];
  auto semi = full_model(source, Strategy::kSemiNaive);
  auto naive = full_model(source, Strategy::kNaive);
  EXPECT_EQ(semi, naive) << "seed=" << seed << " template=" << template_index;
  EXPECT_FALSE(semi.empty());
}

TEST_P(RandomDifferential, CompiledMatchesInterpreted) {
  // The property the whole compiled pipeline rests on: interned slot-based
  // execution and the legacy interpreter derive identical relations, under
  // both strategies, on random programs. The session is deliberately reused
  // across cases to also exercise arena reset.
  auto [seed, template_index] = GetParam();
  Rng rng(seed ^ 0x5eed);
  std::string source =
      random_edb(rng, 8 + static_cast<int>(rng.uniform(8)),
                 10 + static_cast<int>(rng.uniform(30))) +
      kTemplates[template_index];
  Session session;
  for (Strategy strategy : {Strategy::kSemiNaive, Strategy::kNaive}) {
    auto interpreted = full_model(source, strategy);
    auto compiled = compiled_model(source, strategy, session);
    EXPECT_EQ(interpreted, compiled)
        << "seed=" << seed << " template=" << template_index;
    EXPECT_FALSE(compiled.empty());
  }
}

TEST_P(RandomDifferential, FactOrderDoesNotMatter) {
  auto [seed, template_index] = GetParam();
  Rng rng(seed ^ 0xabcdef);
  std::string edb = random_edb(rng, 10, 25);
  // Shuffle the EDB lines.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= edb.size(); ++i) {
    if (i == edb.size() || edb[i] == '\n') {
      if (i > start) lines.push_back(edb.substr(start, i - start));
      start = i + 1;
    }
  }
  for (std::size_t i = lines.size(); i > 1; --i) {
    std::swap(lines[i - 1], lines[rng.uniform(i)]);
  }
  std::string shuffled;
  for (const auto& line : lines) {
    shuffled += line;
    shuffled += '\n';
  }
  auto original = full_model(edb + kTemplates[template_index],
                             Strategy::kSemiNaive);
  auto reordered = full_model(shuffled + kTemplates[template_index],
                              Strategy::kSemiNaive);
  EXPECT_EQ(original, reordered);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDifferential,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_template" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RandomDifferentialEdge, EmptyEdbAllTemplates) {
  for (const char* rule_template : kTemplates) {
    auto semi = full_model(rule_template, Strategy::kSemiNaive);
    auto naive = full_model(rule_template, Strategy::kNaive);
    EXPECT_EQ(semi, naive);
  }
}

TEST(RandomDifferentialEdge, SelfLoopsAndDuplicateEdges) {
  std::string edb = "node(0).\nnode(1).\nedge(0,0).\nedge(0,0).\nedge(0,1).\n"
                    "edge(1,0).\nmark(0).\n";
  for (const char* rule_template : kTemplates) {
    auto semi = full_model(edb + rule_template, Strategy::kSemiNaive);
    auto naive = full_model(edb + rule_template, Strategy::kNaive);
    EXPECT_EQ(semi, naive);
  }
}

}  // namespace
}  // namespace anchor::datalog
