#include "util/simsig.hpp"

#include <gtest/gtest.h>

namespace anchor {
namespace {

TEST(SimSig, KeygenIsDeterministic) {
  SimKeyPair a = SimSig::keygen("Example CA");
  SimKeyPair b = SimSig::keygen("Example CA");
  EXPECT_EQ(a.key_id, b.key_id);
  EXPECT_EQ(a.secret, b.secret);
  SimKeyPair c = SimSig::keygen("Other CA");
  EXPECT_NE(a.key_id, c.key_id);
}

TEST(SimSig, KeyIdDoesNotLeakSecret) {
  SimKeyPair key = SimSig::keygen("Example CA");
  EXPECT_NE(key.key_id, key.secret);
  EXPECT_EQ(key.key_id.size(), 32u);
  EXPECT_EQ(key.secret.size(), 32u);
}

TEST(SimSig, SignVerifyRoundTrip) {
  SimSig registry;
  SimKeyPair key = SimSig::keygen("Signer");
  registry.register_key(key);
  Bytes message = to_bytes("to be signed");
  Bytes signature = SimSig::sign(key, message);
  EXPECT_TRUE(registry.verify(key.key_id, message, signature));
}

TEST(SimSig, TamperedMessageFails) {
  SimSig registry;
  SimKeyPair key = SimSig::keygen("Signer");
  registry.register_key(key);
  Bytes message = to_bytes("payload");
  Bytes signature = SimSig::sign(key, message);
  Bytes tampered = to_bytes("Payload");
  EXPECT_FALSE(registry.verify(key.key_id, tampered, signature));
}

TEST(SimSig, TamperedSignatureFails) {
  SimSig registry;
  SimKeyPair key = SimSig::keygen("Signer");
  registry.register_key(key);
  Bytes message = to_bytes("payload");
  Bytes signature = SimSig::sign(key, message);
  signature[0] ^= 0xff;
  EXPECT_FALSE(registry.verify(key.key_id, message, signature));
}

TEST(SimSig, UnknownKeyFails) {
  SimSig registry;
  SimKeyPair key = SimSig::keygen("Signer");
  // Not registered.
  Bytes message = to_bytes("payload");
  Bytes signature = SimSig::sign(key, message);
  EXPECT_FALSE(registry.verify(key.key_id, message, signature));
}

TEST(SimSig, WrongKeySignatureFails) {
  SimSig registry;
  SimKeyPair a = SimSig::keygen("A");
  SimKeyPair b = SimSig::keygen("B");
  registry.register_key(a);
  registry.register_key(b);
  Bytes message = to_bytes("payload");
  Bytes signature = SimSig::sign(a, message);
  EXPECT_FALSE(registry.verify(b.key_id, message, signature));
  EXPECT_TRUE(registry.verify(a.key_id, message, signature));
}

TEST(SimSig, SignaturesDifferPerMessage) {
  SimKeyPair key = SimSig::keygen("Signer");
  EXPECT_NE(SimSig::sign(key, to_bytes("m1")), SimSig::sign(key, to_bytes("m2")));
}

TEST(SimSig, RegisteredKeysCount) {
  SimSig registry;
  EXPECT_EQ(registry.registered_keys(), 0u);
  registry.register_key(SimSig::keygen("A"));
  registry.register_key(SimSig::keygen("B"));
  registry.register_key(SimSig::keygen("A"));  // duplicate id
  EXPECT_EQ(registry.registered_keys(), 2u);
}

}  // namespace
}  // namespace anchor
