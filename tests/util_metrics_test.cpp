// util/metrics: registry semantics (find-or-create, label canonicalization,
// kind-conflict fail-closed), histogram bucketing, tracing spans, and the
// text exposition format that `anchorctl metrics` and the TrustDaemon
// `metrics` verb serve.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace anchor::metrics {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketPlacementIsLe) {
  Histogram h(std::vector<double>{1.0, 2.0, 5.0});
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // exactly on a bound: le semantics, stays in le=1
  h.observe(1.5);   // le=2
  h.observe(100.0); // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
  EXPECT_EQ(h.cumulative(0), 2u);  // <= 1.0
  EXPECT_EQ(h.cumulative(1), 3u);  // <= 2.0
  EXPECT_EQ(h.cumulative(2), 3u);  // <= 5.0
  EXPECT_EQ(h.cumulative(3), 4u);  // +Inf == count()
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.cumulative(3), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, LatencyBoundsAreAscending) {
  auto bounds = Histogram::latency_bounds();
  ASSERT_GT(bounds.size(), 0u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 10.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ScopedTimer, ObservesOnDestruction) {
  Histogram h(std::vector<double>{1.0});
  {
    ScopedTimer span(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 1.0);  // a no-op scope is far under a second
}

TEST(ScopedTimer, CancelSuppressesObservation) {
  Histogram h(std::vector<double>{1.0});
  {
    ScopedTimer span(h);
    span.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, FindOrCreateReturnsStableSeries) {
  Registry registry;
  Counter& a = registry.counter("anchor_test_total");
  Counter& b = registry.counter("anchor_test_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.series_count(), 1u);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, LabelsAreOrderInsensitive) {
  Registry registry;
  Counter& a = registry.counter(
      "anchor_test_total", {{"feed", "nss"}, {"outcome", "success"}});
  Counter& b = registry.counter(
      "anchor_test_total", {{"outcome", "success"}, {"feed", "nss"}});
  EXPECT_EQ(&a, &b);
  // A different label *value* is a different series.
  Counter& c = registry.counter(
      "anchor_test_total", {{"feed", "nss"}, {"outcome", "failure"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(Registry, KindConflictReturnsDetachedSeries) {
  Registry registry;
  Counter& counter = registry.counter("anchor_test_mixed");
  counter.add(5);
  // Re-registering the same key as a gauge is a programming error; it must
  // neither crash nor corrupt the counter, and the orphan never reaches the
  // exposition.
  Gauge& orphan = registry.gauge("anchor_test_mixed");
  orphan.set(99);
  EXPECT_EQ(counter.value(), 5u);
  EXPECT_EQ(registry.series_count(), 1u);
  const std::string text = registry.expose();
  EXPECT_NE(text.find("anchor_test_mixed 5"), std::string::npos);
  EXPECT_EQ(text.find("99"), std::string::npos);
  // The orphan keeps working for its (broken) caller.
  orphan.add(1);
  EXPECT_EQ(orphan.value(), 100);
}

TEST(Registry, HistogramBoundsFixedByFirstRegistration) {
  Registry registry;
  const double first[] = {1.0, 2.0};
  Histogram& a = registry.histogram("anchor_test_seconds", {}, first);
  const double second[] = {10.0, 20.0, 30.0};
  Histogram& b = registry.histogram("anchor_test_seconds", {}, second);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bounds().size(), 2u);
  // Empty bounds select the latency default.
  Histogram& lat = registry.histogram("anchor_test_latency");
  EXPECT_EQ(lat.bounds().size(), Histogram::latency_bounds().size());
}

TEST(Registry, ExposeFormat) {
  Registry registry;
  registry.counter("anchor_b_total", {{"kind", "x"}}).add(2);
  registry.counter("anchor_b_total", {{"kind", "y"}}).add(3);
  registry.gauge("anchor_a_level").set(-4);
  const double bounds[] = {0.5, 1.0};
  Histogram& h = registry.histogram("anchor_c_seconds", {}, bounds);
  h.observe(0.25);
  h.observe(2.0);

  const std::string text = registry.expose();
  // One TYPE line per family, families sorted by name.
  EXPECT_EQ(text.find("# TYPE anchor_a_level gauge"), 0u);
  const auto b_type = text.find("# TYPE anchor_b_total counter");
  const auto c_type = text.find("# TYPE anchor_c_seconds histogram");
  ASSERT_NE(b_type, std::string::npos);
  ASSERT_NE(c_type, std::string::npos);
  EXPECT_LT(b_type, c_type);
  EXPECT_EQ(text.find("# TYPE anchor_b_total counter", b_type + 1),
            std::string::npos);

  EXPECT_NE(text.find("anchor_a_level -4\n"), std::string::npos);
  EXPECT_NE(text.find("anchor_b_total{kind=\"x\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("anchor_b_total{kind=\"y\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("anchor_c_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("anchor_c_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("anchor_c_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("anchor_c_seconds_sum 2.25\n"), std::string::npos);
  EXPECT_NE(text.find("anchor_c_seconds_count 2\n"), std::string::npos);
}

TEST(Registry, ExposeEscapesLabelValues) {
  Registry registry;
  registry.counter("anchor_test_total", {{"path", "a\"b\\c\nd"}}).add(1);
  const std::string text = registry.expose();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(Registry, SnapshotAndDelta) {
  Registry registry;
  Counter& polls = registry.counter("anchor_polls_total", {{"feed", "nss"}});
  Gauge& stale = registry.gauge("anchor_seconds_stale");
  polls.add(2);
  stale.set(100);
  const Snapshot before = registry.snapshot();
  EXPECT_DOUBLE_EQ(before.at("anchor_polls_total{feed=\"nss\"}"), 2.0);

  polls.add(3);
  stale.set(40);
  registry.counter("anchor_new_total").add(1);  // registered mid-flight
  const Snapshot after = registry.snapshot();
  const Snapshot delta = snapshot_delta(before, after);
  EXPECT_DOUBLE_EQ(delta.at("anchor_polls_total{feed=\"nss\"}"), 3.0);
  EXPECT_DOUBLE_EQ(delta.at("anchor_seconds_stale"), -60.0);
  EXPECT_DOUBLE_EQ(delta.at("anchor_new_total"), 1.0);
  // Unchanged series are dropped.
  polls.reset();
  stale.reset();
  const Snapshot unchanged = snapshot_delta(after, registry.snapshot());
  EXPECT_EQ(unchanged.count("anchor_new_total"), 0u);
}

TEST(Registry, ResetZeroesButKeepsSeries) {
  Registry registry;
  Counter& c = registry.counter("anchor_test_total");
  Histogram& h = registry.histogram("anchor_test_seconds");
  c.add(5);
  h.observe(0.001);
  registry.reset();
  EXPECT_EQ(registry.series_count(), 2u);
  EXPECT_EQ(c.value(), 0u);  // cached reference still valid
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace anchor::metrics
