#include "chain/pool.hpp"

#include <gtest/gtest.h>

#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::chain {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

CertPtr make_cert(const std::string& cn, std::uint64_t serial = 1) {
  SimKeyPair key = SimSig::keygen(cn + std::to_string(serial));
  return CertificateBuilder()
      .serial(serial)
      .subject(DistinguishedName::make(cn, "Org"))
      .issuer(DistinguishedName::make("Parent", "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(0)
      .sign(key)
      .take();
}

TEST(Pool, LookupBySubject) {
  CertificatePool pool;
  CertPtr a = make_cert("CA One");
  CertPtr b = make_cert("CA Two");
  pool.add(a);
  pool.add(b);
  EXPECT_EQ(pool.size(), 2u);
  const auto& found = pool.by_subject(DistinguishedName::make("CA One", "Org"));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->fingerprint(), a->fingerprint());
}

TEST(Pool, MissingSubjectYieldsEmpty) {
  CertificatePool pool;
  pool.add(make_cert("CA One"));
  EXPECT_TRUE(pool.by_subject(DistinguishedName::make("Nope", "Org")).empty());
}

TEST(Pool, ExactDuplicatesDropped) {
  CertificatePool pool;
  CertPtr a = make_cert("CA One");
  pool.add(a);
  pool.add(a);
  auto reparsed = x509::Certificate::parse(BytesView(a->der())).take();
  pool.add(reparsed);  // same DER, different object
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Pool, SameSubjectDifferentCertsBothKept) {
  // Cross-signing: two certificates for the same subject with different
  // keys/serials must coexist (the chain builder tries both).
  CertificatePool pool;
  pool.add(make_cert("Shared CA", 1));
  pool.add(make_cert("Shared CA", 2));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.by_subject(DistinguishedName::make("Shared CA", "Org")).size(),
            2u);
}

TEST(Pool, AddAllBulkInsert) {
  CertificatePool pool;
  pool.add_all({make_cert("A"), make_cert("B"), make_cert("C")});
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace anchor::chain
