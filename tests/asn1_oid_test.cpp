#include "asn1/oid.hpp"

#include <gtest/gtest.h>

namespace anchor::asn1 {
namespace {

TEST(Oid, ParseDotted) {
  Oid oid = Oid::from_string("2.5.29.17");
  ASSERT_TRUE(oid.valid());
  EXPECT_EQ(oid.arcs(), (std::vector<std::uint32_t>{2, 5, 29, 17}));
  EXPECT_EQ(oid.to_string(), "2.5.29.17");
}

TEST(Oid, ParseRejectsMalformed) {
  EXPECT_FALSE(Oid::from_string("").valid());
  EXPECT_FALSE(Oid::from_string("1").valid());          // needs >= 2 arcs
  EXPECT_FALSE(Oid::from_string("1..2").valid());       // empty component
  EXPECT_FALSE(Oid::from_string("a.b").valid());        // non-numeric
  EXPECT_FALSE(Oid::from_string("3.1").valid());        // first arc <= 2
  EXPECT_FALSE(Oid::from_string("1.40").valid());       // second arc <= 39
  EXPECT_FALSE(Oid::from_string("1.2.4294967296").valid());  // overflow
}

TEST(Oid, KnownDerEncodings) {
  // id-ce-subjectAltName 2.5.29.17 -> 55 1D 11
  EXPECT_EQ(Oid::from_string("2.5.29.17").der_contents(),
            (Bytes{0x55, 0x1d, 0x11}));
  // sha256WithRSAEncryption 1.2.840.113549.1.1.11
  EXPECT_EQ(Oid::from_string("1.2.840.113549.1.1.11").der_contents(),
            (Bytes{0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x0b}));
  // id-kp-serverAuth 1.3.6.1.5.5.7.3.1
  EXPECT_EQ(Oid::from_string("1.3.6.1.5.5.7.3.1").der_contents(),
            (Bytes{0x2b, 0x06, 0x01, 0x05, 0x05, 0x07, 0x03, 0x01}));
}

TEST(Oid, DecodeKnownEncodings) {
  Oid oid = Oid::from_der_contents(Bytes{0x55, 0x1d, 0x11});
  EXPECT_EQ(oid.to_string(), "2.5.29.17");
  oid = Oid::from_der_contents(
      Bytes{0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x0b});
  EXPECT_EQ(oid.to_string(), "1.2.840.113549.1.1.11");
}

TEST(Oid, FirstOctetBoundaries) {
  // 0.39 -> 39; 1.0 -> 40; 2.0 -> 80; 2.100 -> 180.
  EXPECT_EQ(Oid::from_string("0.39").der_contents(), (Bytes{39}));
  EXPECT_EQ(Oid::from_string("1.0").der_contents(), (Bytes{40}));
  EXPECT_EQ(Oid::from_string("2.0").der_contents(), (Bytes{80}));
  EXPECT_EQ(Oid::from_der_contents(Bytes{39}).to_string(), "0.39");
  EXPECT_EQ(Oid::from_der_contents(Bytes{40}).to_string(), "1.0");
  EXPECT_EQ(Oid::from_der_contents(Bytes{80}).to_string(), "2.0");
  EXPECT_EQ(Oid::from_der_contents(Bytes{0x81, 0x34}).to_string(), "2.100");
}

TEST(Oid, DecodeRejectsMalformed) {
  EXPECT_FALSE(Oid::from_der_contents(Bytes{}).valid());
  EXPECT_FALSE(Oid::from_der_contents(Bytes{0x80}).valid());        // truncated
  EXPECT_FALSE(Oid::from_der_contents(Bytes{0x2b, 0x80}).valid());  // truncated arc
}

TEST(Oid, RoundTripSweep) {
  const char* samples[] = {"2.5.4.3",          "1.3.6.1.4.1.57264.1",
                           "2.23.140.1.1",     "1.3.6.1.5.5.7.3.4",
                           "0.9.2342.19200300.100.1.25", "2.5.29.32.0"};
  for (const char* dotted : samples) {
    Oid oid = Oid::from_string(dotted);
    ASSERT_TRUE(oid.valid()) << dotted;
    Oid back = Oid::from_der_contents(oid.der_contents());
    EXPECT_EQ(back, oid) << dotted;
    EXPECT_EQ(back.to_string(), dotted);
  }
}

TEST(Oid, Ordering) {
  EXPECT_LT(Oid::from_string("1.2.3"), Oid::from_string("1.2.4"));
  EXPECT_LT(Oid::from_string("1.2"), Oid::from_string("1.2.0"));
  EXPECT_EQ(Oid::from_string("2.5.29.17"), Oid::from_string("2.5.29.17"));
}

}  // namespace
}  // namespace anchor::asn1
