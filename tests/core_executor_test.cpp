#include "core/executor.hpp"

#include <gtest/gtest.h>

#include "incidents/listings.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::core {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

// A small real PKI (TrustCor-shaped) for executing listings against DER
// certificates rather than hand-written facts.
struct ExecutorPki {
  SimKeyPair root_key = SimSig::keygen("TrustCor-ish Root");
  SimKeyPair int_key = SimSig::keygen("TrustCor-ish Int");
  CertPtr root;
  CertPtr intermediate;

  ExecutorPki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("TrustCor RootCert CA-1", "TrustCor"))
               .issuer(DistinguishedName::make("TrustCor RootCert CA-1", "TrustCor"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("TrustCor Issuing CA", "TrustCor"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2035, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .sign(root_key)
                       .take();
  }

  CertPtr make_leaf(std::int64_t not_before, bool ev, bool smime = false) {
    SimKeyPair key = SimSig::keygen("leaf" + std::to_string(not_before) +
                                    (ev ? "e" : "") + (smime ? "s" : ""));
    CertificateBuilder builder;
    builder.serial(100)
        .subject(DistinguishedName::make("mail.example.com"))
        .issuer(intermediate->subject())
        .validity(not_before, not_before + 90 * 86400)
        .public_key(key.key_id)
        .dns_names({"mail.example.com"})
        .extended_key_usage({smime ? x509::oids::kp_email_protection()
                                   : x509::oids::kp_server_auth()});
    if (ev) builder.ev();
    return builder.sign(int_key).take();
  }

  Chain chain_for(const CertPtr& leaf) const {
    return Chain{leaf, intermediate, root};
  }

  Gcc listing1_gcc() const {
    return Gcc::for_certificate("trustcor", *root,
                                incidents::listing1_trustcor())
        .take();
  }
};

constexpr std::int64_t kListing1Cutoff = 1669784400;

TEST(Executor, Listing1AgainstRealCertificates) {
  ExecutorPki pki;
  Gcc gcc = pki.listing1_gcc();
  GccExecutor executor;

  Chain old_chain = pki.chain_for(pki.make_leaf(kListing1Cutoff - 86400, false));
  Chain new_chain = pki.chain_for(pki.make_leaf(kListing1Cutoff + 86400, false));
  Chain ev_chain = pki.chain_for(pki.make_leaf(kListing1Cutoff - 86400, true));

  EXPECT_TRUE(executor.evaluate_one(old_chain, kUsageTls, gcc));
  EXPECT_TRUE(executor.evaluate_one(old_chain, kUsageSmime, gcc));
  EXPECT_FALSE(executor.evaluate_one(new_chain, kUsageTls, gcc));
  EXPECT_FALSE(executor.evaluate_one(new_chain, kUsageSmime, gcc));
  EXPECT_FALSE(executor.evaluate_one(ev_chain, kUsageTls, gcc));
  EXPECT_TRUE(executor.evaluate_one(ev_chain, kUsageSmime, gcc));
}

TEST(Executor, EmptyGccListTriviallyAllows) {
  ExecutorPki pki;
  GccExecutor executor;
  Chain chain = pki.chain_for(pki.make_leaf(1000, false));
  GccVerdict verdict = executor.evaluate(chain, kUsageTls, {});
  EXPECT_TRUE(verdict.allowed);
  EXPECT_EQ(verdict.gccs_evaluated, 0u);
}

TEST(Executor, AllGccsMustPass) {
  ExecutorPki pki;
  GccExecutor executor;
  // Permissive + restrictive: conjunction must fail.
  Gcc permissive =
      Gcc::for_certificate("allow-all", *pki.root,
                           "valid(Chain, _) :- leaf(Chain, L).")
          .take();
  Gcc restrictive =
      Gcc::for_certificate("deny-all", *pki.root,
                           "valid(Chain, \"TLS\") :- leaf(Chain, L), ev(L).")
          .take();
  Chain chain = pki.chain_for(pki.make_leaf(1000, false));

  std::vector<Gcc> both{permissive, restrictive};
  GccVerdict verdict = executor.evaluate(chain, kUsageTls, both);
  EXPECT_FALSE(verdict.allowed);
  EXPECT_EQ(verdict.failed_gcc, "deny-all");
  EXPECT_EQ(verdict.gccs_evaluated, 2u);

  std::vector<Gcc> just_permissive{permissive};
  EXPECT_TRUE(executor.evaluate(chain, kUsageTls, just_permissive).allowed);
}

TEST(Executor, FirstFailureShortCircuits) {
  ExecutorPki pki;
  GccExecutor executor;
  Gcc deny = Gcc::for_certificate("deny", *pki.root,
                                  "valid(Chain, \"TLS\") :- leaf(Chain, L), ev(L).")
                 .take();
  Gcc allow = Gcc::for_certificate("allow", *pki.root,
                                   "valid(Chain, _) :- leaf(Chain, L).")
                  .take();
  Chain chain = pki.chain_for(pki.make_leaf(1000, false));
  std::vector<Gcc> ordered{deny, allow};
  GccVerdict verdict = executor.evaluate(chain, kUsageTls, ordered);
  EXPECT_FALSE(verdict.allowed);
  EXPECT_EQ(verdict.gccs_evaluated, 1u);  // short-circuited
}

TEST(Executor, VerdictAccumulatesStats) {
  ExecutorPki pki;
  GccExecutor executor;
  Gcc gcc = pki.listing1_gcc();
  Chain chain = pki.chain_for(pki.make_leaf(1000, false));
  std::vector<Gcc> gccs{gcc};
  GccVerdict verdict = executor.evaluate(chain, kUsageTls, gccs);
  EXPECT_TRUE(verdict.allowed);
  EXPECT_GT(verdict.facts_encoded, 20u);
  EXPECT_GT(verdict.stats.derived_tuples, 0u);
}

TEST(Executor, NaiveStrategyAgrees) {
  ExecutorPki pki;
  GccExecutor semi(datalog::Strategy::kSemiNaive);
  GccExecutor naive(datalog::Strategy::kNaive);
  Gcc gcc = pki.listing1_gcc();
  for (bool ev : {false, true}) {
    for (std::int64_t offset : {-86400, 86400}) {
      Chain chain = pki.chain_for(pki.make_leaf(kListing1Cutoff + offset, ev));
      for (const char* usage : {kUsageTls, kUsageSmime}) {
        EXPECT_EQ(semi.evaluate_one(chain, usage, gcc),
                  naive.evaluate_one(chain, usage, gcc))
            << "ev=" << ev << " offset=" << offset << " usage=" << usage;
      }
    }
  }
}

TEST(Executor, UnknownUsageStringNeverValid) {
  ExecutorPki pki;
  GccExecutor executor;
  Gcc gcc = pki.listing1_gcc();
  Chain chain = pki.chain_for(pki.make_leaf(1000, false));
  EXPECT_FALSE(executor.evaluate_one(chain, "CodeSigning", gcc));
}

}  // namespace
}  // namespace anchor::core

namespace anchor::core {
namespace {

TEST(Executor, RunawayGccFailsClosed) {
  // A GCC whose evaluation would run forever (arithmetic recursion) must be
  // truncated by the engine guard and treated as a rejection — never as an
  // acceptance over an incomplete model.
  ExecutorPki pki;
  Gcc runaway =
      Gcc::for_certificate("runaway", *pki.root,
                           "tick(0).\n"
                           "tick(Y) :- tick(X), Y = X + 1.\n"
                           "valid(Chain, _) :- leaf(Chain, L), tick(1).")
          .take();
  GccExecutor executor;
  Chain chain = pki.chain_for(pki.make_leaf(1000, false));
  EXPECT_FALSE(executor.evaluate_one(chain, kUsageTls, runaway));
}

}  // namespace
}  // namespace anchor::core
