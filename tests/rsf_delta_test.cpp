#include "rsf/delta.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"

namespace anchor::rsf {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return CertificateBuilder()
      .serial(1)
      .subject(DistinguishedName::make(name, "Org"))
      .issuer(DistinguishedName::make(name, "Org"))
      .validity(0, unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}

const std::string kGcc =
    "valid(Chain, \"TLS\") :- leaf(Chain, L), notBefore(L, NB), NB < 100.";

// Stores compare equal iff their canonical serializations match.
bool stores_equal(const rootstore::RootStore& a, const rootstore::RootStore& b) {
  return a.serialize() == b.serialize();
}

TEST(StoreDelta, DiffOfIdenticalStoresIsEmpty) {
  rootstore::RootStore store;
  (void)store.add_trusted(make_root("A"));
  StoreDelta delta = StoreDelta::diff(store, store);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.operations(), 0u);
}

TEST(StoreDelta, DiffDetectsAllChangeKinds) {
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  CertPtr c = make_root("C");
  rootstore::RootStore from;
  (void)from.add_trusted(a);
  (void)from.add_trusted(b);
  from.attach_gcc(core::Gcc::create("old", a->fingerprint_hex(), kGcc).take());

  rootstore::RootStore to;
  rootstore::RootMetadata strict;
  strict.tls_distrust_after = 500;
  (void)to.add_trusted(a, strict);          // metadata change
  to.distrust(b->fingerprint_hex(), "bad"); // trusted -> distrusted
  (void)to.add_trusted(c);                  // new root
  to.attach_gcc(core::Gcc::create("new", c->fingerprint_hex(), kGcc).take());
  // "old" gcc dropped

  StoreDelta delta = StoreDelta::diff(from, to);
  EXPECT_EQ(delta.add_trusted.size(), 2u);  // a (metadata) + c (new)
  EXPECT_EQ(delta.distrust.size(), 1u);
  EXPECT_TRUE(delta.forget.empty());
  EXPECT_EQ(delta.attach_gccs.size(), 1u);
  EXPECT_EQ(delta.detach_gccs.size(), 1u);
}

TEST(StoreDelta, ApplyReplaysDiff) {
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  CertPtr c = make_root("C");
  rootstore::RootStore from;
  (void)from.add_trusted(a);
  (void)from.add_trusted(b);
  from.distrust(std::string(64, 'd'), "old removal");
  from.attach_gcc(core::Gcc::create("g1", a->fingerprint_hex(), kGcc).take());

  rootstore::RootStore to;
  (void)to.add_trusted(a);
  to.distrust(b->fingerprint_hex(), "incident");
  (void)to.add_trusted(c);
  // the old distrust entry is forgotten (expired housekeeping)
  to.attach_gcc(core::Gcc::create("g2", c->fingerprint_hex(), kGcc).take());

  StoreDelta delta = StoreDelta::diff(from, to);
  rootstore::RootStore replayed = from;
  delta.apply(replayed);
  EXPECT_TRUE(stores_equal(replayed, to))
      << "replayed:\n" << replayed.serialize() << "\nto:\n" << to.serialize();
}

TEST(StoreDelta, ApplyHandlesReTrustAfterDistrust) {
  CertPtr a = make_root("A");
  rootstore::RootStore from;
  from.distrust(a->fingerprint_hex(), "temporary");
  rootstore::RootStore to;
  (void)to.add_trusted(a);  // the primary changed its mind
  StoreDelta delta = StoreDelta::diff(from, to);
  rootstore::RootStore replayed = from;
  delta.apply(replayed);
  EXPECT_TRUE(stores_equal(replayed, to));
  EXPECT_EQ(replayed.state_of(a->fingerprint_hex()),
            rootstore::TrustState::kTrusted);
}

TEST(StoreDelta, SerializeRoundTrip) {
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  StoreDelta delta;
  rootstore::RootMetadata metadata;
  metadata.ev_allowed = true;
  metadata.smime_distrust_after = 777;
  metadata.justification = "multi\nline";
  delta.add_trusted.push_back(StoreDelta::TrustChange{a, metadata});
  delta.distrust.emplace_back(b->fingerprint_hex(), "why");
  delta.forget.push_back(std::string(64, 'e'));
  delta.attach_gccs.push_back(
      core::Gcc::create("g", a->fingerprint_hex(), kGcc, "j").take());
  delta.detach_gccs.emplace_back(b->fingerprint_hex(), "old name");

  auto parsed = StoreDelta::deserialize(delta.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().serialize(), delta.serialize());
  EXPECT_EQ(parsed.value().add_trusted[0].metadata, metadata);
  EXPECT_EQ(parsed.value().attach_gccs[0].name(), "g");
  EXPECT_EQ(parsed.value().detach_gccs[0].second, "old name");
}

TEST(StoreDelta, DeserializeRejectsMalformed) {
  EXPECT_FALSE(StoreDelta::deserialize("nope").ok());
  EXPECT_FALSE(
      StoreDelta::deserialize("anchor-store-delta/v1\nbogus x\n").ok());
  EXPECT_FALSE(
      StoreDelta::deserialize("anchor-store-delta/v1\ndistrust short\n").ok());
  EXPECT_TRUE(StoreDelta::deserialize("anchor-store-delta/v1\n").ok());
}

// Property: for randomized store evolutions, apply(diff(a,b), a) == b.
class DeltaRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaRoundTrip, DiffApplyIsIdentity) {
  Rng rng(GetParam());
  // Build a pool of roots to draw from.
  std::vector<CertPtr> roots;
  for (int i = 0; i < 12; ++i) {
    roots.push_back(make_root("Pool Root " + std::to_string(i)));
  }

  rootstore::RootStore from;
  rootstore::RootStore to;
  for (const auto& root : roots) {
    // Independent random membership in each store.
    auto populate = [&](rootstore::RootStore& store) {
      double coin = rng.uniform01();
      if (coin < 0.4) {
        rootstore::RootMetadata metadata;
        metadata.ev_allowed = rng.chance(0.5);
        if (rng.chance(0.3)) {
          metadata.tls_distrust_after = rng.uniform_range(1, 1000000);
        }
        (void)store.add_trusted(root, metadata);
        if (rng.chance(0.4)) {
          store.attach_gcc(core::Gcc::create(
                                  "g" + std::to_string(rng.uniform(3)),
                                  root->fingerprint_hex(), kGcc)
                                  .take());
        }
      } else if (coin < 0.6) {
        store.distrust(root->fingerprint_hex(), "r" + std::to_string(rng.uniform(9)));
      }  // else: unknown
    };
    populate(from);
    populate(to);
  }

  StoreDelta delta = StoreDelta::diff(from, to);
  rootstore::RootStore replayed = from;
  delta.apply(replayed);
  EXPECT_TRUE(stores_equal(replayed, to))
      << "seed " << GetParam() << ": replay mismatch\nreplayed:\n"
      << replayed.serialize() << "\nexpected:\n" << to.serialize();

  // And the serialized delta replays identically too.
  auto parsed = StoreDelta::deserialize(delta.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  rootstore::RootStore replayed2 = from;
  parsed.value().apply(replayed2);
  EXPECT_TRUE(stores_equal(replayed2, to));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(StoreDelta, RedundantReplayLeavesEpochUnchanged) {
  // VerifyService's verdict cache keys on RootStore::epoch(). Replaying a
  // delta the store has already absorbed (a re-delivered feed message, an
  // at-least-once transport) is all byte-identical no-ops and must not move
  // the epoch — otherwise every redundant delivery flushes a warm cache.
  CertPtr a = make_root("A");
  CertPtr b = make_root("B");
  rootstore::RootStore from;
  (void)from.add_trusted(a);
  rootstore::RootStore to;
  rootstore::RootMetadata metadata;
  metadata.ev_allowed = true;
  (void)to.add_trusted(a, metadata);     // metadata change
  to.distrust(b->fingerprint_hex(), "incident");

  StoreDelta delta = StoreDelta::diff(from, to);
  rootstore::RootStore replayed = from;
  delta.apply(replayed);
  ASSERT_TRUE(stores_equal(replayed, to));
  const std::uint64_t settled = replayed.epoch();

  delta.apply(replayed);  // second delivery of the same delta
  EXPECT_TRUE(stores_equal(replayed, to));
  EXPECT_EQ(replayed.epoch(), settled);
}

TEST(StoreDelta, BandwidthAdvantageOverFullSnapshot) {
  // A 140-root store with a one-root emergency change: the delta should be
  // at least an order of magnitude smaller than the full snapshot.
  rootstore::RootStore store;
  std::vector<CertPtr> roots;
  for (int i = 0; i < 140; ++i) {
    roots.push_back(make_root("BW Root " + std::to_string(i)));
    (void)store.add_trusted(roots.back());
  }
  rootstore::RootStore after = store;
  after.distrust(roots[7]->fingerprint_hex(), "incident");

  StoreDelta delta = StoreDelta::diff(store, after);
  EXPECT_EQ(delta.operations(), 1u);
  std::size_t full_size = after.serialize().size();
  std::size_t delta_size = delta.serialize().size();
  EXPECT_LT(delta_size * 10, full_size);
}

}  // namespace
}  // namespace anchor::rsf
