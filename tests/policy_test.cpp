// Differential tests between the procedural ChainVerifier and the
// Hammurabi-style PolicyVerifier (the paper's §3.1 option 3): the two must
// agree on every scenario — tree-shaped and cross-signed alike, now that
// the policy's depth-indexed upOK relation is path-sensitive — including
// the cross-sign resurrection bane case.
#include "policy/policy.hpp"

#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "incidents/incidents.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::policy {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

struct PolicyPki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("Pol Root");
  SimKeyPair int_key = SimSig::keygen("Pol Int");
  SimKeyPair nc_key = SimSig::keygen("Pol NC Int");
  SimKeyPair plen_key = SimSig::keygen("Pol PathLen Int");
  SimKeyPair deep_key = SimSig::keygen("Pol Deep Int");
  CertPtr root, intermediate, nc_int, plen_int, deep_int;
  rootstore::RootStore store;
  chain::CertificatePool pool;
  static constexpr std::int64_t kNow = 1700000000;

  PolicyPki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Pol Root", "T"))
               .issuer(DistinguishedName::make("Pol Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("Pol Int", "T"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2039, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(std::nullopt)
                       .sign(root_key)
                       .take();
    x509::NameConstraints nc;
    nc.permitted_dns = {"example.com"};
    nc_int = CertificateBuilder()
                 .serial(3)
                 .subject(DistinguishedName::make("Pol NC Int", "T"))
                 .issuer(root->subject())
                 .validity(0, unix_date(2039, 1, 1))
                 .public_key(nc_key.key_id)
                 .ca(std::nullopt)
                 .name_constraints(nc)
                 .sign(root_key)
                 .take();
    plen_int = CertificateBuilder()
                   .serial(4)
                   .subject(DistinguishedName::make("Pol PathLen Int", "T"))
                   .issuer(root->subject())
                   .validity(0, unix_date(2039, 1, 1))
                   .public_key(plen_key.key_id)
                   .ca(0)
                   .sign(root_key)
                   .take();
    deep_int = CertificateBuilder()
                   .serial(5)
                   .subject(DistinguishedName::make("Pol Deep Int", "T"))
                   .issuer(plen_int->subject())
                   .validity(0, unix_date(2039, 1, 1))
                   .public_key(deep_key.key_id)
                   .ca(std::nullopt)
                   .sign(plen_key)
                   .take();
    for (const auto& key : {root_key, int_key, nc_key, plen_key, deep_key}) {
      sigs.register_key(key);
    }
    (void)store.add_trusted(root);
    pool.add(intermediate);
    pool.add(nc_int);
    pool.add(plen_int);
    pool.add(deep_int);
  }

  CertPtr leaf(const std::string& domain, const SimKeyPair& issuer_key,
               const CertPtr& issuer, std::int64_t not_before = kNow - 86400,
               bool smime = false, bool wildcard = false) {
    SimKeyPair key = SimSig::keygen("pleaf" + domain);
    std::vector<std::string> names{domain};
    if (wildcard) names.push_back("*." + domain);
    return CertificateBuilder()
        .serial(100)
        .subject(DistinguishedName::make(domain))
        .issuer(issuer->subject())
        .validity(not_before, not_before + 90 * 86400)
        .public_key(key.key_id)
        .dns_names(names)
        .extended_key_usage({smime ? x509::oids::kp_email_protection()
                                   : x509::oids::kp_server_auth()})
        .sign(issuer_key)
        .take();
  }

  chain::VerifyOptions tls(const std::string& host) const {
    chain::VerifyOptions options;
    options.time = kNow;
    options.hostname = host;
    return options;
  }
};

// Both verifiers, same scenario, same verdict.
void expect_agreement(const PolicyPki& pki, const CertPtr& leaf,
                      const chain::VerifyOptions& options, bool expected,
                      const char* label) {
  chain::ChainVerifier procedural(pki.store, pki.sigs);
  PolicyVerifier logical(pki.store, pki.sigs);
  bool proc = procedural.verify(leaf, pki.pool, options).ok;
  bool log = logical.verify(leaf, pki.pool, options).ok;
  EXPECT_EQ(proc, expected) << label << " (procedural)";
  EXPECT_EQ(log, expected) << label << " (datalog policy)";
}

TEST(PolicyVerifierTest, AcceptsValidChain) {
  PolicyPki pki;
  expect_agreement(pki, pki.leaf("ok.example.org", pki.int_key, pki.intermediate),
                   pki.tls("ok.example.org"), true, "valid chain");
}

TEST(PolicyVerifierTest, WildcardHostnameMatch) {
  PolicyPki pki;
  CertPtr leaf = pki.leaf("example.org", pki.int_key, pki.intermediate,
                          PolicyPki::kNow - 86400, false, /*wildcard=*/true);
  expect_agreement(pki, leaf, pki.tls("api.example.org"), true, "wildcard");
  expect_agreement(pki, leaf, pki.tls("a.b.example.org"), false,
                   "wildcard one label only");
}

TEST(PolicyVerifierTest, RejectsExpiredLeaf) {
  PolicyPki pki;
  CertPtr leaf = pki.leaf("old.example.org", pki.int_key, pki.intermediate,
                          PolicyPki::kNow - 400 * 86400);
  expect_agreement(pki, leaf, pki.tls("old.example.org"), false, "expired");
}

TEST(PolicyVerifierTest, RejectsHostnameMismatch) {
  PolicyPki pki;
  CertPtr leaf = pki.leaf("site.example.org", pki.int_key, pki.intermediate);
  expect_agreement(pki, leaf, pki.tls("other.example.org"), false,
                   "hostname mismatch");
}

TEST(PolicyVerifierTest, RejectsWrongEku) {
  PolicyPki pki;
  CertPtr smime = pki.leaf("mail.example.org", pki.int_key, pki.intermediate,
                           PolicyPki::kNow - 86400, /*smime=*/true);
  expect_agreement(pki, smime, pki.tls("mail.example.org"), false,
                   "S/MIME leaf for TLS");
  chain::VerifyOptions smime_options;
  smime_options.time = PolicyPki::kNow;
  smime_options.usage = chain::Usage::kSmime;
  expect_agreement(pki, smime, smime_options, true, "S/MIME leaf for S/MIME");
}

TEST(PolicyVerifierTest, RejectsForgedSignature) {
  PolicyPki pki;
  SimKeyPair rogue = SimSig::keygen("pol-rogue");
  pki.sigs.register_key(rogue);
  CertPtr forged = pki.leaf("victim.example.org", rogue, pki.intermediate);
  expect_agreement(pki, forged, pki.tls("victim.example.org"), false, "forged");
}

TEST(PolicyVerifierTest, EnforcesNameConstraints) {
  PolicyPki pki;
  CertPtr inside = pki.leaf("shop.example.com", pki.nc_key, pki.nc_int);
  expect_agreement(pki, inside, pki.tls("shop.example.com"), true,
                   "inside name constraint");
  CertPtr outside = pki.leaf("shop.example.net", pki.nc_key, pki.nc_int);
  expect_agreement(pki, outside, pki.tls("shop.example.net"), false,
                   "outside name constraint");
}

TEST(PolicyVerifierTest, EnforcesPathLen) {
  PolicyPki pki;
  CertPtr shallow = pki.leaf("s.example.org", pki.plen_key, pki.plen_int);
  expect_agreement(pki, shallow, pki.tls("s.example.org"), true,
                   "pathLen 0, direct leaf");
  CertPtr deep = pki.leaf("d.example.org", pki.deep_key, pki.deep_int);
  expect_agreement(pki, deep, pki.tls("d.example.org"), false,
                   "pathLen 0, one CA below");
}

TEST(PolicyVerifierTest, RejectsUntrustedRoot) {
  PolicyPki pki;
  rootstore::RootStore empty_store;
  PolicyVerifier logical(empty_store, pki.sigs);
  CertPtr leaf = pki.leaf("ok.example.org", pki.int_key, pki.intermediate);
  EXPECT_FALSE(logical.verify(leaf, pki.pool, pki.tls("ok.example.org")).ok);
}

TEST(PolicyVerifierTest, DistrustedRootIsNotAnAnchor) {
  PolicyPki pki;
  pki.store.distrust(pki.root->fingerprint_hex(), "incident");
  PolicyVerifier logical(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("ok.example.org", pki.int_key, pki.intermediate);
  EXPECT_FALSE(logical.verify(leaf, pki.pool, pki.tls("ok.example.org")).ok);
}

TEST(PolicyVerifierTest, ReportsStatsAndFacts) {
  PolicyPki pki;
  PolicyVerifier logical(pki.store, pki.sigs);
  CertPtr leaf = pki.leaf("ok.example.org", pki.int_key, pki.intermediate);
  PolicyResult result = logical.verify(leaf, pki.pool, pki.tls("ok.example.org"));
  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.facts, 20u);
  EXPECT_GT(result.stats.derived_tuples, 5u);
  EXPECT_EQ(result.leaf_id, leaf->fingerprint_hex());
}

TEST(PolicyVerifierTest, CustomPolicyReplacesDefault) {
  PolicyPki pki;
  // A paranoid policy: accept nothing.
  PolicyVerifier deny_all(pki.store, pki.sigs,
                          "accept(L) :- isLeaf(L), impossible(L).");
  CertPtr leaf = pki.leaf("ok.example.org", pki.int_key, pki.intermediate);
  EXPECT_FALSE(deny_all.verify(leaf, pki.pool, pki.tls("ok.example.org")).ok);
}

// Cross-signing agreement: the depth-indexed upOK relation checks every
// link at its actual depth, so the policy tries the clean path even though
// a constraint-violating CA is reachable via the cross-signed edge — the
// same accept-if-any-path semantics as the procedural graph search. (This
// was the documented divergence of the old set-based encoding, which
// condemned the leaf if ANY reachable CA violated a constraint.)
TEST(PolicyVerifierTest, CrossSigningAgreement) {
  PolicyPki pki;
  // Cross-sign "Pol Int" under the name-constrained intermediate: the leaf
  // now has two issuer certs for DN "Pol Int": one clean (under root), one
  // whose path crosses the NC intermediate.
  CertPtr cross = CertificateBuilder()
                      .serial(50)
                      .subject(DistinguishedName::make("Pol Int", "T"))
                      .issuer(pki.nc_int->subject())
                      .validity(0, unix_date(2039, 1, 1))
                      .public_key(pki.int_key.key_id)
                      .ca(std::nullopt)
                      .sign(pki.nc_key)
                      .take();
  pki.pool.add(cross);

  CertPtr leaf = pki.leaf("site.example.net", pki.int_key, pki.intermediate);
  chain::ChainVerifier procedural(pki.store, pki.sigs);
  PolicyVerifier logical(pki.store, pki.sigs);
  // Procedural: finds the clean path (leaf <- Pol Int <- Root) and accepts.
  EXPECT_TRUE(procedural.verify(leaf, pki.pool, pki.tls("site.example.net")).ok);
  // Datalog policy: the NC intermediate is reachable via the cross-signed
  // edge, but the clean path has no violating link at any depth -> accept,
  // agreeing with the procedural verifier.
  EXPECT_TRUE(logical.verify(leaf, pki.pool, pki.tls("site.example.net")).ok);
}

// The bane case, in the logic: a distrusted root with a live cross-sign
// from a trusted root must stay rejected by both verifiers — the
// distrustedCA facts poison every certificate of the logical CA.
TEST(PolicyVerifierTest, CrossSignResurrectionRejectedByBothVerifiers) {
  incidents::Incident incident = incidents::make_cross_sign();
  chain::ChainVerifier procedural(incident.store, incident.signatures);
  PolicyVerifier logical(incident.store, incident.signatures);
  for (const auto& test_case : incident.cases) {
    const bool proc =
        procedural.verify(test_case.leaf, incident.pool, test_case.options).ok;
    const bool log =
        logical.verify(test_case.leaf, incident.pool, test_case.options).ok;
    EXPECT_EQ(proc, test_case.expect_valid) << test_case.label;
    EXPECT_EQ(log, test_case.expect_valid) << test_case.label;
  }
}

// Sweep the shared corpus: on tree-shaped issuance both verifiers agree on
// every sampled leaf (accept and reject cases both occur in the sample).
TEST(PolicyVerifierTest, CorpusDifferentialAgreement) {
  corpus::CorpusConfig config;
  config.num_roots = 12;
  config.num_intermediates = 30;
  config.roots_with_path_len = 1;
  config.intermediates_with_path_len = 25;
  config.intermediates_with_name_constraints = 3;
  config.roots_with_constrained_chain = 2;
  config.leaves_per_intermediate_mean = 5.0;
  corpus::Corpus corpus = corpus::Corpus::generate(config);

  rootstore::RootStore store = corpus.make_root_store();
  chain::CertificatePool pool = corpus.intermediate_pool();
  chain::ChainVerifier procedural(store, corpus.signatures());
  PolicyVerifier logical(store, corpus.signatures());

  std::size_t checked = 0;
  std::size_t accepts = 0;
  for (std::size_t i = 0; i < corpus.leaves().size() && checked < 60; i += 3) {
    const auto& record = corpus.leaves()[i];
    chain::VerifyOptions options;
    // Half in-window, half at a time many leaves are expired.
    options.time = (checked % 2 == 0)
                       ? (record.cert->not_before() + record.cert->not_after()) / 2
                       : corpus.config().time_origin - 86400;
    options.usage = record.smime ? chain::Usage::kSmime : chain::Usage::kTls;
    if (!record.smime) options.hostname = record.domain;
    bool proc = procedural.verify(record.cert, pool, options).ok;
    bool log = logical.verify(record.cert, pool, options).ok;
    EXPECT_EQ(proc, log) << record.domain << " at t=" << options.time;
    accepts += proc;
    ++checked;
  }
  EXPECT_GT(checked, 40u);
  EXPECT_GT(accepts, 0u);
  EXPECT_LT(accepts, checked);  // both verdicts exercised
}

}  // namespace
}  // namespace anchor::policy
