#include "datalog/eval.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.hpp"

namespace anchor::datalog {
namespace {

// Runs a program over optional extra EDB facts and returns the relation's
// tuples sorted, for order-independent comparison.
std::vector<Tuple> model_of(const std::string& source,
                            const std::string& predicate, std::size_t arity,
                            Strategy strategy = Strategy::kSemiNaive,
                            Database* db_out = nullptr) {
  auto program = parse_program(source).take();
  auto evaluator = Evaluator::create(program, strategy);
  EXPECT_TRUE(evaluator.ok()) << (evaluator.ok() ? "" : evaluator.error());
  Database db;
  evaluator.value().run(db);
  std::vector<Tuple> tuples;
  if (const Relation* rel = db.find(predicate, arity)) tuples = rel->tuples();
  std::sort(tuples.begin(), tuples.end());
  if (db_out != nullptr) *db_out = std::move(db);
  return tuples;
}

TEST(Eval, FactsMaterialize) {
  auto tuples = model_of("e(1). e(2). e(1).", "e", 1);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{Value(std::int64_t{1})},
                                        {Value(std::int64_t{2})}}));
}

TEST(Eval, SimpleJoin) {
  auto tuples = model_of(R"(
parent(alice, bob). parent(bob, carol). parent(bob, dave).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
)", "grandparent", 2);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{Value("alice"), Value("carol")},
                                        {Value("alice"), Value("dave")}}));
}

TEST(Eval, TransitiveClosure) {
  auto tuples = model_of(R"(
edge(1,2). edge(2,3). edge(3,4).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
)", "reach", 2);
  EXPECT_EQ(tuples.size(), 6u);  // 1-2,1-3,1-4,2-3,2-4,3-4
}

TEST(Eval, CyclicGraphTerminates) {
  auto tuples = model_of(R"(
edge(a,b). edge(b,c). edge(c,a).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
)", "reach", 2);
  EXPECT_EQ(tuples.size(), 9u);  // complete relation over {a,b,c}
}

TEST(Eval, StratifiedNegation) {
  auto tuples = model_of(R"(
node(1). node(2). node(3).
flagged(2).
clean(X) :- node(X), \+flagged(X).
)", "clean", 1);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{Value(std::int64_t{1})},
                                        {Value(std::int64_t{3})}}));
}

TEST(Eval, NegationOverDerivedPredicate) {
  auto tuples = model_of(R"(
e(1). e(2). e(3). f(2).
bad(X) :- e(X), f(X).
good(X) :- e(X), \+bad(X).
)", "good", 1);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(Eval, ComparisonFiltering) {
  auto tuples = model_of(R"(
n(1). n(5). n(10).
small(X) :- n(X), X < 6.
)", "small", 1);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(Eval, AllComparisonOperators) {
  const char* base = "n(1). n(2). n(3).";
  auto count = [&](const std::string& rule) {
    return model_of(std::string(base) + rule, "r", 1).size();
  };
  EXPECT_EQ(count("r(X) :- n(X), X < 2."), 1u);
  EXPECT_EQ(count("r(X) :- n(X), X <= 2."), 2u);
  EXPECT_EQ(count("r(X) :- n(X), X > 2."), 1u);
  EXPECT_EQ(count("r(X) :- n(X), X >= 2."), 2u);
  EXPECT_EQ(count("r(X) :- n(X), X = 2."), 1u);
  EXPECT_EQ(count("r(X) :- n(X), X != 2."), 2u);
}

TEST(Eval, StringComparison) {
  auto tuples = model_of(R"(
s(apple). s(banana).
r(X) :- s(X), X < "b".
)", "r", 1);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{Value("apple")}}));
}

TEST(Eval, MixedTypeComparisonIsOnlyUnequal) {
  auto eq = model_of("a(1). b(\"1\"). r(X) :- a(X), b(Y), X = Y.", "r", 1);
  EXPECT_TRUE(eq.empty());
  auto ne = model_of("a(1). b(\"1\"). r(X) :- a(X), b(Y), X != Y.", "r", 1);
  EXPECT_EQ(ne.size(), 1u);
  auto lt = model_of("a(1). b(\"1\"). r(X) :- a(X), b(Y), X < Y.", "r", 1);
  EXPECT_TRUE(lt.empty());  // ordered comparison on mixed types fails
}

TEST(Eval, ArithmeticAssignment) {
  auto tuples = model_of(R"(
span(cert1, 100, 700).
lifetime(C, L) :- span(C, NB, NA), L = NA - NB.
)", "lifetime", 2);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][1], Value(std::int64_t{600}));
}

TEST(Eval, ArithmeticAddMul) {
  auto add = model_of("a(3). r(Y) :- a(X), Y = X + 4.", "r", 1);
  EXPECT_EQ(add[0][0], Value(std::int64_t{7}));
  auto mul = model_of("a(3). r(Y) :- a(X), Y = X * 5.", "r", 1);
  EXPECT_EQ(mul[0][0], Value(std::int64_t{15}));
}

TEST(Eval, AssignmentReversedSides) {
  auto tuples = model_of("a(3). r(Y) :- a(X), X + 1 = Y.", "r", 1);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0], Value(std::int64_t{4}));
}

TEST(Eval, EqualityBetweenBoundVariables) {
  auto tuples = model_of(R"(
p(1, 1). p(1, 2).
same(X) :- p(X, Y), X = Y.
)", "same", 1);
  EXPECT_EQ(tuples.size(), 1u);
}

TEST(Eval, ComparisonBetweenTwoExpressions) {
  auto tuples = model_of(R"(
m(2, 3). m(5, 4).
r(A) :- m(A, B), A + 1 < B + 1.
)", "r", 1);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0], Value(std::int64_t{2}));
}

TEST(Eval, LiteralReorderingHandlesForwardReferences) {
  // The comparison references T before nov(T) binds it textually later.
  auto tuples = model_of(R"(
nb(cert, 100).
nov(200).
ok(C) :- nb(C, NB), NB < T, nov(T).
)", "ok", 1);
  EXPECT_EQ(tuples.size(), 1u);
}

TEST(Eval, ConstantsInRuleHead) {
  auto tuples = model_of("e(1). r(fixed, X) :- e(X).", "r", 2);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0], Value("fixed"));
}

TEST(Eval, ConstantFilterInBodyAtom) {
  auto tuples = model_of(R"(
usage(c1, tls). usage(c2, smime).
tlsOnly(C) :- usage(C, tls).
)", "tlsOnly", 1);
  EXPECT_EQ(tuples, (std::vector<Tuple>{{Value("c1")}}));
}

TEST(Eval, SameVariableTwiceInAtom) {
  auto tuples = model_of(R"(
p(1, 1). p(1, 2). p(3, 3).
diag(X) :- p(X, X).
)", "diag", 1);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(Eval, EmptyEdbYieldsEmptyIdb) {
  auto tuples = model_of("r(X) :- nothing(X).", "r", 1);
  EXPECT_TRUE(tuples.empty());
}

TEST(Eval, StatsArePopulated) {
  auto program = parse_program(R"(
edge(1,2). edge(2,3).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
)").take();
  auto evaluator = Evaluator::create(program).take();
  Database db;
  EvalStats stats = evaluator.run(db);
  EXPECT_GE(stats.iterations, 2u);
  EXPECT_EQ(stats.derived_tuples, 2u + 3u);  // 2 edges + 3 reach tuples
  EXPECT_GT(stats.rule_applications, 0u);
}

// --- Differential testing: semi-naive and naive must agree -------------------

struct DiffCase {
  const char* name;
  const char* source;
  const char* predicate;
  std::size_t arity;
};

class StrategyDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(StrategyDifferential, SemiNaiveMatchesNaive) {
  const DiffCase& test_case = GetParam();
  auto semi = model_of(test_case.source, test_case.predicate, test_case.arity,
                       Strategy::kSemiNaive);
  auto naive = model_of(test_case.source, test_case.predicate, test_case.arity,
                        Strategy::kNaive);
  EXPECT_EQ(semi, naive);
  EXPECT_FALSE(semi.empty()) << "vacuous differential case";
}

INSTANTIATE_TEST_SUITE_P(
    Programs, StrategyDifferential,
    ::testing::Values(
        DiffCase{"closure", R"(
edge(1,2). edge(2,3). edge(3,4). edge(4,1). edge(2,5).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).)", "reach", 2},
        DiffCase{"negation", R"(
n(1). n(2). n(3). n(4). m(2). m(4).
odd(X) :- n(X), \+m(X).)", "odd", 1},
        DiffCase{"mutual", R"(
e(1,2). e(2,3). e(3,4). e(4,5). e(5,6).
even(X) :- start(X).
start(1).
odd(Y) :- even(X), e(X,Y).
even(Y) :- odd(X), e(X,Y).)", "even", 1},
        DiffCase{"arith", R"(
base(0).
step(X, Y) :- base(X), Y = X + 1.
)", "step", 2},
        DiffCase{"layered", R"(
a(1). a(2). a(3).
b(X) :- a(X), X < 3.
c(X) :- a(X), \+b(X).
d(X) :- a(X), \+c(X).)", "d", 1}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.name;
    });

TEST(Eval, DeepRecursionLinearChain) {
  // 200-node chain: semi-naive needs ~200 iterations; naive would be O(n^2)
  // rule applications but must still agree.
  std::string source;
  for (int i = 0; i < 200; ++i) {
    source += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  source += "reach(X,Y) :- edge(X,Y).\nreach(X,Z) :- reach(X,Y), edge(Y,Z).\n";
  auto semi = model_of(source, "reach", 2, Strategy::kSemiNaive);
  EXPECT_EQ(semi.size(), 200u * 201u / 2);
}

TEST(Eval, SemiNaiveDoesLessWorkThanNaive) {
  std::string source;
  for (int i = 0; i < 60; ++i) {
    source += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  source += "reach(X,Y) :- edge(X,Y).\nreach(X,Z) :- reach(X,Y), edge(Y,Z).\n";
  auto program = parse_program(source).take();

  Database db_semi;
  EvalStats semi =
      Evaluator::create(program, Strategy::kSemiNaive).take().run(db_semi);
  Database db_naive;
  EvalStats naive =
      Evaluator::create(program, Strategy::kNaive).take().run(db_naive);
  EXPECT_EQ(db_semi.total_tuples(), db_naive.total_tuples());
  EXPECT_EQ(semi.derived_tuples, naive.derived_tuples);
}

}  // namespace
}  // namespace anchor::datalog

namespace anchor::datalog {
namespace {

TEST(EvalLimits_, RunawayArithmeticRecursionIsTruncated) {
  // Pure Datalog terminates; arithmetic breaks that. The guard must stop
  // `p(Y) :- p(X), Y = X + 1.` and mark the run truncated.
  auto program = parse_program("p(0).\np(Y) :- p(X), Y = X + 1.").take();
  EvalLimits limits;
  limits.max_derived_tuples = 5000;
  limits.max_iterations = 10000;
  auto evaluator = Evaluator::create(program, Strategy::kSemiNaive, limits).take();
  Database db;
  EvalStats stats = evaluator.run(db);
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(db.total_tuples(), 6000u);  // stopped near the bound
}

TEST(EvalLimits_, IterationBoundStopsNaiveToo) {
  auto program = parse_program("p(0).\np(Y) :- p(X), Y = X + 1, X < 100000.").take();
  EvalLimits limits;
  limits.max_iterations = 50;
  limits.max_derived_tuples = 1000000;
  auto evaluator = Evaluator::create(program, Strategy::kNaive, limits).take();
  Database db;
  EvalStats stats = evaluator.run(db);
  EXPECT_TRUE(stats.truncated);
}

TEST(EvalLimits_, WellBehavedProgramsAreNotTruncated) {
  auto program = parse_program(R"(
edge(1,2). edge(2,3). edge(3,1).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
)").take();
  auto evaluator = Evaluator::create(program).take();
  Database db;
  EvalStats stats = evaluator.run(db);
  EXPECT_FALSE(stats.truncated);
}

TEST(EvalLimits_, TupleBoundAbortsInFlightJoinPromptly) {
  // Regression: the guard used to only *flag* truncation while the
  // in-flight rule application kept joining, so one cross-product rule
  // could blow arbitrarily far past max_derived_tuples. Derivation must
  // now stop within one tuple of the bound.
  std::string source;
  for (int i = 0; i < 100; ++i) {
    source += "a(" + std::to_string(i) + "). b(" + std::to_string(i) + ").\n";
  }
  source += "r(X, Y) :- a(X), b(Y).\n";  // 10,000-tuple cross product
  auto program = parse_program(source).take();
  EvalLimits limits;
  limits.max_derived_tuples = 210;  // 200 facts + 10 derived tuples
  auto evaluator =
      Evaluator::create(program, Strategy::kSemiNaive, limits).take();
  Database db;
  EvalStats stats = evaluator.run(db);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.derived_tuples, limits.max_derived_tuples + 1);
}

}  // namespace
}  // namespace anchor::datalog

// --- Fail-closed emission and type-error accounting --------------------------

namespace anchor::datalog {
namespace {

TEST(FailClosed, UnboundHeadTermErrorsInsteadOfEmitting) {
  // The parser can't produce this (it renames `_` to a fresh variable,
  // which safety then rejects in heads), but a hand-built AST can: a
  // wildcard head term slips past check_safety, and the evaluator used to
  // substitute Value() — integer 0 — and emit the corrupt tuple.
  Program program;
  Clause fact;
  fact.head.predicate = "e";
  fact.head.args = {Term::constant_of(Value(std::int64_t{1}))};
  program.clauses.push_back(fact);

  Clause rule;
  rule.head.predicate = "r";
  rule.head.args = {Term::var("X"), Term::wildcard()};
  Literal body;
  body.kind = Literal::Kind::kAtom;
  body.atom.predicate = "e";
  body.atom.args = {Term::var("X")};
  rule.body = {body};
  program.clauses.push_back(rule);

  auto evaluator = Evaluator::create(program).take();
  Database db;
  EvalStats stats = evaluator.run(db);
  EXPECT_TRUE(stats.errored);
  EXPECT_EQ(stats.unbound_head_terms, 1u);
  const Relation* rel = db.find("r", 2);
  EXPECT_TRUE(rel == nullptr || rel->empty());  // nothing corrupt emitted
}

TEST(FailClosed, CleanProgramsDoNotError) {
  auto program = parse_program("e(1). r(X) :- e(X).").take();
  auto evaluator = Evaluator::create(program).take();
  Database db;
  EvalStats stats = evaluator.run(db);
  EXPECT_FALSE(stats.errored);
  EXPECT_EQ(stats.unbound_head_terms, 0u);
}

EvalStats stats_of(const std::string& source,
                   Strategy strategy = Strategy::kSemiNaive) {
  auto program = parse_program(source).take();
  auto evaluator = Evaluator::create(program, strategy).take();
  Database db;
  return evaluator.run(db);
}

TEST(TypeErrors, MixedOrderedComparisonIsCounted) {
  EvalStats stats =
      stats_of("a(1). b(\"1\"). r(X) :- a(X), b(Y), X < Y.");
  EXPECT_EQ(stats.type_errors, 1u);
}

TEST(TypeErrors, MixedEqualityIsNotAnError) {
  // Equality semantics on mixed types are well-defined (always unequal);
  // only ordered comparisons are diagnosable mistakes.
  EXPECT_EQ(stats_of("a(1). b(\"1\"). r(X) :- a(X), b(Y), X = Y.")
                .type_errors,
            0u);
  EXPECT_EQ(stats_of("a(1). b(\"1\"). r(X) :- a(X), b(Y), X != Y.")
                .type_errors,
            0u);
}

TEST(TypeErrors, ArithmeticOnStringIsCounted) {
  EvalStats stats = stats_of("s(apple). r(Y) :- s(X), Y = X + 1.");
  EXPECT_EQ(stats.type_errors, 1u);
}

}  // namespace
}  // namespace anchor::datalog
