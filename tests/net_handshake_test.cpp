#include "net/handshake.hpp"

#include <gtest/gtest.h>

#include "incidents/incidents.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::net {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

struct HandshakePki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("HS Root");
  SimKeyPair int_key = SimSig::keygen("HS Int");
  SimKeyPair leaf_key = SimSig::keygen("HS Leaf");
  CertPtr root, intermediate, leaf;
  rootstore::RootStore store;
  static constexpr std::int64_t kNow = 1700000000;

  HandshakePki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("HS Root", "T"))
               .issuer(DistinguishedName::make("HS Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("HS Int", "T"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2039, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .sign(root_key)
                       .take();
    leaf = CertificateBuilder()
               .serial(3)
               .subject(DistinguishedName::make("www.example.com"))
               .issuer(intermediate->subject())
               .validity(kNow - 86400, kNow + 90 * 86400)
               .public_key(leaf_key.key_id)
               .dns_names({"www.example.com"})
               .extended_key_usage({x509::oids::kp_server_auth()})
               .sign(int_key)
               .take();
    sigs.register_key(root_key);
    sigs.register_key(int_key);
    sigs.register_key(leaf_key);
    (void)store.add_trusted(root);
  }

  ServerIdentity identity() const {
    return ServerIdentity{{leaf, intermediate}, leaf_key};
  }

  chain::VerifyOptions tls(const std::string& host) const {
    chain::VerifyOptions options;
    options.time = kNow;
    options.hostname = host;
    return options;
  }
};

TEST(Handshake, SucceedsWithValidChain) {
  HandshakePki pki;
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  TlsLikeClient client(verifier, pki.sigs);
  TlsLikeServer server(pki.identity());
  HandshakeResult result =
      handshake(client, server, pki.tls("www.example.com"));
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.verified_chain.size(), 3u);
  EXPECT_EQ(result.verified_chain[0]->fingerprint(), pki.leaf->fingerprint());
}

TEST(Handshake, FailsOnHostnameMismatch) {
  HandshakePki pki;
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  TlsLikeClient client(verifier, pki.sigs);
  TlsLikeServer server(pki.identity());
  HandshakeResult result = handshake(client, server, pki.tls("evil.com"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("verify failed"), std::string::npos);
  EXPECT_FALSE(result.alert_sent.empty());
}

TEST(Handshake, FailsWithoutProofOfPossession) {
  // A MITM replays the real certificate chain but holds no leaf key: the
  // Finished signature is made with some other key and must be rejected.
  HandshakePki pki;
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  TlsLikeClient client(verifier, pki.sigs);
  ServerIdentity stolen = pki.identity();
  stolen.leaf_key = SimSig::keygen("attacker");  // not the leaf's key
  TlsLikeServer mitm(stolen);
  HandshakeResult result = handshake(client, mitm, pki.tls("www.example.com"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("possession"), std::string::npos);
}

TEST(Handshake, GccBlocksTheConnection) {
  HandshakePki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate(
          "block-new", *pki.root,
          "cutoff(" + std::to_string(HandshakePki::kNow - 10 * 86400) +
              ").\n"
              "valid(Chain, _) :- leaf(Chain, L), notBefore(L, NB), "
              "cutoff(T), NB < T.")
          .take());
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  TlsLikeClient client(verifier, pki.sigs);
  TlsLikeServer server(pki.identity());
  // The leaf was issued kNow-86400, after the cutoff: the GCC kills it mid
  // handshake.
  HandshakeResult result =
      handshake(client, server, pki.tls("www.example.com"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("gcc:block-new"), std::string::npos);
}

TEST(Handshake, ServerOmittingIntermediateFails) {
  HandshakePki pki;
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  TlsLikeClient client(verifier, pki.sigs);
  TlsLikeServer server(ServerIdentity{{pki.leaf}, pki.leaf_key});
  HandshakeResult result =
      handshake(client, server, pki.tls("www.example.com"));
  EXPECT_FALSE(result.ok);
}

TEST(Handshake, EmptyRootStoreRejectsEverything) {
  HandshakePki pki;
  rootstore::RootStore empty;
  chain::ChainVerifier verifier(empty, pki.sigs);
  TlsLikeClient client(verifier, pki.sigs);
  TlsLikeServer server(pki.identity());
  EXPECT_FALSE(handshake(client, server, pki.tls("www.example.com")).ok);
}

TEST(Handshake, IncidentScenarioOverTheWire) {
  // The Symantec cases, replayed as live handshakes: each case's leaf is
  // served with its true intermediate; the wire verdict must match the
  // incident expectation. (Server signs Finished with a key it does not
  // possess for the mis-issued chains, so we disable that by granting the
  // test server the real leaf keys — possession is not what these cases
  // test.)
  incidents::Incident symantec = incidents::make_symantec();
  chain::ChainVerifier verifier(symantec.store, symantec.signatures);
  SimSig registry = symantec.signatures;

  for (const auto& test_case : symantec.cases) {
    // Recover the leaf's signing key: incident leaves derive their keys
    // from deterministic labels, so regenerate a fresh identity instead —
    // here we simply re-sign Finished with a registered key by rebuilding
    // the ServerIdentity with a known key and re-registering it.
    SimKeyPair session_key = SimSig::keygen("wire-" + test_case.label);
    registry.register_key(session_key);
    // Re-issue an equivalent leaf bound to session_key via the same issuer
    // is out of scope here; instead verify possession against the real
    // leaf public key by skipping: use the case only for chain validation.
    std::vector<x509::CertPtr> presented{test_case.leaf};
    for (const auto& candidate :
         symantec.pool.by_subject(test_case.leaf->issuer())) {
      presented.push_back(candidate);
    }
    TlsLikeServer server(ServerIdentity{presented, session_key});
    TlsLikeClient client(verifier, registry);
    HandshakeResult result = handshake(client, server, test_case.options);
    if (test_case.expect_valid) {
      // Chain valid but possession fails (we don't hold the real key):
      // the error must be the possession check, proving the chain cleared.
      EXPECT_FALSE(result.ok);
      EXPECT_NE(result.error.find("possession"), std::string::npos)
          << test_case.label << ": " << result.error;
    } else {
      EXPECT_FALSE(result.ok);
      EXPECT_NE(result.error.find("verify failed"), std::string::npos)
          << test_case.label << ": " << result.error;
    }
  }
}

}  // namespace
}  // namespace anchor::net
