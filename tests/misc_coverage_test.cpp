// Cross-cutting coverage for paths the module-focused suites leave thin:
// S/MIME metadata cutoffs in the verifier, Datalog value rendering,
// multi-root GCC interactions, and store/GCC interplay around distrust.
#include <gtest/gtest.h>

#include "chain/verifier.hpp"
#include "datalog/value.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

TEST(DatalogValue, RenderingQuotesNonAtoms) {
  using datalog::Value;
  EXPECT_EQ(Value(std::int64_t{42}).to_string(), "42");
  EXPECT_EQ(Value(std::int64_t{-7}).to_string(), "-7");
  EXPECT_EQ(Value("atom_ok").to_string(), "atom_ok");
  EXPECT_EQ(Value("Upper").to_string(), "\"Upper\"");      // not atom-shaped
  EXPECT_EQ(Value("has space").to_string(), "\"has space\"");
  EXPECT_EQ(Value("S/MIME").to_string(), "\"S/MIME\"");
  EXPECT_EQ(Value("say \"hi\"").to_string(), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(Value("").to_string(), "\"\"");
}

struct SmimePki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("SM Root");
  SimKeyPair int_key = SimSig::keygen("SM Int");
  CertPtr root, intermediate;
  rootstore::RootStore store;
  static constexpr std::int64_t kNow = 1700000000;
  static constexpr std::int64_t kCutoff = kNow - 30 * 86400;

  SmimePki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("SM Root", "T"))
               .issuer(DistinguishedName::make("SM Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("SM Int", "T"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2039, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .sign(root_key)
                       .take();
    sigs.register_key(root_key);
    sigs.register_key(int_key);
    rootstore::RootMetadata metadata;
    metadata.smime_distrust_after = kCutoff;  // S/MIME-only cutoff
    (void)store.add_trusted(root, metadata);
  }

  CertPtr leaf(std::int64_t not_before) {
    SimKeyPair key = SimSig::keygen("smleaf" + std::to_string(not_before));
    return CertificateBuilder()
        .serial(5)
        .subject(DistinguishedName::make("mail.example.net"))
        .issuer(intermediate->subject())
        .validity(not_before, kNow + 90 * 86400)
        .public_key(key.key_id)
        .dns_names({"mail.example.net"})
        .extended_key_usage({x509::oids::kp_email_protection(),
                             x509::oids::kp_server_auth()})
        .sign(int_key)
        .take();
  }
};

TEST(VerifierMetadata, SmimeCutoffIsUsageSpecific) {
  SmimePki pki;
  chain::CertificatePool pool;
  pool.add(pki.intermediate);
  chain::ChainVerifier verifier(pki.store, pki.sigs);

  CertPtr new_leaf = pki.leaf(SmimePki::kCutoff + 86400);
  chain::VerifyOptions smime;
  smime.time = SmimePki::kNow;
  smime.usage = chain::Usage::kSmime;
  EXPECT_FALSE(verifier.verify(new_leaf, pool, smime).ok);

  // The same post-cutoff leaf is fine for TLS: the cutoff is per usage.
  chain::VerifyOptions tls;
  tls.time = SmimePki::kNow;
  tls.hostname = "mail.example.net";
  EXPECT_TRUE(verifier.verify(new_leaf, pool, tls).ok);

  // Pre-cutoff S/MIME still validates.
  CertPtr old_leaf = pki.leaf(SmimePki::kCutoff - 86400);
  EXPECT_TRUE(verifier.verify(old_leaf, pool, smime).ok);
}

TEST(VerifierMetadata, GccOnDistrustedRootNeverRuns) {
  // Distrust beats GCCs: once the root leaves the trusted set, its GCCs
  // are unreachable (no candidate path exists at all).
  SmimePki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate("allow-everything", *pki.root,
                                 "valid(Chain, _) :- leaf(Chain, L).")
          .take());
  pki.store.distrust(pki.root->fingerprint_hex(), "incident");
  chain::CertificatePool pool;
  pool.add(pki.intermediate);
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  chain::VerifyOptions tls;
  tls.time = SmimePki::kNow;
  tls.hostname = "mail.example.net";
  chain::VerifyResult result =
      verifier.verify(pki.leaf(SmimePki::kNow - 86400), pool, tls);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.gcc_verdict.gccs_evaluated, 0u);
}

TEST(VerifierMetadata, MultipleGccsOnOneRootAllRun) {
  SmimePki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate("c1", *pki.root,
                                 "valid(Chain, _) :- leaf(Chain, L).")
          .take());
  pki.store.attach_gcc(
      core::Gcc::for_certificate(
          "c2", *pki.root,
          "valid(Chain, _) :- leaf(Chain, L), \\+ev(L).")
          .take());
  chain::CertificatePool pool;
  pool.add(pki.intermediate);
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  chain::VerifyOptions tls;
  tls.time = SmimePki::kNow;
  tls.hostname = "mail.example.net";
  chain::VerifyResult result =
      verifier.verify(pki.leaf(SmimePki::kNow - 86400), pool, tls);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.gcc_verdict.gccs_evaluated, 2u);
}

TEST(DatalogEngine, ArityOverloadingKeepsRelationsSeparate) {
  datalog::Engine engine;
  ASSERT_TRUE(engine.load(R"(
p(1).
p(1, 2).
unary(X) :- p(X).
binary(X, Y) :- p(X, Y).
)").ok());
  EXPECT_EQ(engine.query("unary(X)?").take().bindings.size(), 1u);
  EXPECT_EQ(engine.query("binary(X, Y)?").take().bindings.size(), 1u);
  EXPECT_FALSE(engine.query("p(2)?").take().holds());
  EXPECT_TRUE(engine.query("p(1, 2)?").take().holds());
}

TEST(DatalogEngine, DuplicateClausesAreIdempotent) {
  datalog::Engine engine;
  ASSERT_TRUE(engine.load("e(1). e(1). r(X) :- e(X). r(X) :- e(X).").ok());
  EXPECT_EQ(engine.query("r(X)?").take().bindings.size(), 1u);
}

TEST(CertificateBuilderEdge, LargeSerialRoundTrips) {
  SimKeyPair key = SimSig::keygen("big-serial");
  auto cert = CertificateBuilder()
                  .serial(0xffffffffffffffffULL)
                  .subject(DistinguishedName::make("X"))
                  .issuer(DistinguishedName::make("Y"))
                  .validity(0, 1000)
                  .public_key(key.key_id)
                  .sign(key);
  ASSERT_TRUE(cert.ok()) << cert.error();
  // Encoded as unsigned: 8 magnitude bytes survive the round trip.
  EXPECT_EQ(cert.value()->serial(), Bytes(8, 0xff));
}

TEST(RootStoreEdge, GccsSurviveDistrustAndForget) {
  // GCC attachments are independent of membership: a store keeps (and
  // serializes) constraints for roots it no longer trusts, which matters
  // when the root is later re-added by a delta.
  SmimePki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate("sticky", *pki.root,
                                 "valid(Chain, _) :- leaf(Chain, L).")
          .take());
  pki.store.distrust(pki.root->fingerprint_hex(), "x");
  EXPECT_EQ(pki.store.gccs().total(), 1u);
  auto round = rootstore::RootStore::deserialize(pki.store.serialize());
  ASSERT_TRUE(round.ok()) << round.error();
  EXPECT_EQ(round.value().gccs().total(), 1u);
  EXPECT_EQ(round.value().state_of(pki.root->fingerprint_hex()),
            rootstore::TrustState::kDistrusted);
}

}  // namespace
}  // namespace anchor

namespace anchor {
namespace {

TEST(VerifierPaths, ServerSuppliedRootInPoolStillTerminatesAtAnchor) {
  // Servers often send the root along with the chain; the builder must
  // still terminate at the trust anchor (option 2 of the search) instead
  // of looping or failing.
  SmimePki pki;
  chain::CertificatePool pool;
  pool.add(pki.intermediate);
  pool.add(pki.root);  // the anchor itself rides along
  chain::ChainVerifier verifier(pki.store, pki.sigs);
  chain::VerifyOptions tls;
  tls.time = SmimePki::kNow;
  tls.hostname = "mail.example.net";
  chain::VerifyResult result =
      verifier.verify(pki.leaf(SmimePki::kNow - 86400), pool, tls);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.chain.back()->fingerprint(), pki.root->fingerprint());
}

}  // namespace
}  // namespace anchor

#include "incidents/incidents.hpp"

namespace anchor::datalog {
namespace {

TEST(ProgramPrinting, EveryShippedGccSourceRoundTripsThroughToString) {
  // For every GCC in every incident scenario: parse(source).to_string()
  // reparses to an identical AST — the pretty printer is a faithful
  // serialization of the dialect.
  for (const incidents::Incident& incident : incidents::all_incidents()) {
    for (const auto& root : incident.store.gccs().roots_sorted()) {
      for (const core::Gcc& gcc : incident.store.gccs().for_root(root)) {
        auto original = parse_program(gcc.source());
        ASSERT_TRUE(original.ok()) << incident.name << "/" << gcc.name();
        auto reparsed = parse_program(original.value().to_string());
        ASSERT_TRUE(reparsed.ok())
            << incident.name << "/" << gcc.name() << ": "
            << original.value().to_string();
        EXPECT_EQ(original.value().clauses, reparsed.value().clauses)
            << incident.name << "/" << gcc.name();
      }
    }
  }
}

}  // namespace
}  // namespace anchor::datalog
