#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace anchor {
namespace {

TEST(Bytes, HexEncodeKnownValues) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(to_hex(Bytes{0x00}), "00");
  EXPECT_EQ(to_hex(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(to_hex(Bytes{0x0f, 0xf0}), "0ff0");
}

TEST(Bytes, HexDecodeKnownValues) {
  Bytes out;
  ASSERT_TRUE(from_hex("deadbeef", out));
  EXPECT_EQ(out, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  ASSERT_TRUE(from_hex("", out));
  EXPECT_TRUE(out.empty());
}

TEST(Bytes, HexDecodeAcceptsUppercase) {
  Bytes out;
  ASSERT_TRUE(from_hex("DEADBEEF", out));
  EXPECT_EQ(out, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  Bytes out{0x42};
  EXPECT_FALSE(from_hex("abc", out));
  EXPECT_EQ(out, (Bytes{0x42}));  // untouched on failure
}

TEST(Bytes, HexDecodeRejectsNonHex) {
  Bytes out;
  EXPECT_FALSE(from_hex("zz", out));
  EXPECT_FALSE(from_hex("0g", out));
  EXPECT_FALSE(from_hex("  ", out));
}

TEST(Bytes, HexRoundTrip) {
  for (int len = 0; len < 64; ++len) {
    Bytes data;
    for (int i = 0; i < len; ++i) {
      data.push_back(static_cast<std::uint8_t>((i * 37 + len) & 0xff));
    }
    Bytes back;
    ASSERT_TRUE(from_hex(to_hex(data), back));
    EXPECT_EQ(data, back);
  }
}

TEST(Bytes, CtEqualBasics) {
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
}

TEST(Bytes, AppendAndStringConversion) {
  Bytes buffer = to_bytes("hello");
  append(buffer, to_bytes(" world"));
  EXPECT_EQ(to_string(buffer), "hello world");
}

}  // namespace
}  // namespace anchor
