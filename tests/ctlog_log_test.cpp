#include "ctlog/log.hpp"

#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "preemptive/synthesis.hpp"

namespace anchor::ctlog {
namespace {

corpus::Corpus small_corpus() {
  corpus::CorpusConfig config;
  config.num_roots = 8;
  config.num_intermediates = 16;
  config.roots_with_path_len = 1;
  config.intermediates_with_path_len = 12;
  config.intermediates_with_name_constraints = 2;
  config.roots_with_constrained_chain = 1;
  config.leaves_per_intermediate_mean = 6.0;
  return corpus::Corpus::generate(config);
}

TEST(CtLog, SubmitAndSignedTreeHead) {
  SimSig registry;
  CtLog log("argon-sim", registry);
  corpus::Corpus corpus = small_corpus();
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(log.submit(corpus.leaves()[i].cert, 1000 + (std::int64_t)i), i);
  }
  SignedTreeHead head = log.sth();
  EXPECT_EQ(head.tree_size, 10u);
  EXPECT_TRUE(CtLog::verify_sth(head, BytesView(log.key_id()), registry));

  // Tampered STH fails.
  SignedTreeHead forged = head;
  forged.tree_size = 11;
  EXPECT_FALSE(CtLog::verify_sth(forged, BytesView(log.key_id()), registry));
}

TEST(CtLog, SthFromUnknownKeyFails) {
  SimSig registry;
  CtLog log("argon-sim", registry);
  SimSig other_registry;
  corpus::Corpus corpus = small_corpus();
  log.submit(corpus.leaves()[0].cert, 1);
  EXPECT_FALSE(
      CtLog::verify_sth(log.sth(), BytesView(log.key_id()), other_registry));
}

TEST(LogMonitor, ConsumesEntriesIncrementally) {
  SimSig registry;
  CtLog log("argon-sim", registry);
  corpus::Corpus corpus = small_corpus();

  LogMonitor monitor(log, registry);
  for (std::size_t i = 0; i < 20; ++i) {
    log.submit(corpus.leaves()[i].cert, (std::int64_t)i);
  }
  auto first = monitor.poll();
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first.value(), 20u);

  for (std::size_t i = 20; i < 35; ++i) {
    log.submit(corpus.leaves()[i].cert, (std::int64_t)i);
  }
  auto second = monitor.poll();
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second.value(), 15u);
  EXPECT_EQ(monitor.entries_seen(), 35u);

  auto idle = monitor.poll();
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle.value(), 0u);
}

TEST(LogMonitor, ScopesMatchCorpusDerivedAnalysis) {
  // Monitoring the log must reconstruct the same per-issuer scopes as the
  // corpus-index analysis (§5.2 study via CT instead of ground truth).
  SimSig registry;
  CtLog log("argon-sim", registry);
  corpus::Corpus corpus = small_corpus();
  for (const auto& record : corpus.leaves()) {
    log.submit(record.cert, 0);
  }
  LogMonitor monitor(log, registry);
  ASSERT_TRUE(monitor.poll().ok());

  auto ground_truth = preemptive::analyze_intermediates(corpus);
  for (std::size_t i = 0; i < corpus.intermediates().size(); ++i) {
    const std::string issuer_cn =
        corpus.intermediates()[i].cert->subject().common_name();
    auto it = monitor.scopes().find(issuer_cn);
    if (ground_truth[i].empty()) {
      EXPECT_EQ(it, monitor.scopes().end());
      continue;
    }
    ASSERT_NE(it, monitor.scopes().end()) << issuer_cn;
    EXPECT_EQ(it->second.certificates_observed,
              ground_truth[i].certificates_observed);
    EXPECT_EQ(it->second.tlds, ground_truth[i].tlds);
    EXPECT_EQ(it->second.extended_key_usages,
              ground_truth[i].extended_key_usages);
    EXPECT_EQ(it->second.max_lifetime_seconds,
              ground_truth[i].max_lifetime_seconds);
  }
}

TEST(LogMonitor, SynthesisFromMonitoredScopesWorksEndToEnd) {
  // CT-driven pre-emptive GCC: monitor the log, synthesize for a root's
  // busiest subordinate, enforce.
  SimSig registry;
  CtLog log("argon-sim", registry);
  corpus::Corpus corpus = small_corpus();
  for (const auto& record : corpus.leaves()) log.submit(record.cert, 0);
  LogMonitor monitor(log, registry);
  ASSERT_TRUE(monitor.poll().ok());

  // Busiest issuer.
  const preemptive::ScopeOfIssuance* busiest = nullptr;
  std::string busiest_cn;
  for (const auto& [cn, scope] : monitor.scopes()) {
    if (busiest == nullptr ||
        scope.certificates_observed > busiest->certificates_observed) {
      busiest = &scope;
      busiest_cn = cn;
    }
  }
  ASSERT_NE(busiest, nullptr);
  // Find that intermediate and its root in the corpus.
  for (std::size_t i = 0; i < corpus.intermediates().size(); ++i) {
    if (corpus.intermediates()[i].cert->subject().common_name() != busiest_cn) {
      continue;
    }
    const auto& root = corpus.roots()[static_cast<std::size_t>(
        corpus.intermediates()[i].parent_root)];
    auto gcc = preemptive::synthesize("ct-derived", *root.cert, *busiest);
    ASSERT_TRUE(gcc.ok()) << gcc.error();
    EXPECT_EQ(gcc.value().root_hash_hex(), root.cert->fingerprint_hex());
    return;
  }
  FAIL() << "busiest issuer not found in corpus";
}

}  // namespace
}  // namespace anchor::ctlog
