// The graph-verifier property suite (ISSUE 10 satellite): seeded random
// cross-sign DAGs (corpus/crosssign.hpp) drive three pinned properties —
// (a) the verifier's structural path enumeration finds exactly the
//     root-terminating paths an exhaustive reference search over the raw
//     certificate list finds;
// (b) verdicts are invariant to pool insertion order (accept-if-any-path
//     cannot depend on which cross-sign edge is tried first);
// (c) a StoreView-backed verifier and a heap-backed verifier produce
//     byte-identical verdicts (serialized-result comparison).
// Plus the executable bane case (incidents::make_cross_sign) and the
// path-budget / accept-if-any semantics on a hand-built cross-sign.
#include "chain/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "chain/verifier.hpp"
#include "corpus/crosssign.hpp"
#include "incidents/incidents.hpp"
#include "rootstore/snapshot/view.hpp"
#include "rootstore/snapshot/writer.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::chain {
namespace {

using corpus::CrossSignConfig;
using corpus::CrossSignDag;
using corpus::make_cross_sign_dag;
using x509::CertPtr;

VerifyOptions tls_options(const CrossSignDag& dag, std::size_t leaf_index) {
  VerifyOptions options;
  options.time = CrossSignConfig{}.validation_time();
  options.hostname = dag.leaf_domains[leaf_index];
  return options;
}

// Everything observable about a verdict, rendered deterministically — the
// "byte-identical" comparison the StoreReader contract pins.
std::string render(const VerifyResult& result) {
  std::string out = result.ok ? "ok" : "fail";
  out += "|kind=";
  out += to_string(result.kind);
  out += "|error=";
  out += result.error;
  out += "|chain=";
  for (const auto& cert : result.chain) {
    out += cert->fingerprint_hex();
    out += ",";
  }
  out += "|explored=";
  out += std::to_string(result.paths_explored);
  out += "|truncated=";
  out += result.truncated ? "1" : "0";
  for (const auto& rejected : result.rejected_paths) {
    out += "|rejected:";
    out += to_string(rejected.kind);
    out += ":";
    out += rejected.detail;
    out += ":";
    for (const auto& fp : rejected.fingerprints) {
      out += fp;
      out += ",";
    }
  }
  return out;
}

// Exhaustive reference path search, written against the *flat* certificate
// list (no graph nodes, no subject index): every simple leaf-first
// sequence over `universe` whose links match subject/issuer DNs, whose
// length is at most `max_depth`, and whose final certificate is a trusted
// root in `store`. This is what ChainVerifier::enumerate_paths must agree
// with exactly.
std::set<std::vector<std::string>> reference_paths(
    const CertPtr& leaf, const std::vector<CertPtr>& universe,
    const rootstore::StoreReader& store, std::size_t max_depth) {
  std::set<std::vector<std::string>> out;
  std::vector<CertPtr> path{leaf};
  std::set<std::string> visited{leaf->fingerprint_hex()};
  std::function<void()> dfs = [&]() {
    // By value: deeper push_back calls may reallocate `path`.
    const CertPtr current = path.back();
    if (path.size() >= 2 &&
        store.find(current->fingerprint_hex()) != nullptr) {
      std::vector<std::string> fps;
      fps.reserve(path.size());
      for (const auto& cert : path) fps.push_back(cert->fingerprint_hex());
      out.insert(std::move(fps));
    }
    if (path.size() >= max_depth) return;
    for (const auto& candidate : universe) {
      if (!(candidate->subject() == current->issuer())) continue;
      const std::string fp = candidate->fingerprint_hex();
      if (visited.contains(fp)) continue;
      visited.insert(fp);
      path.push_back(candidate);
      dfs();
      path.pop_back();
      visited.erase(fp);
    }
  };
  dfs();
  return out;
}

std::vector<CrossSignConfig> property_configs() {
  std::vector<CrossSignConfig> configs;
  for (std::uint64_t seed : {1, 2, 3, 7, 11}) {
    CrossSignConfig config;
    config.seed = seed;
    config.num_roots = 3 + static_cast<int>(seed % 3);
    config.distrusted_roots = 1;
    config.num_cas = 4 + static_cast<int>(seed % 3);
    config.extra_cross_signs = 3 + static_cast<int>(seed % 4);
    config.num_leaves = 5;
    configs.push_back(config);
  }
  return configs;
}

TEST(CertificateGraph, CrossSignsCollapseIntoOneLogicalNode) {
  CrossSignConfig config;
  config.seed = 5;
  config.extra_cross_signs = 6;
  CrossSignDag dag = make_cross_sign_dag(config);

  // One node per logical CA (roots + subordinates), regardless of how many
  // cross-sign certificates each accumulated.
  EXPECT_EQ(dag.pool.node_count(),
            static_cast<std::size_t>(config.num_roots + config.num_cas));
  EXPECT_EQ(dag.pool.size(), dag.ca_certs.size());
  EXPECT_GT(dag.pool.size(), dag.pool.node_count())
      << "config should have produced at least one cross-sign";

  // A distrusted root and its cross-sign are members of the same node, and
  // that node reports as poisoned.
  const CertPtr& distrusted_root = dag.root_certs.back();
  ASSERT_EQ(dag.store.state_of(distrusted_root->fingerprint_hex()),
            rootstore::TrustState::kDistrusted);
  const GraphNode* node = dag.pool.node_of(*distrusted_root);
  ASSERT_NE(node, nullptr);
  EXPECT_GE(node->certs.size(), 2u)
      << "the generator guarantees a bane cross-sign for distrusted roots";
  for (const auto& member : node->certs) {
    EXPECT_EQ(dag.pool.node_of(*member), node);
  }
  const CertPtr* poisoned = distrusted_member(*node, dag.store);
  ASSERT_NE(poisoned, nullptr);
  EXPECT_EQ((*poisoned)->fingerprint_hex(),
            distrusted_root->fingerprint_hex());
}

TEST(GraphProperty, EnumerationMatchesExhaustiveReference) {
  std::size_t multi_path_leaves = 0;
  for (const CrossSignConfig& config : property_configs()) {
    CrossSignDag dag = make_cross_sign_dag(config);
    ChainVerifier verifier(dag.store, dag.signatures);
    for (std::size_t i = 0; i < dag.leaves.size(); ++i) {
      auto enumerated =
          verifier.enumerate_paths(dag.leaves[i], dag.pool, 8, 1024);
      ASSERT_LT(enumerated.size(), 1024u) << "budget must not truncate";
      std::set<std::vector<std::string>> got(enumerated.begin(),
                                             enumerated.end());
      EXPECT_EQ(got.size(), enumerated.size())
          << "enumerate_paths must not emit duplicates";
      auto expected = reference_paths(dag.leaves[i], dag.ca_certs, dag.store, 8);
      EXPECT_EQ(got, expected)
          << "seed " << config.seed << " leaf " << dag.leaf_domains[i];
      if (expected.size() > 1) ++multi_path_leaves;
    }
  }
  // The property is vacuous on trees; the corpus must exercise real
  // cross-sign fan-out somewhere.
  EXPECT_GT(multi_path_leaves, 0u);
}

TEST(GraphProperty, VerdictInvariantToPoolInsertionOrder) {
  for (const CrossSignConfig& config : property_configs()) {
    CrossSignDag dag = make_cross_sign_dag(config);
    // Raise the budget far above anything the DAG can produce so verdicts
    // reflect the full path set in every ordering.
    for (std::size_t i = 0; i < dag.leaves.size(); ++i) {
      VerifyOptions options = tls_options(dag, i);
      options.max_paths = 10000;
      const VerifyResult baseline =
          ChainVerifier(dag.store, dag.signatures)
              .verify(dag.leaves[i], dag.pool, options);
      ASSERT_FALSE(baseline.truncated);

      std::vector<CertPtr> certs = dag.ca_certs;
      for (int permutation = 0; permutation < 4; ++permutation) {
        if (permutation == 3) {
          std::reverse(certs.begin(), certs.end());
        } else {
          std::rotate(certs.begin(), certs.begin() + permutation + 1,
                      certs.end());
        }
        CertificatePool reordered;
        reordered.add_all(certs);
        const VerifyResult got = ChainVerifier(dag.store, dag.signatures)
                                     .verify(dag.leaves[i], reordered, options);
        EXPECT_EQ(got.ok, baseline.ok)
            << "seed " << config.seed << " leaf " << dag.leaf_domains[i]
            << " permutation " << permutation;
        EXPECT_FALSE(got.truncated);
      }
    }
  }
}

TEST(GraphProperty, ViewBackedAndHeapBackedVerdictsAreByteIdentical) {
  for (const CrossSignConfig& config : property_configs()) {
    CrossSignDag dag = make_cross_sign_dag(config);
    Bytes image = rootstore::snapshot::write_snapshot(dag.store);
    auto opened = rootstore::snapshot::StoreView::from_bytes(std::move(image));
    ASSERT_TRUE(opened.ok()) << "seed " << config.seed;

    ChainVerifier heap_verifier(dag.store, dag.signatures);
    ChainVerifier view_verifier(*opened.view, dag.signatures);
    for (std::size_t i = 0; i < dag.leaves.size(); ++i) {
      const VerifyOptions options = tls_options(dag, i);
      EXPECT_EQ(render(heap_verifier.verify(dag.leaves[i], dag.pool, options)),
                render(view_verifier.verify(dag.leaves[i], dag.pool, options)))
          << "seed " << config.seed << " leaf " << dag.leaf_domains[i];
    }
  }
}

TEST(GraphDifferential, NonCrossSignedCorpusUnchangedByGraphSemantics) {
  // A pure tree (no cross-signs, nothing distrusted): the graph walk and
  // the pre-graph tree walk must agree on every observable byte — the
  // redesign's no-regression pin for the common case.
  CrossSignConfig config;
  config.seed = 21;
  config.num_roots = 3;
  config.distrusted_roots = 0;
  config.num_cas = 5;
  config.extra_cross_signs = 0;
  config.num_leaves = 6;
  CrossSignDag dag = make_cross_sign_dag(config);
  ASSERT_EQ(dag.pool.size(), dag.pool.node_count()) << "tree, by construction";

  ChainVerifier verifier(dag.store, dag.signatures);
  for (std::size_t i = 0; i < dag.leaves.size(); ++i) {
    VerifyOptions graph_options = tls_options(dag, i);
    graph_options.graph_distrust = true;
    VerifyOptions tree_options = tls_options(dag, i);
    tree_options.graph_distrust = false;
    const VerifyResult with_graph =
        verifier.verify(dag.leaves[i], dag.pool, graph_options);
    const VerifyResult without_graph =
        verifier.verify(dag.leaves[i], dag.pool, tree_options);
    EXPECT_TRUE(with_graph.ok) << dag.leaf_domains[i];
    EXPECT_EQ(render(with_graph), render(without_graph)) << dag.leaf_domains[i];
  }
}

TEST(GraphBaneCase, ResurrectionRejectedByGraphAcceptedByTreeWalk) {
  incidents::Incident incident = incidents::make_cross_sign();
  ChainVerifier verifier(incident.store, incident.signatures);
  bool saw_resurrection = false;
  for (const incidents::IncidentCase& tc : incident.cases) {
    VerifyOptions graph_options = tc.options;
    graph_options.graph_distrust = true;
    VerifyOptions tree_options = tc.options;
    tree_options.graph_distrust = false;
    const VerifyResult graph_verdict =
        verifier.verify(tc.leaf, incident.pool, graph_options);
    const VerifyResult tree_verdict =
        verifier.verify(tc.leaf, incident.pool, tree_options);

    EXPECT_EQ(graph_verdict.ok, tc.expect_valid) << tc.label;
    if (tc.expect_valid) {
      EXPECT_TRUE(tree_verdict.ok) << tc.label;
      continue;
    }
    saw_resurrection = true;
    // The disparity: the tree walk silently accepts the resurrected path.
    EXPECT_TRUE(tree_verdict.ok) << tc.label;
    // The graph rejection is structural, not a diagnostic substring: the
    // verdict kind is kDistrusted and a recorded rejected path carries it.
    EXPECT_EQ(graph_verdict.kind, ErrorKind::kDistrusted) << tc.label;
    bool recorded = false;
    for (const RejectedPath& rejected : graph_verdict.rejected_paths) {
      if (rejected.kind != ErrorKind::kDistrusted) continue;
      recorded = true;
      EXPECT_FALSE(rejected.fingerprints.empty());
      EXPECT_EQ(rejected.fingerprints.size(), rejected.subjects.size());
      // The legacy rendering shim still produces the human line.
      EXPECT_NE(to_string(rejected).find(" | "), std::string::npos);
    }
    EXPECT_TRUE(recorded) << tc.label;
  }
  EXPECT_TRUE(saw_resurrection);
}

// Hand-built two-edge cross-sign: CA X holds certificates from roots T1
// (whose metadata cuts off TLS trust) and T2 (clean). Pins the
// accept-if-any-path semantics, the structural RejectedPath record for the
// failed candidate, and the max_paths budget surfacing as `truncated`.
TEST(GraphSearch, AcceptIfAnyPathAndBudgetTruncation) {
  constexpr std::int64_t kNow = 1700000000;
  SimSig signatures;
  SimKeyPair t1_key = SimSig::keygen("Budget Root One");
  SimKeyPair t2_key = SimSig::keygen("Budget Root Two");
  SimKeyPair ca_key = SimSig::keygen("Budget CA");
  auto root_cert = [&](const std::string& name, const SimKeyPair& key) {
    return x509::CertificateBuilder()
        .serial(1)
        .subject(x509::DistinguishedName::make(name, "T"))
        .issuer(x509::DistinguishedName::make(name, "T"))
        .validity(0, unix_date(2040, 1, 1))
        .public_key(key.key_id)
        .ca(std::nullopt)
        .sign(key)
        .take();
  };
  CertPtr t1 = root_cert("Budget Root One", t1_key);
  CertPtr t2 = root_cert("Budget Root Two", t2_key);
  auto cross = [&](const CertPtr& issuer, const SimKeyPair& issuer_key,
                   std::uint64_t serial) {
    return x509::CertificateBuilder()
        .serial(serial)
        .subject(x509::DistinguishedName::make("Budget CA", "T"))
        .issuer(issuer->subject())
        .validity(0, unix_date(2039, 1, 1))
        .public_key(ca_key.key_id)
        .ca(std::nullopt)
        .sign(issuer_key)
        .take();
  };
  CertPtr via_t1 = cross(t1, t1_key, 2);
  CertPtr via_t2 = cross(t2, t2_key, 3);
  SimKeyPair leaf_key = SimSig::keygen("budget-leaf");
  CertPtr leaf = x509::CertificateBuilder()
                     .serial(4)
                     .subject(x509::DistinguishedName::make("pay.example.com"))
                     .issuer(via_t1->subject())
                     .validity(kNow - 86400, kNow + 86400)
                     .public_key(leaf_key.key_id)
                     .dns_names({"pay.example.com"})
                     .extended_key_usage({x509::oids::kp_server_auth()})
                     .sign(ca_key)
                     .take();
  signatures.register_key(t1_key);
  signatures.register_key(t2_key);
  signatures.register_key(ca_key);

  rootstore::RootStore store;
  rootstore::RootMetadata cutoff;
  cutoff.tls_distrust_after = 1;  // every modern leaf is past the cutoff
  (void)store.add_trusted(t1, cutoff);
  (void)store.add_trusted(t2);
  CertificatePool pool;
  pool.add(via_t1);
  pool.add(via_t2);

  VerifyOptions options;
  options.time = kNow;
  options.hostname = "pay.example.com";

  // Both certificates are edges of one logical CA node.
  EXPECT_EQ(pool.node_count(), 1u);
  ChainVerifier verifier(store, signatures);

  // Default budget: the T1 path is reached first, rejected at the root's
  // tls-distrust-after cutoff, recorded, and the search continues to the
  // accepting T2 path.
  VerifyResult accepted = verifier.verify(leaf, pool, options);
  ASSERT_TRUE(accepted.ok);
  EXPECT_EQ(accepted.kind, ErrorKind::kOk);
  ASSERT_EQ(accepted.chain.size(), 3u);
  EXPECT_EQ(accepted.chain.back()->fingerprint_hex(), t2->fingerprint_hex());
  EXPECT_EQ(accepted.paths_explored, 2u);
  EXPECT_FALSE(accepted.truncated);
  ASSERT_EQ(accepted.rejected_paths.size(), 1u);
  EXPECT_EQ(accepted.rejected_paths[0].kind, ErrorKind::kUsageViolation);
  EXPECT_EQ(accepted.rejected_paths[0].fingerprints.back(),
            t1->fingerprint_hex());

  // A budget of one candidate path stops the search after the rejected T1
  // path — and says so, instead of silently narrowing accept-if-any.
  options.max_paths = 1;
  VerifyResult truncated = verifier.verify(leaf, pool, options);
  EXPECT_FALSE(truncated.ok);
  EXPECT_TRUE(truncated.truncated);
  EXPECT_EQ(truncated.kind, ErrorKind::kUsageViolation);
  EXPECT_NE(truncated.error.find("path budget"), std::string::npos);
  EXPECT_EQ(truncated.paths_explored, 1u);
}

}  // namespace
}  // namespace anchor::chain
