#include "core/facts.hpp"

#include <gtest/gtest.h>

#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::core {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

struct TestPki {
  SimKeyPair root_key = SimSig::keygen("Facts Root");
  SimKeyPair int_key = SimSig::keygen("Facts Int");
  SimKeyPair leaf_key = SimSig::keygen("Facts Leaf");
  CertPtr root;
  CertPtr intermediate;
  CertPtr leaf;

  TestPki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Facts Root", "Org"))
               .issuer(DistinguishedName::make("Facts Root", "Org"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(2)
               .sign(root_key)
               .take();
    x509::NameConstraints nc;
    nc.permitted_dns = {"example.com"};
    nc.excluded_dns = {"internal.example.com"};
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("Facts Int", "Org"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2035, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .name_constraints(nc)
                       .sign(root_key)
                       .take();
    x509::KeyUsage ku;
    ku.set(x509::KeyUsageBit::kDigitalSignature);
    leaf = CertificateBuilder()
               .serial(3)
               .subject(DistinguishedName::make("www.example.com"))
               .issuer(intermediate->subject())
               .validity(unix_date(2023, 1, 1), unix_date(2023, 3, 1))
               .public_key(leaf_key.key_id)
               .key_usage(ku)
               .extended_key_usage({x509::oids::kp_server_auth()})
               .dns_names({"www.example.com", "*.api.example.com"})
               .ev()
               .sign(int_key)
               .take();
  }

  Chain chain() const { return Chain{leaf, intermediate, root}; }
};

bool has_fact(const FactSet& facts, const std::string& predicate,
              const datalog::Tuple& args) {
  for (const Fact& fact : facts.facts) {
    if (fact.predicate == predicate && fact.args == args) return true;
  }
  return false;
}

std::size_t count_facts(const FactSet& facts, const std::string& predicate) {
  std::size_t n = 0;
  for (const Fact& fact : facts.facts) {
    if (fact.predicate == predicate) ++n;
  }
  return n;
}

using datalog::Value;

TEST(Facts, CertificateScalarFields) {
  TestPki pki;
  FactSet facts;
  encode_certificate(*pki.leaf, facts);
  const std::string id = pki.leaf->fingerprint_hex();
  EXPECT_TRUE(has_fact(facts, "hash", {Value(id), Value(id)}));
  EXPECT_TRUE(has_fact(facts, "notBefore",
                       {Value(id), Value(unix_date(2023, 1, 1))}));
  EXPECT_TRUE(has_fact(facts, "notAfter",
                       {Value(id), Value(unix_date(2023, 3, 1))}));
  EXPECT_TRUE(has_fact(facts, "lifetime",
                       {Value(id), Value(std::int64_t{59 * 86400})}));
  EXPECT_TRUE(has_fact(facts, "subjectCN", {Value(id), Value("www.example.com")}));
  EXPECT_TRUE(has_fact(facts, "issuerCN", {Value(id), Value("Facts Int")}));
}

TEST(Facts, UsageAndEvFacts) {
  TestPki pki;
  FactSet facts;
  encode_certificate(*pki.leaf, facts);
  const std::string id = pki.leaf->fingerprint_hex();
  EXPECT_TRUE(has_fact(facts, "keyUsage", {Value(id), Value("digitalSignature")}));
  EXPECT_TRUE(has_fact(facts, "extendedKeyUsage",
                       {Value(id), Value("id-kp-serverAuth")}));
  // Both spellings of the EV fact (paper Listing 1 uses EV/1).
  EXPECT_TRUE(has_fact(facts, "ev", {Value(id)}));
  EXPECT_TRUE(has_fact(facts, "EV", {Value(id)}));
}

TEST(Facts, SanAndDerivedNameFacts) {
  TestPki pki;
  FactSet facts;
  encode_certificate(*pki.leaf, facts);
  const std::string id = pki.leaf->fingerprint_hex();
  EXPECT_TRUE(has_fact(facts, "san", {Value(id), Value("www.example.com")}));
  EXPECT_TRUE(has_fact(facts, "sanTLD", {Value(id), Value("com")}));
  // Every dot-suffix, wildcard label stripped.
  EXPECT_TRUE(has_fact(facts, "nameSuffix",
                       {Value(id), Value("www.example.com"),
                        Value("www.example.com")}));
  EXPECT_TRUE(has_fact(facts, "nameSuffix",
                       {Value(id), Value("www.example.com"), Value("example.com")}));
  EXPECT_TRUE(has_fact(facts, "nameSuffix",
                       {Value(id), Value("www.example.com"), Value("com")}));
  EXPECT_TRUE(has_fact(facts, "nameSuffix",
                       {Value(id), Value("*.api.example.com"),
                        Value("api.example.com")}));
}

TEST(Facts, CaFacts) {
  TestPki pki;
  FactSet facts;
  encode_certificate(*pki.root, facts);
  const std::string id = pki.root->fingerprint_hex();
  EXPECT_TRUE(has_fact(facts, "isCA", {Value(id)}));
  EXPECT_TRUE(has_fact(facts, "pathLen", {Value(id), Value(std::int64_t{2})}));
  EXPECT_TRUE(has_fact(facts, "selfSigned", {Value(id)}));
}

TEST(Facts, NameConstraintFacts) {
  TestPki pki;
  FactSet facts;
  encode_certificate(*pki.intermediate, facts);
  const std::string id = pki.intermediate->fingerprint_hex();
  EXPECT_TRUE(has_fact(facts, "permittedDNS", {Value(id), Value("example.com")}));
  EXPECT_TRUE(has_fact(facts, "excludedDNS",
                       {Value(id), Value("internal.example.com")}));
}

TEST(Facts, ChainStructure) {
  TestPki pki;
  FactSet facts;
  encode_chain(pki.chain(), "chainX", facts);
  const std::string leaf_id = pki.leaf->fingerprint_hex();
  const std::string int_id = pki.intermediate->fingerprint_hex();
  const std::string root_id = pki.root->fingerprint_hex();
  EXPECT_TRUE(has_fact(facts, "leaf", {Value("chainX"), Value(leaf_id)}));
  EXPECT_TRUE(has_fact(facts, "root", {Value("chainX"), Value(root_id)}));
  EXPECT_TRUE(has_fact(facts, "chainLength",
                       {Value("chainX"), Value(std::int64_t{3})}));
  EXPECT_TRUE(has_fact(facts, "certAt",
                       {Value("chainX"), Value(std::int64_t{0}), Value(leaf_id)}));
  EXPECT_TRUE(has_fact(facts, "certAt",
                       {Value("chainX"), Value(std::int64_t{2}), Value(root_id)}));
  // signs(Issuer, Subject) adjacency.
  EXPECT_TRUE(has_fact(facts, "signs", {Value(int_id), Value(leaf_id)}));
  EXPECT_TRUE(has_fact(facts, "signs", {Value(root_id), Value(int_id)}));
  EXPECT_EQ(count_facts(facts, "signs"), 2u);
}

TEST(Facts, EmptyChainProducesNothing) {
  FactSet facts;
  encode_chain({}, "empty", facts);
  EXPECT_EQ(facts.size(), 0u);
}

TEST(Facts, SingleCertChain) {
  TestPki pki;
  FactSet facts;
  encode_chain(Chain{pki.root}, "solo", facts);
  const std::string id = pki.root->fingerprint_hex();
  EXPECT_TRUE(has_fact(facts, "leaf", {Value("solo"), Value(id)}));
  EXPECT_TRUE(has_fact(facts, "root", {Value("solo"), Value(id)}));
  EXPECT_EQ(count_facts(facts, "signs"), 0u);
}

TEST(Facts, ChainIdIsLeafDerived) {
  TestPki pki;
  EXPECT_EQ(chain_id_of(pki.chain()),
            "chain-" + pki.leaf->fingerprint_hex());
  EXPECT_EQ(chain_id_of({}), "chain-empty");
}

TEST(Facts, LoadIntoEngineIsQueryable) {
  TestPki pki;
  FactSet facts;
  encode_chain(pki.chain(), "c", facts);
  datalog::Engine engine;
  facts.load_into(engine);
  ASSERT_TRUE(engine.load("evLeaf(C) :- leaf(C, L), ev(L).").ok());
  EXPECT_TRUE(engine.query("evLeaf(\"c\")?").take().holds());
}

TEST(Facts, NonEvCertHasNoEvFact) {
  TestPki pki;
  FactSet facts;
  encode_certificate(*pki.root, facts);
  EXPECT_EQ(count_facts(facts, "ev"), 0u);
  EXPECT_EQ(count_facts(facts, "EV"), 0u);
}

}  // namespace
}  // namespace anchor::core
