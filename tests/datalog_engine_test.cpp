#include "datalog/engine.hpp"

#include <gtest/gtest.h>

#include "core/gcc.hpp"
#include "incidents/listings.hpp"

namespace anchor::datalog {
namespace {

TEST(Engine, GroundQueryHoldsOrNot) {
  Engine engine;
  ASSERT_TRUE(engine.load("p(1). p(2).").ok());
  EXPECT_TRUE(engine.query("p(1)?").take().holds());
  EXPECT_TRUE(engine.query("p(2)?").take().holds());
  EXPECT_FALSE(engine.query("p(3)?").take().holds());
  EXPECT_FALSE(engine.query("q(1)?").take().holds());
}

TEST(Engine, OpenQueryReturnsBindings) {
  Engine engine;
  ASSERT_TRUE(engine.load("e(1,2). e(1,3). e(2,3).").ok());
  auto result = engine.query("e(1, X)?").take();
  ASSERT_EQ(result.bindings.size(), 2u);
  for (const auto& binding : result.bindings) {
    EXPECT_TRUE(binding.contains("X"));
  }
}

TEST(Engine, RepeatedVariableInQuery) {
  Engine engine;
  ASSERT_TRUE(engine.load("e(1,1). e(1,2).").ok());
  auto result = engine.query("e(X, X)?").take();
  EXPECT_EQ(result.bindings.size(), 1u);
}

TEST(Engine, FactsAddedProgrammatically) {
  Engine engine;
  ASSERT_TRUE(engine.load("big(X) :- n(X), X > 10.").ok());
  engine.add_fact("n", {Value(std::int64_t{5})});
  engine.add_fact("n", {Value(std::int64_t{50})});
  auto result = engine.query("big(X)?").take();
  ASSERT_EQ(result.bindings.size(), 1u);
  EXPECT_EQ(result.bindings[0].at("X"), Value(std::int64_t{50}));
}

TEST(Engine, FactsAfterQueryTriggerReevaluation) {
  Engine engine;
  ASSERT_TRUE(engine.load("r(X) :- n(X).").ok());
  engine.add_fact("n", {Value(std::int64_t{1})});
  EXPECT_EQ(engine.query("r(X)?").take().bindings.size(), 1u);
  engine.add_fact("n", {Value(std::int64_t{2})});
  EXPECT_EQ(engine.query("r(X)?").take().bindings.size(), 2u);
}

TEST(Engine, LoadErrorsPropagate) {
  Engine engine;
  EXPECT_FALSE(engine.load("p(X :-").ok());
}

TEST(Engine, UnsafeProgramFailsAtQueryTime) {
  Engine engine;
  ASSERT_TRUE(engine.load("p(X, Y) :- q(X).").ok());  // parses fine
  auto result = engine.query("p(1, 2)?");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unsafe"), std::string::npos);
}

TEST(Engine, UnstratifiableProgramFailsAtQueryTime) {
  Engine engine;
  ASSERT_TRUE(engine.load("p(X) :- e(X), \\+q(X). q(X) :- e(X), \\+p(X).").ok());
  EXPECT_FALSE(engine.query("p(1)?").ok());
}

// --- The paper's Listing 1, executed end to end ------------------------------

class Listing1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.load(incidents::listing1_trustcor()).ok());
  }

  void add_leaf(const std::string& chain, const std::string& cert,
                std::int64_t not_before, bool ev) {
    engine_.add_fact("leaf", {Value(chain), Value(cert)});
    engine_.add_fact("notBefore", {Value(cert), Value(not_before)});
    if (ev) engine_.add_fact("EV", {Value(cert)});
  }

  bool valid(const std::string& chain, const std::string& usage) {
    Atom goal;
    goal.predicate = "valid";
    goal.args.push_back(Term::constant_of(Value(chain)));
    goal.args.push_back(Term::constant_of(Value(usage)));
    return engine_.query(goal).take().holds();
  }

  static constexpr std::int64_t kCutoff = 1669784400;  // Nov 30 2022
  Engine engine_;
};

TEST_F(Listing1Test, OldSmimeLeafValid) {
  add_leaf("c1", "cert1", kCutoff - 1000, false);
  EXPECT_TRUE(valid("c1", "S/MIME"));
}

TEST_F(Listing1Test, NewSmimeLeafInvalid) {
  add_leaf("c1", "cert1", kCutoff + 1000, false);
  EXPECT_FALSE(valid("c1", "S/MIME"));
}

TEST_F(Listing1Test, OldNonEvTlsLeafValid) {
  add_leaf("c1", "cert1", kCutoff - 1000, false);
  EXPECT_TRUE(valid("c1", "TLS"));
}

TEST_F(Listing1Test, OldEvTlsLeafInvalid) {
  // TLS additionally requires non-EV; S/MIME does not.
  add_leaf("c1", "cert1", kCutoff - 1000, true);
  EXPECT_FALSE(valid("c1", "TLS"));
  EXPECT_TRUE(valid("c1", "S/MIME"));
}

TEST_F(Listing1Test, BoundaryInstantIsInvalid) {
  // NB < T is strict: a leaf issued exactly at the cutoff is distrusted.
  add_leaf("c1", "cert1", kCutoff, false);
  EXPECT_FALSE(valid("c1", "TLS"));
}

// --- The paper's Listing 2 ---------------------------------------------------

// Listing 2 writes `valid(Chain, _)` — a head wildcard the raw engine
// rightly rejects as unsafe. The GCC layer expands it over the usage
// domain, so the fixture loads the expanded program a Gcc carries.
class Listing2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gcc = core::Gcc::create("listing2", std::string(64, 'a'),
                                 incidents::listing2_symantec({"exempthash1"}));
    ASSERT_TRUE(gcc.ok()) << gcc.error();
    engine_.add_program(gcc.value().program());
  }

  static constexpr std::int64_t kCutoff = 1464753600;  // June 1 2016
  Engine engine_;
};

TEST_F(Listing2Test, OldLeafValidForAnyUsage) {
  engine_.add_fact("leaf", {Value("c"), Value("leafcert")});
  engine_.add_fact("notBefore", {Value("leafcert"), Value(kCutoff - 5)});
  EXPECT_TRUE(engine_.query("valid(\"c\", \"TLS\")?").take().holds());
  EXPECT_TRUE(engine_.query("valid(\"c\", \"S/MIME\")?").take().holds());
}

TEST_F(Listing2Test, NewLeafUnderOrdinaryIntermediateInvalid) {
  engine_.add_fact("leaf", {Value("c"), Value("leafcert")});
  engine_.add_fact("notBefore", {Value("leafcert"), Value(kCutoff + 5)});
  engine_.add_fact("root", {Value("c"), Value("rootcert")});
  engine_.add_fact("signs", {Value("rootcert"), Value("intcert")});
  engine_.add_fact("hash", {Value("intcert"), Value("ordinaryhash")});
  EXPECT_FALSE(engine_.query("valid(\"c\", \"TLS\")?").take().holds());
}

TEST_F(Listing2Test, NewLeafUnderExemptIntermediateValid) {
  engine_.add_fact("leaf", {Value("c"), Value("leafcert")});
  engine_.add_fact("notBefore", {Value("leafcert"), Value(kCutoff + 5)});
  engine_.add_fact("root", {Value("c"), Value("rootcert")});
  engine_.add_fact("signs", {Value("rootcert"), Value("intcert")});
  engine_.add_fact("hash", {Value("intcert"), Value("exempthash1")});
  EXPECT_TRUE(engine_.query("valid(\"c\", \"TLS\")?").take().holds());
}

TEST(EngineStats, ModelSizeGrowsWithFacts) {
  Engine engine;
  ASSERT_TRUE(engine.load("r(X) :- n(X).").ok());
  engine.add_fact("n", {Value(std::int64_t{1})});
  engine.add_fact("n", {Value(std::int64_t{2})});
  ASSERT_TRUE(engine.query("r(1)?").ok());
  EXPECT_EQ(engine.model_size(), 4u);  // 2 facts + 2 derived
  EXPECT_EQ(engine.stats().derived_tuples, 2u);
}

TEST(EngineStats, InterleavedFactQueryCyclesCompileOnce) {
  // Regression: every add_fact/query cycle used to re-run Evaluator::create
  // (stratification + safety + body ordering) on the unchanged program,
  // making N interleaved cycles quadratic. The evaluator must be cached
  // until the program itself changes.
  Engine engine;
  ASSERT_TRUE(engine.load("r(X) :- n(X).").ok());
  for (std::int64_t i = 0; i < 10; ++i) {
    engine.add_fact("n", {Value(i)});
    ASSERT_TRUE(engine.query("r(X)?").ok());
  }
  EXPECT_EQ(engine.recompiles(), 1u);
  EXPECT_EQ(engine.query("r(X)?").take().bindings.size(), 10u);

  // Loading more clauses invalidates the cached compilation.
  ASSERT_TRUE(engine.load("s(X) :- r(X).").ok());
  ASSERT_TRUE(engine.query("s(X)?").ok());
  EXPECT_EQ(engine.recompiles(), 2u);
}

}  // namespace
}  // namespace anchor::datalog
