// TrustDaemon as a thin adapter over the anchord wire codec: the §3.1
// deployment-model verbs (evaluate_gccs / validate / metrics) plus the
// feed-status verb, in both fallback (uncached) and service-backed modes.
// Every call here round-trips encode_request → frame → decode → dispatch →
// encode_response → frame → decode, so these tests exercise the same
// marshaling path AnchordServer serves over a Conduit.
#include "anchord/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "chain/service.hpp"
#include "rsf/client.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::anchord {
namespace {

using chain::ErrorKind;
using chain::VerifyOptions;
using chain::VerifyResult;
using chain::VerifyService;
using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

struct DaemonPki {
  SimSig sigs;
  SimKeyPair root_key = SimSig::keygen("Daemon Root");
  SimKeyPair int_key = SimSig::keygen("Daemon Int");
  CertPtr root, intermediate;
  rootstore::RootStore store;
  static constexpr std::int64_t kNow = 1700000000;

  DaemonPki() {
    root = CertificateBuilder()
               .serial(1)
               .subject(DistinguishedName::make("Daemon Root", "T"))
               .issuer(DistinguishedName::make("Daemon Root", "T"))
               .validity(0, unix_date(2040, 1, 1))
               .public_key(root_key.key_id)
               .ca(std::nullopt)
               .sign(root_key)
               .take();
    intermediate = CertificateBuilder()
                       .serial(2)
                       .subject(DistinguishedName::make("Daemon Int", "T"))
                       .issuer(root->subject())
                       .validity(0, unix_date(2039, 1, 1))
                       .public_key(int_key.key_id)
                       .ca(0)
                       .sign(root_key)
                       .take();
    sigs.register_key(root_key);
    sigs.register_key(int_key);
    (void)store.add_trusted(root);
  }

  TrustDaemonConfig config() const {
    return TrustDaemonConfig{.store = &store, .scheme = &sigs};
  }

  CertPtr leaf(const std::string& domain, bool ev = false) {
    SimKeyPair key = SimSig::keygen("dleaf" + domain);
    CertificateBuilder builder;
    builder.serial(3)
        .subject(DistinguishedName::make(domain))
        .issuer(intermediate->subject())
        .validity(kNow - 86400, kNow + 90 * 86400)
        .public_key(key.key_id)
        .dns_names({domain})
        .extended_key_usage({x509::oids::kp_server_auth()});
    if (ev) builder.ev();
    return builder.sign(int_key).take();
  }
};

TEST(TrustDaemon, EvaluateGccsOverDerBoundary) {
  DaemonPki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate(
          "no-ev", *pki.root,
          "valid(Chain, _) :- leaf(Chain, L), \\+ev(L).")
          .take());
  TrustDaemon daemon(pki.config());

  CertPtr plain = pki.leaf("ok.example.com");
  std::vector<Bytes> chain_der{plain->der(), pki.intermediate->der(),
                               pki.root->der()};
  EXPECT_TRUE(daemon.evaluate_gccs(chain_der, "TLS"));

  CertPtr ev = pki.leaf("ev.example.com", true);
  std::vector<Bytes> ev_chain{ev->der(), pki.intermediate->der(),
                              pki.root->der()};
  EXPECT_FALSE(daemon.evaluate_gccs(ev_chain, "TLS"));
  EXPECT_EQ(daemon.calls(), 2u);
}

TEST(TrustDaemon, MalformedDerIsRejected) {
  DaemonPki pki;
  TrustDaemon daemon(pki.config());
  std::vector<Bytes> garbage{Bytes{0x01, 0x02, 0x03}};
  EXPECT_FALSE(daemon.evaluate_gccs(garbage, "TLS"));
  EXPECT_FALSE(daemon.evaluate_gccs({}, "TLS"));
}

TEST(TrustDaemon, UnconstrainedRootAllows) {
  DaemonPki pki;
  TrustDaemon daemon(pki.config());
  CertPtr leaf = pki.leaf("free.example.com");
  std::vector<Bytes> chain_der{leaf->der(), pki.intermediate->der(),
                               pki.root->der()};
  EXPECT_TRUE(daemon.evaluate_gccs(chain_der, "TLS"));
}

TEST(TrustDaemon, FullValidationInsideDaemon) {
  DaemonPki pki;
  TrustDaemon daemon(pki.config());
  CertPtr leaf = pki.leaf("full.example.com");
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  options.hostname = "full.example.com";
  std::vector<Bytes> intermediates{pki.intermediate->der()};
  VerifyResult result = daemon.validate(leaf->der(), intermediates, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.kind, ErrorKind::kOk);
  // The accepted path crossed the wire as DER and was re-parsed.
  EXPECT_EQ(result.chain.size(), 3u);
}

TEST(TrustDaemon, FullValidationRejectsMalformedLeaf) {
  DaemonPki pki;
  TrustDaemon daemon(pki.config());
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  VerifyResult result = daemon.validate(Bytes{0xff}, {}, options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.kind, ErrorKind::kMalformedRequest);
}

// A request whose marshalled frame exceeds the configured cap fails closed
// as kMalformedRequest — the daemon refuses to pretend a transport would
// have carried it.
TEST(TrustDaemon, OversizedRequestFailsClosed) {
  DaemonPki pki;
  TrustDaemonConfig config = pki.config();
  config.max_frame_bytes = 256;
  TrustDaemon daemon(config);
  CertPtr leaf = pki.leaf("big.example.com");
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  options.hostname = "big.example.com";
  std::vector<Bytes> intermediates{pki.intermediate->der()};
  VerifyResult result = daemon.validate(leaf->der(), intermediates, options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.kind, ErrorKind::kMalformedRequest);
  EXPECT_NE(result.error.find("exceeds"), std::string::npos);
}

TEST(TrustDaemon, LatencySimulationAccumulates) {
  DaemonPki pki;
  TrustDaemonConfig fast_config = pki.config();
  TrustDaemonConfig slow_config = pki.config();
  slow_config.latency_ns = 2000000;  // 2 ms per leg
  TrustDaemon fast(fast_config);
  TrustDaemon slow(slow_config);
  CertPtr leaf = pki.leaf("timed.example.com");
  std::vector<Bytes> chain_der{leaf->der(), pki.intermediate->der(),
                               pki.root->der()};
  auto time_call = [&](TrustDaemon& daemon) {
    auto start = std::chrono::steady_clock::now();
    daemon.evaluate_gccs(chain_der, "TLS");
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  const auto fast_us = time_call(fast);
  const auto slow_us = time_call(slow);
  // Two simulated 2 ms legs put a hard floor under the slow path; the
  // fast path's wall clock is scheduling noise (unbounded under
  // sanitizers on a loaded host), so it is exercised but not compared.
  (void)fast_us;
  EXPECT_GE(slow_us, 4000);
}

// Option-3 validate() with nonzero IPC latency, routed through the shared
// VerifyService: the two simulated kernel round trips must still be paid
// on top of the (possibly cached) service work.
TEST(TrustDaemon, ValidateWithLatencyThroughService) {
  DaemonPki pki;
  VerifyService service(pki.store, pki.sigs);
  TrustDaemonConfig fast_config = pki.config();
  fast_config.service = &service;
  TrustDaemonConfig slow_config = fast_config;
  slow_config.latency_ns = 2000000;  // 2 ms per leg
  TrustDaemon fast(fast_config);
  TrustDaemon slow(slow_config);

  CertPtr leaf = pki.leaf("svc.example.com");
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  options.hostname = "svc.example.com";
  std::vector<Bytes> intermediates{pki.intermediate->der()};

  auto timed_validate = [&](TrustDaemon& daemon, VerifyResult& out) {
    auto start = std::chrono::steady_clock::now();
    out = daemon.validate(leaf->der(), intermediates, options);
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  VerifyResult fast_result, slow_result;
  const auto fast_us = timed_validate(fast, fast_result);
  const auto slow_us = timed_validate(slow, slow_result);
  ASSERT_TRUE(fast_result.ok) << fast_result.error;
  ASSERT_TRUE(slow_result.ok) << slow_result.error;
  EXPECT_EQ(slow_result.chain.size(), 3u);
  // Guaranteed floor from the two simulated legs (see
  // LatencySimulationAccumulates for why the fast path is not compared).
  (void)fast_us;
  EXPECT_GE(slow_us, 4000);
  EXPECT_EQ(fast.calls(), 1u);
  EXPECT_EQ(slow.calls(), 1u);
}

// The metrics verb: an anchorctl-style scrape over the same wire surface.
// It must refresh the store gauges and return the registry's exposition.
TEST(TrustDaemon, MetricsVerbEmitsExposition) {
  DaemonPki pki;
  pki.store.distrust(std::string(64, 'a'), "incident");
  TrustDaemon daemon(pki.config());

  metrics::Registry registry;  // isolated so counts are exact
  const std::string text = daemon.metrics(registry);
  EXPECT_NE(text.find("# TYPE anchor_store_trusted_roots gauge"),
            std::string::npos);
  EXPECT_NE(text.find("anchor_store_trusted_roots 1"), std::string::npos);
  EXPECT_NE(text.find("anchor_store_distrusted_roots 1"), std::string::npos);
  EXPECT_NE(text.find("anchor_store_epoch"), std::string::npos);
  EXPECT_EQ(daemon.calls(), 1u);  // the scrape itself crosses the boundary

  // Store changes show up on the next scrape.
  pki.store.distrust(std::string(64, 'b'), "second incident");
  const std::string updated = daemon.metrics(registry);
  EXPECT_NE(updated.find("anchor_store_distrusted_roots 2"),
            std::string::npos);
}

// The feed-status verb fails closed (kUnavailable) without an RSF client,
// and reports the client's liveness line with one attached.
TEST(TrustDaemon, FeedStatusVerb) {
  DaemonPki pki;
  TrustDaemon bare(pki.config());
  Response unavailable = bare.feed_status();
  EXPECT_FALSE(unavailable.ok);
  EXPECT_EQ(unavailable.kind, ErrorKind::kUnavailable);

  SimSig feed_registry;
  rsf::Feed feed("nss", feed_registry);
  feed.publish(pki.store, 100, "r1");
  rsf::RsfClient client(feed, 3600);
  EXPECT_EQ(client.poll_now(200), 1u);

  TrustDaemonConfig config = pki.config();
  config.feed = &client;
  TrustDaemon daemon(config);
  Response status = daemon.feed_status();
  ASSERT_TRUE(status.ok) << status.detail;
  EXPECT_EQ(status.kind, ErrorKind::kOk);
  EXPECT_NE(status.detail.find("health=healthy"), std::string::npos);
  EXPECT_NE(status.detail.find("sequence=1"), std::string::npos);
}

// Concurrent clients of one service-backed daemon: every caller gets the
// right Boolean / chain and no call is lost (calls_ is atomic).
TEST(TrustDaemon, ConcurrentCallersThroughService) {
  DaemonPki pki;
  pki.store.attach_gcc(
      core::Gcc::for_certificate(
          "no-ev", *pki.root,
          "valid(Chain, _) :- leaf(Chain, L), \\+ev(L).")
          .take());
  VerifyService service(pki.store, pki.sigs);
  TrustDaemonConfig config = pki.config();
  config.latency_ns = 10000;  // 10 us per leg
  config.service = &service;
  TrustDaemon daemon(config);

  CertPtr plain = pki.leaf("plain.example.com");
  CertPtr ev = pki.leaf("ev.example.com", true);
  std::vector<Bytes> plain_chain{plain->der(), pki.intermediate->der(),
                                 pki.root->der()};
  std::vector<Bytes> ev_chain{ev->der(), pki.intermediate->der(),
                              pki.root->der()};
  VerifyOptions options;
  options.time = DaemonPki::kNow;
  options.hostname = "plain.example.com";
  std::vector<Bytes> intermediates{pki.intermediate->der()};

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Option 2 both ways, plus option 3, from every thread.
        if (!daemon.evaluate_gccs(plain_chain, "TLS")) ++failures;
        if (daemon.evaluate_gccs(ev_chain, "TLS")) ++failures;
        VerifyResult result =
            daemon.validate(plain->der(), intermediates, options);
        if (!result.ok || result.chain.size() != 3) ++failures;
        (void)t;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(daemon.calls(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread * 3);
  // The shared service memoized the repeated work.
  const chain::ServiceStats stats = service.stats();
  EXPECT_GT(stats.verdict_hits, 0u);
  EXPECT_GT(stats.cert_hits, 0u);
}

}  // namespace
}  // namespace anchor::anchord
