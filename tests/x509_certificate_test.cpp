#include "x509/certificate.hpp"

#include <gtest/gtest.h>

#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::x509 {
namespace {

SimKeyPair test_key(const std::string& label) { return SimSig::keygen(label); }

CertPtr build_rich_leaf() {
  SimKeyPair issuer_key = test_key("Test Issuing CA");
  SimKeyPair leaf_key = test_key("leaf");
  KeyUsage ku;
  ku.set(KeyUsageBit::kDigitalSignature);
  NameConstraints nc;  // unusual on a leaf, but must round-trip anyway
  nc.permitted_dns = {"example.com"};
  auto result =
      CertificateBuilder()
          .serial(0x1234)
          .subject(DistinguishedName::make("shop.example.com", "Shop Inc", "US"))
          .issuer(DistinguishedName::make("Test Issuing CA", "Test Org"))
          .validity(unix_date(2023, 1, 1), unix_date(2023, 4, 1))
          .public_key(leaf_key.key_id)
          .key_usage(ku)
          .extended_key_usage({oids::kp_server_auth()})
          .dns_names({"shop.example.com", "*.shop.example.com"})
          .name_constraints(nc)
          .ev()
          .subject_key_id(Bytes{1, 2, 3})
          .authority_key_id(Bytes{4, 5, 6})
          .sign(issuer_key);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error());
  return std::move(result).take();
}

TEST(Certificate, BuildParseRoundTripPreservesFields) {
  CertPtr cert = build_rich_leaf();
  EXPECT_EQ(cert->serial(), (Bytes{0x12, 0x34}));
  EXPECT_EQ(cert->subject().common_name(), "shop.example.com");
  EXPECT_EQ(cert->subject().organization(), "Shop Inc");
  EXPECT_EQ(cert->issuer().common_name(), "Test Issuing CA");
  EXPECT_EQ(cert->not_before(), unix_date(2023, 1, 1));
  EXPECT_EQ(cert->not_after(), unix_date(2023, 4, 1));
  EXPECT_EQ(cert->lifetime_seconds(), 90 * 86400);
  ASSERT_TRUE(cert->key_usage().has_value());
  EXPECT_TRUE(cert->key_usage()->has(KeyUsageBit::kDigitalSignature));
  ASSERT_TRUE(cert->extended_key_usage().has_value());
  EXPECT_TRUE(cert->extended_key_usage()->has(oids::kp_server_auth()));
  ASSERT_TRUE(cert->subject_alt_name().has_value());
  EXPECT_EQ(cert->subject_alt_name()->dns_names.size(), 2u);
  ASSERT_TRUE(cert->name_constraints().has_value());
  EXPECT_EQ(cert->name_constraints()->permitted_dns,
            (std::vector<std::string>{"example.com"}));
  EXPECT_TRUE(cert->is_ev());
  ASSERT_TRUE(cert->subject_key_identifier().has_value());
  EXPECT_EQ(cert->subject_key_identifier()->key_id, (Bytes{1, 2, 3}));
  ASSERT_TRUE(cert->authority_key_identifier().has_value());
  EXPECT_EQ(cert->authority_key_identifier()->key_id, (Bytes{4, 5, 6}));
  EXPECT_FALSE(cert->is_ca());
  EXPECT_FALSE(cert->is_self_issued());
}

TEST(Certificate, ReparsedDerIsByteIdentical) {
  CertPtr cert = build_rich_leaf();
  auto reparsed = Certificate::parse(BytesView(cert->der()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value()->der(), cert->der());
  EXPECT_EQ(reparsed.value()->fingerprint(), cert->fingerprint());
}

TEST(Certificate, FingerprintIsSha256OfDer) {
  CertPtr cert = build_rich_leaf();
  EXPECT_EQ(cert->fingerprint_hex().size(), 64u);
  EXPECT_EQ(cert->fingerprint(), Sha256::hash(BytesView(cert->der())));
}

TEST(Certificate, PemRoundTrip) {
  CertPtr cert = build_rich_leaf();
  std::string pem = cert->to_pem();
  auto parsed = Certificate::parse_pem(pem);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value()->der(), cert->der());
}

TEST(Certificate, ParsePemRejectsMissingBlock) {
  EXPECT_FALSE(Certificate::parse_pem("not a pem at all").ok());
}

TEST(Certificate, CaProfile) {
  SimKeyPair key = test_key("Root");
  auto cert = CertificateBuilder()
                  .serial(1)
                  .subject(DistinguishedName::make("Root CA", "Org"))
                  .issuer(DistinguishedName::make("Root CA", "Org"))
                  .validity(0, unix_date(2040, 1, 1))
                  .public_key(key.key_id)
                  .ca(2)
                  .sign(key);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert.value()->is_ca());
  EXPECT_EQ(cert.value()->path_len(), 2);
  EXPECT_TRUE(cert.value()->is_self_issued());
  ASSERT_TRUE(cert.value()->key_usage().has_value());
  EXPECT_TRUE(cert.value()->key_usage()->has(KeyUsageBit::kKeyCertSign));
}

TEST(Certificate, ValidityWindow) {
  CertPtr cert = build_rich_leaf();
  EXPECT_FALSE(cert->valid_at(unix_date(2022, 12, 31)));
  EXPECT_TRUE(cert->valid_at(unix_date(2023, 1, 1)));
  EXPECT_TRUE(cert->valid_at(unix_date(2023, 2, 15)));
  EXPECT_TRUE(cert->valid_at(unix_date(2023, 4, 1)));
  EXPECT_FALSE(cert->valid_at(unix_date(2023, 4, 2)));
}

TEST(Certificate, MatchesHostViaSanAndWildcard) {
  CertPtr cert = build_rich_leaf();
  EXPECT_TRUE(cert->matches_host("shop.example.com"));
  EXPECT_TRUE(cert->matches_host("api.shop.example.com"));
  EXPECT_FALSE(cert->matches_host("a.b.shop.example.com"));
  EXPECT_FALSE(cert->matches_host("other.example.com"));
}

TEST(Certificate, DnsNamesFallBackToCommonName) {
  SimKeyPair key = test_key("cn-only");
  auto cert = CertificateBuilder()
                  .serial(2)
                  .subject(DistinguishedName::make("legacy.example.net"))
                  .issuer(DistinguishedName::make("Issuer"))
                  .validity(0, 1000)
                  .public_key(key.key_id)
                  .sign(key);
  ASSERT_TRUE(cert.ok());
  EXPECT_EQ(cert.value()->dns_names(),
            (std::vector<std::string>{"legacy.example.net"}));
  EXPECT_TRUE(cert.value()->matches_host("legacy.example.net"));
}

TEST(Certificate, NonDnsCommonNameYieldsNoNames) {
  SimKeyPair key = test_key("non-dns");
  auto cert = CertificateBuilder()
                  .serial(3)
                  .subject(DistinguishedName::make("Some Human Name"))
                  .issuer(DistinguishedName::make("Issuer"))
                  .validity(0, 1000)
                  .public_key(key.key_id)
                  .sign(key);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert.value()->dns_names().empty());
}

TEST(Certificate, TamperedDerFailsToParseOrChangesFingerprint) {
  CertPtr cert = build_rich_leaf();
  Bytes mutated = cert->der();
  mutated[mutated.size() / 2] ^= 0x01;
  auto reparsed = Certificate::parse(BytesView(mutated));
  if (reparsed.ok()) {
    // Structure survived: identity must differ (signature check would fail).
    EXPECT_NE(reparsed.value()->fingerprint(), cert->fingerprint());
  }
}

TEST(Certificate, ParseRejectsGarbage) {
  EXPECT_FALSE(Certificate::parse(Bytes{}).ok());
  EXPECT_FALSE(Certificate::parse(Bytes{0x00, 0x01, 0x02}).ok());
  EXPECT_FALSE(Certificate::parse(Bytes(64, 0x30)).ok());
}

TEST(Certificate, ParseRejectsTrailingData) {
  CertPtr cert = build_rich_leaf();
  Bytes padded = cert->der();
  padded.push_back(0x00);
  EXPECT_FALSE(Certificate::parse(BytesView(padded)).ok());
}

TEST(CertificateBuilder, RejectsMissingFields) {
  SimKeyPair key = test_key("incomplete");
  EXPECT_FALSE(CertificateBuilder().sign(key).ok());  // nothing set
  EXPECT_FALSE(CertificateBuilder()
                   .subject(DistinguishedName::make("X"))
                   .issuer(DistinguishedName::make("Y"))
                   .sign(key)
                   .ok());  // no public key
}

TEST(CertificateBuilder, RejectsInvertedValidity) {
  SimKeyPair key = test_key("inverted");
  EXPECT_FALSE(CertificateBuilder()
                   .subject(DistinguishedName::make("X"))
                   .issuer(DistinguishedName::make("Y"))
                   .public_key(key.key_id)
                   .validity(1000, 500)
                   .sign(key)
                   .ok());
}

TEST(Certificate, FindExtensionByOid) {
  CertPtr cert = build_rich_leaf();
  EXPECT_NE(cert->find_extension(oids::key_usage()), nullptr);
  EXPECT_NE(cert->find_extension(oids::subject_alt_name()), nullptr);
  EXPECT_EQ(cert->find_extension(asn1::Oid::from_string("1.2.3.4")), nullptr);
}

TEST(Certificate, UnknownExtensionIsPreserved) {
  SimKeyPair key = test_key("custom-ext");
  Extension custom;
  custom.oid = asn1::Oid::from_string("1.3.6.1.4.1.99999.42");
  custom.critical = false;
  custom.value = Bytes{0xde, 0xad};
  auto cert = CertificateBuilder()
                  .serial(4)
                  .subject(DistinguishedName::make("X"))
                  .issuer(DistinguishedName::make("Y"))
                  .validity(0, 1000)
                  .public_key(key.key_id)
                  .extension(custom)
                  .sign(key);
  ASSERT_TRUE(cert.ok()) << cert.error();
  const Extension* found = cert.value()->find_extension(custom.oid);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, custom.value);
}

}  // namespace
}  // namespace anchor::x509
