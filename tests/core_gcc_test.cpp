#include "core/gcc.hpp"

#include <gtest/gtest.h>

namespace anchor::core {
namespace {

const std::string kHash(64, 'a');
const std::string kOtherHash(64, 'b');

constexpr const char* kMinimalValid =
    "valid(Chain, \"TLS\") :- leaf(Chain, L), notBefore(L, NB), NB < 100.";

TEST(Gcc, CreateAcceptsWellFormedProgram) {
  auto gcc = Gcc::create("test", kHash, kMinimalValid, "why");
  ASSERT_TRUE(gcc.ok()) << gcc.error();
  EXPECT_EQ(gcc.value().name(), "test");
  EXPECT_EQ(gcc.value().root_hash_hex(), kHash);
  EXPECT_EQ(gcc.value().justification(), "why");
  EXPECT_FALSE(gcc.value().program().clauses.empty());
}

TEST(Gcc, CreateRejectsEmptyName) {
  EXPECT_FALSE(Gcc::create("", kHash, kMinimalValid).ok());
}

TEST(Gcc, CreateRejectsBadHashLength) {
  EXPECT_FALSE(Gcc::create("t", "deadbeef", kMinimalValid).ok());
}

TEST(Gcc, CreateRejectsParseErrors) {
  auto result = Gcc::create("t", kHash, "valid(Chain :- broken");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("gcc 't'"), std::string::npos);
}

TEST(Gcc, CreateRejectsUnsafePrograms) {
  EXPECT_FALSE(Gcc::create("t", kHash, "valid(Chain, U) :- leaf(Chain, L), \\+bad(Q).").ok());
}

TEST(Gcc, CreateRejectsUnstratifiablePrograms) {
  EXPECT_FALSE(Gcc::create("t", kHash,
                           "valid(C, U) :- leaf(C, U), \\+invalid(C, U).\n"
                           "invalid(C, U) :- leaf(C, U), \\+valid(C, U).")
                   .ok());
}

TEST(Gcc, CreateRejectsProgramWithoutValidRule) {
  auto result = Gcc::create("t", kHash, "other(X) :- leaf(X, L).");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("valid/2"), std::string::npos);
}

TEST(Gcc, HeadWildcardExpandsOverUsageDomain) {
  auto gcc = Gcc::create("t", kHash, "valid(Chain, _) :- leaf(Chain, L).");
  ASSERT_TRUE(gcc.ok()) << gcc.error();
  // One clause per usage.
  std::size_t tls = 0;
  std::size_t smime = 0;
  for (const auto& clause : gcc.value().program().clauses) {
    ASSERT_EQ(clause.head.arity(), 2u);
    ASSERT_TRUE(clause.head.args[1].is_const());
    if (clause.head.args[1].constant == datalog::Value("TLS")) ++tls;
    if (clause.head.args[1].constant == datalog::Value("S/MIME")) ++smime;
  }
  EXPECT_EQ(tls, 1u);
  EXPECT_EQ(smime, 1u);
}

TEST(Gcc, BoundHeadVariableIsNotExpanded) {
  auto gcc = Gcc::create(
      "t", kHash, "valid(Chain, U) :- leaf(Chain, L), usageOf(L, U).");
  ASSERT_TRUE(gcc.ok()) << gcc.error();
  EXPECT_EQ(gcc.value().program().clauses.size(), 1u);
  EXPECT_TRUE(gcc.value().program().clauses[0].head.args[1].is_var());
}

TEST(GccStore, AttachAndLookup) {
  GccStore store;
  store.attach(Gcc::create("a", kHash, kMinimalValid).take());
  store.attach(Gcc::create("b", kHash, kMinimalValid).take());
  store.attach(Gcc::create("c", kOtherHash, kMinimalValid).take());
  EXPECT_EQ(store.for_root(kHash).size(), 2u);
  EXPECT_EQ(store.for_root(kOtherHash).size(), 1u);
  EXPECT_TRUE(store.for_root(std::string(64, 'c')).empty());
  EXPECT_EQ(store.total(), 3u);
  EXPECT_EQ(store.constrained_roots(), 2u);
}

TEST(GccStore, ReattachSameNameReplaces) {
  GccStore store;
  store.attach(Gcc::create("a", kHash, kMinimalValid, "v1").take());
  store.attach(Gcc::create("a", kHash, kMinimalValid, "v2").take());
  ASSERT_EQ(store.for_root(kHash).size(), 1u);
  EXPECT_EQ(store.for_root(kHash)[0].justification(), "v2");
}

TEST(GccStore, Detach) {
  GccStore store;
  store.attach(Gcc::create("a", kHash, kMinimalValid).take());
  store.attach(Gcc::create("b", kHash, kMinimalValid).take());
  EXPECT_TRUE(store.detach(kHash, "a"));
  EXPECT_EQ(store.for_root(kHash).size(), 1u);
  EXPECT_FALSE(store.detach(kHash, "a"));  // already gone
  EXPECT_FALSE(store.detach(kOtherHash, "b"));
  EXPECT_TRUE(store.detach(kHash, "b"));
  EXPECT_EQ(store.constrained_roots(), 0u);
}

TEST(GccStore, RootsSortedIsDeterministic) {
  GccStore store;
  store.attach(Gcc::create("x", kOtherHash, kMinimalValid).take());
  store.attach(Gcc::create("y", kHash, kMinimalValid).take());
  auto roots = store.roots_sorted();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0], kHash);
  EXPECT_EQ(roots[1], kOtherHash);
}

}  // namespace
}  // namespace anchor::core
