#include "incidents/incidents.hpp"

#include <gtest/gtest.h>

#include <set>

namespace anchor::incidents {
namespace {

// Parameterized over all six incidents: every labelled case must get the
// verdict the primary's (GCC-expressed) policy dictates.
class IncidentPolicy : public ::testing::TestWithParam<std::string> {
 protected:
  static Incident load(const std::string& name) {
    for (Incident& incident : all_incidents()) {
      if (incident.name == name) return std::move(incident);
    }
    ADD_FAILURE() << "unknown incident " << name;
    return Incident{};
  }
};

TEST_P(IncidentPolicy, CasesMatchPrimaryPolicy) {
  Incident incident = load(GetParam());
  ASSERT_FALSE(incident.cases.empty());
  chain::ChainVerifier verifier(incident.store, incident.signatures);
  for (const IncidentCase& test_case : incident.cases) {
    chain::VerifyResult result =
        verifier.verify(test_case.leaf, incident.pool, test_case.options);
    EXPECT_EQ(result.ok, test_case.expect_valid)
        << incident.name << ": " << test_case.label
        << (result.ok ? "" : " | " + result.error);
  }
}

TEST_P(IncidentPolicy, BinaryRemovalBreaksLegitimateChains) {
  // The Debian problem (§2.3): a derivative that can only remove the root
  // outright loses every chain the primary still accepts.
  Incident incident = load(GetParam());
  for (const auto& hash : incident.affected_roots) {
    incident.store.distrust(hash, "binary derivative removal");
  }
  chain::ChainVerifier verifier(incident.store, incident.signatures);
  for (const IncidentCase& test_case : incident.cases) {
    chain::VerifyResult result =
        verifier.verify(test_case.leaf, incident.pool, test_case.options);
    EXPECT_FALSE(result.ok)
        << incident.name << ": " << test_case.label
        << " survived full removal";
  }
}

TEST_P(IncidentPolicy, BinaryRetentionAcceptsWhatPrimaryRejects) {
  // The opposite failure: a derivative that keeps the root with no GCC
  // support accepts chains the primary rejects (unless they fail classic
  // X.509 checks too).
  Incident incident = load(GetParam());
  chain::ChainVerifier verifier(incident.store, incident.signatures);
  bool derivative_accepts_a_rejected_chain = false;
  for (const IncidentCase& test_case : incident.cases) {
    if (test_case.expect_valid) continue;
    chain::VerifyOptions no_gcc = test_case.options;
    no_gcc.run_gccs = false;
    chain::VerifyResult result =
        verifier.verify(test_case.leaf, incident.pool, no_gcc);
    if (result.ok) derivative_accepts_a_rejected_chain = true;
  }
  EXPECT_TRUE(derivative_accepts_a_rejected_chain)
      << incident.name
      << ": expected at least one primary-rejected chain to pass a "
         "GCC-ignorant derivative";
}

INSTANTIATE_TEST_SUITE_P(AllIncidents, IncidentPolicy,
                         ::testing::Values("turktrust", "tubitak", "anssi",
                                           "india-cca", "cnnic", "wosign",
                                           "symantec"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Incidents, AllEightArePresentAndDistinct) {
  auto incidents = all_incidents();
  ASSERT_EQ(incidents.size(), 8u);
  std::set<std::string> names;
  for (const auto& incident : incidents) {
    names.insert(incident.name);
    EXPECT_FALSE(incident.summary.empty());
    EXPECT_FALSE(incident.affected_roots.empty());
    // Every incident ships an enforcement mechanism: a GCC for the policy
    // incidents, explicit distrust (negative inclusion poisoning the
    // logical CA) for the cross-sign resurrection.
    if (incident.name == "cross-sign-resurrection") {
      bool distrusts_affected_root = false;
      for (const auto& root : incident.affected_roots) {
        if (incident.store.state_of(root) ==
            rootstore::TrustState::kDistrusted) {
          distrusts_affected_root = true;
        }
      }
      EXPECT_TRUE(distrusts_affected_root);
    } else {
      EXPECT_GT(incident.store.gccs().total(), 0u);
    }
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(Incidents, WosignConstrainsBothRoots) {
  Incident wosign = make_wosign();
  EXPECT_EQ(wosign.affected_roots.size(), 2u);
  EXPECT_EQ(wosign.store.gccs().total(), 2u);
  EXPECT_EQ(wosign.store.trusted_count(), 2u);
}

TEST(Incidents, SymantecUsesThePaperListing) {
  Incident symantec = make_symantec();
  const auto& gccs =
      symantec.store.gccs().for_root(symantec.affected_roots[0]);
  ASSERT_EQ(gccs.size(), 1u);
  EXPECT_NE(gccs[0].source().find("june1st2016(1464753600)"),
            std::string::npos);
  EXPECT_NE(gccs[0].source().find("exempt("), std::string::npos);
}

TEST(Incidents, GccsCarryJustifications) {
  for (const Incident& incident : all_incidents()) {
    for (const auto& root : incident.store.gccs().roots_sorted()) {
      for (const core::Gcc& gcc : incident.store.gccs().for_root(root)) {
        EXPECT_FALSE(gcc.justification().empty())
            << incident.name << "/" << gcc.name();
      }
    }
  }
}

}  // namespace
}  // namespace anchor::incidents
