// Concurrency contract of util/metrics (run under TSan via the
// -DANCHOR_SANITIZE=thread config, ctest -L concurrency / -L metrics):
// hot-path increments are lock-free on cached references, registration is
// serialized, and expose()/snapshot() may run concurrently with both.
// Counter totals and histogram counts must come out exact — relaxed
// ordering never loses increments, it only allows torn cross-series reads.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace anchor::metrics {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 5000;

TEST(MetricsConcurrency, CountersAreExactUnderContention) {
  Registry registry;
  Counter& shared = registry.counter("anchor_test_shared_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIterations; ++i) shared.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(shared.value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(MetricsConcurrency, HistogramCountAndBucketsAreExact) {
  Registry registry;
  const double bounds[] = {0.5, 1.5, 2.5};
  Histogram& h = registry.histogram("anchor_test_seconds", {}, bounds);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kIterations; ++i) {
        h.observe(static_cast<double>(t % 4));  // 0, 1, 2, 3 → one per bucket
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto total = static_cast<std::uint64_t>(kThreads) * kIterations;
  EXPECT_EQ(h.count(), total);
  EXPECT_EQ(h.cumulative(3), total);  // +Inf bucket
  // kThreads/4 threads observed each distinct value.
  EXPECT_EQ(h.cumulative(0), total / 4);      // value 0 <= 0.5
  EXPECT_EQ(h.cumulative(1), total / 2);      // values {0,1}
  EXPECT_EQ(h.cumulative(2), 3 * total / 4);  // values {0,1,2}
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(total) / 4 * (0 + 1 + 2 + 3));
}

TEST(MetricsConcurrency, ConcurrentRegistrationConverges) {
  Registry registry;
  std::vector<std::thread> threads;
  // Every thread registers the same 4 labeled series plus one private one,
  // interleaved with increments through the freshly returned reference.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        Counter& shared = registry.counter(
            "anchor_test_polls_total",
            {{"outcome", (i % 4 == 0)   ? "success"
                         : (i % 4 == 1) ? "failure"
                         : (i % 4 == 2) ? "skip"
                                        : "retry"}});
        shared.add();
        registry.gauge("anchor_test_private", {{"thread", std::to_string(t)}})
            .add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.series_count(), 4u + kThreads);
  std::uint64_t sum = 0;
  for (const char* outcome : {"success", "failure", "skip", "retry"}) {
    sum += registry.counter("anchor_test_polls_total", {{"outcome", outcome}})
               .value();
  }
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kThreads) * 200);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        registry.gauge("anchor_test_private", {{"thread", std::to_string(t)}})
            .value(),
        200);
  }
}

TEST(MetricsConcurrency, ExposeRacesWithWrites) {
  Registry registry;
  Counter& c = registry.counter("anchor_test_total");
  Histogram& h = registry.histogram("anchor_test_seconds");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads / 2; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        h.observe(1e-4);
        registry.gauge("anchor_test_level").set(7);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::string text = registry.expose();
    EXPECT_NE(text.find("anchor_test_total"), std::string::npos);
    const Snapshot snap = registry.snapshot();
    EXPECT_TRUE(snap.contains("anchor_test_total"));
  }
  stop.store(true);
  for (auto& thread : writers) thread.join();
  // Final exposition reflects the settled totals.
  const Snapshot final_snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(final_snap.at("anchor_test_total"),
                   static_cast<double>(c.value()));
  EXPECT_DOUBLE_EQ(final_snap.at("anchor_test_seconds_count"),
                   static_cast<double>(h.count()));
}

}  // namespace
}  // namespace anchor::metrics
