// VerifyService — a thread-pool-backed, cache-coherent front end over
// ChainVerifier, modelling the deployment the paper's §3.1 argues for:
// platform-level GCC execution via a trustd-style daemon that serves
// *every app on the machine*. A shared verifier only pays off if it can
// (a) serve many callers concurrently and (b) amortize repeated work, so
// the service adds:
//
//   * a worker pool (util/threadpool) for async/batch submission;
//   * a sharded, mutex-striped GCC-verdict cache keyed by
//     (root hash, chain fingerprint = SHA-256 over the DER path, usage,
//     store epoch) — same chain + same GCC set evaluates to the same
//     verdict because GCCs are pure stratified Datalog over chain facts,
//     so memoizing the Boolean is sound (DESIGN.md, "Verification service
//     & cache coherence");
//   * a parsed-certificate cache keyed by DER hash, shared by the
//     DER-boundary entry points (TrustDaemon routing);
//   * RCU-style store snapshots: verification runs against an immutable
//     copy of the RootStore, so no lock is held during path construction
//     or Datalog evaluation. Mutations flow through mutate(), which
//     publishes a fresh snapshot; RootStore::epoch() (bumped by every
//     mutation, including RSF delta application) keys the verdict cache,
//     so a feed update invalidates stale verdicts for free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "chain/verifier.hpp"
#include "datalog/eval.hpp"
#include "rootstore/snapshot/view.hpp"
#include "util/metrics.hpp"
#include "util/sharded_cache.hpp"
#include "util/threadpool.hpp"

namespace anchor::chain {

struct ServiceConfig {
  std::size_t threads = 4;             // worker pool size
  std::size_t verdict_capacity = 8192; // GCC-verdict cache entries
  std::size_t cert_capacity = 4096;    // parsed-certificate cache entries
  std::size_t shards = 16;             // lock stripes per cache
};

// Point-in-time counter snapshot; see VerifyService::stats().
struct ServiceStats {
  std::uint64_t verdict_hits = 0;
  std::uint64_t verdict_misses = 0;
  std::uint64_t cert_hits = 0;
  std::uint64_t cert_misses = 0;
  std::uint64_t evictions = 0;       // both caches, all shards
  std::uint64_t verdict_bypass = 0;  // context-carrying verifies (uncacheable)
  std::uint64_t epoch_flushes = 0;   // snapshots published after a mutation
  std::uint64_t stale_purged = 0;    // verdict entries dropped by flushes
  std::uint64_t calls = 0;           // verify + evaluate_gccs + validate
  std::uint64_t total_ns = 0;        // wall time summed over calls
  std::size_t queue_depth = 0;       // pool backlog at snapshot time
  std::uint64_t epoch = 0;           // store epoch at snapshot time
};

class VerifyService {
 public:
  // The service copies `store` into an immutable snapshot at construction;
  // afterwards the live store must only change through mutate(), which is
  // what keeps concurrent verification TSan-clean. `scheme` must outlive
  // the service and is read-only after key registration.
  // `registry` receives the service's metric series (anchor_verify_*,
  // anchor_store_*); tests pass a private Registry for isolation.
  VerifyService(rootstore::RootStore& store, const SignatureScheme& scheme,
                ServiceConfig config = {},
                metrics::Registry& registry = metrics::Registry::global());
  ~VerifyService();

  VerifyService(const VerifyService&) = delete;
  VerifyService& operator=(const VerifyService&) = delete;

  // Synchronous verification on the calling thread (thread-safe; any
  // number of callers). If `observed_epoch` is non-null it receives the
  // store epoch the verdict was computed under — the stress tests replay
  // results against a cold verifier at exactly that epoch.
  VerifyResult verify(const x509::CertPtr& leaf, const CertificatePool& pool,
                      const VerifyOptions& options,
                      std::uint64_t* observed_epoch = nullptr);

  // Async submission onto the worker pool. The task shares ownership of
  // `pool`, so the caller may drop its reference (or destroy its last
  // shared_ptr) before the future resolves — the pool lives until the
  // worker is done with it. The pool must still not be *mutated* while the
  // future is outstanding; the pointee is const for exactly that reason.
  std::future<VerifyResult> submit(x509::CertPtr leaf,
                                   std::shared_ptr<const CertificatePool> pool,
                                   VerifyOptions options);

  // Fans a batch across the pool and gathers results in input order.
  std::vector<VerifyResult> verify_batch(
      std::span<const x509::CertPtr> leaves, const CertificatePool& pool,
      const VerifyOptions& options);

  // DER-boundary entry points mirroring the anchord IPC surface (§3.1
  // options 2 and 3); both run through the parsed-certificate cache.
  bool evaluate_gccs(std::span<const Bytes> chain_der, std::string_view usage);

  // Classified form of evaluate_gccs: the wire layer needs to distinguish
  // "malformed DER" (kMalformedRequest) from "a GCC denied" (kGccDenied,
  // detail = the failing constraint's name) — the bare Boolean cannot.
  struct GccsOutcome {
    bool allowed = false;
    ErrorKind kind = ErrorKind::kOk;
    std::string detail;
    core::GccVerdict verdict;
  };
  GccsOutcome evaluate_gccs_detail(std::span<const Bytes> chain_der,
                                   std::string_view usage);

  VerifyResult validate(const Bytes& leaf_der,
                        std::span<const Bytes> intermediates_der,
                        const VerifyOptions& options);

  // Batch form of validate() for anchord's kVerifyBatch verb: N leaves that
  // share one intermediate pool, one usage, and one options block (only the
  // hostname varies per entry; hostnames[i] pairs with leaf_ders[i] and
  // `hostnames` may be empty to reuse options.hostname throughout). The
  // batch runs sequentially on the calling thread so every chain hits the
  // same thread-local Datalog interning arena, and the shared intermediates
  // are parsed once, not once per chain. A malformed leaf fails only its
  // own entry; a malformed shared intermediate fails every entry.
  std::vector<VerifyResult> validate_batch(
      std::span<const Bytes> leaf_ders, std::span<const std::string> hostnames,
      std::span<const Bytes> intermediates_der, const VerifyOptions& options);

  // Runs `fn` on the live store under the exclusive mutation lock, then
  // publishes a fresh snapshot and flushes verdicts cached under prior
  // epochs. The epoch is forced to advance even if `fn` made a change the
  // store did not count, so a published snapshot is never cache-aliased
  // with its predecessor. If the current snapshot is view-backed (see
  // adopt_view), the live store is first rebuilt from the view so the
  // mutation applies to what is actually being served.
  void mutate(const std::function<void(rootstore::RootStore&)>& fn);

  // Atomically swaps the served snapshot to an mmap-backed StoreView — no
  // deep copy, no reparse, no GCC recompile; in-flight verifications keep
  // the previous snapshot (and the previous mapping) alive until they
  // drain. The published epoch is max(view->epoch(), current + 1): a view
  // is a wholesale replacement, so even one whose own counter lags must
  // never alias the predecessor in the verdict cache.
  void adopt_view(std::shared_ptr<const rootstore::snapshot::StoreView> view);

  // Registers a revocation source on the service. The source is applied to
  // the verifier of every subsequently published snapshot — including the
  // one this call republishes immediately, so registration takes effect
  // without waiting for the next mutation. Sources registered here are
  // service-local and compose with the store-distributed filter
  // (StoreReader::revocation_filter()), which the ChainVerifier registers
  // on its own.
  void add_revocation_source(
      std::shared_ptr<const revocation::Provider> provider);

  // Epoch of the currently-published snapshot.
  std::uint64_t epoch() const;

  ServiceStats stats() const;

 private:
  struct Snapshot;

  struct VerdictKey {
    std::uint64_t epoch;
    std::string root_hash;   // hex fingerprint of the candidate root
    std::string chain_fp;    // hex SHA-256 over the chain's DER, leaf-first
    std::string usage;
    bool operator==(const VerdictKey&) const = default;
  };
  struct VerdictKeyHash {
    std::size_t operator()(const VerdictKey& key) const;
  };
  // What the gcc hook needs to replay a verdict without re-evaluating.
  // `stats` rides along so a cache hit accumulates the same evaluator
  // accounting the original miss did — hit and miss paths must be
  // observationally identical to the caller.
  struct CachedVerdict {
    bool allowed = true;
    std::string failed_gcc;
    std::size_t gccs_evaluated = 0;
    std::size_t facts_encoded = 0;
    datalog::EvalStats stats;
  };

  std::shared_ptr<const Snapshot> current_snapshot() const;
  std::shared_ptr<const Snapshot> build_snapshot();
  void attach_hook(const std::shared_ptr<Snapshot>& snapshot);
  // Publishes `fresh` (store_mu_ must be held by the caller's scope exit)
  // and flushes verdict-cache entries from prior epochs.
  void publish(std::shared_ptr<const Snapshot> fresh,
               std::unique_lock<std::mutex> lock);
  Result<x509::CertPtr> parse_cached(BytesView der);
  VerifyResult verify_on(const Snapshot& snapshot, const x509::CertPtr& leaf,
                         const CertificatePool& pool,
                         const VerifyOptions& options);

  rootstore::RootStore& store_;
  const SignatureScheme& scheme_;
  ServiceConfig config_;

  // Applied (in registration order) to every snapshot's verifier at build
  // time; guarded by store_mu_ like the snapshot itself.
  std::vector<std::shared_ptr<const revocation::Provider>> revocation_sources_;

  // Guards the live store and snapshot publication; never held while a
  // verification is running.
  mutable std::mutex store_mu_;
  std::shared_ptr<const Snapshot> snapshot_;

  ShardedLruCache<VerdictKey, CachedVerdict, VerdictKeyHash> verdict_cache_;
  ShardedLruCache<std::string, x509::CertPtr> cert_cache_;
  ThreadPool pool_;

  // Counters are plain atomics: hot-path increments, no locks.
  std::atomic<std::uint64_t> verdict_hits_{0};
  std::atomic<std::uint64_t> verdict_misses_{0};
  std::atomic<std::uint64_t> cert_hits_{0};
  std::atomic<std::uint64_t> cert_misses_{0};
  std::atomic<std::uint64_t> verdict_bypass_{0};
  std::atomic<std::uint64_t> epoch_flushes_{0};
  std::atomic<std::uint64_t> stale_purged_{0};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> total_ns_{0};

  // Registry series, resolved once at construction so hot paths touch only
  // the cached references (registration locks, increments don't).
  metrics::Registry& registry_;
  metrics::Counter& m_verdict_hit_;
  metrics::Counter& m_verdict_miss_;
  metrics::Counter& m_cert_hit_;
  metrics::Counter& m_cert_miss_;
  metrics::Counter& m_verdict_bypass_;
  metrics::Counter& m_calls_;
  metrics::Counter& m_epoch_flushes_;
  metrics::Counter& m_stale_purged_;
  metrics::Histogram& m_latency_;
  metrics::Gauge& m_queue_depth_;
  metrics::Gauge& m_epoch_;
};

}  // namespace anchor::chain
