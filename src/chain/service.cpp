#include "chain/service.hpp"

#include <algorithm>
#include <chrono>

#include "util/sha256.hpp"

namespace anchor::chain {

namespace {

// SHA-256 over the DER path, leaf-first. Length-prefixing each element
// keeps concatenation unambiguous (two different splits of the same byte
// stream cannot collide).
std::string chain_fingerprint(const core::Chain& chain) {
  Sha256 hasher;
  for (const x509::CertPtr& cert : chain) {
    const Bytes& der = cert->der();
    std::uint64_t len = der.size();
    std::uint8_t prefix[8];
    for (int i = 0; i < 8; ++i) prefix[i] = static_cast<std::uint8_t>(len >> (8 * i));
    hasher.update(BytesView(prefix, sizeof prefix));
    hasher.update(BytesView(der));
  }
  const Sha256::Digest digest = hasher.finish();
  return to_hex(BytesView(digest));
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::size_t VerifyService::VerdictKeyHash::operator()(
    const VerdictKey& key) const {
  std::size_t h = std::hash<std::string>{}(key.chain_fp);
  h ^= std::hash<std::string>{}(key.root_hash) + 0x9e3779b97f4a7c15ULL +
       (h << 6) + (h >> 2);
  h ^= std::hash<std::string>{}(key.usage) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  h ^= std::hash<std::uint64_t>{}(key.epoch) + 0x9e3779b97f4a7c15ULL +
       (h << 6) + (h >> 2);
  return h;
}

// Immutable verification context: either a deep copy of the live store
// (mutate path) or a shared mmap-backed StoreView (adopt_view path), plus
// a verifier bound to whichever one `reader` points at. Heap-allocated and
// reference-counted so in-flight verifications keep "their" snapshot —
// including the underlying mapping, in view mode — alive across a
// concurrent swap; the verifier member must never outlive the store/view
// members, which member ordering guarantees.
struct VerifyService::Snapshot {
  rootstore::RootStore store;  // heap mode; empty in view mode
  std::shared_ptr<const rootstore::snapshot::StoreView> view;  // view mode
  const rootstore::StoreReader* reader;  // whichever of the two serves
  std::uint64_t epoch;
  core::GccExecutor executor;
  ChainVerifier verifier;

  Snapshot(const rootstore::RootStore& source, const SignatureScheme& scheme,
           metrics::Registry& registry)
      : store(source),
        reader(&store),
        epoch(store.epoch()),
        executor(datalog::Strategy::kSemiNaive, registry),
        verifier(store, scheme) {}

  // `effective_epoch` may exceed the view's own counter: a view adoption
  // is a wholesale replacement, so the published epoch is forced past the
  // predecessor's (see VerifyService::adopt_view).
  Snapshot(std::shared_ptr<const rootstore::snapshot::StoreView> source,
           std::uint64_t effective_epoch, const SignatureScheme& scheme,
           metrics::Registry& registry)
      : view(std::move(source)),
        reader(view.get()),
        epoch(effective_epoch),
        executor(datalog::Strategy::kSemiNaive, registry),
        verifier(*view, scheme) {}

  // Shared across threads read-only except via the gcc hook, whose only
  // mutable state is the service's striped caches and atomics. Calls that
  // carry chain-external context facts bypass the verdict cache entirely:
  // the cache key covers only (epoch, root, chain, usage), so a verdict
  // that also depended on caller-supplied context would be unsound to
  // memoize or to replay for a caller with different context.
  bool evaluate_gccs(VerifyService& service, const core::Chain& chain,
                     std::string_view usage, std::span<const core::Gcc> gccs,
                     const core::FactSet* context,
                     core::GccVerdict& verdict) const {
    if (context != nullptr) {
      // Deliberate bypass, but a silent one until it was counted: a fleet
      // whose callers all pass context sees hits+misses flatline while
      // evaluation cost climbs, and nothing explained where the work went.
      service.verdict_bypass_.fetch_add(1, std::memory_order_relaxed);
      service.m_verdict_bypass_.add();
      core::GccVerdict v = executor.evaluate(chain, usage, gccs, context);
      verdict.gccs_evaluated += v.gccs_evaluated;
      verdict.facts_encoded += v.facts_encoded;
      verdict.stats.accumulate(v.stats);
      if (!v.allowed) verdict.failed_gcc = v.failed_gcc;
      return v.allowed;
    }
    VerdictKey key{epoch, chain.back()->fingerprint_hex(),
                   chain_fingerprint(chain), std::string(usage)};
    CachedVerdict cached;
    if (service.verdict_cache_.get(key, cached)) {
      service.verdict_hits_.fetch_add(1, std::memory_order_relaxed);
      service.m_verdict_hit_.add();
      verdict.gccs_evaluated += cached.gccs_evaluated;
      verdict.facts_encoded += cached.facts_encoded;
      // Replay the evaluator accounting captured at miss time: a caller
      // must not be able to tell a hit from a miss by looking at stats.
      verdict.stats.accumulate(cached.stats);
      if (!cached.allowed) verdict.failed_gcc = cached.failed_gcc;
      return cached.allowed;
    }
    service.verdict_misses_.fetch_add(1, std::memory_order_relaxed);
    service.m_verdict_miss_.add();
    core::GccVerdict v = executor.evaluate(chain, usage, gccs);
    verdict.gccs_evaluated += v.gccs_evaluated;
    verdict.facts_encoded += v.facts_encoded;
    verdict.stats.accumulate(v.stats);
    if (!v.allowed) verdict.failed_gcc = v.failed_gcc;
    service.verdict_cache_.put(
        key, CachedVerdict{v.allowed, v.failed_gcc, v.gccs_evaluated,
                           v.facts_encoded, v.stats});
    return v.allowed;
  }
};

VerifyService::VerifyService(rootstore::RootStore& store,
                             const SignatureScheme& scheme,
                             ServiceConfig config, metrics::Registry& registry)
    : store_(store),
      scheme_(scheme),
      config_(config),
      verdict_cache_(config.verdict_capacity, config.shards),
      cert_cache_(config.cert_capacity, config.shards),
      pool_(config.threads),
      registry_(registry),
      m_verdict_hit_(registry.counter("anchor_verify_cache_total",
                                      {{"cache", "verdict"},
                                       {"result", "hit"}})),
      m_verdict_miss_(registry.counter("anchor_verify_cache_total",
                                       {{"cache", "verdict"},
                                        {"result", "miss"}})),
      m_cert_hit_(registry.counter("anchor_verify_cache_total",
                                   {{"cache", "cert"}, {"result", "hit"}})),
      m_cert_miss_(registry.counter("anchor_verify_cache_total",
                                    {{"cache", "cert"}, {"result", "miss"}})),
      m_verdict_bypass_(registry.counter("anchor_verify_cache_bypass_total")),
      m_calls_(registry.counter("anchor_verify_calls_total")),
      m_epoch_flushes_(registry.counter("anchor_verify_epoch_flushes_total")),
      m_stale_purged_(registry.counter("anchor_verify_stale_purged_total")),
      m_latency_(registry.histogram("anchor_verify_latency_seconds")),
      m_queue_depth_(registry.gauge("anchor_verify_queue_depth")),
      m_epoch_(registry.gauge("anchor_verify_epoch")) {
  std::lock_guard<std::mutex> lock(store_mu_);
  snapshot_ = build_snapshot();
  m_epoch_.set(static_cast<std::int64_t>(snapshot_->epoch));
  rootstore::export_store_metrics(*snapshot_->reader, registry_);
}

VerifyService::~VerifyService() = default;

void VerifyService::attach_hook(const std::shared_ptr<Snapshot>& snapshot) {
  const Snapshot* raw = snapshot.get();
  snapshot->verifier.set_gcc_hook(
      [this, raw](const core::Chain& chain, std::string_view usage,
                  std::span<const core::Gcc> gccs,
                  const core::FactSet* context, core::GccVerdict& verdict) {
        return raw->evaluate_gccs(*this, chain, usage, gccs, context, verdict);
      });
}

std::shared_ptr<const VerifyService::Snapshot> VerifyService::build_snapshot() {
  auto snapshot = std::make_shared<Snapshot>(store_, scheme_, registry_);
  attach_hook(snapshot);
  for (const auto& source : revocation_sources_) {
    snapshot->verifier.add_revocation_source(source);
  }
  return snapshot;
}

std::shared_ptr<const VerifyService::Snapshot> VerifyService::current_snapshot()
    const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return snapshot_;
}

std::uint64_t VerifyService::epoch() const { return current_snapshot()->epoch; }

void VerifyService::publish(std::shared_ptr<const Snapshot> fresh,
                            std::unique_lock<std::mutex> lock) {
  const std::uint64_t fresh_epoch = fresh->epoch;
  m_epoch_.set(static_cast<std::int64_t>(fresh_epoch));
  rootstore::export_store_metrics(*fresh->reader, registry_);
  snapshot_ = std::move(fresh);
  lock.unlock();
  epoch_flushes_.fetch_add(1, std::memory_order_relaxed);
  m_epoch_flushes_.add();
  // Entries under prior epochs are unreachable (lookups key on the current
  // epoch); reclaim their slots eagerly.
  const std::size_t purged = verdict_cache_.erase_if(
      [fresh_epoch](const VerdictKey& key) { return key.epoch != fresh_epoch; });
  stale_purged_.fetch_add(purged, std::memory_order_relaxed);
  m_stale_purged_.add(purged);
}

void VerifyService::mutate(
    const std::function<void(rootstore::RootStore&)>& fn) {
  std::unique_lock<std::mutex> lock(store_mu_);
  const std::uint64_t prior = snapshot_->epoch;
  if (snapshot_->view != nullptr) {
    // The service is serving an adopted view; the caller's live store may
    // be arbitrarily stale. Rebuild it from the view (same content, same
    // order, same epoch) so the mutation applies to what is served.
    store_ = snapshot_->view->materialize();
  }
  fn(store_);
  // Even a mutation the store failed to count must not alias the previous
  // snapshot in the verdict cache. `prior` is the *published* epoch, which
  // in view mode can sit above the store's own counter.
  store_.advance_epoch_past(prior);
  publish(build_snapshot(), std::move(lock));
}

void VerifyService::adopt_view(
    std::shared_ptr<const rootstore::snapshot::StoreView> view) {
  std::unique_lock<std::mutex> lock(store_mu_);
  // Never move backwards and never alias the predecessor, even when the
  // view was written at an epoch at or below the one being served.
  const std::uint64_t effective =
      std::max(view->epoch(), snapshot_->epoch + 1);
  auto fresh =
      std::make_shared<Snapshot>(std::move(view), effective, scheme_, registry_);
  attach_hook(fresh);
  for (const auto& source : revocation_sources_) {
    fresh->verifier.add_revocation_source(source);
  }
  publish(std::move(fresh), std::move(lock));
}

void VerifyService::add_revocation_source(
    std::shared_ptr<const revocation::Provider> provider) {
  if (provider == nullptr) return;
  std::unique_lock<std::mutex> lock(store_mu_);
  revocation_sources_.push_back(std::move(provider));
  const std::uint64_t prior = snapshot_->epoch;
  if (snapshot_->view != nullptr) {
    // Republish the same view with the new source attached. The epoch still
    // advances: revocation answers changed, so verdicts computed under the
    // prior snapshot must not be replayed against this one. (The GCC
    // verdict cache would in fact stay sound — GCCs never see revocation —
    // but a non-aliasing epoch keeps the invariant simple: one published
    // snapshot, one epoch.)
    auto view = snapshot_->view;
    auto fresh =
        std::make_shared<Snapshot>(std::move(view), prior + 1, scheme_,
                                   registry_);
    attach_hook(fresh);
    for (const auto& source : revocation_sources_) {
      fresh->verifier.add_revocation_source(source);
    }
    publish(std::move(fresh), std::move(lock));
    return;
  }
  store_.advance_epoch_past(prior);
  publish(build_snapshot(), std::move(lock));
}

VerifyResult VerifyService::verify_on(const Snapshot& snapshot,
                                      const x509::CertPtr& leaf,
                                      const CertificatePool& pool,
                                      const VerifyOptions& options) {
  const std::uint64_t start = now_ns();
  VerifyResult result = snapshot.verifier.verify(leaf, pool, options);
  const std::uint64_t elapsed = now_ns() - start;
  calls_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(elapsed, std::memory_order_relaxed);
  m_calls_.add();
  m_latency_.observe(static_cast<double>(elapsed) * 1e-9);
  return result;
}

VerifyResult VerifyService::verify(const x509::CertPtr& leaf,
                                   const CertificatePool& pool,
                                   const VerifyOptions& options,
                                   std::uint64_t* observed_epoch) {
  std::shared_ptr<const Snapshot> snapshot = current_snapshot();
  if (observed_epoch != nullptr) *observed_epoch = snapshot->epoch;
  return verify_on(*snapshot, leaf, pool, options);
}

std::future<VerifyResult> VerifyService::submit(
    x509::CertPtr leaf, std::shared_ptr<const CertificatePool> pool,
    VerifyOptions options) {
  auto task = std::make_shared<std::packaged_task<VerifyResult()>>(
      [this, leaf = std::move(leaf), pool = std::move(pool),
       options = std::move(options)] { return verify(leaf, *pool, options); });
  std::future<VerifyResult> future = task->get_future();
  pool_.post([task] { (*task)(); });
  return future;
}

std::vector<VerifyResult> VerifyService::verify_batch(
    std::span<const x509::CertPtr> leaves, const CertificatePool& pool,
    const VerifyOptions& options) {
  // Non-owning alias: safe because every future is joined before return,
  // so no task outlives the caller's `pool` reference.
  std::shared_ptr<const CertificatePool> alias(
      std::shared_ptr<const CertificatePool>{}, &pool);
  std::vector<std::future<VerifyResult>> futures;
  futures.reserve(leaves.size());
  for (const x509::CertPtr& leaf : leaves) {
    futures.push_back(submit(leaf, alias, options));
  }
  std::vector<VerifyResult> results;
  results.reserve(leaves.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

Result<x509::CertPtr> VerifyService::parse_cached(BytesView der) {
  const std::string key = Sha256::hash_hex(der);
  x509::CertPtr cached;
  if (cert_cache_.get(key, cached)) {
    cert_hits_.fetch_add(1, std::memory_order_relaxed);
    m_cert_hit_.add();
    return cached;
  }
  cert_misses_.fetch_add(1, std::memory_order_relaxed);
  m_cert_miss_.add();
  auto parsed = x509::Certificate::parse(der);
  if (!parsed) return parsed;
  cert_cache_.put(key, parsed.value());
  return parsed;
}

bool VerifyService::evaluate_gccs(std::span<const Bytes> chain_der,
                                  std::string_view usage) {
  return evaluate_gccs_detail(chain_der, usage).allowed;
}

VerifyService::GccsOutcome VerifyService::evaluate_gccs_detail(
    std::span<const Bytes> chain_der, std::string_view usage) {
  const std::uint64_t start = now_ns();
  std::shared_ptr<const Snapshot> snapshot = current_snapshot();
  GccsOutcome outcome;
  const auto finish = [&](GccsOutcome out) {
    const std::uint64_t elapsed = now_ns() - start;
    calls_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(elapsed, std::memory_order_relaxed);
    m_calls_.add();
    m_latency_.observe(static_cast<double>(elapsed) * 1e-9);
    return out;
  };
  core::Chain chain;
  chain.reserve(chain_der.size());
  for (const Bytes& der : chain_der) {
    auto cert = parse_cached(BytesView(der));
    if (!cert) {  // malformed input across IPC: reject
      outcome.kind = ErrorKind::kMalformedRequest;
      outcome.detail = cert.error();
      return finish(std::move(outcome));
    }
    chain.push_back(std::move(cert).take());
  }
  if (chain.empty()) {
    outcome.kind = ErrorKind::kMalformedRequest;
    outcome.detail = "empty certificate chain";
    return finish(std::move(outcome));
  }
  outcome.allowed = true;
  const auto gccs =
      snapshot->reader->gccs_for_root(chain.back()->fingerprint_hex());
  if (!gccs.empty()) {
    outcome.allowed = snapshot->evaluate_gccs(*this, chain, usage, gccs,
                                              nullptr, outcome.verdict);
    if (!outcome.allowed) {
      outcome.kind = ErrorKind::kGccDenied;
      outcome.detail = "gcc:" + outcome.verdict.failed_gcc;
    }
  }
  return finish(std::move(outcome));
}

VerifyResult VerifyService::validate(const Bytes& leaf_der,
                                     std::span<const Bytes> intermediates_der,
                                     const VerifyOptions& options) {
  std::shared_ptr<const Snapshot> snapshot = current_snapshot();
  VerifyResult failure;
  failure.kind = ErrorKind::kMalformedRequest;
  auto leaf = parse_cached(BytesView(leaf_der));
  if (!leaf) {
    failure.error = "daemon: " + leaf.error();
    return failure;
  }
  CertificatePool pool;
  for (const Bytes& der : intermediates_der) {
    auto cert = parse_cached(BytesView(der));
    if (!cert) {
      failure.error = "daemon: " + cert.error();
      return failure;
    }
    pool.add(std::move(cert).take());
  }
  return verify_on(*snapshot, leaf.value(), pool, options);
}

std::vector<VerifyResult> VerifyService::validate_batch(
    std::span<const Bytes> leaf_ders, std::span<const std::string> hostnames,
    std::span<const Bytes> intermediates_der, const VerifyOptions& options) {
  std::shared_ptr<const Snapshot> snapshot = current_snapshot();
  std::vector<VerifyResult> results(leaf_ders.size());

  // Parse the shared intermediates once for the whole batch. A malformed
  // shared intermediate poisons every entry: the caller vouched for one
  // pool, so no chain built from it can be trusted.
  CertificatePool pool;
  for (const Bytes& der : intermediates_der) {
    auto cert = parse_cached(BytesView(der));
    if (!cert) {
      for (VerifyResult& result : results) {
        result.kind = ErrorKind::kMalformedRequest;
        result.error = "daemon: " + cert.error();
      }
      return results;
    }
    pool.add(std::move(cert).take());
  }

  // Sequential on purpose: one thread means one thread-local Datalog
  // interning arena shared by every chain in the batch.
  for (std::size_t i = 0; i < leaf_ders.size(); ++i) {
    auto leaf = parse_cached(BytesView(leaf_ders[i]));
    if (!leaf) {
      results[i].kind = ErrorKind::kMalformedRequest;
      results[i].error = "daemon: " + leaf.error();
      continue;
    }
    VerifyOptions entry_options = options;
    if (i < hostnames.size()) entry_options.hostname = hostnames[i];
    results[i] = verify_on(*snapshot, leaf.value(), pool, entry_options);
  }
  return results;
}

ServiceStats VerifyService::stats() const {
  ServiceStats out;
  out.verdict_hits = verdict_hits_.load(std::memory_order_relaxed);
  out.verdict_misses = verdict_misses_.load(std::memory_order_relaxed);
  out.cert_hits = cert_hits_.load(std::memory_order_relaxed);
  out.cert_misses = cert_misses_.load(std::memory_order_relaxed);
  out.verdict_bypass = verdict_bypass_.load(std::memory_order_relaxed);
  out.evictions = verdict_cache_.evictions() + cert_cache_.evictions();
  out.epoch_flushes = epoch_flushes_.load(std::memory_order_relaxed);
  out.stale_purged = stale_purged_.load(std::memory_order_relaxed);
  out.calls = calls_.load(std::memory_order_relaxed);
  out.total_ns = total_ns_.load(std::memory_order_relaxed);
  out.queue_depth = pool_.queue_depth();
  out.epoch = current_snapshot()->epoch;
  m_queue_depth_.set(static_cast<std::int64_t>(out.queue_depth));
  return out;
}

}  // namespace anchor::chain
