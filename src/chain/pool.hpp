// Certificate pool: the bag of candidate intermediates available during
// path construction (what a TLS server sends alongside its leaf, plus any
// cached intermediates). Indexed by subject DN for issuer lookups.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "x509/certificate.hpp"

namespace anchor::chain {

class CertificatePool {
 public:
  void add(x509::CertPtr cert);
  void add_all(const std::vector<x509::CertPtr>& certs);

  // Certificates whose subject DN renders equal to `subject` — candidate
  // issuers for a certificate with that issuer DN.
  const std::vector<x509::CertPtr>& by_subject(
      const x509::DistinguishedName& subject) const;

  std::size_t size() const { return size_; }

 private:
  std::unordered_map<std::string, std::vector<x509::CertPtr>> by_subject_;
  std::size_t size_ = 0;
};

}  // namespace anchor::chain
