// Certificate pool: the bag of candidate intermediates available during
// path construction (what a TLS server sends alongside its leaf, plus any
// cached intermediates). Since the cross-signing redesign the pool *is* the
// certificate graph — same add/by_subject/size surface, plus logical-CA
// nodes keyed by (subject DN, SPKI). See graph.hpp.
#pragma once

#include "chain/graph.hpp"

namespace anchor::chain {

using CertificatePool = CertificateGraph;

}  // namespace anchor::chain
