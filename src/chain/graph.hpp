// Certificate graph: the pool of candidate issuers promoted to a real
// graph over *logical CAs*. Cross-signing gives one CA several certificates
// — same subject DN, same key, different issuers (Boon and Bane of
// Cross-Signing, PAPERS.md) — so nodes are keyed by (subject DN, SPKI):
// every certificate for the same CA collapses into one node whose member
// certificates are the distinct parent edges path search may follow.
//
// Two read surfaces:
//   * by_subject(dn)        — flat per-subject certificate list (insertion
//                             order), the original pool API; still what the
//                             policy verifier and benches enumerate.
//   * nodes_for_subject(dn) — logical-CA nodes in first-seen order; the
//                             verifier's graph walk iterates these so the
//                             bane check (a node containing an explicitly
//                             distrusted certificate poisons *all* paths
//                             through that CA) happens once per logical CA,
//                             not once per cross-sign.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "rootstore/store.hpp"
#include "x509/certificate.hpp"

namespace anchor::chain {

// One logical CA: every pooled certificate sharing (subject DN, SPKI).
struct GraphNode {
  std::string subject;               // rendered subject DN
  Bytes spki;                        // the CA's public key
  std::vector<x509::CertPtr> certs;  // member certs, insertion order
};

class CertificateGraph {
 public:
  void add(x509::CertPtr cert);
  void add_all(const std::vector<x509::CertPtr>& certs);

  // Certificates whose subject DN renders equal to `subject` — candidate
  // issuers for a certificate with that issuer DN, in insertion order.
  const std::vector<x509::CertPtr>& by_subject(
      const x509::DistinguishedName& subject) const;

  // Logical-CA nodes for that subject DN, in first-seen order. Node
  // pointers stay valid across add() (deque-backed).
  std::vector<const GraphNode*> nodes_for_subject(
      const x509::DistinguishedName& subject) const;

  // The node `cert` belongs to, or nullptr if it was never added.
  const GraphNode* node_of(const x509::Certificate& cert) const;

  std::size_t size() const { return size_; }          // certificates
  std::size_t node_count() const { return nodes_.size(); }  // logical CAs

 private:
  static std::string node_key(const x509::Certificate& cert);

  struct SubjectBucket {
    std::vector<x509::CertPtr> certs;   // flat pool-compatible view
    std::vector<std::size_t> nodes;     // indices into nodes_, first-seen order
  };

  // Indices (not pointers) into nodes_: the graph stays trivially copyable
  // and movable — a copied graph's index tables refer into its own deque,
  // where copied pointers would dangle into the source's.
  std::deque<GraphNode> nodes_;  // stable addresses across add()
  std::unordered_map<std::string, std::size_t> node_by_key_;
  std::unordered_map<std::string, SubjectBucket> by_subject_;
  std::size_t size_ = 0;
};

// The bane check: a logical CA is poisoned when any of its member
// certificates is explicitly distrusted by the store — trust in the *key*
// was withdrawn, so a cross-signed sibling certificate must not resurrect
// it. Returns the first distrusted member (for diagnostics), or nullptr.
const x509::CertPtr* distrusted_member(const GraphNode& node,
                                       const rootstore::StoreReader& store);

}  // namespace anchor::chain
