#include "chain/verifier.hpp"

#include <unordered_set>

#include "x509/oids.hpp"

namespace anchor::chain {

const char* usage_name(Usage usage) {
  return usage == Usage::kTls ? core::kUsageTls : core::kUsageSmime;
}

ChainVerifier::ChainVerifier(const rootstore::StoreReader& store,
                             const SignatureScheme& scheme)
    : store_(store), scheme_(scheme) {
  gcc_hook_ = [this](const core::Chain& chain, std::string_view usage,
                     std::span<const core::Gcc> gccs,
                     const core::FactSet* context,
                     core::GccVerdict& verdict) {
    core::GccVerdict v = executor_.evaluate(chain, usage, gccs, context);
    verdict.gccs_evaluated += v.gccs_evaluated;
    verdict.facts_encoded += v.facts_encoded;
    verdict.stats.accumulate(v.stats);
    if (!v.allowed) verdict.failed_gcc = v.failed_gcc;
    return v.allowed;
  };
}

struct ChainVerifier::SearchState {
  core::Chain path;  // leaf-first
  std::unordered_set<std::string> visited;
  const CertificatePool* pool = nullptr;
};

namespace {

// nullopt = pass; otherwise the classified rejection.
std::optional<Fault> fault(ErrorKind kind, std::string detail) {
  return Fault{kind, std::move(detail)};
}

// Leaf-only checks, independent of the path taken.
std::optional<Fault> check_leaf(const x509::Certificate& leaf,
                                const VerifyOptions& options) {
  if (!leaf.valid_at(options.time)) {
    return fault(ErrorKind::kExpired, "leaf outside validity window");
  }
  if (options.usage == Usage::kTls) {
    if (!options.hostname.empty() && !leaf.matches_host(options.hostname)) {
      return fault(ErrorKind::kHostnameMismatch,
                   "leaf does not match hostname " + options.hostname);
    }
    if (leaf.extended_key_usage() &&
        !leaf.extended_key_usage()->has(x509::oids::kp_server_auth())) {
      return fault(ErrorKind::kUsageViolation, "leaf EKU lacks id-kp-serverAuth");
    }
  } else {
    if (leaf.extended_key_usage() &&
        !leaf.extended_key_usage()->has(x509::oids::kp_email_protection())) {
      return fault(ErrorKind::kUsageViolation,
                   "leaf EKU lacks id-kp-emailProtection");
    }
  }
  if (options.require_ev && !leaf.is_ev()) {
    return fault(ErrorKind::kUsageViolation,
                 "EV required but leaf carries no EV policy");
  }
  return std::nullopt;
}

std::string path_label(const core::Chain& chain) {
  std::string out;
  for (const auto& cert : chain) {
    if (!out.empty()) out += " <- ";
    out += cert->subject().common_name();
  }
  return out;
}

}  // namespace

std::optional<Fault> ChainVerifier::check_link(
    const x509::Certificate& child, const x509::Certificate& issuer,
    std::size_t child_depth, const VerifyOptions& options) const {
  if (!issuer.valid_at(options.time)) {
    return fault(ErrorKind::kExpired, "issuer '" +
                                          issuer.subject().common_name() +
                                          "' outside validity window");
  }
  if (!issuer.is_ca()) {
    return fault(ErrorKind::kConstraintViolation,
                 "issuer '" + issuer.subject().common_name() + "' is not a CA");
  }
  if (issuer.key_usage() &&
      !issuer.key_usage()->has(x509::KeyUsageBit::kKeyCertSign)) {
    return fault(ErrorKind::kConstraintViolation,
                 "issuer '" + issuer.subject().common_name() +
                     "' lacks keyCertSign");
  }
  // pathLenConstraint: at most path_len CA certificates may sit strictly
  // between this issuer and the leaf. `child_depth` is the index of `child`
  // in the leaf-first path, which equals the number of certificates below
  // the issuer excluding the leaf (indices 1..child_depth are CAs, index 0
  // is the leaf).
  if (auto plen = issuer.path_len()) {
    std::size_t intermediates_below = child_depth;
    if (intermediates_below > static_cast<std::size_t>(*plen)) {
      return fault(ErrorKind::kConstraintViolation,
                   "issuer '" + issuer.subject().common_name() +
                       "' pathLenConstraint exceeded");
    }
  }
  if (options.check_signatures &&
      !scheme_.verify(BytesView(issuer.public_key()),
                      BytesView(child.tbs_der()),
                      BytesView(child.signature()))) {
    return fault(ErrorKind::kBadSignature,
                 "signature of '" + child.subject().common_name() +
                     "' does not verify under '" +
                     issuer.subject().common_name() + "'");
  }
  // Push-based revocation (CRLSet/OneCRL), applied per link now that the
  // issuer — and thus its SPKI — is known.
  if (crlset_ != nullptr &&
      crlset_->is_revoked(child, BytesView(issuer.public_key()))) {
    return fault(ErrorKind::kRevoked, "'" + child.subject().common_name() +
                                          "' is revoked (CRLSet)");
  }
  if (onecrl_ != nullptr && onecrl_->is_revoked(child)) {
    return fault(ErrorKind::kRevoked, "'" + child.subject().common_name() +
                                          "' is revoked (OneCRL)");
  }
  return std::nullopt;
}

std::optional<Fault> ChainVerifier::check_at_root(
    const core::Chain& chain, const rootstore::RootEntry& root_entry,
    const VerifyOptions& options, VerifyResult& result) const {
  const x509::Certificate& leaf = *chain.front();
  const rootstore::RootMetadata& metadata = root_entry.metadata;
  if (options.usage == Usage::kTls && metadata.tls_distrust_after &&
      leaf.not_before() >= *metadata.tls_distrust_after) {
    return fault(ErrorKind::kUsageViolation,
                 "tls-distrust-after: leaf issued past the trust cutoff");
  }
  if (options.usage == Usage::kSmime && metadata.smime_distrust_after &&
      leaf.not_before() >= *metadata.smime_distrust_after) {
    return fault(ErrorKind::kUsageViolation,
                 "smime-distrust-after: leaf issued past the trust cutoff");
  }
  if (options.require_ev && !metadata.ev_allowed) {
    return fault(ErrorKind::kUsageViolation,
                 "EV required but root is not EV-enabled");
  }

  // Name constraints along the path apply to the leaf's DNS identities.
  std::vector<std::string> names = leaf.dns_names();
  if (!options.hostname.empty()) names.push_back(options.hostname);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const auto& nc = chain[i]->name_constraints();
    if (!nc) continue;
    for (const auto& name : names) {
      if (!nc->allows(name)) {
        return fault(ErrorKind::kConstraintViolation,
                     "name constraint on '" +
                         chain[i]->subject().common_name() + "' excludes " +
                         name);
      }
    }
  }

  if (options.run_gccs) {
    const auto& gccs = store_.gccs_for_root(chain.back()->fingerprint_hex());
    if (!gccs.empty() &&
        !gcc_hook_(chain, usage_name(options.usage), gccs,
                   options.gcc_context, result.gcc_verdict)) {
      return fault(ErrorKind::kGccDenied,
                   "gcc:" + result.gcc_verdict.failed_gcc);
    }
  }
  return std::nullopt;
}

bool ChainVerifier::extend(SearchState& state, const VerifyOptions& options,
                           VerifyResult& result) const {
  // Copy, not reference: recursive extension reallocates state.path.
  const x509::CertPtr current = state.path.back();

  // Option 1: terminate at a trusted root that issued `current` (respecting
  // the depth bound on the completed chain).
  for (const rootstore::RootEntry* entry : store_.trusted()) {
    if (state.path.size() >= options.max_depth) break;
    if (!(entry->cert->subject() == current->issuer())) continue;
    if (entry->cert->fingerprint() == current->fingerprint()) continue;
    ++result.paths_explored;
    core::Chain candidate = state.path;
    candidate.push_back(entry->cert);
    if (auto link = check_link(*current, *entry->cert, state.path.size() - 1,
                               options)) {
      if (result.kind == ErrorKind::kOk) result.kind = link->kind;
      result.rejected_paths.push_back(path_label(candidate) + " | " +
                                      link->detail);
      continue;
    }
    if (auto root_check = check_at_root(candidate, *entry, options, result)) {
      if (result.kind == ErrorKind::kOk) result.kind = root_check->kind;
      result.rejected_paths.push_back(path_label(candidate) + " | " +
                                      root_check->detail);
      continue;  // the paper's "continue building" loop
    }
    result.ok = true;
    result.chain = std::move(candidate);
    return true;
  }

  // Option 2: the current certificate is itself a trusted root (e.g. a
  // chain the server terminated at the anchor).
  if (const rootstore::RootEntry* entry =
          store_.find(current->fingerprint_hex());
      entry != nullptr && state.path.size() > 1) {
    ++result.paths_explored;
    auto root_check = check_at_root(state.path, *entry, options, result);
    if (!root_check) {
      result.ok = true;
      result.chain = state.path;
      return true;
    }
    if (result.kind == ErrorKind::kOk) result.kind = root_check->kind;
    result.rejected_paths.push_back(path_label(state.path) + " | " +
                                    root_check->detail);
  }

  // Option 3: extend through an untrusted intermediate from the pool.
  if (state.path.size() >= options.max_depth) return false;
  for (const x509::CertPtr& candidate :
       state.pool->by_subject(current->issuer())) {
    const std::string hash = candidate->fingerprint_hex();
    if (state.visited.contains(hash)) continue;
    if (auto link = check_link(*current, *candidate, state.path.size() - 1,
                               options)) {
      // Not a rejected *path* (the search just doesn't go this way), but
      // still the first classified fault if nothing better turns up.
      if (result.kind == ErrorKind::kOk) result.kind = link->kind;
      continue;
    }
    state.visited.insert(hash);
    state.path.push_back(candidate);
    if (extend(state, options, result)) return true;
    state.path.pop_back();
    state.visited.erase(hash);
  }
  return false;
}

VerifyResult ChainVerifier::verify(const x509::CertPtr& leaf,
                                   const CertificatePool& pool,
                                   const VerifyOptions& options) const {
  VerifyResult result;
  if (auto leaf_fault = check_leaf(*leaf, options)) {
    result.kind = leaf_fault->kind;
    result.error = std::move(leaf_fault->detail);
    return result;
  }
  SearchState state;
  state.path.push_back(leaf);
  state.visited.insert(leaf->fingerprint_hex());
  state.pool = &pool;
  if (!extend(state, options, result)) {
    if (result.error.empty()) {
      result.error = result.rejected_paths.empty()
                         ? "no path to a trusted root"
                         : "all candidate paths rejected";
    }
    // extend() recorded the first classified rejection's kind; a search
    // that never hit a classifiable fault is kNoPath.
    if (result.kind == ErrorKind::kOk) result.kind = ErrorKind::kNoPath;
  } else {
    result.kind = ErrorKind::kOk;
  }
  return result;
}

}  // namespace anchor::chain
