#include "chain/verifier.hpp"

#include <functional>
#include <set>
#include <unordered_set>

#include "revocation/crlite.hpp"
#include "x509/oids.hpp"

namespace anchor::chain {

const char* usage_name(Usage usage) {
  return usage == Usage::kTls ? core::kUsageTls : core::kUsageSmime;
}

ChainVerifier::ChainVerifier(const rootstore::StoreReader& store,
                             const SignatureScheme& scheme)
    : store_(store), scheme_(scheme) {
  gcc_hook_ = [this](const core::Chain& chain, std::string_view usage,
                     std::span<const core::Gcc> gccs,
                     const core::FactSet* context,
                     core::GccVerdict& verdict) {
    core::GccVerdict v = executor_.evaluate(chain, usage, gccs, context);
    verdict.gccs_evaluated += v.gccs_evaluated;
    verdict.facts_encoded += v.facts_encoded;
    verdict.stats.accumulate(v.stats);
    if (!v.allowed) verdict.failed_gcc = v.failed_gcc;
    return v.allowed;
  };
  // The store-distributed compressed revocation filter (delivered through
  // RSF snapshots/deltas) is a revocation source like any other.
  if (auto filter = store.revocation_filter()) {
    revocation_.push_back(std::move(filter));
  }
}

struct ChainVerifier::SearchState {
  core::Chain path;  // leaf-first
  std::unordered_set<std::string> visited;
  const CertificatePool* pool = nullptr;
};

namespace {

// nullopt = pass; otherwise the classified rejection.
std::optional<Fault> fault(ErrorKind kind, std::string detail) {
  return Fault{kind, std::move(detail)};
}

// Leaf-only checks, independent of the path taken.
std::optional<Fault> check_leaf(const x509::Certificate& leaf,
                                const VerifyOptions& options) {
  if (!leaf.valid_at(options.time)) {
    return fault(ErrorKind::kExpired, "leaf outside validity window");
  }
  if (options.usage == Usage::kTls) {
    if (!options.hostname.empty() && !leaf.matches_host(options.hostname)) {
      return fault(ErrorKind::kHostnameMismatch,
                   "leaf does not match hostname " + options.hostname);
    }
    if (leaf.extended_key_usage() &&
        !leaf.extended_key_usage()->has(x509::oids::kp_server_auth())) {
      return fault(ErrorKind::kUsageViolation, "leaf EKU lacks id-kp-serverAuth");
    }
  } else {
    if (leaf.extended_key_usage() &&
        !leaf.extended_key_usage()->has(x509::oids::kp_email_protection())) {
      return fault(ErrorKind::kUsageViolation,
                   "leaf EKU lacks id-kp-emailProtection");
    }
  }
  if (options.require_ev && !leaf.is_ev()) {
    return fault(ErrorKind::kUsageViolation,
                 "EV required but leaf carries no EV policy");
  }
  return std::nullopt;
}

// Records a reached-and-rejected path structurally and pins the first
// classified fault as the result kind.
void record_rejection(VerifyResult& result, const core::Chain& chain,
                      const Fault& why) {
  if (result.kind == ErrorKind::kOk) result.kind = why.kind;
  RejectedPath rejected;
  rejected.kind = why.kind;
  rejected.detail = why.detail;
  rejected.fingerprints.reserve(chain.size());
  rejected.subjects.reserve(chain.size());
  for (const auto& cert : chain) {
    rejected.fingerprints.push_back(cert->fingerprint_hex());
    rejected.subjects.push_back(cert->subject().common_name());
  }
  result.rejected_paths.push_back(std::move(rejected));
}

}  // namespace

std::string to_string(const RejectedPath& path) {
  std::string out;
  for (const auto& subject : path.subjects) {
    if (!out.empty()) out += " <- ";
    out += subject;
  }
  out += " | ";
  out += path.detail;
  return out;
}

std::optional<Fault> ChainVerifier::check_link(
    const x509::Certificate& child, const x509::Certificate& issuer,
    std::size_t child_depth, const VerifyOptions& options) const {
  if (!issuer.valid_at(options.time)) {
    return fault(ErrorKind::kExpired, "issuer '" +
                                          issuer.subject().common_name() +
                                          "' outside validity window");
  }
  if (!issuer.is_ca()) {
    return fault(ErrorKind::kConstraintViolation,
                 "issuer '" + issuer.subject().common_name() + "' is not a CA");
  }
  if (issuer.key_usage() &&
      !issuer.key_usage()->has(x509::KeyUsageBit::kKeyCertSign)) {
    return fault(ErrorKind::kConstraintViolation,
                 "issuer '" + issuer.subject().common_name() +
                     "' lacks keyCertSign");
  }
  // pathLenConstraint: at most path_len CA certificates may sit strictly
  // between this issuer and the leaf. `child_depth` is the index of `child`
  // in the leaf-first path, which equals the number of certificates below
  // the issuer excluding the leaf (indices 1..child_depth are CAs, index 0
  // is the leaf).
  if (auto plen = issuer.path_len()) {
    std::size_t intermediates_below = child_depth;
    if (intermediates_below > static_cast<std::size_t>(*plen)) {
      return fault(ErrorKind::kConstraintViolation,
                   "issuer '" + issuer.subject().common_name() +
                       "' pathLenConstraint exceeded");
    }
  }
  if (options.check_signatures &&
      !scheme_.verify(BytesView(issuer.public_key()),
                      BytesView(child.tbs_der()),
                      BytesView(child.signature()))) {
    return fault(ErrorKind::kBadSignature,
                 "signature of '" + child.subject().common_name() +
                     "' does not verify under '" +
                     issuer.subject().common_name() + "'");
  }
  // Registered revocation sources (CRLSet, OneCRL, the RSF-delivered
  // compressed filter, ...), applied per link now that the issuer — and
  // thus its SPKI — is known. Any positive answer rejects the link.
  for (const auto& provider : revocation_) {
    if (provider->check(child, BytesView(issuer.public_key())) ==
        revocation::RevocationStatus::kRevoked) {
      return fault(ErrorKind::kRevoked, "'" + child.subject().common_name() +
                                            "' is revoked (" +
                                            provider->name() + ")");
    }
  }
  return std::nullopt;
}

std::optional<Fault> ChainVerifier::check_at_root(
    const core::Chain& chain, const rootstore::RootEntry& root_entry,
    const VerifyOptions& options, VerifyResult& result) const {
  const x509::Certificate& leaf = *chain.front();
  const rootstore::RootMetadata& metadata = root_entry.metadata;
  if (options.usage == Usage::kTls && metadata.tls_distrust_after &&
      leaf.not_before() >= *metadata.tls_distrust_after) {
    return fault(ErrorKind::kUsageViolation,
                 "tls-distrust-after: leaf issued past the trust cutoff");
  }
  if (options.usage == Usage::kSmime && metadata.smime_distrust_after &&
      leaf.not_before() >= *metadata.smime_distrust_after) {
    return fault(ErrorKind::kUsageViolation,
                 "smime-distrust-after: leaf issued past the trust cutoff");
  }
  if (options.require_ev && !metadata.ev_allowed) {
    return fault(ErrorKind::kUsageViolation,
                 "EV required but root is not EV-enabled");
  }

  // Name constraints along the path apply to the leaf's DNS identities.
  std::vector<std::string> names = leaf.dns_names();
  if (!options.hostname.empty()) names.push_back(options.hostname);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const auto& nc = chain[i]->name_constraints();
    if (!nc) continue;
    for (const auto& name : names) {
      if (!nc->allows(name)) {
        return fault(ErrorKind::kConstraintViolation,
                     "name constraint on '" +
                         chain[i]->subject().common_name() + "' excludes " +
                         name);
      }
    }
  }

  if (options.run_gccs) {
    const auto& gccs = store_.gccs_for_root(chain.back()->fingerprint_hex());
    if (!gccs.empty() &&
        !gcc_hook_(chain, usage_name(options.usage), gccs,
                   options.gcc_context, result.gcc_verdict)) {
      return fault(ErrorKind::kGccDenied,
                   "gcc:" + result.gcc_verdict.failed_gcc);
    }
  }
  return std::nullopt;
}

bool ChainVerifier::extend(SearchState& state, const VerifyOptions& options,
                           VerifyResult& result) const {
  if (result.truncated) return false;
  // Copy, not reference: recursive extension reallocates state.path.
  const x509::CertPtr current = state.path.back();

  // Exhausting the candidate-path budget stops the whole search: the
  // accept-if-any semantics only holds over the paths actually tried, so
  // the truncation is surfaced rather than silently narrowing the claim.
  auto out_of_budget = [&]() {
    if (result.paths_explored < options.max_paths) return false;
    result.truncated = true;
    return true;
  };

  // Option 1: terminate at a trusted root that issued `current` (respecting
  // the depth bound on the completed chain).
  for (const rootstore::RootEntry* entry : store_.trusted()) {
    if (state.path.size() >= options.max_depth) break;
    if (!(entry->cert->subject() == current->issuer())) continue;
    if (entry->cert->fingerprint() == current->fingerprint()) continue;
    if (out_of_budget()) return false;
    ++result.paths_explored;
    core::Chain candidate = state.path;
    candidate.push_back(entry->cert);
    if (auto link = check_link(*current, *entry->cert, state.path.size() - 1,
                               options)) {
      record_rejection(result, candidate, *link);
      continue;
    }
    if (auto root_check = check_at_root(candidate, *entry, options, result)) {
      record_rejection(result, candidate, *root_check);
      continue;  // the paper's "continue building" loop
    }
    result.ok = true;
    result.chain = std::move(candidate);
    return true;
  }

  // Option 2: the current certificate is itself a trusted root (e.g. a
  // chain the server terminated at the anchor).
  if (const rootstore::RootEntry* entry =
          store_.find(current->fingerprint_hex());
      entry != nullptr && state.path.size() > 1) {
    if (out_of_budget()) return false;
    ++result.paths_explored;
    auto root_check = check_at_root(state.path, *entry, options, result);
    if (!root_check) {
      result.ok = true;
      result.chain = state.path;
      return true;
    }
    record_rejection(result, state.path, *root_check);
  }

  // Option 3: extend through untrusted issuers from the pool, one logical
  // CA (graph node) at a time so cross-signed certificates are alternate
  // edges into the same node.
  if (state.path.size() >= options.max_depth) return false;
  for (const GraphNode* node :
       state.pool->nodes_for_subject(current->issuer())) {
    if (options.graph_distrust) {
      // The bane check: if *any* certificate of this logical CA is
      // explicitly distrusted, trust in the CA's key was withdrawn and no
      // cross-signed sibling may resurrect it — every path through the
      // node is rejected, structurally, without descending.
      if (const x509::CertPtr* bad = distrusted_member(*node, store_)) {
        core::Chain candidate = state.path;
        candidate.push_back(*bad);
        record_rejection(
            result, candidate,
            Fault{ErrorKind::kDistrusted,
                  "distrusted CA '" + (*bad)->subject().common_name() +
                      "': certificate " +
                      (*bad)->fingerprint_hex().substr(0, 16) +
                      "... is explicitly distrusted; a cross-sign cannot "
                      "resurrect it"});
        continue;
      }
    }
    for (const x509::CertPtr& candidate : node->certs) {
      const std::string hash = candidate->fingerprint_hex();
      if (state.visited.contains(hash)) continue;
      if (auto link = check_link(*current, *candidate, state.path.size() - 1,
                                 options)) {
        // Not a rejected *path* (the search just doesn't go this way), but
        // still the first classified fault if nothing better turns up.
        if (result.kind == ErrorKind::kOk) result.kind = link->kind;
        continue;
      }
      state.visited.insert(hash);
      state.path.push_back(candidate);
      if (extend(state, options, result)) return true;
      state.path.pop_back();
      state.visited.erase(hash);
      if (result.truncated) return false;
    }
  }
  return false;
}

VerifyResult ChainVerifier::verify(const x509::CertPtr& leaf,
                                   const CertificatePool& pool,
                                   const VerifyOptions& options) const {
  VerifyResult result;
  if (auto leaf_fault = check_leaf(*leaf, options)) {
    result.kind = leaf_fault->kind;
    result.error = std::move(leaf_fault->detail);
    return result;
  }
  SearchState state;
  state.path.push_back(leaf);
  state.visited.insert(leaf->fingerprint_hex());
  state.pool = &pool;
  if (!extend(state, options, result)) {
    if (result.error.empty()) {
      if (result.truncated) {
        result.error = "path budget exhausted (max_paths = " +
                       std::to_string(options.max_paths) +
                       ") before an accepted path";
      } else {
        result.error = result.rejected_paths.empty()
                           ? "no path to a trusted root"
                           : "all candidate paths rejected";
      }
    }
    // extend() recorded the first classified rejection's kind; a search
    // that never hit a classifiable fault is kNoPath.
    if (result.kind == ErrorKind::kOk) result.kind = ErrorKind::kNoPath;
  } else {
    result.kind = ErrorKind::kOk;
  }
  return result;
}

std::vector<std::vector<std::string>> ChainVerifier::enumerate_paths(
    const x509::CertPtr& leaf, const CertificatePool& pool,
    std::size_t max_depth, std::size_t max_paths) const {
  std::vector<std::vector<std::string>> out;
  std::set<std::vector<std::string>> seen;
  core::Chain path;
  path.push_back(leaf);
  std::unordered_set<std::string> visited;
  visited.insert(leaf->fingerprint_hex());

  auto fingerprints = [](const core::Chain& chain) {
    std::vector<std::string> fps;
    fps.reserve(chain.size());
    for (const auto& cert : chain) fps.push_back(cert->fingerprint_hex());
    return fps;
  };
  auto emit = [&](const core::Chain& chain) {
    auto fps = fingerprints(chain);
    if (seen.insert(fps).second) out.push_back(std::move(fps));
  };

  std::function<void()> dfs = [&]() {
    if (out.size() >= max_paths) return;
    const x509::CertPtr current = path.back();
    if (path.size() < max_depth) {
      for (const rootstore::RootEntry* entry : store_.trusted()) {
        if (!(entry->cert->subject() == current->issuer())) continue;
        if (entry->cert->fingerprint() == current->fingerprint()) continue;
        core::Chain candidate = path;
        candidate.push_back(entry->cert);
        emit(candidate);
        if (out.size() >= max_paths) return;
      }
    }
    if (path.size() > 1 && store_.find(current->fingerprint_hex()) != nullptr) {
      emit(path);
      if (out.size() >= max_paths) return;
    }
    if (path.size() >= max_depth) return;
    for (const GraphNode* node : pool.nodes_for_subject(current->issuer())) {
      for (const x509::CertPtr& candidate : node->certs) {
        const std::string hash = candidate->fingerprint_hex();
        if (visited.contains(hash)) continue;
        visited.insert(hash);
        path.push_back(candidate);
        dfs();
        path.pop_back();
        visited.erase(hash);
        if (out.size() >= max_paths) return;
      }
    }
  };
  dfs();
  return out;
}

}  // namespace anchor::chain
