// Unified error taxonomy for every verification surface (DESIGN.md
// "anchord wire protocol & unified verb schema"). Before this enum the
// library reported failures three different ways: ChainVerifier returned
// free-form strings (compared by substring in tests), TrustDaemon returned
// a bare Boolean, and the wire layer had nothing. Every verdict-producing
// path — VerifyResult, the anchord VerifyResponse, anchorctl exit codes —
// now carries one ErrorKind; the human-readable detail string survives as
// a diagnostic, never as the thing a caller branches on.
#pragma once

#include <cstdint>
#include <string>

namespace anchor::chain {

enum class ErrorKind : std::uint8_t {
  kOk = 0,
  kMalformedRequest = 1,     // unparseable DER, frame, or request payload
  kExpired = 2,              // leaf or issuer outside its validity window
  kHostnameMismatch = 3,     // TLS leaf does not cover the requested host
  kUsageViolation = 4,       // EKU mismatch, EV demanded, distrust-after cutoff
  kConstraintViolation = 5,  // CA bit, keyCertSign, pathLen, name constraints
  kBadSignature = 6,
  kRevoked = 7,              // CRLSet / OneCRL hit
  kGccDenied = 8,            // a GCC evaluated the chain to deny
  kNoPath = 9,               // no candidate path reached a trusted root
  kOverloaded = 10,          // serving layer: in-flight bound hit, fail-closed
  kTimeout = 11,             // serving layer: request expired before execution
  kUnavailable = 12,         // verb target not configured (e.g. no feed)
  kInternal = 13,
  // Appended (stable wire numbering): the path crosses a logical CA with an
  // explicitly distrusted certificate — the cross-sign bane case.
  kDistrusted = 14,
};

inline constexpr std::size_t kErrorKindCount = 15;

const char* to_string(ErrorKind kind);

// Parses the stable token to_string() emits (wire debugging, anchorctl
// round trips); returns false on an unknown token.
bool error_kind_from_string(const std::string& token, ErrorKind& kind);

// Process exit code for anchorctl verbs: 0 for kOk, otherwise a stable
// small integer (the enum value) so scripts can branch on the taxonomy
// instead of scraping stderr.
int exit_code(ErrorKind kind);

// A classified rejection: the kind a caller branches on plus the
// diagnostic a human reads. The verifier's internal checks return these so
// VerifyResult and the wire response inherit the same classification.
struct Fault {
  ErrorKind kind = ErrorKind::kInternal;
  std::string detail;
};

}  // namespace anchor::chain
