// Chain construction and validation with the GCC hook (§3.1 of the paper):
// "whenever a candidate root is found with a GCC, the validator must
// execute the GCC to determine whether to accept the chain or continue
// building."
//
// The verifier performs depth-first path construction from the leaf toward
// the trusted roots, applying RFC 5280-style checks along the way:
// validity window, basicConstraints.cA, pathLenConstraint, keyCertSign,
// name constraints over the leaf's DNS names, EKU fit for the requested
// usage, and signature verification. When a candidate path terminates in a
// trusted root it additionally applies the root store's systematic
// metadata (date-usage cutoffs, EV bit) and then executes all attached
// GCCs; any failure rejects that path and the search continues — exactly
// the "reject or continue building" loop the paper prescribes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chain/error.hpp"
#include "chain/pool.hpp"
#include "core/executor.hpp"
#include "revocation/revocation.hpp"
#include "rootstore/store.hpp"
#include "util/simsig.hpp"

namespace anchor::chain {

enum class Usage { kTls, kSmime };

const char* usage_name(Usage usage);  // "TLS" / "S/MIME"

struct VerifyOptions {
  std::int64_t time = 0;        // validation instant (Unix seconds)
  std::string hostname;         // required for kTls; checked against SAN
  Usage usage = Usage::kTls;
  bool require_ev = false;      // demand an EV chain (leaf EV + root EV bit)
  std::size_t max_depth = 8;    // maximum certificates in a path
  bool check_signatures = true; // disable only in parsing-only benchmarks
  bool run_gccs = true;         // the ablation switch for E9
  // Chain-external facts for GCC evaluation (SCT timestamps, client
  // version, validation instant — the Chrome Root Store constraint
  // vocabulary; see rootstore/constraint_compile.hpp). Must outlive the
  // verify() call; nullptr when the store carries no context-dependent
  // constraints.
  const core::FactSet* gcc_context = nullptr;
};

struct VerifyResult {
  bool ok = false;
  core::Chain chain;            // leaf-first accepted path (when ok)
  // Classified failure cause (kOk when ok). For a chain whose candidate
  // paths all reached a root and were rejected, this is the kind of the
  // *first* rejection — matching `error`'s "first fatal diagnostic" rule.
  ErrorKind kind = ErrorKind::kOk;
  std::string error;            // first fatal diagnostic (when !ok)
  // Diagnostics: every candidate path that reached a trusted root but was
  // rejected, with the reason ("gcc:<name>", "tls-distrust-after", ...).
  std::vector<std::string> rejected_paths;
  core::GccVerdict gcc_verdict; // aggregate over executed GCCs
  std::size_t paths_explored = 0;
};

// Hook interface for GCC execution placement (user-agent vs platform
// daemon, §3.1). The default executes in-process; bench E9 swaps in a
// simulated-IPC hook.
using GccHook = std::function<bool(const core::Chain& chain,
                                   std::string_view usage,
                                   std::span<const core::Gcc> gccs,
                                   const core::FactSet* context,
                                   core::GccVerdict& verdict)>;

class ChainVerifier {
 public:
  // `store` is any StoreReader — the mutable heap RootStore or an
  // mmap-backed snapshot StoreView; verdicts are byte-identical either way
  // (the StoreReader ordering contract). `scheme` must outlive the verifier
  // and have every issuing key registered (the corpus generator does this).
  ChainVerifier(const rootstore::StoreReader& store,
                const SignatureScheme& scheme);

  // Overrides GCC execution placement.
  void set_gcc_hook(GccHook hook) { gcc_hook_ = std::move(hook); }

  // Optional push-based revocation sources (CRLSet / OneCRL baselines the
  // paper's incidents used; see src/revocation). Pointers must outlive the
  // verifier; nullptr disables the check.
  void set_crlset(const revocation::CrlSet* crlset) { crlset_ = crlset; }
  void set_onecrl(const revocation::OneCrl* onecrl) { onecrl_ = onecrl; }

  VerifyResult verify(const x509::CertPtr& leaf, const CertificatePool& pool,
                      const VerifyOptions& options) const;

 private:
  struct SearchState;

  bool extend(SearchState& state, const VerifyOptions& options,
              VerifyResult& result) const;

  // Per-certificate checks that do not depend on the final root.
  // nullopt = pass; a Fault carries the classified rejection.
  std::optional<Fault> check_link(const x509::Certificate& child,
                                  const x509::Certificate& issuer,
                                  std::size_t child_depth,
                                  const VerifyOptions& options) const;

  // Root-dependent checks: store metadata, then GCCs.
  std::optional<Fault> check_at_root(const core::Chain& chain,
                                     const rootstore::RootEntry& root_entry,
                                     const VerifyOptions& options,
                                     VerifyResult& result) const;

  const rootstore::StoreReader& store_;
  const SignatureScheme& scheme_;
  core::GccExecutor executor_;
  GccHook gcc_hook_;
  const revocation::CrlSet* crlset_ = nullptr;
  const revocation::OneCrl* onecrl_ = nullptr;
};

}  // namespace anchor::chain
