// Chain construction and validation with the GCC hook (§3.1 of the paper):
// "whenever a candidate root is found with a GCC, the validator must
// execute the GCC to determine whether to accept the chain or continue
// building."
//
// The verifier performs depth-first path construction from the leaf toward
// the trusted roots over the certificate *graph* (graph.hpp): candidate
// issuers are logical CAs keyed by (subject DN, SPKI), so cross-signed
// certificates are alternate edges into one node and the search enumerates
// every leaf→root path across cross-signs — bounded by max_depth and
// max_paths, cycle-safe via per-certificate visited tracking. Each link
// gets RFC 5280-style checks (validity window, basicConstraints.cA,
// pathLenConstraint, keyCertSign, signature, registered revocation
// sources); each completed path gets the root store's systematic metadata
// (date-usage cutoffs, EV bit), name constraints, and the root's GCCs. The
// verdict is accept-if-any-path; every path that was reached and rejected
// is recorded structurally as a RejectedPath. A logical CA containing an
// explicitly distrusted certificate poisons all paths through it — the
// cross-signing bane case (a distrusted root resurrected via a
// cross-sign) is rejected with kDistrusted instead of silently re-trusted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/error.hpp"
#include "chain/pool.hpp"
#include "core/executor.hpp"
#include "revocation/provider.hpp"
#include "rootstore/store.hpp"
#include "util/simsig.hpp"

namespace anchor::chain {

enum class Usage { kTls, kSmime };

const char* usage_name(Usage usage);  // "TLS" / "S/MIME"

struct VerifyOptions {
  std::int64_t time = 0;        // validation instant (Unix seconds)
  std::string hostname;         // required for kTls; checked against SAN
  Usage usage = Usage::kTls;
  bool require_ev = false;      // demand an EV chain (leaf EV + root EV bit)
  std::size_t max_depth = 8;    // maximum certificates in a path
  std::size_t max_paths = 64;   // candidate-path budget across cross-signs
  bool check_signatures = true; // disable only in parsing-only benchmarks
  bool run_gccs = true;         // the ablation switch for E9
  // The bane-case ablation switch: false reverts to the pre-graph tree
  // walk that never checks pooled certificates against the distrusted set
  // — the baseline the incident scenario and bench_disparity census run
  // against. Production semantics is true.
  bool graph_distrust = true;
  // Chain-external facts for GCC evaluation (SCT timestamps, client
  // version, validation instant — the Chrome Root Store constraint
  // vocabulary; see rootstore/constraint_compile.hpp). Must outlive the
  // verify() call; nullptr when the store carries no context-dependent
  // constraints.
  const core::FactSet* gcc_context = nullptr;
};

// A candidate path that was reached and rejected, recorded structurally:
// callers branch on `kind`, render via to_string() for humans, and match
// paths by fingerprint — substring-matching free-form diagnostics is gone.
struct RejectedPath {
  std::vector<std::string> fingerprints;  // hex, leaf-first
  std::vector<std::string> subjects;      // common names, parallel
  ErrorKind kind = ErrorKind::kInternal;
  std::string detail;

  bool operator==(const RejectedPath&) const = default;
};

// Legacy rendering: "Leaf CN <- Int CN <- Root CN | detail".
std::string to_string(const RejectedPath& path);

struct VerifyResult {
  bool ok = false;
  core::Chain chain;            // leaf-first accepted path (when ok)
  // Classified failure cause (kOk when ok). For a chain whose candidate
  // paths all reached a root and were rejected, this is the kind of the
  // *first* rejection — matching `error`'s "first fatal diagnostic" rule.
  ErrorKind kind = ErrorKind::kOk;
  std::string error;            // first fatal diagnostic (when !ok)
  // Diagnostics: every candidate path that was reached and rejected — at a
  // trusted root (metadata/GCC/link failures) or at a poisoned logical CA
  // (kDistrusted).
  std::vector<RejectedPath> rejected_paths;
  core::GccVerdict gcc_verdict; // aggregate over executed GCCs
  std::size_t paths_explored = 0;
  bool truncated = false;       // search stopped at the max_paths budget
};

// Hook interface for GCC execution placement (user-agent vs platform
// daemon, §3.1). The default executes in-process; bench E9 swaps in a
// simulated-IPC hook.
using GccHook = std::function<bool(const core::Chain& chain,
                                   std::string_view usage,
                                   std::span<const core::Gcc> gccs,
                                   const core::FactSet* context,
                                   core::GccVerdict& verdict)>;

class ChainVerifier {
 public:
  // `store` is any StoreReader — the mutable heap RootStore or an
  // mmap-backed snapshot StoreView; verdicts are byte-identical either way
  // (the StoreReader ordering contract). `scheme` must outlive the verifier
  // and have every issuing key registered (the corpus generator does this).
  // A store-distributed revocation filter (store.revocation_filter()) is
  // registered as a revocation source automatically.
  ChainVerifier(const rootstore::StoreReader& store,
                const SignatureScheme& scheme);

  // Overrides GCC execution placement.
  void set_gcc_hook(GccHook hook) { gcc_hook_ = std::move(hook); }

  // Registers a revocation source consulted on every link during path
  // construction (revocation/provider.hpp). Sources are checked in
  // registration order; any kRevoked answer rejects the link. Replaces the
  // old per-mechanism set_crlset/set_onecrl raw-pointer setters.
  void add_revocation_source(std::shared_ptr<const revocation::Provider> p) {
    if (p != nullptr) revocation_.push_back(std::move(p));
  }

  VerifyResult verify(const x509::CertPtr& leaf, const CertificatePool& pool,
                      const VerifyOptions& options) const;

  // Structural path enumeration: every root-terminating candidate path
  // (leaf-first fingerprint sequences, deduplicated) reachable through the
  // graph within `max_depth`/`max_paths` — topology only, no RFC 5280 or
  // signature filtering. The property suite compares this against an
  // exhaustive reference search over the raw certificate list.
  std::vector<std::vector<std::string>> enumerate_paths(
      const x509::CertPtr& leaf, const CertificatePool& pool,
      std::size_t max_depth = 8, std::size_t max_paths = 1024) const;

 private:
  struct SearchState;

  bool extend(SearchState& state, const VerifyOptions& options,
              VerifyResult& result) const;

  // Per-certificate checks that do not depend on the final root.
  // nullopt = pass; a Fault carries the classified rejection.
  std::optional<Fault> check_link(const x509::Certificate& child,
                                  const x509::Certificate& issuer,
                                  std::size_t child_depth,
                                  const VerifyOptions& options) const;

  // Root-dependent checks: store metadata, then GCCs.
  std::optional<Fault> check_at_root(const core::Chain& chain,
                                     const rootstore::RootEntry& root_entry,
                                     const VerifyOptions& options,
                                     VerifyResult& result) const;

  const rootstore::StoreReader& store_;
  const SignatureScheme& scheme_;
  core::GccExecutor executor_;
  GccHook gcc_hook_;
  std::vector<std::shared_ptr<const revocation::Provider>> revocation_;
};

}  // namespace anchor::chain
