// Deployment-model simulation for §3.1 of the paper, which weighs three
// options for who executes GCCs:
//
//   1. user-agent execution  — ChainVerifier's default in-process hook;
//   2. platform execution    — a trustd-style daemon with an IPC interface
//                              that "accepts certificates and returns a
//                              Boolean";
//   3. complete redesign     — the daemon performs full chain construction
//                              (the Hammurabi model).
//
// TrustDaemon models options 2 and 3 in-process but honestly: every call
// crosses a serialize/parse boundary (certificates travel as DER, exactly
// what an IPC transport would carry) plus a configurable spin-wait standing
// in for kernel round-trip latency. Bench E9 sweeps that latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "chain/verifier.hpp"
#include "util/metrics.hpp"

namespace anchor::chain {

class VerifyService;

class TrustDaemon {
 public:
  // `latency_ns` is added per IPC call (0 = colocated daemon).
  //
  // When `service` is non-null the daemon routes both entry points through
  // the shared VerifyService instead of doing its own parsing and GCC
  // execution: certificates come out of the service's DER-hash parse cache
  // and verdicts out of its epoch-keyed verdict cache, and the daemon
  // becomes safe to call from concurrent clients (the in-process model is
  // single-threaded). Bench E9 sweeps concurrency × IPC latency through
  // this path. The service must outlive the daemon and be built over the
  // same store.
  TrustDaemon(const rootstore::RootStore& store, const SignatureScheme& scheme,
              std::uint64_t latency_ns = 0, VerifyService* service = nullptr)
      : store_(store),
        scheme_(scheme),
        latency_ns_(latency_ns),
        service_(service) {}

  // Option 2: the user-agent built a candidate chain; the daemon executes
  // the GCCs attached to its root. Input is the chain as DER blobs
  // (leaf-first), as they would cross the IPC boundary.
  bool evaluate_gccs(std::span<const Bytes> chain_der, std::string_view usage);

  // Option 3: full validation inside the daemon. The caller ships the leaf
  // and its candidate intermediates; the daemon builds and validates.
  VerifyResult validate(const Bytes& leaf_der,
                        std::span<const Bytes> intermediates_der,
                        const VerifyOptions& options);

  // Observability verb: a `trustctl metrics`-style scrape over the same
  // IPC surface (both latency legs are simulated). Returns the registry's
  // text exposition, refreshed with the daemon's own store gauges first so
  // a scrape always reflects the store it is currently serving.
  std::string metrics(metrics::Registry& registry = metrics::Registry::global());

  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  void simulate_ipc_latency() const;

  const rootstore::RootStore& store_;
  const SignatureScheme& scheme_;
  std::uint64_t latency_ns_;
  // Atomic: the service-backed daemon serves concurrent callers.
  std::atomic<std::uint64_t> calls_{0};
  core::GccExecutor executor_;
  VerifyService* service_ = nullptr;
};

}  // namespace anchor::chain
