#include "chain/graph.hpp"

#include "util/bytes.hpp"

namespace anchor::chain {

std::string CertificateGraph::node_key(const x509::Certificate& cert) {
  return cert.subject().to_string() + "|" + to_hex(BytesView(cert.public_key()));
}

void CertificateGraph::add(x509::CertPtr cert) {
  auto& bucket = by_subject_[cert->subject().to_string()];
  // Exact duplicates (same DER) are dropped.
  for (const auto& existing : bucket.certs) {
    if (existing->fingerprint() == cert->fingerprint()) return;
  }

  const std::string key = node_key(*cert);
  auto it = node_by_key_.find(key);
  std::size_t index = 0;
  if (it == node_by_key_.end()) {
    index = nodes_.size();
    nodes_.push_back(GraphNode{cert->subject().to_string(),
                               cert->public_key(),
                               {}});
    node_by_key_.emplace(key, index);
    bucket.nodes.push_back(index);
  } else {
    index = it->second;
  }
  nodes_[index].certs.push_back(cert);
  bucket.certs.push_back(std::move(cert));
  ++size_;
}

void CertificateGraph::add_all(const std::vector<x509::CertPtr>& certs) {
  for (const auto& cert : certs) add(cert);
}

const std::vector<x509::CertPtr>& CertificateGraph::by_subject(
    const x509::DistinguishedName& subject) const {
  static const std::vector<x509::CertPtr> kEmpty;
  auto it = by_subject_.find(subject.to_string());
  return it == by_subject_.end() ? kEmpty : it->second.certs;
}

std::vector<const GraphNode*> CertificateGraph::nodes_for_subject(
    const x509::DistinguishedName& subject) const {
  auto it = by_subject_.find(subject.to_string());
  if (it == by_subject_.end()) return {};
  std::vector<const GraphNode*> out;
  out.reserve(it->second.nodes.size());
  for (std::size_t index : it->second.nodes) out.push_back(&nodes_[index]);
  return out;
}

const GraphNode* CertificateGraph::node_of(
    const x509::Certificate& cert) const {
  auto it = node_by_key_.find(node_key(cert));
  return it == node_by_key_.end() ? nullptr : &nodes_[it->second];
}

const x509::CertPtr* distrusted_member(const GraphNode& node,
                                       const rootstore::StoreReader& store) {
  for (const x509::CertPtr& cert : node.certs) {
    if (store.state_of(cert->fingerprint_hex()) ==
        rootstore::TrustState::kDistrusted) {
      return &cert;
    }
  }
  return nullptr;
}

}  // namespace anchor::chain
