#include "chain/error.hpp"

namespace anchor::chain {

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kOk: return "ok";
    case ErrorKind::kMalformedRequest: return "malformed-request";
    case ErrorKind::kExpired: return "expired";
    case ErrorKind::kHostnameMismatch: return "hostname-mismatch";
    case ErrorKind::kUsageViolation: return "usage-violation";
    case ErrorKind::kConstraintViolation: return "constraint-violation";
    case ErrorKind::kBadSignature: return "bad-signature";
    case ErrorKind::kRevoked: return "revoked";
    case ErrorKind::kGccDenied: return "gcc-denied";
    case ErrorKind::kNoPath: return "no-path";
    case ErrorKind::kOverloaded: return "overloaded";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kUnavailable: return "unavailable";
    case ErrorKind::kInternal: return "internal";
    case ErrorKind::kDistrusted: return "distrusted";
  }
  return "internal";
}

bool error_kind_from_string(const std::string& token, ErrorKind& kind) {
  for (std::size_t i = 0; i < kErrorKindCount; ++i) {
    const auto candidate = static_cast<ErrorKind>(i);
    if (token == to_string(candidate)) {
      kind = candidate;
      return true;
    }
  }
  return false;
}

int exit_code(ErrorKind kind) { return static_cast<int>(kind); }

}  // namespace anchor::chain
