#include "chain/pool.hpp"

namespace anchor::chain {

void CertificatePool::add(x509::CertPtr cert) {
  auto& bucket = by_subject_[cert->subject().to_string()];
  // Exact duplicates (same DER) are dropped.
  for (const auto& existing : bucket) {
    if (existing->fingerprint() == cert->fingerprint()) return;
  }
  bucket.push_back(std::move(cert));
  ++size_;
}

void CertificatePool::add_all(const std::vector<x509::CertPtr>& certs) {
  for (const auto& cert : certs) add(cert);
}

const std::vector<x509::CertPtr>& CertificatePool::by_subject(
    const x509::DistinguishedName& subject) const {
  static const std::vector<x509::CertPtr> kEmpty;
  auto it = by_subject_.find(subject.to_string());
  return it == by_subject_.end() ? kEmpty : it->second;
}

}  // namespace anchor::chain
