#include "chain/daemon.hpp"

#include <chrono>

#include "chain/service.hpp"

namespace anchor::chain {

void TrustDaemon::simulate_ipc_latency() const {
  if (latency_ns_ == 0) return;
  auto start = std::chrono::steady_clock::now();
  auto target = std::chrono::nanoseconds(latency_ns_);
  while (std::chrono::steady_clock::now() - start < target) {
    // Spin: models a synchronous kernel round trip without descheduling
    // noise that would make the E9 sweep unstable.
  }
}

bool TrustDaemon::evaluate_gccs(std::span<const Bytes> chain_der,
                                std::string_view usage) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  simulate_ipc_latency();

  if (service_ != nullptr) {
    // Platform-service deployment: parsing and GCC execution are shared
    // and cached across every client of the machine-wide service.
    bool allowed = service_->evaluate_gccs(chain_der, usage);
    simulate_ipc_latency();  // response leg
    return allowed;
  }

  // Deserialize: the marshaling cost is the point of this model.
  core::Chain chain;
  chain.reserve(chain_der.size());
  for (const Bytes& der : chain_der) {
    auto cert = x509::Certificate::parse(BytesView(der));
    if (!cert) return false;  // malformed input across IPC: reject
    chain.push_back(std::move(cert).take());
  }
  if (chain.empty()) return false;

  const auto& gccs = store_.gccs().for_root(chain.back()->fingerprint_hex());
  core::GccVerdict verdict = executor_.evaluate(chain, usage, gccs);

  simulate_ipc_latency();  // response leg
  return verdict.allowed;
}

std::string TrustDaemon::metrics(metrics::Registry& registry) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  simulate_ipc_latency();  // request leg
  rootstore::export_store_metrics(store_, registry);
  std::string exposition = registry.expose();
  simulate_ipc_latency();  // response leg carries the exposition text
  return exposition;
}

VerifyResult TrustDaemon::validate(const Bytes& leaf_der,
                                   std::span<const Bytes> intermediates_der,
                                   const VerifyOptions& options) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  simulate_ipc_latency();

  if (service_ != nullptr) {
    VerifyResult result = service_->validate(leaf_der, intermediates_der,
                                             options);
    simulate_ipc_latency();  // response leg
    return result;
  }

  VerifyResult failure;
  auto leaf = x509::Certificate::parse(BytesView(leaf_der));
  if (!leaf) {
    failure.error = "daemon: " + leaf.error();
    return failure;
  }
  CertificatePool pool;
  for (const Bytes& der : intermediates_der) {
    auto cert = x509::Certificate::parse(BytesView(der));
    if (!cert) {
      failure.error = "daemon: " + cert.error();
      return failure;
    }
    pool.add(std::move(cert).take());
  }

  ChainVerifier verifier(store_, scheme_);
  VerifyResult result = verifier.verify(leaf.value(), pool, options);

  simulate_ipc_latency();  // response leg
  return result;
}

}  // namespace anchor::chain
