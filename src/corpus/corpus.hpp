// Synthetic Web-PKI corpus (the substitution for NSS + Certificate
// Transparency data; DESIGN.md §5). The generator is deterministic in the
// seed and calibrated to every number the paper reports in §5.1-§5.2:
//
//   * 140 roots, 0 name-constrained, 5 with path-length constraints;
//   * 776 intermediates, 701 with path-length, 31 name-constrained;
//   * the 31 name-constrained intermediates concentrated under exactly 6
//     roots ("only six roots were included in at least one chain where an
//     intermediate included a name constraint");
//   * per-CA TLD issuance scope heavy-tailed so that ~90% of CAs issue for
//     <= 10 TLDs (the CAge observation the paper builds on).
//
// Every certificate is a real DER-encoded object built by the x509 layer
// and signed with SimSig; all issuing keys are registered so chains verify.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/pool.hpp"
#include "core/facts.hpp"
#include "rootstore/store.hpp"
#include "util/rng.hpp"
#include "util/simsig.hpp"
#include "x509/certificate.hpp"

namespace anchor::corpus {

struct CorpusConfig {
  std::uint64_t seed = 7;

  // §5.1 census calibration.
  int num_roots = 140;
  int num_intermediates = 776;
  int roots_with_path_len = 5;
  int intermediates_with_path_len = 701;
  int intermediates_with_name_constraints = 31;
  int roots_with_constrained_chain = 6;

  // Issuance volume and mix.
  double leaves_per_intermediate_mean = 12.0;
  double ev_fraction = 0.08;
  double smime_fraction = 0.10;
  double wildcard_fraction = 0.25;

  // TLD scope distribution (§5.2 / CAge).
  int num_tlds = 60;
  double tld_zipf_s = 1.8;  // calibrated: P(scope <= 10) ~ 0.9
  int max_tlds_per_ca = 40;

  // Validity windows.
  std::int64_t time_origin = 1577836800;  // 2020-01-01
  std::int64_t time_span = 3 * 365 * 86400;
  int leaf_lifetime_days_mean = 90;
  int leaf_lifetime_days_jitter = 30;

  // A convenient "now" at which most of the corpus is valid.
  std::int64_t validation_time() const { return time_origin + time_span / 2; }
};

struct CaProfile {
  x509::CertPtr cert;
  SimKeyPair key;
  std::vector<std::string> tld_scope;  // TLDs this CA issues for
  int parent_root = -1;                // for intermediates: index into roots
};

struct LeafRecord {
  x509::CertPtr cert;
  int issuer_intermediate;  // index into intermediates()
  std::string domain;
  bool smime = false;
};

class Corpus {
 public:
  static Corpus generate(const CorpusConfig& config);

  const CorpusConfig& config() const { return config_; }
  const std::vector<CaProfile>& roots() const { return roots_; }
  const std::vector<CaProfile>& intermediates() const { return intermediates_; }
  const std::vector<LeafRecord>& leaves() const { return leaves_; }

  // The signature registry with every issuing key; required by verifiers.
  const SimSig& signatures() const { return signatures_; }

  // A primary root store trusting every corpus root.
  rootstore::RootStore make_root_store() const;

  // Pool of all intermediates (what servers would send).
  chain::CertificatePool intermediate_pool() const;

  // The true chain for a leaf: {leaf, intermediate, root}.
  core::Chain chain_for_leaf(std::size_t leaf_index) const;

  // Builds a fraudulent leaf for `victim_domain` signed by the given
  // intermediate (incident injection).
  x509::CertPtr misissue(std::size_t intermediate_index,
                         const std::string& victim_domain,
                         std::int64_t not_before, int lifetime_days = 365);

  // The TLD universe used by the generator (index 0 = most popular).
  static std::vector<std::string> tld_universe(int count);

 private:
  CorpusConfig config_;
  std::vector<CaProfile> roots_;
  std::vector<CaProfile> intermediates_;
  std::vector<LeafRecord> leaves_;
  SimSig signatures_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace anchor::corpus
