// Random cross-sign DAG generator for the graph-verifier property suite.
// Unlike the calibrated Web-PKI corpus (corpus.hpp), these topologies are
// deliberately adversarial: every logical CA may hold several certificates
// (one per issuer that cross-signed it), roots cross-sign each other, and
// distrusted roots keep live cross-signs from trusted ones — the bane
// shape. Acyclicity is guaranteed by construction: each logical CA has a
// distinct rank and a certificate's issuer always has a strictly lower
// rank, so the issuance relation is a DAG no matter how many cross-signs
// are drawn. Deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/pool.hpp"
#include "rootstore/store.hpp"
#include "util/simsig.hpp"
#include "x509/certificate.hpp"

namespace anchor::corpus {

struct CrossSignConfig {
  std::uint64_t seed = 11;

  int num_roots = 4;          // self-signed logical CAs, >= 1
  // How many of the roots are explicitly distrusted (< num_roots). They are
  // assigned the highest root ranks so trusted roots may cross-sign them,
  // and each is guaranteed at least one such cross-sign — every generated
  // DAG with distrusted_roots > 0 contains a bane path.
  int distrusted_roots = 1;
  int num_cas = 5;            // subordinate logical CAs
  int extra_cross_signs = 4;  // edges beyond the spanning tree
  int num_leaves = 6;

  std::int64_t not_before = 1577836800;  // 2020-01-01
  std::int64_t not_after = 1893456000;   // 2030-01-01
  std::int64_t validation_time() const {
    return (not_before + not_after) / 2;
  }
};

struct CrossSignDag {
  SimSig signatures;
  rootstore::RootStore store;  // trusted roots + explicit distrusts
  chain::CertificatePool pool; // every CA certificate, cross-signs included
  // Pool contents in insertion order — the raw material for the exhaustive
  // reference path search the property tests compare against.
  std::vector<x509::CertPtr> ca_certs;
  std::vector<x509::CertPtr> root_certs;  // trusted first, then distrusted
  std::vector<x509::CertPtr> leaves;
  std::vector<std::string> leaf_domains;  // parallel to `leaves`
};

CrossSignDag make_cross_sign_dag(const CrossSignConfig& config);

}  // namespace anchor::corpus
