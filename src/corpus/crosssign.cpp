#include "corpus/crosssign.hpp"

#include <set>
#include <utility>

#include "util/rng.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::corpus {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

namespace {

// One logical CA: a (subject DN, key) identity that may end up with several
// certificates, one per issuer. Rank orders the DAG: an entity's issuers
// always have strictly lower rank.
struct Entity {
  std::string name;
  SimKeyPair key;
  DistinguishedName dn;
  bool is_root = false;
  bool distrusted = false;
};

}  // namespace

CrossSignDag make_cross_sign_dag(const CrossSignConfig& config) {
  CrossSignDag dag;
  Rng rng(config.seed);
  std::uint64_t serial = 1;

  const int num_roots = config.num_roots < 1 ? 1 : config.num_roots;
  const int distrusted =
      config.distrusted_roots >= num_roots ? num_roots - 1
                                           : config.distrusted_roots;
  const int trusted = num_roots - distrusted;

  // Entities in rank order: trusted roots, distrusted roots, then
  // subordinate CAs. Index == rank.
  std::vector<Entity> entities;
  for (int i = 0; i < num_roots; ++i) {
    Entity e;
    e.name = "XS Root " + std::to_string(i);
    e.key = SimSig::keygen("xs-root-" + std::to_string(config.seed) + "-" +
                           std::to_string(i));
    e.dn = DistinguishedName::make(e.name, "CrossSign Corpus");
    e.is_root = true;
    e.distrusted = i >= trusted;
    dag.signatures.register_key(e.key);
    entities.push_back(std::move(e));
  }
  for (int i = 0; i < config.num_cas; ++i) {
    Entity e;
    e.name = "XS CA " + std::to_string(i);
    e.key = SimSig::keygen("xs-ca-" + std::to_string(config.seed) + "-" +
                           std::to_string(i));
    e.dn = DistinguishedName::make(e.name, "CrossSign Corpus");
    dag.signatures.register_key(e.key);
    entities.push_back(std::move(e));
  }

  const auto issue_ca_cert = [&](const Entity& subject,
                                 const Entity& issuer) -> CertPtr {
    return CertificateBuilder()
        .serial(serial++)
        .subject(subject.dn)
        .issuer(issuer.dn)
        .validity(config.not_before, config.not_after)
        .public_key(subject.key.key_id)
        .ca(std::nullopt)
        .sign(issuer.key)
        .take();
  };

  const auto add_ca_cert = [&](CertPtr cert) {
    dag.pool.add(cert);
    dag.ca_certs.push_back(std::move(cert));
  };

  // Self-signed root certificates. Trusted ones enter the store; distrusted
  // ones are distrusted by hash — and their certificates stay in the pool,
  // which is exactly the resurrection surface the graph must close.
  for (int i = 0; i < num_roots; ++i) {
    CertPtr cert = issue_ca_cert(entities[i], entities[i]);
    dag.root_certs.push_back(cert);
    if (entities[i].distrusted) {
      dag.store.distrust(cert->fingerprint_hex(), "corpus distrust");
    } else {
      (void)dag.store.add_trusted(cert);
    }
    add_ca_cert(std::move(cert));
  }

  std::set<std::pair<int, int>> edges;  // (issuer rank, subject rank)

  // Spanning structure: every subordinate CA gets one certificate from a
  // uniformly drawn lower-rank entity.
  for (int i = num_roots; i < static_cast<int>(entities.size()); ++i) {
    const int parent = static_cast<int>(rng.uniform(
        static_cast<std::uint64_t>(i)));
    edges.insert({parent, i});
    add_ca_cert(issue_ca_cert(entities[i], entities[parent]));
  }

  // Guaranteed bane edges: each distrusted root cross-signed by a trusted
  // root of lower rank (trusted roots occupy ranks [0, trusted)).
  for (int i = trusted; i < num_roots; ++i) {
    const int sponsor =
        static_cast<int>(rng.uniform(static_cast<std::uint64_t>(trusted)));
    if (edges.insert({sponsor, i}).second) {
      add_ca_cert(issue_ca_cert(entities[i], entities[sponsor]));
    }
  }

  // Extra cross-signs: random (lower rank -> higher rank) edges, dedup'd.
  for (int n = 0; n < config.extra_cross_signs; ++n) {
    if (entities.size() < 2) break;
    const int subject = 1 + static_cast<int>(rng.uniform(
                                static_cast<std::uint64_t>(
                                    entities.size() - 1)));
    const int issuer = static_cast<int>(
        rng.uniform(static_cast<std::uint64_t>(subject)));
    if (!edges.insert({issuer, subject}).second) continue;
    add_ca_cert(issue_ca_cert(entities[subject], entities[issuer]));
  }

  // Leaves, issued by subordinate CAs (or trusted roots when there are
  // none), each under its own domain.
  for (int i = 0; i < config.num_leaves; ++i) {
    int issuer;
    if (config.num_cas > 0) {
      issuer = num_roots + static_cast<int>(rng.uniform(
                               static_cast<std::uint64_t>(config.num_cas)));
    } else {
      issuer =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(trusted)));
    }
    const std::string domain = "leaf" + std::to_string(i) + ".example.com";
    SimKeyPair key = SimSig::keygen("xs-leaf-" + std::to_string(config.seed) +
                                    "-" + std::to_string(i));
    x509::KeyUsage ku;
    ku.set(x509::KeyUsageBit::kDigitalSignature);
    CertPtr leaf = CertificateBuilder()
                       .serial(serial++)
                       .subject(DistinguishedName::make(domain))
                       .issuer(entities[issuer].dn)
                       .validity(config.not_before, config.not_after)
                       .public_key(key.key_id)
                       .key_usage(ku)
                       .dns_names({domain})
                       .extended_key_usage({x509::oids::kp_server_auth()})
                       .sign(entities[issuer].key)
                       .take();
    dag.leaves.push_back(std::move(leaf));
    dag.leaf_domains.push_back(domain);
  }

  return dag;
}

}  // namespace anchor::corpus
