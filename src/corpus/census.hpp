// Constraint census (experiment E5). Recomputes the paper's §5.1
// measurement *from the certificates themselves* — not from the generator
// config — so the corpus calibration is independently checkable:
//
//   "out of 140 root certificates, zero used name constraints and only
//    five used path-length constraints. Out of 776 intermediate CA
//    certificates, 701 used path-length constraints but only 31 used name
//    constraints. Only six (out of 140) roots were included in at least
//    one chain where an intermediate included a name constraint."
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "corpus/corpus.hpp"
#include "rootstore/constraint_compile.hpp"
#include "rootstore/store.hpp"

namespace anchor::corpus {

struct CensusReport {
  std::size_t roots_total = 0;
  std::size_t roots_with_name_constraints = 0;
  std::size_t roots_with_path_len = 0;
  std::size_t intermediates_total = 0;
  std::size_t intermediates_with_name_constraints = 0;
  std::size_t intermediates_with_path_len = 0;
  // Roots appearing in >= 1 chain whose intermediate is name-constrained.
  std::size_t roots_with_constrained_chain = 0;
};

CensusReport run_census(const Corpus& corpus);

// --- Multi-primary disparity census (experiment E15) -----------------------
//
// The paper's §4 motivation: different primaries (Mozilla, Chrome, Apple)
// make different trust decisions about the *same* roots, and a binary
// trusted/untrusted bit cannot express most of the differences. We model
// three primaries over the shared corpus root set:
//
//   * mozilla-like — trusts everything, NSS-style metadata (date-usage
//     cutoffs, selective EV), a few explicit distrusts;
//   * chrome-like  — built END-TO-END from a generated Chrome Root Store
//     textproto through chromeproto::parse_store + compile_store, so the
//     census exercises the real ingestion pipeline: a thinner root set
//     with SCT / DNS-permit / version / EV-policy constraints as GCCs;
//   * apple-like   — a differently-thinned root set, uniform EV, its own
//     distrusts and S/MIME cutoffs.

inline constexpr std::size_t kPrimaryCount = 3;
inline constexpr std::array<const char*, kPrimaryCount> kPrimaryNames = {
    "mozilla-like", "chrome-like", "apple-like"};

struct PrimaryStores {
  std::array<rootstore::RootStore, kPrimaryCount> stores;
  // The textproto the chrome-like store was compiled from, and the
  // compiler's report — kept so benches and tools can show provenance.
  std::string chrome_textproto;
  rootstore::StoreCompileResult chrome_compile;
};

PrimaryStores make_primary_stores(const Corpus& corpus);

// Verdict-flip census over one store pair.
struct DisparityPair {
  std::size_t a = 0, b = 0;          // indices into PrimaryStores::stores
  std::size_t flips = 0;             // chains where the verdicts differ
  // A flip where the two stores disagree about the chain's root trust bit
  // itself — expressible by today's binary root stores.
  std::size_t root_level = 0;
  // A flip where BOTH stores trust the root: the disagreement lives in
  // GCCs or systematic metadata, which a binary trust bit cannot express.
  std::size_t constraint_level = 0;
  // Static store shape: roots trusted by both sides whose attached GCC
  // sets differ by name — exactly the disparities GCC merging preserves.
  std::size_t gcc_divergent_roots = 0;
  // rsf::merge(a, b) outcome for the pair.
  std::size_t merge_conflicts = 0;
  std::size_t merged_trusted = 0;
  std::size_t merged_gccs = 0;
};

struct DisparityReport {
  std::size_t chains = 0;
  std::array<std::size_t, kPrimaryCount> accepted{};  // per store
  std::array<DisparityPair, 3> pairs;  // (0,1), (0,2), (1,2)
  // Sum of constraint_level over pairs: the disparity volume only a
  // GCC-carrying (RSF-merged) store can express.
  std::size_t constraint_only_flips = 0;
};

// Verifies every corpus leaf under each primary (with the Chrome context
// facts supplied, so constraint GCCs evaluate rather than failing closed on
// missing context) and classifies every pairwise verdict flip.
DisparityReport run_disparity_census(const Corpus& corpus,
                                     const PrimaryStores& primaries);

}  // namespace anchor::corpus
