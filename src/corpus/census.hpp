// Constraint census (experiment E5). Recomputes the paper's §5.1
// measurement *from the certificates themselves* — not from the generator
// config — so the corpus calibration is independently checkable:
//
//   "out of 140 root certificates, zero used name constraints and only
//    five used path-length constraints. Out of 776 intermediate CA
//    certificates, 701 used path-length constraints but only 31 used name
//    constraints. Only six (out of 140) roots were included in at least
//    one chain where an intermediate included a name constraint."
#pragma once

#include <cstddef>

#include "corpus/corpus.hpp"

namespace anchor::corpus {

struct CensusReport {
  std::size_t roots_total = 0;
  std::size_t roots_with_name_constraints = 0;
  std::size_t roots_with_path_len = 0;
  std::size_t intermediates_total = 0;
  std::size_t intermediates_with_name_constraints = 0;
  std::size_t intermediates_with_path_len = 0;
  // Roots appearing in >= 1 chain whose intermediate is name-constrained.
  std::size_t roots_with_constrained_chain = 0;
};

CensusReport run_census(const Corpus& corpus);

}  // namespace anchor::corpus
