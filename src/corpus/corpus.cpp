#include "corpus/corpus.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::corpus {

using x509::CertificateBuilder;
using x509::DistinguishedName;

namespace {

const char* kRealTlds[] = {
    "com", "net",  "org", "de",   "uk",  "fr", "io",  "co", "jp", "cn",
    "ru",  "br",   "in",  "it",   "nl",  "au", "es",  "ca", "pl", "ch",
    "se",  "us",   "gov", "edu",  "mil", "tr", "gr",  "kr", "mx", "ar",
    "be",  "at",   "dk",  "fi",   "no",  "cz", "pt",  "ro", "hu", "ie",
    "il",  "sg",   "hk",  "tw",   "th",  "my", "id",  "ph", "vn", "za",
    "eg",  "ng",   "ke",  "ua",   "by",  "lt", "lv",  "ee", "is", "lu"};

const char* kWords[] = {
    "acme",  "globex", "initech", "umbra",  "vertex", "zenith", "nimbus",
    "quark", "lumen",  "strata",  "vortex", "helix",  "aurora", "cobalt",
    "ember", "fathom", "garnet",  "haven",  "indigo", "jasper", "krypton",
    "lotus", "meridian", "nova",  "onyx",   "prism",  "quartz", "raven",
    "sable", "tundra", "ultra",   "violet", "willow", "xenon",  "yonder",
    "zephyr"};

std::string random_label(Rng& rng) {
  const std::size_t word_count = sizeof(kWords) / sizeof(kWords[0]);
  std::string label = kWords[rng.uniform(word_count)];
  if (rng.chance(0.7)) {
    label += "-";
    label += kWords[rng.uniform(word_count)];
  }
  if (rng.chance(0.4)) {
    label += std::to_string(rng.uniform(1000));
  }
  return label;
}

// Draws a TLD-scope size with P(size <= 10) ~= 0.9 for the default s.
std::vector<std::string> draw_scope(Rng& rng,
                                    const std::vector<std::string>& universe,
                                    double zipf_s, int max_size) {
  std::size_t size =
      1 + rng.zipf(static_cast<std::size_t>(max_size), zipf_s);
  std::vector<std::string> scope;
  scope.reserve(size);
  // Popular TLDs are more likely to be in any CA's scope.
  while (scope.size() < size) {
    const std::string& tld = universe[rng.zipf(universe.size(), 1.0)];
    if (std::find(scope.begin(), scope.end(), tld) == scope.end()) {
      scope.push_back(tld);
    }
  }
  return scope;
}

}  // namespace

std::vector<std::string> Corpus::tld_universe(int count) {
  std::vector<std::string> out;
  const int real = static_cast<int>(sizeof(kRealTlds) / sizeof(kRealTlds[0]));
  for (int i = 0; i < count; ++i) {
    if (i < real) {
      out.emplace_back(kRealTlds[i]);
    } else {
      out.push_back("tld" + std::to_string(i));
    }
  }
  return out;
}

Corpus Corpus::generate(const CorpusConfig& config) {
  Corpus corpus;
  corpus.config_ = config;
  Rng rng(config.seed);
  std::vector<std::string> universe = tld_universe(config.num_tlds);

  const std::int64_t ca_not_before = config.time_origin - 5LL * 365 * 86400;
  const std::int64_t ca_not_after = config.time_origin + 25LL * 365 * 86400;

  // --- Roots -------------------------------------------------------------
  // Exactly `roots_with_path_len` roots carry a pathLenConstraint; none
  // carry name constraints (census: 0 of 140).
  std::vector<bool> root_has_plen(static_cast<std::size_t>(config.num_roots),
                                  false);
  {
    int assigned = 0;
    while (assigned < config.roots_with_path_len) {
      std::size_t pick = rng.uniform(static_cast<std::size_t>(config.num_roots));
      if (!root_has_plen[pick]) {
        root_has_plen[pick] = true;
        ++assigned;
      }
    }
  }

  for (int i = 0; i < config.num_roots; ++i) {
    CaProfile profile;
    std::string name = "Corpus Root CA R" + std::to_string(i);
    profile.key = SimSig::keygen(name);
    profile.tld_scope =
        draw_scope(rng, universe, config.tld_zipf_s, config.max_tlds_per_ca);
    CertificateBuilder builder;
    builder.serial(corpus.next_serial_++)
        .subject(DistinguishedName::make(name, "Corpus Trust Services"))
        .issuer(DistinguishedName::make(name, "Corpus Trust Services"))
        .validity(ca_not_before, ca_not_after)
        .public_key(profile.key.key_id)
        .subject_key_id(profile.key.key_id);
    if (root_has_plen[static_cast<std::size_t>(i)]) {
      builder.ca(static_cast<int>(rng.uniform(3)) + 1);
    } else {
      builder.ca(std::nullopt);
    }
    auto cert = builder.sign(profile.key);
    profile.cert = std::move(cert).take();
    corpus.signatures_.register_key(profile.key);
    corpus.roots_.push_back(std::move(profile));
  }

  // --- Intermediates -------------------------------------------------------
  // The `roots_with_constrained_chain` special roots host all
  // name-constrained intermediates; remaining intermediates are distributed
  // over all roots with a heavy tail (big CAs run many subordinates).
  std::vector<std::size_t> special_roots;
  while (special_roots.size() <
         static_cast<std::size_t>(config.roots_with_constrained_chain)) {
    std::size_t pick = rng.uniform(static_cast<std::size_t>(config.num_roots));
    if (std::find(special_roots.begin(), special_roots.end(), pick) ==
        special_roots.end()) {
      special_roots.push_back(pick);
    }
  }

  const int plain_intermediates =
      config.num_intermediates - config.intermediates_with_name_constraints;
  std::vector<int> parent_of;
  parent_of.reserve(static_cast<std::size_t>(config.num_intermediates));
  for (int i = 0; i < plain_intermediates; ++i) {
    parent_of.push_back(static_cast<int>(
        rng.zipf(static_cast<std::size_t>(config.num_roots), 0.8)));
  }
  for (int i = 0; i < config.intermediates_with_name_constraints; ++i) {
    parent_of.push_back(static_cast<int>(
        special_roots[static_cast<std::size_t>(i) % special_roots.size()]));
  }

  // Exactly `intermediates_with_path_len` of all intermediates get a
  // pathLenConstraint (the census's 701 / 776).
  std::vector<bool> int_has_plen(
      static_cast<std::size_t>(config.num_intermediates), false);
  {
    int assigned = 0;
    while (assigned < config.intermediates_with_path_len) {
      std::size_t pick =
          rng.uniform(static_cast<std::size_t>(config.num_intermediates));
      if (!int_has_plen[pick]) {
        int_has_plen[pick] = true;
        ++assigned;
      }
    }
  }

  for (int i = 0; i < config.num_intermediates; ++i) {
    CaProfile profile;
    profile.parent_root = parent_of[static_cast<std::size_t>(i)];
    const CaProfile& parent =
        corpus.roots_[static_cast<std::size_t>(profile.parent_root)];
    std::string name = "Corpus Issuing CA I" + std::to_string(i);
    profile.key = SimSig::keygen(name);
    // Scope: subset of the parent's scope (CAs delegate narrower).
    profile.tld_scope = parent.tld_scope;
    if (profile.tld_scope.size() > 1 && rng.chance(0.5)) {
      profile.tld_scope.resize(1 + rng.uniform(profile.tld_scope.size() - 1));
    }

    const bool name_constrained = i >= plain_intermediates;
    CertificateBuilder builder;
    builder.serial(corpus.next_serial_++)
        .subject(DistinguishedName::make(name, parent.cert->subject().organization()))
        .issuer(parent.cert->subject())
        .validity(ca_not_before + 86400, ca_not_after - 86400)
        .public_key(profile.key.key_id)
        .subject_key_id(profile.key.key_id)
        .authority_key_id(parent.key.key_id);
    if (int_has_plen[static_cast<std::size_t>(i)]) {
      builder.ca(0);  // typical real-world subordinate: pathLen 0
    } else {
      builder.ca(std::nullopt);
    }
    if (name_constrained) {
      // Constrain to the intermediate's first (or only) TLD.
      x509::NameConstraints nc;
      nc.permitted_dns.push_back(profile.tld_scope.front());
      builder.name_constraints(std::move(nc));
    }
    auto cert = builder.sign(parent.key);
    profile.cert = std::move(cert).take();
    corpus.signatures_.register_key(profile.key);
    corpus.intermediates_.push_back(std::move(profile));
  }

  // --- Leaves ---------------------------------------------------------------
  for (std::size_t i = 0; i < corpus.intermediates_.size(); ++i) {
    const CaProfile& issuer = corpus.intermediates_[i];
    std::size_t count = rng.count_with_mean(config.leaves_per_intermediate_mean);
    for (std::size_t n = 0; n < count; ++n) {
      LeafRecord record;
      record.issuer_intermediate = static_cast<int>(i);
      const std::string& tld =
          issuer.tld_scope[rng.uniform(issuer.tld_scope.size())];
      record.domain = random_label(rng) + "." + tld;
      record.smime = rng.chance(config.smime_fraction);

      std::int64_t not_before =
          config.time_origin +
          rng.uniform_range(0, config.time_span - 86400);
      std::int64_t lifetime_days = rng.uniform_range(
          std::max(1, config.leaf_lifetime_days_mean -
                          config.leaf_lifetime_days_jitter),
          config.leaf_lifetime_days_mean + config.leaf_lifetime_days_jitter);

      SimKeyPair leaf_key =
          SimSig::keygen("leaf-" + std::to_string(corpus.next_serial_));
      CertificateBuilder builder;
      builder.serial(corpus.next_serial_++)
          .subject(DistinguishedName::make(record.domain))
          .issuer(issuer.cert->subject())
          .validity(not_before, not_before + lifetime_days * 86400)
          .public_key(leaf_key.key_id)
          .authority_key_id(issuer.key.key_id);

      x509::KeyUsage ku;
      ku.set(x509::KeyUsageBit::kDigitalSignature);
      ku.set(x509::KeyUsageBit::kKeyEncipherment);
      builder.key_usage(ku);

      if (record.smime) {
        builder.extended_key_usage({x509::oids::kp_email_protection()});
        builder.dns_names({record.domain});
      } else {
        builder.extended_key_usage(
            {x509::oids::kp_server_auth(), x509::oids::kp_client_auth()});
        std::vector<std::string> names{record.domain};
        if (rng.chance(config.wildcard_fraction)) {
          names.push_back("*." + record.domain);
        } else {
          names.push_back("www." + record.domain);
        }
        builder.dns_names(std::move(names));
      }
      if (rng.chance(config.ev_fraction)) builder.ev();

      auto cert = builder.sign(issuer.key);
      record.cert = std::move(cert).take();
      corpus.leaves_.push_back(std::move(record));
    }
  }

  return corpus;
}

rootstore::RootStore Corpus::make_root_store() const {
  rootstore::RootStore store;
  for (const CaProfile& root : roots_) {
    rootstore::RootMetadata metadata;
    metadata.ev_allowed = true;
    (void)store.add_trusted(root.cert, metadata);
  }
  return store;
}

chain::CertificatePool Corpus::intermediate_pool() const {
  chain::CertificatePool pool;
  for (const CaProfile& intermediate : intermediates_) {
    pool.add(intermediate.cert);
  }
  return pool;
}

core::Chain Corpus::chain_for_leaf(std::size_t leaf_index) const {
  const LeafRecord& record = leaves_.at(leaf_index);
  const CaProfile& intermediate =
      intermediates_.at(static_cast<std::size_t>(record.issuer_intermediate));
  const CaProfile& root =
      roots_.at(static_cast<std::size_t>(intermediate.parent_root));
  return core::Chain{record.cert, intermediate.cert, root.cert};
}

x509::CertPtr Corpus::misissue(std::size_t intermediate_index,
                               const std::string& victim_domain,
                               std::int64_t not_before, int lifetime_days) {
  const CaProfile& issuer = intermediates_.at(intermediate_index);
  SimKeyPair key = SimSig::keygen("misissued-" + victim_domain + "-" +
                                  std::to_string(next_serial_));
  x509::KeyUsage ku;
  ku.set(x509::KeyUsageBit::kDigitalSignature);
  auto cert =
      CertificateBuilder()
          .serial(next_serial_++)
          .subject(DistinguishedName::make(victim_domain))
          .issuer(issuer.cert->subject())
          .validity(not_before, not_before + std::int64_t{lifetime_days} * 86400)
          .public_key(key.key_id)
          .key_usage(ku)
          .extended_key_usage({x509::oids::kp_server_auth()})
          .dns_names({victim_domain, "*." + victim_domain})
          .sign(issuer.key);
  return std::move(cert).take();
}

}  // namespace anchor::corpus
