#include "corpus/census.hpp"

#include <unordered_set>

namespace anchor::corpus {

CensusReport run_census(const Corpus& corpus) {
  CensusReport report;
  report.roots_total = corpus.roots().size();
  report.intermediates_total = corpus.intermediates().size();

  for (const CaProfile& root : corpus.roots()) {
    if (root.cert->name_constraints() && !root.cert->name_constraints()->empty()) {
      ++report.roots_with_name_constraints;
    }
    if (root.cert->path_len().has_value()) ++report.roots_with_path_len;
  }

  std::unordered_set<int> constrained_chain_roots;
  for (const CaProfile& intermediate : corpus.intermediates()) {
    if (intermediate.cert->name_constraints() &&
        !intermediate.cert->name_constraints()->empty()) {
      ++report.intermediates_with_name_constraints;
      constrained_chain_roots.insert(intermediate.parent_root);
    }
    if (intermediate.cert->path_len().has_value()) {
      ++report.intermediates_with_path_len;
    }
  }
  report.roots_with_constrained_chain = constrained_chain_roots.size();
  return report;
}

}  // namespace anchor::corpus
