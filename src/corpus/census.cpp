#include "corpus/census.hpp"

#include <cassert>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "chain/verifier.hpp"
#include "core/facts.hpp"
#include "rootstore/chromeproto.hpp"
#include "rsf/merge.hpp"

namespace anchor::corpus {

CensusReport run_census(const Corpus& corpus) {
  CensusReport report;
  report.roots_total = corpus.roots().size();
  report.intermediates_total = corpus.intermediates().size();

  for (const CaProfile& root : corpus.roots()) {
    if (root.cert->name_constraints() && !root.cert->name_constraints()->empty()) {
      ++report.roots_with_name_constraints;
    }
    if (root.cert->path_len().has_value()) ++report.roots_with_path_len;
  }

  std::unordered_set<int> constrained_chain_roots;
  for (const CaProfile& intermediate : corpus.intermediates()) {
    if (intermediate.cert->name_constraints() &&
        !intermediate.cert->name_constraints()->empty()) {
      ++report.intermediates_with_name_constraints;
      constrained_chain_roots.insert(intermediate.parent_root);
    }
    if (intermediate.cert->path_len().has_value()) {
      ++report.intermediates_with_path_len;
    }
  }
  report.roots_with_constrained_chain = constrained_chain_roots.size();
  return report;
}

namespace {

// The fixed validation context every census verdict runs under. Chrome-like
// constraint GCCs reference SCT timestamps, the client version, and the
// validation instant; the other two primaries ignore these facts.
rootstore::ChainContext census_context(const Corpus& corpus) {
  rootstore::ChainContext ctx;
  const std::int64_t now = corpus.config().validation_time();
  ctx.sct_timestamps = {now - 86400, now - 7200};
  ctx.client_version = rootstore::chromeproto::Version::parse("125.0.6368.2");
  ctx.validation_time = now;
  return ctx;
}

rootstore::RootStore make_mozilla_like(const Corpus& corpus) {
  // Trusts every corpus root, with NSS-style systematic metadata: a TLS
  // date-usage cutoff on a slice of roots, the EV bit on alternating
  // roots, plus a few explicit distrusts (negative inclusion).
  rootstore::RootStore store;
  // 45 days before the census instant: recently issued leaves under a
  // cutoff root are distrusted while older ones keep working — the NSS
  // partial-distrust pattern (§2.2).
  const std::int64_t cutoff = corpus.config().validation_time() - 45 * 86400;
  const auto& roots = corpus.roots();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    rootstore::RootMetadata metadata;
    metadata.ev_allowed = (i % 2 == 0);
    metadata.justification = "mozilla-like census";
    if (i % 29 == 1) metadata.tls_distrust_after = cutoff;
    (void)store.add_trusted(roots[i].cert, std::move(metadata));
  }
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i % 37 == 5) {
      store.distrust(roots[i].cert->fingerprint_hex(), "census incident");
    }
  }
  return store;
}

// The chrome-like primary is deliberately NOT hand-assembled: we render a
// Chrome Root Store textproto and push it through the real ingestion
// pipeline (chromeproto::parse_store -> compile_store), so the census
// measures the store the compiler actually produces.
std::string render_chrome_textproto(const Corpus& corpus) {
  const std::int64_t now = corpus.config().validation_time();
  std::string text = "version_major: 1\n";
  const auto& roots = corpus.roots();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i % 23 == 3) continue;  // thinner root set than mozilla-like
    text += "trust_anchors {\n";
    text += "  sha256_hex: \"" + roots[i].cert->fingerprint_hex() + "\"\n";
    if (i % 13 == 0) {
      // An EV policy list that does NOT include the corpus EV marker:
      // EV leaves under these roots fail the ev-policy GCC.
      text += "  ev_policy_oids: \"1.3.6.1.4.1.11129.2.4.9\"\n";
    } else if (i % 2 == 0) {
      text += "  ev_policy_oids: \"2.23.140.1.1\"\n";
    }
    if (i % 5 == 0) {
      // Satisfiable SCT freshness bound (context SCTs predate it).
      text += "  constraints {\n";
      text += "    sct_not_after_sec: " + std::to_string(now + 86400) + "\n";
      text += "  }\n";
    }
    if (i % 7 == 0) {
      // Permit only the root's most popular TLD; leaves issued for the
      // rest of the root's scope fail unless another block passes.
      text += "  constraints {\n";
      text += "    permitted_dns_names: \"" + roots[i].tld_scope.front() +
              "\"\n";
      text += "  }\n";
    }
    if (i % 11 == 0) {
      // Version gate ahead of the census client (125.x): fails closed.
      text += "  constraints {\n";
      text += "    min_version: \"130\"\n";
      text += "  }\n";
    }
    text += "}\n";
  }
  return text;
}

rootstore::RootStore make_apple_like(const Corpus& corpus) {
  // A differently-thinned root set, uniform EV, its own distrusts, and
  // S/MIME date-usage cutoffs on a slice of roots.
  rootstore::RootStore store;
  const std::int64_t cutoff = corpus.config().validation_time() - 45 * 86400;
  const auto& roots = corpus.roots();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i % 19 == 2) continue;
    rootstore::RootMetadata metadata;
    metadata.ev_allowed = true;
    metadata.justification = "apple-like census";
    if (i % 17 == 4) metadata.smime_distrust_after = cutoff;
    (void)store.add_trusted(roots[i].cert, std::move(metadata));
  }
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i % 43 == 11) {
      store.distrust(roots[i].cert->fingerprint_hex(), "census incident");
    }
  }
  return store;
}

// Roots trusted by both stores whose attached GCC name sets differ.
std::size_t count_gcc_divergent_roots(const rootstore::RootStore& a,
                                      const rootstore::RootStore& b) {
  std::size_t divergent = 0;
  for (const rootstore::RootEntry* entry : a.trusted()) {
    const std::string hash = entry->cert->fingerprint_hex();
    if (b.state_of(hash) != rootstore::TrustState::kTrusted) continue;
    std::unordered_set<std::string> names_a, names_b;
    for (const core::Gcc& gcc : a.gccs().for_root(hash)) {
      names_a.insert(gcc.name());
    }
    for (const core::Gcc& gcc : b.gccs().for_root(hash)) {
      names_b.insert(gcc.name());
    }
    if (names_a != names_b) ++divergent;
  }
  return divergent;
}

}  // namespace

PrimaryStores make_primary_stores(const Corpus& corpus) {
  PrimaryStores primaries;
  primaries.stores[0] = make_mozilla_like(corpus);
  primaries.stores[2] = make_apple_like(corpus);

  primaries.chrome_textproto = render_chrome_textproto(corpus);
  rootstore::chromeproto::ParseResult parsed =
      rootstore::chromeproto::parse_store(primaries.chrome_textproto);
  // The textproto is generated by this file; a parse failure is a bug
  // here, not a data problem.
  assert(parsed.ok());
  std::unordered_map<std::string, x509::CertPtr> by_hash;
  for (const CaProfile& root : corpus.roots()) {
    by_hash.emplace(root.cert->fingerprint_hex(), root.cert);
  }
  auto resolver = [&by_hash](const std::string& sha256_hex) -> x509::CertPtr {
    auto it = by_hash.find(sha256_hex);
    return it == by_hash.end() ? nullptr : it->second;
  };
  primaries.chrome_compile =
      rootstore::compile_store(*parsed.store, resolver, primaries.stores[1])
          .take();
  const auto& roots = corpus.roots();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i % 41 == 7) {
      primaries.stores[1].distrust(roots[i].cert->fingerprint_hex(),
                                   "census incident");
    }
  }
  return primaries;
}

DisparityReport run_disparity_census(const Corpus& corpus,
                                     const PrimaryStores& primaries) {
  DisparityReport report;
  report.pairs = {DisparityPair{.a = 0, .b = 1}, DisparityPair{.a = 0, .b = 2},
                  DisparityPair{.a = 1, .b = 2}};

  const chain::CertificatePool pool = corpus.intermediate_pool();
  std::array<std::optional<chain::ChainVerifier>, kPrimaryCount> verifiers;
  for (std::size_t s = 0; s < kPrimaryCount; ++s) {
    verifiers[s].emplace(primaries.stores[s], corpus.signatures());
  }
  const rootstore::ChainContext context = census_context(corpus);

  report.chains = corpus.leaves().size();
  for (std::size_t li = 0; li < corpus.leaves().size(); ++li) {
    const LeafRecord& leaf = corpus.leaves()[li];
    const CaProfile& issuer =
        corpus.intermediates()[static_cast<std::size_t>(
            leaf.issuer_intermediate)];
    const std::string true_root =
        corpus.roots()[static_cast<std::size_t>(issuer.parent_root)]
            .cert->fingerprint_hex();

    chain::VerifyOptions options;
    options.time = corpus.config().validation_time();
    options.usage = leaf.smime ? chain::Usage::kSmime : chain::Usage::kTls;
    if (!leaf.smime) options.hostname = leaf.domain;
    const core::FactSet context_facts =
        context.to_facts("chain-" + leaf.cert->fingerprint_hex());
    options.gcc_context = &context_facts;

    std::array<bool, kPrimaryCount> verdict{};
    for (std::size_t s = 0; s < kPrimaryCount; ++s) {
      verdict[s] = verifiers[s]->verify(leaf.cert, pool, options).ok;
      if (verdict[s]) ++report.accepted[s];
    }

    for (DisparityPair& pair : report.pairs) {
      if (verdict[pair.a] == verdict[pair.b]) continue;
      ++pair.flips;
      const bool a_trusts = primaries.stores[pair.a].state_of(true_root) ==
                            rootstore::TrustState::kTrusted;
      const bool b_trusts = primaries.stores[pair.b].state_of(true_root) ==
                            rootstore::TrustState::kTrusted;
      if (a_trusts != b_trusts) {
        // The stores disagree about the root itself: a binary
        // trusted/untrusted bit expresses this disparity.
        ++pair.root_level;
      } else {
        // Both trust the root; the flip lives in GCCs or systematic
        // metadata — invisible to a binary trust bit.
        ++pair.constraint_level;
      }
    }
  }

  for (DisparityPair& pair : report.pairs) {
    pair.gcc_divergent_roots = count_gcc_divergent_roots(
        primaries.stores[pair.a], primaries.stores[pair.b]);
    rsf::MergeResult merged =
        rsf::merge(primaries.stores[pair.a], primaries.stores[pair.b]);
    pair.merge_conflicts = merged.conflicts.size();
    pair.merged_trusted = merged.merged.trusted_count();
    pair.merged_gccs = merged.merged.gccs().total();
    report.constraint_only_flips += pair.constraint_level;
  }
  return report;
}

}  // namespace anchor::corpus
