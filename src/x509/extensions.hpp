// Typed X.509 v3 extensions and their DER encodings. Each struct encodes to
// and decodes from the *extnValue* contents (the DER inside the OCTET
// STRING), per RFC 5280 §4.2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn1/der.hpp"
#include "asn1/oid.hpp"
#include "util/result.hpp"

namespace anchor::x509 {

// Raw extension as it appears in the certificate.
struct Extension {
  asn1::Oid oid;
  bool critical = false;
  Bytes value;  // DER contents of the extnValue OCTET STRING

  bool operator==(const Extension&) const = default;
};

// --- BasicConstraints (2.5.29.19) ------------------------------------------
struct BasicConstraints {
  bool is_ca = false;
  std::optional<int> path_len;  // only meaningful when is_ca

  Bytes encode() const;
  static Result<BasicConstraints> decode(BytesView der);
};

// --- KeyUsage (2.5.29.15) ---------------------------------------------------
// Named-bit flags. Values match RFC 5280 bit positions.
enum class KeyUsageBit : std::uint16_t {
  kDigitalSignature = 1 << 0,
  kNonRepudiation = 1 << 1,
  kKeyEncipherment = 1 << 2,
  kDataEncipherment = 1 << 3,
  kKeyAgreement = 1 << 4,
  kKeyCertSign = 1 << 5,
  kCrlSign = 1 << 6,
};

struct KeyUsage {
  std::uint16_t bits = 0;

  void set(KeyUsageBit bit) { bits |= static_cast<std::uint16_t>(bit); }
  bool has(KeyUsageBit bit) const {
    return (bits & static_cast<std::uint16_t>(bit)) != 0;
  }

  Bytes encode() const;
  static Result<KeyUsage> decode(BytesView der);

  // Canonical names as used in Datalog facts ("digitalSignature", ...).
  std::vector<std::string> names() const;
  static std::optional<KeyUsageBit> bit_by_name(std::string_view name);
};

// --- ExtendedKeyUsage (2.5.29.37) -------------------------------------------
struct ExtendedKeyUsage {
  std::vector<asn1::Oid> purposes;

  bool has(const asn1::Oid& purpose) const;

  Bytes encode() const;
  static Result<ExtendedKeyUsage> decode(BytesView der);

  // Canonical names for Datalog facts ("id-kp-serverAuth", ...); unknown
  // purposes render as dotted OIDs.
  std::vector<std::string> names() const;
};

// --- SubjectAltName (2.5.29.17) ---------------------------------------------
// dNSName entries only: the corpus and the paper's constraints are DNS-based.
struct SubjectAltName {
  std::vector<std::string> dns_names;

  Bytes encode() const;
  static Result<SubjectAltName> decode(BytesView der);
};

// --- NameConstraints (2.5.29.30) --------------------------------------------
struct NameConstraints {
  std::vector<std::string> permitted_dns;
  std::vector<std::string> excluded_dns;

  bool empty() const { return permitted_dns.empty() && excluded_dns.empty(); }

  // True iff `host` satisfies the constraint set (inside some permitted
  // subtree if any are given, and inside no excluded subtree).
  bool allows(std::string_view host) const;

  Bytes encode() const;
  static Result<NameConstraints> decode(BytesView der);
};

// --- CertificatePolicies (2.5.29.32) ----------------------------------------
struct CertificatePolicies {
  std::vector<asn1::Oid> policies;

  bool has(const asn1::Oid& policy) const;

  Bytes encode() const;
  static Result<CertificatePolicies> decode(BytesView der);
};

// --- Subject / Authority key identifiers ------------------------------------
struct SubjectKeyIdentifier {
  Bytes key_id;

  Bytes encode() const;
  static Result<SubjectKeyIdentifier> decode(BytesView der);
};

struct AuthorityKeyIdentifier {
  Bytes key_id;

  Bytes encode() const;
  static Result<AuthorityKeyIdentifier> decode(BytesView der);
};

}  // namespace anchor::x509
