// X.501 distinguished names, restricted to the attribute types the corpus
// uses (CN, O, OU, C). Each RDN holds exactly one attribute, which matches
// the overwhelming majority of real Web-PKI names.
#pragma once

#include <string>
#include <vector>

#include "asn1/der.hpp"
#include "asn1/oid.hpp"
#include "util/result.hpp"

namespace anchor::x509 {

struct NameAttribute {
  asn1::Oid type;
  std::string value;

  bool operator==(const NameAttribute&) const = default;
};

class DistinguishedName {
 public:
  DistinguishedName() = default;

  static DistinguishedName make(std::string common_name,
                                std::string organization = "",
                                std::string country = "");

  DistinguishedName& add(const asn1::Oid& type, std::string value);

  const std::vector<NameAttribute>& attributes() const { return attrs_; }
  bool empty() const { return attrs_.empty(); }

  // First CN attribute, or "" if none.
  std::string common_name() const;
  std::string organization() const;

  // RFC 4514-flavoured single-line rendering, e.g. "CN=Example Root, O=Example".
  std::string to_string() const;

  void encode(asn1::Writer& writer) const;
  static Status decode(asn1::Reader& reader, DistinguishedName& out);

  bool operator==(const DistinguishedName&) const = default;

 private:
  std::vector<NameAttribute> attrs_;
};

}  // namespace anchor::x509
