#include "x509/name.hpp"

#include "x509/oids.hpp"

namespace anchor::x509 {

DistinguishedName DistinguishedName::make(std::string common_name,
                                          std::string organization,
                                          std::string country) {
  DistinguishedName dn;
  if (!country.empty()) dn.add(oids::country(), std::move(country));
  if (!organization.empty()) dn.add(oids::organization(), std::move(organization));
  if (!common_name.empty()) dn.add(oids::common_name(), std::move(common_name));
  return dn;
}

DistinguishedName& DistinguishedName::add(const asn1::Oid& type,
                                          std::string value) {
  attrs_.push_back(NameAttribute{type, std::move(value)});
  return *this;
}

std::string DistinguishedName::common_name() const {
  for (const auto& attr : attrs_) {
    if (attr.type == oids::common_name()) return attr.value;
  }
  return "";
}

std::string DistinguishedName::organization() const {
  for (const auto& attr : attrs_) {
    if (attr.type == oids::organization()) return attr.value;
  }
  return "";
}

std::string DistinguishedName::to_string() const {
  std::string out;
  for (const auto& attr : attrs_) {
    if (!out.empty()) out += ", ";
    if (attr.type == oids::common_name()) out += "CN=";
    else if (attr.type == oids::organization()) out += "O=";
    else if (attr.type == oids::organizational_unit()) out += "OU=";
    else if (attr.type == oids::country()) out += "C=";
    else out += attr.type.to_string() + "=";
    out += attr.value;
  }
  return out;
}

void DistinguishedName::encode(asn1::Writer& writer) const {
  writer.sequence([&](asn1::Writer& rdns) {
    for (const auto& attr : attrs_) {
      rdns.set([&](asn1::Writer& rdn) {
        rdn.sequence([&](asn1::Writer& atv) {
          atv.oid(attr.type);
          atv.utf8_string(attr.value);
        });
      });
    }
  });
}

Status DistinguishedName::decode(asn1::Reader& reader, DistinguishedName& out) {
  asn1::Reader rdns{{}};
  if (Status s = reader.read_sequence(rdns); !s) return s;
  DistinguishedName dn;
  while (!rdns.done()) {
    asn1::Reader rdn{{}};
    if (Status s = rdns.read_set(rdn); !s) return s;
    while (!rdn.done()) {
      asn1::Reader atv{{}};
      if (Status s = rdn.read_sequence(atv); !s) return s;
      NameAttribute attr;
      if (Status s = atv.read_oid(attr.type); !s) return s;
      if (Status s = atv.read_string(attr.value); !s) return s;
      dn.attrs_.push_back(std::move(attr));
    }
  }
  out = std::move(dn);
  return {};
}

}  // namespace anchor::x509
