#include "x509/builder.hpp"

#include "asn1/der.hpp"
#include "x509/oids.hpp"

namespace anchor::x509 {

using asn1::Writer;

CertificateBuilder::CertificateBuilder() = default;

CertificateBuilder& CertificateBuilder::serial(std::uint64_t serial) {
  serial_ = serial;
  return *this;
}

CertificateBuilder& CertificateBuilder::subject(DistinguishedName dn) {
  subject_ = std::move(dn);
  return *this;
}

CertificateBuilder& CertificateBuilder::issuer(DistinguishedName dn) {
  issuer_ = std::move(dn);
  return *this;
}

CertificateBuilder& CertificateBuilder::validity(std::int64_t not_before,
                                                 std::int64_t not_after) {
  not_before_ = not_before;
  not_after_ = not_after;
  return *this;
}

CertificateBuilder& CertificateBuilder::public_key(Bytes key_id) {
  public_key_ = std::move(key_id);
  return *this;
}

CertificateBuilder& CertificateBuilder::ca(std::optional<int> path_len) {
  basic_constraints_ = BasicConstraints{true, path_len};
  if (!key_usage_) {
    KeyUsage usage;
    usage.set(KeyUsageBit::kKeyCertSign);
    usage.set(KeyUsageBit::kCrlSign);
    key_usage_ = usage;
  }
  return *this;
}

CertificateBuilder& CertificateBuilder::key_usage(KeyUsage usage) {
  key_usage_ = usage;
  return *this;
}

CertificateBuilder& CertificateBuilder::extended_key_usage(
    std::vector<asn1::Oid> purposes) {
  extended_key_usage_ = ExtendedKeyUsage{std::move(purposes)};
  return *this;
}

CertificateBuilder& CertificateBuilder::dns_names(std::vector<std::string> names) {
  subject_alt_name_ = SubjectAltName{std::move(names)};
  return *this;
}

CertificateBuilder& CertificateBuilder::name_constraints(
    NameConstraints constraints) {
  name_constraints_ = std::move(constraints);
  return *this;
}

CertificateBuilder& CertificateBuilder::policies(
    std::vector<asn1::Oid> policy_oids) {
  certificate_policies_ = CertificatePolicies{std::move(policy_oids)};
  return *this;
}

CertificateBuilder& CertificateBuilder::ev() {
  if (!certificate_policies_) certificate_policies_ = CertificatePolicies{};
  if (!certificate_policies_->has(oids::ev_policy_marker())) {
    certificate_policies_->policies.push_back(oids::ev_policy_marker());
  }
  return *this;
}

CertificateBuilder& CertificateBuilder::subject_key_id(Bytes key_id) {
  subject_key_identifier_ = SubjectKeyIdentifier{std::move(key_id)};
  return *this;
}

CertificateBuilder& CertificateBuilder::authority_key_id(Bytes key_id) {
  authority_key_identifier_ = AuthorityKeyIdentifier{std::move(key_id)};
  return *this;
}

CertificateBuilder& CertificateBuilder::extension(Extension ext) {
  extra_extensions_.push_back(std::move(ext));
  return *this;
}

namespace {
void write_algorithm(Writer& w) {
  w.sequence([&](Writer& alg) {
    alg.oid(oids::sig_alg_simsig());
    alg.null();
  });
}

void write_extension(Writer& exts, const asn1::Oid& oid, bool critical,
                     BytesView value) {
  exts.sequence([&](Writer& ext) {
    ext.oid(oid);
    if (critical) ext.boolean(true);
    ext.octet_string(value);
  });
}
}  // namespace

Bytes CertificateBuilder::build_tbs() const {
  Writer w;
  w.sequence([&](Writer& tbs) {
    tbs.context(0, [&](Writer& v) { v.integer(2); });  // v3
    std::uint8_t serial_bytes[8];
    for (int i = 0; i < 8; ++i) {
      serial_bytes[i] = static_cast<std::uint8_t>(serial_ >> (56 - 8 * i));
    }
    tbs.integer_bytes(BytesView(serial_bytes, 8));
    write_algorithm(tbs);
    issuer_.encode(tbs);
    tbs.sequence([&](Writer& validity) {
      validity.time(not_before_);
      validity.time(not_after_);
    });
    subject_.encode(tbs);
    tbs.sequence([&](Writer& spki) {
      spki.sequence([&](Writer& alg) {
        alg.oid(oids::sig_alg_simsig());
        alg.null();
      });
      spki.bit_string(BytesView(public_key_));
    });

    // extensions [3]
    bool any = basic_constraints_ || key_usage_ || extended_key_usage_ ||
               subject_alt_name_ || name_constraints_ ||
               certificate_policies_ || subject_key_identifier_ ||
               authority_key_identifier_ || !extra_extensions_.empty();
    if (any) {
      tbs.context(3, [&](Writer& wrapper) {
        wrapper.sequence([&](Writer& exts) {
          if (basic_constraints_) {
            Bytes v = basic_constraints_->encode();
            write_extension(exts, oids::basic_constraints(), true, BytesView(v));
          }
          if (key_usage_) {
            Bytes v = key_usage_->encode();
            write_extension(exts, oids::key_usage(), true, BytesView(v));
          }
          if (extended_key_usage_) {
            Bytes v = extended_key_usage_->encode();
            write_extension(exts, oids::extended_key_usage(), false, BytesView(v));
          }
          if (subject_alt_name_) {
            Bytes v = subject_alt_name_->encode();
            write_extension(exts, oids::subject_alt_name(), false, BytesView(v));
          }
          if (name_constraints_) {
            Bytes v = name_constraints_->encode();
            write_extension(exts, oids::name_constraints(), true, BytesView(v));
          }
          if (certificate_policies_) {
            Bytes v = certificate_policies_->encode();
            write_extension(exts, oids::certificate_policies(), false, BytesView(v));
          }
          if (subject_key_identifier_) {
            Bytes v = subject_key_identifier_->encode();
            write_extension(exts, oids::subject_key_identifier(), false, BytesView(v));
          }
          if (authority_key_identifier_) {
            Bytes v = authority_key_identifier_->encode();
            write_extension(exts, oids::authority_key_identifier(), false, BytesView(v));
          }
          for (const auto& ext : extra_extensions_) {
            write_extension(exts, ext.oid, ext.critical, BytesView(ext.value));
          }
        });
      });
    }
  });
  return w.take();
}

Result<CertPtr> CertificateBuilder::sign(const SimKeyPair& issuer_key) const {
  if (subject_.empty()) return err("builder: subject required");
  if (issuer_.empty()) return err("builder: issuer required");
  if (public_key_.empty()) return err("builder: public key required");
  if (not_after_ < not_before_) return err("builder: notAfter < notBefore");

  Bytes tbs = build_tbs();
  Bytes signature = SimSig::sign(issuer_key, BytesView(tbs));

  Writer w;
  w.sequence([&](Writer& cert) {
    cert.raw(BytesView(tbs));
    write_algorithm(cert);
    cert.bit_string(BytesView(signature));
  });
  return Certificate::parse(BytesView(w.data()));
}

}  // namespace anchor::x509
