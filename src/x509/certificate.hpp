// The in-memory certificate model. A `Certificate` owns its DER encoding and
// caches the parsed fields chain building, GCC fact conversion, and the
// census tooling need. Instances are immutable after construction; the
// shared_ptr alias `CertPtr` is how pools, stores and chains refer to them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/sha256.hpp"
#include "x509/extensions.hpp"
#include "x509/name.hpp"

namespace anchor::x509 {

class Certificate;
using CertPtr = std::shared_ptr<const Certificate>;

class Certificate {
 public:
  // Parses a DER-encoded X.509 v3 certificate. The returned object keeps a
  // copy of `der`.
  static Result<CertPtr> parse(BytesView der);

  // PEM convenience ("CERTIFICATE" label).
  static Result<CertPtr> parse_pem(std::string_view pem);
  std::string to_pem() const;

  const Bytes& der() const { return der_; }
  const Bytes& tbs_der() const { return tbs_der_; }
  const Bytes& signature() const { return signature_; }
  const asn1::Oid& signature_algorithm() const { return sig_alg_; }

  // SHA-256 over the full DER encoding — the identity GCCs bind to.
  const Sha256::Digest& fingerprint() const { return fingerprint_; }
  std::string fingerprint_hex() const;

  const Bytes& serial() const { return serial_; }
  const DistinguishedName& issuer() const { return issuer_; }
  const DistinguishedName& subject() const { return subject_; }
  std::int64_t not_before() const { return not_before_; }
  std::int64_t not_after() const { return not_after_; }

  // SubjectPublicKeyInfo public-key bytes (the SimSig key id).
  const Bytes& public_key() const { return public_key_; }

  const std::vector<Extension>& extensions() const { return extensions_; }
  const Extension* find_extension(const asn1::Oid& oid) const;

  // Parsed well-known extensions (nullopt when absent).
  const std::optional<BasicConstraints>& basic_constraints() const {
    return basic_constraints_;
  }
  const std::optional<KeyUsage>& key_usage() const { return key_usage_; }
  const std::optional<ExtendedKeyUsage>& extended_key_usage() const {
    return extended_key_usage_;
  }
  const std::optional<SubjectAltName>& subject_alt_name() const {
    return subject_alt_name_;
  }
  const std::optional<NameConstraints>& name_constraints() const {
    return name_constraints_;
  }
  const std::optional<CertificatePolicies>& certificate_policies() const {
    return certificate_policies_;
  }
  const std::optional<SubjectKeyIdentifier>& subject_key_identifier() const {
    return subject_key_identifier_;
  }
  const std::optional<AuthorityKeyIdentifier>& authority_key_identifier() const {
    return authority_key_identifier_;
  }

  // Derived predicates.
  bool is_ca() const;
  std::optional<int> path_len() const;
  bool is_self_issued() const { return issuer_ == subject_; }
  bool valid_at(std::int64_t unix_seconds) const {
    return unix_seconds >= not_before_ && unix_seconds <= not_after_;
  }
  // Certificate carries the EV policy marker (see oids.hpp).
  bool is_ev() const;
  // SAN dNSName (or, absent a SAN, subject CN) matches `host`, with
  // single-label wildcard support.
  bool matches_host(std::string_view host) const;
  // All DNS names the certificate is valid for (SAN, else CN).
  std::vector<std::string> dns_names() const;

  std::int64_t lifetime_seconds() const { return not_after_ - not_before_; }

 private:
  friend class CertificateBuilder;
  Certificate() = default;

  static Status parse_into(BytesView der, Certificate& cert);

  Bytes der_;
  Bytes tbs_der_;
  Bytes signature_;
  asn1::Oid sig_alg_;
  Sha256::Digest fingerprint_{};

  Bytes serial_;
  DistinguishedName issuer_;
  DistinguishedName subject_;
  std::int64_t not_before_ = 0;
  std::int64_t not_after_ = 0;
  Bytes public_key_;
  std::vector<Extension> extensions_;

  std::optional<BasicConstraints> basic_constraints_;
  std::optional<KeyUsage> key_usage_;
  std::optional<ExtendedKeyUsage> extended_key_usage_;
  std::optional<SubjectAltName> subject_alt_name_;
  std::optional<NameConstraints> name_constraints_;
  std::optional<CertificatePolicies> certificate_policies_;
  std::optional<SubjectKeyIdentifier> subject_key_identifier_;
  std::optional<AuthorityKeyIdentifier> authority_key_identifier_;
};

}  // namespace anchor::x509
