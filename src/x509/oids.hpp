// Well-known OIDs used across the X.509 layer. Returned by reference from
// accessor functions to avoid static-initialization-order issues.
#pragma once

#include "asn1/oid.hpp"

namespace anchor::x509::oids {

using asn1::Oid;

// DN attribute types.
const Oid& common_name();          // 2.5.4.3
const Oid& country();              // 2.5.4.6
const Oid& organization();         // 2.5.4.10
const Oid& organizational_unit();  // 2.5.4.11

// Extensions.
const Oid& subject_key_identifier();    // 2.5.29.14
const Oid& key_usage();                 // 2.5.29.15
const Oid& subject_alt_name();          // 2.5.29.17
const Oid& basic_constraints();         // 2.5.29.19
const Oid& name_constraints();          // 2.5.29.30
const Oid& certificate_policies();      // 2.5.29.32
const Oid& authority_key_identifier();  // 2.5.29.35
const Oid& extended_key_usage();        // 2.5.29.37

// Extended key usage purposes.
const Oid& kp_server_auth();      // 1.3.6.1.5.5.7.3.1
const Oid& kp_client_auth();      // 1.3.6.1.5.5.7.3.2
const Oid& kp_code_signing();     // 1.3.6.1.5.5.7.3.3
const Oid& kp_email_protection(); // 1.3.6.1.5.5.7.3.4 (S/MIME)
const Oid& kp_ocsp_signing();     // 1.3.6.1.5.5.7.3.9

// Policies. anyPolicy plus a stand-in EV policy OID: real EV policy OIDs
// are CA-specific; the corpus uses this single marker (DESIGN.md §5).
const Oid& any_policy();          // 2.5.29.32.0
const Oid& ev_policy_marker();    // 2.23.140.1.1 (CA/B EV guidelines arc)

// AlgorithmIdentifier for SimSig (private-enterprise arc; see DESIGN.md §5).
const Oid& sig_alg_simsig();      // 1.3.6.1.4.1.57264.1

}  // namespace anchor::x509::oids
