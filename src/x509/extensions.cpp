#include "x509/extensions.hpp"

#include "util/strings.hpp"
#include "x509/oids.hpp"

namespace anchor::x509 {

using asn1::Reader;
using asn1::Writer;

// --- BasicConstraints --------------------------------------------------------

Bytes BasicConstraints::encode() const {
  Writer w;
  w.sequence([&](Writer& seq) {
    if (is_ca) seq.boolean(true);  // DEFAULT FALSE omitted when false
    if (is_ca && path_len.has_value()) seq.integer(*path_len);
  });
  return w.take();
}

Result<BasicConstraints> BasicConstraints::decode(BytesView der) {
  Reader outer(der);
  Reader seq{{}};
  if (Status s = outer.read_sequence(seq); !s) return err(s.error());
  BasicConstraints bc;
  if (seq.peek_tag() == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
    if (Status s = seq.read_boolean(bc.is_ca); !s) return err(s.error());
  }
  if (seq.peek_tag() == static_cast<std::uint8_t>(asn1::Tag::kInteger)) {
    std::int64_t len = 0;
    if (Status s = seq.read_integer(len); !s) return err(s.error());
    if (len < 0) return err("basicConstraints: negative pathLen");
    bc.path_len = static_cast<int>(len);
  }
  if (!seq.done()) return err("basicConstraints: trailing data");
  return bc;
}

// --- KeyUsage ----------------------------------------------------------------

Bytes KeyUsage::encode() const {
  // One content byte; bit 0 (digitalSignature) is the MSB in DER named-bit
  // order. We always emit 0 unused bits for simplicity (we control both
  // encoder and decoder; see der.hpp).
  std::uint8_t byte = 0;
  for (int i = 0; i < 7; ++i) {
    if (bits & (1u << i)) byte |= static_cast<std::uint8_t>(0x80 >> i);
  }
  Writer w;
  w.bit_string(BytesView(&byte, 1));
  return w.take();
}

Result<KeyUsage> KeyUsage::decode(BytesView der) {
  Reader r(der);
  Bytes content;
  if (Status s = r.read_bit_string(content); !s) return err(s.error());
  KeyUsage ku;
  if (!content.empty()) {
    for (int i = 0; i < 7; ++i) {
      if (content[0] & (0x80 >> i)) ku.bits |= static_cast<std::uint16_t>(1u << i);
    }
  }
  return ku;
}

std::vector<std::string> KeyUsage::names() const {
  static constexpr const char* kNames[] = {
      "digitalSignature", "nonRepudiation", "keyEncipherment",
      "dataEncipherment", "keyAgreement",   "keyCertSign",
      "cRLSign"};
  std::vector<std::string> out;
  for (int i = 0; i < 7; ++i) {
    if (bits & (1u << i)) out.emplace_back(kNames[i]);
  }
  return out;
}

std::optional<KeyUsageBit> KeyUsage::bit_by_name(std::string_view name) {
  if (name == "digitalSignature") return KeyUsageBit::kDigitalSignature;
  if (name == "nonRepudiation") return KeyUsageBit::kNonRepudiation;
  if (name == "keyEncipherment") return KeyUsageBit::kKeyEncipherment;
  if (name == "dataEncipherment") return KeyUsageBit::kDataEncipherment;
  if (name == "keyAgreement") return KeyUsageBit::kKeyAgreement;
  if (name == "keyCertSign") return KeyUsageBit::kKeyCertSign;
  if (name == "cRLSign") return KeyUsageBit::kCrlSign;
  return std::nullopt;
}

// --- ExtendedKeyUsage ---------------------------------------------------------

bool ExtendedKeyUsage::has(const asn1::Oid& purpose) const {
  for (const auto& p : purposes) {
    if (p == purpose) return true;
  }
  return false;
}

Bytes ExtendedKeyUsage::encode() const {
  Writer w;
  w.sequence([&](Writer& seq) {
    for (const auto& p : purposes) seq.oid(p);
  });
  return w.take();
}

Result<ExtendedKeyUsage> ExtendedKeyUsage::decode(BytesView der) {
  Reader outer(der);
  Reader seq{{}};
  if (Status s = outer.read_sequence(seq); !s) return err(s.error());
  ExtendedKeyUsage eku;
  while (!seq.done()) {
    asn1::Oid oid;
    if (Status s = seq.read_oid(oid); !s) return err(s.error());
    eku.purposes.push_back(std::move(oid));
  }
  return eku;
}

std::vector<std::string> ExtendedKeyUsage::names() const {
  std::vector<std::string> out;
  for (const auto& p : purposes) {
    if (p == oids::kp_server_auth()) out.emplace_back("id-kp-serverAuth");
    else if (p == oids::kp_client_auth()) out.emplace_back("id-kp-clientAuth");
    else if (p == oids::kp_code_signing()) out.emplace_back("id-kp-codeSigning");
    else if (p == oids::kp_email_protection()) out.emplace_back("id-kp-emailProtection");
    else if (p == oids::kp_ocsp_signing()) out.emplace_back("id-kp-OCSPSigning");
    else out.push_back(p.to_string());
  }
  return out;
}

// --- SubjectAltName -----------------------------------------------------------

namespace {
constexpr unsigned kGeneralNameDns = 2;  // dNSName [2] IA5String
}  // namespace

Bytes SubjectAltName::encode() const {
  Writer w;
  w.sequence([&](Writer& seq) {
    for (const auto& name : dns_names) {
      Bytes b = to_bytes(name);
      seq.context_primitive(kGeneralNameDns, BytesView(b));
    }
  });
  return w.take();
}

Result<SubjectAltName> SubjectAltName::decode(BytesView der) {
  Reader outer(der);
  Reader seq{{}};
  if (Status s = outer.read_sequence(seq); !s) return err(s.error());
  SubjectAltName san;
  while (!seq.done()) {
    asn1::Tlv tlv;
    if (Status s = seq.read_any(tlv); !s) return err(s.error());
    if (tlv.tag == asn1::context_tag(kGeneralNameDns, /*constructed=*/false)) {
      san.dns_names.push_back(to_string(tlv.contents));
    }
    // Other GeneralName forms are skipped (tolerated but not modeled).
  }
  return san;
}

// --- NameConstraints ----------------------------------------------------------

bool NameConstraints::allows(std::string_view host) const {
  for (const auto& excluded : excluded_dns) {
    if (dns_within_constraint(host, excluded)) return false;
  }
  if (permitted_dns.empty()) return true;
  for (const auto& permitted : permitted_dns) {
    if (dns_within_constraint(host, permitted)) return true;
  }
  return false;
}

namespace {
void encode_subtrees(Writer& w, unsigned tag,
                     const std::vector<std::string>& names) {
  w.context(tag, [&](Writer& trees) {
    for (const auto& name : names) {
      trees.sequence([&](Writer& subtree) {
        Bytes b = to_bytes(name);
        subtree.context_primitive(kGeneralNameDns, BytesView(b));
        // minimum DEFAULT 0 / maximum ABSENT: omitted.
      });
    }
  });
}

Status decode_subtrees(Reader& trees, std::vector<std::string>& out) {
  while (!trees.done()) {
    Reader subtree{{}};
    if (Status s = trees.read_sequence(subtree); !s) return s;
    asn1::Tlv tlv;
    if (Status s = subtree.read_any(tlv); !s) return s;
    if (tlv.tag == asn1::context_tag(kGeneralNameDns, /*constructed=*/false)) {
      out.push_back(to_string(tlv.contents));
    }
  }
  return {};
}
}  // namespace

Bytes NameConstraints::encode() const {
  Writer w;
  w.sequence([&](Writer& seq) {
    if (!permitted_dns.empty()) encode_subtrees(seq, 0, permitted_dns);
    if (!excluded_dns.empty()) encode_subtrees(seq, 1, excluded_dns);
  });
  return w.take();
}

Result<NameConstraints> NameConstraints::decode(BytesView der) {
  Reader outer(der);
  Reader seq{{}};
  if (Status s = outer.read_sequence(seq); !s) return err(s.error());
  NameConstraints nc;
  if (seq.peek_tag() == asn1::context_tag(0)) {
    Reader trees{{}};
    if (Status s = seq.read_context(0, trees); !s) return err(s.error());
    if (Status s = decode_subtrees(trees, nc.permitted_dns); !s) return err(s.error());
  }
  if (seq.peek_tag() == asn1::context_tag(1)) {
    Reader trees{{}};
    if (Status s = seq.read_context(1, trees); !s) return err(s.error());
    if (Status s = decode_subtrees(trees, nc.excluded_dns); !s) return err(s.error());
  }
  return nc;
}

// --- CertificatePolicies -------------------------------------------------------

bool CertificatePolicies::has(const asn1::Oid& policy) const {
  for (const auto& p : policies) {
    if (p == policy) return true;
  }
  return false;
}

Bytes CertificatePolicies::encode() const {
  Writer w;
  w.sequence([&](Writer& seq) {
    for (const auto& p : policies) {
      seq.sequence([&](Writer& info) { info.oid(p); });
    }
  });
  return w.take();
}

Result<CertificatePolicies> CertificatePolicies::decode(BytesView der) {
  Reader outer(der);
  Reader seq{{}};
  if (Status s = outer.read_sequence(seq); !s) return err(s.error());
  CertificatePolicies cp;
  while (!seq.done()) {
    Reader info{{}};
    if (Status s = seq.read_sequence(info); !s) return err(s.error());
    asn1::Oid oid;
    if (Status s = info.read_oid(oid); !s) return err(s.error());
    cp.policies.push_back(std::move(oid));
  }
  return cp;
}

// --- Key identifiers ------------------------------------------------------------

Bytes SubjectKeyIdentifier::encode() const {
  Writer w;
  w.octet_string(BytesView(key_id));
  return w.take();
}

Result<SubjectKeyIdentifier> SubjectKeyIdentifier::decode(BytesView der) {
  Reader r(der);
  SubjectKeyIdentifier ski;
  if (Status s = r.read_octet_string(ski.key_id); !s) return err(s.error());
  return ski;
}

Bytes AuthorityKeyIdentifier::encode() const {
  Writer w;
  w.sequence([&](Writer& seq) {
    seq.context_primitive(0, BytesView(key_id));  // keyIdentifier [0] IMPLICIT
  });
  return w.take();
}

Result<AuthorityKeyIdentifier> AuthorityKeyIdentifier::decode(BytesView der) {
  Reader outer(der);
  Reader seq{{}};
  if (Status s = outer.read_sequence(seq); !s) return err(s.error());
  AuthorityKeyIdentifier aki;
  asn1::Tlv tlv;
  if (seq.read_optional(asn1::context_tag(0, /*constructed=*/false), tlv)) {
    aki.key_id.assign(tlv.contents.begin(), tlv.contents.end());
  }
  return aki;
}

}  // namespace anchor::x509
