#include "x509/oids.hpp"

namespace anchor::x509::oids {

namespace {
Oid make(const char* dotted) { return Oid::from_string(dotted); }
}  // namespace

#define ANCHOR_DEFINE_OID(fn, dotted)      \
  const Oid& fn() {                        \
    static const Oid oid = make(dotted);   \
    return oid;                            \
  }

ANCHOR_DEFINE_OID(common_name, "2.5.4.3")
ANCHOR_DEFINE_OID(country, "2.5.4.6")
ANCHOR_DEFINE_OID(organization, "2.5.4.10")
ANCHOR_DEFINE_OID(organizational_unit, "2.5.4.11")

ANCHOR_DEFINE_OID(subject_key_identifier, "2.5.29.14")
ANCHOR_DEFINE_OID(key_usage, "2.5.29.15")
ANCHOR_DEFINE_OID(subject_alt_name, "2.5.29.17")
ANCHOR_DEFINE_OID(basic_constraints, "2.5.29.19")
ANCHOR_DEFINE_OID(name_constraints, "2.5.29.30")
ANCHOR_DEFINE_OID(certificate_policies, "2.5.29.32")
ANCHOR_DEFINE_OID(authority_key_identifier, "2.5.29.35")
ANCHOR_DEFINE_OID(extended_key_usage, "2.5.29.37")

ANCHOR_DEFINE_OID(kp_server_auth, "1.3.6.1.5.5.7.3.1")
ANCHOR_DEFINE_OID(kp_client_auth, "1.3.6.1.5.5.7.3.2")
ANCHOR_DEFINE_OID(kp_code_signing, "1.3.6.1.5.5.7.3.3")
ANCHOR_DEFINE_OID(kp_email_protection, "1.3.6.1.5.5.7.3.4")
ANCHOR_DEFINE_OID(kp_ocsp_signing, "1.3.6.1.5.5.7.3.9")

ANCHOR_DEFINE_OID(any_policy, "2.5.29.32.0")
ANCHOR_DEFINE_OID(ev_policy_marker, "2.23.140.1.1")

ANCHOR_DEFINE_OID(sig_alg_simsig, "1.3.6.1.4.1.57264.1")

#undef ANCHOR_DEFINE_OID

}  // namespace anchor::x509::oids
