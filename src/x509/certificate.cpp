#include "x509/certificate.hpp"

#include "asn1/der.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"
#include "x509/oids.hpp"

namespace anchor::x509 {

using asn1::Reader;
using asn1::Tlv;

Result<CertPtr> Certificate::parse(BytesView der) {
  auto cert = std::shared_ptr<Certificate>(new Certificate());
  if (Status s = parse_into(der, *cert); !s) return err(s.error());
  return CertPtr(cert);
}

Result<CertPtr> Certificate::parse_pem(std::string_view pem) {
  Bytes der;
  if (!pem_decode(pem, "CERTIFICATE", der)) {
    return err("certificate: no CERTIFICATE PEM block");
  }
  return parse(BytesView(der));
}

std::string Certificate::to_pem() const {
  return pem_encode("CERTIFICATE", BytesView(der_));
}

std::string Certificate::fingerprint_hex() const {
  return to_hex(BytesView(fingerprint_.data(), fingerprint_.size()));
}

const Extension* Certificate::find_extension(const asn1::Oid& oid) const {
  for (const auto& ext : extensions_) {
    if (ext.oid == oid) return &ext;
  }
  return nullptr;
}

bool Certificate::is_ca() const {
  return basic_constraints_.has_value() && basic_constraints_->is_ca;
}

std::optional<int> Certificate::path_len() const {
  if (!is_ca()) return std::nullopt;
  return basic_constraints_->path_len;
}

bool Certificate::is_ev() const {
  return certificate_policies_.has_value() &&
         certificate_policies_->has(oids::ev_policy_marker());
}

std::vector<std::string> Certificate::dns_names() const {
  if (subject_alt_name_.has_value() && !subject_alt_name_->dns_names.empty()) {
    return subject_alt_name_->dns_names;
  }
  std::string cn = subject_.common_name();
  if (!cn.empty() && cn.find('.') != std::string::npos) return {cn};
  return {};
}

bool Certificate::matches_host(std::string_view host) const {
  for (const auto& name : dns_names()) {
    if (dns_matches(host, name)) return true;
  }
  return false;
}

namespace {

Status parse_extension_block(Reader& exts_seq, Certificate& cert,
                             std::vector<Extension>& out) {
  (void)cert;
  while (!exts_seq.done()) {
    Reader ext{{}};
    if (Status s = exts_seq.read_sequence(ext); !s) return s;
    Extension parsed;
    if (Status s = ext.read_oid(parsed.oid); !s) return s;
    if (ext.peek_tag() == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
      if (Status s = ext.read_boolean(parsed.critical); !s) return s;
    }
    if (Status s = ext.read_octet_string(parsed.value); !s) return s;
    out.push_back(std::move(parsed));
  }
  return {};
}

}  // namespace

Status Certificate::parse_into(BytesView der, Certificate& cert) {
  cert.der_.assign(der.begin(), der.end());
  cert.fingerprint_ = Sha256::hash(der);

  Reader top(BytesView(cert.der_));
  Tlv cert_tlv;
  if (Status s = top.read(static_cast<std::uint8_t>(asn1::Tag::kSequence), cert_tlv); !s) {
    return s;
  }
  if (!top.done()) return err("certificate: trailing data after Certificate");

  Reader cert_seq(cert_tlv.contents);

  // tbsCertificate — keep the full TLV for signature verification.
  Tlv tbs_tlv;
  if (Status s = cert_seq.read(static_cast<std::uint8_t>(asn1::Tag::kSequence), tbs_tlv); !s) {
    return s;
  }
  cert.tbs_der_.assign(tbs_tlv.full.begin(), tbs_tlv.full.end());

  // signatureAlgorithm
  {
    Reader alg{{}};
    if (Status s = cert_seq.read_sequence(alg); !s) return s;
    if (Status s = alg.read_oid(cert.sig_alg_); !s) return s;
    if (!alg.done()) {
      if (Status s = alg.read_null(); !s) return s;
    }
  }

  // signatureValue
  if (Status s = cert_seq.read_bit_string(cert.signature_); !s) return s;
  if (!cert_seq.done()) return err("certificate: trailing data in Certificate");

  // --- TBSCertificate ---
  Reader tbs(tbs_tlv.contents);

  // version [0] EXPLICIT — we require v3.
  {
    Reader version{{}};
    if (Status s = tbs.read_context(0, version); !s) return s;
    std::int64_t v = 0;
    if (Status s = version.read_integer(v); !s) return s;
    if (v != 2) return err("certificate: only X.509 v3 supported");
  }

  if (Status s = tbs.read_integer_bytes(cert.serial_); !s) return s;

  // signature AlgorithmIdentifier (must match outer).
  {
    Reader alg{{}};
    if (Status s = tbs.read_sequence(alg); !s) return s;
    asn1::Oid inner_alg;
    if (Status s = alg.read_oid(inner_alg); !s) return s;
    if (inner_alg != cert.sig_alg_) {
      return err("certificate: TBS/outer signature algorithm mismatch");
    }
    if (!alg.done()) {
      if (Status s = alg.read_null(); !s) return s;
    }
  }

  if (Status s = DistinguishedName::decode(tbs, cert.issuer_); !s) return s;

  // validity
  {
    Reader validity{{}};
    if (Status s = tbs.read_sequence(validity); !s) return s;
    if (Status s = validity.read_time(cert.not_before_); !s) return s;
    if (Status s = validity.read_time(cert.not_after_); !s) return s;
  }

  if (Status s = DistinguishedName::decode(tbs, cert.subject_); !s) return s;

  // subjectPublicKeyInfo
  {
    Reader spki{{}};
    if (Status s = tbs.read_sequence(spki); !s) return s;
    Reader alg{{}};
    if (Status s = spki.read_sequence(alg); !s) return s;
    asn1::Oid key_alg;
    if (Status s = alg.read_oid(key_alg); !s) return s;
    if (!alg.done()) {
      if (Status s = alg.read_null(); !s) return s;
    }
    if (Status s = spki.read_bit_string(cert.public_key_); !s) return s;
  }

  // extensions [3] EXPLICIT
  if (tbs.peek_tag() == asn1::context_tag(3)) {
    Reader wrapper{{}};
    if (Status s = tbs.read_context(3, wrapper); !s) return s;
    Reader exts{{}};
    if (Status s = wrapper.read_sequence(exts); !s) return s;
    if (Status s = parse_extension_block(exts, cert, cert.extensions_); !s) return s;
  }
  if (!tbs.done()) return err("certificate: trailing data in TBSCertificate");

  // Decode well-known extensions into typed form; duplicates rejected.
  for (const auto& ext : cert.extensions_) {
    BytesView value(ext.value);
    if (ext.oid == oids::basic_constraints()) {
      if (cert.basic_constraints_) return err("certificate: duplicate basicConstraints");
      auto r = BasicConstraints::decode(value);
      if (!r) return err(r.error());
      cert.basic_constraints_ = r.value();
    } else if (ext.oid == oids::key_usage()) {
      if (cert.key_usage_) return err("certificate: duplicate keyUsage");
      auto r = KeyUsage::decode(value);
      if (!r) return err(r.error());
      cert.key_usage_ = r.value();
    } else if (ext.oid == oids::extended_key_usage()) {
      if (cert.extended_key_usage_) return err("certificate: duplicate extendedKeyUsage");
      auto r = ExtendedKeyUsage::decode(value);
      if (!r) return err(r.error());
      cert.extended_key_usage_ = r.value();
    } else if (ext.oid == oids::subject_alt_name()) {
      if (cert.subject_alt_name_) return err("certificate: duplicate subjectAltName");
      auto r = SubjectAltName::decode(value);
      if (!r) return err(r.error());
      cert.subject_alt_name_ = r.value();
    } else if (ext.oid == oids::name_constraints()) {
      if (cert.name_constraints_) return err("certificate: duplicate nameConstraints");
      auto r = NameConstraints::decode(value);
      if (!r) return err(r.error());
      cert.name_constraints_ = r.value();
    } else if (ext.oid == oids::certificate_policies()) {
      if (cert.certificate_policies_) return err("certificate: duplicate certificatePolicies");
      auto r = CertificatePolicies::decode(value);
      if (!r) return err(r.error());
      cert.certificate_policies_ = r.value();
    } else if (ext.oid == oids::subject_key_identifier()) {
      if (cert.subject_key_identifier_) return err("certificate: duplicate SKI");
      auto r = SubjectKeyIdentifier::decode(value);
      if (!r) return err(r.error());
      cert.subject_key_identifier_ = r.value();
    } else if (ext.oid == oids::authority_key_identifier()) {
      if (cert.authority_key_identifier_) return err("certificate: duplicate AKI");
      auto r = AuthorityKeyIdentifier::decode(value);
      if (!r) return err(r.error());
      cert.authority_key_identifier_ = r.value();
    }
  }

  return {};
}

}  // namespace anchor::x509
