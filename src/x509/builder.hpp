// Fluent certificate builder. Produces DER-encoded, SimSig-signed v3
// certificates; the result round-trips through Certificate::parse so every
// built certificate is also a parser test vector.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/simsig.hpp"
#include "x509/certificate.hpp"

namespace anchor::x509 {

class CertificateBuilder {
 public:
  CertificateBuilder();

  CertificateBuilder& serial(std::uint64_t serial);
  CertificateBuilder& subject(DistinguishedName dn);
  CertificateBuilder& issuer(DistinguishedName dn);
  CertificateBuilder& validity(std::int64_t not_before, std::int64_t not_after);
  CertificateBuilder& public_key(Bytes key_id);

  // CA profile: basicConstraints{cA=true, pathLen}, keyCertSign|cRLSign.
  CertificateBuilder& ca(std::optional<int> path_len = std::nullopt);
  CertificateBuilder& key_usage(KeyUsage usage);
  CertificateBuilder& extended_key_usage(std::vector<asn1::Oid> purposes);
  CertificateBuilder& dns_names(std::vector<std::string> names);
  CertificateBuilder& name_constraints(NameConstraints constraints);
  CertificateBuilder& policies(std::vector<asn1::Oid> policy_oids);
  CertificateBuilder& ev();  // adds the EV policy marker
  CertificateBuilder& subject_key_id(Bytes key_id);
  CertificateBuilder& authority_key_id(Bytes key_id);
  // Arbitrary extra extension (e.g. for unknown-extension tests).
  CertificateBuilder& extension(Extension ext);

  // Signs the TBS with `issuer_key` and returns the parsed certificate.
  Result<CertPtr> sign(const SimKeyPair& issuer_key) const;

 private:
  Bytes build_tbs() const;

  std::uint64_t serial_ = 1;
  DistinguishedName subject_;
  DistinguishedName issuer_;
  std::int64_t not_before_ = 0;
  std::int64_t not_after_ = 0;
  Bytes public_key_;
  std::optional<BasicConstraints> basic_constraints_;
  std::optional<KeyUsage> key_usage_;
  std::optional<ExtendedKeyUsage> extended_key_usage_;
  std::optional<SubjectAltName> subject_alt_name_;
  std::optional<NameConstraints> name_constraints_;
  std::optional<CertificatePolicies> certificate_policies_;
  std::optional<SubjectKeyIdentifier> subject_key_identifier_;
  std::optional<AuthorityKeyIdentifier> authority_key_identifier_;
  std::vector<Extension> extra_extensions_;
};

}  // namespace anchor::x509
