#include "rsf/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "x509/builder.hpp"

namespace anchor::rsf {

namespace {

// Self-signed root population for the simulated primary store.
std::vector<x509::CertPtr> make_roots(int count, std::int64_t start_time) {
  std::vector<x509::CertPtr> roots;
  roots.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::string name = "Sim Root CA " + std::to_string(i);
    SimKeyPair key = SimSig::keygen(name);
    auto cert = x509::CertificateBuilder()
                    .serial(static_cast<std::uint64_t>(i) + 1)
                    .subject(x509::DistinguishedName::make(name, "Sim Org"))
                    .issuer(x509::DistinguishedName::make(name, "Sim Org"))
                    .validity(start_time - 86400,
                              start_time + 30LL * 365 * 86400)
                    .public_key(key.key_id)
                    .ca(std::nullopt)
                    .sign(key);
    roots.push_back(std::move(cert).take());
  }
  return roots;
}

struct Release {
  std::int64_t time;
  bool is_incident;
  int incident_index;  // into incidents when is_incident
};

// Percentile over an unsorted sample set (nearest-rank on the sorted
// order, index rounded up so small fixtures resolve to the later sample).
template <typename T>
T percentile(std::vector<T>& samples, double p) {
  if (samples.empty()) return T{};
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples.size() - 1)));
  const auto index = std::min(rank, samples.size() - 1);
  auto nth = samples.begin() + static_cast<std::ptrdiff_t>(index);
  std::nth_element(samples.begin(), nth, samples.end());
  return *nth;
}

}  // namespace

SimConfig SimConfig::with_default_derivatives() {
  SimConfig config;
  SimDerivativeSpec rsf;
  rsf.name = "rsf-hourly";
  rsf.uses_rsf = true;
  rsf.rsf_poll_interval = 3600;
  config.derivatives.push_back(rsf);

  SimDerivativeSpec rsf_daily;
  rsf_daily.name = "rsf-daily";
  rsf_daily.uses_rsf = true;
  rsf_daily.rsf_poll_interval = 86400;
  config.derivatives.push_back(rsf_daily);

  SimDerivativeSpec debianish;
  debianish.name = "manual-distro";  // Debian-like: imports every ~5 months
  debianish.manual_sync_period = 150 * 86400;
  debianish.manual_sync_jitter = 30 * 86400;
  config.derivatives.push_back(debianish);

  SimDerivativeSpec androidish;
  androidish.name = "manual-mobile";  // Android-like: "several months behind"
  androidish.manual_sync_period = 240 * 86400;
  androidish.manual_sync_jitter = 45 * 86400;
  config.derivatives.push_back(androidish);

  SimDerivativeSpec serverish;
  serverish.name = "manual-server";  // Amazon-Linux-like: >4 versions stale
  serverish.manual_sync_period = 420 * 86400;
  serverish.manual_sync_jitter = 60 * 86400;
  config.derivatives.push_back(serverish);
  return config;
}

SimReport run_staleness_simulation(const SimConfig& config) {
  Rng rng(config.seed);
  SimReport report;

  metrics::Registry& metric_sink = config.registry != nullptr
                                       ? *config.registry
                                       : metrics::Registry::global();
  metrics::Counter& m_releases =
      metric_sink.counter("anchor_sim_releases_total");
  metrics::Counter& m_incidents =
      metric_sink.counter("anchor_sim_incidents_total");

  std::vector<x509::CertPtr> roots =
      make_roots(config.num_roots, config.start_time);

  // Build the release timeline: routine releases plus incident releases at
  // random instants.
  std::vector<Release> releases;
  for (std::int64_t t = config.start_time;
       t < config.start_time + config.duration; t += config.release_interval) {
    releases.push_back(Release{t, false, -1});
  }
  std::vector<std::int64_t> incident_times;
  for (int i = 0; i < config.num_incidents; ++i) {
    // Keep incidents clear of the final 10% so windows are observable.
    std::int64_t t = config.start_time +
                     rng.uniform_range(config.release_interval,
                                       config.duration * 9 / 10);
    incident_times.push_back(t);
  }
  std::sort(incident_times.begin(), incident_times.end());
  for (int i = 0; i < config.num_incidents; ++i) {
    releases.push_back(Release{incident_times[i], true, i});
  }
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.time < b.time; });

  // Incident i distrusts root i+some offset (never the same root twice).
  std::vector<std::string> incident_roots;
  for (int i = 0; i < config.num_incidents; ++i) {
    incident_roots.push_back(
        roots[static_cast<std::size_t>(i) % roots.size()]->fingerprint_hex());
  }

  // The primary store and feed.
  rootstore::RootStore primary;
  for (const auto& cert : roots) {
    (void)primary.add_trusted(cert);
  }
  SimSig registry;
  Feed feed("nss-sim", registry);

  // Derivative state.
  struct DerivState {
    SimDerivativeSpec spec;
    std::unique_ptr<DirectTransport> direct;
    std::unique_ptr<FaultyTransport> faulty;  // only when spec.faults.any()
    std::unique_ptr<RsfClient> rsf;
    std::unique_ptr<ManualMirrorClient> manual;
    std::int64_t next_sync = 0;  // next scheduled manual import
    // Staleness accounting.
    double staleness_sum = 0;
    double versions_sum = 0;
    double max_staleness = 0;
    std::uint64_t samples = 0;
    std::vector<double> staleness_samples;  // daily, for percentiles
  };
  std::vector<DerivState> derivatives;
  std::uint64_t derivative_index = 0;
  for (const auto& spec : config.derivatives) {
    DerivState state;
    state.spec = spec;
    if (spec.uses_rsf) {
      state.direct = std::make_unique<DirectTransport>(feed);
      FeedTransport* transport = state.direct.get();
      if (spec.faults.any()) {
        state.faulty = std::make_unique<FaultyTransport>(
            *state.direct, spec.faults,
            config.seed ^ (derivative_index * 0x9e3779b97f4a7c15ULL));
        transport = state.faulty.get();
      }
      RetryPolicy retry = spec.retry;
      retry.jitter_seed ^= config.seed + derivative_index;
      state.rsf = std::make_unique<RsfClient>(
          *transport, spec.rsf_poll_interval, MergePolicy::kPrimaryWins,
          Transport::kFullSnapshot, retry);
      // Several derivatives poll the same feed; label by derivative name so
      // their series stay distinguishable.
      state.rsf->bind_metrics(metric_sink, spec.name);
    } else {
      state.manual = std::make_unique<ManualMirrorClient>(feed, true);
      // Uniform phase: derivatives are not synchronized with the primary.
      state.next_sync =
          config.start_time +
          rng.uniform_range(0, std::max<std::int64_t>(1, spec.manual_sync_period));
    }
    derivatives.push_back(std::move(state));
    ++derivative_index;
  }

  // Incident tracking.
  for (int i = 0; i < config.num_incidents; ++i) {
    DistrustOutcome outcome;
    outcome.root_hash = incident_roots[static_cast<std::size_t>(i)];
    outcome.windows.assign(config.derivatives.size(), -1);
    report.incidents.push_back(std::move(outcome));
  }

  // Release-time bookkeeping for staleness: publication time per sequence.
  std::vector<std::int64_t> publish_time_of_seq;  // index = seq - 1

  // Main loop: hourly steps (matching the finest poll interval).
  const std::int64_t step = 3600;
  std::size_t next_release = 0;
  std::int64_t end_time = config.start_time + config.duration;

  for (std::int64_t now = config.start_time; now <= end_time; now += step) {
    // Publish any due releases.
    while (next_release < releases.size() &&
           releases[next_release].time <= now) {
      const Release& release = releases[next_release];
      if (release.is_incident) {
        const std::string& hash =
            incident_roots[static_cast<std::size_t>(release.incident_index)];
        primary.distrust(hash, "incident response");
        report.incidents[static_cast<std::size_t>(release.incident_index)]
            .primary_time = release.time;
      }
      feed.publish(primary, release.time,
                   release.is_incident ? "emergency distrust" : "routine");
      publish_time_of_seq.push_back(release.time);
      ++report.releases;
      m_releases.add();
      if (release.is_incident) m_incidents.add();
      ++next_release;
    }

    // Advance derivatives.
    for (auto& d : derivatives) {
      if (d.rsf != nullptr) {
        d.rsf->run_until(now);
      } else if (now >= d.next_sync) {
        // A human performs the periodic import (adopts the head snapshot),
        // then the mirror goes quiet for another cycle.
        d.manual->manual_sync(now);
        d.next_sync =
            now + rng.uniform_range(
                      std::max<std::int64_t>(
                          3600, d.spec.manual_sync_period -
                                    d.spec.manual_sync_jitter),
                      d.spec.manual_sync_period + d.spec.manual_sync_jitter);
      }
    }

    // Record vulnerability windows: first instant each derivative's store
    // no longer trusts each distrusted root.
    for (std::size_t i = 0; i < report.incidents.size(); ++i) {
      DistrustOutcome& outcome = report.incidents[i];
      if (outcome.primary_time == 0 || now < outcome.primary_time) continue;
      for (std::size_t d = 0; d < derivatives.size(); ++d) {
        if (outcome.windows[d] >= 0) continue;
        const rootstore::RootStore& s = derivatives[d].rsf != nullptr
                                            ? derivatives[d].rsf->store()
                                            : derivatives[d].manual->store();
        if (s.state_of(outcome.root_hash) != rootstore::TrustState::kTrusted &&
            (s.trusted_count() > 0)) {
          outcome.windows[d] = now - outcome.primary_time;
        }
      }
    }

    // Daily staleness sampling.
    if ((now - config.start_time) % 86400 == 0 && !publish_time_of_seq.empty()) {
      std::uint64_t head_seq = feed.head_sequence();
      for (auto& d : derivatives) {
        std::uint64_t adopted = d.rsf != nullptr
                                    ? d.rsf->last_applied_sequence()
                                    : d.manual->mirrored_sequence();
        double versions_behind =
            static_cast<double>(head_seq - std::min<std::uint64_t>(adopted, head_seq));
        double staleness_days = 0;
        if (adopted == 0) {
          staleness_days =
              static_cast<double>(now - config.start_time) / 86400.0;
        } else if (adopted < head_seq) {
          // Time since the oldest unadopted release.
          staleness_days =
              static_cast<double>(now - publish_time_of_seq[adopted]) / 86400.0;
        }
        d.staleness_sum += staleness_days;
        d.versions_sum += versions_behind;
        d.max_staleness = std::max(d.max_staleness, staleness_days);
        d.staleness_samples.push_back(staleness_days);
        ++d.samples;
      }
    }
  }

  // Reduce metrics.
  for (std::size_t d = 0; d < derivatives.size(); ++d) {
    DerivativeMetrics metrics;
    metrics.name = derivatives[d].spec.name;
    if (derivatives[d].samples > 0) {
      metrics.avg_staleness_days =
          derivatives[d].staleness_sum / double(derivatives[d].samples);
      metrics.avg_versions_behind =
          derivatives[d].versions_sum / double(derivatives[d].samples);
      metrics.max_staleness_days = derivatives[d].max_staleness;
      metrics.staleness_p50_days =
          percentile(derivatives[d].staleness_samples, 0.50);
      metrics.staleness_p99_days =
          percentile(derivatives[d].staleness_samples, 0.99);
    }
    std::int64_t window_sum = 0;
    std::int64_t window_max = -1;
    int counted = 0;
    for (const auto& incident : report.incidents) {
      if (incident.windows[d] >= 0) {
        window_sum += incident.windows[d];
        window_max = std::max(window_max, incident.windows[d]);
        ++counted;
      }
    }
    if (counted > 0) {
      metrics.mean_vulnerability_window = window_sum / counted;
      metrics.max_vulnerability_window = window_max;
    }
    if (derivatives[d].rsf != nullptr) {
      const ClientStats& stats = derivatives[d].rsf->stats();
      metrics.retries = stats.retries;
      metrics.transport_errors = stats.transport_errors_total();
      metrics.verify_failures = stats.verify_failures;
      metrics.delta_fallbacks = stats.delta_fallbacks;
    }
    report.derivatives.push_back(std::move(metrics));
  }
  return report;
}

FleetReport run_fleet_simulation(const FleetConfig& config) {
  FleetReport report;
  report.clients = config.num_clients;

  // Stage the publisher: a small real store, one routine release at the
  // start of the window, then the emergency distrust at its end. The byte
  // costs below come from actual feed_fetch responses over this feed — the
  // same objects the anchord wire codec serializes — so the sweep measures
  // the protocol, not a hand-maintained size model.
  std::vector<x509::CertPtr> roots = make_roots(8, config.start_time);
  rootstore::RootStore primary;
  for (const auto& cert : roots) {
    (void)primary.add_trusted(cert);
  }
  SimSig registry;
  Feed feed("nss-fleet", registry);
  feed.publish(primary, config.start_time, "routine");
  const std::int64_t incident_time = config.start_time + config.lead_time;
  primary.distrust(roots[0]->fingerprint_hex(), "incident response");
  feed.publish(primary, incident_time, "emergency distrust");

  // Steady state: the poller is current (from_size == head), so the
  // response is the signed tree head alone — the O(1) no-change poll.
  FeedFetchQuery current;
  current.from_size = feed.head_sequence();
  auto no_change = feed.feed_fetch(current);
  report.no_change_poll_bytes =
      no_change ? no_change.value().wire_size(true) : 0;

  // The post-incident poll: one consistency proof from the pinned size,
  // the head inclusion proof, and the one-snapshot range (headers + delta
  // under delta transport, full payload otherwise).
  FeedFetchQuery catch_up;
  catch_up.from_size = feed.head_sequence() - 1;
  catch_up.want_deltas = config.use_delta;
  auto emergency = feed.feed_fetch(catch_up);
  report.emergency_poll_bytes =
      emergency ? emergency.value().wire_size(!config.use_delta) : 0;

  // March each client's poll schedule independently: forked RNG stream,
  // uniform phase within one interval, then jittered intervals. Every poll
  // before the incident is a no-change probe; the first poll at or after
  // it fetches the proof + range, and the client has adopted only once its
  // verify step completes — adoption percentiles are computed from that
  // instant, not from the fetch instant.
  std::vector<std::int64_t> adoption;
  adoption.reserve(config.num_clients);
  Rng fleet_rng(config.seed);
  const std::int64_t interval = std::max<std::int64_t>(1, config.poll_interval);
  for (std::uint32_t i = 0; i < config.num_clients; ++i) {
    Rng rng = fleet_rng.fork(i);
    std::int64_t t = config.start_time +
                     static_cast<std::int64_t>(
                         rng.uniform(static_cast<std::uint64_t>(interval)));
    while (t < incident_time) {
      ++report.polls_no_change;
      report.bytes_no_change += report.no_change_poll_bytes;
      t += std::max<std::int64_t>(1, rng.jittered(interval,
                                                  config.poll_jitter));
    }
    report.bytes_emergency += report.emergency_poll_bytes;
    adoption.push_back(t + config.verify_latency - incident_time);
  }

  report.adoption_p50 = percentile(adoption, 0.50);
  report.adoption_p99 = percentile(adoption, 0.99);
  report.adoption_max =
      adoption.empty() ? 0
                       : *std::max_element(adoption.begin(), adoption.end());
  return report;
}

}  // namespace anchor::rsf
