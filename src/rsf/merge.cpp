#include "rsf/merge.hpp"

#include <unordered_set>

namespace anchor::rsf {

const char* to_string(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kDistrustedReAdded:
      return "distrusted-re-added";
    case ConflictKind::kMetadataMismatch:
      return "metadata-mismatch";
    case ConflictKind::kLocalDistrust:
      return "local-distrust";
  }
  return "unknown";
}

MergeResult merge(const rootstore::RootStore& primary,
                  const rootstore::RootStore& derivative, MergePolicy policy) {
  MergeResult result;

  // Primary trusted set forms the base.
  for (const rootstore::RootEntry* entry : primary.trusted()) {
    result.merged.add_trusted_unchecked(entry->cert, entry->metadata);
  }
  // Primary distrust set carries over.
  for (const auto& [hash, justification] : primary.distrusted()) {
    result.merged.distrust(hash, justification);
  }

  // Derivative additions.
  for (const rootstore::RootEntry* entry : derivative.trusted()) {
    const std::string hash = entry->cert->fingerprint_hex();
    switch (primary.state_of(hash)) {
      case rootstore::TrustState::kDistrusted: {
        result.conflicts.push_back(MergeConflict{
            ConflictKind::kDistrustedReAdded, hash,
            "derivative trusts a root the primary explicitly distrusts"});
        if (policy == MergePolicy::kDerivativeWins) {
          result.merged.forget(hash);
          result.merged.add_trusted_unchecked(entry->cert, entry->metadata);
        }
        break;
      }
      case rootstore::TrustState::kTrusted: {
        const rootstore::RootEntry* base = primary.find(hash);
        if (base != nullptr && !(base->metadata == entry->metadata)) {
          result.conflicts.push_back(MergeConflict{
              ConflictKind::kMetadataMismatch, hash,
              "derivative metadata differs from primary"});
          // Primary metadata already in the merged store; only override
          // when the derivative wins.
          if (policy == MergePolicy::kDerivativeWins) {
            result.merged.add_trusted_unchecked(entry->cert, entry->metadata);
          }
        }
        break;
      }
      case rootstore::TrustState::kUnknown:
        // A genuine local augmentation (imported/private root): kept.
        result.merged.add_trusted_unchecked(entry->cert, entry->metadata);
        break;
    }
  }

  // Derivative-local distrust is honored — local distrust only narrows.
  for (const auto& [hash, justification] : derivative.distrusted()) {
    switch (primary.state_of(hash)) {
      case rootstore::TrustState::kDistrusted: {
        // Both distrust the root: the primary's justification (already in
        // the merged store) is authoritative provenance and must survive;
        // the derivative's copy is at best redundant. Only a derivative
        // justification for a root the primary left unexplained adds
        // information.
        const auto primary_entry = primary.distrusted().find(hash);
        if (primary_entry != primary.distrusted().end() &&
            primary_entry->second.empty() && !justification.empty()) {
          result.merged.distrust(hash, justification);
        }
        break;
      }
      case rootstore::TrustState::kTrusted:
        // Allowed (it only reduces exposure) but surfaced with its own
        // kind: conflating it with a metadata mismatch made `anchorctl`
        // merge reports indistinguishable from a benign EV-bit skew.
        result.merged.distrust(hash, justification);
        result.conflicts.push_back(MergeConflict{
            ConflictKind::kLocalDistrust, hash,
            "derivative distrusts a root the primary trusts"});
        break;
      case rootstore::TrustState::kUnknown:
        result.merged.distrust(hash, justification);
        break;
    }
  }

  // GCCs: union, keyed by (root, name); derivative may add local
  // constraints, and primary constraints always survive.
  for (const auto& root : primary.gccs().roots_sorted()) {
    for (const core::Gcc& gcc : primary.gccs().for_root(root)) {
      result.merged.attach_gcc(gcc);
    }
  }
  for (const auto& root : derivative.gccs().roots_sorted()) {
    // One name probe set per root, built once: the old per-GCC rescan of
    // the primary's list was O(primary × derivative) string compares per
    // root, which bench_rsf_merge's many-GCCs case showed dominating merge
    // time at CT-scale constraint counts.
    std::unordered_set<std::string_view> primary_names;
    for (const core::Gcc& existing : primary.gccs().for_root(root)) {
      primary_names.insert(existing.name());
    }
    for (const core::Gcc& gcc : derivative.gccs().for_root(root)) {
      if (!primary_names.contains(gcc.name())) result.merged.attach_gcc(gcc);
    }
  }

  // Revocation filter: the primary's (the feed's) filter is authoritative;
  // a derivative-local filter survives only when the primary ships none.
  if (primary.revocation_filter() != nullptr) {
    result.merged.set_revocation_filter(primary.revocation_filter());
  } else if (derivative.revocation_filter() != nullptr) {
    result.merged.set_revocation_filter(derivative.revocation_filter());
  }

  return result;
}

}  // namespace anchor::rsf
