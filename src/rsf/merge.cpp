#include "rsf/merge.hpp"

namespace anchor::rsf {

MergeResult merge(const rootstore::RootStore& primary,
                  const rootstore::RootStore& derivative, MergePolicy policy) {
  MergeResult result;

  // Primary trusted set forms the base.
  for (const rootstore::RootEntry* entry : primary.trusted()) {
    result.merged.add_trusted_unchecked(entry->cert, entry->metadata);
  }
  // Primary distrust set carries over.
  for (const auto& [hash, justification] : primary.distrusted()) {
    result.merged.distrust(hash, justification);
  }

  // Derivative additions.
  for (const rootstore::RootEntry* entry : derivative.trusted()) {
    const std::string hash = entry->cert->fingerprint_hex();
    switch (primary.state_of(hash)) {
      case rootstore::TrustState::kDistrusted: {
        result.conflicts.push_back(MergeConflict{
            ConflictKind::kDistrustedReAdded, hash,
            "derivative trusts a root the primary explicitly distrusts"});
        if (policy == MergePolicy::kDerivativeWins) {
          result.merged.forget(hash);
          result.merged.add_trusted_unchecked(entry->cert, entry->metadata);
        }
        break;
      }
      case rootstore::TrustState::kTrusted: {
        const rootstore::RootEntry* base = primary.find(hash);
        if (base != nullptr && !(base->metadata == entry->metadata)) {
          result.conflicts.push_back(MergeConflict{
              ConflictKind::kMetadataMismatch, hash,
              "derivative metadata differs from primary"});
          // Primary metadata already in the merged store; only override
          // when the derivative wins.
          if (policy == MergePolicy::kDerivativeWins) {
            result.merged.add_trusted_unchecked(entry->cert, entry->metadata);
          }
        }
        break;
      }
      case rootstore::TrustState::kUnknown:
        // A genuine local augmentation (imported/private root): kept.
        result.merged.add_trusted_unchecked(entry->cert, entry->metadata);
        break;
    }
  }

  // Derivative-local distrust is honored unless the primary trusts the root
  // and the derivative wins nothing here — local distrust only narrows.
  for (const auto& [hash, justification] : derivative.distrusted()) {
    if (primary.state_of(hash) != rootstore::TrustState::kTrusted) {
      result.merged.distrust(hash, justification);
    } else {
      // Derivative distrusting a primary-trusted root is allowed (it only
      // reduces exposure) but worth surfacing as metadata divergence.
      result.merged.distrust(hash, justification);
      result.conflicts.push_back(MergeConflict{
          ConflictKind::kMetadataMismatch, hash,
          "derivative distrusts a root the primary trusts"});
    }
  }

  // GCCs: union, keyed by (root, name); derivative may add local
  // constraints, and primary constraints always survive.
  for (const auto& root : primary.gccs().roots_sorted()) {
    for (const core::Gcc& gcc : primary.gccs().for_root(root)) {
      result.merged.gccs().attach(gcc);
    }
  }
  for (const auto& root : derivative.gccs().roots_sorted()) {
    for (const core::Gcc& gcc : derivative.gccs().for_root(root)) {
      bool primary_has = false;
      for (const core::Gcc& existing : primary.gccs().for_root(root)) {
        if (existing.name() == gcc.name()) {
          primary_has = true;
          break;
        }
      }
      if (!primary_has) result.merged.gccs().attach(gcc);
    }
  }

  return result;
}

}  // namespace anchor::rsf
