#include "rsf/feed.hpp"

#include "util/sha256.hpp"

namespace anchor::rsf {

Bytes Snapshot::transcript() const {
  // Length-prefixed concatenation; unambiguous under any field contents.
  std::string t = "anchor-rsf-snapshot/v1\n";
  t += "seq " + std::to_string(sequence) + "\n";
  t += "time " + std::to_string(published_at) + "\n";
  t += "prev " + prev_hash + "\n";
  t += "payload " + payload_hash + "\n";
  t += "annotation-len " + std::to_string(annotation.size()) + "\n";
  t += annotation;
  return to_bytes(t);
}

Feed::Feed(std::string name, SimSig& registry)
    : name_(std::move(name)),
      key_(SimSig::keygen("rsf-feed-" + name_)),
      registry_(registry) {
  registry_.register_key(key_);
}

std::uint64_t Feed::publish(const rootstore::RootStore& store,
                            std::int64_t published_at,
                            std::string annotation) {
  Snapshot snap;
  snap.sequence = snapshots_.size() + 1;
  snap.published_at = published_at;
  snap.annotation = std::move(annotation);
  snap.payload = store.serialize();
  snap.payload_hash = Sha256::hash_hex(BytesView(to_bytes(snap.payload)));
  snap.prev_hash = snapshots_.empty() ? "" : snapshots_.back().payload_hash;
  snap.signature = SimSig::sign(key_, BytesView(snap.transcript()));
  snapshots_.push_back(std::move(snap));
  return snapshots_.size();
}

std::vector<Snapshot> Feed::fetch_since(std::uint64_t after) const {
  std::vector<Snapshot> out;
  for (const auto& snap : snapshots_) {
    if (snap.sequence > after) out.push_back(snap);
  }
  return out;
}

const Snapshot* Feed::at(std::uint64_t sequence) const {
  if (sequence == 0 || sequence > snapshots_.size()) return nullptr;
  return &snapshots_[sequence - 1];
}

Result<std::string> Feed::fetch_delta(std::uint64_t sequence) const {
  const Snapshot* snap = at(sequence);
  if (snap == nullptr) return err("rsf: no snapshot " + std::to_string(sequence));
  rootstore::RootStore previous;
  if (sequence > 1) {
    auto parsed = rootstore::RootStore::deserialize(at(sequence - 1)->payload);
    if (!parsed) return err(parsed.error());
    previous = std::move(parsed).take();
  }
  auto current = rootstore::RootStore::deserialize(snap->payload);
  if (!current) return err(current.error());
  return StoreDelta::diff(previous, current.value()).serialize();
}

Snapshot* Feed::mutable_at(std::uint64_t sequence) {
  if (sequence == 0 || sequence > snapshots_.size()) return nullptr;
  return &snapshots_[sequence - 1];
}

Status Feed::verify_run(std::span<const Snapshot> run,
                        const std::string& anchor_prev_hash, BytesView key_id,
                        const SimSig& registry, RunFault* fault) {
  const auto fail = [&](RunFault kind, std::string message) -> Status {
    if (fault != nullptr) *fault = kind;
    return err(std::move(message));
  };
  if (fault != nullptr) *fault = RunFault::kNone;
  std::string expected_prev = anchor_prev_hash;
  std::uint64_t expected_seq = 0;
  for (const Snapshot& snap : run) {
    if (expected_seq != 0 && snap.sequence != expected_seq + 1) {
      return fail(RunFault::kSequenceGap,
                  "rsf: sequence gap at " + std::to_string(snap.sequence));
    }
    expected_seq = snap.sequence;
    if (!expected_prev.empty() && snap.prev_hash != expected_prev) {
      return fail(RunFault::kChainBroken,
                  "rsf: hash chain broken at sequence " +
                      std::to_string(snap.sequence));
    }
    std::string recomputed =
        Sha256::hash_hex(BytesView(to_bytes(snap.payload)));
    if (recomputed != snap.payload_hash) {
      return fail(RunFault::kPayloadHash,
                  "rsf: payload hash mismatch at sequence " +
                      std::to_string(snap.sequence));
    }
    if (!registry.verify(key_id, BytesView(snap.transcript()),
                         BytesView(snap.signature))) {
      return fail(RunFault::kBadSignature,
                  "rsf: bad signature at sequence " +
                      std::to_string(snap.sequence));
    }
    expected_prev = snap.payload_hash;
  }
  return {};
}

}  // namespace anchor::rsf
