#include "rsf/feed.hpp"

#include <algorithm>

#include "util/sha256.hpp"

namespace anchor::rsf {

namespace {

// Wire framing overhead of a length-prefixed string/blob field.
constexpr std::size_t kLenPrefix = 4;

std::string hash_hex(const ctlog::Hash& hash) {
  return to_hex(BytesView(hash.data(), hash.size()));
}

}  // namespace

Bytes Snapshot::transcript() const {
  // Length-prefixed concatenation; unambiguous under any field contents.
  std::string t = "anchor-rsf-snapshot/v1\n";
  t += "seq " + std::to_string(sequence) + "\n";
  t += "time " + std::to_string(published_at) + "\n";
  t += "prev " + prev_hash + "\n";
  t += "payload " + payload_hash + "\n";
  t += "annotation-len " + std::to_string(annotation.size()) + "\n";
  t += annotation;
  return to_bytes(t);
}

std::size_t Snapshot::wire_size(bool include_payload) const {
  std::size_t n = 8 /*sequence*/ + 8 /*published_at*/;
  n += kLenPrefix + annotation.size();
  n += kLenPrefix + (include_payload ? payload.size() : 0);
  n += kLenPrefix + payload_hash.size();
  n += kLenPrefix + prev_hash.size();
  n += kLenPrefix + signature.size();
  return n;
}

Bytes SignedTreeHead::transcript() const {
  std::string t = "anchor-rsf-sth/v1\n";
  t += "size " + std::to_string(tree_size) + "\n";
  t += "time " + std::to_string(published_at) + "\n";
  t += "root " + hash_hex(root_hash) + "\n";
  return to_bytes(t);
}

std::size_t SignedTreeHead::wire_size() const {
  return 8 /*tree_size*/ + root_hash.size() + 8 /*published_at*/ +
         kLenPrefix + signature.size();
}

std::size_t FeedFetch::wire_size(bool include_payloads) const {
  std::size_t n = sth.wire_size();
  n += kLenPrefix + consistency.size() * sizeof(ctlog::Hash);
  n += kLenPrefix + inclusion.size() * sizeof(ctlog::Hash);
  n += kLenPrefix;
  for (const Snapshot& snap : snapshots) n += snap.wire_size(include_payloads);
  n += kLenPrefix;
  for (const std::string& delta : deltas) n += kLenPrefix + delta.size();
  return n;
}

Feed::Feed(std::string name, SimSig& registry)
    : name_(std::move(name)),
      key_(SimSig::keygen("rsf-feed-" + name_)),
      registry_(registry) {
  registry_.register_key(key_);
}

SignedTreeHead Feed::make_sth_locked(std::uint64_t tree_size) const {
  if (tree_size == 0) {
    // The empty feed still has a well-defined, signed head: the RFC 6962
    // empty-tree root. Deterministic key + deterministic transcript keep
    // this byte-identical across processes.
    SignedTreeHead sth;
    sth.tree_size = 0;
    sth.root_hash = ctlog::empty_tree_hash();
    sth.published_at = 0;
    sth.signature = SimSig::sign(key_, BytesView(sth.transcript()));
    return sth;
  }
  return sths_[tree_size - 1];
}

std::uint64_t Feed::publish(const rootstore::RootStore& store,
                            std::int64_t published_at,
                            std::string annotation) {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.sequence = snapshots_.size() + 1;
  snap.published_at = published_at;
  snap.annotation = std::move(annotation);
  snap.payload = store.serialize();
  snap.payload_hash = Sha256::hash_hex(BytesView(to_bytes(snap.payload)));
  snap.prev_hash = snapshots_.empty() ? "" : snapshots_.back().payload_hash;
  snap.signature = SimSig::sign(key_, BytesView(snap.transcript()));
  tree_.append(BytesView(snap.transcript()));

  SignedTreeHead sth;
  sth.tree_size = snap.sequence;
  sth.root_hash = tree_.root();
  sth.published_at = published_at;
  sth.signature = SimSig::sign(key_, BytesView(sth.transcript()));

  snapshots_.push_back(std::move(snap));
  sths_.push_back(std::move(sth));
  return snapshots_.size();
}

std::uint64_t Feed::head_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.size();
}

SignedTreeHead Feed::tree_head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return make_sth_locked(snapshots_.size());
}

std::optional<SignedTreeHead> Feed::tree_head_at(
    std::uint64_t tree_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tree_size > snapshots_.size()) return std::nullopt;
  return make_sth_locked(tree_size);
}

Result<FeedFetch> Feed::feed_fetch(const FeedFetchQuery& query) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t head = snapshots_.size();
  const std::uint64_t to = query.to_size == 0 ? head : query.to_size;
  if (to > head) {
    return err("rsf: no tree head at size " + std::to_string(to) +
               " (head is " + std::to_string(head) + ")");
  }

  FeedFetch out;
  // A poller at or beyond the served view gets the tree head alone — it
  // classifies no-change vs rollback itself from the signed size/root. A
  // zero-snapshot query is an explicit head probe.
  if (query.from_size >= to || query.max_snapshots == 0) {
    out.sth = make_sth_locked(to);
    return out;
  }

  // Clamp the range to the snapshot and byte budgets, always making
  // progress by at least one snapshot; under pagination the tree head is
  // served AT the clamped size so the proofs below still verify.
  std::uint64_t served = std::min<std::uint64_t>(
      to, query.from_size + query.max_snapshots);
  if (query.max_bytes != 0) {
    std::uint64_t budget_end = query.from_size;
    std::size_t spent = 0;
    for (std::uint64_t seq = query.from_size + 1; seq <= served; ++seq) {
      spent += snapshots_[seq - 1].wire_size(!query.want_deltas);
      if (spent > query.max_bytes && budget_end > query.from_size) break;
      budget_end = seq;
    }
    served = budget_end;
  }

  out.sth = make_sth_locked(served);
  if (query.from_size > 0) {
    out.consistency = tree_.consistency_proof(query.from_size, served);
  }
  out.inclusion = tree_.inclusion_proof(served - 1, served);
  out.snapshots.assign(
      snapshots_.begin() + static_cast<std::ptrdiff_t>(query.from_size),
      snapshots_.begin() + static_cast<std::ptrdiff_t>(served));
  if (query.want_deltas) {
    out.deltas.reserve(out.snapshots.size());
    for (const Snapshot& snap : out.snapshots) {
      auto delta = fetch_delta_locked(snap.sequence);
      // A delta that cannot be derived (e.g. a corrupted stored payload)
      // must not take the whole response down: serve the snapshots with a
      // partial delta list and let the poller fall back to full payloads —
      // where its own verification then catches any corruption.
      if (!delta) break;
      out.deltas.push_back(std::move(delta).take());
    }
  }
  return out;
}

std::vector<Snapshot> Feed::fetch_since(std::uint64_t after) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Snapshot> out;
  for (const auto& snap : snapshots_) {
    if (snap.sequence > after) out.push_back(snap);
  }
  return out;
}

const Snapshot* Feed::at(std::uint64_t sequence) const {
  if (sequence == 0 || sequence > snapshots_.size()) return nullptr;
  return &snapshots_[sequence - 1];
}

Result<std::string> Feed::fetch_delta_locked(std::uint64_t sequence) const {
  if (sequence == 0 || sequence > snapshots_.size()) {
    return err("rsf: no snapshot " + std::to_string(sequence));
  }
  rootstore::RootStore previous;
  if (sequence > 1) {
    auto parsed =
        rootstore::RootStore::deserialize(snapshots_[sequence - 2].payload);
    if (!parsed) return err(parsed.error());
    previous = std::move(parsed).take();
  }
  auto current =
      rootstore::RootStore::deserialize(snapshots_[sequence - 1].payload);
  if (!current) return err(current.error());
  return StoreDelta::diff(previous, current.value()).serialize();
}

Result<std::string> Feed::fetch_delta(std::uint64_t sequence) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fetch_delta_locked(sequence);
}

Status Feed::restore(std::vector<Snapshot> run) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!snapshots_.empty()) return err("rsf: restore into a non-empty feed");
  if (run.empty()) return {};
  if (run.front().sequence != 1) {
    return err("rsf: restore run must start at sequence 1, got " +
               std::to_string(run.front().sequence));
  }
  Status verified = verify_run(run, "", BytesView(key_.key_id), registry_);
  if (!verified) return verified;
  snapshots_ = std::move(run);
  for (const Snapshot& snap : snapshots_) {
    tree_.append(BytesView(snap.transcript()));
    SignedTreeHead sth;
    sth.tree_size = snap.sequence;
    sth.root_hash = tree_.root();
    sth.published_at = snap.published_at;
    sth.signature = SimSig::sign(key_, BytesView(sth.transcript()));
    sths_.push_back(std::move(sth));
  }
  return {};
}

Snapshot* Feed::mutable_at(std::uint64_t sequence) {
  if (sequence == 0 || sequence > snapshots_.size()) return nullptr;
  return &snapshots_[sequence - 1];
}

Status Feed::verify_run(std::span<const Snapshot> run,
                        const std::string& anchor_prev_hash, BytesView key_id,
                        const SimSig& registry, RunFault* fault) {
  const auto fail = [&](RunFault kind, std::string message) -> Status {
    if (fault != nullptr) *fault = kind;
    return err(std::move(message));
  };
  if (fault != nullptr) *fault = RunFault::kNone;
  std::string expected_prev = anchor_prev_hash;
  std::uint64_t expected_seq = 0;
  for (const Snapshot& snap : run) {
    if (expected_seq != 0 && snap.sequence != expected_seq + 1) {
      return fail(RunFault::kSequenceGap,
                  "rsf: sequence gap at " + std::to_string(snap.sequence));
    }
    expected_seq = snap.sequence;
    if (!expected_prev.empty() && snap.prev_hash != expected_prev) {
      return fail(RunFault::kChainBroken,
                  "rsf: hash chain broken at sequence " +
                      std::to_string(snap.sequence));
    }
    std::string recomputed =
        Sha256::hash_hex(BytesView(to_bytes(snap.payload)));
    if (recomputed != snap.payload_hash) {
      return fail(RunFault::kPayloadHash,
                  "rsf: payload hash mismatch at sequence " +
                      std::to_string(snap.sequence));
    }
    if (!registry.verify(key_id, BytesView(snap.transcript()),
                         BytesView(snap.signature))) {
      return fail(RunFault::kBadSignature,
                  "rsf: bad signature at sequence " +
                      std::to_string(snap.sequence));
    }
    expected_prev = snap.payload_hash;
  }
  return {};
}

}  // namespace anchor::rsf
