// Root-Store Feeds (§4 of the paper): "a RSF is a sequence of root-store
// snapshots where, between snapshots, both certificates and GCCs may be
// added or removed. Each snapshot may be annotated with justifications of
// particular decisions."
//
// Integrity model (§4, "Security"): every snapshot is signed with the
// feed's key, and snapshots are hash-chained (each carries the hash of its
// predecessor) so a feed cannot be truncated or spliced undetected — the
// "immutable log" the paper gestures at. The feed key would in deployment
// be certified by a coordinating body (ICANN); here it is a SimSig key the
// client knows out of band.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rootstore/store.hpp"
#include "rsf/delta.hpp"
#include "util/result.hpp"
#include "util/simsig.hpp"

namespace anchor::rsf {

struct Snapshot {
  std::uint64_t sequence = 0;     // 1-based, strictly increasing
  std::int64_t published_at = 0;  // Unix seconds (SimClock domain)
  std::string annotation;         // operator justification for this release
  std::string payload;            // RootStore::serialize() output
  std::string payload_hash;       // SHA-256 hex of payload
  std::string prev_hash;          // payload_hash of predecessor ("" for first)
  Bytes signature;                // SimSig over the transcript

  // The byte string the signature covers.
  Bytes transcript() const;
};

class Feed {
 public:
  // `name` identifies the operator ("nss", "debian", ...); the signing key
  // is derived deterministically from it and registered into `registry` so
  // clients can verify.
  Feed(std::string name, SimSig& registry);

  // Publishes a new snapshot of `store`. Returns the assigned sequence.
  std::uint64_t publish(const rootstore::RootStore& store,
                        std::int64_t published_at, std::string annotation);

  const std::string& name() const { return name_; }
  const Bytes& key_id() const { return key_.key_id; }
  std::uint64_t head_sequence() const { return snapshots_.size(); }

  // Snapshots with sequence > `after` (what a polling client fetches).
  std::vector<Snapshot> fetch_since(std::uint64_t after) const;
  const Snapshot* at(std::uint64_t sequence) const;

  // Delta transport: the serialized StoreDelta turning snapshot
  // `sequence-1` into snapshot `sequence` (for sequence 1, a delta from the
  // empty store). Clients apply deltas to their local replica and verify
  // the result against the snapshot's signed payload hash — integrity
  // derives from the snapshot signature, so deltas need no signature of
  // their own. Computed on demand; empty Result on bad sequence.
  Result<std::string> fetch_delta(std::uint64_t sequence) const;

  // What, structurally, made a run fail verification. Lets the client
  // classify failures for its per-kind transport-error accounting without
  // string-matching diagnostics.
  enum class RunFault {
    kNone,
    kSequenceGap,   // sequences not contiguous
    kChainBroken,   // prev_hash does not link
    kPayloadHash,   // payload bytes do not match the signed hash
    kBadSignature,  // signature does not verify
  };

  // Verifies signature + hash chain of a fetched run of snapshots,
  // anchored at the client's last verified hash. Fails closed. When
  // `fault` is non-null, it receives the classified failure (kNone on
  // success).
  static Status verify_run(std::span<const Snapshot> run,
                           const std::string& anchor_prev_hash,
                           BytesView key_id, const SimSig& registry,
                           RunFault* fault = nullptr);

  // Tamper hook for negative tests: mutate a stored snapshot in place.
  Snapshot* mutable_at(std::uint64_t sequence);

 private:
  std::string name_;
  SimKeyPair key_;
  SimSig& registry_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace anchor::rsf
