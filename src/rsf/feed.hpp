// Root-Store Feeds (§4 of the paper): "a RSF is a sequence of root-store
// snapshots where, between snapshots, both certificates and GCCs may be
// added or removed. Each snapshot may be annotated with justifications of
// particular decisions."
//
// Integrity model (§4, "Security"): every snapshot is signed with the
// feed's key, and snapshots are hash-chained (each carries the hash of its
// predecessor) so a feed cannot be truncated or spliced undetected — the
// "immutable log" the paper gestures at. On top of the chain the feed
// maintains an RFC 6962 Merkle tree over snapshot transcripts and signs a
// tree head per publication, making the feed a verifiable log in the CT
// sense: a poller that pins (size, root) can verify a consistency proof
// that the served history extends the one it already adopted, so a
// no-change poll costs one tree head and a rollback or split view is
// cryptographically detectable instead of merely sequence-number
// detectable. The feed key would in deployment be certified by a
// coordinating body (ICANN); here it is a SimSig key the client knows out
// of band.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ctlog/merkle.hpp"
#include "rootstore/store.hpp"
#include "rsf/delta.hpp"
#include "util/result.hpp"
#include "util/simsig.hpp"

namespace anchor::rsf {

struct Snapshot {
  std::uint64_t sequence = 0;     // 1-based, strictly increasing
  std::int64_t published_at = 0;  // Unix seconds (SimClock domain)
  std::string annotation;         // operator justification for this release
  std::string payload;            // RootStore::serialize() output
  std::string payload_hash;       // SHA-256 hex of payload
  std::string prev_hash;          // payload_hash of predecessor ("" for first)
  Bytes signature;                // SimSig over the transcript

  // The byte string the signature covers; also the Merkle leaf entry.
  Bytes transcript() const;

  // Serialized footprint on the feed-fetch wire. The payload is the
  // dominant term; delta-mode polls ship headers only (the payload travels
  // as a StoreDelta instead), so it is optional here.
  std::size_t wire_size(bool include_payload) const;

  bool operator==(const Snapshot&) const = default;
};

// A signed commitment to the feed's entire history at `tree_size`
// publications: the Merkle root over snapshot transcripts 1..tree_size.
// O(1) bytes regardless of feed length — the thing a no-change poll
// transfers.
struct SignedTreeHead {
  std::uint64_t tree_size = 0;
  ctlog::Hash root_hash{};
  std::int64_t published_at = 0;
  Bytes signature;

  // The byte string the signature covers.
  Bytes transcript() const;

  // Serialized footprint on the feed-fetch wire.
  std::size_t wire_size() const;

  bool operator==(const SignedTreeHead&) const = default;
};

// What a poller asks the feed (directly or via the anchord feed-fetch
// verb): "I have verified your history up to from_size; prove your current
// head extends it and send me the range I'm missing."
struct FeedFetchQuery {
  // No snapshot cap — serve the whole missing range (the server applies
  // its own frame-budget clamp on top).
  static constexpr std::uint32_t kAllSnapshots = 0xffffffffu;

  std::uint64_t from_size = 0;      // poller's pinned tree size (0 = none)
  std::uint64_t to_size = 0;        // 0 = current head; else a historic view
  std::uint32_t max_snapshots = kAllSnapshots;  // 0 = tree-head-only probe
  std::uint64_t max_bytes = 0;      // snapshot byte budget, 0 = unbounded
  bool want_deltas = false;         // also ship the StoreDelta per snapshot

  bool operator==(const FeedFetchQuery&) const = default;
};

// The feed's answer. `sth` is the head actually served — under pagination
// it may sit below the true head, in which case proofs are computed at the
// served size so they still verify and the poller simply polls again.
struct FeedFetch {
  SignedTreeHead sth;
  std::vector<ctlog::Hash> consistency;  // from_size -> sth.tree_size
  std::vector<ctlog::Hash> inclusion;    // head leaf within sth
  std::vector<Snapshot> snapshots;       // (from_size, sth.tree_size]
  std::vector<std::string> deltas;       // aligned with snapshots, if asked

  // Serialized footprint; see Snapshot::wire_size for `include_payloads`.
  std::size_t wire_size(bool include_payloads) const;

  bool operator==(const FeedFetch&) const = default;
};

class Feed {
 public:
  // `name` identifies the operator ("nss", "debian", ...); the signing key
  // is derived deterministically from it and registered into `registry` so
  // clients can verify.
  Feed(std::string name, SimSig& registry);

  // Publishes a new snapshot of `store` and signs the tree head covering
  // it. Returns the assigned sequence. Safe against concurrent feed_fetch
  // / fetch_since / tree_head callers.
  std::uint64_t publish(const rootstore::RootStore& store,
                        std::int64_t published_at, std::string annotation);

  const std::string& name() const { return name_; }
  const Bytes& key_id() const { return key_.key_id; }
  std::uint64_t head_sequence() const;

  // The signed tree head at the current (or a historic) size. Size 0 — the
  // empty feed — has the RFC 6962 empty-tree root. Empty optional if
  // `tree_size` exceeds the head.
  SignedTreeHead tree_head() const;
  std::optional<SignedTreeHead> tree_head_at(std::uint64_t tree_size) const;

  // Serves a feed-fetch query: signed tree head, consistency proof from
  // the poller's pinned size, inclusion proof for the served head leaf,
  // and the snapshot range — clamped to the query's snapshot/byte budget
  // (always making progress by at least one snapshot). A query whose
  // from_size is at or beyond the served head gets the tree head alone;
  // the poller classifies staleness/rollback itself.
  Result<FeedFetch> feed_fetch(const FeedFetchQuery& query) const;

  // Snapshots with sequence > `after` (what a legacy polling client
  // fetches).
  std::vector<Snapshot> fetch_since(std::uint64_t after) const;

  // Direct access for single-threaded callers (manual mirrors, tests);
  // the pointer is invalidated by publish(), so do not mix with
  // concurrent publication.
  const Snapshot* at(std::uint64_t sequence) const;

  // Delta transport: the serialized StoreDelta turning snapshot
  // `sequence-1` into snapshot `sequence` (for sequence 1, a delta from the
  // empty store). Clients apply deltas to their local replica and verify
  // the result against the snapshot's signed payload hash — integrity
  // derives from the snapshot signature, so deltas need no signature of
  // their own. Computed on demand; empty Result on bad sequence.
  Result<std::string> fetch_delta(std::uint64_t sequence) const;

  // Rebuilds the feed from an externally stored run (e.g. an anchorctl
  // feed directory): verifies the full chain against this feed's key, then
  // adopts it, recomputing the Merkle tree and re-signing every historic
  // tree head (the key is deterministic, so the heads are identical to the
  // ones the original publisher signed). Fails closed; the feed must be
  // empty.
  Status restore(std::vector<Snapshot> run);

  // What, structurally, made a run fail verification. Lets the client
  // classify failures for its per-kind transport-error accounting without
  // string-matching diagnostics.
  enum class RunFault {
    kNone,
    kSequenceGap,   // sequences not contiguous
    kChainBroken,   // prev_hash does not link
    kPayloadHash,   // payload bytes do not match the signed hash
    kBadSignature,  // signature does not verify
  };

  // Verifies signature + hash chain of a fetched run of snapshots,
  // anchored at the client's last verified hash. Fails closed. When
  // `fault` is non-null, it receives the classified failure (kNone on
  // success).
  static Status verify_run(std::span<const Snapshot> run,
                           const std::string& anchor_prev_hash,
                           BytesView key_id, const SimSig& registry,
                           RunFault* fault = nullptr);

  // Tamper hook for negative tests: mutate a stored snapshot in place.
  // Deliberately does NOT resign the tree head — a tampered snapshot must
  // be caught by signature/proof checks, not laundered into a new head.
  Snapshot* mutable_at(std::uint64_t sequence);

 private:
  SignedTreeHead make_sth_locked(std::uint64_t tree_size) const;
  Result<std::string> fetch_delta_locked(std::uint64_t sequence) const;

  std::string name_;
  SimKeyPair key_;
  SimSig& registry_;
  mutable std::mutex mu_;  // guards snapshots_, sths_, tree_
  std::vector<Snapshot> snapshots_;
  std::vector<SignedTreeHead> sths_;  // sths_[i] covers tree size i+1
  ctlog::MerkleTree tree_;            // leaves: snapshot transcripts
};

}  // namespace anchor::rsf
