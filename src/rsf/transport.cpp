#include "rsf/transport.hpp"

#include <algorithm>

namespace anchor::rsf {

const char* to_string(TransportErrorKind kind) {
  switch (kind) {
    case TransportErrorKind::kUnreachable:
      return "unreachable";
    case TransportErrorKind::kTruncatedRun:
      return "truncated-run";
    case TransportErrorKind::kCorruptPayload:
      return "corrupt-payload";
    case TransportErrorKind::kCorruptDelta:
      return "corrupt-delta";
    case TransportErrorKind::kBadSignature:
      return "bad-signature";
    case TransportErrorKind::kRollback:
      return "rollback";
    case TransportErrorKind::kBadProof:
      return "bad-proof";
  }
  return "unknown";
}

FaultProfile FaultProfile::loss(double p) {
  FaultProfile profile;
  profile.unreachable = p;
  return profile;
}

FaultProfile FaultProfile::corruption(double p) {
  FaultProfile profile;
  profile.corrupt_payload = p;
  profile.corrupt_delta = p;
  profile.flip_signature = p;
  return profile;
}

FaultProfile FaultProfile::chaos(double p) {
  FaultProfile profile;
  profile.unreachable = p;
  profile.truncate_run = p;
  profile.corrupt_payload = p;
  profile.corrupt_delta = p;
  profile.flip_signature = p;
  profile.rollback = p;
  profile.corrupt_proof = p;
  return profile;
}

FaultyTransport::FaultyTransport(FeedTransport& inner, FaultProfile profile,
                                 std::uint64_t seed)
    : inner_(inner), profile_(profile), rng_(seed) {}

std::uint64_t FaultyTransport::injected_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : injected_) total += n;
  return total;
}

Result<std::vector<Snapshot>> FaultyTransport::fetch_since(
    std::uint64_t after) {
  if (rng_.chance(profile_.unreachable)) {
    count(TransportErrorKind::kUnreachable);
    return err("transport: feed unreachable");
  }
  auto fetched = inner_.fetch_since(after);
  if (!fetched) return fetched;
  std::vector<Snapshot> run = std::move(fetched).take();

  if (after > 0 && rng_.chance(profile_.rollback)) {
    // Stale-head replay: re-serve the feed as it looked at some head at or
    // below the client's current sequence, the way a lagging cache would.
    auto old = inner_.fetch_since(0);
    if (old) {
      const std::uint64_t stale_head = 1 + rng_.uniform(after);  // [1, after]
      run = std::move(old).take();
      run.erase(std::remove_if(run.begin(), run.end(),
                               [&](const Snapshot& snap) {
                                 return snap.sequence > stale_head;
                               }),
                run.end());
      count(TransportErrorKind::kRollback);
    }
  } else if (!run.empty() && rng_.chance(profile_.truncate_run)) {
    // Drop the tail: a still-valid (but stale) prefix, possibly empty.
    run.resize(rng_.uniform(run.size()));
    count(TransportErrorKind::kTruncatedRun);
  }

  if (!run.empty() && rng_.chance(profile_.corrupt_payload)) {
    Snapshot& victim = run[rng_.uniform(run.size())];
    if (victim.payload.empty()) {
      victim.payload = "?";
    } else {
      victim.payload[rng_.uniform(victim.payload.size())] ^= 0x01;
    }
    count(TransportErrorKind::kCorruptPayload);
  }
  if (!run.empty() && rng_.chance(profile_.flip_signature)) {
    Snapshot& victim = run[rng_.uniform(run.size())];
    if (victim.signature.empty()) {
      victim.signature.push_back(0x01);
    } else {
      victim.signature[rng_.uniform(victim.signature.size())] ^= 0x01;
    }
    count(TransportErrorKind::kBadSignature);
  }
  return run;
}

Result<FeedFetch> FaultyTransport::feed_fetch(const FeedFetchQuery& query) {
  if (rng_.chance(profile_.unreachable)) {
    count(TransportErrorKind::kUnreachable);
    return err("transport: feed unreachable");
  }
  FeedFetchQuery effective = query;
  if (query.from_size > 1 && rng_.chance(profile_.rollback)) {
    // Stale-head replay: answer from the feed as it looked at some head
    // strictly below the poller's pinned size, the way a lagging cache
    // would. (An equal-size replay is indistinguishable from a legitimate
    // no-change — the pinned root authenticates it — so the attack only
    // manifests below the pin.) The historic tree head is genuinely
    // signed; only the client's size/root pin can catch this.
    effective.to_size = 1 + rng_.uniform(query.from_size - 1);  // [1, from)
    count(TransportErrorKind::kRollback);
  }
  auto fetched = inner_.feed_fetch(effective);
  if (!fetched) return fetched;
  FeedFetch out = std::move(fetched).take();

  if (!out.snapshots.empty() && rng_.chance(profile_.truncate_run)) {
    // Drop the tail of the range; the tree head still claims the full
    // served size, so the client sees a short run.
    out.snapshots.resize(rng_.uniform(out.snapshots.size()));
    if (!out.deltas.empty()) out.deltas.resize(out.snapshots.size());
    count(TransportErrorKind::kTruncatedRun);
  }
  if (!out.snapshots.empty() && rng_.chance(profile_.corrupt_payload)) {
    Snapshot& victim = out.snapshots[rng_.uniform(out.snapshots.size())];
    if (victim.payload.empty()) {
      victim.payload = "?";
    } else {
      victim.payload[rng_.uniform(victim.payload.size())] ^= 0x01;
    }
    count(TransportErrorKind::kCorruptPayload);
  }
  if (!out.snapshots.empty() && rng_.chance(profile_.flip_signature)) {
    Snapshot& victim = out.snapshots[rng_.uniform(out.snapshots.size())];
    if (victim.signature.empty()) {
      victim.signature.push_back(0x01);
    } else {
      victim.signature[rng_.uniform(victim.signature.size())] ^= 0x01;
    }
    count(TransportErrorKind::kBadSignature);
  }
  if (!out.deltas.empty() && rng_.chance(profile_.corrupt_delta)) {
    std::string& victim = out.deltas[rng_.uniform(out.deltas.size())];
    if (victim.empty()) {
      victim = "?";
    } else {
      victim[rng_.uniform(victim.size())] ^= 0x01;
    }
    count(TransportErrorKind::kCorruptDelta);
  }
  const std::size_t proof_nodes = out.consistency.size() + out.inclusion.size();
  if (proof_nodes > 0 && rng_.chance(profile_.corrupt_proof)) {
    const std::size_t victim = rng_.uniform(proof_nodes);
    ctlog::Hash& node = victim < out.consistency.size()
                            ? out.consistency[victim]
                            : out.inclusion[victim - out.consistency.size()];
    node[rng_.uniform(node.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.uniform(8));
    count(TransportErrorKind::kBadProof);
  }
  return out;
}

Result<std::string> FaultyTransport::fetch_delta(std::uint64_t sequence) {
  if (rng_.chance(profile_.unreachable)) {
    count(TransportErrorKind::kUnreachable);
    return err("transport: feed unreachable");
  }
  auto fetched = inner_.fetch_delta(sequence);
  if (!fetched) return fetched;
  std::string text = std::move(fetched).take();
  if (rng_.chance(profile_.corrupt_delta)) {
    if (text.empty()) {
      text = "?";
    } else {
      text[rng_.uniform(text.size())] ^= 0x01;
    }
    count(TransportErrorKind::kCorruptDelta);
  }
  return text;
}

}  // namespace anchor::rsf
