#include "rsf/transport.hpp"

#include <algorithm>

namespace anchor::rsf {

const char* to_string(TransportErrorKind kind) {
  switch (kind) {
    case TransportErrorKind::kUnreachable:
      return "unreachable";
    case TransportErrorKind::kTruncatedRun:
      return "truncated-run";
    case TransportErrorKind::kCorruptPayload:
      return "corrupt-payload";
    case TransportErrorKind::kCorruptDelta:
      return "corrupt-delta";
    case TransportErrorKind::kBadSignature:
      return "bad-signature";
    case TransportErrorKind::kRollback:
      return "rollback";
  }
  return "unknown";
}

FaultProfile FaultProfile::loss(double p) {
  FaultProfile profile;
  profile.unreachable = p;
  return profile;
}

FaultProfile FaultProfile::corruption(double p) {
  FaultProfile profile;
  profile.corrupt_payload = p;
  profile.corrupt_delta = p;
  profile.flip_signature = p;
  return profile;
}

FaultProfile FaultProfile::chaos(double p) {
  FaultProfile profile;
  profile.unreachable = p;
  profile.truncate_run = p;
  profile.corrupt_payload = p;
  profile.corrupt_delta = p;
  profile.flip_signature = p;
  profile.rollback = p;
  return profile;
}

FaultyTransport::FaultyTransport(FeedTransport& inner, FaultProfile profile,
                                 std::uint64_t seed)
    : inner_(inner), profile_(profile), rng_(seed) {}

std::uint64_t FaultyTransport::injected_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : injected_) total += n;
  return total;
}

Result<std::vector<Snapshot>> FaultyTransport::fetch_since(
    std::uint64_t after) {
  if (rng_.chance(profile_.unreachable)) {
    count(TransportErrorKind::kUnreachable);
    return err("transport: feed unreachable");
  }
  auto fetched = inner_.fetch_since(after);
  if (!fetched) return fetched;
  std::vector<Snapshot> run = std::move(fetched).take();

  if (after > 0 && rng_.chance(profile_.rollback)) {
    // Stale-head replay: re-serve the feed as it looked at some head at or
    // below the client's current sequence, the way a lagging cache would.
    auto old = inner_.fetch_since(0);
    if (old) {
      const std::uint64_t stale_head = 1 + rng_.uniform(after);  // [1, after]
      run = std::move(old).take();
      run.erase(std::remove_if(run.begin(), run.end(),
                               [&](const Snapshot& snap) {
                                 return snap.sequence > stale_head;
                               }),
                run.end());
      count(TransportErrorKind::kRollback);
    }
  } else if (!run.empty() && rng_.chance(profile_.truncate_run)) {
    // Drop the tail: a still-valid (but stale) prefix, possibly empty.
    run.resize(rng_.uniform(run.size()));
    count(TransportErrorKind::kTruncatedRun);
  }

  if (!run.empty() && rng_.chance(profile_.corrupt_payload)) {
    Snapshot& victim = run[rng_.uniform(run.size())];
    if (victim.payload.empty()) {
      victim.payload = "?";
    } else {
      victim.payload[rng_.uniform(victim.payload.size())] ^= 0x01;
    }
    count(TransportErrorKind::kCorruptPayload);
  }
  if (!run.empty() && rng_.chance(profile_.flip_signature)) {
    Snapshot& victim = run[rng_.uniform(run.size())];
    if (victim.signature.empty()) {
      victim.signature.push_back(0x01);
    } else {
      victim.signature[rng_.uniform(victim.signature.size())] ^= 0x01;
    }
    count(TransportErrorKind::kBadSignature);
  }
  return run;
}

Result<std::string> FaultyTransport::fetch_delta(std::uint64_t sequence) {
  if (rng_.chance(profile_.unreachable)) {
    count(TransportErrorKind::kUnreachable);
    return err("transport: feed unreachable");
  }
  auto fetched = inner_.fetch_delta(sequence);
  if (!fetched) return fetched;
  std::string text = std::move(fetched).take();
  if (rng_.chance(profile_.corrupt_delta)) {
    if (text.empty()) {
      text = "?";
    } else {
      text[rng_.uniform(text.size())] ^= 0x01;
    }
    count(TransportErrorKind::kCorruptDelta);
  }
  return text;
}

}  // namespace anchor::rsf
