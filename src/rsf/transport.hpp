// Feed transports: how a polling client reaches a Root-Store Feed.
//
// The paper's deployment story (§4) has derivatives polling a primary RSF
// over the network, where the feed can be unreachable, truncated by a lazy
// mirror, corrupted in flight, or rolled back by a stale cache. `Feed`
// itself is an in-memory append-only log that can never fail, so the
// client/feed seam is widened into `FeedTransport`: `DirectTransport` is
// the perfect in-process wire, and `FaultyTransport` is a decorator that
// injects deterministic, seeded faults (driven by `util/rng`) between any
// transport and the client. The client's verification/quarantine/backoff
// machinery (client.hpp) is exercised against the faulty decorator; the
// feed's signatures and hash chain guarantee that no injected fault can
// ever make an unverified snapshot adoptable — faults only cost liveness,
// never safety (pinned by tests/rsf_fault_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rsf/feed.hpp"
#include "util/rng.hpp"

namespace anchor::rsf {

// Failure taxonomy, used both for injection (FaultyTransport) and for the
// client's per-kind error accounting (ClientStats::transport_errors).
enum class TransportErrorKind : int {
  kUnreachable = 0,    // the fetch itself failed; nothing was delivered
  kTruncatedRun = 1,   // run ends early / has gaps (stale or lazy mirror)
  kCorruptPayload = 2, // snapshot payload bytes damaged in flight
  kCorruptDelta = 3,   // delta text damaged in flight
  kBadSignature = 4,   // snapshot signature bytes flipped
  kRollback = 5,       // replay of an older feed state (stale-head)
  kBadProof = 6,       // Merkle consistency/inclusion proof rejected
};
inline constexpr std::size_t kTransportErrorKindCount = 7;

const char* to_string(TransportErrorKind kind);

// How the client moves snapshots over the wire. Implementations must be
// safe to call repeatedly; they never mutate the underlying feed.
class FeedTransport {
 public:
  virtual ~FeedTransport() = default;

  virtual const std::string& name() const = 0;
  virtual const Bytes& key_id() const = 0;

  // Cheap head probe (an HTTP HEAD in deployment): the newest published
  // sequence, so an up-to-date client can skip the payload fetch entirely.
  virtual Result<std::uint64_t> head_sequence() = 0;

  // Snapshots with sequence > `after`.
  virtual Result<std::vector<Snapshot>> fetch_since(std::uint64_t after) = 0;

  // Serialized StoreDelta for `sequence` (see Feed::fetch_delta).
  virtual Result<std::string> fetch_delta(std::uint64_t sequence) = 0;

  // Merkle-authenticated poll path (Feed::feed_fetch). Transports that
  // support it let the client verify consistency proofs before adopting
  // anything; legacy transports keep the sequence-number poll path.
  virtual bool supports_feed_fetch() const { return false; }
  virtual Result<FeedFetch> feed_fetch(const FeedFetchQuery& query) {
    (void)query;
    return err("transport: feed-fetch not supported");
  }
};

// The perfect wire: pass-through to an in-process Feed. Never fails.
class DirectTransport : public FeedTransport {
 public:
  explicit DirectTransport(const Feed& feed) : feed_(feed) {}

  const std::string& name() const override { return feed_.name(); }
  const Bytes& key_id() const override { return feed_.key_id(); }
  Result<std::uint64_t> head_sequence() override {
    return feed_.head_sequence();
  }
  Result<std::vector<Snapshot>> fetch_since(std::uint64_t after) override {
    return feed_.fetch_since(after);
  }
  Result<std::string> fetch_delta(std::uint64_t sequence) override {
    return feed_.fetch_delta(sequence);
  }
  bool supports_feed_fetch() const override { return true; }
  Result<FeedFetch> feed_fetch(const FeedFetchQuery& query) override {
    return feed_.feed_fetch(query);
  }

 private:
  const Feed& feed_;
};

// Per-call injection probabilities, each an independent Bernoulli trial.
struct FaultProfile {
  double unreachable = 0;      // fetch_since/fetch_delta fail outright
  double truncate_run = 0;     // drop the tail of a fetched run
  double corrupt_payload = 0;  // flip a byte in one snapshot payload
  double corrupt_delta = 0;    // flip a byte in a fetched delta
  double flip_signature = 0;   // flip a byte in one snapshot signature
  double rollback = 0;         // serve a replay of an older feed state
  double corrupt_proof = 0;    // flip a bit in a Merkle proof node

  bool any() const {
    return unreachable > 0 || truncate_run > 0 || corrupt_payload > 0 ||
           corrupt_delta > 0 || flip_signature > 0 || rollback > 0 ||
           corrupt_proof > 0;
  }

  static FaultProfile loss(double p);        // unreachable only
  static FaultProfile corruption(double p);  // payload + delta + signature
  static FaultProfile chaos(double p);       // every kind at p
};

// Decorator injecting deterministic, seeded faults into another transport.
// Faults target the payload-bearing fetches; the head probe passes through
// untouched (it is metadata-cheap, and keeping it reliable lets tests
// separate "cannot see the head" from "cannot fetch the run"). Mutations
// are applied to copies — the wrapped transport and its feed are never
// altered. Per-kind injection counters let tests and benches correlate
// what went in with what the client observed.
class FaultyTransport : public FeedTransport {
 public:
  FaultyTransport(FeedTransport& inner, FaultProfile profile,
                  std::uint64_t seed);

  const std::string& name() const override { return inner_.name(); }
  const Bytes& key_id() const override { return inner_.key_id(); }
  Result<std::uint64_t> head_sequence() override {
    return inner_.head_sequence();
  }
  Result<std::vector<Snapshot>> fetch_since(std::uint64_t after) override;
  Result<std::string> fetch_delta(std::uint64_t sequence) override;
  bool supports_feed_fetch() const override {
    return inner_.supports_feed_fetch();
  }
  Result<FeedFetch> feed_fetch(const FeedFetchQuery& query) override;

  // Live reconfiguration: a sweep (or a "faults clear" test phase) swaps
  // profiles without disturbing the client's accumulated state.
  void set_profile(const FaultProfile& profile) { profile_ = profile; }
  const FaultProfile& profile() const { return profile_; }

  std::uint64_t injected(TransportErrorKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t injected_total() const;

 private:
  void count(TransportErrorKind kind) {
    ++injected_[static_cast<std::size_t>(kind)];
  }

  FeedTransport& inner_;
  FaultProfile profile_;
  Rng rng_;
  std::array<std::uint64_t, kTransportErrorKindCount> injected_{};
};

}  // namespace anchor::rsf
