// Feed consumers. Two models, matching the paper's comparison:
//
//  * RsfClient — the proposed mechanism: "a core RSF systemd service that
//    periodically (hourly) polls the primary RSF of their choice and
//    updates the root certificates exposed to applications" (§4). Every
//    fetched run is signature- and hash-chain-verified before application,
//    and the local (derivative) store is merged with the primary payload.
//
//  * ManualMirrorClient — today's practice: a human periodically imports
//    the primary store into the distribution with months of lag (Ma et
//    al.'s measurements, cited in §§1, 4). It only ever applies full
//    snapshots, with no partial-distrust carriage when `strip_gccs` models
//    a legacy /etc/ssl/certs-style consumer.
#pragma once

#include <cstdint>
#include <optional>

#include "rsf/feed.hpp"
#include "rsf/merge.hpp"

namespace anchor::rsf {

struct ClientStats {
  std::uint64_t polls = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t merge_conflicts = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t delta_fallbacks = 0;  // delta replay mismatched; used snapshot
  std::uint64_t bytes_fetched = 0;    // payload or delta bytes, per transport
};

// How the client moves store state over the wire. Either way the signed,
// hash-chained snapshot is the root of trust: kDelta replays edit scripts
// and then *verifies the replica against the snapshot's payload hash*,
// falling back to the full snapshot on any mismatch.
enum class Transport { kFullSnapshot, kDelta };

class RsfClient {
 public:
  // `poll_interval` in seconds (the paper suggests hourly).
  RsfClient(const Feed& feed, std::int64_t poll_interval,
            MergePolicy policy = MergePolicy::kPrimaryWins,
            Transport transport = Transport::kFullSnapshot);

  // Local augmentations (imported roots, site GCCs) merged atop every
  // primary snapshot.
  void set_local_store(rootstore::RootStore local);

  // Advances to `now`, polling as many times as the interval allows.
  // Returns the number of snapshots applied.
  std::size_t run_until(std::int64_t now);

  // Single poll at time `now` regardless of schedule (for tests).
  std::size_t poll_now(std::int64_t now);

  const rootstore::RootStore& store() const { return store_; }
  std::uint64_t last_applied_sequence() const { return last_sequence_; }
  std::int64_t last_update_time() const { return last_update_time_; }
  const ClientStats& stats() const { return stats_; }

 private:
  const Feed& feed_;
  std::int64_t poll_interval_;
  MergePolicy policy_;
  std::int64_t next_poll_ = 0;
  std::uint64_t last_sequence_ = 0;
  std::string last_hash_;
  std::int64_t last_update_time_ = -1;
  Transport transport_ = Transport::kFullSnapshot;
  rootstore::RootStore primary_replica_;  // the primary state, pre-merge
  rootstore::RootStore store_;
  std::optional<rootstore::RootStore> local_;
  SimSig verifier_registry_;  // holds the feed key for verification
  ClientStats stats_;
};

class ManualMirrorClient {
 public:
  // `strip_gccs`: model a derivative that can only ship bare certificate
  // collections (the paper's imprecision problem).
  ManualMirrorClient(const Feed& feed, bool strip_gccs);

  // A human performs an import at time `now`: adopts the latest snapshot.
  void manual_sync(std::int64_t now);

  const rootstore::RootStore& store() const { return store_; }
  std::uint64_t mirrored_sequence() const { return mirrored_sequence_; }
  std::int64_t last_sync_time() const { return last_sync_time_; }

 private:
  const Feed& feed_;
  bool strip_gccs_;
  std::uint64_t mirrored_sequence_ = 0;
  std::int64_t last_sync_time_ = -1;
  rootstore::RootStore store_;
};

}  // namespace anchor::rsf
