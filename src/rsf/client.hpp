// Feed consumers. Two models, matching the paper's comparison:
//
//  * RsfClient — the proposed mechanism: "a core RSF systemd service that
//    periodically (hourly) polls the primary RSF of their choice and
//    updates the root certificates exposed to applications" (§4). Every
//    fetched run is signature- and hash-chain-verified before application,
//    and the local (derivative) store is merged with the primary payload.
//
//    The client reaches the feed through a FeedTransport (transport.hpp)
//    that can fail: polls that error or fail verification are retried on
//    an exponential backoff with jitter; snapshots that repeatedly fail
//    verification are quarantined for a bounded interval so a poisoned
//    sequence number is not re-fetched every poll; and a three-state
//    health machine (healthy / degraded / stale) reports how far behind
//    the exposed store may be. Under every fault the client keeps serving
//    the last verified store — faults cost freshness, never safety.
//
//  * ManualMirrorClient — today's practice: a human periodically imports
//    the primary store into the distribution with months of lag (Ma et
//    al.'s measurements, cited in §§1, 4). It only ever applies full
//    snapshots, with no partial-distrust carriage when `strip_gccs` models
//    a legacy /etc/ssl/certs-style consumer.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "rsf/feed.hpp"
#include "rsf/merge.hpp"
#include "rsf/transport.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace anchor::rsf {

// Fires after a client adopts a new exposed store — epoch already advanced
// past the predecessor's. This is where serving infrastructure reacts to a
// feed update: anchord publishes a fresh mmap snapshot and swaps its
// VerifyService onto it (rootstore/snapshot), so the O(1)-warm-start image
// on disk tracks the feed instead of going stale at daemon start.
using AdoptionHook = std::function<void(const rootstore::RootStore&)>;

struct ClientStats {
  std::uint64_t polls = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t verify_failures = 0;  // signature / hash-chain rejections
  std::uint64_t parse_failures = 0;   // signed payload that won't deserialize
  std::uint64_t merge_conflicts = 0;
  std::uint64_t deltas_applied = 0;   // only deltas in the adopted replica
  std::uint64_t delta_fallbacks = 0;  // delta replay mismatched; used snapshot
  std::uint64_t bytes_fetched = 0;    // payload or delta bytes, per transport
  std::uint64_t bytes_discarded = 0;  // fetched but thrown away (failed runs)
  std::uint64_t retries = 0;          // backoff-scheduled re-polls
  std::uint64_t quarantine_skips = 0; // polls skipped on a quarantined head
  std::uint64_t proof_failures = 0;   // Merkle consistency/inclusion rejects
  std::uint64_t verified_no_change = 0;  // polls settled by tree head alone
  std::size_t quarantine_size = 0;    // currently quarantined sequences
  std::int64_t seconds_stale = 0;     // now - last verified feed contact
  std::array<std::uint64_t, kTransportErrorKindCount> transport_errors{};

  std::uint64_t transport_error(TransportErrorKind kind) const {
    return transport_errors[static_cast<std::size_t>(kind)];
  }
  std::uint64_t transport_errors_total() const {
    std::uint64_t total = 0;
    for (std::uint64_t n : transport_errors) total += n;
    return total;
  }
};

// How the client moves store state over the wire. Either way the signed,
// hash-chained snapshot is the root of trust: kDelta replays edit scripts
// and then *verifies the replica against the snapshot's payload hash*,
// falling back to the full snapshot on any mismatch.
enum class Transport { kFullSnapshot, kDelta };

// Which poll protocol the client speaks. kAuto uses the Merkle-authenticated
// feed-fetch path whenever the transport supports it (one RPC per poll:
// signed tree head + consistency proof + snapshot range, proof-verified
// before anything is adopted) and falls back to the legacy head-probe +
// fetch-since path otherwise. kLegacy forces the old path even on capable
// transports (tests, and deployments mid-migration).
enum class PollPath { kAuto, kLegacy };

// Retry / quarantine / staleness knobs. All times in seconds (SimClock
// domain — the client is driven entirely by the `now` its caller passes).
struct RetryPolicy {
  std::int64_t base_backoff = 60;          // first retry delay
  double multiplier = 2.0;                 // exponential growth per failure
  std::int64_t max_backoff = 3600;         // backoff ceiling
  double jitter = 0.2;                     // ± fraction applied to backoff
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
  int quarantine_threshold = 3;            // verify failures before quarantine
  std::int64_t quarantine_duration = 6 * 3600;
  std::size_t quarantine_capacity = 8;     // bounded; oldest entry evicted
  std::int64_t stale_after = 24 * 3600;    // degraded -> stale threshold
};

// kHealthy: the last poll reached the feed and verified. kDegraded: polls
// are failing (or the head is quarantined) but the last good contact is
// recent; the last verified store keeps being served. kStale: no verified
// contact for at least `RetryPolicy::stale_after` — consumers may want to
// alarm, the exposed store is of unknown freshness.
enum class ClientHealth { kHealthy, kDegraded, kStale };

const char* to_string(ClientHealth health);

// Point-in-time liveness summary, the payload of anchord's FeedStatus verb
// and `anchorctl feed-status`: what a probe needs to decide "is the store
// this machine serves fresh", without the full ClientStats dump.
struct FeedStatus {
  ClientHealth health = ClientHealth::kHealthy;
  std::uint64_t last_applied_sequence = 0;
  std::int64_t last_update_time = -1;  // -1: no update applied yet
  std::int64_t next_poll_time = 0;
  std::int64_t seconds_stale = 0;
  std::uint64_t polls = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t verify_failures = 0;
  std::size_t quarantine_size = 0;

  // Stable single-line key=value rendering (the wire detail field).
  std::string to_text() const;
};

class RsfClient {
 public:
  // `poll_interval` in seconds (the paper suggests hourly). This overload
  // wires a perfect in-process DirectTransport to `feed`.
  RsfClient(const Feed& feed, std::int64_t poll_interval,
            MergePolicy policy = MergePolicy::kPrimaryWins,
            Transport transport = Transport::kFullSnapshot,
            RetryPolicy retry = RetryPolicy{});

  // Consume an arbitrary transport (e.g. a FaultyTransport decorator).
  // `transport` must outlive the client.
  RsfClient(FeedTransport& transport, std::int64_t poll_interval,
            MergePolicy policy = MergePolicy::kPrimaryWins,
            Transport mode = Transport::kFullSnapshot,
            RetryPolicy retry = RetryPolicy{});

  // Local augmentations (imported roots, site GCCs) merged atop every
  // primary snapshot.
  void set_local_store(rootstore::RootStore local);

  // See PollPath. Takes effect on the next poll.
  void set_poll_path(PollPath path) { poll_path_ = path; }

  // Invoked with the freshly adopted store at the end of every successful
  // update poll (after the epoch guard). At most one hook; empty clears.
  void set_adoption_hook(AdoptionHook hook) {
    adoption_hook_ = std::move(hook);
  }

  // (Re)binds the client's metric series to `registry`, labeled
  // {feed="<instance>"}. Construction binds to the global registry with the
  // transport name; tests and the simulator rebind for isolation or to
  // disambiguate multiple derivatives of the same feed. Counters publish as
  // deltas of ClientStats at each poll exit, so rebinding mid-life never
  // double-counts.
  void bind_metrics(metrics::Registry& registry, const std::string& instance);

  // Advances to `now`, issuing at most one catch-up poll: the next poll is
  // re-anchored relative to `now` (interval on success, backoff on
  // failure), so a client woken after a long offline gap does not replay
  // thousands of missed polls. Returns the number of snapshots applied.
  std::size_t run_until(std::int64_t now);

  // Single poll at time `now` regardless of schedule (for tests). Also
  // re-anchors the poll schedule at `now`.
  std::size_t poll_now(std::int64_t now);

  const rootstore::RootStore& store() const { return store_; }
  std::uint64_t last_applied_sequence() const { return last_sequence_; }
  // The Merkle root pinned at the last adoption (meaningful only on the
  // feed-fetch poll path).
  const ctlog::Hash& pinned_tree_root() const { return pinned_root_; }
  std::int64_t last_update_time() const { return last_update_time_; }
  std::int64_t next_poll_time() const { return next_poll_; }
  ClientHealth health() const { return health_; }
  const ClientStats& stats() const { return stats_; }
  FeedStatus feed_status() const;

 private:
  enum class PollOutcome { kSuccess, kFailure, kSkip };

  std::size_t finish_poll(PollOutcome outcome, std::int64_t now,
                          std::size_t applied);
  std::size_t poll_legacy(std::int64_t now);
  std::size_t poll_merkle(std::int64_t now);
  // Replays/adopts an already signature- and chain-verified run. When
  // `inline_deltas` is non-null (the feed-fetch path ships deltas in the
  // same response) deltas are taken from it by index; otherwise they are
  // fetched through the transport per snapshot.
  std::size_t adopt_verified_run(const std::vector<Snapshot>& run,
                                 const std::vector<std::string>* inline_deltas,
                                 std::int64_t now);
  void publish_metrics(PollOutcome outcome);
  std::size_t fail_poll(TransportErrorKind kind, std::uint64_t sequence,
                        std::int64_t now);
  void note_verify_failure(std::uint64_t sequence, std::int64_t now);
  void prune_quarantine(std::int64_t now);
  bool is_quarantined(std::uint64_t sequence, std::int64_t now) const;
  std::int64_t next_backoff();

  std::unique_ptr<FeedTransport> owned_transport_;  // Feed& overload only
  FeedTransport* transport_;
  std::int64_t poll_interval_;
  MergePolicy policy_;
  RetryPolicy retry_;
  Rng jitter_rng_;
  std::int64_t next_poll_ = 0;
  std::uint64_t last_sequence_ = 0;
  std::string last_hash_;
  ctlog::Hash pinned_root_{};        // tree root at last_sequence_ (merkle path)
  PollPath poll_path_ = PollPath::kAuto;
  // Set when the transport attempts a rollback; an equal-sequence head is
  // then treated as a continued replay (never a healthy poll) until a
  // strictly newer run — or, on the merkle path, a root-matching tree
  // head — verifies.
  bool rollback_suspect_ = false;
  std::int64_t last_update_time_ = -1;
  std::int64_t last_contact_ = -1;   // last verified feed contact
  std::int64_t first_poll_ = -1;     // staleness baseline before any contact
  int backoff_exp_ = 0;              // consecutive-failure exponent
  ClientHealth health_ = ClientHealth::kHealthy;
  std::map<std::uint64_t, int> fail_counts_;          // per-head failures
  std::map<std::uint64_t, std::int64_t> quarantine_;  // sequence -> until
  Transport mode_ = Transport::kFullSnapshot;
  rootstore::RootStore primary_replica_;  // the primary state, pre-merge
  rootstore::RootStore store_;
  std::optional<rootstore::RootStore> local_;
  AdoptionHook adoption_hook_;
  SimSig verifier_registry_;  // holds the feed key for verification
  ClientStats stats_;

  // Registry series (stable addresses for the registry's lifetime; see
  // bind_metrics). Counters are published as deltas of `stats_` against
  // `exported_` at every poll exit, so every ClientStats-counted event
  // reaches the registry exactly once no matter which path counted it.
  struct BoundMetrics {
    metrics::Counter* poll_success = nullptr;
    metrics::Counter* poll_failure = nullptr;
    metrics::Counter* poll_skip = nullptr;
    metrics::Counter* updates_applied = nullptr;
    metrics::Counter* deltas_applied = nullptr;
    metrics::Counter* delta_fallbacks = nullptr;
    metrics::Counter* verify_failures = nullptr;
    metrics::Counter* parse_failures = nullptr;
    metrics::Counter* merge_conflicts = nullptr;
    metrics::Counter* retries = nullptr;
    metrics::Counter* quarantine_skips = nullptr;
    metrics::Counter* proof_failures = nullptr;
    metrics::Counter* verified_no_change = nullptr;
    metrics::Counter* bytes_fetched = nullptr;
    metrics::Counter* bytes_discarded = nullptr;
    metrics::Counter* transport_errors = nullptr;
    metrics::Gauge* seconds_stale = nullptr;
    metrics::Gauge* quarantine_size = nullptr;
    metrics::Gauge* backoff_exponent = nullptr;
    metrics::Gauge* health = nullptr;
    metrics::Gauge* last_sequence = nullptr;
  };
  BoundMetrics m_;
  ClientStats exported_;  // high-water marks already published
};

class ManualMirrorClient {
 public:
  // `strip_gccs`: model a derivative that can only ship bare certificate
  // collections (the paper's imprecision problem).
  ManualMirrorClient(const Feed& feed, bool strip_gccs);

  // A human performs an import at time `now`: adopts the latest snapshot.
  void manual_sync(std::int64_t now);

  // Same contract as RsfClient::set_adoption_hook.
  void set_adoption_hook(AdoptionHook hook) {
    adoption_hook_ = std::move(hook);
  }

  const rootstore::RootStore& store() const { return store_; }
  std::uint64_t mirrored_sequence() const { return mirrored_sequence_; }
  std::int64_t last_sync_time() const { return last_sync_time_; }

 private:
  const Feed& feed_;
  bool strip_gccs_;
  std::uint64_t mirrored_sequence_ = 0;
  std::int64_t last_sync_time_ = -1;
  rootstore::RootStore store_;
  AdoptionHook adoption_hook_;
};

}  // namespace anchor::rsf
