#include "rsf/delta.hpp"

#include <sstream>
#include <unordered_set>

#include "util/base64.hpp"
#include "util/strings.hpp"

namespace anchor::rsf {

StoreDelta StoreDelta::diff(const rootstore::RootStore& from,
                            const rootstore::RootStore& to) {
  StoreDelta delta;

  // Trusted side: additions and metadata changes.
  for (const rootstore::RootEntry* entry : to.trusted()) {
    const std::string hash = entry->cert->fingerprint_hex();
    const rootstore::RootEntry* old = from.find(hash);
    if (old == nullptr || !(old->metadata == entry->metadata)) {
      delta.add_trusted.push_back(TrustChange{entry->cert, entry->metadata});
    }
  }
  // Distrusted side (including justification updates on existing entries).
  for (const auto& [hash, justification] : to.distrusted()) {
    auto it = from.distrusted().find(hash);
    if (it == from.distrusted().end() || it->second != justification) {
      delta.distrust.emplace_back(hash, justification);
    }
  }
  // Disappearances: present in `from`, absent (unknown) in `to`.
  for (const rootstore::RootEntry* entry : from.trusted()) {
    const std::string hash = entry->cert->fingerprint_hex();
    if (to.state_of(hash) == rootstore::TrustState::kUnknown) {
      delta.forget.push_back(hash);
    }
  }
  for (const auto& [hash, justification] : from.distrusted()) {
    if (to.state_of(hash) == rootstore::TrustState::kUnknown) {
      delta.forget.push_back(hash);
    }
  }

  // GCC side, keyed by (root, name).
  auto gcc_key = [](const core::Gcc& gcc) {
    return gcc.root_hash_hex() + "|" + gcc.name();
  };
  std::unordered_set<std::string> in_to;
  for (const auto& root : to.gccs().roots_sorted()) {
    for (const core::Gcc& gcc : to.gccs().for_root(root)) {
      in_to.insert(gcc_key(gcc));
      bool same = false;
      for (const core::Gcc& old : from.gccs().for_root(root)) {
        if (old == gcc && old.justification() == gcc.justification()) {
          same = true;
          break;
        }
      }
      if (!same) delta.attach_gccs.push_back(gcc);
    }
  }
  for (const auto& root : from.gccs().roots_sorted()) {
    for (const core::Gcc& gcc : from.gccs().for_root(root)) {
      if (!in_to.contains(gcc_key(gcc))) {
        delta.detach_gccs.emplace_back(gcc.root_hash_hex(), gcc.name());
      }
    }
  }

  // Revocation filter: replaced wholesale (the cascade is not incremental).
  auto from_filter = from.revocation_filter();
  auto to_filter = to.revocation_filter();
  if (to_filter == nullptr) {
    if (from_filter != nullptr) delta.clear_filter = true;
  } else if (from_filter == nullptr || !(*from_filter == *to_filter)) {
    delta.set_filter = to_filter;
  }
  return delta;
}

void StoreDelta::apply(rootstore::RootStore& store) const {
  for (const auto& hash : forget) store.forget(hash);
  for (const auto& [hash, justification] : distrust) {
    store.distrust(hash, justification);
  }
  for (const auto& change : add_trusted) {
    // The primary's decision is authoritative: clear any stale distrust
    // entry before re-adding.
    if (store.state_of(change.cert->fingerprint_hex()) ==
        rootstore::TrustState::kDistrusted) {
      store.forget(change.cert->fingerprint_hex());
    }
    store.add_trusted_unchecked(change.cert, change.metadata);
  }
  for (const auto& [root, name] : detach_gccs) {
    store.detach_gcc(root, name);
  }
  for (const core::Gcc& gcc : attach_gccs) {
    store.attach_gcc(gcc);
  }
  if (clear_filter) store.set_revocation_filter(nullptr);
  if (set_filter != nullptr) store.set_revocation_filter(set_filter);
}

namespace {
std::string b64(const std::string& text) {
  return base64_encode(BytesView(to_bytes(text)));
}

Result<std::string> unb64(std::string_view text) {
  Bytes decoded;
  if (!base64_decode(text, decoded)) return err("delta: bad base64");
  return to_string(BytesView(decoded));
}
}  // namespace

std::string StoreDelta::serialize() const {
  std::ostringstream out;
  out << "anchor-store-delta/v1\n";
  for (const auto& change : add_trusted) {
    out << "add " << change.cert->fingerprint_hex() << "\n";
    out << "ev " << (change.metadata.ev_allowed ? 1 : 0) << "\n";
    if (change.metadata.tls_distrust_after) {
      out << "tls-distrust-after " << *change.metadata.tls_distrust_after
          << "\n";
    }
    if (change.metadata.smime_distrust_after) {
      out << "smime-distrust-after " << *change.metadata.smime_distrust_after
          << "\n";
    }
    if (!change.metadata.justification.empty()) {
      out << "justification-b64 " << b64(change.metadata.justification) << "\n";
    }
    out << change.cert->to_pem();
  }
  for (const auto& [hash, justification] : distrust) {
    out << "distrust " << hash << "\n";
    if (!justification.empty()) {
      out << "justification-b64 " << b64(justification) << "\n";
    }
  }
  for (const auto& hash : forget) {
    out << "forget " << hash << "\n";
  }
  for (const core::Gcc& gcc : attach_gccs) {
    out << "attach-gcc " << gcc.root_hash_hex() << "\n";
    out << "name-b64 " << b64(gcc.name()) << "\n";
    if (!gcc.justification().empty()) {
      out << "justification-b64 " << b64(gcc.justification()) << "\n";
    }
    out << "source-b64 " << b64(gcc.source()) << "\n";
  }
  for (const auto& [root, name] : detach_gccs) {
    out << "detach-gcc " << root << " " << b64(name) << "\n";
  }
  if (clear_filter) out << "clear-filter\n";
  if (set_filter != nullptr) {
    out << "set-filter-b64 " << b64(set_filter->serialize()) << "\n";
  }
  return out.str();
}

Result<StoreDelta> StoreDelta::deserialize(std::string_view text) {
  std::vector<std::string> lines = split(text, '\n');
  if (lines.empty() || lines[0] != "anchor-store-delta/v1") {
    return err("delta: missing header");
  }
  StoreDelta delta;
  std::size_t i = 1;
  auto parse_int = [](const std::string& s, std::int64_t& out) {
    if (s.empty()) return false;
    std::int64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    out = v;
    return true;
  };

  while (i < lines.size()) {
    std::string line = std::string(trim(lines[i]));
    if (line.empty()) {
      ++i;
      continue;
    }
    std::size_t space = line.find(' ');
    std::string keyword = line.substr(0, space);
    std::string arg = space == std::string::npos ? "" : line.substr(space + 1);

    if (keyword == "add") {
      ++i;
      rootstore::RootMetadata metadata;
      while (i < lines.size() && !starts_with(lines[i], "-----BEGIN")) {
        std::string meta = std::string(trim(lines[i]));
        if (meta.empty()) {
          ++i;
          continue;
        }
        std::size_t sp = meta.find(' ');
        if (sp == std::string::npos) return err("delta: malformed metadata");
        std::string key = meta.substr(0, sp);
        std::string value = meta.substr(sp + 1);
        if (key == "ev") {
          metadata.ev_allowed = value == "1";
        } else if (key == "tls-distrust-after") {
          std::int64_t t;
          if (!parse_int(value, t)) return err("delta: bad timestamp");
          metadata.tls_distrust_after = t;
        } else if (key == "smime-distrust-after") {
          std::int64_t t;
          if (!parse_int(value, t)) return err("delta: bad timestamp");
          metadata.smime_distrust_after = t;
        } else if (key == "justification-b64") {
          auto decoded = unb64(value);
          if (!decoded) return err(decoded.error());
          metadata.justification = std::move(decoded).take();
        } else {
          return err("delta: unknown metadata key '" + key + "'");
        }
        ++i;
      }
      std::string pem;
      while (i < lines.size()) {
        pem += lines[i];
        pem += '\n';
        bool end = starts_with(lines[i], "-----END");
        ++i;
        if (end) break;
      }
      auto cert = x509::Certificate::parse_pem(pem);
      if (!cert) return err("delta: " + cert.error());
      if (cert.value()->fingerprint_hex() != arg) {
        return err("delta: add hash mismatch");
      }
      delta.add_trusted.push_back(
          TrustChange{std::move(cert).take(), std::move(metadata)});
    } else if (keyword == "distrust") {
      ++i;
      std::string justification;
      if (i < lines.size() && starts_with(lines[i], "justification-b64 ")) {
        auto decoded = unb64(std::string_view(lines[i]).substr(18));
        if (!decoded) return err(decoded.error());
        justification = std::move(decoded).take();
        ++i;
      }
      if (arg.size() != 64) return err("delta: bad distrust hash");
      delta.distrust.emplace_back(arg, std::move(justification));
    } else if (keyword == "forget") {
      ++i;
      if (arg.size() != 64) return err("delta: bad forget hash");
      delta.forget.push_back(arg);
    } else if (keyword == "attach-gcc") {
      ++i;
      std::string name;
      std::string justification;
      std::string source;
      while (i < lines.size()) {
        std::string field = std::string(trim(lines[i]));
        if (starts_with(field, "name-b64 ")) {
          auto decoded = unb64(std::string_view(field).substr(9));
          if (!decoded) return err(decoded.error());
          name = std::move(decoded).take();
        } else if (starts_with(field, "justification-b64 ")) {
          auto decoded = unb64(std::string_view(field).substr(18));
          if (!decoded) return err(decoded.error());
          justification = std::move(decoded).take();
        } else if (starts_with(field, "source-b64 ")) {
          auto decoded = unb64(std::string_view(field).substr(11));
          if (!decoded) return err(decoded.error());
          source = std::move(decoded).take();
          ++i;
          break;
        } else {
          return err("delta: unexpected line in attach-gcc: '" + field + "'");
        }
        ++i;
      }
      auto gcc = core::Gcc::create(name, arg, source, justification);
      if (!gcc) return err("delta: " + gcc.error());
      delta.attach_gccs.push_back(std::move(gcc).take());
    } else if (keyword == "detach-gcc") {
      ++i;
      std::size_t sp = arg.find(' ');
      if (sp == std::string::npos) return err("delta: malformed detach-gcc");
      auto name = unb64(std::string_view(arg).substr(sp + 1));
      if (!name) return err(name.error());
      delta.detach_gccs.emplace_back(arg.substr(0, sp), std::move(name).take());
    } else if (keyword == "clear-filter") {
      ++i;
      delta.clear_filter = true;
    } else if (keyword == "set-filter-b64") {
      ++i;
      auto decoded = unb64(arg);
      if (!decoded) return err(decoded.error());
      auto filter =
          revocation::CompressedRevocationSet::deserialize(decoded.value());
      if (!filter) return err("delta: " + filter.error());
      delta.set_filter =
          std::make_shared<const revocation::CompressedRevocationSet>(
              std::move(filter).take());
    } else {
      return err("delta: unknown keyword '" + keyword + "'");
    }
  }
  return delta;
}

}  // namespace anchor::rsf
